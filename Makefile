# Shared developer/CI entry points. The CI workflow runs the same commands,
# so the tier-1 verify recipe lives in exactly one place.

GO ?= go
MODELS ?= models.json
ADDR ?= :8377

.PHONY: all build test lint race smoke serve train loadtest bench-serve bench-containers clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Vet plus a gofmt cleanliness check (fails if any file needs formatting).
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race -short ./internal/serve/... ./internal/training/... ./internal/machine/...

smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) test -run='^$$' -fuzz=FuzzDequeOps -fuzztime=10s ./internal/containers/deque
	$(GO) test -run='^$$' -fuzz=FuzzTableOps -fuzztime=10s ./internal/containers/hashtable
	$(GO) test -run='^$$' -fuzz=FuzzTreeOps  -fuzztime=10s ./internal/containers/rbtree
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRecords -fuzztime=10s ./internal/profile
	$(GO) test -run='^$$' -fuzz=FuzzAdaptiveMigration -fuzztime=10s ./internal/containers/adaptive
	$(GO) test -run='^$$' -fuzz=FuzzFlatBTree -fuzztime=10s ./internal/containers/flatbtree
	$(GO) test -run='^$$' -fuzz=FuzzFlatHash -fuzztime=10s ./internal/containers/flathash

# Train a registry (override budget via brainy-train flags) then serve it.
train:
	$(GO) run ./cmd/brainy-train -arch both -o $(MODELS)

serve: build
	$(GO) run ./cmd/brainy-serve -models $(MODELS) -addr $(ADDR)

# Closed-loop load smoke: boot a rules-mode advisor, drive the ci-smoke
# scenario from BENCH_serve.json with brainy-loadgen, and gate the measured
# throughput against the committed baseline. CI runs the same recipe.
LOADTEST_ADDR ?= 127.0.0.1:18377
LOADTEST_OUT ?= /tmp/loadtest.json
loadtest:
	$(GO) build -o /tmp/brainy-serve-loadtest ./cmd/brainy-serve
	$(GO) build -o /tmp/brainy-loadgen ./cmd/brainy-loadgen
	$(GO) run ./cmd/brainy-train -arch core2 -apps 4 -max-seeds 80 -calls 50 -epochs 10 -o /tmp/loadtest-models.json
	/tmp/brainy-serve-loadtest -models /tmp/loadtest-models.json -addr $(LOADTEST_ADDR) -log-requests=false & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 50); do curl -sf http://$(LOADTEST_ADDR)/healthz > /dev/null && break; sleep 0.2; done; \
	/tmp/brainy-loadgen -url http://$(LOADTEST_ADDR) -conns 8 -duration 5s -warmup 2s \
		-skew 0.99 -keys 256 -mix 9:1 -seed 1 -out $(LOADTEST_OUT); \
	status=$$?; kill -INT $$SERVE_PID; wait $$SERVE_PID; \
	test $$status -eq 0
	python3 scripts/check_serve_bench.py --result $(LOADTEST_OUT) --baseline BENCH_serve.json

# Full serving benchmark (the BENCH_serve.json scenarios, 20s each) against
# an already-running server at SERVE_URL; writes the report to BENCH_OUT.
SERVE_URL ?= http://127.0.0.1:8377
BENCH_OUT ?= /tmp/bench_serve.json
bench-serve:
	$(GO) build -o /tmp/brainy-loadgen ./cmd/brainy-loadgen
	/tmp/brainy-loadgen -url $(SERVE_URL) -conns 32 -duration 20s -warmup 3s \
		-skew 0.99 -keys 512 -mix 9:1 -seed 1 -out $(BENCH_OUT)

# Container-suite bench: regenerate the flat-vs-pointer container report
# (simulated Core2 cycles, bit-deterministic) and gate the find-cycle
# ratios against the committed BENCH_containers.json floors.
CONTAINERS_OUT ?= /tmp/containers-bench.json
bench-containers:
	$(GO) run ./cmd/containersbench -sizes 1000,100000 -o $(CONTAINERS_OUT)
	python3 scripts/check_containers_bench.py --result $(CONTAINERS_OUT) --baseline BENCH_containers.json

clean:
	$(GO) clean ./...
