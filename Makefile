# Shared developer/CI entry points. The CI workflow runs the same commands,
# so the tier-1 verify recipe lives in exactly one place.

GO ?= go
MODELS ?= models.json
ADDR ?= :8377

.PHONY: all build test lint race smoke serve train clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Vet plus a gofmt cleanliness check (fails if any file needs formatting).
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race -short ./internal/serve/... ./internal/training/... ./internal/machine/...

smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) test -run='^$$' -fuzz=FuzzDequeOps -fuzztime=10s ./internal/containers/deque
	$(GO) test -run='^$$' -fuzz=FuzzTableOps -fuzztime=10s ./internal/containers/hashtable
	$(GO) test -run='^$$' -fuzz=FuzzTreeOps  -fuzztime=10s ./internal/containers/rbtree
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRecords -fuzztime=10s ./internal/profile

# Train a registry (override budget via brainy-train flags) then serve it.
train:
	$(GO) run ./cmd/brainy-train -arch both -o $(MODELS)

serve: build
	$(GO) run ./cmd/brainy-serve -models $(MODELS) -addr $(ADDR)

clean:
	$(GO) clean ./...
