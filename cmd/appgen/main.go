// Command appgen generates one synthetic application (Section 4.2), runs it
// with every interchangeable container on the chosen architecture, and
// prints the per-candidate cycle counts and the winner — one iteration of
// Algorithm 1 made visible.
//
// Usage:
//
//	appgen -seed 42 -target vector -order-aware=false -arch core2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/adt"
	"repro/internal/appgen"
	"repro/internal/machine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("appgen: ")
	var (
		seed       = flag.Int64("seed", 1, "application seed")
		target     = flag.String("target", "vector", "original container kind")
		orderAware = flag.Bool("order-aware", false, "whether the application depends on insertion order")
		calls      = flag.Int("calls", 1000, "total interface invocations")
		archName   = flag.String("arch", "core2", "architecture: core2 or atom")
		margin     = flag.Float64("margin", 0.05, "decisiveness margin for recording a winner")
		configPath = flag.String("config", "", "generator configuration file (JSON, see -emit-config)")
		emitConfig = flag.Bool("emit-config", false, "print the default configuration as JSON and exit")
	)
	flag.Parse()

	if *emitConfig {
		if err := appgen.WriteConfig(os.Stdout, appgen.DefaultConfig()); err != nil {
			log.Fatal(err)
		}
		return
	}
	kind, err := adt.ParseKind(*target)
	if err != nil {
		log.Fatal(err)
	}
	var arch machine.Config
	switch *archName {
	case "core2":
		arch = machine.Core2()
	case "atom":
		arch = machine.Atom()
	default:
		log.Fatalf("unknown -arch %q", *archName)
	}

	cfg := appgen.DefaultConfig()
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err = appgen.ReadConfig(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	cfg.TotalInterfCalls = *calls
	tgt := adt.ModelTarget{Kind: kind, OrderAware: *orderAware}
	app := appgen.Generate(cfg, tgt, *seed)

	fmt.Printf("seed %d, target %s, elem size %dB, prepopulate %d, search skew %.2f\n",
		app.Seed, app.Target.Kind, app.ElemSize, app.Prepopulate, app.SearchSkew)
	fmt.Print("op weights:")
	for op := appgen.Op(0); op < appgen.NumOps; op++ {
		if app.Weights[op] > 0 {
			fmt.Printf(" %s=%.2f", op, app.Weights[op])
		}
	}
	fmt.Println()

	results := app.RunAll(cfg, arch)
	best, decisive := appgen.Best(results, *margin)
	for i, r := range results {
		marker := " "
		if i == best {
			marker = "*"
		}
		fmt.Printf("%s %-9s %14.0f cycles\n", marker, r.Kind, r.Cycles)
	}
	if decisive {
		fmt.Printf("winner: %s (beats every alternative by >= %.0f%%)\n", results[best].Kind, *margin*100)
	} else {
		fmt.Printf("winner: %s, but within the %.0f%% margin — Phase-I would discard this app\n",
			results[best].Kind, *margin*100)
	}
}
