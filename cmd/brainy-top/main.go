// Command brainy-top is the terminal companion to brainy-serve's windowed
// profiling: it polls the service's /debug/brainy?format=json dashboard and
// renders a top-style live view of every instance timeline — operation-mix
// glyphs, current vs. initial advice, drift flags, and per-instance ops
// trend sparklines — refreshing in place. Below the table it draws a
// self-observation pane from /v1/health and /v1/timeseries: the SLO
// burn-rate verdict (with the reason for any objective that is not ok) and
// sparkline trends for advise p99, profile and window throughput, and
// shard queue depth.
//
// Usage:
//
//	brainy-top -addr http://localhost:8377 [-interval 2s] [-once]
//
// With -once it fetches a single dashboard, prints it without clearing the
// terminal, and exits — the scriptable/test mode. Exit status is non-zero
// when the service is unreachable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/opstats"
	"repro/internal/serve"
	"repro/internal/telemetry/tsdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy-top: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "http://localhost:8377", "base URL of the brainy-serve instance to watch")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "fetch one dashboard, print it, and exit")
	)
	flag.Parse()
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive, got %s", *interval)
	}
	base := strings.TrimSuffix(*addr, "/")
	url := base + "/debug/brainy?format=json"
	client := &http.Client{Timeout: 10 * time.Second}

	if *once {
		d, err := fetchDashboard(client, url)
		if err != nil {
			return err
		}
		fmt.Print(render(d, *addr))
		fmt.Print(renderTrends(fetchTrends(client, base)))
		fmt.Print(renderExemplars(fetchExemplars(client, base)))
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	// Poll immediately, then on the ticker; a fetch error is drawn into the
	// view rather than killing the watch — the service may just be
	// restarting.
	for {
		frame, err := func() (string, error) {
			d, ferr := fetchDashboard(client, url)
			if ferr != nil {
				return "", ferr
			}
			return render(d, *addr) + renderTrends(fetchTrends(client, base)) +
				renderExemplars(fetchExemplars(client, base)), nil
		}()
		// \x1b[H\x1b[2J homes the cursor and clears: redraw in place like
		// top rather than scrolling history away.
		fmt.Print("\x1b[H\x1b[2J")
		if err != nil {
			fmt.Printf("brainy-top: %v (retrying every %s)\n", err, *interval)
		} else {
			fmt.Print(frame)
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-ticker.C:
		}
	}
}

// fetchDashboard pulls and decodes one JSON dashboard.
func fetchDashboard(client *http.Client, url string) (*serve.DashboardResponse, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var d serve.DashboardResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("decoding dashboard: %w", err)
	}
	return &d, nil
}

// fetchExemplars scrapes the service's /metrics page for latency-histogram
// bucket exemplars. Best-effort: a scrape failure renders as no pane, not
// an error — the dashboard is the primary view.
func fetchExemplars(client *http.Client, base string) []opstats.BucketExemplar {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	return opstats.ParseExemplars(string(page), "brainy_request_duration_seconds")
}

// renderExemplars draws the slow-request pane: one line per latency bucket
// that has a stamped exemplar, slowest first, each naming the request ID
// brainy-explain resolves back to a journaled decision.
func renderExemplars(exs []opstats.BucketExemplar) string {
	if len(exs) == 0 {
		return ""
	}
	sort.Slice(exs, func(i, j int) bool { return exs[i].Value > exs[j].Value })
	var b strings.Builder
	b.WriteString("\nrecent advise requests by latency bucket (brainy-explain -id <REQUEST> traces one):\n")
	fmt.Fprintf(&b, "%-8s %12s  %s\n", "LE", "LATENCY", "REQUEST")
	for _, ex := range exs {
		fmt.Fprintf(&b, "%-8s %10.2fms  %s\n", ex.LE, ex.Value*1000, ex.RequestID)
	}
	return b.String()
}

// render draws one frame. The JSON dashboard arrives key-sorted (the locked
// schema order); re-sort on the touch stamp so the most recently active
// timelines sit at the top, where a live view wants them.
func render(d *serve.DashboardResponse, addr string) string {
	sort.SliceStable(d.Rows, func(i, j int) bool { return d.Rows[i].Touch > d.Rows[j].Touch })
	var b strings.Builder
	fmt.Fprintf(&b, "brainy-top — %s\n", addr)
	fmt.Fprintf(&b, "instances %d/%d  windows %d  drift-events %d  out-of-order %d\n\n",
		d.Instances, d.MaxInstances, d.Windows, d.DriftEvents, d.OutOfOrder)
	if len(d.Rows) == 0 {
		b.WriteString("no instance timelines yet: POST snapshot windows to /v1/profiles\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-32s %-9s %6s %8s  %-22s %5s %6s  %-22s %s\n",
		"INSTANCE", "KIND", "WIN", "OPS", "ADVICE", "CONF", "DRIFT", "TIMELINE", "TREND")
	for _, row := range d.Rows {
		advice := "-"
		conf := "    -"
		if row.Advised {
			advice = row.Initial
			if row.Current != row.Initial {
				advice = row.Initial + " -> " + row.Current
			}
			conf = fmt.Sprintf("%5.2f", row.Confidence)
		}
		driftCol := "."
		if row.Drifted {
			driftCol = fmt.Sprintf("DRIFT%d", row.Events)
		}
		fmt.Fprintf(&b, "%-32s %-9s %6d %8d  %-22s %s %6s  %-22s %s\n",
			row.Key, row.Kind, row.Windows, row.Ops, advice, conf, driftCol, row.Mix, row.Trend)
	}
	b.WriteString("\nmix glyphs: a=append f=find s=scan e=erase .=mixed (one per retained window, oldest first)\n")
	b.WriteString("trend: ops-per-window sparkline over the same retained windows\n")
	return b.String()
}

// trendSeries names the self-observed series the trends pane sparklines,
// paired with a display label and a formatter for the latest value.
var trendSeries = []struct {
	series string
	label  string
	fmtV   func(v float64) string
}{
	{"brainy_advise_duration_seconds:p99", "advise p99", func(v float64) string { return fmt.Sprintf("%.2fms", v*1000) }},
	{"brainy_profiles_analyzed_total:rate", "profiles/s", func(v float64) string { return fmt.Sprintf("%.1f", v) }},
	{"brainy_profile_windows_total:rate", "windows/s", func(v float64) string { return fmt.Sprintf("%.1f", v) }},
	{"brainy_shard_queue_depth", "queue depth", func(v float64) string { return fmt.Sprintf("%.0f", v) }},
}

// trends is the data behind the self-observation pane: the /v1/health verdict
// plus the sparkline history of a few headline series from /v1/timeseries.
type trends struct {
	health *serve.HealthResponse
	points map[string][]tsdb.Point
}

// fetchTrends pulls the health verdict and trend series. Best-effort like
// fetchExemplars: a nil return (server predates the endpoints, sampler
// disabled, transient error) renders as no pane rather than an error.
func fetchTrends(client *http.Client, base string) *trends {
	t := &trends{}
	if resp, err := client.Get(base + "/v1/health"); err == nil {
		// /v1/health answers 503 with the same JSON body when critical or
		// draining — that verdict is exactly what the pane is for.
		var h serve.HealthResponse
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable {
			if json.NewDecoder(resp.Body).Decode(&h) == nil {
				t.health = &h
			}
		}
		resp.Body.Close()
	}
	q := ""
	for _, s := range trendSeries {
		q += "&series=" + s.series
	}
	if resp, err := client.Get(base + "/v1/timeseries?" + q[1:]); err == nil {
		var ts serve.TimeseriesResponse
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&ts) == nil && ts.Enabled {
			t.points = ts.Points
		}
		resp.Body.Close()
	}
	if t.health == nil && len(t.points) == 0 {
		return nil
	}
	return t
}

// renderTrends draws the self-observation pane: one health verdict line (with
// the burn-rate reason for every objective that is not ok) and one sparkline
// row per headline series.
func renderTrends(t *trends) string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	if h := t.health; h != nil {
		fmt.Fprintf(&b, "\nhealth: %s", h.Status)
		if !h.Enabled {
			b.WriteString("  (self-observation disabled: restart with -sample-interval > 0)")
		}
		for _, obj := range h.SLO.Objectives {
			if obj.State != "ok" {
				fmt.Fprintf(&b, "\n  %-28s %-9s %s", obj.Name, obj.State, obj.Reason)
			}
		}
		b.WriteString("\n")
	}
	for _, s := range trendSeries {
		pts := t.points[s.series]
		if len(pts) == 0 {
			continue
		}
		// One rune per sample: keep the tail so the pane stays terminal-width
		// even when the store retains hundreds of points.
		const width = 60
		if len(pts) > width {
			pts = pts[len(pts)-width:]
		}
		fmt.Fprintf(&b, "%-14s %-60s  last %s\n",
			s.label, tsdb.SparkPoints(pts), s.fmtV(pts[len(pts)-1].V))
	}
	return b.String()
}
