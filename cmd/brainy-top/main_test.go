package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

func TestFetchAndRender(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/brainy" || r.URL.Query().Get("format") != "json" {
			http.Error(w, "wrong path", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{
			"instances": 1, "max_instances": 256, "windows": 21,
			"drift_events": 1, "out_of_order": 0,
			"rows": [{
				"key": "phasedemo/working-set#0", "context": "phasedemo/working-set",
				"instance": 0, "kind": "vector", "windows": 21, "ops": 1312,
				"advised": true, "initial": "vector", "current": "hash_set",
				"confidence": 1, "drifted": true, "events": 1,
				"mix": "aaaafffff", "timeline": []
			}]
		}`))
	}))
	defer srv.Close()

	d, err := fetchDashboard(srv.Client(), srv.URL+"/debug/brainy?format=json")
	if err != nil {
		t.Fatal(err)
	}
	out := render(d, srv.URL)
	for _, want := range []string{
		"brainy-top — " + srv.URL,
		"instances 1/256  windows 21  drift-events 1  out-of-order 0",
		"phasedemo/working-set#0",
		"vector -> hash_set",
		"DRIFT1",
		"aaaafffff",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestFetchDashboardErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no dashboard here", http.StatusNotFound)
	}))
	defer srv.Close()
	if _, err := fetchDashboard(srv.Client(), srv.URL+"/debug/brainy?format=json"); err == nil {
		t.Fatal("expected error on 404")
	} else if !strings.Contains(err.Error(), "no dashboard here") {
		t.Errorf("error should carry the body, got: %v", err)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not json"))
	}))
	defer bad.Close()
	if _, err := fetchDashboard(bad.Client(), bad.URL+"/x"); err == nil {
		t.Fatal("expected error on malformed JSON")
	}

	srv.Close()
	if _, err := fetchDashboard(srv.Client(), srv.URL+"/x"); err == nil {
		t.Fatal("expected error when the service is down")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := render(&serve.DashboardResponse{MaxInstances: 16, Rows: nil}, "http://x")
	if !strings.Contains(out, "no instance timelines yet") {
		t.Errorf("empty dashboard should say so:\n%s", out)
	}
}
