package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/opstats"
	"repro/internal/serve"
)

func TestFetchAndRender(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/brainy" || r.URL.Query().Get("format") != "json" {
			http.Error(w, "wrong path", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{
			"instances": 1, "max_instances": 256, "windows": 21,
			"drift_events": 1, "out_of_order": 0,
			"rows": [{
				"key": "phasedemo/working-set#0", "context": "phasedemo/working-set",
				"instance": 0, "kind": "vector", "windows": 21, "ops": 1312,
				"advised": true, "initial": "vector", "current": "hash_set",
				"confidence": 1, "drifted": true, "events": 1,
				"mix": "aaaafffff", "timeline": []
			}]
		}`))
	}))
	defer srv.Close()

	d, err := fetchDashboard(srv.Client(), srv.URL+"/debug/brainy?format=json")
	if err != nil {
		t.Fatal(err)
	}
	out := render(d, srv.URL)
	for _, want := range []string{
		"brainy-top — " + srv.URL,
		"instances 1/256  windows 21  drift-events 1  out-of-order 0",
		"phasedemo/working-set#0",
		"vector -> hash_set",
		"DRIFT1",
		"aaaafffff",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestFetchDashboardErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no dashboard here", http.StatusNotFound)
	}))
	defer srv.Close()
	if _, err := fetchDashboard(srv.Client(), srv.URL+"/debug/brainy?format=json"); err == nil {
		t.Fatal("expected error on 404")
	} else if !strings.Contains(err.Error(), "no dashboard here") {
		t.Errorf("error should carry the body, got: %v", err)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not json"))
	}))
	defer bad.Close()
	if _, err := fetchDashboard(bad.Client(), bad.URL+"/x"); err == nil {
		t.Fatal("expected error on malformed JSON")
	}

	srv.Close()
	if _, err := fetchDashboard(srv.Client(), srv.URL+"/x"); err == nil {
		t.Fatal("expected error when the service is down")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := render(&serve.DashboardResponse{MaxInstances: 16, Rows: nil}, "http://x")
	if !strings.Contains(out, "no instance timelines yet") {
		t.Errorf("empty dashboard should say so:\n%s", out)
	}
}

// TestRenderSortsByTouch: the JSON dashboard arrives key-sorted; the live
// view re-sorts on the touch stamp so recent activity floats to the top.
func TestRenderSortsByTouch(t *testing.T) {
	d := &serve.DashboardResponse{
		Instances: 2, MaxInstances: 16,
		Rows: []serve.DashboardRow{
			{Key: "a#0", Kind: "vector", Touch: 1, Mix: "aa"},
			{Key: "b#0", Kind: "vector", Touch: 9, Mix: "ff"},
		},
	}
	out := render(d, "http://x")
	if strings.Index(out, "b#0") > strings.Index(out, "a#0") {
		t.Errorf("most recently touched row should render first:\n%s", out)
	}
}

// TestRenderExemplars covers the slow-request pane: slowest bucket first,
// absent entirely when the scrape yields nothing.
func TestRenderExemplars(t *testing.T) {
	if out := renderExemplars(nil); out != "" {
		t.Errorf("no exemplars should render nothing, got %q", out)
	}
	out := renderExemplars([]opstats.BucketExemplar{
		{LE: "0.005", RequestID: "req-fast", Value: 0.004},
		{LE: "0.1", RequestID: "req-slow", Value: 0.09},
	})
	for _, want := range []string{"brainy-explain", "req-slow", "req-fast", "90.00ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("exemplar pane missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, "req-slow") > strings.Index(out, "req-fast") {
		t.Errorf("slowest exemplar should render first:\n%s", out)
	}
}

// TestFetchExemplarsFromMetrics parses a real exposition page shape.
func TestFetchExemplarsFromMetrics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.Error(w, "wrong path", http.StatusNotFound)
			return
		}
		w.Write([]byte("# TYPE brainy_request_duration_seconds histogram\n" +
			"brainy_request_duration_seconds_bucket{le=\"0.005\"} 12 # {request_id=\"abc123\"} 0.0041\n" +
			"brainy_request_duration_seconds_bucket{le=\"+Inf\"} 12\n"))
	}))
	defer srv.Close()
	exs := fetchExemplars(srv.Client(), srv.URL)
	if len(exs) != 1 || exs[0].RequestID != "abc123" || exs[0].LE != "0.005" {
		t.Fatalf("parsed exemplars: %+v", exs)
	}
	// Best-effort contract: a down or 404 service yields no pane, no error.
	if exs := fetchExemplars(srv.Client(), srv.URL+"/nope"); exs != nil {
		t.Fatalf("404 scrape should yield nil, got %+v", exs)
	}
}
