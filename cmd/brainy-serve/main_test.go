package main

import (
	"bufio"
	"bytes"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/training"
	"repro/internal/workloads/phases"
)

// TestInterruptFlushesTrace is the flush-bug regression test: build the
// real binary, serve with -trace, handle one request, SIGINT the process,
// and re-read the trace file. Before main was restructured around run(),
// log.Fatal on the exit path skipped the exporter's deferred Close, so an
// interrupted run could truncate the buffered span tail; now ReadSpans must
// parse the file cleanly and see the request's spans.
func TestInterruptFlushesTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "brainy-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A one-model registry is enough: startup validates it, and the
	// /v1/profiles request under test runs on the rules advisor.
	modelsPath := filepath.Join(dir, "models.json")
	writeTestModels(t, modelsPath)

	tracePath := filepath.Join(dir, "trace.jsonl")
	cmd := exec.Command(bin,
		"-models", modelsPath,
		"-addr", "127.0.0.1:0",
		"-trace", tracePath,
		"-drift-rules", "-drift-window", "2", "-drift-hysteresis", "2",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server logs `listening addr=127.0.0.1:PORT` once bound; scan
	// stderr for it rather than racing a pre-picked port.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "addr="); i >= 0 && strings.Contains(line, "listening") {
				addr := line[i+len("addr="):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				addrc <- addr
			}
			// Keep draining so the child never blocks on a full pipe.
		}
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("server never logged its listen address")
	}

	resp, err := http.Post(base+"/v1/profiles?arch=Core2", "application/json",
		bytes.NewReader(windowStream(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profiles status = %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted server exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGINT")
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	spans, err := telemetry.ReadSpans(tf)
	if err != nil {
		t.Fatalf("trace written by an interrupted run must re-read cleanly: %v", err)
	}
	var sawProfiles bool
	for _, s := range spans {
		if s.Name == "profiles" {
			sawProfiles = true
		}
	}
	if !sawProfiles {
		names := make([]string, 0, len(spans))
		for _, s := range spans {
			names = append(names, s.Name)
		}
		t.Fatalf("flushed trace misses the request's spans; got %d spans: %v", len(spans), names)
	}
}

// writeTestModels saves a minimal loadable registry: one untrained
// vector/Core2 model.
func writeTestModels(t *testing.T, path string) {
	t.Helper()
	set := training.NewModelSet()
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	cands := adt.CandidatesWithOriginal(tgt.Kind, tgt.OrderAware)
	cfg := ann.DefaultConfig()
	cfg.Seed = 7
	set.Put(&training.Model{
		Target:     tgt,
		Arch:       "Core2",
		Candidates: cands,
		Net:        ann.New(profile.NumFeatures, len(cands), cfg),
	})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Save(f); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// windowStream renders the phasedemo workload as snapshot windows — the
// request body for the test's one profiled ingestion.
func windowStream(t *testing.T) []byte {
	t.Helper()
	m := machine.New(machine.Core2())
	var buf bytes.Buffer
	exp := profile.NewSnapshotExporter(&buf)
	reg := profile.NewRegistry(m)
	reg.EnableWindows(64, exp)
	c := reg.NewContainer(phases.Original, 8, phases.Context, false)
	phases.Drive(c, phases.Config{})
	reg.FlushWindows()
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty window stream")
	}
	return buf.Bytes()
}

// TestCheckMode exercises -check against good and bad registries without
// binding a socket.
func TestCheckMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "brainy-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	good := filepath.Join(dir, "models.json")
	writeTestModels(t, good)
	out, err := exec.Command(bin, "-models", good, "-check").CombinedOutput()
	if err != nil {
		t.Fatalf("-check on a valid registry failed: %v\n%s", err, out)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-models", bad, "-check").CombinedOutput()
	if err == nil {
		t.Fatalf("-check on a broken registry should exit non-zero, got:\n%s", out)
	}
}
