// Command brainy-serve runs the Brainy advisor as a long-lived HTTP
// service: it loads a trained model registry once and answers advise
// requests over JSON, the service shape of Figure 3's analysis front end.
//
// Usage:
//
//	brainy-serve -models models.json -addr :8377
//
// Endpoints:
//
//	POST /v1/advise?arch=Core2   profile trace in (JSON lines or array),
//	                             prioritized replacement plan out
//	GET  /healthz                liveness and model count
//	GET  /metrics                text exposition of service metrics
//	GET  /debug/pprof/           runtime profiling (only with -pprof)
//
// Every request carries a correlation ID: a client-supplied X-Request-ID is
// propagated, otherwise one is minted; either way it is echoed in the
// response header, every log line, and (with -trace) the request's spans.
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM. With -check it only validates the registry (exit 0 when every
// model loads, non-zero otherwise) without binding a socket — the CI gate
// for freshly trained or hand-shipped artifacts.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/training"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy-serve: ")
	var (
		modelsPath  = flag.String("models", "models.json", "trained model registry (from brainy-train)")
		addr        = flag.String("addr", ":8377", "listen address")
		arch        = flag.String("arch", "Core2", "architecture assumed when a request omits ?arch=")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		maxBody     = flag.Int64("max-body", 32<<20, "advise body size limit in bytes")
		maxProfiles = flag.Int("max-profiles", 10000, "advise trace record limit")
		concurrency = flag.Int("concurrency", 8, "bound on concurrent ANN evaluation sections")
		cacheSize   = flag.Int("cache", 4096, "inference cache entries (negative disables)")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown drain budget")
		check       = flag.Bool("check", false, "validate the model registry and exit without serving")
		enablePprof = flag.Bool("pprof", false, "mount /debug/pprof/ (opt-in: profiling endpoints on a production listener)")
		traceOut    = flag.String("trace", "", "write a JSON-lines span trace of served requests to this file")
	)
	flag.Parse()

	f, err := os.Open(*modelsPath)
	if err != nil {
		log.Fatal(err)
	}
	set, err := training.LoadModelSet(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *check {
		log.Printf("%s: ok (%d models)", *modelsPath, set.Len())
		return
	}

	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		exp := telemetry.NewJSONLinesExporter(tf)
		defer func() {
			if err := exp.Close(); err != nil {
				log.Printf("warning: writing trace %s: %v", *traceOut, err)
			}
		}()
		tracer = telemetry.NewTracer(exp)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := serve.New(set, serve.Config{
		Addr:           *addr,
		DefaultArch:    *arch,
		MaxBodyBytes:   *maxBody,
		MaxProfiles:    *maxProfiles,
		RequestTimeout: *timeout,
		MaxConcurrent:  *concurrency,
		CacheSize:      *cacheSize,
		ShutdownGrace:  *grace,
		Logger:         logger,
		Tracer:         tracer,
		EnablePprof:    *enablePprof,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatal(err)
	}
}
