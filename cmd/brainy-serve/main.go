// Command brainy-serve runs the Brainy advisor as a long-lived HTTP
// service: it loads a trained model registry once and answers advise
// requests over JSON, the service shape of Figure 3's analysis front end.
//
// Usage:
//
//	brainy-serve -models models.json -addr :8377
//
// Endpoints:
//
//	POST /v1/advise?arch=Core2    profile trace in (JSON lines or array),
//	                              prioritized replacement plan out
//	POST /v1/profiles?arch=Core2  streamed snapshot windows in; per-instance
//	                              timelines and phase-drift detection out
//	GET  /v1/rollup               fleet rollup: per-kind instance, window,
//	                              advise, drift, and migration aggregates
//	GET  /v1/health               SLO burn-rate readiness verdict: ok,
//	                              degraded, critical (503), or draining (503)
//	GET  /v1/timeseries           self-observed metric history from the
//	                              in-process store (?series=&since=)
//	GET  /debug/brainy            live status page: feature timelines,
//	                              current vs. initial advice, drift flags
//	                              (?format=text|json|html)
//	GET  /debug/decisions         decision provenance journal: the flight
//	                              recorder's recent advise and drift records
//	                              (?format=text|json, filterable)
//	GET  /debug/traces            tail-sampled slow and errored traces as span
//	                              trees (-trace-slow; ?format=text|json)
//	GET  /healthz                 liveness and model count (stays 200 during
//	                              drain; /v1/health flips to draining)
//	GET  /metrics                 text exposition of service metrics
//	                              (latency buckets carry request-ID exemplars)
//	GET  /debug/pprof/            runtime profiling (only with -pprof)
//
// Every request carries a correlation ID: a client-supplied X-Request-ID is
// propagated, otherwise one is minted; either way it is echoed in the
// response header, every log line, and (with -trace) the request's spans.
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM; buffered trace output is flushed before exit on every path. With
// -check it only validates the registry (exit 0 when every model loads,
// non-zero otherwise) without binding a socket — the CI gate for freshly
// trained or hand-shipped artifacts.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/training"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy-serve: ")
	// All real work happens in run so its defers — trace flush above all —
	// execute on every exit path; log.Fatal here would skip them.
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		modelsPath  = flag.String("models", "models.json", "trained model registry (from brainy-train)")
		addr        = flag.String("addr", ":8377", "listen address")
		arch        = flag.String("arch", "Core2", "architecture assumed when a request omits ?arch=")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		maxBody     = flag.Int64("max-body", 32<<20, "advise body size limit in bytes")
		maxProfiles = flag.Int("max-profiles", 10000, "advise trace record limit")
		concurrency = flag.Int("concurrency", 8, "deprecated and ignored: evaluation runs on one batching goroutine per shard (see -shards)")
		shards      = flag.Int("shards", 0, "advisor shards owning cache/timeline/drift state and one batch queue each (0 = GOMAXPROCS)")
		batch       = flag.Int("batch", 32, "max queued inferences coalesced into one ANN matrix pass per shard")
		batchLinger = flag.Duration("batch-linger", 500*time.Microsecond, "how long a lone queued inference waits for batch-mates (negative = flush immediately)")
		logRequests = flag.Bool("log-requests", true, "emit one structured log line per request (disable for load tests)")
		cacheSize   = flag.Int("cache", 4096, "inference cache entries (negative disables)")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown drain budget")
		check       = flag.Bool("check", false, "validate the model registry and exit without serving")
		enablePprof = flag.Bool("pprof", false, "mount /debug/pprof/ (opt-in: profiling endpoints on a production listener)")
		traceOut    = flag.String("trace", "", "write a JSON-lines span trace of served requests to this file")

		maxInstances = flag.Int("max-instances", 256, "instance timelines retained for /v1/profiles (LRU beyond)")
		timelineWin  = flag.Int("timeline-windows", 32, "recent windows retained per instance timeline")
		driftRules   = flag.Bool("drift-rules", false, "evaluate drift with the deterministic rules advisor instead of the loaded models")
		driftWindow  = flag.Int("drift-window", 0, "windows blended per drift evaluation (0 = default)")
		driftHyst    = flag.Int("drift-hysteresis", 0, "consecutive divergent verdicts before a drift event (0 = default)")
		flightSize   = flag.Int("flight-size", 0, "decision flight-recorder records retained per shard on /debug/decisions (0 = default 256, negative disables)")

		sampleInterval = flag.Duration("sample-interval", time.Second, "self-observation scrape cadence for /v1/timeseries and /v1/health (negative disables)")
		samplePoints   = flag.Int("sample-points", 360, "points retained per self-observation series")
		traceSlow      = flag.Duration("trace-slow", 0, "tail-sample traces whose root span is at least this slow onto /debug/traces (0 disables the buffer)")
		traceBufSize   = flag.Int("trace-buffer", 64, "traces retained by the tail sampler")
		drainDelay     = flag.Duration("drain-delay", 0, "how long /v1/health advertises draining before the listener closes on shutdown")
		sloFastWin     = flag.Duration("slo-fast-window", time.Minute, "fast burn-rate window for /v1/health")
		sloSlowWin     = flag.Duration("slo-slow-window", 5*time.Minute, "slow burn-rate window for /v1/health")
		sloHyst        = flag.Int("slo-hysteresis", 2, "consecutive agreeing evaluations before a health verdict flips")
		sloAdviseP99   = flag.Duration("slo-advise-p99", 250*time.Millisecond, "advise latency SLO threshold")
		sloDegraded    = flag.Float64("slo-degraded-burn", 1, "error-budget burn rate that reports degraded")
		sloCritical    = flag.Float64("slo-critical-burn", 10, "error-budget burn rate that reports critical (503)")
	)
	flag.Parse()

	f, err := os.Open(*modelsPath)
	if err != nil {
		return err
	}
	set, err := training.LoadModelSet(f)
	f.Close()
	if err != nil {
		return err
	}
	if *check {
		log.Printf("%s: ok (%d models)", *modelsPath, set.Len())
		return nil
	}

	// The tracer fans out to whichever span sinks are enabled: the JSON-lines
	// file (-trace) and the tail-sampling buffer behind /debug/traces
	// (-trace-slow). With neither, the tracer is nil and spans cost nothing.
	var exps []telemetry.Exporter
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		exp := telemetry.NewJSONLinesExporter(tf)
		// Runs after the server has drained, on interrupt and error paths
		// alike: a SIGINT must never truncate the buffered span tail.
		defer func() {
			if err := exp.Close(); err != nil {
				log.Printf("warning: writing trace %s: %v", *traceOut, err)
			}
		}()
		exps = append(exps, exp)
	}
	var traceBuf *telemetry.TraceBuffer
	if *traceSlow > 0 {
		traceBuf = telemetry.NewTraceBuffer(*traceSlow, *traceBufSize)
		exps = append(exps, traceBuf)
	}
	tracer := telemetry.NewTracer(telemetry.Fanout(exps...))

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := serve.New(set, serve.Config{
		Addr:            *addr,
		DefaultArch:     *arch,
		MaxBodyBytes:    *maxBody,
		MaxProfiles:     *maxProfiles,
		RequestTimeout:  *timeout,
		MaxConcurrent:   *concurrency,
		Shards:          *shards,
		BatchSize:       *batch,
		BatchLinger:     *batchLinger,
		NoRequestLog:    !*logRequests,
		CacheSize:       *cacheSize,
		ShutdownGrace:   *grace,
		Logger:          logger,
		Tracer:          tracer,
		EnablePprof:     *enablePprof,
		MaxInstances:    *maxInstances,
		TimelineWindows: *timelineWin,
		DriftRules:      *driftRules,
		DriftWindow:     *driftWindow,
		DriftHysteresis: *driftHyst,
		FlightSize:      *flightSize,
		SampleInterval:  *sampleInterval,
		SamplePoints:    *samplePoints,
		AdviseP99Max:    *sloAdviseP99,
		SLOFastWindow:   *sloFastWin,
		SLOSlowWindow:   *sloSlowWin,
		SLODegradedBurn: *sloDegraded,
		SLOCriticalBurn: *sloCritical,
		SLOHysteresis:   *sloHyst,
		Traces:          traceBuf,
		DrainDelay:      *drainDelay,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.ListenAndServe(ctx)
}
