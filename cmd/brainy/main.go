// Command brainy is the analysis front end of Figure 3: it reads a trace of
// container profiles (written by the instrumented library) plus a trained
// model registry, and prints the prioritized replacement report.
//
// Usage:
//
//	brainy -models models.json -trace trace.jsonl -arch Core2
//	brainy -models models.json -trace windows.jsonl -windows
//	brainy -models models.json -demo xalan:reference -arch Atom
//
// The -demo mode profiles one of the built-in evaluation workloads in-place
// instead of reading a trace file.
//
// With -windows the trace is read as a snapshot-window stream (the output
// of profile.SnapshotExporter): the report gains a per-instance timeline
// summary and phase-drift detection, and the replacement report is computed
// over each instance's windows summed back into a whole-run profile. Pass
// -rules to run drift detection with the deterministic rules advisor
// instead of the loaded models.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/training"
	"repro/internal/workloads/chord"
	"repro/internal/workloads/raytrace"
	"repro/internal/workloads/relipmoc"
	"repro/internal/workloads/xalan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		modelsPath = flag.String("models", "models.json", "trained model registry (from brainy-train)")
		tracePath  = flag.String("trace", "", "JSON-lines profile trace to analyze")
		windows    = flag.Bool("windows", false, "read -trace as a snapshot-window stream: adds timelines and drift detection")
		rules      = flag.Bool("rules", false, "with -windows, detect drift with the deterministic rules advisor instead of the models")
		demo       = flag.String("demo", "", "profile a built-in workload instead: app[:input], e.g. xalan:train")
		archName   = flag.String("arch", "Core2", "architecture the trace was collected on (Core2 or Atom)")
		planPath   = flag.String("plan", "", "also write a machine-readable replacement plan (JSON) to this path")
	)
	flag.Parse()

	f, err := os.Open(*modelsPath)
	if err != nil {
		return err
	}
	set, err := training.LoadModelSet(f)
	f.Close()
	if err != nil {
		return err
	}
	brainy := core.New(set)

	var profiles []profile.Profile
	switch {
	case *windows:
		if *tracePath == "" {
			return fmt.Errorf("-windows requires -trace")
		}
		tf, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		profiles, err = analyzeWindows(tf, brainy, *archName, *rules)
		tf.Close()
		if err != nil {
			return err
		}
	case *demo != "":
		profiles, err = demoProfiles(*demo, *archName)
		if err != nil {
			return err
		}
	case *tracePath != "":
		tf, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		profiles, err = profile.ReadTrace(tf)
		tf.Close()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -trace or -demo is required")
	}

	report := brainy.Analyze(profiles, *archName)
	fmt.Print(report.Render())
	if len(report.Replacements()) == 0 {
		fmt.Println("no replacements suggested: the current containers look optimal")
	}
	if *planPath != "" {
		pf, err := os.Create(*planPath)
		if err != nil {
			return err
		}
		if err := report.WritePlan(pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote replacement plan to %s\n", *planPath)
	}
	return nil
}

// analyzeWindows decodes a snapshot-window stream, prints the per-instance
// timeline summary and any confirmed drift events, and returns one
// whole-run profile per instance (its windows summed back together) for the
// ordinary replacement report. Timelines are keyed "context#instance" so
// the report distinguishes multiple containers from one construction site.
func analyzeWindows(r *os.File, brainy *core.Brainy, archName string, useRules bool) ([]profile.Profile, error) {
	suggest := brainy.Suggest
	if useRules {
		suggest = drift.Rules
	}
	det := drift.New(suggest, drift.Config{})

	type agg struct {
		p       profile.Profile
		windows int
	}
	sums := map[string]*agg{}
	var order []string
	err := profile.DecodeWindows(r, func(w *profile.WindowRecord) error {
		// A suggester error (no model for this kind/arch) leaves the
		// instance unadvised; its timeline still accumulates.
		_, _ = det.Observe(w, archName)
		key := w.InstanceKey()
		a, ok := sums[key]
		if !ok {
			p := w.Profile
			p.Context = key
			sums[key] = &agg{p: p, windows: 1}
			order = append(order, key)
			return nil
		}
		a.p.Stats.Add(w.Stats)
		a.p.HW = a.p.HW.Add(w.HW)
		a.p.Cycles += w.Cycles
		a.windows++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no window records in stream (was this trace written with -windows profiling?)")
	}

	fmt.Printf("window timelines (%d instances):\n", len(order))
	statuses := map[string]drift.Status{}
	for _, st := range det.Statuses() {
		statuses[st.InstanceKey] = st
	}
	sorted := append([]string(nil), order...)
	sort.Strings(sorted)
	for _, key := range sorted {
		a := sums[key]
		line := fmt.Sprintf("  %-40s %-9s %4d windows  %8d ops",
			key, a.p.Kind, a.windows, a.p.Stats.TotalCalls())
		if st, ok := statuses[key]; ok && st.Advised {
			advice := st.Initial.String()
			if st.Current != st.Initial {
				advice = fmt.Sprintf("%s -> %s", st.Initial, st.Current)
			}
			line += fmt.Sprintf("  advice %s (confidence %.2f)", advice, st.Confidence)
			if st.Drifted() {
				line += fmt.Sprintf("  DRIFTED x%d", st.Events)
			}
		} else {
			line += "  advice -"
		}
		fmt.Println(line)
	}
	if evs := det.Events(); len(evs) > 0 {
		fmt.Printf("phase drift (%d events):\n", len(evs))
		for _, ev := range evs {
			fmt.Printf("  %s\n", ev)
		}
	} else {
		fmt.Println("phase drift: none detected")
	}
	fmt.Println()

	profiles := make([]profile.Profile, 0, len(order))
	for _, key := range order {
		profiles = append(profiles, sums[key].p)
	}
	return profiles, nil
}

func archByName(name string) (machine.Config, error) {
	switch name {
	case "Core2", "core2":
		return machine.Core2(), nil
	case "Atom", "atom":
		return machine.Atom(), nil
	}
	return machine.Config{}, fmt.Errorf("unknown architecture %q", name)
}

func demoProfiles(spec, archName string) ([]profile.Profile, error) {
	arch, err := archByName(archName)
	if err != nil {
		return nil, err
	}
	app, input := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		app, input = spec[:i], spec[i+1:]
	}
	switch app {
	case "xalan":
		if input == "" {
			input = "reference"
		}
		in, err := xalan.InputByName(input)
		if err != nil {
			return nil, err
		}
		return []profile.Profile{xalan.Run(xalan.Original(), in, arch).Profile}, nil
	case "chord":
		if input == "" {
			input = "medium"
		}
		in, err := chord.InputByName(input)
		if err != nil {
			return nil, err
		}
		return []profile.Profile{chord.Run(chord.Original(), in, arch).Profile}, nil
	case "relipmoc":
		return []profile.Profile{relipmoc.Run(relipmoc.Original(), relipmoc.Inputs()[1], arch).Profile}, nil
	case "raytrace":
		in, err := raytrace.InputByName("default")
		if err != nil {
			return nil, err
		}
		return []profile.Profile{raytrace.Run(raytrace.Original(), in, arch).Profile}, nil
	}
	return nil, fmt.Errorf("unknown demo app %q (want xalan, chord, relipmoc, raytrace)", app)
}
