// Command brainy is the analysis front end of Figure 3: it reads a trace of
// container profiles (written by the instrumented library) plus a trained
// model registry, and prints the prioritized replacement report.
//
// Usage:
//
//	brainy -models models.json -trace trace.jsonl -arch Core2
//	brainy -models models.json -demo xalan:reference -arch Atom
//
// The -demo mode profiles one of the built-in evaluation workloads in-place
// instead of reading a trace file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/training"
	"repro/internal/workloads/chord"
	"repro/internal/workloads/raytrace"
	"repro/internal/workloads/relipmoc"
	"repro/internal/workloads/xalan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy: ")
	var (
		modelsPath = flag.String("models", "models.json", "trained model registry (from brainy-train)")
		tracePath  = flag.String("trace", "", "JSON-lines profile trace to analyze")
		demo       = flag.String("demo", "", "profile a built-in workload instead: app[:input], e.g. xalan:train")
		archName   = flag.String("arch", "Core2", "architecture the trace was collected on (Core2 or Atom)")
		planPath   = flag.String("plan", "", "also write a machine-readable replacement plan (JSON) to this path")
	)
	flag.Parse()

	f, err := os.Open(*modelsPath)
	if err != nil {
		log.Fatal(err)
	}
	set, err := training.LoadModelSet(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	brainy := core.New(set)

	var profiles []profile.Profile
	switch {
	case *demo != "":
		profiles, err = demoProfiles(*demo, *archName)
		if err != nil {
			log.Fatal(err)
		}
	case *tracePath != "":
		tf, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		profiles, err = profile.ReadTrace(tf)
		tf.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("one of -trace or -demo is required")
	}

	report := brainy.Analyze(profiles, *archName)
	fmt.Print(report.Render())
	if len(report.Replacements()) == 0 {
		fmt.Println("no replacements suggested: the current containers look optimal")
	}
	if *planPath != "" {
		pf, err := os.Create(*planPath)
		if err != nil {
			log.Fatal(err)
		}
		defer pf.Close()
		if err := report.WritePlan(pf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote replacement plan to %s\n", *planPath)
	}
}

func archByName(name string) (machine.Config, error) {
	switch name {
	case "Core2", "core2":
		return machine.Core2(), nil
	case "Atom", "atom":
		return machine.Atom(), nil
	}
	return machine.Config{}, fmt.Errorf("unknown architecture %q", name)
}

func demoProfiles(spec, archName string) ([]profile.Profile, error) {
	arch, err := archByName(archName)
	if err != nil {
		return nil, err
	}
	app, input := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		app, input = spec[:i], spec[i+1:]
	}
	switch app {
	case "xalan":
		if input == "" {
			input = "reference"
		}
		in, err := xalan.InputByName(input)
		if err != nil {
			return nil, err
		}
		return []profile.Profile{xalan.Run(xalan.Original(), in, arch).Profile}, nil
	case "chord":
		if input == "" {
			input = "medium"
		}
		in, err := chord.InputByName(input)
		if err != nil {
			return nil, err
		}
		return []profile.Profile{chord.Run(chord.Original(), in, arch).Profile}, nil
	case "relipmoc":
		return []profile.Profile{relipmoc.Run(relipmoc.Original(), relipmoc.Inputs()[1], arch).Profile}, nil
	case "raytrace":
		in, err := raytrace.InputByName("default")
		if err != nil {
			return nil, err
		}
		return []profile.Profile{raytrace.Run(raytrace.Original(), in, arch).Profile}, nil
	}
	return nil, fmt.Errorf("unknown demo app %q (want xalan, chord, relipmoc, raytrace)", app)
}
