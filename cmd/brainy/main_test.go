package main

import "testing"

func TestArchByName(t *testing.T) {
	for _, name := range []string{"Core2", "core2", "Atom", "atom"} {
		if _, err := archByName(name); err != nil {
			t.Fatalf("archByName(%q): %v", name, err)
		}
	}
	if _, err := archByName("pentium"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestDemoProfiles(t *testing.T) {
	for _, spec := range []string{"xalan:test", "chord:small", "raytrace"} {
		profiles, err := demoProfiles(spec, "Core2")
		if err != nil {
			t.Fatalf("demoProfiles(%q): %v", spec, err)
		}
		if len(profiles) != 1 || profiles[0].Cycles <= 0 {
			t.Fatalf("demoProfiles(%q) returned %d profiles", spec, len(profiles))
		}
	}
	if _, err := demoProfiles("doom", "Core2"); err == nil {
		t.Fatal("unknown demo accepted")
	}
	if _, err := demoProfiles("xalan:bogus", "Core2"); err == nil {
		t.Fatal("unknown input accepted")
	}
	if _, err := demoProfiles("xalan", "pentium"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}
