// Command adaptivebench measures the self-tuning adaptive container against
// every static backend choice on the repository's workload kernels and
// writes the comparison to BENCH_adaptive.json.
//
// For each workload the adaptive container starts on the kind the original
// application shipped with and is free to hot-migrate when its embedded
// drift detector fires; the static baselines run the identical operation
// stream on each fixed candidate kind. Costs are simulated cycles on the
// same machine model the rest of the repository benchmarks with, including
// each kernel's non-container compute share, so the adaptive number pays
// for its own migration traffic.
//
// Usage:
//
//	adaptivebench [-o BENCH_adaptive.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/adt"
	"repro/internal/containers/adaptive"
	"repro/internal/drift"
	"repro/internal/machine"
	"repro/internal/workloads/chord"
	"repro/internal/workloads/phases"
	"repro/internal/workloads/raytrace"
	"repro/internal/workloads/relipmoc"
	"repro/internal/workloads/xalan"
)

// WorkloadResult is one workload's adaptive-versus-static comparison.
type WorkloadResult struct {
	Name     string `json:"name"`
	Input    string `json:"input"`
	Original string `json:"original"`

	AdaptiveCycles float64              `json:"adaptive_cycles"`
	FinalKind      string               `json:"adaptive_final_kind"`
	Migrations     []adaptive.Migration `json:"migrations"`
	DriftSkipped   uint64               `json:"drift_skipped"`

	Static           map[string]float64 `json:"static_cycles"`
	BestStatic       string             `json:"best_static"`
	BestStaticCycles float64            `json:"best_static_cycles"`

	// VsOriginal and VsBest are the adaptive cycle count relative to the
	// original static choice and to the best static choice (1.0 = parity,
	// below 1.0 = adaptive is cheaper).
	VsOriginal float64 `json:"vs_original"`
	VsBest     float64 `json:"vs_best"`
}

// Report is the BENCH_adaptive.json schema.
type Report struct {
	GeneratedBy string           `json:"generated_by"`
	Arch        string           `json:"arch"`
	Window      int              `json:"window"`
	Workloads   []WorkloadResult `json:"workloads"`
}

const window = 64

func detector() drift.Config { return drift.Config{Window: 2, Hysteresis: 2} }

// finish fills the derived comparison fields from the raw measurements.
func finish(r WorkloadResult) WorkloadResult {
	for name, c := range r.Static {
		if r.BestStatic == "" || c < r.BestStaticCycles {
			r.BestStatic, r.BestStaticCycles = name, c
		}
	}
	if orig := r.Static[r.Original]; orig > 0 {
		r.VsOriginal = r.AdaptiveCycles / orig
	}
	if r.BestStaticCycles > 0 {
		r.VsBest = r.AdaptiveCycles / r.BestStaticCycles
	}
	return r
}

func benchPhases(arch machine.Config) WorkloadResult {
	cfg := phases.Config{}
	m := machine.New(arch)
	a := adaptive.New(m, adaptive.Config{
		Kind: phases.Original, ElemSize: 8, Context: phases.Context,
		Window: window, Detector: detector(), Arch: arch.Name,
	})
	phases.Drive(a, cfg)
	a.FlushWindow()

	static := map[string]float64{}
	for _, k := range []adt.Kind{phases.Original, adt.KindSet, adt.KindHashSet} {
		sm := machine.New(arch)
		phases.Drive(adt.New(k, sm, 8), cfg)
		static[k.String()] = sm.Cycles()
	}
	return finish(WorkloadResult{
		Name: "phasedemo", Input: "default", Original: phases.Original.String(),
		AdaptiveCycles: m.Cycles(), FinalKind: a.Kind().String(),
		Migrations: a.Migrations(), DriftSkipped: a.DriftSkipped(),
		Static: static,
	})
}

func benchChord(arch machine.Config) WorkloadResult {
	in := chord.Inputs()[0]
	m := machine.New(arch)
	a := adaptive.New(m, adaptive.Config{
		Kind: chord.Original(), ElemSize: in.MsgBytes, Context: "chord/simulator.pendingList",
		Window: window, Detector: detector(), Arch: arch.Name,
	})
	chord.Drive(a, in)
	a.FlushWindow()
	p := a.Snapshot()

	static := map[string]float64{}
	for _, r := range chord.RunAll(in, arch) {
		static[r.Kind.String()] = r.Cycles
	}
	return finish(WorkloadResult{
		Name: "chord", Input: in.Name, Original: chord.Original().String(),
		AdaptiveCycles: p.Cycles + in.ComputeShare*float64(in.Queries),
		FinalKind:      a.Kind().String(),
		Migrations:     a.Migrations(), DriftSkipped: a.DriftSkipped(),
		Static: static,
	})
}

func benchRaytrace(arch machine.Config) WorkloadResult {
	// The default input: the small one gives each group too few operations
	// for the confirmation latency (two windows) to leave adaptation room.
	in := raytrace.Inputs()[1]
	m := machine.New(arch)
	var groups []*adaptive.Container
	raytrace.Drive(in, func(g int) adt.Container {
		a := adaptive.New(m, adaptive.Config{
			Kind: raytrace.Original(), ElemSize: in.SphereBytes,
			Context: "raytrace/group[*].scenes", Instance: g, OrderAware: true,
			Window: window, Detector: detector(), Arch: arch.Name,
		})
		groups = append(groups, a)
		return a
	})
	var cycles float64
	var migs []adaptive.Migration
	var skipped uint64
	final := raytrace.Original()
	for _, a := range groups {
		a.FlushWindow()
		cycles += a.Snapshot().Cycles
		migs = append(migs, a.Migrations()...)
		skipped += a.DriftSkipped()
		final = a.Kind() // the groups see the same mix; report the last
	}
	static := map[string]float64{}
	for _, r := range raytrace.RunAll(in, arch) {
		static[r.Kind.String()] = r.Cycles
	}
	return finish(WorkloadResult{
		Name: "raytrace", Input: in.Name, Original: raytrace.Original().String(),
		AdaptiveCycles: cycles + in.ComputeShare*float64(in.Width*in.Height),
		FinalKind:      final.String(),
		Migrations:     migs, DriftSkipped: skipped,
		Static: static,
	})
}

func benchRelipmoc(arch machine.Config) WorkloadResult {
	in := relipmoc.Inputs()[0]
	m := machine.New(arch)
	a := adaptive.New(m, adaptive.Config{
		Kind: relipmoc.Original(), ElemSize: 16, Context: "relipmoc/BasicBlockSet",
		OrderAware: true, Window: window, Detector: detector(), Arch: arch.Name,
	})
	an := relipmoc.Drive(a, in)
	a.FlushWindow()
	p := a.Snapshot()

	static := map[string]float64{}
	for _, r := range relipmoc.RunAll(in, arch) {
		static[r.Kind.String()] = r.Cycles
	}
	return finish(WorkloadResult{
		Name: "relipmoc", Input: in.Name, Original: relipmoc.Original().String(),
		AdaptiveCycles: p.Cycles + in.ComputeShare*float64(len(an.Blocks)*in.Passes),
		FinalKind:      a.Kind().String(),
		Migrations:     a.Migrations(), DriftSkipped: a.DriftSkipped(),
		Static: static,
	})
}

func benchXalan(arch machine.Config) WorkloadResult {
	in := xalan.Inputs()[0]
	m := machine.New(arch)
	a := adaptive.New(m, adaptive.Config{
		Kind: xalan.Original(), ElemSize: in.StringBytes,
		Context: "xalan/XalanDOMStringCache.m_busyList",
		Window:  window, Detector: detector(), Arch: arch.Name,
	})
	xalan.Drive(a, in)
	a.FlushWindow()
	p := a.Snapshot()

	static := map[string]float64{}
	for _, r := range xalan.RunAll(in, arch) {
		static[r.Kind.String()] = r.Cycles
	}
	return finish(WorkloadResult{
		Name: "xalan", Input: in.Name, Original: xalan.Original().String(),
		AdaptiveCycles: p.Cycles + in.ComputeShare*float64(in.Releases),
		FinalKind:      a.Kind().String(),
		Migrations:     a.Migrations(), DriftSkipped: a.DriftSkipped(),
		Static: static,
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptivebench: ")
	out := flag.String("o", "BENCH_adaptive.json", "output file")
	flag.Parse()

	arch := machine.Core2()
	rep := Report{
		GeneratedBy: "cmd/adaptivebench",
		Arch:        arch.Name,
		Window:      window,
		Workloads: []WorkloadResult{
			benchPhases(arch),
			benchChord(arch),
			benchRaytrace(arch),
			benchRelipmoc(arch),
			benchXalan(arch),
		},
	}

	fmt.Printf("%-10s %-9s %-10s %-10s %10s %10s %6s %6s  migrations\n",
		"workload", "input", "original", "final", "adaptive", "best", "vs_or", "vs_bst")
	for _, w := range rep.Workloads {
		fmt.Printf("%-10s %-9s %-10s %-10s %10.0f %10.0f %6.2f %6.2f  %d\n",
			w.Name, w.Input, w.Original, w.FinalKind,
			w.AdaptiveCycles, w.BestStaticCycles, w.VsOriginal, w.VsBest, len(w.Migrations))
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
