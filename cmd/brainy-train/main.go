// Command brainy-train runs the two-phase training framework of Section 4.3
// and writes the trained model registry to disk — the "train once per
// machine at install time" step of the paper's usage model.
//
// Training streams on one shared worker pool across every (model,
// architecture) pair and checkpoints each target's Phase-I labels, Phase-II
// dataset, and fitted model as they complete. A run interrupted with ^C (or
// SIGTERM) exits cleanly after the in-flight simulations drain — buffered
// trace and profile output is flushed on every exit path; re-running with
// -resume skips every finished stage and produces a registry identical to
// an uninterrupted run.
//
// The run is observable end to end: -progress prints periodic throughput
// lines (seeds/sec, labels found, ETA) to stderr so stdout stays
// scriptable, -trace exports a JSON-lines span trace of every stage,
// -report writes a machine-readable end-of-run summary (per-stage wall
// clock, label distribution, validation accuracy, event throughput), and
// -metrics-addr serves the live brainy_train_* counter registry over HTTP
// for scraping during long runs.
//
// Usage:
//
//	brainy-train [-arch core2|atom|both] [-apps N] [-calls N] [-o models.json]
//	             [-workers N] [-checkpoint DIR] [-resume] [-validate N]
//	             [-progress] [-progress-interval DUR] [-trace FILE] [-report FILE]
//	             [-metrics-addr ADDR] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/training"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy-train: ")
	// All real work happens in run so its defers — trace and profile
	// flushes above all — execute on every exit path, the interrupted one
	// included; log.Fatal here would skip them.
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		archName    = flag.String("arch", "both", "microarchitecture to train for: core2, atom, or both")
		apps        = flag.Int("apps", 300, "labelled training applications per model (Phase-I threshold)")
		maxSeeds    = flag.Int("max-seeds", 0, "Phase-I generation bound (default 20x apps)")
		calls       = flag.Int("calls", 500, "interface calls per synthetic application")
		epochs      = flag.Int("epochs", 250, "ANN training epochs")
		out         = flag.String("o", "models.json", "output path for the model registry")
		workers     = flag.Int("workers", 0, "shared worker pool size (0 = GOMAXPROCS)")
		ckptDir     = flag.String("checkpoint", "", "checkpoint directory (default <output>.ckpt)")
		resume      = flag.Bool("resume", false, "resume from the checkpoint directory, skipping finished targets")
		valApps     = flag.Int("validate", 0, "oracle-validation applications per model after fitting (0 disables)")
		progress    = flag.Bool("progress", false, "print periodic throughput/ETA lines to stderr")
		progIval    = flag.Duration("progress-interval", 10*time.Second, "interval between -progress lines")
		traceOut    = flag.String("trace", "", "write a JSON-lines span trace of the run to this file")
		report      = flag.String("report", "", "write the machine-readable end-of-run report (JSON) to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve the live brainy_train_* metric registry over HTTP on this address (e.g. :9377)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the training run to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile (taken after training) to this file")
	)
	flag.Parse()

	// Profiling hooks so pipeline perf work never needs code edits: the CPU
	// profile brackets the whole run, the heap profile is captured after
	// training completes (post-GC, so it shows what the run retains).
	var stopCPUProfile func()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("warning: closing %s: %v", *cpuProf, err)
			}
		}
	}
	// finishProfiles flushes both profiles; deferred, and also called
	// explicitly before the final summary, so partial runs still profile
	// cleanly no matter which path exits run.
	finishProfiles := func() {
		if stopCPUProfile != nil {
			stopCPUProfile()
			stopCPUProfile = nil
		}
		if *memProf == "" {
			return
		}
		path := *memProf
		*memProf = "" // write once
		f, err := os.Create(path)
		if err != nil {
			log.Printf("warning: writing heap profile %s: %v", path, err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Printf("warning: writing heap profile %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Printf("warning: writing %s: %v", path, err)
		}
	}
	defer finishProfiles()

	// The span trace is flushed on every exit path, interrupted ones
	// included — a partial trace of a cancelled run is still evidence. The
	// deferred Close drains the exporter's buffer; without it a ^C could
	// truncate the final spans.
	var tracer *telemetry.Tracer
	var traceExp *telemetry.JSONLinesExporter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceExp = telemetry.NewJSONLinesExporter(f)
		tracer = telemetry.NewTracer(traceExp)
	}
	finishTrace := func() {
		if traceExp == nil {
			return
		}
		if err := traceExp.Close(); err != nil {
			log.Printf("warning: writing trace %s: %v", *traceOut, err)
		}
		traceExp = nil
	}
	defer finishTrace()

	// Live metric scraping for long runs: the same registry the -report
	// summary reads, served as text exposition while training is still
	// going.
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("binding -metrics-addr: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", training.Registry)
		log.Printf("serving metrics on http://%s/metrics", ln.Addr())
		go func() {
			srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := srv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("warning: metrics listener: %v", err)
			}
		}()
	}

	var archs []machine.Config
	switch *archName {
	case "core2":
		archs = []machine.Config{machine.Core2()}
	case "atom":
		archs = []machine.Config{machine.Atom()}
	case "both":
		archs = []machine.Config{machine.Core2(), machine.Atom()}
	default:
		return fmt.Errorf("unknown -arch %q", *archName)
	}
	if *maxSeeds == 0 {
		*maxSeeds = 20 * *apps
	}
	if *ckptDir == "" {
		*ckptDir = *out + ".ckpt"
	}
	if !*resume {
		if _, err := os.Stat(*ckptDir); err == nil {
			log.Printf("discarding stale checkpoint %s (pass -resume to continue it)", *ckptDir)
		}
		if err := os.RemoveAll(*ckptDir); err != nil {
			return err
		}
	}
	cp, err := training.NewCheckpointer(*ckptDir)
	if err != nil {
		return err
	}

	annCfg := ann.DefaultConfig()
	annCfg.Epochs = *epochs
	opts := make([]training.Options, 0, len(archs))
	for _, arch := range archs {
		opt := training.DefaultOptions(arch)
		opt.PerTargetApps = *apps
		opt.MaxSeeds = *maxSeeds
		opt.AppCfg.TotalInterfCalls = *calls
		opt.AppCfg.MaxPrepopulate = 4 * *calls
		opt.AppCfg.MaxIterCount = 4 * *calls
		opts = append(opts, opt)
	}

	// ^C cancels the pipeline; in-flight simulations drain, completed
	// stages are already on disk, and a second ^C kills the process via the
	// default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	targets := adt.Targets()

	// Live progress to stderr: stdout carries only the per-target result
	// lines and the final summary, so pipelines stay scriptable.
	if *progress {
		if *progIval <= 0 {
			return fmt.Errorf("-progress-interval must be positive, got %s", *progIval)
		}
		totalLabels := uint64(*apps) * uint64(len(targets)) * uint64(len(archs))
		ticker := time.NewTicker(*progIval)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-ticker.C:
					printProgress(start, totalLabels)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	var (
		resMu   sync.Mutex
		results []training.TargetResult
	)
	cfg := training.PipelineConfig{
		Workers:        *workers,
		Checkpoint:     cp,
		Tracer:         tracer,
		ValidationApps: *valApps,
		OnTarget: func(r training.TargetResult) {
			resMu.Lock()
			results = append(results, r)
			resMu.Unlock()
			mode := "order-aware"
			if !r.Model.Target.OrderAware {
				mode = "order-oblivious"
			}
			if r.Resumed && r.SeedsScanned == 0 && r.Examples == 0 {
				fmt.Printf("%-6s %-9s %-15s resumed from checkpoint\n", r.Arch, r.Model.Target.Kind, mode)
				return
			}
			note := ""
			if r.Dropped > 0 {
				note = fmt.Sprintf("  dropped %d", r.Dropped)
			}
			if r.ValApps > 0 {
				note += fmt.Sprintf("  val-acc %.0f%% (%d apps)", 100*r.ValAccuracy, r.ValApps)
			}
			fmt.Printf("%-6s %-9s %-15s %4d apps  %5d seeds scanned  train-acc %.0f%%  (%.1fs)%s\n",
				r.Arch, r.Model.Target.Kind, mode, r.Examples, r.SeedsScanned,
				100*r.TrainAccuracy, r.Elapsed.Seconds(), note)
		},
	}

	set, err := training.TrainArchs(ctx, opts, annCfg, targets, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			elapsed := time.Since(start).Seconds()
			log.Printf("interrupted after %.1fs: %d seeds scanned, %d labels found",
				elapsed, training.Metrics.SeedsScanned.Value(), training.Metrics.LabelsFound.Value())
			return fmt.Errorf("progress checkpointed in %s — re-run with -resume to continue", *ckptDir)
		}
		return err
	}
	finish := time.Now()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := set.Save(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	// The registry is the durable artifact; a complete run has no further
	// use for its checkpoints.
	if err := os.RemoveAll(*ckptDir); err != nil {
		log.Printf("warning: could not remove checkpoint %s: %v", *ckptDir, err)
	}

	if *report != "" {
		rep := training.BuildReport(results, start, finish)
		rf, err := os.Create(*report)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(rf); err != nil {
			rf.Close()
			return fmt.Errorf("writing %s: %w", *report, err)
		}
		if err := rf.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", *report, err)
		}
	}

	finishTrace()
	finishProfiles()
	elapsed := finish.Sub(start).Seconds()
	scanned := training.Metrics.SeedsScanned.Value()
	fmt.Printf("wrote %d models to %s (%.1fs, %d seeds scanned, %.0f seeds/sec, %.3g simulated cycles)\n",
		set.Len(), *out, elapsed, scanned, float64(scanned)/elapsed, training.Metrics.CyclesSimulated.Value())
	return nil
}

// printProgress emits one live status line to stderr: scan throughput,
// label progress against the run's label budget, and a crude ETA from the
// label rate so far.
func printProgress(start time.Time, totalLabels uint64) {
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return
	}
	scanned := training.Metrics.SeedsScanned.Value()
	labels := training.Metrics.LabelsFound.Value()
	line := fmt.Sprintf("progress: %5.0fs  %7d seeds (%.0f/s)  %6d/%d labels",
		elapsed, scanned, float64(scanned)/elapsed, labels, totalLabels)
	if labels > 0 && labels < totalLabels {
		rate := float64(labels) / elapsed
		eta := time.Duration(float64(totalLabels-labels) / rate * float64(time.Second))
		line += fmt.Sprintf("  eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(os.Stderr, line)
}
