// Command brainy-train runs the two-phase training framework of Section 4.3
// and writes the trained model registry to disk — the "train once per
// machine at install time" step of the paper's usage model.
//
// Training streams on one shared worker pool across every (model,
// architecture) pair and checkpoints each target's Phase-I labels, Phase-II
// dataset, and fitted model as they complete. A run interrupted with ^C (or
// SIGTERM) exits cleanly after the in-flight simulations drain; re-running
// with -resume skips every finished stage and produces a registry identical
// to an uninterrupted run.
//
// Usage:
//
//	brainy-train [-arch core2|atom|both] [-apps N] [-calls N] [-o models.json]
//	             [-workers N] [-checkpoint DIR] [-resume]
//	             [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/machine"
	"repro/internal/training"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy-train: ")
	var (
		archName = flag.String("arch", "both", "microarchitecture to train for: core2, atom, or both")
		apps     = flag.Int("apps", 300, "labelled training applications per model (Phase-I threshold)")
		maxSeeds = flag.Int("max-seeds", 0, "Phase-I generation bound (default 20x apps)")
		calls    = flag.Int("calls", 500, "interface calls per synthetic application")
		epochs   = flag.Int("epochs", 250, "ANN training epochs")
		out      = flag.String("o", "models.json", "output path for the model registry")
		workers  = flag.Int("workers", 0, "shared worker pool size (0 = GOMAXPROCS)")
		ckptDir  = flag.String("checkpoint", "", "checkpoint directory (default <output>.ckpt)")
		resume   = flag.Bool("resume", false, "resume from the checkpoint directory, skipping finished targets")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the training run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (taken after training) to this file")
	)
	flag.Parse()

	// Profiling hooks so pipeline perf work never needs code edits: the CPU
	// profile brackets the whole run, the heap profile is captured after
	// training completes (post-GC, so it shows what the run retains).
	var stopCPUProfile func()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("starting CPU profile: %v", err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("warning: closing %s: %v", *cpuProf, err)
			}
		}
	}
	// finishProfiles flushes both profiles; it runs before every exit path
	// (including the interrupted one) so partial runs still profile cleanly.
	finishProfiles := func() {
		if stopCPUProfile != nil {
			stopCPUProfile()
			stopCPUProfile = nil
		}
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("writing heap profile: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("writing %s: %v", *memProf, err)
		}
	}

	var archs []machine.Config
	switch *archName {
	case "core2":
		archs = []machine.Config{machine.Core2()}
	case "atom":
		archs = []machine.Config{machine.Atom()}
	case "both":
		archs = []machine.Config{machine.Core2(), machine.Atom()}
	default:
		log.Fatalf("unknown -arch %q", *archName)
	}
	if *maxSeeds == 0 {
		*maxSeeds = 20 * *apps
	}
	if *ckptDir == "" {
		*ckptDir = *out + ".ckpt"
	}
	if !*resume {
		if _, err := os.Stat(*ckptDir); err == nil {
			log.Printf("discarding stale checkpoint %s (pass -resume to continue it)", *ckptDir)
		}
		if err := os.RemoveAll(*ckptDir); err != nil {
			log.Fatal(err)
		}
	}
	cp, err := training.NewCheckpointer(*ckptDir)
	if err != nil {
		log.Fatal(err)
	}

	annCfg := ann.DefaultConfig()
	annCfg.Epochs = *epochs
	opts := make([]training.Options, 0, len(archs))
	for _, arch := range archs {
		opt := training.DefaultOptions(arch)
		opt.PerTargetApps = *apps
		opt.MaxSeeds = *maxSeeds
		opt.AppCfg.TotalInterfCalls = *calls
		opt.AppCfg.MaxPrepopulate = 4 * *calls
		opt.AppCfg.MaxIterCount = 4 * *calls
		opts = append(opts, opt)
	}

	// ^C cancels the pipeline; in-flight simulations drain, completed
	// stages are already on disk, and a second ^C kills the process via the
	// default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := training.PipelineConfig{
		Workers:    *workers,
		Checkpoint: cp,
		OnTarget: func(r training.TargetResult) {
			mode := "order-aware"
			if !r.Model.Target.OrderAware {
				mode = "order-oblivious"
			}
			if r.Resumed && r.SeedsScanned == 0 && r.Examples == 0 {
				fmt.Printf("%-6s %-9s %-15s resumed from checkpoint\n", r.Arch, r.Model.Target.Kind, mode)
				return
			}
			note := ""
			if r.Dropped > 0 {
				note = fmt.Sprintf("  dropped %d", r.Dropped)
			}
			fmt.Printf("%-6s %-9s %-15s %4d apps  %5d seeds scanned  train-acc %.0f%%  (%.1fs)%s\n",
				r.Arch, r.Model.Target.Kind, mode, r.Examples, r.SeedsScanned,
				100*r.TrainAccuracy, r.Elapsed.Seconds(), note)
		},
	}

	start := time.Now()
	set, err := training.TrainArchs(ctx, opts, annCfg, adt.Targets(), cfg)
	if err != nil {
		finishProfiles()
		if errors.Is(err, context.Canceled) {
			elapsed := time.Since(start).Seconds()
			log.Printf("interrupted after %.1fs: %d seeds scanned, %d labels found",
				elapsed, training.Metrics.SeedsScanned.Value(), training.Metrics.LabelsFound.Value())
			log.Fatalf("progress checkpointed in %s — re-run with -resume to continue", *ckptDir)
		}
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := set.Save(f); err != nil {
		f.Close()
		log.Fatalf("writing %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	// The registry is the durable artifact; a complete run has no further
	// use for its checkpoints.
	if err := os.RemoveAll(*ckptDir); err != nil {
		log.Printf("warning: could not remove checkpoint %s: %v", *ckptDir, err)
	}

	finishProfiles()
	elapsed := time.Since(start).Seconds()
	scanned := training.Metrics.SeedsScanned.Value()
	fmt.Printf("wrote %d models to %s (%.1fs, %d seeds scanned, %.0f seeds/sec, %.3g simulated cycles)\n",
		set.Len(), *out, elapsed, scanned, float64(scanned)/elapsed, training.Metrics.CyclesSimulated.Value())
}
