// Command brainy-train runs the two-phase training framework of Section 4.3
// and writes the trained model registry to disk — the "train once per
// machine at install time" step of the paper's usage model.
//
// Usage:
//
//	brainy-train [-arch core2|atom|both] [-apps N] [-calls N] [-o models.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/machine"
	"repro/internal/training"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy-train: ")
	var (
		archName = flag.String("arch", "both", "microarchitecture to train for: core2, atom, or both")
		apps     = flag.Int("apps", 300, "labelled training applications per model (Phase-I threshold)")
		maxSeeds = flag.Int("max-seeds", 0, "Phase-I generation bound (default 20x apps)")
		calls    = flag.Int("calls", 500, "interface calls per synthetic application")
		epochs   = flag.Int("epochs", 250, "ANN training epochs")
		out      = flag.String("o", "models.json", "output path for the model registry")
	)
	flag.Parse()

	var archs []machine.Config
	switch *archName {
	case "core2":
		archs = []machine.Config{machine.Core2()}
	case "atom":
		archs = []machine.Config{machine.Atom()}
	case "both":
		archs = []machine.Config{machine.Core2(), machine.Atom()}
	default:
		log.Fatalf("unknown -arch %q", *archName)
	}
	if *maxSeeds == 0 {
		*maxSeeds = 20 * *apps
	}

	set := training.NewModelSet()
	annCfg := ann.DefaultConfig()
	annCfg.Epochs = *epochs
	for _, arch := range archs {
		opt := training.DefaultOptions(arch)
		opt.PerTargetApps = *apps
		opt.MaxSeeds = *maxSeeds
		opt.AppCfg.TotalInterfCalls = *calls
		opt.AppCfg.MaxPrepopulate = 4 * *calls
		opt.AppCfg.MaxIterCount = 4 * *calls
		for _, tgt := range adt.Targets() {
			start := time.Now()
			labels := training.Phase1(tgt, opt)
			ds := training.Phase2(tgt, labels, opt)
			m, err := training.TrainModel(ds, arch.Name, annCfg)
			if err != nil {
				log.Fatalf("training %v on %s: %v", tgt.Kind, arch.Name, err)
			}
			set.Put(m)
			mode := "order-aware"
			if !tgt.OrderAware {
				mode = "order-oblivious"
			}
			fmt.Printf("%-6s %-9s %-15s %4d apps  train-acc %.0f%%  (%.1fs)\n",
				arch.Name, tgt.Kind, mode, len(ds.Examples),
				100*m.Net.Accuracy(ds.Examples), time.Since(start).Seconds())
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := set.Save(f); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %d models to %s\n", set.Len(), *out)
}
