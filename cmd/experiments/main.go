// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale small|full] [-models models.json] fig1 fig2 tab1 ...
//	experiments -scale small all
//
// Experiments needing trained models (fig8, xalan, chord, relipmoc,
// raytrace) train in-process unless -models points at a registry written by
// brainy-train.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/training"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scaleName  = flag.String("scale", "small", "experiment scale: small or full")
		modelsPath = flag.String("models", "", "optional pre-trained model registry")
		apps       = flag.Int("apps", 0, "override: training applications per model")
		calls      = flag.Int("calls", 0, "override: interface calls per synthetic application")
		validation = flag.Int("validation", 0, "override: validation applications per model")
	)
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		fmt.Println("available experiments: fig1 fig2 tab1 tab2 tab3 fig6 fig7 fig8 fig9 tab4 xalan chord relipmoc raytrace ablations all")
		return
	}

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.SmallScale()
	case "full":
		sc = experiments.FullScale()
	default:
		log.Fatalf("unknown -scale %q", *scaleName)
	}
	if *apps > 0 {
		sc.TrainApps = *apps
		sc.MaxSeeds = 20 * *apps
	}
	if *calls > 0 {
		sc.Calls = *calls
	}
	if *validation > 0 {
		sc.ValidationApps = *validation
	}

	var brainy *core.Brainy
	loadBrainy := func() *core.Brainy {
		if brainy != nil {
			return brainy
		}
		if *modelsPath != "" {
			f, err := os.Open(*modelsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			set, err := training.LoadModelSet(f)
			if err != nil {
				log.Fatal(err)
			}
			brainy = core.New(set)
			return brainy
		}
		log.Printf("training models in-process at %s scale (use -models to skip)...", sc.Name)
		set, err := experiments.TrainModels(sc)
		if err != nil {
			log.Fatal(err)
		}
		brainy = core.New(set)
		return brainy
	}

	if len(names) == 1 && names[0] == "all" {
		names = []string{"fig1", "fig2", "tab1", "tab2", "tab3", "fig6", "fig7", "fig9",
			"tab4", "xalan", "chord", "relipmoc", "raytrace", "fig8", "ablations"}
	}

	for _, name := range names {
		start := time.Now()
		switch name {
		case "fig1":
			fmt.Print(experiments.Figure1(sc).Render())
		case "fig2":
			fmt.Print(experiments.Figure2().Render())
		case "tab1":
			fmt.Print(experiments.Table1())
		case "tab2":
			fmt.Print(experiments.Table2())
		case "tab3":
			res, err := experiments.Table3(sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Render())
		case "fig6":
			fmt.Print(experiments.Figure6(sc).Render())
		case "fig7":
			fmt.Print(experiments.Figure7())
		case "fig8":
			res, err := experiments.Figure8(loadBrainy())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Render())
		case "fig9":
			res, err := experiments.Figure9(sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Render())
		case "tab4":
			fmt.Print(experiments.RenderTable4(experiments.Table4()))
		case "xalan", "chord", "relipmoc", "raytrace":
			cases, err := experiments.CaseStudy(name, loadBrainy())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.RenderCases(cases))
		case "ablations":
			for _, run := range []func(experiments.Scale) (experiments.AblationResult, error){
				experiments.AblationHardwareFeatures,
				experiments.AblationThreshold,
				experiments.AblationCrossArch,
				func(s experiments.Scale) (experiments.AblationResult, error) {
					return experiments.AblationHiddenWidth(s, nil)
				},
				func(s experiments.Scale) (experiments.AblationResult, error) {
					return experiments.AblationTrainingSize(s, nil)
				},
			} {
				res, err := run(sc)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Print(res.Render())
			}
		default:
			log.Fatalf("unknown experiment %q", name)
		}
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}
