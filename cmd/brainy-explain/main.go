// Command brainy-explain answers "why did Brainy say that" for one served
// request: it fetches the decision journaled by brainy-serve's flight
// recorder for a request ID (the X-Request-ID echoed on every response,
// surfaced by /metrics latency exemplars and loadgen's p99_exemplars), then
// renders the verdict's provenance — the full class distribution the model
// picked from, how the request resolved (cache hit or batch, and how big
// the batch was), the feature vector against the fleet mean for that kind
// from /v1/rollup, and the instance's drift timeline from /debug/brainy.
//
// Usage:
//
//	brainy-explain -addr http://localhost:8377 -id <request-id>
//	brainy-explain -addr http://localhost:8377 -context loadgen/site3
//
// With -context it explains the newest journaled decision for a
// construction site instead of a specific request. Exit status is non-zero
// when the service is unreachable or nothing matches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/flight"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy-explain: ")
	var (
		addr    = flag.String("addr", "http://localhost:8377", "base URL of the brainy-serve instance")
		id      = flag.String("id", "", "request ID to explain (X-Request-ID of a served advise request)")
		context = flag.String("context", "", "explain the newest decision for this construction site instead")
	)
	flag.Parse()
	if *id == "" && *context == "" {
		log.Fatal("one of -id or -context is required")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	if err := run(os.Stdout, client, strings.TrimSuffix(*addr, "/"), *id, *context); err != nil {
		log.Fatal(err)
	}
}

// run fetches and renders one explanation; split from main for testing
// against httptest servers.
func run(out io.Writer, client *http.Client, base, reqID, context string) error {
	q := url.Values{"format": {"json"}}
	if reqID != "" {
		q.Set("request_id", reqID)
	}
	if context != "" {
		q.Set("context", context)
	}
	var dec serve.DecisionsResponse
	if err := getJSON(client, base+"/debug/decisions?"+q.Encode(), &dec); err != nil {
		return err
	}
	if !dec.Enabled {
		return fmt.Errorf("the flight recorder is disabled on %s (serve ran with a negative -flight-size)", base)
	}
	if len(dec.Records) == 0 {
		return fmt.Errorf("no journaled decision matches (%d retained of %d ever journaled — the record may have scrolled out of the ring)",
			dec.Returned, dec.Total)
	}

	// Rollup and dashboard are best-effort context: an explanation with no
	// fleet baseline is still an explanation.
	var roll serve.RollupResponse
	haveRoll := getJSON(client, base+"/v1/rollup", &roll) == nil
	var dash serve.DashboardResponse
	haveDash := getJSON(client, base+"/debug/brainy?format=json", &dash) == nil

	// Newest matching record is the decision; earlier matches render as
	// history below it.
	rec := dec.Records[len(dec.Records)-1]
	renderDecision(out, &rec)
	if haveRoll {
		renderFleet(out, &rec, &roll)
	}
	if haveDash {
		renderTimeline(out, &rec, &dash)
	}
	if len(dec.Records) > 1 {
		fmt.Fprintf(out, "\nearlier journaled decisions matching the filter: %d (GET %s/debug/decisions)\n",
			len(dec.Records)-1, base)
	}
	return nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderDecision prints the journaled verdict and its class distribution.
func renderDecision(out io.Writer, rec *flight.Record) {
	fmt.Fprintf(out, "decision %d  (%s, verdict %s)\n", rec.Seq, rec.Source, rec.Verdict)
	if rec.RequestID != "" {
		fmt.Fprintf(out, "  request   %s\n", rec.RequestID)
	}
	fmt.Fprintf(out, "  context   %s\n", rec.Context)
	if rec.Instance != "" {
		fmt.Fprintf(out, "  instance  %s\n", rec.Instance)
	}
	fmt.Fprintf(out, "  decided   %s\n", time.Unix(0, rec.UnixNano).Format(time.RFC3339Nano))
	if rec.Arch != "" {
		fmt.Fprintf(out, "  arch      %s\n", rec.Arch)
	}
	if rec.Digest != "" {
		fmt.Fprintf(out, "  digest    %s  (canonical feature digest; equal digests share one cache entry)\n", rec.Digest)
	}
	if rec.Registry != "" {
		fmt.Fprintf(out, "  registry  %s\n", rec.Registry)
	}
	switch rec.Path {
	case "cache":
		fmt.Fprintf(out, "  resolved  inference-cache hit on shard %d\n", rec.Shard)
	case "batch":
		fmt.Fprintf(out, "  resolved  batch %d on shard %d (%d decisions coalesced into one ANN pass)\n",
			rec.BatchID, rec.Shard, rec.BatchSize)
	}
	if rec.LatencyNs > 0 {
		fmt.Fprintf(out, "  latency   %.1fus\n", float64(rec.LatencyNs)/1e3)
	}
	if rec.Drift != "" {
		fmt.Fprintf(out, "  drift     %s (detector state for %s at decision time)\n", rec.Drift, rec.Context)
	}
	if rec.Suggested != "" {
		fmt.Fprintf(out, "\n  %s -> %s  (confidence %.2f)\n", rec.Kind, rec.Suggested, rec.Confidence)
	} else {
		fmt.Fprintf(out, "\n  %s -> no verdict\n", rec.Kind)
	}
	if len(rec.Probs) > 0 {
		fmt.Fprintf(out, "\n  class distribution:\n")
		for _, kp := range rec.Probs {
			bar := strings.Repeat("#", int(kp.Prob*40+0.5))
			fmt.Fprintf(out, "    %-22s %6.3f  %s\n", kp.Kind, kp.Prob, bar)
		}
	}
	if rec.Votes > 0 {
		fmt.Fprintf(out, "  confirmed by %d consecutive agreeing verdicts at window %d\n", rec.Votes, rec.WindowSeq)
	}
	if rec.Moved > 0 {
		fmt.Fprintf(out, "  migration moved %d elements\n", rec.Moved)
	}
}

// renderFleet prints the decision's feature vector next to the fleet mean
// for the same kind, flagging the largest divergences — the "why this
// verdict here but not fleet-wide" view.
func renderFleet(out io.Writer, rec *flight.Record, roll *serve.RollupResponse) {
	if len(rec.Features) == 0 || len(roll.Features) != len(rec.Features) {
		return
	}
	var mean []float64
	for _, k := range roll.Kinds {
		if k.Kind == rec.Kind && len(k.FeatureMean) == len(rec.Features) {
			mean = k.FeatureMean
			break
		}
	}
	if mean == nil {
		return
	}
	fmt.Fprintf(out, "\n  features vs fleet mean for kind %s (largest divergences first):\n", rec.Kind)
	type delta struct {
		name      string
		val, mean float64
	}
	var ds []delta
	for i, name := range roll.Features {
		ds = append(ds, delta{name, rec.Features[i], mean[i]})
	}
	// Largest absolute divergence first; features agreeing with the fleet
	// explain nothing, so only the top few render.
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if math.Abs(ds[j].val-ds[j].mean) > math.Abs(ds[i].val-ds[i].mean) {
				ds[i], ds[j] = ds[j], ds[i]
			}
		}
	}
	n := 8
	if len(ds) < n {
		n = len(ds)
	}
	fmt.Fprintf(out, "    %-22s %10s %12s %10s\n", "FEATURE", "THIS", "FLEET-MEAN", "DELTA")
	for _, d := range ds[:n] {
		fmt.Fprintf(out, "    %-22s %10.4f %12.4f %+10.4f\n", d.name, d.val, d.mean, d.val-d.mean)
	}
}

// renderTimeline prints the drift-timeline excerpt for the decision's
// construction site: every dashboard row sharing its context.
func renderTimeline(out io.Writer, rec *flight.Record, dash *serve.DashboardResponse) {
	var rows []serve.DashboardRow
	for _, row := range dash.Rows {
		if row.Context == rec.Context {
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(out, "\n  instance timelines at %s:\n", rec.Context)
	fmt.Fprintf(out, "    %-32s %-9s %6s  %-22s %6s  %s\n", "INSTANCE", "KIND", "WIN", "ADVICE", "DRIFT", "TIMELINE")
	for _, row := range rows {
		advice := "-"
		if row.Advised {
			advice = row.Initial
			if row.Current != row.Initial {
				advice = row.Initial + " -> " + row.Current
			}
		}
		driftCol := "."
		if row.Drifted {
			driftCol = fmt.Sprintf("DRIFT%d", row.Events)
		}
		fmt.Fprintf(out, "    %-32s %-9s %6d  %-22s %6s  %s\n",
			row.Key, row.Kind, row.Windows, advice, driftCol, row.Mix)
	}
}
