package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/training"
)

// testServer builds a real sharded advisor around a deterministic untrained
// model, the same shape the serve and loadgen tests use.
func testServer(t *testing.T) string {
	t.Helper()
	set := training.NewModelSet()
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	cands := adt.CandidatesWithOriginal(tgt.Kind, tgt.OrderAware)
	cfg := ann.DefaultConfig()
	cfg.Seed = 7
	set.Put(&training.Model{
		Target:     tgt,
		Arch:       "Core2",
		Candidates: cands,
		Net:        ann.New(profile.NumFeatures, len(cands), cfg),
	})
	s := serve.New(set, serve.Config{NoRequestLog: true, DriftRules: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts.URL
}

func adviseOnce(t *testing.T, url, context, reqID string) {
	t.Helper()
	m := machine.New(machine.Core2())
	c := profile.NewContainer(adt.KindVector, m, 8, context, false)
	for i := uint64(0); i < 150; i++ {
		c.Insert(i)
		c.Find(i * 3)
	}
	var body bytes.Buffer
	if err := profile.WriteTrace(&body, []profile.Profile{c.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/advise?arch=Core2", &body)
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status = %d", resp.StatusCode)
	}
}

// TestExplainByRequestID is the round trip the loadgen report and brainy-top
// hand off to: a served request's ID resolves to a full provenance page.
func TestExplainByRequestID(t *testing.T) {
	url := testServer(t)
	adviseOnce(t, url, "explain/site", "explain-req-7")

	var out bytes.Buffer
	if err := run(&out, http.DefaultClient, url, "explain-req-7", ""); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"decision",
		"request   explain-req-7",
		"context   explain/site",
		"class distribution:",
		"features vs fleet mean for kind vector",
		"FLEET-MEAN",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q in:\n%s", want, text)
		}
	}
	// The resolution path is named: this cold request went through a batch.
	if !strings.Contains(text, "resolved  batch") {
		t.Errorf("no resolution line in:\n%s", text)
	}
}

// TestExplainByContext: -context picks the newest decision for a site.
func TestExplainByContext(t *testing.T) {
	url := testServer(t)
	adviseOnce(t, url, "explain/by-ctx", "first-req")
	adviseOnce(t, url, "explain/by-ctx", "second-req")

	var out bytes.Buffer
	if err := run(&out, http.DefaultClient, url, "", "explain/by-ctx"); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "request   second-req") {
		t.Errorf("-context should explain the newest decision:\n%s", text)
	}
	if !strings.Contains(text, "earlier journaled decisions matching the filter: 1") {
		t.Errorf("history count missing:\n%s", text)
	}
	// The repeat advise hit the inference cache and says so.
	if !strings.Contains(text, "resolved  inference-cache hit") {
		t.Errorf("cache resolution not named:\n%s", text)
	}
}

// TestExplainErrors: unknown IDs and unreachable services fail loudly.
func TestExplainErrors(t *testing.T) {
	url := testServer(t)
	if err := run(&bytes.Buffer{}, http.DefaultClient, url, "no-such-request", ""); err == nil {
		t.Fatal("expected an error for an unknown request ID")
	} else if !strings.Contains(err.Error(), "no journaled decision") {
		t.Fatalf("error should say the journal has nothing: %v", err)
	}

	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	down.Close()
	if err := run(&bytes.Buffer{}, http.DefaultClient, down.URL, "x", ""); err == nil {
		t.Fatal("expected an error when the service is down")
	}
}
