// Command brainy-loadgen drives closed-loop load against a running
// brainy-serve and reports throughput, latency quantiles, and cache-hit
// rate as JSON — the measurement half of the serving benchmark recorded in
// BENCH_serve.json and gated in CI.
//
// Usage:
//
//	brainy-serve -models models.json -addr :8377 -log-requests=false &
//	brainy-loadgen -url http://127.0.0.1:8377 -conns 32 -duration 30s \
//	    -skew 0.99 -keys 512 -mix 9:1 -out report.json
//
// Workers are closed-loop: each issues its next request the moment the
// previous response arrives, so ops/s is a capacity measurement, not an
// offered-load one. Keys are drawn zipfian (-skew is YCSB theta; 0 is
// uniform, 0.99 concentrates most traffic on a few hot keys) from -keys
// distinct pre-rendered traces. -mix advise:profiles interleaves inference
// requests with window ingestion in the given ratio.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainy-loadgen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		url      = flag.String("url", "http://127.0.0.1:8377", "base URL of the brainy-serve under test")
		conns    = flag.Int("conns", 8, "closed-loop connections")
		duration = flag.Duration("duration", 10*time.Second, "measured run length")
		warmup   = flag.Duration("warmup", 0, "unmeasured warmup run length")
		skew     = flag.Float64("skew", 0.99, "zipf theta in [0,1): 0 uniform, 0.99 hot-key heavy")
		keys     = flag.Int("keys", 512, "distinct request keys (advise traces / profile instances)")
		mix      = flag.String("mix", "9:1", "advise:profiles request ratio")
		seed     = flag.Int64("seed", 1, "seed for the key sequence")
		arch     = flag.String("arch", "Core2", "?arch= sent with every request")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()

	adv, prof, err := loadgen.ParseMix(*mix)
	if err != nil {
		return err
	}
	r, err := loadgen.NewRunner(loadgen.Config{
		URL:         *url,
		Conns:       *conns,
		Duration:    *duration,
		Warmup:      *warmup,
		Skew:        *skew,
		Keys:        *keys,
		MixAdvise:   adv,
		MixProfiles: prof,
		Seed:        *seed,
		Arch:        *arch,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("driving %s: %d conns, %s, skew %g, %d keys, mix %s",
		*url, *conns, *duration, *skew, *keys, *mix)
	rep, err := r.Run(ctx)
	if err != nil {
		return err
	}
	log.Printf("done: %.0f ops/s, p50 %.2fms p99 %.2fms, hit rate %.3f, errors %d",
		rep.OpsPerSec, rep.LatencyP50Ms, rep.LatencyP99Ms, rep.CacheHitRate, rep.Errors)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
