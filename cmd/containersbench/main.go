// Command containersbench measures the cross-backend container suite on the
// simulated machine: for each associative backend and each working-set
// size, a seeded shuffled insert phase, a uniform 50%-hit find phase (the
// TouchMissHeavy regime — every probe chases pointers or probes slots far
// beyond the L1), and one full iteration. Costs are simulated Core2 cycles,
// so results are bit-deterministic across hosts and CI can gate on them.
//
// The derived ratios compare each flat backend against its pointer-based
// counterpart on find cycles per operation — the number the cache-conscious
// layouts exist to improve once the working set spills the caches.
//
// The default element size is 64 bytes: with a payload behind the key, the
// pointer-based nodes drag the whole element through the cache on every
// visited node, while the SoA layouts search packed keys only — the contrast
// the flat backends are built around.
//
// Usage:
//
//	containersbench [-sizes 1000,100000,10000000] [-elem 64] [-o report.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/adt"
	"repro/internal/machine"
)

// PhaseResult is one (kind, size) measurement.
type PhaseResult struct {
	Kind string `json:"kind"`
	Size int    `json:"size"`

	InsertCyclesPerOp  float64 `json:"insert_cycles_per_op"`
	FindCyclesPerOp    float64 `json:"find_cycles_per_op"`
	IterateCyclesPerEl float64 `json:"iterate_cycles_per_elem"`
	TotalCycles        float64 `json:"total_cycles"`

	Finds       int     `json:"finds"`
	L1MissRate  float64 `json:"l1_miss_rate"`
	L2MissRate  float64 `json:"l2_miss_rate"`
	EstimatedMB float64 `json:"estimated_mb"`
}

// Report is the containersbench output schema. The committed
// BENCH_containers.json wraps reports in an append-only entries list.
type Report struct {
	GeneratedBy string        `json:"generated_by"`
	Date        string        `json:"date"`
	Arch        string        `json:"arch"`
	ElemSize    uint64        `json:"elem_size"`
	Sizes       []int         `json:"sizes"`
	Results     []PhaseResult `json:"results"`
	// Ratios maps "<size>" to pointer-vs-flat find-cycle ratios, e.g.
	// "hash_set/flat_hash_set": 1.62 — above 1 means flat is cheaper.
	Ratios map[string]map[string]float64 `json:"find_ratios"`
}

// kinds under measurement: every ordered backend pair plus the hash pair.
// splay_set is excluded (its self-adjusting writes make find-phase costs
// workload-path-dependent in a way that says nothing about layout) and
// sorted_vec is excluded because its O(n) inserts explode the insert phase
// at 1e5+ without informing the find-phase comparison.
var benchKinds = []adt.Kind{
	adt.KindSet,
	adt.KindAVLSet,
	adt.KindBTreeSet,
	adt.KindFlatBTreeSet,
	adt.KindHashSet,
	adt.KindFlatHashSet,
}

// ratioPairs maps each flat backend to the pointer-based counterparts the
// CI gate compares it against.
var ratioPairs = map[adt.Kind][]adt.Kind{
	adt.KindFlatBTreeSet: {adt.KindSet, adt.KindBTreeSet},
	adt.KindFlatHashSet:  {adt.KindHashSet},
}

func runOne(kind adt.Kind, size int, elemSize uint64) PhaseResult {
	m := machine.New(machine.Core2())
	c := adt.New(kind, m, elemSize)

	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(size)

	start := m.Cycles()
	for _, v := range perm {
		c.Insert(uint64(v))
	}
	insertCycles := m.Cycles() - start

	finds := 2 * size
	if finds > 200000 {
		finds = 200000
	}
	frng := rand.New(rand.NewSource(2))
	start = m.Cycles()
	for i := 0; i < finds; i++ {
		if i%2 == 0 {
			c.Find(uint64(perm[frng.Intn(size)])) // hit
		} else {
			c.Find(uint64(size) + uint64(frng.Intn(size))) // miss
		}
	}
	findCycles := m.Cycles() - start
	hw := m.Counters()

	start = m.Cycles()
	c.Iterate(-1)
	iterCycles := m.Cycles() - start

	return PhaseResult{
		Kind:               kind.String(),
		Size:               size,
		InsertCyclesPerOp:  insertCycles / float64(size),
		FindCyclesPerOp:    findCycles / float64(finds),
		IterateCyclesPerEl: iterCycles / float64(size),
		TotalCycles:        m.Cycles(),
		Finds:              finds,
		L1MissRate:         hw.L1MissRate(),
		L2MissRate:         hw.L2MissRate(),
		EstimatedMB:        float64(adt.EstimatedBytes(kind, size, elemSize)) / (1 << 20),
	}
}

func main() {
	sizesFlag := flag.String("sizes", "1000,100000", "comma-separated working-set sizes")
	elemSize := flag.Uint64("elem", 64, "simulated element size in bytes")
	out := flag.String("o", "", "output JSON path (default stdout)")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}

	rep := Report{
		GeneratedBy: "containersbench",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Arch:        "Core2",
		ElemSize:    *elemSize,
		Sizes:       sizes,
		Ratios:      map[string]map[string]float64{},
	}

	findCost := map[string]float64{}
	for _, size := range sizes {
		for _, kind := range benchKinds {
			r := runOne(kind, size, *elemSize)
			rep.Results = append(rep.Results, r)
			findCost[fmt.Sprintf("%v@%d", kind, size)] = r.FindCyclesPerOp
			log.Printf("%-14s n=%-8d insert %8.1f find %8.1f iterate %6.1f cyc/op (L1 miss %.2f)",
				r.Kind, size, r.InsertCyclesPerOp, r.FindCyclesPerOp, r.IterateCyclesPerEl, r.L1MissRate)
		}
		ratios := map[string]float64{}
		for flat, bases := range ratioPairs {
			fc := findCost[fmt.Sprintf("%v@%d", flat, size)]
			for _, base := range bases {
				bc := findCost[fmt.Sprintf("%v@%d", base, size)]
				if fc > 0 {
					ratios[fmt.Sprintf("%v/%v", base, flat)] = bc / fc
				}
			}
		}
		rep.Ratios[strconv.Itoa(size)] = ratios
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}
