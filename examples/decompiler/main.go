// Decompiler reproduces the RelipmoC case study (Section 6.4): a toy-ISA
// decompiler that recovers basic blocks, a CFG, dominators, and natural
// loops from synthetic assembly. The basic-block set is the container under
// study; replacing the red-black set with an AVL set wins on both
// microarchitectures.
//
// Run with: go run ./examples/decompiler
package main

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/workloads/relipmoc"
)

func main() {
	in := relipmoc.Inputs()[1]
	fmt.Printf("RelipmoC basic-block set study (%d synthetic instructions)\n\n", in.Instructions)

	// Show the decompiler substrate is real.
	r := relipmoc.Run(adt.KindSet, in, machine.Core2())
	an := r.Analysis
	fmt.Printf("recovered program structure:\n")
	fmt.Printf("  basic blocks : %d\n", len(an.Blocks))
	fmt.Printf("  conditionals : %d\n", an.IfCount)
	fmt.Printf("  natural loops: %d (max nesting %d)\n\n", an.Loops, an.MaxNesting)

	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		results := relipmoc.RunAll(in, arch)
		base := results[0]
		fmt.Printf("%s container cycles:\n", arch.Name)
		best := results[0]
		for _, res := range results {
			fmt.Printf("  %-10s %14.0f (%.3fx)\n", res.Kind, res.ContainerCycles,
				res.ContainerCycles/base.ContainerCycles)
			if res.ContainerCycles < best.ContainerCycles {
				best = res
			}
		}
		imp := 100 * (base.ContainerCycles - best.ContainerCycles) / base.ContainerCycles
		fmt.Printf("  best: %s (%.1f%% over the stock set)\n\n", best.Kind, imp)
	}
	fmt.Println("AVL nodes carry no parent pointer, so they are smaller and the tree is")
	fmt.Println("shallower: the find/iterate-heavy block analyses touch fewer cache lines.")
}
