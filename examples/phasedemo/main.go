// Phasedemo: watch a container's best implementation change mid-run.
//
// The workload (internal/workloads/phases) builds a working set into a
// vector, then switches to membership queries. End-of-run analysis blends
// both phases into one verdict; with snapshot windows enabled, the
// per-window feature timeline shows the operation mix flip, and the drift
// detector flags the moment the advised container moves from vector to
// hash_set.
//
// Run with: go run ./examples/phasedemo
// Flags:
//
//	-window N   interface invocations per snapshot window (default 64)
//	-keys N     working-set size (default 256)
//	-adaptive   close the loop: run the workload on the self-tuning
//	            container, which hot-migrates its backend when the drift
//	            detector fires, and compare its cost against every static
//	            choice
//	-o FILE     also export the window stream as JSON lines, ready to
//	            POST to brainy-serve's /v1/profiles or replay through
//	            brainy -windows
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/adt"
	"repro/internal/containers/adaptive"
	"repro/internal/drift"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/workloads/phases"
)

// runStatic drives the workload on one fixed backend and returns the
// simulated cycle cost — the baseline the adaptive run is judged against.
func runStatic(kind adt.Kind, cfg phases.Config) float64 {
	m := machine.New(machine.Core2())
	phases.Drive(adt.New(kind, m, 8), cfg)
	return m.Cycles()
}

// runAdaptive is the -adaptive mode: the same workload, but the container
// reacts to its own drift events by hot-migrating the backend in place.
func runAdaptive(cfg phases.Config, window int, extra profile.WindowSink) {
	arch := machine.Core2()
	m := machine.New(arch)
	a := adaptive.New(m, adaptive.Config{
		Kind:     phases.Original,
		ElemSize: 8,
		Context:  phases.Context,
		Window:   window,
		Detector: drift.Config{
			Window:     2,
			Hysteresis: 2,
			OnEvent: func(e drift.Event) {
				fmt.Printf("  !! %s\n", e)
			},
		},
		Arch: arch.Name,
		Sink: extra,
	})

	fmt.Printf("phasedemo -adaptive: %d ops starting on a %s, %d-op windows\n",
		cfg.Ops(), phases.Original, window)
	phases.Drive(a, cfg)
	a.FlushWindow()

	fmt.Println("\nmigration log:")
	for _, g := range a.Migrations() {
		fmt.Printf("  %s -> %s at op %d..%d  moved %d  window #%d  confidence %.2f\n",
			g.From, g.To, g.StartOp, g.EndOp, g.Moved, g.WindowSeq, g.Confidence)
	}

	// Score the adaptive run against every static choice on the identical
	// operation stream: it should beat the mistaken original and sit within
	// striking distance of the oracle pick.
	adaptiveCycles := m.Cycles()
	fmt.Println("\nsimulated cycles, same stream on every backend:")
	fmt.Printf("  %-10s %14.0f\n", "adaptive", adaptiveCycles)
	best, bestCycles := adt.Kind(0), 0.0
	for _, k := range []adt.Kind{phases.Original, adt.KindHashSet, adt.KindSet} {
		c := runStatic(k, cfg)
		fmt.Printf("  %-10s %14.0f\n", k, c)
		if bestCycles == 0 || c < bestCycles {
			best, bestCycles = k, c
		}
	}
	fmt.Printf("  best static: %s\n", best)

	// Machine-checkable summary lines (the CI smoke job greps these).
	fmt.Printf("\nadaptive final kind %s\n", a.Kind())
	fmt.Printf("adaptive migrations %d\n", len(a.Migrations()))
	fmt.Printf("adaptive drift-skipped %d\n", a.DriftSkipped())
	fmt.Printf("adaptive beats original %v\n", adaptiveCycles < runStatic(phases.Original, cfg))
	if len(a.Migrations()) == 0 {
		fmt.Println("no migration happened — try a smaller -window")
		os.Exit(1)
	}
}

func main() {
	window := flag.Int("window", 64, "interface invocations per snapshot window")
	keys := flag.Int("keys", 256, "working-set size built in phase one")
	adaptiveMode := flag.Bool("adaptive", false, "run on the self-tuning container and compare against static choices")
	out := flag.String("o", "", "write the window stream as JSON lines to this file")
	flag.Parse()

	cfg := phases.Config{Keys: *keys}
	arch := machine.Core2()
	m := machine.New(arch)

	var exp *profile.SnapshotExporter
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		exp = profile.NewSnapshotExporter(f)
		defer func() {
			if err := exp.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *adaptiveMode {
		var extra profile.WindowSink
		if exp != nil {
			extra = exp
		}
		runAdaptive(cfg, *window, extra)
		return
	}

	// Drift detection over the deterministic rules advisor: no trained
	// models needed, same verdicts every run.
	det := drift.New(drift.Rules, drift.Config{
		Window:     2,
		Hysteresis: 2,
		OnEvent: func(e drift.Event) {
			fmt.Printf("  !! %s\n", e)
		},
	})

	ring := profile.NewWindowRing(1024)
	sinks := []profile.WindowSink{ring, det.Sink(arch.Name)}
	if exp != nil {
		sinks = append(sinks, exp)
	}

	reg := profile.NewRegistry(m)
	reg.EnableWindows(*window, profile.MultiWindowSink(sinks...))

	fmt.Printf("phasedemo: %d ops over a %s, %d-op windows\n",
		cfg.Ops(), phases.Original, *window)
	c := reg.NewContainer(phases.Original, 8, phases.Context, false)
	phases.Drive(c, cfg)
	reg.FlushWindows()

	// The timeline: one row per window, showing the mix flip.
	fmt.Println("\nwindow timeline (per-window operation mix):")
	for _, w := range ring.Records() {
		v := w.Vector()
		fmt.Printf("  #%-3d ops %4d-%-4d  insert %3.0f%%  find %3.0f%%  iterate %3.0f%%  len %d\n",
			w.Seq, w.StartOp, w.EndOp,
			100*(v[0]+v[4]), 100*v[2], 100*v[3], w.Len)
	}

	fmt.Println("\ndrift verdicts:")
	for _, st := range det.Statuses() {
		fmt.Printf("  %-28s initial %-9s current %-9s events %d\n",
			st.InstanceKey, st.Initial, st.Current, st.Events)
	}
	evs := det.Events()
	if len(evs) == 0 {
		fmt.Println("no drift detected — try a smaller -window")
		os.Exit(1)
	}
	fmt.Printf("\n%d drift event(s); the whole-run blend would have hidden the %s phase.\n",
		len(evs), adt.KindHashSet)

	// Contrast: the single end-of-run verdict the static profile gives.
	whole := c.Snapshot()
	s, err := drift.Rules(&whole, arch.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole-run verdict for comparison: %s -> %s (one blended answer for two phases)\n",
		s.Original, s.Suggested)
}
