// Phasedemo: watch a container's best implementation change mid-run.
//
// The workload (internal/workloads/phases) builds a working set into a
// vector, then switches to membership queries. End-of-run analysis blends
// both phases into one verdict; with snapshot windows enabled, the
// per-window feature timeline shows the operation mix flip, and the drift
// detector flags the moment the advised container moves from vector to
// hash_set.
//
// Run with: go run ./examples/phasedemo
// Flags:
//
//	-window N   interface invocations per snapshot window (default 64)
//	-keys N     working-set size (default 256)
//	-o FILE     also export the window stream as JSON lines, ready to
//	            POST to brainy-serve's /v1/profiles or replay through
//	            brainy -windows
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/adt"
	"repro/internal/drift"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/workloads/phases"
)

func main() {
	window := flag.Int("window", 64, "interface invocations per snapshot window")
	keys := flag.Int("keys", 256, "working-set size built in phase one")
	out := flag.String("o", "", "write the window stream as JSON lines to this file")
	flag.Parse()

	cfg := phases.Config{Keys: *keys}
	arch := machine.Core2()
	m := machine.New(arch)

	// Drift detection over the deterministic rules advisor: no trained
	// models needed, same verdicts every run.
	det := drift.New(drift.Rules, drift.Config{
		Window:     2,
		Hysteresis: 2,
		OnEvent: func(e drift.Event) {
			fmt.Printf("  !! %s\n", e)
		},
	})

	ring := profile.NewWindowRing(1024)
	sinks := []profile.WindowSink{ring, det.Sink(arch.Name)}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		exp := profile.NewSnapshotExporter(f)
		defer func() {
			if err := exp.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		sinks = append(sinks, exp)
	}

	reg := profile.NewRegistry(m)
	reg.EnableWindows(*window, profile.MultiWindowSink(sinks...))

	fmt.Printf("phasedemo: %d ops over a %s, %d-op windows\n",
		cfg.Ops(), phases.Original, *window)
	c := reg.NewContainer(phases.Original, 8, phases.Context, false)
	phases.Drive(c, cfg)
	reg.FlushWindows()

	// The timeline: one row per window, showing the mix flip.
	fmt.Println("\nwindow timeline (per-window operation mix):")
	for _, w := range ring.Records() {
		v := w.Vector()
		fmt.Printf("  #%-3d ops %4d-%-4d  insert %3.0f%%  find %3.0f%%  iterate %3.0f%%  len %d\n",
			w.Seq, w.StartOp, w.EndOp,
			100*(v[0]+v[4]), 100*v[2], 100*v[3], w.Len)
	}

	fmt.Println("\ndrift verdicts:")
	for _, st := range det.Statuses() {
		fmt.Printf("  %-28s initial %-9s current %-9s events %d\n",
			st.InstanceKey, st.Initial, st.Current, st.Events)
	}
	evs := det.Events()
	if len(evs) == 0 {
		fmt.Println("no drift detected — try a smaller -window")
		os.Exit(1)
	}
	fmt.Printf("\n%d drift event(s); the whole-run blend would have hidden the %s phase.\n",
		len(evs), adt.KindHashSet)

	// Contrast: the single end-of-run verdict the static profile gives.
	whole := c.Snapshot()
	s, err := drift.Rules(&whole, arch.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole-run verdict for comparison: %s -> %s (one blended answer for two phases)\n",
		s.Original, s.Suggested)
}
