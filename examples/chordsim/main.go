// Chordsim reproduces the Chord distributed-lookup case study (Section
// 6.3): a DHT simulator whose pending-message list is the container under
// study. It prints Figure 12's normalized execution times and demonstrates
// the paper's headline difficulty — on the large input the two simulated
// microarchitectures disagree about the best container.
//
// Run with: go run ./examples/chordsim
package main

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/workloads/chord"
)

func main() {
	fmt.Println("Chord simulator pending-list study (Figure 12)")

	// First show the routing substrate is real: lookups resolve in
	// O(log n) hops through finger tables.
	ring := chord.NewRing(1024, 1)
	_, hops := ring.Lookup(0, 0xDEADBEEF)
	fmt.Printf("overlay of %d nodes; sample lookup resolved in %d hops\n\n", ring.NumNodes(), hops)

	winners := map[string]map[string]adt.Kind{}
	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		winners[arch.Name] = map[string]adt.Kind{}
		fmt.Printf("%s\n", arch.Name)
		fmt.Printf("  %-8s  %-9s %-9s %-9s  max pending\n", "input", "vector", "map", "hash_map")
		for _, in := range chord.Inputs() {
			results := chord.RunAll(in, arch)
			base := results[0].Cycles
			best := results[0]
			fmt.Printf("  %-8s ", in.Name)
			for _, r := range results {
				fmt.Printf(" %-9.2f", r.Cycles/base)
				if r.Cycles < best.Cycles {
					best = r
				}
			}
			fmt.Printf(" %6d\n", results[0].MaxPending)
			winners[arch.Name][in.Name] = best.Kind
		}
		fmt.Println()
	}

	fmt.Println("best container per input:")
	for _, in := range chord.Inputs() {
		c2, at := winners["Core2"][in.Name], winners["Atom"][in.Name]
		note := ""
		if c2 != at {
			note = "  <- the architectures disagree"
		}
		fmt.Printf("  %-8s Core2=%-9s Atom=%-9s%s\n", in.Name, c2, at, note)
	}
}
