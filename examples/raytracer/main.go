// Raytracer reproduces the ray-tracing case study (Section 6.5): sphere
// groups whose member containers are iterated for every ray that hits the
// group's bound. Iteration dominates, so the contiguous vector beats the
// original linked list.
//
// Run with: go run ./examples/raytracer
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/workloads/raytrace"
)

func main() {
	in, err := raytrace.InputByName("default")
	if err != nil {
		panic(err)
	}
	fmt.Printf("Raytrace group-list study: %dx%d image, %d groups x %d spheres\n\n",
		in.Width, in.Height, in.Groups, in.PerGroup)

	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		results := raytrace.RunAll(in, arch)
		base := results[0]
		fmt.Printf("%s:\n", arch.Name)
		for _, r := range results {
			fmt.Printf("  %-7s %14.0f cycles (%.2fx), %d primary hits\n",
				r.Kind, r.Cycles, r.Cycles/base.Cycles, r.Hits)
		}
		var vec raytrace.Result
		for _, r := range results {
			if r.Kind.String() == "vector" {
				vec = r
			}
		}
		fmt.Printf("  list -> vector improvement: %.1f%%\n\n",
			100*(base.Cycles-vec.Cycles)/base.Cycles)
	}
	fmt.Println("Every candidate renders the identical image (same hits and checksum);")
	fmt.Println("only the traversal cost changes. A list node costs a dependent load per")
	fmt.Println("sphere, while the vector streams the whole group through the cache.")
}
