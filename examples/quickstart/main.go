// Quickstart: the full Brainy loop in one file.
//
//  1. Train selection models for a simulated microarchitecture (install-time
//     step, here at a tiny scale so it finishes in seconds).
//  2. Run an "application" whose container is instrumented.
//  3. Ask Brainy which implementation the application should have used.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/training"
)

func main() {
	arch := machine.Core2()

	// 1. Train the model for order-oblivious vector usage on this machine.
	fmt.Println("training the vector model for", arch.Name, "(tiny budget)...")
	opt := training.DefaultOptions(arch)
	opt.AppCfg.TotalInterfCalls = 250
	opt.PerTargetApps = 150
	opt.MaxSeeds = 1500
	annCfg := ann.DefaultConfig()
	annCfg.Epochs = 150

	ctx := context.Background()
	target := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	labels, err := training.Phase1(ctx, target, opt) // Algorithm 1
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := training.Phase2(ctx, target, labels, opt) // Algorithm 2
	if err != nil {
		log.Fatal(err)
	}
	model, err := training.TrainModel(dataset, arch.Name, annCfg)
	if err != nil {
		log.Fatal(err)
	}
	models := training.NewModelSet()
	models.Put(model)
	brainy := core.New(models)

	// 2. The "application": a membership cache built on a vector, searched
	// far more often than it is updated — a classic misuse.
	m := machine.New(arch)
	cache := profile.NewContainer(adt.KindVector, m, 8, "quickstart/membership-cache", false)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		cache.Insert(uint64(rng.Intn(100000)))
	}
	for i := 0; i < 20000; i++ {
		cache.Find(uint64(rng.Intn(100000)))
	}

	// 3. Analyze the profile.
	report := brainy.Analyze([]profile.Profile{cache.Snapshot()}, arch.Name)
	fmt.Print(report.Render())

	for _, s := range report.Replacements() {
		fmt.Printf("\nBrainy suggests replacing the %s at %s with %s (confidence %.2f).\n",
			s.Original, s.Context, s.Suggested, s.Confidence)
	}
	if len(report.Replacements()) == 0 {
		fmt.Println("\nBrainy found no profitable replacement.")
	}
}
