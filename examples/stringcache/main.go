// Stringcache reproduces the Xalancbmk case study (Section 6.2): a
// two-level string cache whose busy list's best container flips with the
// input. It measures vector, set, and hash_set on every input on both
// simulated microarchitectures and prints Figure 10's normalized times.
//
// Run with: go run ./examples/stringcache
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/workloads/xalan"
)

func main() {
	fmt.Println("XalanDOMStringCache busy-list study (Figure 10)")
	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		fmt.Printf("\n%s\n", arch.Name)
		fmt.Printf("  %-10s  %-9s %-9s %-9s  best\n", "input", "vector", "set", "hash_set")
		for _, in := range xalan.Inputs() {
			results := xalan.RunAll(in, arch)
			base := results[0].Cycles
			best := results[0]
			fmt.Printf("  %-10s ", in.Name)
			for _, r := range results {
				fmt.Printf(" %-9.2f", r.Cycles/base)
				if r.Cycles < best.Cycles {
					best = r
				}
			}
			fmt.Printf("  %s\n", best.Kind)
		}
	}

	fmt.Println("\nTable 4: why the inputs differ (vector busy list, Core2)")
	fmt.Printf("  %-10s %14s %18s %12s\n", "input", "find+erase", "touched elements", "touched/call")
	for _, in := range xalan.Inputs() {
		r := xalan.Run(xalan.Original(), in, machine.Core2())
		fmt.Printf("  %-10s %14d %18d %12.1f\n",
			in.Name, r.FindInvocations, r.TouchedElements,
			float64(r.TouchedElements)/float64(r.FindInvocations))
	}
	fmt.Println("\nThe train input finds its strings at the head of the vector, so the")
	fmt.Println("linear scan is nearly free and hash_set's overhead is pure loss; the")
	fmt.Println("reference input scans deep into the list, so hash_set wins by an order")
	fmt.Println("of magnitude — the same container, opposite verdicts, purely from input.")
}
