// Tracepipeline shows the tool workflow of Figure 3 end to end, the way a
// developer would integrate Brainy into a build:
//
//  1. the application links the instrumented library (here: a registry of
//     profiled containers) and runs normally;
//  2. the trace is written to disk;
//  3. Brainy reads the trace with trained models and emits both a
//     human-readable report and a machine-readable replacement plan that a
//     refactoring tool could apply.
//
// Run with: go run ./examples/tracepipeline
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/training"
)

func main() {
	arch := machine.Core2()

	// Train the two models this application's containers need.
	fmt.Println("training models (tiny budget)...")
	models := training.NewModelSet()
	opt := training.DefaultOptions(arch)
	opt.AppCfg.TotalInterfCalls = 250
	opt.PerTargetApps = 120
	opt.MaxSeeds = 1200
	annCfg := ann.DefaultConfig()
	annCfg.Epochs = 150
	for _, tgt := range []adt.ModelTarget{
		{Kind: adt.KindVector, OrderAware: false},
		{Kind: adt.KindList, OrderAware: true},
	} {
		labels, err := training.Phase1(context.Background(), tgt, opt)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := training.Phase2(context.Background(), tgt, labels, opt)
		if err != nil {
			log.Fatal(err)
		}
		m, err := training.TrainModel(ds, arch.Name, annCfg)
		if err != nil {
			log.Fatal(err)
		}
		models.Put(m)
	}

	// 1. The "application": three container construction sites with very
	// different behaviours, all profiled through one registry.
	m := machine.New(arch)
	reg := profile.NewRegistry(m)
	rng := rand.New(rand.NewSource(42))

	index := reg.NewContainer(adt.KindVector, 8, "server/session.index", false)
	for i := 0; i < 1500; i++ {
		index.Insert(uint64(rng.Intn(1 << 20)))
	}
	for i := 0; i < 15000; i++ {
		index.Find(uint64(rng.Intn(1 << 20))) // lookup-dominated: vector misuse
	}

	queue := reg.NewContainer(adt.KindList, 8, "server/render.queue", true)
	for i := 0; i < 400; i++ {
		queue.Insert(uint64(i))
	}
	for i := 0; i < 4000; i++ {
		queue.Iterate(-1) // iteration-dominated: list misuse
	}

	tiny := reg.NewContainer(adt.KindVector, 8, "server/config.flags", false)
	for i := 0; i < 6; i++ {
		tiny.Insert(uint64(i))
	}

	// 2. Serialize the trace (what the instrumented run writes to disk).
	var traceFile bytes.Buffer
	if err := profile.WriteTrace(&traceFile, reg.Snapshots()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d bytes for %d construction sites\n\n", traceFile.Len(), len(reg.Contexts()))

	// 3. Analyze the trace.
	profiles, err := profile.ReadTrace(&traceFile)
	if err != nil {
		log.Fatal(err)
	}
	report := core.New(models).Analyze(profiles, arch.Name)
	fmt.Print(report.Render())

	var plan bytes.Buffer
	if err := report.WritePlan(&plan); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreplacement plan (for a refactoring tool):")
	fmt.Print(plan.String())
}
