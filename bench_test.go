// Package repro's root benchmarks regenerate every table and figure of the
// paper at reduced scale, one benchmark per artifact, plus ablation benches
// for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Accuracy-style results are attached as custom benchmark metrics (e.g.
// acc%, disagree%), so `go test -bench` output doubles as a miniature
// results table.
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/training"
	"repro/internal/workloads/chord"
	"repro/internal/workloads/raytrace"
	"repro/internal/workloads/relipmoc"
	"repro/internal/workloads/xalan"
)

// benchScale is small enough that every artifact regenerates in seconds.
func benchScale() experiments.Scale {
	sc := experiments.SmallScale()
	sc.TrainApps = 100
	sc.MaxSeeds = 1000
	sc.Calls = 200
	sc.ValidationApps = 50
	sc.Fig1PerBucket = 30
	sc.Fig6Apps = 80
	sc.ANNEpochs = 120
	sc.GAGenerations = 3
	sc.GAPopulation = 6
	sc.GAFitnessEpochs = 20
	return sc
}

// sharedModels trains one registry for all model-dependent benchmarks.
var (
	modelsOnce sync.Once
	modelsSet  *training.ModelSet
	modelsErr  error
)

func benchBrainy(b *testing.B) *core.Brainy {
	b.Helper()
	modelsOnce.Do(func() {
		modelsSet, modelsErr = experiments.TrainModels(benchScale())
	})
	if modelsErr != nil {
		b.Fatal(modelsErr)
	}
	return core.New(modelsSet)
}

// BenchmarkFigure1 regenerates the Core2-vs-Atom best-DS agreement study.
func BenchmarkFigure1(b *testing.B) {
	var last experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure1(benchScale())
	}
	b.ReportMetric(last.OverallDisagreePct, "disagree%")
}

// BenchmarkFigure2 regenerates the container-usage survey.
func BenchmarkFigure2(b *testing.B) {
	var refs int
	for i := 0; i < b.N; i++ {
		counts := experiments.Figure2().Counts
		refs = counts[0].Refs
	}
	b.ReportMetric(float64(refs), "top-refs")
}

// BenchmarkTable3 regenerates the GA feature selection at micro scale.
func BenchmarkTable3(b *testing.B) {
	sc := benchScale()
	sc.TrainApps = 60
	sc.MaxSeeds = 600
	var score float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(sc)
		if err != nil {
			b.Fatal(err)
		}
		score = res.Rows[0].Score
	}
	b.ReportMetric(100*score, "holdout-acc%")
}

// BenchmarkFigure6 regenerates the resize/mispredict correlation.
func BenchmarkFigure6(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(benchScale())
		r = res.Series[0].Correlation
	}
	b.ReportMetric(r, "pearson-r")
}

// BenchmarkFigure8 regenerates the per-application improvement summary.
func BenchmarkFigure8(b *testing.B) {
	brainy := benchBrainy(b)
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(brainy)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.Avg["Core2"]
	}
	b.ReportMetric(avg, "core2-improve%")
}

// BenchmarkFigure9 regenerates the model-accuracy validation for one model
// per architecture (the full figure is 14 model trainings).
func BenchmarkFigure9(b *testing.B) {
	sc := benchScale()
	var acc float64
	for i := 0; i < b.N; i++ {
		for _, arch := range experiments.Archs() {
			opt := training.DefaultOptions(arch)
			opt.PerTargetApps = sc.TrainApps
			opt.MaxSeeds = sc.MaxSeeds
			opt.AppCfg.TotalInterfCalls = sc.Calls
			tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
			labels, err := training.Phase1(context.Background(), tgt, opt)
			if err != nil {
				b.Fatal(err)
			}
			ds, err := training.Phase2(context.Background(), tgt, labels, opt)
			if err != nil {
				b.Fatal(err)
			}
			annCfg := ann.DefaultConfig()
			annCfg.Epochs = sc.ANNEpochs
			m, err := training.TrainModel(ds, arch.Name, annCfg)
			if err != nil {
				b.Fatal(err)
			}
			acc, err = training.Validate(context.Background(), m, opt, sc.ValidationApps, 777000)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(100*acc, "atom-acc%")
}

// BenchmarkXalancbmk regenerates Figures 10-11 (without Brainy, whose
// models BenchmarkFigure8 already exercises).
func BenchmarkXalancbmk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CaseStudy("xalan", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChord regenerates Figures 12-13.
func BenchmarkChord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CaseStudy("chord", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelipmoC regenerates the Section 6.4 study.
func BenchmarkRelipmoC(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		rs := relipmoc.RunAll(relipmoc.Inputs()[1], machine.Core2())
		imp = 100 * (rs[0].ContainerCycles - rs[1].ContainerCycles) / rs[0].ContainerCycles
	}
	b.ReportMetric(imp, "avl-improve%")
}

// BenchmarkRaytrace regenerates the Section 6.5 study.
func BenchmarkRaytrace(b *testing.B) {
	in, err := raytrace.InputByName("default")
	if err != nil {
		b.Fatal(err)
	}
	var imp float64
	for i := 0; i < b.N; i++ {
		rs := raytrace.RunAll(in, machine.Core2())
		imp = 100 * (rs[0].Cycles - rs[1].Cycles) / rs[0].Cycles
	}
	b.ReportMetric(imp, "vector-improve%")
}

// BenchmarkTable4 regenerates the touched-elements table.
func BenchmarkTable4(b *testing.B) {
	var touched uint64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4()
		touched = rows[len(rows)-1].Touched
	}
	b.ReportMetric(float64(touched), "ref-touched")
}

// --- Ablations ---

// BenchmarkAblationNoHardwareFeatures contrasts full features with
// software-only features — the paper's central design claim.
func BenchmarkAblationNoHardwareFeatures(b *testing.B) {
	var full, soft float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHardwareFeatures(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		full, soft = res.Rows[0].Accuracy, res.Rows[1].Accuracy
	}
	b.ReportMetric(100*full, "full-acc%")
	b.ReportMetric(100*soft, "sw-only-acc%")
}

// BenchmarkAblationThreshold contrasts the 5% Phase-I margin with none.
func BenchmarkAblationThreshold(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationThreshold(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		with, without = res.Rows[0].Accuracy, res.Rows[1].Accuracy
	}
	b.ReportMetric(100*with, "margin5-acc%")
	b.ReportMetric(100*without, "margin0-acc%")
}

// BenchmarkAblationHiddenWidth sweeps the ANN hidden width.
func BenchmarkAblationHiddenWidth(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHiddenWidth(benchScale(), []int{8, 24})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Accuracy > best {
				best = r.Accuracy
			}
		}
	}
	b.ReportMetric(100*best, "best-acc%")
}

// BenchmarkAblationTrainingSize sweeps the training-set size.
func BenchmarkAblationTrainingSize(b *testing.B) {
	var small, large float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationTrainingSize(benchScale(), []int{20, 100})
		if err != nil {
			b.Fatal(err)
		}
		small, large = res.Rows[0].Accuracy, res.Rows[1].Accuracy
	}
	b.ReportMetric(100*small, "n20-acc%")
	b.ReportMetric(100*large, "n100-acc%")
}

// BenchmarkAblationCrossArch measures the native-vs-transferred accuracy
// gap that justifies per-architecture models.
func BenchmarkAblationCrossArch(b *testing.B) {
	var native, transferred float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCrossArch(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		native, transferred = res.Rows[0].Accuracy, res.Rows[1].Accuracy
	}
	b.ReportMetric(100*native, "native-acc%")
	b.ReportMetric(100*transferred, "transfer-acc%")
}

// BenchmarkAblationGAFeatureSelection contrasts all-features training with
// the GA-selected mask.
func BenchmarkAblationGAFeatureSelection(b *testing.B) {
	sc := benchScale()
	sc.TrainApps = 60
	sc.MaxSeeds = 600
	var gaScore float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(sc)
		if err != nil {
			b.Fatal(err)
		}
		gaScore = res.Rows[0].Score
	}
	b.ReportMetric(100*gaScore, "ga-acc%")
}

// --- Raw workload micro-benchmarks (simulation throughput) ---

// BenchmarkWorkloadXalanReference measures one full reference-input run.
func BenchmarkWorkloadXalanReference(b *testing.B) {
	in, err := xalan.InputByName("reference")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		xalan.Run(adt.KindHashSet, in, machine.Core2())
	}
}

// BenchmarkWorkloadChordMedium measures one full medium-input simulation.
func BenchmarkWorkloadChordMedium(b *testing.B) {
	in, err := chord.InputByName("medium")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		chord.Run(adt.KindHashMap, in, machine.Core2())
	}
}

// BenchmarkPhase1WallClock measures end-to-end Phase-I labeling throughput:
// generate apps, run every candidate on a fresh simulated machine, select
// decisive winners — the loop that dominates training wall-clock and that
// the simulator fast path (internal/machine) exists to accelerate. The
// seeds/s metric is the number of candidate-sweep app executions per second.
func BenchmarkPhase1WallClock(b *testing.B) {
	target := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	opt := training.DefaultOptions(machine.Core2())
	opt.AppCfg.TotalInterfCalls = 200
	opt.AppCfg.MaxPrepopulate = 800
	opt.AppCfg.MaxIterCount = 800
	opt.PerTargetApps = 40
	opt.MaxSeeds = 400
	opt.Workers = 1 // single worker: measures per-event cost, not parallelism
	before := training.Metrics.SeedsScanned.Value()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labels, err := training.Phase1(context.Background(), target, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(labels) == 0 {
			b.Fatal("phase-1 produced no labels")
		}
	}
	scanned := training.Metrics.SeedsScanned.Value() - before
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(scanned)/s, "seeds/s")
	}
}
