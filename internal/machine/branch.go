package machine

import "repro/internal/mem"

// BranchPredictor is a gshare-style two-level adaptive predictor: a global
// history register XORed with the branch site indexes a table of 2-bit
// saturating counters. This captures the paper's key observation that rare
// data-dependent events (such as a vector resize inside insert) show up as
// conditional-branch mispredictions.
type BranchPredictor struct {
	table       []uint8 // 2-bit counters, 0..3; >=2 predicts taken
	mask        uint32  // table index mask, len(table)-1
	histMask    uint32  // (1<<histBits)-1, precomputed off the hot path
	history     uint32
	Branches    uint64
	Mispredicts uint64
}

// NewBranchPredictor builds a predictor with 2^tableBits counters and the
// given global-history length in bits.
func NewBranchPredictor(tableBits, histBits uint) *BranchPredictor {
	if tableBits == 0 || tableBits > 24 {
		panic("machine: tableBits must be in 1..24")
	}
	size := 1 << tableBits
	t := make([]uint8, size)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{table: t, mask: uint32(size - 1), histMask: uint32(1)<<histBits - 1}
}

// Predict records the outcome of a branch at the given site and returns
// whether the predictor guessed correctly.
func (p *BranchPredictor) Predict(site mem.BranchSite, taken bool) bool {
	idx := (uint32(site)*2654435761 ^ p.history) & p.mask
	ctr := p.table[idx]
	predicted := ctr >= 2
	p.Branches++
	correct := predicted == taken
	if !correct {
		p.Mispredicts++
	}
	if taken {
		if ctr < 3 {
			p.table[idx] = ctr + 1
		}
	} else if ctr > 0 {
		p.table[idx] = ctr - 1
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.histMask
	return correct
}

// MissRate returns mispredicts/branches, or 0 when no branches were seen.
func (p *BranchPredictor) MissRate() float64 {
	if p.Branches == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Branches)
}

// Reset clears state and statistics.
func (p *BranchPredictor) Reset() {
	for i := range p.table {
		p.table[i] = 1
	}
	p.history = 0
	p.Branches = 0
	p.Mispredicts = 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
