package machine

import "repro/internal/mem"

// TLB models a fully associative translation lookaside buffer with LRU
// replacement over fixed-size pages. The paper collected TLB miss counts
// among its initial hardware features and found, via feature selection,
// that they rarely affect the best-data-structure decision; the simulator
// includes the TLB so that finding is reproducible rather than assumed.
type TLB struct {
	entries   []tlbEntry
	memo      int // index of the entry that resolved the last access
	pageShift uint
	clock     uint64
	Accesses  uint64
	Misses    uint64
}

type tlbEntry struct {
	page  uint64
	valid bool
	lru   uint64
}

// NewTLB builds a TLB with the given entry count and page size (a power of
// two).
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("machine: invalid TLB geometry")
	}
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &TLB{entries: make([]tlbEntry, entries), pageShift: shift}
}

// Touch translates addr and returns true on a TLB hit.
//
// A last-page memo sits in front of the fully associative scan: container
// accesses are strongly page-local, so the entry that resolved the previous
// translation usually resolves this one too, in one compare instead of an
// O(entries) walk. The memo is only a probe hint — a memo hit performs the
// identical lru refresh a scan hit would, and the memo is re-validated
// against the live entry on every use, so hit/miss counts and the eviction
// sequence are unchanged.
func (t *TLB) Touch(addr mem.Addr) bool {
	t.Accesses++
	t.clock++
	page := uint64(addr) >> t.pageShift
	if e := &t.entries[t.memo]; e.valid && e.page == page {
		e.lru = t.clock
		return true
	}
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = t.clock
			t.memo = i
			return true
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.Misses++
	t.entries[victim] = tlbEntry{page: page, valid: true, lru: t.clock}
	t.memo = victim
	return false
}

// MissRate returns misses/accesses, or 0 when untouched.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
	t.memo = 0
	t.clock = 0
	t.Accesses = 0
	t.Misses = 0
}
