package machine

import "repro/internal/mem"

// TLB models a fully associative translation lookaside buffer with LRU
// replacement over fixed-size pages. The paper collected TLB miss counts
// among its initial hardware features and found, via feature selection,
// that they rarely affect the best-data-structure decision; the simulator
// includes the TLB so that finding is reproducible rather than assumed.
type TLB struct {
	entries   []tlbEntry
	pageShift uint
	clock     uint64
	Accesses  uint64
	Misses    uint64
}

type tlbEntry struct {
	page  uint64
	valid bool
	lru   uint64
}

// NewTLB builds a TLB with the given entry count and page size (a power of
// two).
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("machine: invalid TLB geometry")
	}
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &TLB{entries: make([]tlbEntry, entries), pageShift: shift}
}

// Touch translates addr and returns true on a TLB hit.
func (t *TLB) Touch(addr mem.Addr) bool {
	t.Accesses++
	t.clock++
	page := uint64(addr) >> t.pageShift
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = t.clock
			return true
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.Misses++
	t.entries[victim] = tlbEntry{page: page, valid: true, lru: t.clock}
	return false
}

// MissRate returns misses/accesses, or 0 when untouched.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
	t.clock = 0
	t.Accesses = 0
	t.Misses = 0
}
