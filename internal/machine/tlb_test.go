package machine

import (
	"testing"

	"repro/internal/mem"
)

func TestTLBHitOnSamePage(t *testing.T) {
	tlb := NewTLB(4, 4096)
	if tlb.Touch(0x1000) {
		t.Fatal("cold access hit")
	}
	if !tlb.Touch(0x1FFF) {
		t.Fatal("same-page access missed")
	}
	if tlb.Touch(0x2000) {
		t.Fatal("next-page access hit")
	}
	if tlb.Accesses != 3 || tlb.Misses != 2 {
		t.Fatalf("accesses=%d misses=%d", tlb.Accesses, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2, 4096)
	tlb.Touch(0 << 12) // page 0
	tlb.Touch(1 << 12) // page 1
	tlb.Touch(0 << 12) // refresh page 0
	tlb.Touch(2 << 12) // evicts page 1 (LRU)
	if !tlb.Touch(0 << 12) {
		t.Fatal("page 0 evicted although MRU")
	}
	if tlb.Touch(1 << 12) {
		t.Fatal("page 1 survived although LRU")
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewTLB(0, 4096) },
		func() { NewTLB(4, 3000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid geometry accepted")
				}
			}()
			bad()
		}()
	}
}

func TestMachineTLBCountersAndRates(t *testing.T) {
	m := New(Core2())
	base := m.Alloc(16<<20, 64)
	// Touch many distinct pages: TLB misses accumulate.
	for i := 0; i < 1000; i++ {
		m.Read(base+mem.Addr(i*4096), 8)
	}
	c := m.Counters()
	if c.TLBAccesses == 0 {
		t.Fatal("no TLB accesses recorded")
	}
	if c.TLBMissRate() < 0.5 {
		t.Fatalf("page-stride miss rate = %f, want high", c.TLBMissRate())
	}
	// Dense reuse of one page: near-zero miss rate afterwards.
	before := m.Counters()
	for i := 0; i < 1000; i++ {
		m.Read(base+mem.Addr(i%512*8), 8)
	}
	diff := m.Counters().Sub(before)
	if diff.TLBMissRate() > 0.01 {
		t.Fatalf("single-page miss rate = %f", diff.TLBMissRate())
	}
	m.Reset()
	if m.Counters().TLBAccesses != 0 {
		t.Fatal("reset kept TLB counters")
	}
}

func TestPointerChasePaysTLB(t *testing.T) {
	// Scattered accesses across a large footprint should cost more on a
	// machine with a small TLB than page-dense ones of equal count.
	dense := New(Atom())
	base := dense.Alloc(64<<20, 64)
	for i := 0; i < 5000; i++ {
		dense.Read(base+mem.Addr(i%4096), 8)
	}
	sparse := New(Atom())
	base2 := sparse.Alloc(64<<20, 64)
	for i := 0; i < 5000; i++ {
		off := (uint64(i) * 2654435761) % (60 << 20)
		sparse.Read(base2+mem.Addr(off), 8)
	}
	if sparse.Cycles() <= dense.Cycles() {
		t.Fatal("sparse accesses not dearer than dense ones")
	}
}
