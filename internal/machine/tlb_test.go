package machine

import (
	"testing"

	"repro/internal/mem"
)

func TestTLBHitOnSamePage(t *testing.T) {
	tlb := NewTLB(4, 4096)
	if tlb.Touch(0x1000) {
		t.Fatal("cold access hit")
	}
	if !tlb.Touch(0x1FFF) {
		t.Fatal("same-page access missed")
	}
	if tlb.Touch(0x2000) {
		t.Fatal("next-page access hit")
	}
	if tlb.Accesses != 3 || tlb.Misses != 2 {
		t.Fatalf("accesses=%d misses=%d", tlb.Accesses, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2, 4096)
	tlb.Touch(0 << 12) // page 0
	tlb.Touch(1 << 12) // page 1
	tlb.Touch(0 << 12) // refresh page 0
	tlb.Touch(2 << 12) // evicts page 1 (LRU)
	if !tlb.Touch(0 << 12) {
		t.Fatal("page 0 evicted although MRU")
	}
	if tlb.Touch(1 << 12) {
		t.Fatal("page 1 survived although LRU")
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewTLB(0, 4096) },
		func() { NewTLB(4, 3000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid geometry accepted")
				}
			}()
			bad()
		}()
	}
}

func TestMachineTLBCountersAndRates(t *testing.T) {
	m := New(Core2())
	base := m.Alloc(16<<20, 64)
	// Touch many distinct pages: TLB misses accumulate.
	for i := 0; i < 1000; i++ {
		m.Read(base+mem.Addr(i*4096), 8)
	}
	c := m.Counters()
	if c.TLBAccesses == 0 {
		t.Fatal("no TLB accesses recorded")
	}
	if c.TLBMissRate() < 0.5 {
		t.Fatalf("page-stride miss rate = %f, want high", c.TLBMissRate())
	}
	// Dense reuse of one page: near-zero miss rate afterwards.
	before := m.Counters()
	for i := 0; i < 1000; i++ {
		m.Read(base+mem.Addr(i%512*8), 8)
	}
	diff := m.Counters().Sub(before)
	if diff.TLBMissRate() > 0.01 {
		t.Fatalf("single-page miss rate = %f", diff.TLBMissRate())
	}
	m.Reset()
	if m.Counters().TLBAccesses != 0 {
		t.Fatal("reset kept TLB counters")
	}
}

func TestPointerChasePaysTLB(t *testing.T) {
	// Scattered accesses across a large footprint should cost more on a
	// machine with a small TLB than page-dense ones of equal count.
	dense := New(Atom())
	base := dense.Alloc(64<<20, 64)
	for i := 0; i < 5000; i++ {
		dense.Read(base+mem.Addr(i%4096), 8)
	}
	sparse := New(Atom())
	base2 := sparse.Alloc(64<<20, 64)
	for i := 0; i < 5000; i++ {
		off := (uint64(i) * 2654435761) % (60 << 20)
		sparse.Read(base2+mem.Addr(off), 8)
	}
	if sparse.Cycles() <= dense.Cycles() {
		t.Fatal("sparse accesses not dearer than dense ones")
	}
}

// TestTouchTLBPageBoundaryCounts pins the TLB access discipline of
// Machine.touch, which the fast path must preserve exactly: one translation
// per access, plus one more for every page boundary the access crosses.
func TestTouchTLBPageBoundaryCounts(t *testing.T) {
	m := New(Core2())
	page := uint64(m.Config().PageBytes)
	line := uint64(m.Config().L1Line)

	// A line-aligned access at a page start: exactly one translation.
	before := m.Counters()
	m.Read(mem.Addr(8*page), 8)
	if d := m.Counters().Sub(before); d.TLBAccesses != 1 {
		t.Fatalf("page-start access made %d TLB accesses, want 1", d.TLBAccesses)
	}

	// An access spanning a page boundary: exactly two translations, one
	// per page, even though it also straddles a cache line.
	before = m.Counters()
	m.Read(mem.Addr(10*page-4), 8)
	if d := m.Counters().Sub(before); d.TLBAccesses != 2 {
		t.Fatalf("page-straddling access made %d TLB accesses, want 2", d.TLBAccesses)
	}

	// A line-straddling access inside one page: still one translation.
	before = m.Counters()
	m.Read(mem.Addr(12*page+line-4), 8)
	if d := m.Counters().Sub(before); d.TLBAccesses != 1 {
		t.Fatalf("line-straddling access made %d TLB accesses, want 1", d.TLBAccesses)
	}

	// A large access covering three pages: three translations.
	before = m.Counters()
	m.Read(mem.Addr(20*page+16), 2*page)
	if d := m.Counters().Sub(before); d.TLBAccesses != 3 {
		t.Fatalf("three-page access made %d TLB accesses, want 3", d.TLBAccesses)
	}
}

// TestTLBMemoDoesNotChangeEviction drives the memoized TLB through an
// eviction-heavy pattern and checks hits and evictions stay exactly those
// of fully associative LRU.
func TestTLBMemoDoesNotChangeEviction(t *testing.T) {
	tlb := NewTLB(4, 4096)
	pageAddr := func(p int) mem.Addr { return mem.Addr(p << 12) }
	// Fill all 4 entries, memo points at page 3.
	for p := 0; p < 4; p++ {
		tlb.Touch(pageAddr(p))
	}
	// Page 4 evicts LRU page 0; memo moves to the filled slot.
	if tlb.Touch(pageAddr(4)) {
		t.Fatal("page 4 hit in a full TLB of pages 0-3")
	}
	if tlb.Touch(pageAddr(0)) {
		t.Fatal("page 0 survived LRU eviction")
	}
	// Page 1 was refreshed neither time; pages 2,3 must still be resident.
	if !tlb.Touch(pageAddr(2)) || !tlb.Touch(pageAddr(3)) {
		t.Fatal("resident pages lost despite LRU order")
	}
}
