package machine

import "repro/internal/mem"

// cacheLine is one way of one set.
type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64 // larger = more recently used
}

// Cache is a set-associative cache with true-LRU replacement. It models a
// single level of the hierarchy; Machine chains an L1 in front of an L2.
type Cache struct {
	sets      []cacheLine // sets*ways entries, row-major by set
	mru       []int32     // per-set way index of the most recent hit/fill
	ways      int
	setCount  int
	lineShift uint
	setMask   uint64
	clock     uint64
	Accesses  uint64
	Misses    uint64
}

// NewCache builds a cache of the given total size in bytes, associativity,
// and line size (both powers of two). It panics on invalid geometry because
// a malformed machine configuration is a programming error.
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("machine: cache geometry must be positive")
	}
	if sizeBytes%(ways*lineBytes) != 0 {
		panic("machine: cache size must be a multiple of ways*lineBytes")
	}
	setCount := sizeBytes / (ways * lineBytes)
	if setCount&(setCount-1) != 0 || lineBytes&(lineBytes-1) != 0 {
		panic("machine: set count and line size must be powers of two")
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		sets:      make([]cacheLine, setCount*ways),
		mru:       make([]int32, setCount),
		ways:      ways,
		setCount:  setCount,
		lineShift: shift,
		setMask:   uint64(setCount - 1),
	}
}

// LineBytes returns the cache line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Touch accesses the line containing addr and returns true on a hit.
// On a miss the LRU way of the set is replaced.
//
// The most-recently-used way of the set is probed before the full scan:
// container access streams are heavily line-local, so the MRU way resolves
// most hits in one compare. The probe leaves exactly the same state behind
// as a scan hit would (lru refresh only), and the scan folds lookup and
// LRU-victim selection into one pass, so the eviction sequence — and with it
// every hit/miss counter — is identical with and without the probe.
func (c *Cache) Touch(addr mem.Addr) bool {
	c.Accesses++
	c.clock++
	lineAddr := uint64(addr) >> c.lineShift // the full line address is the tag
	set := lineAddr & c.setMask
	base := int(set) * c.ways
	if l := &c.sets[base+int(c.mru[set])]; l.valid && l.tag == lineAddr {
		l.lru = c.clock
		return true
	}
	victim := base
	for i := base; i < base+c.ways; i++ {
		l := &c.sets[i]
		if l.valid && l.tag == lineAddr {
			l.lru = c.clock
			c.mru[set] = int32(i - base)
			return true
		}
		if !l.valid {
			victim = i
		} else if c.sets[victim].valid && l.lru < c.sets[victim].lru {
			victim = i
		}
	}
	c.Misses++
	c.sets[victim] = cacheLine{tag: lineAddr, valid: true, lru: c.clock}
	c.mru[set] = int32(victim - base)
	return false
}

// visitLines invokes fn with the aligned base address of every cache line
// overlapped by [addr, addr+size), in ascending order. A size of 0 is
// treated as 1. It is the single line-iteration helper shared by
// Cache.TouchRange and the Machine's straddling-access slow path.
func visitLines(addr mem.Addr, size uint64, lineShift uint, fn func(mem.Addr)) {
	if size == 0 {
		size = 1
	}
	line := uint64(1) << lineShift
	first := uint64(addr) &^ (line - 1)
	last := (uint64(addr) + size - 1) &^ (line - 1)
	for a := first; ; a += line {
		fn(mem.Addr(a))
		if a == last {
			break
		}
	}
}

// TouchRange accesses every line overlapped by [addr, addr+size) and returns
// the number of line accesses and the number of misses among them.
func (c *Cache) TouchRange(addr mem.Addr, size uint64) (lines, misses int) {
	visitLines(addr, size, c.lineShift, func(a mem.Addr) {
		lines++
		if !c.Touch(a) {
			misses++
		}
	})
	return lines, misses
}

// MissRate returns misses/accesses, or 0 when the cache is untouched.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = cacheLine{}
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}
