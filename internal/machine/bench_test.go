package machine

import (
	"testing"

	"repro/internal/mem"
)

// BenchmarkCacheTouch measures raw simulator throughput for L1 hits.
func BenchmarkCacheTouch(b *testing.B) {
	c := NewCache(32<<10, 8, 64)
	for i := 0; i < b.N; i++ {
		c.Touch(mem.Addr(i&0x3FFF) << 6)
	}
}

// BenchmarkMachineRead measures the full read path (L1+L2+cycle account).
func BenchmarkMachineRead(b *testing.B) {
	m := New(Core2())
	base := m.Alloc(1<<20, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(base+mem.Addr((i*64)&(1<<20-1)), 8)
	}
}

// BenchmarkBranchPredict measures predictor throughput.
func BenchmarkBranchPredict(b *testing.B) {
	p := NewBranchPredictor(14, 12)
	for i := 0; i < b.N; i++ {
		p.Predict(mem.BranchSite(i&0xFF), i%3 == 0)
	}
}
