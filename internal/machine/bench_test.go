package machine

import (
	"testing"

	"repro/internal/mem"
)

// The benchmarks below are the simulator's events/sec suite: every container
// operation in the repository funnels its memory accesses and branches
// through this package, so simulated-event throughput bounds Phase-I
// labeling, Phase-II instrumentation, and every experiment. Each benchmark
// reports an explicit events/s metric so `go test -bench` output doubles as
// the perf-trajectory table committed in BENCH_machine.json.

// reportEvents attaches an events/s metric, where one event is one simulated
// Read/Write/Branch/Touch.
func reportEvents(b *testing.B, events int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/s")
	}
}

// BenchmarkTouchSingleLineHit is the overwhelming common case and the fast
// path's home turf: an aligned 8-byte read that hits L1 and stays on one
// page.
func BenchmarkTouchSingleLineHit(b *testing.B) {
	m := New(Core2())
	base := m.Alloc(4096, 64)
	m.Read(base, 8) // warm the line and the TLB entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(base, 8)
	}
	reportEvents(b, b.N)
}

// BenchmarkTouchSingleLineSweep walks an L1-resident working set at 8-byte
// stride: single-line accesses, rotating lines, one page in the TLB most of
// the time.
func BenchmarkTouchSingleLineSweep(b *testing.B) {
	m := New(Core2())
	base := m.Alloc(16<<10, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(base+mem.Addr((i*8)&(16<<10-1)), 8)
	}
	reportEvents(b, b.N)
}

// BenchmarkTouchStraddleLine exercises the slow path: every access spans a
// cache-line boundary, so two lines are touched per event.
func BenchmarkTouchStraddleLine(b *testing.B) {
	m := New(Core2())
	base := m.Alloc(16<<10, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(base+60+mem.Addr((i*64)&(16<<10-1)), 8)
	}
	reportEvents(b, b.N)
}

// BenchmarkTouchMissHeavy is the pointer-chase pattern: scattered accesses
// across a footprint that defeats L1, L2, and the TLB.
func BenchmarkTouchMissHeavy(b *testing.B) {
	m := New(Core2())
	base := m.Alloc(64<<20, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (uint64(i) * 2654435761) % (60 << 20)
		m.Read(base+mem.Addr(off), 8)
	}
	reportEvents(b, b.N)
}

// BenchmarkMachineRead measures the full read path (L1+L2+cycle account)
// over a 1 MB line-stride sweep, the original seed benchmark kept for
// trajectory continuity.
func BenchmarkMachineRead(b *testing.B) {
	m := New(Core2())
	base := m.Alloc(1<<20, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(base+mem.Addr((i*64)&(1<<20-1)), 8)
	}
	reportEvents(b, b.N)
}

// BenchmarkMachineMixed replays a container-shaped event mix: mostly small
// reads with writes, data-dependent branches, and hash work folded in.
func BenchmarkMachineMixed(b *testing.B) {
	m := New(Atom())
	base := m.Alloc(256<<10, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base + mem.Addr((uint64(i)*2654435761)&(256<<10-1))
		m.Read(a, 8)
		if i&3 == 0 {
			m.Write(a, 8)
		}
		m.Branch(mem.BranchSite(i&0x1F), i&7 == 0)
		if i&15 == 0 {
			m.Work(40)
		}
	}
	reportEvents(b, 2*b.N) // ~2 simulated events per iteration on average
}

// BenchmarkCacheTouch measures raw cache throughput for rotating L1 hits.
func BenchmarkCacheTouch(b *testing.B) {
	c := NewCache(32<<10, 8, 64)
	for i := 0; i < b.N; i++ {
		c.Touch(mem.Addr(i&0x3FFF) << 6)
	}
	reportEvents(b, b.N)
}

// BenchmarkCacheTouchMRU hammers one line, the case the MRU-first probe
// short-circuits.
func BenchmarkCacheTouchMRU(b *testing.B) {
	c := NewCache(32<<10, 8, 64)
	c.Touch(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(0x1000)
	}
	reportEvents(b, b.N)
}

// BenchmarkTLBTouchSamePage hammers one page, the case the last-page memo
// short-circuits ahead of the fully associative scan.
func BenchmarkTLBTouchSamePage(b *testing.B) {
	t := NewTLB(256, 4096)
	t.Touch(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Touch(mem.Addr(0x1000 + i&0xFFF))
	}
	reportEvents(b, b.N)
}

// BenchmarkBranchPredict measures predictor throughput.
func BenchmarkBranchPredict(b *testing.B) {
	p := NewBranchPredictor(14, 12)
	for i := 0; i < b.N; i++ {
		p.Predict(mem.BranchSite(i&0xFF), i%3 == 0)
	}
	reportEvents(b, b.N)
}
