package machine

import "testing"

func TestCountersAddIsSubInverse(t *testing.T) {
	a := Counters{
		Cycles: 10, Reads: 1, Writes: 2, L1Accesses: 3, L1Misses: 4,
		L2Accesses: 5, L2Misses: 6, Branches: 7, Mispredicts: 8,
		TLBAccesses: 9, TLBMisses: 10, Allocs: 11, Frees: 12, BytesAlloced: 13,
	}
	b := Counters{
		Cycles: 2.5, Reads: 100, Writes: 200, L1Accesses: 300, L1Misses: 400,
		L2Accesses: 500, L2Misses: 600, Branches: 700, Mispredicts: 800,
		TLBAccesses: 900, TLBMisses: 1000, Allocs: 1100, Frees: 1200, BytesAlloced: 1300,
	}
	sum := a.Add(b)
	if sum.Cycles != 12.5 || sum.Reads != 101 || sum.BytesAlloced != 1313 {
		t.Fatalf("Add: %+v", sum)
	}
	if got := sum.Sub(b); got != a {
		t.Fatalf("Add then Sub drifted: %+v != %+v", got, a)
	}
}

func TestCountersEvents(t *testing.T) {
	c := Counters{Reads: 1, Writes: 2, Branches: 4, Allocs: 8, Frees: 16}
	if got := c.Events(); got != 31 {
		t.Fatalf("Events() = %d, want 31", got)
	}
	// Cache/TLB accesses are consequences of reads and writes, not events
	// of their own.
	c.L1Accesses, c.TLBAccesses = 99, 99
	if got := c.Events(); got != 31 {
		t.Fatalf("Events() counts accesses: %d", got)
	}
}

func TestCountersIsZero(t *testing.T) {
	var c Counters
	if !c.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	c.TLBMisses = 1
	if c.IsZero() {
		t.Fatal("nonzero counters reported IsZero")
	}
	if !c.Sub(c).IsZero() {
		t.Fatal("self-difference not IsZero")
	}
}
