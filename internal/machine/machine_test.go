package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(32<<10, 8, 64)
	if c.Touch(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Touch(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Touch(0x1004) {
		t.Fatal("same-line access missed")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 2 sets, 64B lines: size = 2*2*64 = 256.
	c := NewCache(256, 2, 64)
	// Three distinct lines mapping to set 0 (stride = 2*64).
	a, b, d := mem.Addr(0), mem.Addr(128), mem.Addr(256)
	c.Touch(a) // miss
	c.Touch(b) // miss
	c.Touch(a) // hit, refreshes a
	c.Touch(d) // miss, evicts b (LRU)
	if !c.Touch(a) {
		t.Fatal("a evicted although MRU")
	}
	if c.Touch(b) {
		t.Fatal("b survived although LRU")
	}
}

func TestCacheCapacityWorkingSet(t *testing.T) {
	c := NewCache(1<<10, 4, 64) // 16 lines
	// A working set of 8 lines fits: after warmup, all hits.
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			c.Touch(mem.Addr(i * 64))
		}
	}
	if c.Misses != 8 {
		t.Fatalf("misses = %d, want 8 (cold only)", c.Misses)
	}
	// A working set of 64 lines thrashes.
	c.Reset()
	for round := 0; round < 3; round++ {
		for i := 0; i < 64; i++ {
			c.Touch(mem.Addr(i * 64))
		}
	}
	if c.MissRate() < 0.9 {
		t.Fatalf("thrash miss rate = %f, want ~1", c.MissRate())
	}
}

func TestCacheTouchRangeSpansLines(t *testing.T) {
	c := NewCache(32<<10, 8, 64)
	lines, misses := c.TouchRange(60, 8) // straddles lines 0 and 1
	if lines != 2 || misses != 2 {
		t.Fatalf("lines=%d misses=%d, want 2,2", lines, misses)
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewCache(0, 1, 64) },
		func() { NewCache(100, 3, 64) },
		func() { NewCache(96, 1, 48) }, // line not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestPredictorLearnsBias(t *testing.T) {
	p := NewBranchPredictor(12, 0) // no history: pure per-site bias
	site := mem.BranchSite(7)
	for i := 0; i < 1000; i++ {
		p.Predict(site, true)
	}
	if p.MissRate() > 0.01 {
		t.Fatalf("always-taken miss rate = %f", p.MissRate())
	}
}

func TestPredictorRareEventMispredicts(t *testing.T) {
	// The "vector resize" pattern: mostly not-taken with rare taken spikes.
	p := NewBranchPredictor(12, 8)
	site := mem.BranchSite(0x100)
	mis := 0
	for i := 0; i < 10000; i++ {
		taken := i%513 == 0
		before := p.Mispredicts
		p.Predict(site, taken)
		if p.Mispredicts != before && taken {
			mis++
		}
	}
	if mis < 10 {
		t.Fatalf("rare taken branches mispredicted only %d times", mis)
	}
}

func TestPredictorLearnsAlternation(t *testing.T) {
	p := NewBranchPredictor(12, 8)
	site := mem.BranchSite(3)
	for i := 0; i < 4000; i++ {
		p.Predict(site, i%2 == 0)
	}
	// With history the predictor should learn the period-2 pattern.
	recent := NewBranchPredictor(12, 8)
	_ = recent
	if p.MissRate() > 0.2 {
		t.Fatalf("alternating pattern miss rate = %f", p.MissRate())
	}
}

func TestMachineCyclesMonotone(t *testing.T) {
	m := New(Core2())
	last := m.Cycles()
	addr := m.Alloc(4096, 16)
	for i := 0; i < 100; i++ {
		m.Read(addr+mem.Addr(i*8), 8)
		if m.Cycles() <= last {
			t.Fatal("cycles not strictly increasing")
		}
		last = m.Cycles()
	}
}

func TestSequentialCheaperThanPointerChase(t *testing.T) {
	seq := New(Core2())
	base := seq.Alloc(1<<20, 64)
	for i := 0; i < 10000; i++ {
		seq.Read(base+mem.Addr(i*8), 8)
	}

	chase := New(Core2())
	// Allocate 10000 nodes spread across a large range, read with stride
	// that defeats the cache.
	nodeBase := chase.Alloc(64<<20, 64)
	for i := 0; i < 10000; i++ {
		off := (uint64(i) * 2654435761) % (60 << 20)
		chase.Read(nodeBase+mem.Addr(off), 8)
	}
	if seq.Cycles() >= chase.Cycles() {
		t.Fatalf("sequential (%f) not cheaper than scattered (%f)", seq.Cycles(), chase.Cycles())
	}
}

func TestAtomPaysMoreThanCore2ForMisses(t *testing.T) {
	run := func(cfg Config) float64 {
		m := New(cfg)
		base := m.Alloc(64<<20, 64)
		for i := 0; i < 20000; i++ {
			off := (uint64(i) * 2654435761) % (60 << 20)
			m.Read(base+mem.Addr(off), 8)
		}
		return m.Cycles()
	}
	if run(Atom()) <= run(Core2()) {
		t.Fatal("Atom not slower than Core2 on a miss-heavy workload")
	}
}

func TestL2CapacityDifferentiatesArchs(t *testing.T) {
	// A 1 MB working set fits Core2's 4MB L2 but thrashes Atom's 512KB L2.
	run := func(cfg Config) Counters {
		m := New(cfg)
		base := m.Alloc(1<<20, 64)
		for round := 0; round < 5; round++ {
			for off := uint64(0); off < 1<<20; off += 64 {
				m.Read(base+mem.Addr(off), 8)
			}
		}
		return m.Counters()
	}
	core2 := run(Core2())
	atom := run(Atom())
	if atom.L2MissRate() <= core2.L2MissRate() {
		t.Fatalf("atom L2 miss rate %f <= core2 %f", atom.L2MissRate(), core2.L2MissRate())
	}
}

func TestCountersSubAndRates(t *testing.T) {
	m := New(Core2())
	a := m.Alloc(1024, 8)
	m.Read(a, 8)
	before := m.Counters()
	m.Read(a+512, 8)
	m.Write(a, 8)
	m.Branch(1, true)
	diff := m.Counters().Sub(before)
	if diff.Reads != 1 || diff.Writes != 1 || diff.Branches != 1 {
		t.Fatalf("diff = %+v", diff)
	}
	if diff.Cycles <= 0 {
		t.Fatal("no cycle delta")
	}
}

func TestAllocatorRecyclesFreedBlocks(t *testing.T) {
	m := New(Core2())
	a := m.Alloc(64, 8)
	m.Free(a, 64)
	b := m.Alloc(64, 8)
	if a != b {
		t.Fatalf("freed block not recycled: %x vs %x", a, b)
	}
}

func TestMachineReset(t *testing.T) {
	m := New(Core2())
	a := m.Alloc(4096, 8)
	m.Read(a, 64)
	m.Branch(1, true)
	m.Reset()
	c := m.Counters()
	if c.Cycles != 0 || c.Reads != 0 || c.Branches != 0 || c.Allocs != 0 {
		t.Fatalf("counters after reset: %+v", c)
	}
}

func TestQuickAllocAligned(t *testing.T) {
	f := func(sz uint16, alignPow uint8) bool {
		m := New(Core2())
		align := uint64(1) << (alignPow % 7) // 1..64
		a := m.Alloc(uint64(sz)+1, align)
		return uint64(a)%align == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigStrings(t *testing.T) {
	if New(Core2()).String() == "" || New(Atom()).String() == "" {
		t.Fatal("empty machine description")
	}
	if Core2().Name == Atom().Name {
		t.Fatal("configs share a name")
	}
}

// TestFixedPointCyclesExact pins the fixed-point accounting: every cost in
// the Core2 and Atom configurations is a multiple of the 0.1-cycle tick, so
// simple event sequences must produce exact decimal cycle counts instead of
// float64 accumulation residue.
func TestFixedPointCyclesExact(t *testing.T) {
	atom := Atom()
	m := New(atom)
	// Expected totals are accumulated in integer ticks and converted once,
	// mirroring the machine's own arithmetic; accumulating the float64
	// Config costs instead would reintroduce the residue under test.
	var wantTicks uint64
	wantCycles := func() float64 { return float64(wantTicks) / 10 }

	base := m.Alloc(4096, 64)
	wantTicks += 450 // AllocCycles 45
	if m.Cycles() != wantCycles() {
		t.Fatalf("alloc cost %v, want exactly %v", m.Cycles(), wantCycles())
	}
	// A cold single-line read: base op 1.4 + TLB miss 35 + DRAM 320.
	m.Read(base, 8)
	wantTicks += 14 + 350 + 3200
	if m.Cycles() != wantCycles() {
		t.Fatalf("cold read total %v, want exactly %v", m.Cycles(), wantCycles())
	}
	// A warm read of the same line: base op 1.4 + L1 hit 4, on the fast
	// path. Atom's 1.4 is where float64 accumulation used to drift.
	for i := 0; i < 1001; i++ {
		m.Read(base, 8)
		wantTicks += 14 + 40
	}
	if m.Cycles() != wantCycles() {
		t.Fatalf("warm read total %v, want exactly %v", m.Cycles(), wantCycles())
	}
}

// TestFixedPointBranchAndWork covers the remaining integer-only event
// paths: branch outcomes and integral ALU work.
func TestFixedPointBranchAndWork(t *testing.T) {
	m := New(Core2()) // BranchCycles 0.5, MispredictCycles 10, ALUCycles 0.5
	site := mem.BranchSite(9)
	var wantTicks uint64
	wantCycles := func() float64 { return float64(wantTicks) / 10 }
	for i := 0; i < 100; i++ {
		before := m.Counters()
		m.Branch(site, true)
		if m.Counters().Sub(before).Mispredicts == 1 {
			wantTicks += 100
		} else {
			wantTicks += 5
		}
	}
	if m.Cycles() != wantCycles() {
		t.Fatalf("branch cycles %v, want exactly %v", m.Cycles(), wantCycles())
	}
	m.Work(40) // the hash-work shape every container uses: 40 * 0.5 cycles
	wantTicks += 200
	if m.Cycles() != wantCycles() {
		t.Fatalf("after integral work: %v, want exactly %v", m.Cycles(), wantCycles())
	}
	// Fractional units round to the nearest 0.1-cycle tick: 2.5 units at
	// 0.5 cycles each is 1.25 cycles, accounted as 13 ticks.
	m.Work(2.5)
	wantTicks += 13
	if m.Cycles() != wantCycles() {
		t.Fatalf("after fractional work: %v, want exactly %v", m.Cycles(), wantCycles())
	}
}

// TestCountersCyclesMatchesCycles pins the single conversion point: the
// Counters snapshot and Cycles() must always agree bit-for-bit.
func TestCountersCyclesMatchesCycles(t *testing.T) {
	m := New(Atom())
	a := m.Alloc(1<<16, 64)
	for i := 0; i < 500; i++ {
		m.Read(a+mem.Addr(i*56), 8) // mixes fast-path and straddling accesses
		m.Branch(mem.BranchSite(i&7), i%3 == 0)
	}
	if m.Counters().Cycles != m.Cycles() {
		t.Fatalf("Counters.Cycles %v != Cycles() %v", m.Counters().Cycles, m.Cycles())
	}
}

// TestCacheMRUProbeDoesNotChangeLRU re-runs the eviction scenario with an
// interleaved MRU-hammering access pattern: the probe must leave the same
// LRU ordering a full scan would.
func TestCacheMRUProbeDoesNotChangeLRU(t *testing.T) {
	c := NewCache(256, 2, 64) // 2 ways, 2 sets
	a, b, d := mem.Addr(0), mem.Addr(128), mem.Addr(256)
	c.Touch(a)
	c.Touch(a) // MRU probe hit must refresh a's recency
	c.Touch(b)
	c.Touch(a)
	c.Touch(d) // must evict b, the least recently used
	if !c.Touch(a) {
		t.Fatal("a evicted despite MRU refreshes")
	}
	if c.Touch(b) {
		t.Fatal("b survived although LRU")
	}
}
