// Package machine implements a deterministic microarchitecture simulator.
// It stands in for the two physical systems of the paper (Intel Core2 Q6600
// and Intel Atom N270) and for the PAPI hardware performance counters: every
// container in this repository routes its memory accesses and data-dependent
// branches through a Machine, which models an L1/L2 cache hierarchy and a
// branch predictor and accounts cycles. "Execution time" in all experiments
// is the simulated cycle count, and the hardware features fed to the ANN
// (L1 miss rate, branch misprediction rate, ...) are read from the same
// simulated counters.
package machine

import (
	"fmt"

	"repro/internal/mem"
)

// Config describes one microarchitecture.
type Config struct {
	Name string

	L1Size, L1Ways, L1Line int
	L2Size, L2Ways, L2Line int

	PredictorBits uint // log2 of branch-predictor table size
	HistoryBits   uint // global history length

	TLBEntries int // fully associative data-TLB entries
	PageBytes  int

	// Cycle costs.
	BaseOpCycles     float64 // per Read/Write independent of hierarchy
	L1HitCycles      float64
	L2HitCycles      float64
	MemCycles        float64 // L2 miss (DRAM)
	MispredictCycles float64
	BranchCycles     float64 // correctly predicted branch
	AllocCycles      float64 // allocator fast-path cost
	ALUCycles        float64 // cycles per abstract work unit (see mem.Model.Work)
	TLBMissCycles    float64 // page-walk latency on a data-TLB miss
}

// Core2 mirrors the desktop system of Figure 7: Intel Core2 Quad Q6600,
// 32 KB L1 data per core, 4 MB L2, an aggressive out-of-order core that
// hides part of the L1 latency and has a moderate mispredict penalty.
func Core2() Config {
	return Config{
		Name:   "Core2",
		L1Size: 32 << 10, L1Ways: 8, L1Line: 64,
		L2Size: 4 << 20, L2Ways: 16, L2Line: 64,
		PredictorBits: 14, HistoryBits: 12,
		TLBEntries: 256, PageBytes: 4096,
		BaseOpCycles:     1,
		L1HitCycles:      3,
		L2HitCycles:      14,
		MemCycles:        200,
		MispredictCycles: 10, // the OoO window hides part of the refill
		BranchCycles:     0.5,
		AllocCycles:      30,
		ALUCycles:        0.5, // wide out-of-order core retires ~2 simple ops/cycle
		TLBMissCycles:    25,
	}
}

// Atom mirrors the netbook system of Figure 7: Intel Atom N270 (24 KB 6-way
// L1 data cache, 512 KB L2), an in-order core where misses and mispredicts
// hurt more and cannot be hidden.
func Atom() Config {
	return Config{
		Name:   "Atom",
		L1Size: 24 << 10, L1Ways: 6, L1Line: 64,
		L2Size: 512 << 10, L2Ways: 8, L2Line: 64,
		PredictorBits: 12, HistoryBits: 8,
		TLBEntries: 64, PageBytes: 4096,
		BaseOpCycles:     1.4,
		L1HitCycles:      4,
		L2HitCycles:      18,
		MemCycles:        320,
		MispredictCycles: 20, // in-order: the full pipeline refill is exposed
		BranchCycles:     1,
		AllocCycles:      45,
		ALUCycles:        1, // in-order core: one simple op per cycle
		TLBMissCycles:    35,
	}
}

// Counters is a snapshot of the machine's performance counters, the analog
// of one PAPI read-out.
type Counters struct {
	Cycles       float64
	Reads        uint64
	Writes       uint64
	L1Accesses   uint64
	L1Misses     uint64
	L2Accesses   uint64
	L2Misses     uint64
	Branches     uint64
	Mispredicts  uint64
	TLBAccesses  uint64
	TLBMisses    uint64
	Allocs       uint64
	Frees        uint64
	BytesAlloced uint64
}

// L1MissRate returns L1 misses per L1 access.
func (c Counters) L1MissRate() float64 {
	if c.L1Accesses == 0 {
		return 0
	}
	return float64(c.L1Misses) / float64(c.L1Accesses)
}

// L2MissRate returns L2 misses per L2 access.
func (c Counters) L2MissRate() float64 {
	if c.L2Accesses == 0 {
		return 0
	}
	return float64(c.L2Misses) / float64(c.L2Accesses)
}

// TLBMissRate returns TLB misses per access.
func (c Counters) TLBMissRate() float64 {
	if c.TLBAccesses == 0 {
		return 0
	}
	return float64(c.TLBMisses) / float64(c.TLBAccesses)
}

// BranchMissRate returns mispredictions per branch.
func (c Counters) BranchMissRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.Mispredicts) / float64(c.Branches)
}

// Sub returns c - o, counter-wise. Useful for windowed measurements.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Cycles:       c.Cycles - o.Cycles,
		Reads:        c.Reads - o.Reads,
		Writes:       c.Writes - o.Writes,
		L1Accesses:   c.L1Accesses - o.L1Accesses,
		L1Misses:     c.L1Misses - o.L1Misses,
		L2Accesses:   c.L2Accesses - o.L2Accesses,
		L2Misses:     c.L2Misses - o.L2Misses,
		Branches:     c.Branches - o.Branches,
		Mispredicts:  c.Mispredicts - o.Mispredicts,
		TLBAccesses:  c.TLBAccesses - o.TLBAccesses,
		TLBMisses:    c.TLBMisses - o.TLBMisses,
		Allocs:       c.Allocs - o.Allocs,
		Frees:        c.Frees - o.Frees,
		BytesAlloced: c.BytesAlloced - o.BytesAlloced,
	}
}

// Machine simulates one microarchitecture. It implements mem.Model, so a
// container bound to a Machine transparently exercises the simulated
// hierarchy. Machine is not safe for concurrent use; run one Machine per
// goroutine.
type Machine struct {
	cfg  Config
	l1   *Cache
	l2   *Cache
	tlb  *TLB
	bp   *BranchPredictor
	heap allocator

	cycles float64
	reads  uint64
	writes uint64
	allocs uint64
	frees  uint64
	bytes  uint64
}

// New builds a machine from a configuration.
func New(cfg Config) *Machine {
	tlbEntries, pageBytes := cfg.TLBEntries, cfg.PageBytes
	if tlbEntries <= 0 {
		tlbEntries = 64
	}
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	m := &Machine{
		cfg: cfg,
		l1:  NewCache(cfg.L1Size, cfg.L1Ways, cfg.L1Line),
		l2:  NewCache(cfg.L2Size, cfg.L2Ways, cfg.L2Line),
		tlb: NewTLB(tlbEntries, pageBytes),
		bp:  NewBranchPredictor(cfg.PredictorBits, cfg.HistoryBits),
	}
	m.heap.init()
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Alloc implements mem.Model.
func (m *Machine) Alloc(size, align uint64) mem.Addr {
	m.allocs++
	m.bytes += size
	m.cycles += m.cfg.AllocCycles
	return m.heap.alloc(size, align)
}

// Free implements mem.Model.
func (m *Machine) Free(addr mem.Addr, size uint64) {
	m.frees++
	m.cycles += m.cfg.AllocCycles / 2
	m.heap.free(addr, size)
}

// Read implements mem.Model.
func (m *Machine) Read(addr mem.Addr, size uint64) {
	m.reads++
	m.touch(addr, size)
}

// Write implements mem.Model.
func (m *Machine) Write(addr mem.Addr, size uint64) {
	m.writes++
	m.touch(addr, size)
}

func (m *Machine) touch(addr mem.Addr, size uint64) {
	if size == 0 {
		size = 1
	}
	line := uint64(m.l1.LineBytes())
	first := uint64(addr) &^ (line - 1)
	last := (uint64(addr) + size - 1) &^ (line - 1)
	m.cycles += m.cfg.BaseOpCycles
	// Translate the first page of the access; line iteration below touches
	// the TLB again only when crossing a page boundary.
	if !m.tlb.Touch(addr) {
		m.cycles += m.cfg.TLBMissCycles
	}
	page := uint64(m.cfg.PageBytes)
	if page == 0 {
		page = 4096
	}
	for a := first; ; a += line {
		if a != first && a%page == 0 {
			if !m.tlb.Touch(mem.Addr(a)) {
				m.cycles += m.cfg.TLBMissCycles
			}
		}
		if m.l1.Touch(mem.Addr(a)) {
			m.cycles += m.cfg.L1HitCycles
		} else if m.l2.Touch(mem.Addr(a)) {
			m.cycles += m.cfg.L2HitCycles
		} else {
			m.cycles += m.cfg.MemCycles
		}
		if a == last {
			break
		}
	}
}

// Work implements mem.Model: pure ALU work costs cycles but no events.
func (m *Machine) Work(units float64) {
	m.cycles += units * m.cfg.ALUCycles
}

// Branch implements mem.Model.
func (m *Machine) Branch(site mem.BranchSite, taken bool) {
	if m.bp.Predict(site, taken) {
		m.cycles += m.cfg.BranchCycles
	} else {
		m.cycles += m.cfg.MispredictCycles
	}
}

// Cycles returns the accumulated simulated cycle count.
func (m *Machine) Cycles() float64 { return m.cycles }

// Counters returns a snapshot of all performance counters.
func (m *Machine) Counters() Counters {
	return Counters{
		Cycles:       m.cycles,
		Reads:        m.reads,
		Writes:       m.writes,
		L1Accesses:   m.l1.Accesses,
		L1Misses:     m.l1.Misses,
		L2Accesses:   m.l2.Accesses,
		L2Misses:     m.l2.Misses,
		Branches:     m.bp.Branches,
		Mispredicts:  m.bp.Mispredicts,
		TLBAccesses:  m.tlb.Accesses,
		TLBMisses:    m.tlb.Misses,
		Allocs:       m.allocs,
		Frees:        m.frees,
		BytesAlloced: m.bytes,
	}
}

// Reset clears all machine state: caches, predictor, heap, and counters.
func (m *Machine) Reset() {
	m.l1.Reset()
	m.l2.Reset()
	m.tlb.Reset()
	m.bp.Reset()
	m.heap.init()
	m.cycles = 0
	m.reads = 0
	m.writes = 0
	m.allocs = 0
	m.frees = 0
	m.bytes = 0
}

// String describes the machine in the style of Figure 7.
func (m *Machine) String() string {
	c := m.cfg
	return fmt.Sprintf("%s: L1 %dKB/%d-way, L2 %dKB/%d-way, line %dB, TLB %d entries, mem %.0f cyc, mispredict %.0f cyc",
		c.Name, c.L1Size>>10, c.L1Ways, c.L2Size>>10, c.L2Ways, c.L1Line, c.TLBEntries, c.MemCycles, c.MispredictCycles)
}

// allocator is a size-class free-list bump allocator over the simulated
// address space. Reusing freed blocks matters: it gives linked structures
// the realistic property that nodes allocated after churn are scattered.
type allocator struct {
	next  uint64
	freed map[uint64][]mem.Addr // size class -> free blocks
}

func (a *allocator) init() {
	a.next = 1 << 20
	a.freed = make(map[uint64][]mem.Addr)
}

func sizeClass(size uint64) uint64 {
	// Round up to the next power of two, minimum 16 bytes.
	c := uint64(16)
	for c < size {
		c <<= 1
	}
	return c
}

func (a *allocator) alloc(size, align uint64) mem.Addr {
	if align == 0 {
		align = 8
	}
	class := sizeClass(size)
	if list := a.freed[class]; len(list) > 0 {
		addr := list[len(list)-1]
		a.freed[class] = list[:len(list)-1]
		return addr
	}
	base := (a.next + align - 1) &^ (align - 1)
	a.next = base + class
	return mem.Addr(base)
}

func (a *allocator) free(addr mem.Addr, size uint64) {
	class := sizeClass(size)
	a.freed[class] = append(a.freed[class], addr)
}
