// Package machine implements a deterministic microarchitecture simulator.
// It stands in for the two physical systems of the paper (Intel Core2 Q6600
// and Intel Atom N270) and for the PAPI hardware performance counters: every
// container in this repository routes its memory accesses and data-dependent
// branches through a Machine, which models an L1/L2 cache hierarchy and a
// branch predictor and accounts cycles. "Execution time" in all experiments
// is the simulated cycle count, and the hardware features fed to the ANN
// (L1 miss rate, branch misprediction rate, ...) are read from the same
// simulated counters.
package machine

import (
	"fmt"
	"math"

	"repro/internal/mem"
)

// Config describes one microarchitecture.
type Config struct {
	Name string

	L1Size, L1Ways, L1Line int
	L2Size, L2Ways, L2Line int

	PredictorBits uint // log2 of branch-predictor table size
	HistoryBits   uint // global history length

	TLBEntries int // fully associative data-TLB entries
	PageBytes  int

	// Cycle costs.
	BaseOpCycles     float64 // per Read/Write independent of hierarchy
	L1HitCycles      float64
	L2HitCycles      float64
	MemCycles        float64 // L2 miss (DRAM)
	MispredictCycles float64
	BranchCycles     float64 // correctly predicted branch
	AllocCycles      float64 // allocator fast-path cost
	ALUCycles        float64 // cycles per abstract work unit (see mem.Model.Work)
	TLBMissCycles    float64 // page-walk latency on a data-TLB miss
}

// Core2 mirrors the desktop system of Figure 7: Intel Core2 Quad Q6600,
// 32 KB L1 data per core, 4 MB L2, an aggressive out-of-order core that
// hides part of the L1 latency and has a moderate mispredict penalty.
func Core2() Config {
	return Config{
		Name:   "Core2",
		L1Size: 32 << 10, L1Ways: 8, L1Line: 64,
		L2Size: 4 << 20, L2Ways: 16, L2Line: 64,
		PredictorBits: 14, HistoryBits: 12,
		TLBEntries: 256, PageBytes: 4096,
		BaseOpCycles:     1,
		L1HitCycles:      3,
		L2HitCycles:      14,
		MemCycles:        200,
		MispredictCycles: 10, // the OoO window hides part of the refill
		BranchCycles:     0.5,
		AllocCycles:      30,
		ALUCycles:        0.5, // wide out-of-order core retires ~2 simple ops/cycle
		TLBMissCycles:    25,
	}
}

// Atom mirrors the netbook system of Figure 7: Intel Atom N270 (24 KB 6-way
// L1 data cache, 512 KB L2), an in-order core where misses and mispredicts
// hurt more and cannot be hidden.
func Atom() Config {
	return Config{
		Name:   "Atom",
		L1Size: 24 << 10, L1Ways: 6, L1Line: 64,
		L2Size: 512 << 10, L2Ways: 8, L2Line: 64,
		PredictorBits: 12, HistoryBits: 8,
		TLBEntries: 64, PageBytes: 4096,
		BaseOpCycles:     1.4,
		L1HitCycles:      4,
		L2HitCycles:      18,
		MemCycles:        320,
		MispredictCycles: 20, // in-order: the full pipeline refill is exposed
		BranchCycles:     1,
		AllocCycles:      45,
		ALUCycles:        1, // in-order core: one simple op per cycle
		TLBMissCycles:    35,
	}
}

// Counters is a snapshot of the machine's performance counters, the analog
// of one PAPI read-out.
type Counters struct {
	Cycles       float64
	Reads        uint64
	Writes       uint64
	L1Accesses   uint64
	L1Misses     uint64
	L2Accesses   uint64
	L2Misses     uint64
	Branches     uint64
	Mispredicts  uint64
	TLBAccesses  uint64
	TLBMisses    uint64
	Allocs       uint64
	Frees        uint64
	BytesAlloced uint64
}

// L1MissRate returns L1 misses per L1 access.
func (c Counters) L1MissRate() float64 {
	if c.L1Accesses == 0 {
		return 0
	}
	return float64(c.L1Misses) / float64(c.L1Accesses)
}

// L2MissRate returns L2 misses per L2 access.
func (c Counters) L2MissRate() float64 {
	if c.L2Accesses == 0 {
		return 0
	}
	return float64(c.L2Misses) / float64(c.L2Accesses)
}

// TLBMissRate returns TLB misses per access.
func (c Counters) TLBMissRate() float64 {
	if c.TLBAccesses == 0 {
		return 0
	}
	return float64(c.TLBMisses) / float64(c.TLBAccesses)
}

// BranchMissRate returns mispredictions per branch.
func (c Counters) BranchMissRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.Mispredicts) / float64(c.Branches)
}

// Events returns the total number of simulated events behind this
// snapshot — memory operations, branches, and allocator calls. It is the
// denominator of the simulator's events/sec throughput figure and the
// "events" attribute telemetry spans carry.
func (c Counters) Events() uint64 {
	return c.Reads + c.Writes + c.Branches + c.Allocs + c.Frees
}

// Add returns c + o, counter-wise — the aggregation dual of Sub, used to
// fold per-run snapshots into per-stage totals.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Cycles:       c.Cycles + o.Cycles,
		Reads:        c.Reads + o.Reads,
		Writes:       c.Writes + o.Writes,
		L1Accesses:   c.L1Accesses + o.L1Accesses,
		L1Misses:     c.L1Misses + o.L1Misses,
		L2Accesses:   c.L2Accesses + o.L2Accesses,
		L2Misses:     c.L2Misses + o.L2Misses,
		Branches:     c.Branches + o.Branches,
		Mispredicts:  c.Mispredicts + o.Mispredicts,
		TLBAccesses:  c.TLBAccesses + o.TLBAccesses,
		TLBMisses:    c.TLBMisses + o.TLBMisses,
		Allocs:       c.Allocs + o.Allocs,
		Frees:        c.Frees + o.Frees,
		BytesAlloced: c.BytesAlloced + o.BytesAlloced,
	}
}

// IsZero reports whether the snapshot carries no activity at all. Windowed
// consumers (ingestion, drift detection) use it to drop idle windows — a
// client streaming snapshots on a timer can emit deltas in which nothing
// happened, and those carry no signal for the models.
func (c Counters) IsZero() bool { return c == Counters{} }

// Sub returns c - o, counter-wise. Useful for windowed measurements.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Cycles:       c.Cycles - o.Cycles,
		Reads:        c.Reads - o.Reads,
		Writes:       c.Writes - o.Writes,
		L1Accesses:   c.L1Accesses - o.L1Accesses,
		L1Misses:     c.L1Misses - o.L1Misses,
		L2Accesses:   c.L2Accesses - o.L2Accesses,
		L2Misses:     c.L2Misses - o.L2Misses,
		Branches:     c.Branches - o.Branches,
		Mispredicts:  c.Mispredicts - o.Mispredicts,
		TLBAccesses:  c.TLBAccesses - o.TLBAccesses,
		TLBMisses:    c.TLBMisses - o.TLBMisses,
		Allocs:       c.Allocs - o.Allocs,
		Frees:        c.Frees - o.Frees,
		BytesAlloced: c.BytesAlloced - o.BytesAlloced,
	}
}

// ticksPerCycle is the fixed-point scale of the machine's cycle
// accumulator: one tick is a tenth of a cycle. Every cost in the Core2 and
// Atom configurations is a multiple of 0.1 cycles (including the halved
// AllocCycles charged by Free), so the per-event accounting below is exact
// integer arithmetic and Cycles() rounds only once, at read time. A uint64
// of tenths still spans ~1.8e18 cycles, far beyond any simulation here.
const ticksPerCycle = 10

// toTicks converts a Config cost in cycles to integer ticks, rounding to
// the nearest tick for costs finer than the scale.
func toTicks(cycles float64) uint64 {
	return uint64(math.Round(cycles * ticksPerCycle))
}

// Machine simulates one microarchitecture. It implements mem.Model, so a
// container bound to a Machine transparently exercises the simulated
// hierarchy. Machine is not safe for concurrent use; run one Machine per
// goroutine.
type Machine struct {
	cfg  Config
	l1   *Cache
	l2   *Cache
	tlb  *TLB
	bp   *BranchPredictor
	heap allocator

	// Per-event costs in ticks, precomputed so the hot path is free of
	// float64 arithmetic and Config field loads.
	baseOpTicks     uint64
	l1HitTicks      uint64
	l2HitTicks      uint64
	memTicks        uint64
	mispredictTicks uint64
	branchTicks     uint64
	allocTicks      uint64
	freeTicks       uint64
	aluTicks        uint64
	tlbMissTicks    uint64

	lineMask uint64 // L1 line size - 1; accesses inside one line take the fast path
	pageMask uint64 // page size - 1

	ticks  uint64
	reads  uint64
	writes uint64
	allocs uint64
	frees  uint64
	bytes  uint64
}

// New builds a machine from a configuration.
func New(cfg Config) *Machine {
	tlbEntries, pageBytes := cfg.TLBEntries, cfg.PageBytes
	if tlbEntries <= 0 {
		tlbEntries = 64
	}
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	m := &Machine{
		cfg: cfg,
		l1:  NewCache(cfg.L1Size, cfg.L1Ways, cfg.L1Line),
		l2:  NewCache(cfg.L2Size, cfg.L2Ways, cfg.L2Line),
		tlb: NewTLB(tlbEntries, pageBytes),
		bp:  NewBranchPredictor(cfg.PredictorBits, cfg.HistoryBits),

		baseOpTicks:     toTicks(cfg.BaseOpCycles),
		l1HitTicks:      toTicks(cfg.L1HitCycles),
		l2HitTicks:      toTicks(cfg.L2HitCycles),
		memTicks:        toTicks(cfg.MemCycles),
		mispredictTicks: toTicks(cfg.MispredictCycles),
		branchTicks:     toTicks(cfg.BranchCycles),
		allocTicks:      toTicks(cfg.AllocCycles),
		freeTicks:       toTicks(cfg.AllocCycles / 2),
		aluTicks:        toTicks(cfg.ALUCycles),
		tlbMissTicks:    toTicks(cfg.TLBMissCycles),

		lineMask: uint64(cfg.L1Line - 1),
		pageMask: uint64(pageBytes - 1),
	}
	m.heap.init()
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Alloc implements mem.Model.
func (m *Machine) Alloc(size, align uint64) mem.Addr {
	m.allocs++
	m.bytes += size
	m.ticks += m.allocTicks
	return m.heap.alloc(size, align)
}

// Free implements mem.Model.
func (m *Machine) Free(addr mem.Addr, size uint64) {
	m.frees++
	m.ticks += m.freeTicks
	m.heap.free(addr, size)
}

// Read implements mem.Model.
func (m *Machine) Read(addr mem.Addr, size uint64) {
	m.reads++
	m.touch(addr, size)
}

// Write implements mem.Model.
func (m *Machine) Write(addr mem.Addr, size uint64) {
	m.writes++
	m.touch(addr, size)
}

// touch charges one memory access. The overwhelming majority of container
// accesses are small aligned reads that fit a single cache line (and hence a
// single page, since pages are line-aligned multiples of the line size), so
// that case runs straight-line with no loop: one TLB probe, one L1 probe,
// optionally one L2 probe. Accesses that straddle a line boundary fall back
// to the shared per-line walk.
func (m *Machine) touch(addr mem.Addr, size uint64) {
	m.ticks += m.baseOpTicks
	if size == 0 {
		size = 1
	}
	a := uint64(addr)
	if (a^(a+size-1))&^m.lineMask == 0 {
		// Single line, single page: the fast path.
		if !m.tlb.Touch(addr) {
			m.ticks += m.tlbMissTicks
		}
		if m.l1.Touch(addr) {
			m.ticks += m.l1HitTicks
		} else if m.l2.Touch(addr) {
			m.ticks += m.l2HitTicks
		} else {
			m.ticks += m.memTicks
		}
		return
	}
	m.touchSlow(addr, size)
}

// touchSlow walks every line of a straddling access via the same visitLines
// helper Cache.TouchRange uses. The first page is translated with the
// original (unaligned) address; subsequent TLB probes happen only when the
// walk crosses onto a new page.
func (m *Machine) touchSlow(addr mem.Addr, size uint64) {
	if !m.tlb.Touch(addr) {
		m.ticks += m.tlbMissTicks
	}
	first := true
	visitLines(addr, size, m.l1.lineShift, func(a mem.Addr) {
		if !first && uint64(a)&m.pageMask == 0 {
			if !m.tlb.Touch(a) {
				m.ticks += m.tlbMissTicks
			}
		}
		first = false
		if m.l1.Touch(a) {
			m.ticks += m.l1HitTicks
		} else if m.l2.Touch(a) {
			m.ticks += m.l2HitTicks
		} else {
			m.ticks += m.memTicks
		}
	})
}

// Work implements mem.Model: pure ALU work costs cycles but no events.
// Integral unit counts — every caller in the repository — stay on the
// integer accumulator; fractional units round to the nearest tick.
func (m *Machine) Work(units float64) {
	if u := uint64(units); float64(u) == units {
		m.ticks += u * m.aluTicks
		return
	}
	m.ticks += toTicks(units * m.cfg.ALUCycles)
}

// Branch implements mem.Model.
func (m *Machine) Branch(site mem.BranchSite, taken bool) {
	if m.bp.Predict(site, taken) {
		m.ticks += m.branchTicks
	} else {
		m.ticks += m.mispredictTicks
	}
}

// Cycles returns the accumulated simulated cycle count, converting from the
// fixed-point tick accumulator once, at read time.
func (m *Machine) Cycles() float64 { return float64(m.ticks) / ticksPerCycle }

// Counters returns a snapshot of all performance counters.
func (m *Machine) Counters() Counters {
	return Counters{
		Cycles:       m.Cycles(),
		Reads:        m.reads,
		Writes:       m.writes,
		L1Accesses:   m.l1.Accesses,
		L1Misses:     m.l1.Misses,
		L2Accesses:   m.l2.Accesses,
		L2Misses:     m.l2.Misses,
		Branches:     m.bp.Branches,
		Mispredicts:  m.bp.Mispredicts,
		TLBAccesses:  m.tlb.Accesses,
		TLBMisses:    m.tlb.Misses,
		Allocs:       m.allocs,
		Frees:        m.frees,
		BytesAlloced: m.bytes,
	}
}

// Reset clears all machine state: caches, predictor, heap, and counters.
func (m *Machine) Reset() {
	m.l1.Reset()
	m.l2.Reset()
	m.tlb.Reset()
	m.bp.Reset()
	m.heap.init()
	m.ticks = 0
	m.reads = 0
	m.writes = 0
	m.allocs = 0
	m.frees = 0
	m.bytes = 0
}

// String describes the machine in the style of Figure 7.
func (m *Machine) String() string {
	c := m.cfg
	return fmt.Sprintf("%s: L1 %dKB/%d-way, L2 %dKB/%d-way, line %dB, TLB %d entries, mem %.0f cyc, mispredict %.0f cyc",
		c.Name, c.L1Size>>10, c.L1Ways, c.L2Size>>10, c.L2Ways, c.L1Line, c.TLBEntries, c.MemCycles, c.MispredictCycles)
}

// allocator is a size-class free-list bump allocator over the simulated
// address space. Reusing freed blocks matters: it gives linked structures
// the realistic property that nodes allocated after churn are scattered.
type allocator struct {
	next  uint64
	freed map[uint64][]mem.Addr // size class -> free blocks
}

func (a *allocator) init() {
	a.next = 1 << 20
	a.freed = make(map[uint64][]mem.Addr)
}

func sizeClass(size uint64) uint64 {
	// Round up to the next power of two, minimum 16 bytes.
	c := uint64(16)
	for c < size {
		c <<= 1
	}
	return c
}

func (a *allocator) alloc(size, align uint64) mem.Addr {
	if align == 0 {
		align = 8
	}
	class := sizeClass(size)
	if list := a.freed[class]; len(list) > 0 {
		addr := list[len(list)-1]
		a.freed[class] = list[:len(list)-1]
		return addr
	}
	base := (a.next + align - 1) &^ (align - 1)
	a.next = base + class
	return mem.Addr(base)
}

func (a *allocator) free(addr mem.Addr, size uint64) {
	class := sizeClass(size)
	a.freed[class] = append(a.freed[class], addr)
}
