package loadgen

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf draws keys from [0, n) with zipfian skew parameter theta in [0, 1):
// theta 0 is uniform, 0.99 is the YCSB-standard hot-key distribution where
// a handful of keys absorb most of the traffic — the access pattern an
// inference cache actually sees from a real application's hot containers.
//
// The stdlib rand.Zipf parameterizes s > 1 and cannot express theta < 1,
// so this is the classical Gray et al. rejection-free construction used by
// YCSB: all state is precomputed, Next is two float ops and a pow.
type Zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta, hoisted out of Next
}

// NewZipf builds a generator over [0, n). theta must be in [0, 1).
func NewZipf(n int, theta float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: zipf needs n > 0, got %d", n)
	}
	if theta < 0 || theta >= 1 {
		return nil, fmt.Errorf("loadgen: zipf theta must be in [0,1), got %g", theta)
	}
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	z := &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
	return z, nil
}

// Next draws one key using the caller's rand source, so concurrent workers
// can share a Zipf (all fields are read-only after construction) while each
// owns its deterministic stream.
func (z *Zipf) Next(r *rand.Rand) int {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
