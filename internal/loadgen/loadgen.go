// Package loadgen is the closed-loop load generator behind cmd/brainy-loadgen:
// a fixed number of connections issue advise and profile-ingest requests
// back to back against a running brainy-serve, drawing request keys from a
// zipfian distribution so the hot-key behavior of the inference cache and
// the shard batchers is actually exercised. The result is a machine-readable
// Report — throughput, latency quantiles, cache-hit rate — consumed by
// `make loadtest`, the CI throughput gate, and BENCH_serve.json.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/opstats"
	"repro/internal/profile"
)

// Config tunes one load-generation run.
type Config struct {
	// URL is the base URL of the server under test (e.g. http://127.0.0.1:8377).
	URL string
	// Conns is the number of closed-loop workers; each holds one connection
	// and issues its next request as soon as the previous one finished.
	Conns int
	// Duration is how long the measured phase runs.
	Duration time.Duration
	// Warmup runs the same load without recording first — cache fill and
	// connection establishment stay out of the measurement.
	Warmup time.Duration
	// Skew is the zipf theta in [0,1) used to pick request keys.
	Skew float64
	// Keys is the size of the key universe: distinct advise traces (and
	// distinct profile-stream instances) the generator draws from.
	Keys int
	// MixAdvise:MixProfiles is the request mix; every worker interleaves
	// deterministically, e.g. 9:1 sends one ingest per nine advises.
	MixAdvise   int
	MixProfiles int
	// Seed makes the key sequence reproducible across runs.
	Seed int64
	// Arch is the ?arch= every request carries.
	Arch string
}

func (c Config) withDefaults() (Config, error) {
	if c.URL == "" {
		return c, fmt.Errorf("loadgen: URL required")
	}
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Keys <= 0 {
		c.Keys = 512
	}
	if c.MixAdvise <= 0 && c.MixProfiles <= 0 {
		c.MixAdvise, c.MixProfiles = 9, 1
	}
	if c.MixAdvise < 0 || c.MixProfiles < 0 {
		return c, fmt.Errorf("loadgen: negative mix %d:%d", c.MixAdvise, c.MixProfiles)
	}
	if c.Arch == "" {
		c.Arch = "Core2"
	}
	return c, nil
}

// ParseMix parses an "advise:profiles" ratio like "9:1"; a bare integer
// means advise-only.
func ParseMix(s string) (advise, profiles int, err error) {
	parts := strings.SplitN(s, ":", 2)
	advise, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("loadgen: bad mix %q: %v", s, err)
	}
	if len(parts) == 2 {
		profiles, err = strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return 0, 0, fmt.Errorf("loadgen: bad mix %q: %v", s, err)
		}
	}
	if advise < 0 || profiles < 0 || advise+profiles == 0 {
		return 0, 0, fmt.Errorf("loadgen: bad mix %q", s)
	}
	return advise, profiles, nil
}

// Report is the JSON result of one run: everything BENCH_serve.json records
// and the CI gate compares.
type Report struct {
	URL         string  `json:"url"`
	Arch        string  `json:"arch"`
	Conns       int     `json:"conns"`
	Skew        float64 `json:"skew"`
	Keys        int     `json:"keys"`
	Mix         string  `json:"mix"`
	DurationSec float64 `json:"duration_sec"`

	Ops        uint64  `json:"ops"`
	AdviseOps  uint64  `json:"advise_ops"`
	ProfileOps uint64  `json:"profile_ops"`
	Errors     uint64  `json:"errors"` // transport failures and non-200s
	OpsPerSec  float64 `json:"ops_per_sec"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`

	// ServerP*Ms are the server's own advise-latency quantiles over the
	// measured phase, interpolated from the /metrics histogram delta with
	// the same opstats.HistogramSnapshot.Quantile the tsdb and dashboard
	// use. Comparing them with LatencyP*Ms separates queueing in the server
	// from time on the wire; 0 when /metrics was unavailable.
	ServerP50Ms float64 `json:"server_p50_ms,omitempty"`
	ServerP90Ms float64 `json:"server_p90_ms,omitempty"`
	ServerP99Ms float64 `json:"server_p99_ms,omitempty"`

	// SLO is the server's /v1/health verdict right after the run — did the
	// load burn any error budget? Nil when the endpoint was unavailable.
	SLO *SLOStatus `json:"slo,omitempty"`

	// P99TrendMs is the server's advise-p99 per scrape interval across the
	// run, from /v1/timeseries — the shape of the tail, not just its end
	// state. Empty when the endpoint was unavailable.
	P99TrendMs []float64 `json:"p99_trend_ms,omitempty"`

	// CacheHitRate is hits/(hits+misses) over the measured phase, scraped
	// from the server's /metrics page; -1 when the page was unavailable.
	CacheHitRate float64 `json:"cache_hit_rate"`

	// P99Exemplars are the request IDs the server stamped on its slowest
	// latency-histogram buckets during the run — the concrete requests to
	// feed brainy-explain when the tail looks wrong. Highest bucket first.
	P99Exemplars []ExemplarRef `json:"p99_exemplars,omitempty"`
}

// ExemplarRef names one traceable slow request scraped from /metrics.
type ExemplarRef struct {
	BucketLE  string  `json:"bucket_le"`
	RequestID string  `json:"request_id"`
	LatencyMs float64 `json:"latency_ms"`
}

// SLOStatus is the loadgen-local decode of GET /v1/health — only the fields
// the report records, so the load generator does not import the server.
type SLOStatus struct {
	Status     string         `json:"status"`
	Objectives []SLOObjective `json:"objectives,omitempty"`
}

// SLOObjective is one objective's verdict in the report.
type SLOObjective struct {
	Name     string  `json:"name"`
	State    string  `json:"state"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Reason   string  `json:"reason,omitempty"`
}

// Runner generates load against one server.
type Runner struct {
	cfg    Config
	client *http.Client
	zipf   *Zipf

	// Request bodies are pre-rendered per key: the measured loop does no
	// profiling or JSON encoding, only HTTP.
	adviseBodies [][]byte
	windowBodies [][]byte
}

// NewRunner pre-builds the key universe: one profiled container trace per
// key for /v1/advise (each key a distinct workload, hence a distinct
// inference-cache entry) and one snapshot window per key for /v1/profiles.
func NewRunner(cfg Config) (*Runner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	zipf, err := NewZipf(cfg.Keys, cfg.Skew)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:  cfg,
		zipf: zipf,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Conns,
				MaxIdleConnsPerHost: cfg.Conns,
			},
		},
	}
	m := machine.New(machine.Core2())
	for key := 0; key < cfg.Keys; key++ {
		c := profile.NewContainer(adt.KindVector, m, 8, fmt.Sprintf("loadgen/site%d", key), false)
		// Small per-key workloads with distinct sizes: distinct feature
		// vectors, so every key is its own cache entry.
		n := 16 + key
		for i := 0; i < n; i++ {
			c.Insert(uint64(i))
		}
		for i := 0; i < n/2; i++ {
			c.Find(uint64(i * 3))
		}
		p := c.Snapshot()
		var buf bytes.Buffer
		if err := profile.WriteTrace(&buf, []profile.Profile{p}); err != nil {
			return nil, err
		}
		r.adviseBodies = append(r.adviseBodies, buf.Bytes())
		r.windowBodies = append(r.windowBodies, []byte(fmt.Sprintf(
			`{"context":"loadgen/site%d","kind":0,"instance":0,"window_seq":0,"window_start_op":0,"window_end_op":16,"stats":{"count":[0,0,0,0,16,0,0,0,0,0]}}`+"\n", key)))
	}
	return r, nil
}

// counters is the /metrics scrape the hit rate, exemplars, and server-side
// latency histogram come from.
type counters struct {
	hits, misses float64
	ok           bool
	exemplars    []opstats.BucketExemplar
	hist         opstats.HistogramSnapshot
	histOK       bool
}

func (r *Runner) scrape() counters {
	resp, err := r.client.Get(r.cfg.URL + "/metrics")
	if err != nil {
		return counters{}
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return counters{}
	}
	var c counters
	c.exemplars = opstats.ParseExemplars(string(page), "brainy_request_duration_seconds")
	c.hist, c.histOK = opstats.ParseHistogram(string(page), "brainy_advise_duration_seconds")
	for _, line := range strings.Split(string(page), "\n") {
		var name string
		var val float64
		if n, _ := fmt.Sscanf(line, "%s %g", &name, &val); n != 2 {
			continue
		}
		switch name {
		case "brainy_cache_hits_total":
			c.hits, c.ok = val, true
		case "brainy_cache_misses_total":
			c.misses, c.ok = val, true
		}
	}
	return c
}

// Run drives the configured load and returns the measured report. ctx
// cancellation ends the run early (the report covers what ran).
func (r *Runner) Run(ctx context.Context) (Report, error) {
	if r.cfg.Warmup > 0 {
		wctx, cancel := context.WithTimeout(ctx, r.cfg.Warmup)
		r.loop(wctx, nil)
		cancel()
	}
	before := r.scrape()

	period := r.cfg.MixAdvise + r.cfg.MixProfiles
	workers := make([]*workerStats, r.cfg.Conns)
	for i := range workers {
		workers[i] = &workerStats{
			rng:       rand.New(rand.NewSource(r.cfg.Seed + int64(i)*7919)),
			mixOffset: (i * period) / r.cfg.Conns, // stagger the mix phase across workers
		}
	}
	mctx, cancel := context.WithTimeout(ctx, r.cfg.Duration)
	defer cancel()
	start := time.Now()
	r.loop(mctx, workers)
	elapsed := time.Since(start)

	after := r.scrape()
	rep := Report{
		URL:         r.cfg.URL,
		Arch:        r.cfg.Arch,
		Conns:       r.cfg.Conns,
		Skew:        r.cfg.Skew,
		Keys:        r.cfg.Keys,
		Mix:         fmt.Sprintf("%d:%d", r.cfg.MixAdvise, r.cfg.MixProfiles),
		DurationSec: elapsed.Seconds(),
	}
	var lats []time.Duration
	for _, w := range workers {
		rep.Ops += w.ops
		rep.AdviseOps += w.advise
		rep.ProfileOps += w.profiles
		rep.Errors += w.errors
		lats = append(lats, w.lats...)
	}
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.Ops) / elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.LatencyP50Ms = quantileMs(lats, 0.50)
	rep.LatencyP90Ms = quantileMs(lats, 0.90)
	rep.LatencyP99Ms = quantileMs(lats, 0.99)
	if len(lats) > 0 {
		rep.LatencyMaxMs = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	}
	rep.CacheHitRate = -1
	if before.ok && after.ok {
		hits, misses := after.hits-before.hits, after.misses-before.misses
		if hits+misses > 0 {
			rep.CacheHitRate = hits / (hits + misses)
		}
	}
	rep.P99Exemplars = p99Exemplars(after.exemplars, rep.LatencyP99Ms)
	// Server-side view of the same run: the advise-histogram delta over the
	// measured phase, the health verdict, and the p99 trend. Best-effort —
	// an older server without the endpoints still produces a full report.
	if before.histOK && after.histOK {
		d := after.hist.Sub(before.hist)
		if d.Count > 0 {
			rep.ServerP50Ms = d.Quantile(0.50) * 1000
			rep.ServerP90Ms = d.Quantile(0.90) * 1000
			rep.ServerP99Ms = d.Quantile(0.99) * 1000
		}
	}
	rep.SLO = r.fetchSLO()
	rep.P99TrendMs = r.fetchP99Trend(elapsed + r.cfg.Warmup)
	return rep, nil
}

// fetchSLO reads the server's health verdict; nil when unavailable.
func (r *Runner) fetchSLO() *SLOStatus {
	resp, err := r.client.Get(r.cfg.URL + "/v1/health")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var doc struct {
		Status string    `json:"status"`
		SLO    SLOStatus `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil
	}
	out := doc.SLO
	out.Status = doc.Status
	return &out
}

// fetchP99Trend reads the server's advise-p99 series covering the run.
func (r *Runner) fetchP99Trend(window time.Duration) []float64 {
	q := url.Values{}
	q.Set("series", "brainy_advise_duration_seconds:p99")
	q.Set("since", window.Round(time.Millisecond).String())
	resp, err := r.client.Get(r.cfg.URL + "/v1/timeseries?" + q.Encode())
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var doc struct {
		Points map[string][]struct {
			V float64 `json:"v"`
		} `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil
	}
	var out []float64
	for _, p := range doc.Points["brainy_advise_duration_seconds:p99"] {
		out = append(out, p.V*1000)
	}
	return out
}

// p99Exemplars selects the traceable requests worth a second look: every
// bucket exemplar at or above the measured p99, slowest first — or, when
// the whole histogram sits under the p99 cut (coarse buckets), the single
// slowest exemplar so the report always links to at least one request.
func p99Exemplars(exs []opstats.BucketExemplar, p99Ms float64) []ExemplarRef {
	var out []ExemplarRef
	for _, ex := range exs {
		out = append(out, ExemplarRef{
			BucketLE:  ex.LE,
			RequestID: ex.RequestID,
			LatencyMs: ex.Value * 1000,
		})
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LatencyMs > out[j].LatencyMs })
	n := 0
	for _, ex := range out {
		if ex.LatencyMs >= p99Ms {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return out[:n]
}

// workerStats is one closed-loop worker's private accounting; nil stats
// (warmup) drive the same load without recording.
type workerStats struct {
	rng       *rand.Rand
	mixOffset int
	ops       uint64
	advise    uint64
	profiles  uint64
	errors    uint64
	lats      []time.Duration
}

// loop runs Conns closed-loop workers until ctx expires. During warmup
// stats is nil and each worker uses a throwaway rand stream.
func (r *Runner) loop(ctx context.Context, stats []*workerStats) {
	period := r.cfg.MixAdvise + r.cfg.MixProfiles
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.Conns; i++ {
		var ws *workerStats
		if stats != nil {
			ws = stats[i]
		} else {
			ws = &workerStats{rng: rand.New(rand.NewSource(r.cfg.Seed ^ 0x5eed + int64(i)))}
		}
		record := stats != nil
		wg.Add(1)
		go func(ws *workerStats) {
			defer wg.Done()
			for n := ws.mixOffset; ctx.Err() == nil; n++ {
				key := r.zipf.Next(ws.rng)
				isAdvise := n%period < r.cfg.MixAdvise
				var path string
				var body []byte
				if isAdvise {
					path = "/v1/advise"
					body = r.adviseBodies[key]
				} else {
					path = "/v1/profiles"
					body = r.windowBodies[key]
				}
				start := time.Now()
				ok := r.post(ctx, path, body)
				if !record {
					continue
				}
				ws.ops++
				ws.lats = append(ws.lats, time.Since(start))
				if isAdvise {
					ws.advise++
				} else {
					ws.profiles++
				}
				if !ok {
					ws.errors++
				}
			}
		}(ws)
	}
	wg.Wait()
}

// post issues one request; false means transport failure or non-200. The
// request runs under its own detached deadline, not the run context: the
// loop checks the run deadline *between* requests, so an in-flight request
// always completes and every op the report counts was fully served — the
// invariant that lets /v1/rollup totals reconcile exactly with the report.
// A failure right at run expiry is still not counted against the server.
func (r *Runner) post(ctx context.Context, path string, body []byte) bool {
	reqCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		r.cfg.URL+path+"?arch="+r.cfg.Arch, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return ctx.Err() != nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// quantileMs returns the q-quantile of sorted latencies in milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
