package loadgen

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/training"
)

func TestZipfBoundsAndDeterminism(t *testing.T) {
	z, err := NewZipf(64, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		ka, kb := z.Next(a), z.Next(b)
		if ka != kb {
			t.Fatalf("draw %d not deterministic: %d vs %d", i, ka, kb)
		}
		if ka < 0 || ka >= 64 {
			t.Fatalf("draw %d out of range: %d", i, ka)
		}
	}
	if _, err := NewZipf(0, 0.5); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(10, 1.0); err == nil {
		t.Fatal("theta=1 accepted")
	}
}

// TestZipfSkewConcentrates: at theta 0.99 the hottest key takes far more
// than its uniform share, and at theta 0 the distribution is flat-ish.
func TestZipfSkewConcentrates(t *testing.T) {
	const n, draws = 128, 100000
	count := func(theta float64) []int {
		z, err := NewZipf(n, theta)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(7))
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next(r)]++
		}
		return counts
	}
	hot := count(0.99)
	if share := float64(hot[0]) / draws; share < 0.10 {
		t.Fatalf("theta=0.99 hottest key got %.3f of draws, want > 10x uniform (uniform = %.4f)", share, 1.0/n)
	}
	flat := count(0)
	if share := float64(flat[0]) / draws; share > 0.05 {
		t.Fatalf("theta=0 hottest key got %.3f of draws, want near uniform", share)
	}
}

func TestParseMix(t *testing.T) {
	for _, tc := range []struct {
		in       string
		adv, pro int
		wantErr  bool
	}{
		{"9:1", 9, 1, false},
		{"1:0", 1, 0, false},
		{"3", 3, 0, false},
		{"0:0", 0, 0, true},
		{"a:b", 0, 0, true},
		{"-1:2", 0, 0, true},
	} {
		adv, pro, err := ParseMix(tc.in)
		if (err != nil) != tc.wantErr {
			t.Fatalf("ParseMix(%q) err = %v", tc.in, err)
		}
		if err == nil && (adv != tc.adv || pro != tc.pro) {
			t.Fatalf("ParseMix(%q) = %d:%d, want %d:%d", tc.in, adv, pro, tc.adv, tc.pro)
		}
	}
}

func TestQuantileMs(t *testing.T) {
	lats := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	}
	if q := quantileMs(lats, 0.5); q != 3 {
		t.Fatalf("p50 = %g, want 3", q)
	}
	if q := quantileMs(lats, 0.99); q != 100 {
		t.Fatalf("p99 = %g, want 100", q)
	}
	if q := quantileMs(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

// testServer builds a real sharded advisor around a deterministic untrained
// model, the same shape the serve tests use.
func testServer(t *testing.T) (*serve.Server, string) {
	t.Helper()
	set := training.NewModelSet()
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	cands := adt.CandidatesWithOriginal(tgt.Kind, tgt.OrderAware)
	cfg := ann.DefaultConfig()
	cfg.Seed = 7
	set.Put(&training.Model{
		Target:     tgt,
		Arch:       "Core2",
		Candidates: cands,
		Net:        ann.New(profile.NumFeatures, len(cands), cfg),
	})
	s := serve.New(set, serve.Config{NoRequestLog: true, DriftRules: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts.URL
}

// TestRunnerClosedLoop drives a short real run end to end: every op
// succeeds, the mix includes both endpoints, latencies are recorded, and
// the zipf-hot advise keys produce cache hits visible in the report.
func TestRunnerClosedLoop(t *testing.T) {
	_, url := testServer(t)
	r, err := NewRunner(Config{
		URL:         url,
		Conns:       4,
		Duration:    300 * time.Millisecond,
		Skew:        0.99,
		Keys:        16,
		MixAdvise:   3,
		MixProfiles: 1,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d of %d ops", rep.Errors, rep.Ops)
	}
	if rep.Ops == 0 || rep.AdviseOps == 0 || rep.ProfileOps == 0 {
		t.Fatalf("mix not exercised: %+v", rep)
	}
	if rep.Ops != rep.AdviseOps+rep.ProfileOps {
		t.Fatalf("op accounting: %d != %d + %d", rep.Ops, rep.AdviseOps, rep.ProfileOps)
	}
	if rep.OpsPerSec <= 0 || rep.LatencyP50Ms <= 0 || rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Fatalf("latency accounting: %+v", rep)
	}
	// 16 keys under 0.99 skew: after the first pass almost everything is a
	// repeat, so the measured hit rate must be positive.
	if rep.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %g, want > 0 under hot-key skew", rep.CacheHitRate)
	}
}
