package loadgen

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/opstats"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/training"
)

func TestZipfBoundsAndDeterminism(t *testing.T) {
	z, err := NewZipf(64, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		ka, kb := z.Next(a), z.Next(b)
		if ka != kb {
			t.Fatalf("draw %d not deterministic: %d vs %d", i, ka, kb)
		}
		if ka < 0 || ka >= 64 {
			t.Fatalf("draw %d out of range: %d", i, ka)
		}
	}
	if _, err := NewZipf(0, 0.5); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(10, 1.0); err == nil {
		t.Fatal("theta=1 accepted")
	}
}

// TestZipfSkewConcentrates: at theta 0.99 the hottest key takes far more
// than its uniform share, and at theta 0 the distribution is flat-ish.
func TestZipfSkewConcentrates(t *testing.T) {
	const n, draws = 128, 100000
	count := func(theta float64) []int {
		z, err := NewZipf(n, theta)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(7))
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next(r)]++
		}
		return counts
	}
	hot := count(0.99)
	if share := float64(hot[0]) / draws; share < 0.10 {
		t.Fatalf("theta=0.99 hottest key got %.3f of draws, want > 10x uniform (uniform = %.4f)", share, 1.0/n)
	}
	flat := count(0)
	if share := float64(flat[0]) / draws; share > 0.05 {
		t.Fatalf("theta=0 hottest key got %.3f of draws, want near uniform", share)
	}
}

func TestParseMix(t *testing.T) {
	for _, tc := range []struct {
		in       string
		adv, pro int
		wantErr  bool
	}{
		{"9:1", 9, 1, false},
		{"1:0", 1, 0, false},
		{"3", 3, 0, false},
		{"0:0", 0, 0, true},
		{"a:b", 0, 0, true},
		{"-1:2", 0, 0, true},
	} {
		adv, pro, err := ParseMix(tc.in)
		if (err != nil) != tc.wantErr {
			t.Fatalf("ParseMix(%q) err = %v", tc.in, err)
		}
		if err == nil && (adv != tc.adv || pro != tc.pro) {
			t.Fatalf("ParseMix(%q) = %d:%d, want %d:%d", tc.in, adv, pro, tc.adv, tc.pro)
		}
	}
}

func TestQuantileMs(t *testing.T) {
	lats := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	}
	if q := quantileMs(lats, 0.5); q != 3 {
		t.Fatalf("p50 = %g, want 3", q)
	}
	if q := quantileMs(lats, 0.99); q != 100 {
		t.Fatalf("p99 = %g, want 100", q)
	}
	if q := quantileMs(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

// testServer builds a real sharded advisor around a deterministic untrained
// model, the same shape the serve tests use.
func testServer(t *testing.T) (*serve.Server, string) {
	t.Helper()
	set := training.NewModelSet()
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	cands := adt.CandidatesWithOriginal(tgt.Kind, tgt.OrderAware)
	cfg := ann.DefaultConfig()
	cfg.Seed = 7
	set.Put(&training.Model{
		Target:     tgt,
		Arch:       "Core2",
		Candidates: cands,
		Net:        ann.New(profile.NumFeatures, len(cands), cfg),
	})
	// FlightSize is large so the reconciliation test can resolve any p99
	// exemplar in the journal: at the default bound a short hot run can
	// scroll early records out of the ring before the lookup.
	// A fast sample interval so short runs still land several scrapes in the
	// time-series store (the p99-trend assertions need points).
	s := serve.New(set, serve.Config{NoRequestLog: true, DriftRules: true, FlightSize: 1 << 16,
		SampleInterval: 25 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts.URL
}

// TestRunnerClosedLoop drives a short real run end to end: every op
// succeeds, the mix includes both endpoints, latencies are recorded, and
// the zipf-hot advise keys produce cache hits visible in the report.
func TestRunnerClosedLoop(t *testing.T) {
	_, url := testServer(t)
	r, err := NewRunner(Config{
		URL:         url,
		Conns:       4,
		Duration:    300 * time.Millisecond,
		Skew:        0.99,
		Keys:        16,
		MixAdvise:   3,
		MixProfiles: 1,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d of %d ops", rep.Errors, rep.Ops)
	}
	if rep.Ops == 0 || rep.AdviseOps == 0 || rep.ProfileOps == 0 {
		t.Fatalf("mix not exercised: %+v", rep)
	}
	if rep.Ops != rep.AdviseOps+rep.ProfileOps {
		t.Fatalf("op accounting: %d != %d + %d", rep.Ops, rep.AdviseOps, rep.ProfileOps)
	}
	if rep.OpsPerSec <= 0 || rep.LatencyP50Ms <= 0 || rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Fatalf("latency accounting: %+v", rep)
	}
	// 16 keys under 0.99 skew: after the first pass almost everything is a
	// repeat, so the measured hit rate must be positive.
	if rep.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %g, want > 0 under hot-key skew", rep.CacheHitRate)
	}
}

// TestP99ExemplarSelection pins the report's exemplar cut: everything at or
// above the p99 makes it in (slowest first), and a histogram too coarse to
// clear the cut still links its single slowest request.
func TestP99ExemplarSelection(t *testing.T) {
	exs := []opstats.BucketExemplar{
		{LE: "0.005", RequestID: "fast", Value: 0.004},
		{LE: "0.1", RequestID: "slowest", Value: 0.09},
		{LE: "0.025", RequestID: "slow", Value: 0.02},
	}
	got := p99Exemplars(exs, 15) // p99 = 15ms: two exemplars clear it
	if len(got) != 2 || got[0].RequestID != "slowest" || got[1].RequestID != "slow" {
		t.Fatalf("p99 cut: %+v", got)
	}
	if got[0].LatencyMs != 90 || got[0].BucketLE != "0.1" {
		t.Fatalf("exemplar fields: %+v", got[0])
	}
	// Cut above every exemplar: keep the single slowest so the report always
	// links at least one traceable request.
	if got := p99Exemplars(exs, 500); len(got) != 1 || got[0].RequestID != "slowest" {
		t.Fatalf("coarse-bucket fallback: %+v", got)
	}
	if got := p99Exemplars(nil, 1); got != nil {
		t.Fatalf("no exemplars must yield nil, got %+v", got)
	}
}

// bucketIdx places a latency (seconds) in the advise histogram's bucket grid.
func bucketIdx(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// TestServerSideQuantilesAndSLO pins the report's server-side view: the
// advise-histogram quantiles agree with the directly measured latencies to
// within one histogram bucket (interpolation cannot do better), the health
// verdict rides along, and the p99 trend has points covering the run.
func TestServerSideQuantilesAndSLO(t *testing.T) {
	_, url := testServer(t)
	r, err := NewRunner(Config{
		URL:      url,
		Conns:    4,
		Duration: 500 * time.Millisecond,
		Skew:     0.5,
		Keys:     16,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.ServerP99Ms <= 0 || rep.ServerP50Ms <= 0 || rep.ServerP99Ms < rep.ServerP50Ms {
		t.Fatalf("server quantiles: p50=%g p99=%g", rep.ServerP50Ms, rep.ServerP99Ms)
	}
	// The handler cannot be slower than the round trip the client timed.
	if rep.ServerP99Ms > rep.LatencyP99Ms {
		t.Fatalf("server p99 %.3fms exceeds direct round-trip p99 %.3fms", rep.ServerP99Ms, rep.LatencyP99Ms)
	}
	if rep.SLO == nil || rep.SLO.Status == "" {
		t.Fatalf("report carries no SLO verdict: %+v", rep.SLO)
	}
	if len(rep.SLO.Objectives) != 4 {
		t.Fatalf("objective count = %d, want 4", len(rep.SLO.Objectives))
	}
	if len(rep.P99TrendMs) == 0 {
		t.Fatal("report carries no p99 trend points")
	}
	// Both p99 views run the same bucket interpolation — one straight off
	// the /metrics histogram delta, one through the tsdb's retained
	// snapshots — so the tsdb-derived tail must land within one bucket of
	// the directly scraped one.
	trendMax := 0.0
	for _, v := range rep.P99TrendMs {
		if v <= 0 {
			t.Fatalf("trend point %g not positive: %v", v, rep.P99TrendMs)
		}
		if v > trendMax {
			trendMax = v
		}
	}
	tsdbB := bucketIdx(opstats.DefBuckets, trendMax/1000)
	directB := bucketIdx(opstats.DefBuckets, rep.ServerP99Ms/1000)
	if d := tsdbB - directB; d < -1 || d > 1 {
		t.Fatalf("tsdb p99 %.3fms (bucket %d) vs scraped p99 %.3fms (bucket %d): more than one bucket apart",
			trendMax, tsdbB, rep.ServerP99Ms, directB)
	}
}

// TestRunReconcilesWithRollupAndExemplars closes the observability loop the
// CI smoke also checks: after a run, the server-side fleet rollup agrees
// exactly with the client-side report, and the report links request IDs
// that resolve in the server's decision journal.
func TestRunReconcilesWithRollupAndExemplars(t *testing.T) {
	_, url := testServer(t)
	r, err := NewRunner(Config{
		URL:         url,
		Conns:       2,
		Duration:    300 * time.Millisecond,
		Skew:        0.5,
		Keys:        32,
		MixAdvise:   2,
		MixProfiles: 1,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}

	var roll serve.RollupResponse
	resp, err := http.Get(url + "/v1/rollup")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&roll); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Exact reconciliation: every counted op was fully served, every served
	// op was counted. One advise decision per advise op (single-profile
	// bodies), one ingested window per profiles op.
	if roll.AdviseDecisions != rep.AdviseOps {
		t.Fatalf("rollup advise_decisions = %d, report advise_ops = %d", roll.AdviseDecisions, rep.AdviseOps)
	}
	if roll.Windows != rep.ProfileOps {
		t.Fatalf("rollup windows = %d, report profile_ops = %d", roll.Windows, rep.ProfileOps)
	}

	if len(rep.P99Exemplars) == 0 {
		t.Fatal("report carries no p99 exemplars")
	}
	// Every linked request ID resolves in the decision journal — the
	// brainy-explain handoff.
	for _, ex := range rep.P99Exemplars {
		var dec serve.DecisionsResponse
		dresp, err := http.Get(url + "/debug/decisions?format=json&request_id=" + ex.RequestID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(dresp.Body).Decode(&dec); err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dec.Returned == 0 {
			t.Fatalf("exemplar %s not found in the decision journal", ex.RequestID)
		}
	}
}
