// Package flatbtree implements an arena-backed B+-tree with a
// Structure-of-Arrays node layout: every node lives in one contiguous arena
// slot laid out as [meta | keys... | values-or-children...], so the binary
// search loop streams 8-byte keys out of a handful of cache lines instead of
// chasing a pointer per comparison. All keys live in the leaves, which are
// chained for sequential iteration; internal nodes hold copied-up
// separators. Splits and merges are span copies between slots, nodes are
// recycled through a free list, and the arena reserves memory from the
// model in large chunks — so the steady state performs no allocations, and
// the machine simulator sees a dense, sequential address space.
//
// Elements are uint64 keys; when the simulated element size exceeds 8
// bytes the remainder is modeled as a payload region packed behind the
// keys, touched only when an element is actually produced or stored —
// searching never drags payload bytes through the cache, which is the
// point of the SoA split.
package flatbtree

import (
	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside flat B+-tree code.
const (
	siteSearch mem.BranchSite = 0x700 // binary-search probe comparison
	siteLeaf   mem.BranchSite = 0x701 // descend: reached a leaf?
	siteFound  mem.BranchSite = 0x702 // leaf slot equals key?
	siteFull   mem.BranchSite = 0x703 // node full, split on the way down?
	siteUnder  mem.BranchSite = 0x704 // node underflow after erase?
	siteBorrow mem.BranchSite = 0x705 // sibling rich enough to lend?
)

const (
	// MaxKeys is the node fanout. SoA key storage makes wide nodes cheap:
	// a binary search over 63 packed keys touches at most a handful of the
	// eight key cache lines, while the extra fanout drops a 100k-element
	// tree from five levels to three. Odd (the classic 2t-1) so both
	// halves of a split land exactly at MinKeys.
	MaxKeys = 63
	// MinKeys is the occupancy floor for non-root nodes.
	MinKeys = MaxKeys / 2

	metaBytes  = 16
	keyBytes   = 8
	childBytes = 8

	nilNode = int32(-1)

	arenaChunk = 1 << 16
)

var zeroKeys [MaxKeys]uint64
var zeroKids [MaxKeys + 1]int32

// nodeMeta is the Go-side header of one node; its simulated twin is the
// metaBytes header at the front of the node's arena slot.
type nodeMeta struct {
	addr mem.Addr
	n    int32
	next int32 // next leaf in key order; nilNode for internal nodes
	leaf bool
}

// Tree is a flat B+-tree set of uint64 keys. Construct with New.
type Tree struct {
	model    mem.Model
	arena    *mem.Arena
	elemSize uint64
	payload  uint64 // element bytes beyond the 8-byte key (0 when elemSize <= 8)

	// SoA node pools indexed by node id: node i owns
	// keys[i*MaxKeys:(i+1)*MaxKeys] and kids[i*(MaxKeys+1):...].
	meta []nodeMeta
	keys []uint64
	kids []int32

	freeIDs []int32
	root    int32
	first   int32 // leftmost leaf, the iteration head
	size    int
	stats   opstats.Stats

	pathID  []int32 // reusable erase descent stack
	pathIdx []int
}

// New returns an empty tree bound to the given memory model with the given
// simulated element size in bytes. A nil model defaults to mem.Nop.
func New(model mem.Model, elemSize uint64) *Tree {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	payload := uint64(0)
	if elemSize > keyBytes {
		payload = elemSize - keyBytes
	}
	return &Tree{
		model:    model,
		arena:    mem.NewArena(model, arenaChunk),
		elemSize: elemSize,
		payload:  payload,
		root:     nilNode,
		first:    nilNode,
	}
}

// Stats exposes the container's accumulated software features.
func (t *Tree) Stats() *opstats.Stats {
	t.stats.ElemSize = t.elemSize
	return &t.stats
}

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// ArenaBytes reports the simulated bytes the tree's arena has reserved.
func (t *Tree) ArenaBytes() uint64 { return t.arena.Bytes() }

// nodeBytes is the simulated slot size: leaves pack payloads behind the
// keys, internal nodes pack child pointers there instead.
func (t *Tree) nodeBytes(leaf bool) uint64 {
	if leaf {
		return metaBytes + MaxKeys*keyBytes + MaxKeys*t.payload
	}
	return metaBytes + MaxKeys*keyBytes + (MaxKeys+1)*childBytes
}

func (t *Tree) keyAddr(id int32, i int) mem.Addr {
	return t.meta[id].addr + metaBytes + mem.Addr(i)*keyBytes
}

func (t *Tree) kidAddr(id int32, i int) mem.Addr {
	return t.meta[id].addr + metaBytes + MaxKeys*keyBytes + mem.Addr(i)*childBytes
}

func (t *Tree) payAddr(id int32, i int) mem.Addr {
	return t.meta[id].addr + metaBytes + MaxKeys*keyBytes + mem.Addr(uint64(i)*t.payload)
}

func (t *Tree) readMeta(id int32)  { t.model.Read(t.meta[id].addr, metaBytes) }
func (t *Tree) writeMeta(id int32) { t.model.Write(t.meta[id].addr, metaBytes) }

func (t *Tree) newNode(leaf bool) int32 {
	var id int32
	if n := len(t.freeIDs); n > 0 {
		id = t.freeIDs[n-1]
		t.freeIDs = t.freeIDs[:n-1]
	} else {
		id = int32(len(t.meta))
		t.meta = append(t.meta, nodeMeta{})
		t.keys = append(t.keys, zeroKeys[:]...)
		t.kids = append(t.kids, zeroKids[:]...)
	}
	t.meta[id] = nodeMeta{addr: t.arena.Alloc(t.nodeBytes(leaf), 64), next: nilNode, leaf: leaf}
	t.writeMeta(id)
	return id
}

func (t *Tree) freeNode(id int32) {
	t.arena.Free(t.meta[id].addr, t.nodeBytes(t.meta[id].leaf))
	t.freeIDs = append(t.freeIDs, id)
}

// bsearch finds the partition point of key in node id: with inner=false the
// first slot whose key is >= key (leaf lower bound), with inner=true the
// first separator > key — which is exactly the child index to descend into.
// Each probe is one 8-byte read from the packed key region plus one branch.
func (t *Tree) bsearch(id int32, key uint64, inner bool) int {
	base := int(id) * MaxKeys
	lo, hi := 0, int(t.meta[id].n)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t.model.Read(t.keyAddr(id, mid), keyBytes)
		var goRight bool
		if inner {
			goRight = t.keys[base+mid] <= key
		} else {
			goRight = t.keys[base+mid] < key
		}
		t.model.Branch(siteSearch, goRight)
		if goRight {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafSlot locates key inside leaf id, reporting the lower-bound index and
// whether the key is present.
func (t *Tree) leafSlot(id int32, key uint64) (int, bool) {
	idx := t.bsearch(id, key, false)
	n := int(t.meta[id].n)
	found := false
	if idx < n {
		t.model.Read(t.keyAddr(id, idx), keyBytes)
		found = t.keys[int(id)*MaxKeys+idx] == key
	}
	t.model.Branch(siteFound, found)
	return idx, found
}

// Contains reports whether key is present.
func (t *Tree) Contains(key uint64) bool {
	if t.root == nilNode {
		t.stats.Observe(opstats.OpFind, 0)
		return false
	}
	id := t.root
	touched := uint64(0)
	for {
		t.readMeta(id)
		touched++
		isLeaf := t.meta[id].leaf
		t.model.Branch(siteLeaf, isLeaf)
		if isLeaf {
			break
		}
		idx := t.bsearch(id, key, true)
		t.model.Read(t.kidAddr(id, idx), childBytes)
		id = t.kids[int(id)*(MaxKeys+1)+idx]
	}
	idx, found := t.leafSlot(id, key)
	if found && t.payload > 0 {
		t.model.Read(t.payAddr(id, idx), t.payload)
	}
	t.stats.Observe(opstats.OpFind, touched)
	return found
}

// Insert adds key, returning false when it was already present (the
// payload is overwritten, matching map semantics for larger elements).
func (t *Tree) Insert(key uint64) bool {
	if t.root == nilNode {
		t.root = t.newNode(true)
		t.first = t.root
	}
	t.readMeta(t.root)
	touched := uint64(1)
	rootFull := int(t.meta[t.root].n) == MaxKeys
	t.model.Branch(siteFull, rootFull)
	if rootFull {
		old := t.root
		nr := t.newNode(false)
		t.kids[int(nr)*(MaxKeys+1)] = old
		t.model.Write(t.kidAddr(nr, 0), childBytes)
		t.root = nr
		t.splitChild(nr, 0, old)
	}
	// Single-pass descent: any full node splits before we step into it, so
	// the leaf always has room.
	id := t.root
	for {
		isLeaf := t.meta[id].leaf
		t.model.Branch(siteLeaf, isLeaf)
		if isLeaf {
			break
		}
		idx := t.bsearch(id, key, true)
		t.model.Read(t.kidAddr(id, idx), childBytes)
		child := t.kids[int(id)*(MaxKeys+1)+idx]
		t.readMeta(child)
		touched++
		childFull := int(t.meta[child].n) == MaxKeys
		t.model.Branch(siteFull, childFull)
		if childFull {
			t.splitChild(id, idx, child)
			t.model.Read(t.keyAddr(id, idx), keyBytes)
			goRight := key >= t.keys[int(id)*MaxKeys+idx]
			t.model.Branch(siteSearch, goRight)
			if goRight {
				idx++
				t.model.Read(t.kidAddr(id, idx), childBytes)
				child = t.kids[int(id)*(MaxKeys+1)+idx]
				t.readMeta(child)
				touched++
			}
		}
		id = child
	}
	idx, found := t.leafSlot(id, key)
	if found {
		if t.payload > 0 {
			t.model.Write(t.payAddr(id, idx), t.payload)
		}
		t.stats.Observe(opstats.OpInsert, touched)
		return false
	}
	base := int(id) * MaxKeys
	n := int(t.meta[id].n)
	copy(t.keys[base+idx+1:base+n+1], t.keys[base+idx:base+n])
	t.keys[base+idx] = key
	// The shift and the new element are one contiguous span write.
	t.model.Write(t.keyAddr(id, idx), uint64(n-idx+1)*keyBytes)
	if t.payload > 0 {
		t.model.Write(t.payAddr(id, idx), uint64(n-idx+1)*t.payload)
	}
	t.meta[id].n = int32(n + 1)
	t.writeMeta(id)
	t.size++
	t.stats.Observe(opstats.OpInsert, touched)
	t.stats.NoteLen(t.size)
	return true
}

// splitChild splits the full child (the idx-th child of parent) into two
// half-full nodes, promoting a separator into parent, which must have room.
// Leaf splits copy the separator up and chain the new right leaf; internal
// splits move the middle separator up. All element movement is span copies
// between arena slots.
func (t *Tree) splitChild(parent int32, idx int, child int32) {
	isLeaf := t.meta[child].leaf
	right := t.newNode(isLeaf)
	cb, rb := int(child)*MaxKeys, int(right)*MaxKeys
	var sep uint64
	if isLeaf {
		const keep = MaxKeys / 2
		const moved = MaxKeys - keep
		copy(t.keys[rb:rb+moved], t.keys[cb+keep:cb+MaxKeys])
		t.model.Read(t.keyAddr(child, keep), moved*keyBytes)
		t.model.Write(t.keyAddr(right, 0), moved*keyBytes)
		if t.payload > 0 {
			t.model.Read(t.payAddr(child, keep), moved*t.payload)
			t.model.Write(t.payAddr(right, 0), moved*t.payload)
		}
		t.meta[right].n = moved
		t.meta[child].n = keep
		t.meta[right].next = t.meta[child].next
		t.meta[child].next = right
		sep = t.keys[rb] // copied up: the right leaf keeps its first key
	} else {
		const keep = MaxKeys / 2
		const moved = MaxKeys - keep - 1
		sep = t.keys[cb+keep] // moved up: separators live once
		copy(t.keys[rb:rb+moved], t.keys[cb+keep+1:cb+MaxKeys])
		ckb, rkb := int(child)*(MaxKeys+1), int(right)*(MaxKeys+1)
		copy(t.kids[rkb:rkb+moved+1], t.kids[ckb+keep+1:ckb+MaxKeys+1])
		t.model.Read(t.keyAddr(child, keep), (moved+1)*keyBytes)
		t.model.Write(t.keyAddr(right, 0), moved*keyBytes)
		t.model.Read(t.kidAddr(child, keep+1), (moved+1)*childBytes)
		t.model.Write(t.kidAddr(right, 0), (moved+1)*childBytes)
		t.meta[right].n = moved
		t.meta[child].n = keep
	}
	pb, pkb := int(parent)*MaxKeys, int(parent)*(MaxKeys+1)
	pn := int(t.meta[parent].n)
	copy(t.keys[pb+idx+1:pb+pn+1], t.keys[pb+idx:pb+pn])
	copy(t.kids[pkb+idx+2:pkb+pn+2], t.kids[pkb+idx+1:pkb+pn+1])
	t.keys[pb+idx] = sep
	t.kids[pkb+idx+1] = right
	t.meta[parent].n = int32(pn + 1)
	t.model.Write(t.keyAddr(parent, idx), uint64(pn-idx+1)*keyBytes)
	t.model.Write(t.kidAddr(parent, idx+1), uint64(pn-idx+2)*childBytes)
	t.writeMeta(parent)
	t.writeMeta(child)
	t.writeMeta(right)
	t.stats.Rotations++ // a split is a structural event, like a rotation
}

// Erase removes key and reports whether it was present. Deletion happens at
// a leaf; underflowing nodes borrow from or merge with a sibling, walking
// the recorded descent path back up.
func (t *Tree) Erase(key uint64) bool {
	if t.root == nilNode {
		t.stats.Observe(opstats.OpErase, 0)
		return false
	}
	t.pathID = t.pathID[:0]
	t.pathIdx = t.pathIdx[:0]
	id := t.root
	touched := uint64(0)
	for {
		t.readMeta(id)
		touched++
		isLeaf := t.meta[id].leaf
		t.model.Branch(siteLeaf, isLeaf)
		if isLeaf {
			break
		}
		idx := t.bsearch(id, key, true)
		t.model.Read(t.kidAddr(id, idx), childBytes)
		t.pathID = append(t.pathID, id)
		t.pathIdx = append(t.pathIdx, idx)
		id = t.kids[int(id)*(MaxKeys+1)+idx]
	}
	idx, found := t.leafSlot(id, key)
	if !found {
		t.stats.Observe(opstats.OpErase, touched)
		return false
	}
	base := int(id) * MaxKeys
	n := int(t.meta[id].n)
	copy(t.keys[base+idx:base+n-1], t.keys[base+idx+1:base+n])
	if idx < n-1 {
		t.model.Write(t.keyAddr(id, idx), uint64(n-1-idx)*keyBytes)
		if t.payload > 0 {
			t.model.Write(t.payAddr(id, idx), uint64(n-1-idx)*t.payload)
		}
	}
	t.meta[id].n = int32(n - 1)
	t.writeMeta(id)
	t.size--

	cur := id
	for level := len(t.pathID) - 1; level >= 0; level-- {
		under := int(t.meta[cur].n) < MinKeys
		t.model.Branch(siteUnder, under)
		if !under {
			break
		}
		parent := t.pathID[level]
		t.fixUnderflow(parent, t.pathIdx[level])
		cur = parent
	}
	// A root that shrank to a single child hands the tree down one level;
	// an emptied leaf root leaves the tree empty.
	if !t.meta[t.root].leaf && t.meta[t.root].n == 0 {
		old := t.root
		t.model.Read(t.kidAddr(old, 0), childBytes)
		t.root = t.kids[int(old)*(MaxKeys+1)]
		t.freeNode(old)
	} else if t.meta[t.root].leaf && t.size == 0 {
		t.freeNode(t.root)
		t.root = nilNode
		t.first = nilNode
	}
	t.stats.Observe(opstats.OpErase, touched)
	return true
}

// fixUnderflow repairs the i-th child of parent, which dropped below
// MinKeys: borrow from a rich adjacent sibling, or merge the pair.
func (t *Tree) fixUnderflow(parent int32, i int) {
	pk := int(parent) * (MaxKeys + 1)
	if i > 0 {
		left := t.kids[pk+i-1]
		t.readMeta(left)
		rich := int(t.meta[left].n) > MinKeys
		t.model.Branch(siteBorrow, rich)
		if rich {
			t.borrowFromLeft(parent, i, left, t.kids[pk+i])
			return
		}
		t.mergeInto(parent, i-1, left, t.kids[pk+i])
		return
	}
	right := t.kids[pk+i+1]
	t.readMeta(right)
	rich := int(t.meta[right].n) > MinKeys
	t.model.Branch(siteBorrow, rich)
	if rich {
		t.borrowFromRight(parent, i, t.kids[pk+i], right)
		return
	}
	t.mergeInto(parent, i, t.kids[pk+i], right)
}

// borrowFromLeft moves the left sibling's last element (or separator
// rotation, for internal nodes) into the front of node c.
func (t *Tree) borrowFromLeft(parent int32, i int, left, c int32) {
	pb := int(parent) * MaxKeys
	lb, cb := int(left)*MaxKeys, int(c)*MaxKeys
	ln, cn := int(t.meta[left].n), int(t.meta[c].n)
	copy(t.keys[cb+1:cb+cn+1], t.keys[cb:cb+cn])
	t.model.Write(t.keyAddr(c, 0), uint64(cn+1)*keyBytes)
	if t.meta[c].leaf {
		t.keys[cb] = t.keys[lb+ln-1]
		t.model.Read(t.keyAddr(left, ln-1), keyBytes)
		if t.payload > 0 {
			t.model.Read(t.payAddr(left, ln-1), t.payload)
			t.model.Write(t.payAddr(c, 0), uint64(cn+1)*t.payload)
		}
		t.keys[pb+i-1] = t.keys[cb] // separator tracks the new first key
		t.model.Write(t.keyAddr(parent, i-1), keyBytes)
	} else {
		// Rotate through the parent: c gains the separator, the parent
		// gains the left sibling's last key, c adopts its last child.
		ck, lk := int(c)*(MaxKeys+1), int(left)*(MaxKeys+1)
		copy(t.kids[ck+1:ck+cn+2], t.kids[ck:ck+cn+1])
		t.kids[ck] = t.kids[lk+ln]
		t.model.Read(t.kidAddr(left, ln), childBytes)
		t.model.Write(t.kidAddr(c, 0), uint64(cn+2)*childBytes)
		t.keys[cb] = t.keys[pb+i-1]
		t.model.Read(t.keyAddr(parent, i-1), keyBytes)
		t.keys[pb+i-1] = t.keys[lb+ln-1]
		t.model.Read(t.keyAddr(left, ln-1), keyBytes)
		t.model.Write(t.keyAddr(parent, i-1), keyBytes)
	}
	t.meta[left].n = int32(ln - 1)
	t.meta[c].n = int32(cn + 1)
	t.writeMeta(left)
	t.writeMeta(c)
	t.stats.Rotations++
}

// borrowFromRight moves the right sibling's first element (or separator
// rotation) onto the back of node c.
func (t *Tree) borrowFromRight(parent int32, i int, c, right int32) {
	pb := int(parent) * MaxKeys
	cb, rb := int(c)*MaxKeys, int(right)*MaxKeys
	cn, rn := int(t.meta[c].n), int(t.meta[right].n)
	if t.meta[c].leaf {
		t.keys[cb+cn] = t.keys[rb]
		t.model.Read(t.keyAddr(right, 0), keyBytes)
		t.model.Write(t.keyAddr(c, cn), keyBytes)
		copy(t.keys[rb:rb+rn-1], t.keys[rb+1:rb+rn])
		t.model.Write(t.keyAddr(right, 0), uint64(rn-1)*keyBytes)
		if t.payload > 0 {
			t.model.Read(t.payAddr(right, 0), t.payload)
			t.model.Write(t.payAddr(c, cn), t.payload)
			t.model.Write(t.payAddr(right, 0), uint64(rn-1)*t.payload)
		}
		t.keys[pb+i] = t.keys[rb] // separator tracks right's new first key
		t.model.Write(t.keyAddr(parent, i), keyBytes)
	} else {
		ck, rk := int(c)*(MaxKeys+1), int(right)*(MaxKeys+1)
		t.keys[cb+cn] = t.keys[pb+i]
		t.model.Read(t.keyAddr(parent, i), keyBytes)
		t.model.Write(t.keyAddr(c, cn), keyBytes)
		t.keys[pb+i] = t.keys[rb]
		t.model.Read(t.keyAddr(right, 0), keyBytes)
		t.model.Write(t.keyAddr(parent, i), keyBytes)
		t.kids[ck+cn+1] = t.kids[rk]
		t.model.Read(t.kidAddr(right, 0), childBytes)
		t.model.Write(t.kidAddr(c, cn+1), childBytes)
		copy(t.keys[rb:rb+rn-1], t.keys[rb+1:rb+rn])
		copy(t.kids[rk:rk+rn], t.kids[rk+1:rk+rn+1])
		t.model.Write(t.keyAddr(right, 0), uint64(rn-1)*keyBytes)
		t.model.Write(t.kidAddr(right, 0), uint64(rn)*childBytes)
	}
	t.meta[c].n = int32(cn + 1)
	t.meta[right].n = int32(rn - 1)
	t.writeMeta(c)
	t.writeMeta(right)
	t.stats.Rotations++
}

// mergeInto folds the (li+1)-th child of parent into the li-th (its left
// neighbor), pulling the separator down for internal nodes and dropping it
// for leaves, then closes the gap in the parent. The right node is freed
// for reuse.
func (t *Tree) mergeInto(parent int32, li int, left, right int32) {
	pb, pk := int(parent)*MaxKeys, int(parent)*(MaxKeys+1)
	lb, rb := int(left)*MaxKeys, int(right)*MaxKeys
	ln, rn := int(t.meta[left].n), int(t.meta[right].n)
	if t.meta[left].leaf {
		copy(t.keys[lb+ln:lb+ln+rn], t.keys[rb:rb+rn])
		t.model.Read(t.keyAddr(right, 0), uint64(rn)*keyBytes)
		t.model.Write(t.keyAddr(left, ln), uint64(rn)*keyBytes)
		if t.payload > 0 {
			t.model.Read(t.payAddr(right, 0), uint64(rn)*t.payload)
			t.model.Write(t.payAddr(left, ln), uint64(rn)*t.payload)
		}
		t.meta[left].next = t.meta[right].next
		t.meta[left].n = int32(ln + rn)
	} else {
		lk, rk := int(left)*(MaxKeys+1), int(right)*(MaxKeys+1)
		t.keys[lb+ln] = t.keys[pb+li] // separator comes back down
		t.model.Read(t.keyAddr(parent, li), keyBytes)
		copy(t.keys[lb+ln+1:lb+ln+1+rn], t.keys[rb:rb+rn])
		copy(t.kids[lk+ln+1:lk+ln+2+rn], t.kids[rk:rk+rn+1])
		t.model.Read(t.keyAddr(right, 0), uint64(rn)*keyBytes)
		t.model.Read(t.kidAddr(right, 0), uint64(rn+1)*childBytes)
		t.model.Write(t.keyAddr(left, ln), uint64(rn+1)*keyBytes)
		t.model.Write(t.kidAddr(left, ln+1), uint64(rn+1)*childBytes)
		t.meta[left].n = int32(ln + 1 + rn)
	}
	pn := int(t.meta[parent].n)
	copy(t.keys[pb+li:pb+pn-1], t.keys[pb+li+1:pb+pn])
	copy(t.kids[pk+li+1:pk+pn], t.kids[pk+li+2:pk+pn+1])
	if li < pn-1 {
		t.model.Write(t.keyAddr(parent, li), uint64(pn-1-li)*keyBytes)
		t.model.Write(t.kidAddr(parent, li+1), uint64(pn-1-li)*childBytes)
	}
	t.meta[parent].n = int32(pn - 1)
	t.writeMeta(parent)
	t.writeMeta(left)
	t.freeNode(right)
	t.stats.Rotations++
}

// Min returns the smallest key. The leftmost leaf is the cached iteration
// head, so this is one node touch — the begin() of a B+-tree.
func (t *Tree) Min() (uint64, bool) {
	if t.size == 0 {
		return 0, false
	}
	t.readMeta(t.first)
	t.model.Read(t.keyAddr(t.first, 0), keyBytes)
	return t.keys[int(t.first)*MaxKeys], true
}

// Max returns the largest key, descending the rightmost spine.
func (t *Tree) Max() (uint64, bool) {
	if t.size == 0 {
		return 0, false
	}
	id := t.root
	for {
		t.readMeta(id)
		if t.meta[id].leaf {
			break
		}
		n := int(t.meta[id].n)
		t.model.Read(t.kidAddr(id, n), childBytes)
		id = t.kids[int(id)*(MaxKeys+1)+n]
	}
	n := int(t.meta[id].n)
	t.model.Read(t.keyAddr(id, n-1), keyBytes)
	return t.keys[int(id)*MaxKeys+n-1], true
}

// Iterate visits up to n keys in ascending order, calling fn for each, and
// returns the number visited. n < 0 visits all keys. Each leaf is one span
// read over its packed key region — iteration streams cache lines instead
// of chasing pointers.
func (t *Tree) Iterate(n int, fn func(uint64)) int {
	if n < 0 || n > t.size {
		n = t.size
	}
	visited := 0
	for id := t.first; id != nilNode && visited < n; id = t.meta[id].next {
		t.readMeta(id)
		cnt := int(t.meta[id].n)
		if cnt > n-visited {
			cnt = n - visited
		}
		t.model.Read(t.keyAddr(id, 0), uint64(cnt)*keyBytes)
		if t.payload > 0 {
			t.model.Read(t.payAddr(id, 0), uint64(cnt)*t.payload)
		}
		base := int(id) * MaxKeys
		for i := 0; i < cnt; i++ {
			if fn != nil {
				fn(t.keys[base+i])
			}
		}
		visited += cnt
	}
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}

// Clear removes everything and releases the arena back to the model; the
// tree is reusable afterwards.
func (t *Tree) Clear() {
	t.arena.Release()
	t.meta = t.meta[:0]
	t.keys = t.keys[:0]
	t.kids = t.kids[:0]
	t.freeIDs = t.freeIDs[:0]
	t.root = nilNode
	t.first = nilNode
	t.size = 0
	t.stats.Observe(opstats.OpClear, 1)
}

// Keys returns all keys in ascending order without emitting model events.
// Intended for tests.
func (t *Tree) Keys() []uint64 {
	out := make([]uint64, 0, t.size)
	for id := t.first; id != nilNode; id = t.meta[id].next {
		base := int(id) * MaxKeys
		out = append(out, t.keys[base:base+int(t.meta[id].n)]...)
	}
	return out
}

// CheckInvariants verifies structural soundness — separator bounds, node
// occupancy, uniform leaf depth, leaf-chain consistency, and size
// bookkeeping — returning a descriptive violation or "" when valid.
func (t *Tree) CheckInvariants() string {
	if t.root == nilNode {
		if t.size != 0 {
			return "nil root with nonzero size"
		}
		if t.first != nilNode {
			return "nil root with a leaf chain head"
		}
		return ""
	}
	var leaves []int32
	count := 0
	var walk func(id int32, lo, hi uint64, hasLo, hasHi bool, depth int) (int, string)
	leafDepth := -1
	var walkErr string
	walk = func(id int32, lo, hi uint64, hasLo, hasHi bool, depth int) (int, string) {
		m := t.meta[id]
		n := int(m.n)
		if id != t.root && n < MinKeys {
			return 0, "non-root node below MinKeys"
		}
		if n > MaxKeys {
			return 0, "node above MaxKeys"
		}
		base := int(id) * MaxKeys
		for i := 0; i < n; i++ {
			k := t.keys[base+i]
			if i > 0 && t.keys[base+i-1] >= k {
				return 0, "keys not strictly ascending"
			}
			if hasLo && k < lo {
				return 0, "key below subtree lower bound"
			}
			if hasHi && k >= hi {
				return 0, "key at or above subtree upper bound"
			}
		}
		if m.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return 0, "leaves at different depths"
			}
			if id != t.root && n == 0 {
				return 0, "empty non-root leaf"
			}
			leaves = append(leaves, id)
			return n, ""
		}
		if n == 0 && id != t.root {
			return 0, "empty internal node"
		}
		total := 0
		kb := int(id) * (MaxKeys + 1)
		for i := 0; i <= n; i++ {
			clo, chi := lo, hi
			cHasLo, cHasHi := hasLo, hasHi
			if i > 0 {
				clo, cHasLo = t.keys[base+i-1], true
			}
			if i < n {
				chi, cHasHi = t.keys[base+i], true
			}
			sub, err := walk(t.kids[kb+i], clo, chi, cHasLo, cHasHi, depth+1)
			if err != "" {
				return 0, err
			}
			total += sub
		}
		return total, ""
	}
	count, walkErr = walk(t.root, 0, 0, false, false, 0)
	if walkErr != "" {
		return walkErr
	}
	if count != t.size {
		return "size mismatch"
	}
	// The leaf chain must visit exactly the in-order leaves.
	chain := []int32{}
	for id := t.first; id != nilNode; id = t.meta[id].next {
		chain = append(chain, id)
		if len(chain) > len(leaves)+1 {
			return "leaf chain longer than leaf count (cycle?)"
		}
	}
	if len(chain) != len(leaves) {
		return "leaf chain length mismatch"
	}
	for i := range chain {
		if chain[i] != leaves[i] {
			return "leaf chain out of order"
		}
	}
	return ""
}
