package flatbtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/mem"
)

func checkAgainstSorted(t *testing.T, tr *Tree, want []uint64) {
	t.Helper()
	if tr.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(want))
	}
	got := tr.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestInsertFindEraseSmall(t *testing.T) {
	tr := New(nil, 8)
	if tr.Contains(1) {
		t.Fatal("empty tree contains 1")
	}
	if !tr.Insert(5) || !tr.Insert(3) || !tr.Insert(9) {
		t.Fatal("fresh inserts reported duplicate")
	}
	if tr.Insert(5) {
		t.Fatal("duplicate insert reported fresh")
	}
	checkAgainstSorted(t, tr, []uint64{3, 5, 9})
	if !tr.Contains(3) || !tr.Contains(5) || !tr.Contains(9) || tr.Contains(4) {
		t.Fatal("membership wrong")
	}
	if !tr.Erase(5) || tr.Erase(5) {
		t.Fatal("erase wrong")
	}
	checkAgainstSorted(t, tr, []uint64{3, 9})
}

func TestSplitsAndDeepTree(t *testing.T) {
	tr := New(nil, 8)
	const n = 10000
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, v := range perm {
		tr.Insert(uint64(v))
	}
	want := make([]uint64, n)
	for i := range want {
		want[i] = uint64(i)
	}
	checkAgainstSorted(t, tr, want)
	if tr.Stats().Rotations == 0 {
		t.Fatal("no splits recorded over 10000 inserts")
	}
	mn, ok := tr.Min()
	if !ok || mn != 0 {
		t.Fatalf("Min = %d,%v", mn, ok)
	}
	mx, ok := tr.Max()
	if !ok || mx != n-1 {
		t.Fatalf("Max = %d,%v", mx, ok)
	}
}

func TestEraseRebalances(t *testing.T) {
	for _, order := range []string{"ascending", "descending", "shuffled"} {
		t.Run(order, func(t *testing.T) {
			tr := New(nil, 8)
			const n = 3000
			for i := 0; i < n; i++ {
				tr.Insert(uint64(i))
			}
			victims := make([]int, n)
			for i := range victims {
				victims[i] = i
			}
			switch order {
			case "descending":
				sort.Sort(sort.Reverse(sort.IntSlice(victims)))
			case "shuffled":
				rand.New(rand.NewSource(7)).Shuffle(n, func(i, j int) {
					victims[i], victims[j] = victims[j], victims[i]
				})
			}
			alive := make(map[uint64]bool, n)
			for i := 0; i < n; i++ {
				alive[uint64(i)] = true
			}
			for i, v := range victims {
				if !tr.Erase(uint64(v)) {
					t.Fatalf("erase %d failed", v)
				}
				delete(alive, uint64(v))
				if i%251 == 0 {
					if msg := tr.CheckInvariants(); msg != "" {
						t.Fatalf("after %d erases: %s", i+1, msg)
					}
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("tree not empty: %d", tr.Len())
			}
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("empty-tree invariant: %s", msg)
			}
			// The tree must be fully usable after draining.
			tr.Insert(42)
			if !tr.Contains(42) || tr.Len() != 1 {
				t.Fatal("tree unusable after drain")
			}
		})
	}
}

func TestIterate(t *testing.T) {
	tr := New(nil, 8)
	var want uint64
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(i) * 3)
		want += uint64(i) * 3
	}
	var sum uint64
	if got := tr.Iterate(-1, func(k uint64) { sum += k }); got != 500 {
		t.Fatalf("Iterate(-1) visited %d", got)
	}
	if sum != want {
		t.Fatalf("iterate sum %d, want %d", sum, want)
	}
	// Partial iteration visits the n smallest keys in order.
	var first []uint64
	tr.Iterate(30, func(k uint64) { first = append(first, k) })
	for i, k := range first {
		if k != uint64(i)*3 {
			t.Fatalf("partial iterate [%d] = %d", i, k)
		}
	}
}

func TestClearAndReuse(t *testing.T) {
	m := mem.NewCounting()
	tr := New(m, 8)
	for i := 0; i < 2000; i++ {
		tr.Insert(uint64(i))
	}
	if tr.ArenaBytes() == 0 {
		t.Fatal("arena reserved nothing")
	}
	tr.Clear()
	if m.Live != 0 {
		t.Fatalf("simulated bytes leaked after Clear: %d", m.Live)
	}
	if tr.Len() != 0 || tr.ArenaBytes() != 0 {
		t.Fatalf("Clear left len=%d arena=%d", tr.Len(), tr.ArenaBytes())
	}
	tr.Insert(7)
	if !tr.Contains(7) {
		t.Fatal("tree unusable after Clear")
	}
}

func TestArenaAmortization(t *testing.T) {
	m := mem.NewCounting()
	tr := New(m, 8)
	for i := 0; i < 50000; i++ {
		tr.Insert(uint64(i))
	}
	// ~2700 nodes at 208 bytes each: without the arena that is thousands
	// of model allocations; with it, a few dozen chunk reservations.
	if m.Allocs > 100 {
		t.Fatalf("model saw %d allocations; arena chunking broken", m.Allocs)
	}
}

func TestPayloadAddressesStayInsideLeaves(t *testing.T) {
	// elemSize > 8 switches on the payload region; the simulated traffic
	// must stay within allocated arena bytes (Counting can't check ranges,
	// but invariants + membership prove the Go-side layout survives).
	tr := New(mem.NewCounting(), 64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		tr.Insert(uint64(rng.Intn(2000)))
		if rng.Intn(3) == 0 {
			tr.Erase(uint64(rng.Intn(2000)))
		}
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestDifferentialRandomOps drives the tree and a reference map through a
// long random op sequence, checking full agreement.
func TestDifferentialRandomOps(t *testing.T) {
	tr := New(nil, 8)
	ref := map[uint64]bool{}
	rng := rand.New(rand.NewSource(42))
	const space = 700
	for i := 0; i < 60000; i++ {
		k := uint64(rng.Intn(space))
		switch rng.Intn(4) {
		case 0, 1:
			got := tr.Insert(k)
			want := !ref[k]
			if got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			ref[k] = true
		case 2:
			got := tr.Erase(k)
			if got != ref[k] {
				t.Fatalf("op %d: Erase(%d) = %v, want %v", i, k, got, ref[k])
			}
			delete(ref, k)
		case 3:
			if got := tr.Contains(k); got != ref[k] {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, ref[k])
			}
		}
		if i%4999 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("op %d: %s", i, msg)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("op %d: len %d vs ref %d", i, tr.Len(), len(ref))
			}
		}
	}
	want := make([]uint64, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	checkAgainstSorted(t, tr, want)
}
