package flatbtree

import (
	"testing"

	"repro/internal/containers/rbtree"
)

// FuzzFlatBTree drives the flat B+-tree and the red-black tree through the
// same operation sequence and requires identical answers: membership,
// length, and — both iterate in sorted order — the full key sequence.
func FuzzFlatBTree(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1, 3, 1})
	f.Add([]byte{0, 10, 0, 20, 0, 30, 2, 20, 0, 25, 2, 10, 2, 30, 2, 25})
	f.Fuzz(func(t *testing.T, data []byte) {
		flat := New(nil, 8)
		ref := rbtree.New[uint64, struct{}](nil, 8)
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 4
			key := uint64(data[i+1] % 96)
			switch op {
			case 0:
				flat.Insert(key)
				ref.Insert(key, struct{}{})
			case 1:
				if got, want := flat.Contains(key), ref.Contains(key); got != want {
					t.Fatalf("op %d: Contains(%d) = %v, rbtree says %v", i/2, key, got, want)
				}
			case 2:
				if got, want := flat.Erase(key), ref.Erase(key); got != want {
					t.Fatalf("op %d: Erase(%d) = %v, rbtree says %v", i/2, key, got, want)
				}
			case 3:
				if got, want := flat.Len(), ref.Len(); got != want {
					t.Fatalf("op %d: Len = %d, rbtree says %d", i/2, got, want)
				}
			}
		}
		if msg := flat.CheckInvariants(); msg != "" {
			t.Fatalf("invariant violated: %s", msg)
		}
		got, want := flat.Keys(), ref.Keys()
		if len(got) != len(want) {
			t.Fatalf("key count %d vs rbtree %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sorted order diverges at %d: %d vs %d", i, got[i], want[i])
			}
		}
	})
}
