package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildTree(keys []int) *Tree[int, int] {
	t := New[int, int](nil, 16)
	for _, k := range keys {
		t.Insert(k, k*10)
	}
	return t
}

func TestMax(t *testing.T) {
	tr := New[int, int](nil, 16)
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	tr = buildTree([]int{5, 1, 9, 3})
	if k, ok := tr.Max(); !ok || k != 9 {
		t.Fatalf("Max = %d,%v", k, ok)
	}
}

func TestFloorCeil(t *testing.T) {
	tr := buildTree([]int{10, 20, 30})
	cases := []struct {
		q       int
		floorK  int
		floorOK bool
		ceilK   int
		ceilOK  bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{25, 20, true, 30, true},
		{30, 30, true, 30, true},
		{35, 30, true, 0, false},
	}
	for _, c := range cases {
		k, v, ok := tr.Floor(c.q)
		if ok != c.floorOK || (ok && (k != c.floorK || v != c.floorK*10)) {
			t.Fatalf("Floor(%d) = %d,%d,%v", c.q, k, v, ok)
		}
		k, _, ok = tr.Ceil(c.q)
		if ok != c.ceilOK || (ok && k != c.ceilK) {
			t.Fatalf("Ceil(%d) = %d,%v", c.q, k, ok)
		}
	}
}

func TestRangeInclusive(t *testing.T) {
	tr := buildTree([]int{1, 3, 5, 7, 9, 11})
	var got []int
	n := tr.Range(3, 9, func(k, _ int) { got = append(got, k) })
	want := []int{3, 5, 7, 9}
	if n != len(want) {
		t.Fatalf("Range visited %d, want %d", n, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range got %v", got)
		}
	}
	if tr.Range(9, 3, nil) != 0 {
		t.Fatal("inverted range visited keys")
	}
	if tr.Range(100, 200, nil) != 0 {
		t.Fatal("out-of-range visited keys")
	}
}

func TestQuickFloorCeilAgainstSort(t *testing.T) {
	f := func(keys []int16, q int16) bool {
		tr := New[int16, struct{}](nil, 8)
		uniq := map[int16]bool{}
		for _, k := range keys {
			tr.Insert(k, struct{}{})
			uniq[k] = true
		}
		sorted := make([]int16, 0, len(uniq))
		for k := range uniq {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		var wantFloor int16
		floorOK := false
		for _, k := range sorted {
			if k <= q {
				wantFloor, floorOK = k, true
			}
		}
		gotK, _, gotOK := tr.Floor(q)
		if gotOK != floorOK || (gotOK && gotK != wantFloor) {
			return false
		}

		var wantCeil int16
		ceilOK := false
		for i := len(sorted) - 1; i >= 0; i-- {
			if sorted[i] >= q {
				wantCeil, ceilOK = sorted[i], true
			}
		}
		gotK, _, gotOK = tr.Ceil(q)
		return gotOK == ceilOK && (!gotOK || gotK == wantCeil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangePrunesTraversal(t *testing.T) {
	// A narrow range over a large tree must touch far fewer nodes than a
	// full iteration: verify via the counting memory model cost.
	tr := New[int, int](nil, 16)
	rng := rand.New(rand.NewSource(8))
	for _, k := range rng.Perm(1 << 12) {
		tr.Insert(k, k)
	}
	st := tr.Stats()
	st.Reset()
	n := tr.Range(100, 110, nil)
	if n != 11 {
		t.Fatalf("visited %d, want 11", n)
	}
}
