// Package rbtree implements a red-black tree with unique keys, the analog of
// std::set / std::map in libstdc++. Lookup, insertion, and removal descend
// from the root, paying one node read and one data-dependent comparison
// branch per level — the pointer-chasing, mispredict-prone behaviour that
// makes trees lose to hash tables and even to linear vector scans at small
// sizes on real microarchitectures, which is exactly what Brainy's models
// must learn.
package rbtree

import (
	"cmp"

	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside red-black tree code.
const (
	siteCmpLess mem.BranchSite = 0x400 // key < node.key during descent
	siteCmpEq   mem.BranchSite = 0x401 // key == node.key (search hit)
	siteFixup   mem.BranchSite = 0x402 // rebalancing-loop condition
)

type color bool

const (
	red   color = false
	black color = true
)

const nodeOverhead = 32 // 3 pointers + color word in the simulated layout

type node[K cmp.Ordered, V any] struct {
	left, right, parent *node[K, V]
	col                 color
	addr                mem.Addr
	key                 K
	val                 V
}

// Tree is a red-black tree mapping K to V with unique keys.
// Construct with New. Use V = struct{} for set semantics.
type Tree[K cmp.Ordered, V any] struct {
	root      *node[K, V]
	nilNode   *node[K, V] // CLRS sentinel: black, shared leaf/parent-of-root
	size      int
	model     mem.Model
	elemSize  uint64
	nodeBytes uint64
	stats     opstats.Stats
}

// New returns an empty tree bound to the given memory model. elemSize is
// the simulated key+value payload size in bytes. A nil model defaults to
// mem.Nop.
func New[K cmp.Ordered, V any](model mem.Model, elemSize uint64) *Tree[K, V] {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	t := &Tree[K, V]{model: model, elemSize: elemSize, nodeBytes: elemSize + nodeOverhead}
	t.nilNode = &node[K, V]{col: black}
	t.nilNode.left = t.nilNode
	t.nilNode.right = t.nilNode
	t.nilNode.parent = t.nilNode
	t.root = t.nilNode
	return t
}

// Stats exposes the container's accumulated software features.
func (t *Tree[K, V]) Stats() *opstats.Stats {
	t.stats.ElemSize = t.elemSize
	return &t.stats
}

// Len returns the number of keys.
func (t *Tree[K, V]) Len() int { return t.size }

func (t *Tree[K, V]) touch(n *node[K, V]) {
	if n != t.nilNode {
		t.model.Read(n.addr, t.nodeBytes)
	}
}

func (t *Tree[K, V]) writeNode(n *node[K, V]) {
	if n != t.nilNode {
		t.model.Write(n.addr, t.nodeBytes)
	}
}

// lookup descends to the node holding key, or to the would-be parent.
// It returns (node-or-nil, parent, nodes touched).
func (t *Tree[K, V]) lookup(key K) (n, parent *node[K, V], touched uint64) {
	parent = t.nilNode
	n = t.root
	for n != t.nilNode {
		touched++
		t.touch(n)
		eq := key == n.key
		t.model.Branch(siteCmpEq, eq)
		if eq {
			return n, parent, touched
		}
		less := key < n.key
		t.model.Branch(siteCmpLess, less)
		parent = n
		if less {
			n = n.left
		} else {
			n = n.right
		}
	}
	return t.nilNode, parent, touched
}

// Find returns the value stored under key.
func (t *Tree[K, V]) Find(key K) (V, bool) {
	n, _, touched := t.lookup(key)
	t.stats.Observe(opstats.OpFind, touched)
	if n == t.nilNode {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Find(key)
	return ok
}

// Insert adds key→val; it returns false (and overwrites the value) when the
// key was already present.
func (t *Tree[K, V]) Insert(key K, val V) bool {
	n, parent, touched := t.lookup(key)
	if n != t.nilNode {
		t.writeNode(n)
		n.val = val
		t.stats.Observe(opstats.OpInsert, touched)
		return false
	}
	z := &node[K, V]{left: t.nilNode, right: t.nilNode, parent: parent, key: key, val: val}
	z.addr = t.model.Alloc(t.nodeBytes, 8)
	t.writeNode(z)
	if parent == t.nilNode {
		t.root = z
	} else {
		t.writeNode(parent)
		if key < parent.key {
			parent.left = z
		} else {
			parent.right = z
		}
	}
	t.insertFixup(z)
	t.size++
	t.stats.Observe(opstats.OpInsert, touched+1)
	t.stats.NoteLen(t.size)
	return true
}

func (t *Tree[K, V]) rotateLeft(x *node[K, V]) {
	y := x.right
	t.touch(y)
	x.right = y.left
	if y.left != t.nilNode {
		t.writeNode(y.left)
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nilNode:
		t.root = y
	case x == x.parent.left:
		t.writeNode(x.parent)
		x.parent.left = y
	default:
		t.writeNode(x.parent)
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	t.writeNode(x)
	t.writeNode(y)
	t.stats.Rotations++
}

func (t *Tree[K, V]) rotateRight(x *node[K, V]) {
	y := x.left
	t.touch(y)
	x.left = y.right
	if y.right != t.nilNode {
		t.writeNode(y.right)
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nilNode:
		t.root = y
	case x == x.parent.right:
		t.writeNode(x.parent)
		x.parent.right = y
	default:
		t.writeNode(x.parent)
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	t.writeNode(x)
	t.writeNode(y)
	t.stats.Rotations++
}

func (t *Tree[K, V]) insertFixup(z *node[K, V]) {
	for {
		violating := z.parent.col == red
		t.model.Branch(siteFixup, violating)
		if !violating {
			break
		}
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right // uncle
			t.touch(y)
			if y.col == red {
				z.parent.col = black
				y.col = black
				z.parent.parent.col = red
				t.writeNode(z.parent)
				t.writeNode(y)
				t.writeNode(z.parent.parent)
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.col = black
				z.parent.parent.col = red
				t.writeNode(z.parent)
				t.writeNode(z.parent.parent)
				t.rotateRight(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			t.touch(y)
			if y.col == red {
				z.parent.col = black
				y.col = black
				z.parent.parent.col = red
				t.writeNode(z.parent)
				t.writeNode(y)
				t.writeNode(z.parent.parent)
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.col = black
				z.parent.parent.col = red
				t.writeNode(z.parent)
				t.writeNode(z.parent.parent)
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	if t.root.col != black {
		t.root.col = black
		t.writeNode(t.root)
	}
}

func (t *Tree[K, V]) minimum(n *node[K, V]) *node[K, V] {
	for n.left != t.nilNode {
		t.touch(n)
		n = n.left
	}
	return n
}

func (t *Tree[K, V]) transplant(u, v *node[K, V]) {
	switch {
	case u.parent == t.nilNode:
		t.root = v
	case u == u.parent.left:
		t.writeNode(u.parent)
		u.parent.left = v
	default:
		t.writeNode(u.parent)
		u.parent.right = v
	}
	v.parent = u.parent // sentinel's parent is used by deleteFixup
}

// Erase removes key and reports whether it was present.
func (t *Tree[K, V]) Erase(key K) bool {
	z, _, touched := t.lookup(key)
	if z == t.nilNode {
		t.stats.Observe(opstats.OpErase, touched)
		return false
	}
	y := z
	yOrigColor := y.col
	var x *node[K, V]
	switch {
	case z.left == t.nilNode:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nilNode:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		touched++
		t.touch(y)
		yOrigColor = y.col
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
			t.writeNode(y.right)
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.col = z.col
		t.writeNode(y)
		t.writeNode(y.left)
	}
	t.model.Free(z.addr, t.nodeBytes)
	if yOrigColor == black {
		t.deleteFixup(x)
	}
	t.size--
	t.stats.Observe(opstats.OpErase, touched+1)
	return true
}

func (t *Tree[K, V]) deleteFixup(x *node[K, V]) {
	for {
		looping := x != t.root && x.col == black
		t.model.Branch(siteFixup, looping)
		if !looping {
			break
		}
		if x == x.parent.left {
			w := x.parent.right
			t.touch(w)
			if w.col == red {
				w.col = black
				x.parent.col = red
				t.writeNode(w)
				t.writeNode(x.parent)
				t.rotateLeft(x.parent)
				w = x.parent.right
				t.touch(w)
			}
			if w.left.col == black && w.right.col == black {
				w.col = red
				t.writeNode(w)
				x = x.parent
			} else {
				if w.right.col == black {
					w.left.col = black
					w.col = red
					t.writeNode(w.left)
					t.writeNode(w)
					t.rotateRight(w)
					w = x.parent.right
					t.touch(w)
				}
				w.col = x.parent.col
				x.parent.col = black
				w.right.col = black
				t.writeNode(w)
				t.writeNode(x.parent)
				t.writeNode(w.right)
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			t.touch(w)
			if w.col == red {
				w.col = black
				x.parent.col = red
				t.writeNode(w)
				t.writeNode(x.parent)
				t.rotateRight(x.parent)
				w = x.parent.left
				t.touch(w)
			}
			if w.right.col == black && w.left.col == black {
				w.col = red
				t.writeNode(w)
				x = x.parent
			} else {
				if w.left.col == black {
					w.right.col = black
					w.col = red
					t.writeNode(w.right)
					t.writeNode(w)
					t.rotateLeft(w)
					w = x.parent.left
					t.touch(w)
				}
				w.col = x.parent.col
				x.parent.col = black
				w.left.col = black
				t.writeNode(w)
				t.writeNode(x.parent)
				t.writeNode(w.left)
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	if x.col != black {
		x.col = black
		t.writeNode(x)
	}
}

// successor returns the in-order successor of n, touching walked nodes.
func (t *Tree[K, V]) successor(n *node[K, V]) *node[K, V] {
	if n.right != t.nilNode {
		m := n.right
		t.touch(m)
		for m.left != t.nilNode {
			m = m.left
			t.touch(m)
		}
		return m
	}
	p := n.parent
	for p != t.nilNode && n == p.right {
		t.touch(p)
		n = p
		p = p.parent
	}
	return p
}

// Iterate visits up to n keys in sorted order, calling fn for each, and
// returns the number visited. n < 0 visits all keys. Note that iteration
// over a tree yields the *sorted* sequence, the order-obliviousness caveat
// of Table 1.
func (t *Tree[K, V]) Iterate(n int, fn func(K, V)) int {
	if n < 0 || n > t.size {
		n = t.size
	}
	visited := 0
	if t.root == t.nilNode {
		t.stats.Observe(opstats.OpIterate, 0)
		return 0
	}
	cur := t.minimum(t.root)
	for cur != t.nilNode && visited < n {
		t.touch(cur)
		if fn != nil {
			fn(cur.key, cur.val)
		}
		visited++
		cur = t.successor(cur)
	}
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}

// Min returns the smallest key; ok is false when empty.
func (t *Tree[K, V]) Min() (k K, ok bool) {
	if t.root == t.nilNode {
		return k, false
	}
	n := t.minimum(t.root)
	t.touch(n)
	return n.key, true
}

// Clear removes all keys, freeing every node.
func (t *Tree[K, V]) Clear() {
	t.freeAll(t.root)
	t.root = t.nilNode
	t.size = 0
	t.stats.Observe(opstats.OpClear, 1)
}

func (t *Tree[K, V]) freeAll(n *node[K, V]) {
	if n == t.nilNode {
		return
	}
	t.freeAll(n.left)
	t.freeAll(n.right)
	t.model.Free(n.addr, t.nodeBytes)
}

// Keys returns all keys in sorted order. Intended for tests.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == t.nilNode {
			return
		}
		walk(n.left)
		out = append(out, n.key)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// CheckInvariants verifies the red-black properties and the BST ordering,
// returning a descriptive violation or "" when the tree is valid. It is
// exported for property-based tests and performs no event accounting.
func (t *Tree[K, V]) CheckInvariants() string {
	if t.root.col != black {
		return "root is not black"
	}
	type res struct {
		blackHeight int
		bad         string
	}
	var check func(n *node[K, V]) res
	check = func(n *node[K, V]) res {
		if n == t.nilNode {
			return res{blackHeight: 1}
		}
		if n.col == red && (n.left.col == red || n.right.col == red) {
			return res{bad: "red node with red child"}
		}
		if n.left != t.nilNode && !(n.left.key < n.key) {
			return res{bad: "left child key not smaller"}
		}
		if n.right != t.nilNode && !(n.key < n.right.key) {
			return res{bad: "right child key not larger"}
		}
		l := check(n.left)
		if l.bad != "" {
			return l
		}
		r := check(n.right)
		if r.bad != "" {
			return r
		}
		if l.blackHeight != r.blackHeight {
			return res{bad: "black-height mismatch"}
		}
		bh := l.blackHeight
		if n.col == black {
			bh++
		}
		return res{blackHeight: bh}
	}
	if out := check(t.root); out.bad != "" {
		return out.bad
	}
	if got := len(t.Keys()); got != t.size {
		return "size mismatch"
	}
	return ""
}
