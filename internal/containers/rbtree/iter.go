package rbtree

import "cmp"

// Iter is an in-order iterator over a tree. Invalidated by any mutation.
type Iter[K cmp.Ordered, V any] struct {
	t   *Tree[K, V]
	cur *node[K, V]
}

// Begin returns an iterator at the smallest key.
func (t *Tree[K, V]) Begin() Iter[K, V] {
	it := Iter[K, V]{t: t, cur: t.nilNode}
	if t.root != t.nilNode {
		it.cur = t.minimum(t.root)
	}
	return it
}

// Next returns the current entry and advances in key order; ok is false
// past the end. Advancing walks parent/child links like an STL tree
// iterator's ++.
func (it *Iter[K, V]) Next() (k K, v V, ok bool) {
	if it.t == nil || it.cur == nil || it.cur == it.t.nilNode {
		return k, v, false
	}
	it.t.touch(it.cur)
	k, v = it.cur.key, it.cur.val
	it.cur = it.t.successor(it.cur)
	return k, v, true
}
