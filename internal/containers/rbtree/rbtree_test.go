package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/opstats"
)

func TestInsertFindErase(t *testing.T) {
	tr := New[int, string](nil, 16)
	if !tr.Insert(5, "five") {
		t.Fatal("first insert returned false")
	}
	if tr.Insert(5, "FIVE") {
		t.Fatal("duplicate insert returned true")
	}
	v, ok := tr.Find(5)
	if !ok || v != "FIVE" {
		t.Fatalf("Find(5) = %q,%v (duplicate insert must overwrite)", v, ok)
	}
	if _, ok := tr.Find(6); ok {
		t.Fatal("Find(6) found missing key")
	}
	if !tr.Erase(5) {
		t.Fatal("Erase(5) failed")
	}
	if tr.Erase(5) {
		t.Fatal("double erase succeeded")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSortedIteration(t *testing.T) {
	tr := New[int, struct{}](nil, 8)
	keys := []int{5, 3, 8, 1, 4, 7, 9, 2, 6, 0}
	for _, k := range keys {
		tr.Insert(k, struct{}{})
	}
	var got []int
	tr.Iterate(-1, func(k int, _ struct{}) { got = append(got, k) })
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("iteration order %v", got)
		}
	}
	// Partial iteration visits the smallest n keys.
	got = got[:0]
	tr.Iterate(3, func(k int, _ struct{}) { got = append(got, k) })
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("partial iteration %v", got)
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int, int](nil, 16)
	present := map[int]bool{}
	for step := 0; step < 20000; step++ {
		k := rng.Intn(2000)
		if rng.Intn(3) != 0 {
			added := tr.Insert(k, k)
			if added == present[k] {
				t.Fatalf("step %d: Insert(%d) added=%v but present=%v", step, k, added, present[k])
			}
			present[k] = true
		} else {
			removed := tr.Erase(k)
			if removed != present[k] {
				t.Fatalf("step %d: Erase(%d) removed=%v but present=%v", step, k, removed, present[k])
			}
			delete(present, k)
		}
		if step%500 == 0 {
			if bad := tr.CheckInvariants(); bad != "" {
				t.Fatalf("step %d: %s", step, bad)
			}
		}
	}
	if bad := tr.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
	if tr.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(present))
	}
}

func TestQuickSortedKeys(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New[int16, struct{}](nil, 8)
		uniq := map[int16]bool{}
		for _, k := range keys {
			tr.Insert(k, struct{}{})
			uniq[k] = true
		}
		got := tr.Keys()
		if len(got) != len(uniq) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		return tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEraseAllLeavesEmpty(t *testing.T) {
	f := func(keys []uint8) bool {
		tr := New[uint8, int](nil, 8)
		for _, k := range keys {
			tr.Insert(k, int(k))
		}
		for _, k := range keys {
			tr.Erase(k)
		}
		return tr.Len() == 0 && tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFindCostIsLogarithmic(t *testing.T) {
	tr := New[int, int](nil, 16)
	n := 1 << 14
	for i := 0; i < n; i++ {
		tr.Insert(i, i)
	}
	st := tr.Stats()
	st.Reset()
	probes := 1000
	for i := 0; i < probes; i++ {
		tr.Find(i * 16)
	}
	avg := float64(st.Cost[opstats.OpFind]) / float64(probes)
	// log2(16384) = 14; a red-black tree path is at most 2*log2(n+1) ~ 28.
	if avg < 5 || avg > 30 {
		t.Fatalf("average find cost %.1f outside logarithmic range", avg)
	}
}

func TestMinAndClear(t *testing.T) {
	tr := New[int, int](nil, 16)
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	for _, k := range []int{9, 2, 7, 4} {
		tr.Insert(k, k)
	}
	if k, ok := tr.Min(); !ok || k != 2 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
	tr.Clear()
	if tr.Len() != 0 || len(tr.Keys()) != 0 {
		t.Fatal("Clear left keys")
	}
}

func TestMemoryLifecycle(t *testing.T) {
	cm := mem.NewCounting()
	tr := New[uint64, uint64](cm, 16)
	for i := uint64(0); i < 500; i++ {
		tr.Insert(i*7%500, i)
	}
	for i := uint64(0); i < 500; i++ {
		tr.Erase(i)
	}
	if cm.Live != 0 {
		t.Fatalf("leaked %d simulated bytes", cm.Live)
	}
}

func TestDescentEmitsBranches(t *testing.T) {
	cm := mem.NewCounting()
	tr := New[uint64, uint64](cm, 16)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	before := cm.Branches()
	tr.Find(50)
	if cm.Branches() == before {
		t.Fatal("Find emitted no comparison branches")
	}
}
