package rbtree_test

import (
	"fmt"

	"repro/internal/containers/rbtree"
)

func Example() {
	// A red-black map from int to string, unattached to any simulated
	// machine (nil model): plain library use.
	t := rbtree.New[int, string](nil, 16)
	t.Insert(3, "three")
	t.Insert(1, "one")
	t.Insert(2, "two")
	if v, ok := t.Find(2); ok {
		fmt.Println("found:", v)
	}
	t.Iterate(-1, func(k int, v string) { fmt.Println(k, v) })
	// Output:
	// found: two
	// 1 one
	// 2 two
	// 3 three
}

func ExampleTree_Range() {
	t := rbtree.New[int, struct{}](nil, 8)
	for _, k := range []int{10, 40, 20, 30, 50} {
		t.Insert(k, struct{}{})
	}
	t.Range(20, 40, func(k int, _ struct{}) { fmt.Println(k) })
	// Output:
	// 20
	// 30
	// 40
}

func ExampleTree_Floor() {
	t := rbtree.New[int, string](nil, 16)
	t.Insert(10, "ten")
	t.Insert(20, "twenty")
	k, v, _ := t.Floor(15)
	fmt.Println(k, v)
	// Output:
	// 10 ten
}
