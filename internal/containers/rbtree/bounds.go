package rbtree

import "repro/internal/opstats"

// Max returns the largest key; ok is false when empty.
func (t *Tree[K, V]) Max() (k K, ok bool) {
	n := t.root
	if n == t.nilNode {
		return k, false
	}
	for n.right != t.nilNode {
		t.touch(n)
		n = n.right
	}
	t.touch(n)
	return n.key, true
}

// Floor returns the greatest key <= key; ok is false when no such key
// exists. It descends once from the root, like std::map::upper_bound
// followed by a decrement.
func (t *Tree[K, V]) Floor(key K) (k K, v V, ok bool) {
	touched := uint64(0)
	n := t.root
	var best *node[K, V]
	for n != t.nilNode {
		touched++
		t.touch(n)
		if n.key == key {
			t.stats.Observe(opstats.OpFind, touched)
			return n.key, n.val, true
		}
		if n.key < key {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	t.stats.Observe(opstats.OpFind, touched)
	if best == nil {
		return k, v, false
	}
	return best.key, best.val, true
}

// Ceil returns the smallest key >= key; ok is false when no such key
// exists (std::map::lower_bound).
func (t *Tree[K, V]) Ceil(key K) (k K, v V, ok bool) {
	touched := uint64(0)
	n := t.root
	var best *node[K, V]
	for n != t.nilNode {
		touched++
		t.touch(n)
		if n.key == key {
			t.stats.Observe(opstats.OpFind, touched)
			return n.key, n.val, true
		}
		if n.key > key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	t.stats.Observe(opstats.OpFind, touched)
	if best == nil {
		return k, v, false
	}
	return best.key, best.val, true
}

// Range visits every key in [lo, hi] in sorted order, calling fn for each;
// it returns the number visited. The traversal prunes subtrees outside the
// interval, touching only nodes on the boundary paths plus those inside.
func (t *Tree[K, V]) Range(lo, hi K, fn func(K, V)) int {
	if hi < lo {
		return 0
	}
	visited := 0
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == t.nilNode {
			return
		}
		t.touch(n)
		if lo < n.key {
			walk(n.left)
		}
		if lo <= n.key && n.key <= hi {
			if fn != nil {
				fn(n.key, n.val)
			}
			visited++
		}
		if n.key < hi {
			walk(n.right)
		}
	}
	walk(t.root)
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}
