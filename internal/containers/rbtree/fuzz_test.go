package rbtree

import "testing"

// FuzzTreeOps drives the tree with an arbitrary byte-encoded operation
// stream against a map model and checks the red-black invariants hold at
// the end. Run with `go test -fuzz=FuzzTreeOps ./internal/containers/rbtree`.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 255, 255, 255})
	f.Add([]byte{9, 1, 9, 1, 9, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tr := New[uint8, int](nil, 8)
		ref := map[uint8]bool{}
		for i := 0; i+1 < len(ops); i += 2 {
			key := ops[i+1]
			switch ops[i] % 3 {
			case 0:
				added := tr.Insert(key, int(key))
				if added == ref[key] {
					t.Fatalf("Insert(%d) added=%v, ref has %v", key, added, ref[key])
				}
				ref[key] = true
			case 1:
				removed := tr.Erase(key)
				if removed != ref[key] {
					t.Fatalf("Erase(%d) removed=%v, ref has %v", key, removed, ref[key])
				}
				delete(ref, key)
			case 2:
				if tr.Contains(key) != ref[key] {
					t.Fatalf("Contains(%d) mismatch", key)
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
		}
		if bad := tr.CheckInvariants(); bad != "" {
			t.Fatal(bad)
		}
	})
}
