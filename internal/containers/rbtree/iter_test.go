package rbtree

import (
	"math/rand"
	"testing"
)

func TestIterSortedOrder(t *testing.T) {
	tr := New[int, int](nil, 16)
	rng := rand.New(rand.NewSource(4))
	want := rng.Perm(500)
	for _, k := range want {
		tr.Insert(k, k+1)
	}
	it := tr.Begin()
	for i := 0; i < 500; i++ {
		k, v, ok := it.Next()
		if !ok || k != i || v != i+1 {
			t.Fatalf("step %d: %d,%d,%v", i, k, v, ok)
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Fatal("iterator ran past the end")
	}
}

func TestIterEmpty(t *testing.T) {
	tr := New[int, int](nil, 16)
	it := tr.Begin()
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty tree yielded an entry")
	}
	var zero Iter[int, int]
	if _, _, ok := zero.Next(); ok {
		t.Fatal("zero iterator yielded an entry")
	}
}
