package list

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/opstats"
)

func TestPushPopEnds(t *testing.T) {
	l := New[int](nil, 8)
	l.PushBack(2)
	l.PushFront(1)
	l.PushBack(3) // 1 2 3
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if x, ok := l.PopFront(); !ok || x != 1 {
		t.Fatalf("PopFront = %d,%v", x, ok)
	}
	if x, ok := l.PopBack(); !ok || x != 3 {
		t.Fatalf("PopBack = %d,%v", x, ok)
	}
	if x, ok := l.PopFront(); !ok || x != 2 {
		t.Fatalf("PopFront = %d,%v", x, ok)
	}
	if _, ok := l.PopFront(); ok {
		t.Fatal("PopFront on empty succeeded")
	}
	if _, ok := l.PopBack(); ok {
		t.Fatal("PopBack on empty succeeded")
	}
}

func TestInsertWalksFromNearestEnd(t *testing.T) {
	l := New[int](nil, 8)
	for i := 0; i < 6; i++ {
		l.PushBack(i) // 0..5
	}
	l.Insert(3, 99)
	want := []int{0, 1, 2, 99, 3, 4, 5}
	got := l.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
	// Insert near the back should walk from the tail: cost < size.
	st := l.Stats()
	if st.Count[opstats.OpInsert] != 1 {
		t.Fatalf("insert count = %d", st.Count[opstats.OpInsert])
	}
}

func TestInsertAtEndsDelegates(t *testing.T) {
	l := New[int](nil, 8)
	l.Insert(0, 5)  // push front on empty
	l.Insert(99, 9) // push back
	l.Insert(0, 1)  // push front
	want := []int{1, 5, 9}
	got := l.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
	st := l.Stats()
	if st.Count[opstats.OpPushFront] != 2 || st.Count[opstats.OpPushBack] != 1 {
		t.Fatalf("push counts = %d front, %d back", st.Count[opstats.OpPushFront], st.Count[opstats.OpPushBack])
	}
}

func TestEraseByPosition(t *testing.T) {
	l := New[int](nil, 8)
	for i := 0; i < 5; i++ {
		l.PushBack(i)
	}
	if !l.Erase(2) {
		t.Fatal("Erase(2) failed")
	}
	want := []int{0, 1, 3, 4}
	got := l.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
	if l.Erase(99) || l.Erase(-1) {
		t.Fatal("out-of-range erase succeeded")
	}
}

func TestFindErase(t *testing.T) {
	l := New[int](nil, 8)
	for i := 0; i < 5; i++ {
		l.PushBack(i * 10)
	}
	if !l.FindErase(func(x int) bool { return x == 30 }) {
		t.Fatal("FindErase(30) failed")
	}
	if l.FindErase(func(x int) bool { return x == 30 }) {
		t.Fatal("FindErase found erased element")
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
}

func TestFindCost(t *testing.T) {
	l := New[int](nil, 8)
	for i := 0; i < 10; i++ {
		l.PushBack(i)
	}
	l.Find(func(x int) bool { return x == 4 })
	st := l.Stats()
	if st.Cost[opstats.OpFind] != 5 {
		t.Fatalf("find cost = %d, want 5", st.Cost[opstats.OpFind])
	}
}

func TestMemoryLifecycle(t *testing.T) {
	cm := mem.NewCounting()
	l := New[uint64](cm, 8)
	for i := 0; i < 50; i++ {
		l.PushBack(uint64(i))
	}
	if cm.Allocs != 50 {
		t.Fatalf("allocs = %d, want 50 (one per node)", cm.Allocs)
	}
	l.Clear()
	if cm.Live != 0 {
		t.Fatalf("leaked %d simulated bytes", cm.Live)
	}
	if l.Len() != 0 {
		t.Fatal("Clear left elements")
	}
}

func TestPointerChasingTouchesEveryNode(t *testing.T) {
	cm := mem.NewCounting()
	l := New[uint64](cm, 8)
	for i := 0; i < 100; i++ {
		l.PushBack(uint64(i))
	}
	before := cm.Reads
	l.Iterate(-1, nil)
	if cm.Reads-before != 100 {
		t.Fatalf("iterate reads = %d, want 100", cm.Reads-before)
	}
}

func TestDifferentialAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := New[int](nil, 8)
	var ref []int
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(6); {
		case op == 0 || len(ref) == 0:
			x := rng.Intn(500)
			l.PushBack(x)
			ref = append(ref, x)
		case op == 1:
			x := rng.Intn(500)
			l.PushFront(x)
			ref = append([]int{x}, ref...)
		case op == 2:
			i := rng.Intn(len(ref) + 1)
			x := rng.Intn(500)
			l.Insert(i, x)
			ref = append(ref, 0)
			copy(ref[i+1:], ref[i:])
			ref[i] = x
		case op == 3:
			i := rng.Intn(len(ref))
			l.Erase(i)
			ref = append(ref[:i], ref[i+1:]...)
		case op == 4:
			x := rng.Intn(500)
			want := -1
			for i, r := range ref {
				if r == x {
					want = i
					break
				}
			}
			if got := l.Find(func(e int) bool { return e == x }); got != want {
				t.Fatalf("step %d: Find(%d) = %d, want %d", step, x, got, want)
			}
		default:
			if len(ref) > 0 {
				l.PopBack()
				ref = ref[:len(ref)-1]
			}
		}
		if l.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, l.Len(), len(ref))
		}
	}
	got := l.Values()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("final contents diverge at %d: %d vs %d", i, got[i], ref[i])
		}
	}
}

func TestQuickPushPopSymmetry(t *testing.T) {
	f := func(xs []uint32) bool {
		l := New[uint32](nil, 4)
		for _, x := range xs {
			l.PushFront(x)
		}
		// Popping from the back must return the original order.
		for _, x := range xs {
			got, ok := l.PopBack()
			if !ok || got != x {
				return false
			}
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
