package list

// Iter is a forward iterator over a list. Mutating the list while
// iterating invalidates the iterator unless the mutation is at another
// position, matching std::list's stability guarantees loosely.
type Iter[T any] struct {
	l   *List[T]
	cur *node[T]
}

// Begin returns an iterator at the first element.
func (l *List[T]) Begin() Iter[T] { return Iter[T]{l: l, cur: l.head} }

// Next returns the current element and advances; ok is false past the end.
// Each advance is a dependent node load.
func (it *Iter[T]) Next() (x T, ok bool) {
	if it.cur == nil {
		return x, false
	}
	it.l.touchNode(it.cur)
	x = it.cur.val
	it.cur = it.cur.next
	return x, true
}
