package list

import "testing"

func TestIterVisitsAllInOrder(t *testing.T) {
	l := New[string](nil, 24)
	words := []string{"a", "b", "c", "d"}
	for _, w := range words {
		l.PushBack(w)
	}
	it := l.Begin()
	for _, w := range words {
		x, ok := it.Next()
		if !ok || x != w {
			t.Fatalf("got %q,%v want %q", x, ok, w)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator ran past the end")
	}
}

func TestIterEmpty(t *testing.T) {
	l := New[int](nil, 8)
	it := l.Begin()
	if _, ok := it.Next(); ok {
		t.Fatal("empty list yielded an element")
	}
}
