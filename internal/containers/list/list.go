// Package list implements a doubly linked list, the analog of std::list.
// Every node is a separate simulated allocation, so traversal is pointer
// chasing: linear search and iteration pay a potential cache miss per node,
// while insertion and removal at a known position are O(1) with no shifting.
// This is the locality/mutation-cost trade against vector at the heart of
// the paper's motivating example.
package list

import (
	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside list code.
const (
	siteFindCmp mem.BranchSite = 0x200 // comparison loop in find
	siteWalk    mem.BranchSite = 0x201 // "reached position?" walk loop
)

const ptrBytes = 8 // simulated pointer size

type node[T any] struct {
	prev, next *node[T]
	addr       mem.Addr
	val        T
}

// List is a doubly linked list of T. Construct with New.
type List[T any] struct {
	head, tail *node[T]
	size       int
	model      mem.Model
	elemSize   uint64
	nodeBytes  uint64
	stats      opstats.Stats
}

// New returns an empty list bound to the given memory model. elemSize is the
// simulated payload size in bytes; each node additionally carries two
// pointers. A nil model defaults to mem.Nop.
func New[T any](model mem.Model, elemSize uint64) *List[T] {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	return &List[T]{model: model, elemSize: elemSize, nodeBytes: elemSize + 2*ptrBytes}
}

// Stats exposes the container's accumulated software features.
func (l *List[T]) Stats() *opstats.Stats {
	l.stats.ElemSize = l.elemSize
	return &l.stats
}

// Len returns the number of elements.
func (l *List[T]) Len() int { return l.size }

func (l *List[T]) newNode(x T) *node[T] {
	n := &node[T]{val: x}
	n.addr = l.model.Alloc(l.nodeBytes, 8)
	l.model.Write(n.addr, l.nodeBytes)
	return n
}

// touchNode models reading a node's links and payload while traversing.
func (l *List[T]) touchNode(n *node[T]) {
	l.model.Read(n.addr, l.nodeBytes)
}

// PushBack appends x.
func (l *List[T]) PushBack(x T) {
	n := l.newNode(x)
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		l.model.Write(l.tail.addr, ptrBytes) // patch tail.next
		n.prev = l.tail
		l.tail.next = n
		l.tail = n
	}
	l.size++
	l.stats.Observe(opstats.OpPushBack, 1)
	l.stats.NoteLen(l.size)
}

// PushFront prepends x. push_front frequency is one of the paper's selected
// features for order-aware lists (Table 3): it distinguishes deque-friendly
// workloads.
func (l *List[T]) PushFront(x T) {
	n := l.newNode(x)
	if l.head == nil {
		l.head, l.tail = n, n
	} else {
		l.model.Write(l.head.addr, ptrBytes)
		n.next = l.head
		l.head.prev = n
		l.head = n
	}
	l.size++
	l.stats.Observe(opstats.OpPushFront, 1)
	l.stats.NoteLen(l.size)
}

// PopBack removes and returns the last element; ok is false when empty.
func (l *List[T]) PopBack() (x T, ok bool) {
	if l.tail == nil {
		return x, false
	}
	n := l.tail
	l.touchNode(n)
	l.tail = n.prev
	if l.tail == nil {
		l.head = nil
	} else {
		l.model.Write(l.tail.addr, ptrBytes)
		l.tail.next = nil
	}
	l.model.Free(n.addr, l.nodeBytes)
	l.size--
	l.stats.Observe(opstats.OpPopBack, 1)
	return n.val, true
}

// PopFront removes and returns the first element; ok is false when empty.
func (l *List[T]) PopFront() (x T, ok bool) {
	if l.head == nil {
		return x, false
	}
	n := l.head
	l.touchNode(n)
	l.head = n.next
	if l.head == nil {
		l.tail = nil
	} else {
		l.model.Write(l.head.addr, ptrBytes)
		l.head.prev = nil
	}
	l.model.Free(n.addr, l.nodeBytes)
	l.size--
	l.stats.Observe(opstats.OpPopFront, 1)
	return n.val, true
}

// walkTo returns the node at position i (0-based), touching every node on
// the way from the nearer end, and the number of nodes touched.
func (l *List[T]) walkTo(i int) (*node[T], uint64) {
	var touched uint64
	if i < l.size/2 {
		n := l.head
		for k := 0; k < i; k++ {
			l.model.Branch(siteWalk, true)
			l.touchNode(n)
			touched++
			n = n.next
		}
		l.model.Branch(siteWalk, false)
		return n, touched
	}
	n := l.tail
	for k := l.size - 1; k > i; k-- {
		l.model.Branch(siteWalk, true)
		l.touchNode(n)
		touched++
		n = n.prev
	}
	l.model.Branch(siteWalk, false)
	return n, touched
}

// Insert places x before position i. Walking to the position costs one node
// touch per step; the splice itself is O(1).
func (l *List[T]) Insert(i int, x T) {
	if i <= 0 {
		l.PushFront(x)
		return
	}
	if i >= l.size {
		l.PushBack(x)
		return
	}
	at, touched := l.walkTo(i)
	n := l.newNode(x)
	n.prev = at.prev
	n.next = at
	l.model.Write(at.prev.addr, ptrBytes)
	l.model.Write(at.addr, ptrBytes)
	at.prev.next = n
	at.prev = n
	l.size++
	l.stats.Observe(opstats.OpInsert, touched+1)
	l.stats.NoteLen(l.size)
}

// Erase removes the element at position i; it returns false when i is out
// of range.
func (l *List[T]) Erase(i int) bool {
	if i < 0 || i >= l.size {
		return false
	}
	n, touched := l.walkTo(i)
	l.unlink(n)
	l.stats.Observe(opstats.OpErase, touched+1)
	return true
}

func (l *List[T]) unlink(n *node[T]) {
	if n.prev != nil {
		l.model.Write(n.prev.addr, ptrBytes)
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		l.model.Write(n.next.addr, ptrBytes)
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	l.model.Free(n.addr, l.nodeBytes)
	l.size--
}

// Find walks from the front and returns the position of the first element
// satisfying eq, or -1. The cost is the number of nodes touched.
func (l *List[T]) Find(eq func(T) bool) int {
	touched := uint64(0)
	idx := -1
	i := 0
	for n := l.head; n != nil; n = n.next {
		touched++
		l.touchNode(n)
		hit := eq(n.val)
		l.model.Branch(siteFindCmp, hit)
		if hit {
			idx = i
			break
		}
		i++
	}
	l.stats.Observe(opstats.OpFind, touched)
	return idx
}

// FindErase removes the first element satisfying eq and reports whether one
// was found. It models std::list::remove-style search-then-unlink without a
// second walk.
func (l *List[T]) FindErase(eq func(T) bool) bool {
	touched := uint64(0)
	for n := l.head; n != nil; n = n.next {
		touched++
		l.touchNode(n)
		hit := eq(n.val)
		l.model.Branch(siteFindCmp, hit)
		if hit {
			l.unlink(n)
			l.stats.Observe(opstats.OpErase, touched)
			return true
		}
	}
	l.stats.Observe(opstats.OpErase, touched)
	return false
}

// Iterate visits up to n elements from the front, calling fn for each, and
// returns the number visited. n < 0 visits all elements.
func (l *List[T]) Iterate(n int, fn func(T)) int {
	if n < 0 || n > l.size {
		n = l.size
	}
	visited := 0
	for cur := l.head; cur != nil && visited < n; cur = cur.next {
		l.touchNode(cur)
		if fn != nil {
			fn(cur.val)
		}
		visited++
	}
	l.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}

// Clear removes all elements, freeing every node.
func (l *List[T]) Clear() {
	for n := l.head; n != nil; {
		next := n.next
		l.model.Free(n.addr, l.nodeBytes)
		n = next
	}
	l.head, l.tail = nil, nil
	l.size = 0
	l.stats.Observe(opstats.OpClear, 1)
}

// Values returns a copy of the contents in order. Intended for tests.
func (l *List[T]) Values() []T {
	out := make([]T, 0, l.size)
	for n := l.head; n != nil; n = n.next {
		out = append(out, n.val)
	}
	return out
}
