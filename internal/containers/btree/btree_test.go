package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/containers/rbtree"
	"repro/internal/machine"
	"repro/internal/mem"
)

func TestInsertFindErase(t *testing.T) {
	tr := New[int, string](nil, 8)
	if !tr.Insert(5, "five") {
		t.Fatal("first insert returned false")
	}
	if tr.Insert(5, "FIVE") {
		t.Fatal("duplicate insert returned true")
	}
	if v, ok := tr.Find(5); !ok || v != "FIVE" {
		t.Fatalf("Find = %q,%v", v, ok)
	}
	if _, ok := tr.Find(6); ok {
		t.Fatal("found missing key")
	}
	if !tr.Erase(5) || tr.Erase(5) {
		t.Fatal("erase semantics wrong")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSplitsProduceValidTree(t *testing.T) {
	tr := New[int, int](nil, 8)
	// Sequential inserts exercise repeated root splits.
	for i := 0; i < 2000; i++ {
		tr.Insert(i, i)
	}
	if bad := tr.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
	for i := 0; i < 2000; i++ {
		if !tr.Contains(i) {
			t.Fatalf("lost key %d", i)
		}
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int, int](nil, 8)
	present := map[int]bool{}
	for step := 0; step < 30000; step++ {
		k := rng.Intn(3000)
		if rng.Intn(3) != 0 {
			added := tr.Insert(k, k)
			if added == present[k] {
				t.Fatalf("step %d: Insert(%d) added=%v present=%v", step, k, added, present[k])
			}
			present[k] = true
		} else {
			removed := tr.Erase(k)
			if removed != present[k] {
				t.Fatalf("step %d: Erase(%d) removed=%v present=%v", step, k, removed, present[k])
			}
			delete(present, k)
		}
		if step%1000 == 0 {
			if bad := tr.CheckInvariants(); bad != "" {
				t.Fatalf("step %d: %s", step, bad)
			}
		}
	}
	if bad := tr.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
	if tr.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(present))
	}
}

func TestEraseDrainsCompletely(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New[int, int](nil, 8)
	keys := rng.Perm(5000)
	for _, k := range keys {
		tr.Insert(k, k)
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Erase(k) {
			t.Fatalf("erase %d failed", k)
		}
		if i%500 == 0 {
			if bad := tr.CheckInvariants(); bad != "" {
				t.Fatalf("after %d erases: %s", i+1, bad)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after draining", tr.Len())
	}
}

func TestSortedIteration(t *testing.T) {
	tr := New[int, int](nil, 8)
	rng := rand.New(rand.NewSource(3))
	for _, k := range rng.Perm(1000) {
		tr.Insert(k, k*3)
	}
	var got []int
	tr.Iterate(-1, func(k, v int) {
		if v != k*3 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
	})
	if len(got) != 1000 || !sort.IntsAreSorted(got) {
		t.Fatalf("iteration wrong: %d keys, sorted=%v", len(got), sort.IntsAreSorted(got))
	}
	if n := tr.Iterate(7, nil); n != 7 {
		t.Fatalf("partial iterate visited %d", n)
	}
}

func TestQuickAgainstMap(t *testing.T) {
	f := func(keys []uint16) bool {
		tr := New[uint16, int](nil, 8)
		ref := map[uint16]bool{}
		for _, k := range keys {
			tr.Insert(k, int(k))
			ref[k] = true
		}
		if tr.Len() != len(ref) {
			return false
		}
		for i, k := range keys {
			if i%2 == 0 {
				if tr.Erase(k) != ref[k] {
					return false
				}
				delete(ref, k)
			}
		}
		return tr.Len() == len(ref) && tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFindTouchesFewerNodesThanRBTree(t *testing.T) {
	// The point of the B-tree: log_B(n) node touches vs log_2(n).
	const n = 1 << 14
	bt := New[uint64, uint64](nil, 8)
	rb := rbtree.New[uint64, uint64](nil, 8)
	for i := uint64(0); i < n; i++ {
		bt.Insert(i, i)
		rb.Insert(i, i)
	}
	bt.Stats().Reset()
	rb.Stats().Reset()
	for i := uint64(0); i < 1000; i++ {
		bt.Find(i * 16)
		rb.Find(i * 16)
	}
	btCost := float64(bt.Stats().Cost[2]) / 1000 // opstats.OpFind
	rbCost := float64(rb.Stats().Cost[2]) / 1000
	if btCost*2 > rbCost {
		t.Fatalf("b-tree touches %.1f nodes/find vs rb %.1f; want <= half", btCost, rbCost)
	}
}

func TestCacheFriendlinessOnMachine(t *testing.T) {
	// On the simulated machine, B-tree lookups over a large key space
	// should be cheaper than red-black lookups.
	const n = 1 << 15
	run := func(build func(m *machine.Machine) func(uint64)) float64 {
		m := machine.New(machine.Core2())
		find := build(m)
		rng := rand.New(rand.NewSource(4))
		start := m.Cycles()
		for i := 0; i < 3000; i++ {
			find(uint64(rng.Intn(n)))
		}
		return m.Cycles() - start
	}
	btCycles := run(func(m *machine.Machine) func(uint64) {
		tr := New[uint64, uint64](m, 8)
		for i := uint64(0); i < n; i++ {
			tr.Insert(i, i)
		}
		return func(k uint64) { tr.Find(k) }
	})
	rbCycles := run(func(m *machine.Machine) func(uint64) {
		tr := rbtree.New[uint64, uint64](m, 8)
		for i := uint64(0); i < n; i++ {
			tr.Insert(i, i)
		}
		return func(k uint64) { tr.Find(k) }
	})
	if btCycles >= rbCycles {
		t.Fatalf("b-tree (%.0f cycles) not cheaper than rb tree (%.0f)", btCycles, rbCycles)
	}
}

func TestMemoryLifecycle(t *testing.T) {
	cm := mem.NewCounting()
	tr := New[uint64, uint64](cm, 8)
	for i := uint64(0); i < 2000; i++ {
		tr.Insert(i, i)
	}
	for i := uint64(0); i < 2000; i++ {
		tr.Erase(i)
	}
	tr.Clear()
	// Only the fresh empty root remains.
	if uint64(cm.Live) != tr.nodeBytes {
		t.Fatalf("live bytes = %d, want one root node (%d)", cm.Live, tr.nodeBytes)
	}
}

func FuzzBTreeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{200, 100, 50, 25})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tr := New[uint8, int](nil, 8)
		ref := map[uint8]bool{}
		for i := 0; i+1 < len(ops); i += 2 {
			key := ops[i+1]
			switch ops[i] % 3 {
			case 0:
				tr.Insert(key, int(key))
				ref[key] = true
			case 1:
				if tr.Erase(key) != ref[key] {
					t.Fatalf("Erase(%d) mismatch", key)
				}
				delete(ref, key)
			default:
				if tr.Contains(key) != ref[key] {
					t.Fatalf("Contains(%d) mismatch", key)
				}
			}
		}
		if tr.Len() != len(ref) || tr.CheckInvariants() != "" {
			t.Fatalf("final state invalid: %s", tr.CheckInvariants())
		}
	})
}
