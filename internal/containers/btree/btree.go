// Package btree implements an in-memory B-tree with unique keys. It is the
// cache-conscious counterpoint to the binary trees in this repository: each
// node packs many keys into a few contiguous cache lines, so a lookup
// touches ~log_B(n) nodes instead of log_2(n) — exactly the kind of
// architecture-driven alternative the paper argues selection tools should
// know about. The tree is a library extension beyond the paper's Table 1
// and is exercised by the container micro-benchmarks.
package btree

import (
	"cmp"
	"fmt"

	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside B-tree code.
const (
	siteScanKey mem.BranchSite = 0x900 // in-node key scan comparison
	siteDescend mem.BranchSite = 0x901 // leaf check during descent
)

// degree is the minimum branching factor t: nodes hold between t-1 and
// 2t-1 keys (except the root), i.e. up to 15 keys per node — two or three
// cache lines of 8-byte keys.
const degree = 8

const maxKeys = 2*degree - 1

type node[K cmp.Ordered, V any] struct {
	n        int // keys in use
	leaf     bool
	keys     [maxKeys]K
	vals     [maxKeys]V
	children [maxKeys + 1]*node[K, V]
	addr     mem.Addr
}

// Tree is a B-tree mapping K to V with unique keys. Construct with New.
type Tree[K cmp.Ordered, V any] struct {
	root      *node[K, V]
	size      int
	model     mem.Model
	elemSize  uint64
	nodeBytes uint64
	stats     opstats.Stats
}

// New returns an empty B-tree bound to the given memory model. A nil model
// defaults to mem.Nop.
func New[K cmp.Ordered, V any](model mem.Model, elemSize uint64) *Tree[K, V] {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	t := &Tree[K, V]{model: model, elemSize: elemSize}
	// Node payload: keys+values plus child pointers plus the header.
	t.nodeBytes = uint64(maxKeys)*elemSize + uint64(maxKeys+1)*8 + 16
	t.root = t.newNode(true)
	return t
}

func (t *Tree[K, V]) newNode(leaf bool) *node[K, V] {
	n := &node[K, V]{leaf: leaf}
	n.addr = t.model.Alloc(t.nodeBytes, 64)
	t.model.Write(n.addr, 16) // header init
	return n
}

// touch models reading the populated prefix of a node: header, keys, and
// child pointers — the contiguous burst that makes B-trees cache friendly.
func (t *Tree[K, V]) touch(n *node[K, V]) {
	span := 16 + uint64(n.n)*t.elemSize
	if !n.leaf {
		span += uint64(n.n+1) * 8
	}
	t.model.Read(n.addr, span)
}

// writeNode models rewriting a node after mutation.
func (t *Tree[K, V]) writeNode(n *node[K, V]) {
	span := 16 + uint64(n.n)*t.elemSize
	if !n.leaf {
		span += uint64(n.n+1) * 8
	}
	t.model.Write(n.addr, span)
}

// Stats exposes the container's accumulated software features.
func (t *Tree[K, V]) Stats() *opstats.Stats {
	t.stats.ElemSize = t.elemSize
	return &t.stats
}

// Len returns the number of keys.
func (t *Tree[K, V]) Len() int { return t.size }

// findInNode returns the index of the first key >= key, emitting one scan
// branch per probed slot (a linear scan, as real cache-line-packed nodes
// use).
func (t *Tree[K, V]) findInNode(n *node[K, V], key K) int {
	i := 0
	for i < n.n && n.keys[i] < key {
		t.model.Branch(siteScanKey, true)
		i++
	}
	t.model.Branch(siteScanKey, false)
	return i
}

// Find returns the value stored under key.
func (t *Tree[K, V]) Find(key K) (V, bool) {
	touched := uint64(0)
	n := t.root
	for {
		touched++
		t.touch(n)
		i := t.findInNode(n, key)
		if i < n.n && n.keys[i] == key {
			t.stats.Observe(opstats.OpFind, touched)
			return n.vals[i], true
		}
		isLeaf := n.leaf
		t.model.Branch(siteDescend, isLeaf)
		if isLeaf {
			t.stats.Observe(opstats.OpFind, touched)
			var zero V
			return zero, false
		}
		n = n.children[i]
	}
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Find(key)
	return ok
}

// splitChild splits the full i-th child of parent.
func (t *Tree[K, V]) splitChild(parent *node[K, V], i int) {
	child := parent.children[i]
	right := t.newNode(child.leaf)
	right.n = degree - 1
	copy(right.keys[:], child.keys[degree:])
	copy(right.vals[:], child.vals[degree:])
	if !child.leaf {
		copy(right.children[:], child.children[degree:])
	}
	child.n = degree - 1

	copy(parent.children[i+2:], parent.children[i+1:parent.n+1])
	parent.children[i+1] = right
	copy(parent.keys[i+1:], parent.keys[i:parent.n])
	copy(parent.vals[i+1:], parent.vals[i:parent.n])
	parent.keys[i] = child.keys[degree-1]
	parent.vals[i] = child.vals[degree-1]
	parent.n++

	t.writeNode(child)
	t.writeNode(right)
	t.writeNode(parent)
	t.stats.Rotations++ // node split counts as a structural event
}

// Insert adds key→val; it returns false (and overwrites) when the key was
// already present.
func (t *Tree[K, V]) Insert(key K, val V) bool {
	if t.root.n == maxKeys {
		newRoot := t.newNode(false)
		newRoot.children[0] = t.root
		t.root = newRoot
		t.splitChild(newRoot, 0)
	}
	touched := uint64(0)
	n := t.root
	for {
		touched++
		t.touch(n)
		i := t.findInNode(n, key)
		if i < n.n && n.keys[i] == key {
			n.vals[i] = val
			t.writeNode(n)
			t.stats.Observe(opstats.OpInsert, touched)
			return false
		}
		if n.leaf {
			copy(n.keys[i+1:], n.keys[i:n.n])
			copy(n.vals[i+1:], n.vals[i:n.n])
			n.keys[i] = key
			n.vals[i] = val
			n.n++
			t.writeNode(n)
			t.size++
			t.stats.Observe(opstats.OpInsert, touched)
			t.stats.NoteLen(t.size)
			return true
		}
		if n.children[i].n == maxKeys {
			t.splitChild(n, i)
			if key == n.keys[i] {
				n.vals[i] = val
				t.stats.Observe(opstats.OpInsert, touched)
				return false
			}
			if key > n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// Erase removes key and reports whether it was present. It uses the
// classic CLRS preemptive-fill descent so no backtracking is needed.
func (t *Tree[K, V]) Erase(key K) bool {
	touched := uint64(0)
	removed := t.erase(t.root, key, &touched)
	if t.root.n == 0 && !t.root.leaf {
		old := t.root
		t.root = t.root.children[0]
		t.model.Free(old.addr, t.nodeBytes)
	}
	if removed {
		t.size--
	}
	t.stats.Observe(opstats.OpErase, touched)
	return removed
}

func (t *Tree[K, V]) erase(n *node[K, V], key K, touched *uint64) bool {
	*touched++
	t.touch(n)
	i := t.findInNode(n, key)
	if i < n.n && n.keys[i] == key {
		if n.leaf {
			copy(n.keys[i:], n.keys[i+1:n.n])
			copy(n.vals[i:], n.vals[i+1:n.n])
			n.n--
			t.writeNode(n)
			return true
		}
		// Internal node: replace with predecessor or successor, or merge.
		if n.children[i].n >= degree {
			pk, pv := t.maxOf(n.children[i], touched)
			n.keys[i], n.vals[i] = pk, pv
			t.writeNode(n)
			return t.erase(n.children[i], pk, touched)
		}
		if n.children[i+1].n >= degree {
			sk, sv := t.minOf(n.children[i+1], touched)
			n.keys[i], n.vals[i] = sk, sv
			t.writeNode(n)
			return t.erase(n.children[i+1], sk, touched)
		}
		t.merge(n, i)
		return t.erase(n.children[i], key, touched)
	}
	if n.leaf {
		return false
	}
	// Ensure the child we descend into has at least degree keys.
	if n.children[i].n < degree {
		i = t.fill(n, i)
	}
	return t.erase(n.children[i], key, touched)
}

// maxOf walks to the maximum key of a subtree.
func (t *Tree[K, V]) maxOf(n *node[K, V], touched *uint64) (K, V) {
	for !n.leaf {
		*touched++
		t.touch(n)
		n = n.children[n.n]
	}
	*touched++
	t.touch(n)
	return n.keys[n.n-1], n.vals[n.n-1]
}

// minOf walks to the minimum key of a subtree.
func (t *Tree[K, V]) minOf(n *node[K, V], touched *uint64) (K, V) {
	for !n.leaf {
		*touched++
		t.touch(n)
		n = n.children[0]
	}
	*touched++
	t.touch(n)
	return n.keys[0], n.vals[0]
}

// fill guarantees children[i] has >= degree keys by borrowing from a
// sibling or merging; it returns the (possibly shifted) child index to
// descend into.
func (t *Tree[K, V]) fill(n *node[K, V], i int) int {
	switch {
	case i > 0 && n.children[i-1].n >= degree:
		t.borrowFromLeft(n, i)
	case i < n.n && n.children[i+1].n >= degree:
		t.borrowFromRight(n, i)
	case i < n.n:
		t.merge(n, i)
	default:
		t.merge(n, i-1)
		i--
	}
	return i
}

func (t *Tree[K, V]) borrowFromLeft(n *node[K, V], i int) {
	child, left := n.children[i], n.children[i-1]
	copy(child.keys[1:], child.keys[:child.n])
	copy(child.vals[1:], child.vals[:child.n])
	if !child.leaf {
		copy(child.children[1:], child.children[:child.n+1])
	}
	child.keys[0], child.vals[0] = n.keys[i-1], n.vals[i-1]
	if !child.leaf {
		child.children[0] = left.children[left.n]
	}
	n.keys[i-1], n.vals[i-1] = left.keys[left.n-1], left.vals[left.n-1]
	left.n--
	child.n++
	t.writeNode(child)
	t.writeNode(left)
	t.writeNode(n)
	t.stats.Rotations++
}

func (t *Tree[K, V]) borrowFromRight(n *node[K, V], i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys[child.n], child.vals[child.n] = n.keys[i], n.vals[i]
	if !child.leaf {
		child.children[child.n+1] = right.children[0]
	}
	n.keys[i], n.vals[i] = right.keys[0], right.vals[0]
	copy(right.keys[:], right.keys[1:right.n])
	copy(right.vals[:], right.vals[1:right.n])
	if !right.leaf {
		copy(right.children[:], right.children[1:right.n+1])
	}
	right.n--
	child.n++
	t.writeNode(child)
	t.writeNode(right)
	t.writeNode(n)
	t.stats.Rotations++
}

// merge folds children[i+1] and the separator key into children[i].
func (t *Tree[K, V]) merge(n *node[K, V], i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys[degree-1], child.vals[degree-1] = n.keys[i], n.vals[i]
	copy(child.keys[degree:], right.keys[:right.n])
	copy(child.vals[degree:], right.vals[:right.n])
	if !child.leaf {
		copy(child.children[degree:], right.children[:right.n+1])
	}
	child.n += right.n + 1
	copy(n.keys[i:], n.keys[i+1:n.n])
	copy(n.vals[i:], n.vals[i+1:n.n])
	copy(n.children[i+1:], n.children[i+2:n.n+1])
	n.n--
	t.model.Free(right.addr, t.nodeBytes)
	t.writeNode(child)
	t.writeNode(n)
	t.stats.Rotations++
}

// Iterate visits up to n keys in sorted order, calling fn for each, and
// returns the number visited. n < 0 visits all keys.
func (t *Tree[K, V]) Iterate(n int, fn func(K, V)) int {
	if n < 0 || n > t.size {
		n = t.size
	}
	visited := 0
	var walk func(nd *node[K, V]) bool
	walk = func(nd *node[K, V]) bool {
		t.touch(nd)
		for i := 0; i < nd.n; i++ {
			if !nd.leaf && !walk(nd.children[i]) {
				return false
			}
			if visited >= n {
				return false
			}
			if fn != nil {
				fn(nd.keys[i], nd.vals[i])
			}
			visited++
		}
		if !nd.leaf {
			return walk(nd.children[nd.n])
		}
		return true
	}
	if t.size > 0 {
		walk(t.root)
	}
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}

// Min returns the smallest key; ok is false when empty.
func (t *Tree[K, V]) Min() (k K, ok bool) {
	if t.size == 0 {
		return k, false
	}
	touched := uint64(0)
	k, _ = t.minOf(t.root, &touched)
	return k, true
}

// Clear removes all keys, freeing every node.
func (t *Tree[K, V]) Clear() {
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if !n.leaf {
			for i := 0; i <= n.n; i++ {
				walk(n.children[i])
			}
		}
		t.model.Free(n.addr, t.nodeBytes)
	}
	walk(t.root)
	t.root = t.newNode(true)
	t.size = 0
	t.stats.Observe(opstats.OpClear, 1)
}

// Keys returns all keys in sorted order. Intended for tests.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Iterate(-1, func(k K, _ V) { out = append(out, k) })
	return out
}

// CheckInvariants verifies B-tree structure: key counts per node, sorted
// keys, uniform leaf depth, and separator ordering. It returns a
// descriptive violation or "" when valid.
func (t *Tree[K, V]) CheckInvariants() string {
	leafDepth := -1
	count := 0
	var walk func(n *node[K, V], depth int, hasLo bool, lo K, hasHi bool, hi K) string
	walk = func(n *node[K, V], depth int, hasLo bool, lo K, hasHi bool, hi K) string {
		if n != t.root && n.n < degree-1 {
			return fmt.Sprintf("underfull node: %d keys", n.n)
		}
		if n.n > maxKeys {
			return "overfull node"
		}
		count += n.n
		for i := 0; i < n.n; i++ {
			if i > 0 && !(n.keys[i-1] < n.keys[i]) {
				return "keys not strictly increasing in node"
			}
			if hasLo && !(lo < n.keys[i]) {
				return "key violates lower separator"
			}
			if hasHi && !(n.keys[i] < hi) {
				return "key violates upper separator"
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return "leaves at different depths"
			}
			return ""
		}
		for i := 0; i <= n.n; i++ {
			cLo, cHasLo := lo, hasLo
			cHi, cHasHi := hi, hasHi
			if i > 0 {
				cLo, cHasLo = n.keys[i-1], true
			}
			if i < n.n {
				cHi, cHasHi = n.keys[i], true
			}
			if bad := walk(n.children[i], depth+1, cHasLo, cLo, cHasHi, cHi); bad != "" {
				return bad
			}
		}
		return ""
	}
	if bad := walk(t.root, 0, false, *new(K), false, *new(K)); bad != "" {
		return bad
	}
	if count != t.size {
		return fmt.Sprintf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	return ""
}
