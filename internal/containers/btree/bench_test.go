package btree

import (
	"math/rand"
	"testing"

	"repro/internal/containers/rbtree"
	"repro/internal/machine"
)

// BenchmarkFindVsRBTree reports the simulated lookup cost of the B-tree
// against the red-black tree at the same size, as custom metrics.
func BenchmarkFindVsRBTree(b *testing.B) {
	const n = 1 << 15
	var btCycles, rbCycles float64
	for i := 0; i < b.N; i++ {
		m1 := machine.New(machine.Core2())
		bt := New[uint64, uint64](m1, 8)
		m2 := machine.New(machine.Core2())
		rb := rbtree.New[uint64, uint64](m2, 8)
		for k := uint64(0); k < n; k++ {
			bt.Insert(k, k)
			rb.Insert(k, k)
		}
		s1, s2 := m1.Cycles(), m2.Cycles()
		rng := rand.New(rand.NewSource(1))
		for q := 0; q < 2000; q++ {
			k := uint64(rng.Intn(n))
			bt.Find(k)
			rb.Find(k)
		}
		btCycles = (m1.Cycles() - s1) / 2000
		rbCycles = (m2.Cycles() - s2) / 2000
	}
	b.ReportMetric(btCycles, "btree-cyc/find")
	b.ReportMetric(rbCycles, "rbtree-cyc/find")
}

// BenchmarkInsert measures raw (host) insert throughput.
func BenchmarkInsert(b *testing.B) {
	tr := New[int, int](nil, 8)
	for i := 0; i < b.N; i++ {
		tr.Insert(i, i)
	}
}
