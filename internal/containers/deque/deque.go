// Package deque implements a chunked double-ended queue, the analog of
// std::deque: a growable map of fixed-size chunks. Random access costs one
// map read plus one element read; pushes at either end are O(1) amortized;
// middle insertion shifts the smaller side, like libstdc++. Locality on
// iteration is nearly as good as vector's, but no full-copy resize is ever
// needed — the trade the paper's replacement matrix (Table 1) encodes.
package deque

import (
	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside deque code.
const (
	siteMapGrow  mem.BranchSite = 0x300 // chunk map full?
	siteFindCmp  mem.BranchSite = 0x301 // comparison loop in find
	siteBoundary mem.BranchSite = 0x302 // iterator chunk-boundary check on ++
)

const (
	chunkBytes = 512 // simulated chunk payload size
	ptrBytes   = 8
)

type chunk[T any] struct {
	addr  mem.Addr
	elems []T // always allocated at full chunk capacity
}

// Deque is a double-ended queue of T. Construct with New.
type Deque[T any] struct {
	chunks   []*chunk[T] // the "map"
	mapAddr  mem.Addr
	mapBytes uint64
	front    int // logical index of first element within chunks[0]
	size     int
	chunkCap int
	model    mem.Model
	elemSize uint64
	stats    opstats.Stats
}

// New returns an empty deque bound to the given memory model. A nil model
// defaults to mem.Nop.
func New[T any](model mem.Model, elemSize uint64) *Deque[T] {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	cc := chunkBytes / int(elemSize)
	if cc < 1 {
		cc = 1
	}
	return &Deque[T]{model: model, elemSize: elemSize, chunkCap: cc}
}

// Stats exposes the container's accumulated software features.
func (d *Deque[T]) Stats() *opstats.Stats {
	d.stats.ElemSize = d.elemSize
	return &d.stats
}

// Len returns the number of elements.
func (d *Deque[T]) Len() int { return d.size }

func (d *Deque[T]) newChunk() *chunk[T] {
	c := &chunk[T]{elems: make([]T, d.chunkCap)}
	c.addr = d.model.Alloc(uint64(d.chunkCap)*d.elemSize, 16)
	return c
}

// remapped models growing the chunk map array.
func (d *Deque[T]) remapped() {
	newBytes := uint64(cap(d.chunks)) * ptrBytes
	if newBytes == 0 {
		newBytes = 8 * ptrBytes
	}
	if d.mapBytes > 0 {
		d.model.Read(d.mapAddr, d.mapBytes)
		d.model.Free(d.mapAddr, d.mapBytes)
	}
	d.mapAddr = d.model.Alloc(newBytes, 16)
	d.model.Write(d.mapAddr, newBytes)
	d.mapBytes = newBytes
	d.stats.Resizes++
}

// back returns the logical index one past the last element, relative to
// chunk 0's origin.
func (d *Deque[T]) back() int { return d.front + d.size }

// locate returns the chunk index and offset for logical position i.
func (d *Deque[T]) locate(i int) (ci, off int) {
	i += d.front
	return i / d.chunkCap, i % d.chunkCap
}

// readMapEntry models the extra indirection of chunked storage.
func (d *Deque[T]) readMapEntry(ci int) {
	d.model.Read(d.mapAddr+mem.Addr(ci*ptrBytes), ptrBytes)
}

func (d *Deque[T]) elemAddr(i int) (c *chunk[T], off int, a mem.Addr) {
	ci, off := d.locate(i)
	c = d.chunks[ci]
	return c, off, c.addr + mem.Addr(uint64(off)*d.elemSize)
}

// get/set are internal, unaccounted accessors.
func (d *Deque[T]) get(i int) T {
	c, off, _ := d.elemAddr(i)
	return c.elems[off]
}

func (d *Deque[T]) put(i int, x T) {
	c, off, _ := d.elemAddr(i)
	c.elems[off] = x
}

// At returns the i-th element. It panics when i is out of range.
func (d *Deque[T]) At(i int) T {
	ci, _ := d.locate(i)
	d.readMapEntry(ci)
	c, off, a := d.elemAddr(i)
	d.model.Read(a, d.elemSize)
	d.stats.Observe(opstats.OpAt, 1)
	return c.elems[off]
}

// Set overwrites the i-th element.
func (d *Deque[T]) Set(i int, x T) {
	ci, _ := d.locate(i)
	d.readMapEntry(ci)
	c, off, a := d.elemAddr(i)
	d.model.Write(a, d.elemSize)
	c.elems[off] = x
	d.stats.Observe(opstats.OpAt, 1)
}

// pushBackRaw appends without recording an interface-function stat.
func (d *Deque[T]) pushBackRaw(x T) {
	needChunk := len(d.chunks) == 0 || d.back() == len(d.chunks)*d.chunkCap
	d.model.Branch(siteMapGrow, needChunk)
	if needChunk {
		grew := len(d.chunks) == cap(d.chunks)
		d.chunks = append(d.chunks, d.newChunk())
		if grew {
			d.remapped()
		}
	}
	d.size++
	c, off, a := d.elemAddr(d.size - 1)
	d.model.Write(a, d.elemSize)
	c.elems[off] = x
}

// pushFrontRaw prepends without recording an interface-function stat.
func (d *Deque[T]) pushFrontRaw(x T) {
	needChunk := d.front == 0
	d.model.Branch(siteMapGrow, needChunk)
	if needChunk {
		grew := len(d.chunks) == cap(d.chunks)
		d.chunks = append([]*chunk[T]{d.newChunk()}, d.chunks...)
		if grew {
			d.remapped()
		}
		d.front = d.chunkCap
	}
	d.front--
	d.size++
	c, off, a := d.elemAddr(0)
	d.model.Write(a, d.elemSize)
	c.elems[off] = x
}

func (d *Deque[T]) popBackRaw() (x T, ok bool) {
	if d.size == 0 {
		return x, false
	}
	ci, _ := d.locate(d.size - 1)
	d.readMapEntry(ci)
	c, off, a := d.elemAddr(d.size - 1)
	d.model.Read(a, d.elemSize)
	x = c.elems[off]
	d.size--
	if off == 0 {
		d.model.Free(c.addr, uint64(d.chunkCap)*d.elemSize)
		d.chunks = d.chunks[:ci]
	}
	if d.size == 0 {
		d.releaseAll()
	}
	return x, true
}

func (d *Deque[T]) popFrontRaw() (x T, ok bool) {
	if d.size == 0 {
		return x, false
	}
	d.readMapEntry(0)
	c, _, a := d.elemAddr(0)
	d.model.Read(a, d.elemSize)
	x = c.elems[d.front]
	d.front++
	d.size--
	if d.front == d.chunkCap {
		d.model.Free(c.addr, uint64(d.chunkCap)*d.elemSize)
		d.chunks = d.chunks[1:]
		d.front = 0
	}
	if d.size == 0 {
		d.releaseAll()
	}
	return x, true
}

func (d *Deque[T]) releaseAll() {
	for _, c := range d.chunks {
		d.model.Free(c.addr, uint64(d.chunkCap)*d.elemSize)
	}
	d.chunks = nil
	d.front = 0
}

// PushBack appends x.
func (d *Deque[T]) PushBack(x T) {
	d.pushBackRaw(x)
	d.stats.Observe(opstats.OpPushBack, 1)
	d.stats.NoteLen(d.size)
}

// PushFront prepends x in O(1), the headline advantage over vector.
func (d *Deque[T]) PushFront(x T) {
	d.pushFrontRaw(x)
	d.stats.Observe(opstats.OpPushFront, 1)
	d.stats.NoteLen(d.size)
}

// PopBack removes and returns the last element; ok is false when empty.
func (d *Deque[T]) PopBack() (x T, ok bool) {
	x, ok = d.popBackRaw()
	if ok {
		d.stats.Observe(opstats.OpPopBack, 1)
	}
	return x, ok
}

// PopFront removes and returns the first element; ok is false when empty.
func (d *Deque[T]) PopFront() (x T, ok bool) {
	x, ok = d.popFrontRaw()
	if ok {
		d.stats.Observe(opstats.OpPopFront, 1)
	}
	return x, ok
}

// scan models a linear pass over the first n elements: within each chunk
// the data streams like a vector (one range read per chunk segment), while
// the iterator still executes one chunk-boundary branch per element and one
// map-entry read per chunk crossed — deque's small per-element tax over
// vector's flat scan.
func (d *Deque[T]) scan(n int, hit bool) {
	if n <= 0 {
		return
	}
	for i := 0; i < n; {
		ci, off := d.locate(i)
		d.readMapEntry(ci)
		c := d.chunks[ci]
		segLen := d.chunkCap - off
		if i+segLen > n {
			segLen = n - i
		}
		d.model.Read(c.addr+mem.Addr(uint64(off)*d.elemSize), uint64(segLen)*d.elemSize)
		for k := 0; k < segLen; k++ {
			d.model.Branch(siteBoundary, off+k == d.chunkCap-1) // iterator ++ boundary check
		}
		i += segLen
	}
	// The comparison loop's final branch outcome.
	d.model.Branch(siteFindCmp, hit)
}

// touchPos models a read+write pair at a logical position during a shift.
func (d *Deque[T]) touchPos(i int) {
	_, _, a := d.elemAddr(i)
	d.model.Read(a, d.elemSize)
	d.model.Write(a, d.elemSize)
}

// Insert places x before position i, shifting whichever side is smaller,
// matching the libstdc++ strategy. The cost is the number of shifted
// elements plus one.
func (d *Deque[T]) Insert(i int, x T) {
	if i < 0 {
		i = 0
	}
	if i > d.size {
		i = d.size
	}
	var moved uint64
	switch {
	case i == 0:
		d.pushFrontRaw(x)
	case i == d.size:
		d.pushBackRaw(x)
	case i < d.size-i:
		// Shift the front side left by one.
		var zero T
		d.pushFrontRaw(zero)
		for k := 0; k < i; k++ {
			moved++
			d.touchPos(k)
			d.put(k, d.get(k+1))
		}
		d.touchPos(i)
		d.put(i, x)
	default:
		// Shift the back side right by one.
		var zero T
		d.pushBackRaw(zero)
		for k := d.size - 1; k > i; k-- {
			moved++
			d.touchPos(k)
			d.put(k, d.get(k-1))
		}
		d.touchPos(i)
		d.put(i, x)
	}
	d.stats.Observe(opstats.OpInsert, moved+1)
	d.stats.NoteLen(d.size)
}

// Erase removes the element at position i, shifting the smaller side; it
// returns false when i is out of range.
func (d *Deque[T]) Erase(i int) bool {
	if i < 0 || i >= d.size {
		return false
	}
	var moved uint64
	if i < d.size-i-1 {
		for k := i; k > 0; k-- {
			moved++
			d.touchPos(k)
			d.put(k, d.get(k-1))
		}
		d.popFrontRaw()
	} else {
		for k := i; k < d.size-1; k++ {
			moved++
			d.touchPos(k)
			d.put(k, d.get(k+1))
		}
		d.popBackRaw()
	}
	d.stats.Observe(opstats.OpErase, moved+1)
	return true
}

// Find scans from the front and returns the position of the first element
// satisfying eq, or -1.
func (d *Deque[T]) Find(eq func(T) bool) int {
	idx := -1
	for i := 0; i < d.size; i++ {
		if eq(d.get(i)) {
			idx = i
			break
		}
	}
	touched := uint64(d.size)
	if idx >= 0 {
		touched = uint64(idx + 1)
	}
	d.scan(int(touched), idx >= 0)
	d.stats.Observe(opstats.OpFind, touched)
	return idx
}

// FindErase removes the first element satisfying eq and reports whether one
// was found, as a single erase interface call covering scan plus shift.
func (d *Deque[T]) FindErase(eq func(T) bool) bool {
	found := -1
	for i := 0; i < d.size; i++ {
		if eq(d.get(i)) {
			found = i
			break
		}
	}
	touched := uint64(d.size)
	if found >= 0 {
		touched = uint64(found + 1)
	}
	d.scan(int(touched), found >= 0)
	if found < 0 {
		d.stats.Observe(opstats.OpErase, touched)
		return false
	}
	var moved uint64
	if found < d.size-found-1 {
		for k := found; k > 0; k-- {
			moved++
			d.touchPos(k)
			d.put(k, d.get(k-1))
		}
		d.popFrontRaw()
	} else {
		for k := found; k < d.size-1; k++ {
			moved++
			d.touchPos(k)
			d.put(k, d.get(k+1))
		}
		d.popBackRaw()
	}
	d.stats.Observe(opstats.OpErase, touched+moved)
	return true
}

// Iterate visits up to n elements from the front, calling fn for each, and
// returns the number visited. n < 0 visits all elements.
func (d *Deque[T]) Iterate(n int, fn func(T)) int {
	if n < 0 || n > d.size {
		n = d.size
	}
	d.scan(n, false)
	for i := 0; i < n; i++ {
		if fn != nil {
			fn(d.get(i))
		}
	}
	d.stats.Observe(opstats.OpIterate, uint64(n))
	return n
}

// Clear removes all elements and frees every chunk and the map.
func (d *Deque[T]) Clear() {
	d.releaseAll()
	if d.mapBytes > 0 {
		d.model.Free(d.mapAddr, d.mapBytes)
		d.mapAddr = 0
		d.mapBytes = 0
	}
	d.size = 0
	d.stats.Observe(opstats.OpClear, 1)
}

// Values returns a copy of the contents in order. Intended for tests.
func (d *Deque[T]) Values() []T {
	out := make([]T, 0, d.size)
	for i := 0; i < d.size; i++ {
		out = append(out, d.get(i))
	}
	return out
}
