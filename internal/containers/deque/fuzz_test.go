package deque

import "testing"

// FuzzDequeOps drives the deque with an arbitrary byte-encoded operation
// stream against a slice model.
func FuzzDequeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		d := New[int](nil, 8)
		var ref []int
		for i, b := range ops {
			switch b % 6 {
			case 0:
				d.PushBack(i)
				ref = append(ref, i)
			case 1:
				d.PushFront(i)
				ref = append([]int{i}, ref...)
			case 2:
				if len(ref) > 0 {
					x, _ := d.PopBack()
					if x != ref[len(ref)-1] {
						t.Fatalf("PopBack = %d, want %d", x, ref[len(ref)-1])
					}
					ref = ref[:len(ref)-1]
				}
			case 3:
				if len(ref) > 0 {
					x, _ := d.PopFront()
					if x != ref[0] {
						t.Fatalf("PopFront = %d, want %d", x, ref[0])
					}
					ref = ref[1:]
				}
			case 4:
				pos := 0
				if len(ref) > 0 {
					pos = int(b) % (len(ref) + 1)
				}
				d.Insert(pos, i)
				ref = append(ref, 0)
				copy(ref[pos+1:], ref[pos:])
				ref[pos] = i
			case 5:
				if len(ref) > 0 {
					pos := int(b) % len(ref)
					d.Erase(pos)
					ref = append(ref[:pos], ref[pos+1:]...)
				}
			}
			if d.Len() != len(ref) {
				t.Fatalf("step %d: Len = %d, want %d", i, d.Len(), len(ref))
			}
		}
		got := d.Values()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("contents[%d] = %d, want %d", i, got[i], ref[i])
			}
		}
	})
}
