package deque

import "testing"

func TestIterVisitsAllInOrderAcrossChunks(t *testing.T) {
	d := New[int](nil, 8) // 64 elements per chunk: 200 spans 4 chunks
	for i := 0; i < 200; i++ {
		d.PushBack(i)
	}
	d.PushFront(-1)
	it := d.Begin()
	x, ok := it.Next()
	if !ok || x != -1 {
		t.Fatalf("front = %d,%v", x, ok)
	}
	for i := 0; i < 200; i++ {
		x, ok = it.Next()
		if !ok || x != i {
			t.Fatalf("step %d: %d,%v", i, x, ok)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator ran past the end")
	}
}

func TestIterEmpty(t *testing.T) {
	d := New[int](nil, 8)
	it := d.Begin()
	if _, ok := it.Next(); ok {
		t.Fatal("empty deque yielded an element")
	}
	var zero Iter[int]
	if _, ok := zero.Next(); ok {
		t.Fatal("zero iterator yielded an element")
	}
}
