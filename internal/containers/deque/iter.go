package deque

// Iter is a forward iterator over a deque. Invalidated by any mutation.
type Iter[T any] struct {
	d   *Deque[T]
	pos int
}

// Begin returns an iterator at the first element.
func (d *Deque[T]) Begin() Iter[T] { return Iter[T]{d: d} }

// Next returns the current element and advances; ok is false past the end.
// Each advance reads one element and executes the chunk-boundary check of
// the ++ operator; crossing into a new chunk also reads the map entry.
func (it *Iter[T]) Next() (x T, ok bool) {
	if it.d == nil || it.pos >= it.d.size {
		return x, false
	}
	ci, off := it.d.locate(it.pos)
	atBoundary := off == 0 || it.pos == 0
	it.d.model.Branch(siteBoundary, atBoundary)
	if atBoundary {
		it.d.readMapEntry(ci)
	}
	c, _, a := it.d.elemAddr(it.pos)
	it.d.model.Read(a, it.d.elemSize)
	x = c.elems[off]
	it.pos++
	return x, true
}
