package deque

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/opstats"
)

func checkEqual(t *testing.T, d *Deque[int], ref []int, ctx string) {
	t.Helper()
	if d.Len() != len(ref) {
		t.Fatalf("%s: Len = %d, want %d", ctx, d.Len(), len(ref))
	}
	got := d.Values()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("%s: contents %v, want %v", ctx, got, ref)
		}
	}
}

func TestPushBothEnds(t *testing.T) {
	d := New[int](nil, 8)
	for i := 1; i <= 200; i++ {
		d.PushBack(i)
		d.PushFront(-i)
	}
	if d.Len() != 400 {
		t.Fatalf("Len = %d, want 400", d.Len())
	}
	if d.At(0) != -200 {
		t.Fatalf("front = %d, want -200", d.At(0))
	}
	if d.At(399) != 200 {
		t.Fatalf("back = %d, want 200", d.At(399))
	}
}

func TestPopBothEnds(t *testing.T) {
	d := New[int](nil, 8)
	for i := 0; i < 300; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 150; i++ {
		x, ok := d.PopFront()
		if !ok || x != i {
			t.Fatalf("PopFront #%d = %d,%v", i, x, ok)
		}
	}
	for i := 299; i >= 150; i-- {
		x, ok := d.PopBack()
		if !ok || x != i {
			t.Fatalf("PopBack = %d,%v want %d", x, ok, i)
		}
	}
	if _, ok := d.PopBack(); ok {
		t.Fatal("PopBack on empty succeeded")
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("PopFront on empty succeeded")
	}
}

func TestInsertMiddle(t *testing.T) {
	d := New[int](nil, 8)
	for i := 0; i < 9; i++ {
		d.PushBack(i)
	}
	d.Insert(2, 77) // near front: shifts front side
	ref := []int{0, 1, 77, 2, 3, 4, 5, 6, 7, 8}
	checkEqual(t, d, ref, "front-side insert")
	d.Insert(8, 88) // near back: shifts back side
	ref = []int{0, 1, 77, 2, 3, 4, 5, 6, 88, 7, 8}
	checkEqual(t, d, ref, "back-side insert")
}

func TestEraseMiddle(t *testing.T) {
	d := New[int](nil, 8)
	for i := 0; i < 10; i++ {
		d.PushBack(i)
	}
	d.Erase(1) // near front
	checkEqual(t, d, []int{0, 2, 3, 4, 5, 6, 7, 8, 9}, "front-side erase")
	d.Erase(7) // near back
	checkEqual(t, d, []int{0, 2, 3, 4, 5, 6, 7, 9}, "back-side erase")
	if d.Erase(99) || d.Erase(-1) {
		t.Fatal("out-of-range erase succeeded")
	}
}

func TestFindAndIterate(t *testing.T) {
	d := New[int](nil, 8)
	for i := 0; i < 500; i++ {
		d.PushBack(i * 2)
	}
	if idx := d.Find(func(x int) bool { return x == 400 }); idx != 200 {
		t.Fatalf("Find = %d, want 200", idx)
	}
	if idx := d.Find(func(x int) bool { return x == 401 }); idx != -1 {
		t.Fatalf("Find missing = %d, want -1", idx)
	}
	sum := 0
	d.Iterate(5, func(x int) { sum += x })
	if sum != 0+2+4+6+8 {
		t.Fatalf("sum = %d", sum)
	}
	st := d.Stats()
	if st.Count[opstats.OpFind] != 2 || st.Count[opstats.OpIterate] != 1 {
		t.Fatalf("op counts: %v", st.Count)
	}
}

func TestSetAndAt(t *testing.T) {
	d := New[int](nil, 8)
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	d.Set(40, 999)
	if d.At(40) != 999 {
		t.Fatalf("At(40) = %d after Set", d.At(40))
	}
}

func TestMemoryLifecycle(t *testing.T) {
	cm := mem.NewCounting()
	d := New[uint64](cm, 8)
	for i := 0; i < 1000; i++ {
		d.PushFront(uint64(i))
		d.PushBack(uint64(i))
	}
	for i := 0; i < 500; i++ {
		d.PopFront()
		d.PopBack()
	}
	d.Clear()
	if cm.Live != 0 {
		t.Fatalf("leaked %d simulated bytes", cm.Live)
	}
}

func TestNoFullCopyOnGrowth(t *testing.T) {
	// Unlike vector, deque growth only reallocates the chunk map, never the
	// elements: pushing N elements should allocate ~N/chunkCap chunks and a
	// few maps, with total allocated bytes far below 2x payload.
	cm := mem.NewCounting()
	d := New[uint64](cm, 8)
	for i := 0; i < 10000; i++ {
		d.PushBack(uint64(i))
	}
	payload := uint64(10000 * 8)
	if cm.WriteB > 3*payload {
		t.Fatalf("deque wrote %d bytes for %d payload; copies too large", cm.WriteB, payload)
	}
}

func TestDifferentialAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := New[int](nil, 8)
	var ref []int
	for step := 0; step < 6000; step++ {
		switch op := rng.Intn(8); {
		case op == 0 || len(ref) == 0:
			x := rng.Intn(1000)
			d.PushBack(x)
			ref = append(ref, x)
		case op == 1:
			x := rng.Intn(1000)
			d.PushFront(x)
			ref = append([]int{x}, ref...)
		case op == 2:
			i := rng.Intn(len(ref) + 1)
			x := rng.Intn(1000)
			d.Insert(i, x)
			ref = append(ref, 0)
			copy(ref[i+1:], ref[i:])
			ref[i] = x
		case op == 3:
			i := rng.Intn(len(ref))
			d.Erase(i)
			ref = append(ref[:i], ref[i+1:]...)
		case op == 4:
			d.PopFront()
			ref = ref[1:]
		case op == 5:
			d.PopBack()
			ref = ref[:len(ref)-1]
		case op == 6:
			i := rng.Intn(len(ref))
			if got := d.At(i); got != ref[i] {
				t.Fatalf("step %d: At(%d) = %d, want %d", step, i, got, ref[i])
			}
		default:
			i := rng.Intn(len(ref))
			x := rng.Intn(1000)
			d.Set(i, x)
			ref[i] = x
		}
		if d.Len() != len(ref) {
			t.Fatalf("step %d (op stream): Len = %d, want %d", step, d.Len(), len(ref))
		}
	}
	checkEqual(t, d, ref, "final")
}

func TestQuickFrontBackSymmetry(t *testing.T) {
	f := func(xs []uint16) bool {
		d := New[uint16](nil, 2)
		for _, x := range xs {
			d.PushFront(x)
		}
		for _, x := range xs {
			got, ok := d.PopBack()
			if !ok || got != x {
				return false
			}
		}
		return d.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallElementChunking(t *testing.T) {
	// elemSize larger than the chunk payload must still work (1 elem/chunk).
	d := New[[128]byte](nil, 1024)
	var x [128]byte
	for i := 0; i < 10; i++ {
		x[0] = byte(i)
		d.PushBack(x)
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.At(3)[0] != 3 {
		t.Fatal("wrong element")
	}
}
