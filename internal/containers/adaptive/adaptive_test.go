package adaptive

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/workloads/phases"
)

// switchAfter is a deterministic suggester that keeps blessing the current
// kind for the first n evaluations and then advises `then` forever — the
// minimal phase-change stand-in for driving migrations on demand in tests.
type switchAfter struct {
	n    int
	then adt.Kind
	seen int
}

func (s *switchAfter) suggest(p *profile.Profile, arch string) (core.Suggestion, error) {
	s.seen++
	to := p.Kind
	if s.seen > s.n {
		to = s.then
	}
	return core.Suggestion{Original: p.Kind, Suggested: to, Confidence: 1, Replace: to != p.Kind}, nil
}

func newAdaptive(to adt.Kind, from adt.Kind, orderAware bool) *Container {
	m := machine.New(machine.Core2())
	sw := &switchAfter{n: 3, then: to}
	return New(m, Config{
		Kind:       from,
		ElemSize:   8,
		Context:    "test/adaptive",
		OrderAware: orderAware,
		Window:     16,
		Detector:   drift.Config{Window: 1, Hysteresis: 1},
		Suggest:    sw.suggest,
		BatchSize:  4,
	})
}

// TestAdaptivePhasedemoMigratesOnce drives the canonical two-phase workload
// and checks the full loop end to end: the rules advisor flags the phase
// change, the container migrates vector -> hash_set exactly once, keeps its
// contents, and the advisor covered every window.
func TestAdaptivePhasedemoMigratesOnce(t *testing.T) {
	m := machine.New(machine.Core2())
	a := New(m, Config{
		Kind:     phases.Original,
		ElemSize: 8,
		Context:  phases.Context,
		Window:   64,
		Detector: drift.Config{Window: 2, Hysteresis: 2},
	})
	cfg := phases.Config{}
	phases.Drive(a, cfg)
	a.FlushWindow()

	migs := a.Migrations()
	if len(migs) != 1 {
		t.Fatalf("migrations = %+v, want exactly one", migs)
	}
	mig := migs[0]
	if mig.From != adt.KindVector || mig.To != adt.KindHashSet {
		t.Fatalf("migrated %v -> %v, want vector -> hash_set", mig.From, mig.To)
	}
	if mig.EndOp == 0 || mig.EndOp <= mig.StartOp {
		t.Fatalf("migration did not finalize: %+v", mig)
	}
	if a.Kind() != adt.KindHashSet || a.Migrating() {
		t.Fatalf("final state: kind %v migrating %v", a.Kind(), a.Migrating())
	}
	if a.DriftSkipped() != 0 {
		t.Fatalf("advisor skipped %d windows", a.DriftSkipped())
	}
	// The working set survived the move: every key the build phase inserted
	// is still found, and the length matches the distinct-key count.
	want := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		k := uint64(i%256) * 2654435761 % (256 * 16)
		want[k] = true
		if !a.Find(k) {
			t.Fatalf("key %d lost in migration", k)
		}
	}
	if a.Len() != len(want) {
		t.Fatalf("len = %d, want %d", a.Len(), len(want))
	}
}

// TestAdaptiveWindowsStayBoundedAcrossSwap is the re-anchoring regression
// test: if the window baselines were not re-anchored after the swap, the
// first post-migration window would subtract the retired backend's large
// cumulative counters from the fresh backend's near-zero ones and
// underflow into astronomically large deltas.
func TestAdaptiveWindowsStayBoundedAcrossSwap(t *testing.T) {
	m := machine.New(machine.Core2())
	ring := profile.NewWindowRing(1024)
	a := New(m, Config{
		Kind:     phases.Original,
		ElemSize: 8,
		Context:  phases.Context,
		Window:   64,
		Detector: drift.Config{Window: 2, Hysteresis: 2},
		Sink:     ring,
	})
	phases.Drive(a, phases.Config{})
	a.FlushWindow()

	if len(a.Migrations()) != 1 {
		t.Fatalf("migrations = %+v", a.Migrations())
	}
	recs := ring.Records()
	if len(recs) == 0 {
		t.Fatal("no windows emitted")
	}
	kinds := map[adt.Kind]bool{}
	for _, w := range recs {
		kinds[w.Kind] = true
		// Migration moves add backend-internal operations on top of the 64
		// interface invocations (drain + insert per moved element), so allow
		// generous headroom — underflow would be ~2^64, not a small factor.
		if tc := w.Stats.TotalCalls(); tc > 1<<16 {
			t.Fatalf("window %d total calls %d: baseline underflow after swap", w.Seq, tc)
		}
		if w.Cycles < 0 {
			t.Fatalf("window %d negative cycles %f", w.Seq, w.Cycles)
		}
	}
	if !kinds[adt.KindVector] || !kinds[adt.KindHashSet] {
		t.Fatalf("timeline kinds %v: want both vector and hash_set windows", kinds)
	}
	// Window sequence numbers stay continuous across the swap.
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("window seq gap: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

// TestAdaptiveSeqToSeqAgreesWithStatic: during a vector -> list / deque
// migration every observation (return values, length, order checksums,
// partial front reads) must match a static sequence driven by the same
// stream — order is preserved through the two-backend split.
func TestAdaptiveSeqToSeqAgreesWithStatic(t *testing.T) {
	for _, to := range []adt.Kind{adt.KindList, adt.KindDeque} {
		a := newAdaptive(to, adt.KindVector, true) // seq->seq rows are order-safe
		ref := adt.New(adt.KindVector, nil, 8)
		rng := rand.New(rand.NewSource(int64(to) * 31))
		migrated := false
		for step := 0; step < 3000; step++ {
			op := rng.Intn(8)
			key := uint64(rng.Intn(200))
			pos := rng.Intn(ref.Len() + 1)
			var got, want bool
			switch op {
			case 0, 1:
				a.Insert(key)
				ref.Insert(key)
			case 2:
				a.PushFront(key)
				ref.PushFront(key)
			case 3:
				a.InsertAt(pos, key)
				ref.InsertAt(pos, key)
			case 4:
				got, want = a.Erase(key), ref.Erase(key)
			case 5:
				got, want = a.EraseFront(), ref.EraseFront()
			case 6:
				got, want = a.Find(key), ref.Find(key)
			default:
				n := rng.Intn(24)
				if g, w := a.Iterate(n), ref.Iterate(n); g != w {
					t.Fatalf("to=%v step %d: partial iterate %d vs %d", to, step, g, w)
				}
			}
			if got != want {
				t.Fatalf("to=%v step %d op %d: %v vs %v", to, step, op, got, want)
			}
			if a.Len() != ref.Len() {
				t.Fatalf("to=%v step %d: len %d vs %d", to, step, a.Len(), ref.Len())
			}
			if a.Migrating() {
				migrated = true
				if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
					t.Fatalf("to=%v step %d: mid-migration checksum %d vs %d", to, step, g, w)
				}
				ref.Iterate(-1) // keep the op streams aligned
			}
		}
		if !migrated || a.Kind() != to {
			t.Fatalf("to=%v: migration did not run mid-stream (kind %v)", to, a.Kind())
		}
		if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
			t.Fatalf("to=%v: final checksum %d vs %d", to, g, w)
		}
	}
}

// TestAdaptiveSortedToSortedAgreesWithStatic: a set -> avl_set / btree_set /
// sorted_vec migration is order-preserving (both iterate in sorted order),
// so even EraseFront — remove the global minimum — must match a static set
// mid-migration.
func TestAdaptiveSortedToSortedAgreesWithStatic(t *testing.T) {
	for _, to := range []adt.Kind{adt.KindAVLSet, adt.KindBTreeSet, adt.KindSortedVec} {
		a := newAdaptive(to, adt.KindSet, true)
		ref := adt.New(adt.KindSet, nil, 8)
		rng := rand.New(rand.NewSource(int64(to) * 17))
		migrated := false
		for step := 0; step < 3000; step++ {
			op := rng.Intn(6)
			key := uint64(rng.Intn(300))
			var got, want bool
			switch op {
			case 0, 1:
				a.Insert(key)
				ref.Insert(key)
			case 2:
				got, want = a.Erase(key), ref.Erase(key)
			case 3:
				got, want = a.EraseFront(), ref.EraseFront()
			case 4:
				got, want = a.Find(key), ref.Find(key)
			default:
				if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
					t.Fatalf("to=%v step %d: checksum %d vs %d", to, step, g, w)
				}
			}
			if got != want {
				t.Fatalf("to=%v step %d op %d: %v vs %v", to, step, op, got, want)
			}
			if a.Len() != ref.Len() {
				t.Fatalf("to=%v step %d: len %d vs %d", to, step, a.Len(), ref.Len())
			}
			migrated = migrated || a.Migrating()
		}
		if !migrated || a.Kind() != to {
			t.Fatalf("to=%v: migration did not run mid-stream (kind %v)", to, a.Kind())
		}
		if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
			t.Fatalf("to=%v: final checksum %d vs %d", to, g, w)
		}
	}
}

// TestAdaptiveFlatSortedAgreesWithStatic: migrations into and back out of
// the flat B+-tree are order-preserving (set and flat_btree_set both
// iterate in sorted order), so every observation — including EraseFront's
// remove-the-minimum — must match a static set mid-migration.
func TestAdaptiveFlatSortedAgreesWithStatic(t *testing.T) {
	for _, dir := range []struct {
		name     string
		from, to adt.Kind
	}{
		{"into flat", adt.KindSet, adt.KindFlatBTreeSet},
		{"btree into flat", adt.KindBTreeSet, adt.KindFlatBTreeSet},
		{"out of flat", adt.KindFlatBTreeSet, adt.KindSet},
	} {
		t.Run(dir.name, func(t *testing.T) {
			a := newAdaptive(dir.to, dir.from, true)
			ref := adt.New(adt.KindSet, nil, 8)
			rng := rand.New(rand.NewSource(int64(dir.to) * 23))
			migrated := false
			for step := 0; step < 3000; step++ {
				op := rng.Intn(6)
				key := uint64(rng.Intn(300))
				var got, want bool
				switch op {
				case 0, 1:
					a.Insert(key)
					ref.Insert(key)
				case 2:
					got, want = a.Erase(key), ref.Erase(key)
				case 3:
					got, want = a.EraseFront(), ref.EraseFront()
				case 4:
					got, want = a.Find(key), ref.Find(key)
				default:
					if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
						t.Fatalf("step %d: checksum %d vs %d", step, g, w)
					}
				}
				if got != want {
					t.Fatalf("step %d op %d: %v vs %v", step, op, got, want)
				}
				if a.Len() != ref.Len() {
					t.Fatalf("step %d: len %d vs %d", step, a.Len(), ref.Len())
				}
				migrated = migrated || a.Migrating()
			}
			if !migrated || a.Kind() != dir.to {
				t.Fatalf("migration did not run mid-stream (kind %v)", a.Kind())
			}
			if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
				t.Fatalf("final checksum %d vs %d", g, w)
			}
		})
	}
}

// TestAdaptiveFlatHashAgreesWithStatic: chained hash -> flat hash and back.
// EraseFront victims are implementation-defined for hash kinds, so the
// stream stays keyed; membership, length, and the order-independent
// checksum must match a static chained table throughout.
func TestAdaptiveFlatHashAgreesWithStatic(t *testing.T) {
	for _, dir := range []struct {
		name     string
		from, to adt.Kind
	}{
		{"into flat", adt.KindHashSet, adt.KindFlatHashSet},
		{"out of flat", adt.KindFlatHashSet, adt.KindHashSet},
	} {
		t.Run(dir.name, func(t *testing.T) {
			a := newAdaptive(dir.to, dir.from, false)
			ref := adt.New(adt.KindHashSet, nil, 8)
			rng := rand.New(rand.NewSource(int64(dir.to) * 41))
			migrated := false
			for step := 0; step < 3000; step++ {
				op := rng.Intn(6)
				key := uint64(rng.Intn(300))
				var got, want bool
				switch op {
				case 0, 1:
					a.Insert(key)
					ref.Insert(key)
				case 2:
					got, want = a.Erase(key), ref.Erase(key)
				case 3, 4:
					got, want = a.Find(key), ref.Find(key)
				default:
					if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
						t.Fatalf("step %d: checksum %d vs %d", step, g, w)
					}
				}
				if got != want {
					t.Fatalf("step %d op %d: %v vs %v", step, op, got, want)
				}
				if a.Len() != ref.Len() {
					t.Fatalf("step %d: len %d vs %d", step, a.Len(), ref.Len())
				}
				migrated = migrated || a.Migrating()
			}
			if !migrated || a.Kind() != dir.to {
				t.Fatalf("migration did not run mid-stream (kind %v)", a.Kind())
			}
			if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
				t.Fatalf("final checksum %d vs %d", g, w)
			}
		})
	}
}

// TestAdaptiveRulesUpgradeToFlatAndBack closes the loop the tentpole is
// about, with no scripted suggester: the default rules advisor watches a
// chained hash set thrash the caches on a large find-heavy working set and
// hot-migrates it to the flat robin-hood table; when the workload turns
// into scanning, the same advisor migrates the flat table out to a vector.
func TestAdaptiveRulesUpgradeToFlatAndBack(t *testing.T) {
	m := machine.New(machine.Core2())
	a := New(m, Config{
		Kind:     adt.KindHashSet,
		ElemSize: 8,
		Context:  "test/missheavy",
		Window:   64,
		Detector: drift.Config{Window: 2, Hysteresis: 2},
	})
	const n = 5000 // MaxLen must clear the 1<<12 miss-heavy floor
	for i := uint64(0); i < n; i++ {
		a.Insert(i * 2654435761)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1600; i++ {
		a.Find(uint64(rng.Intn(n)) * 2654435761)
	}
	migs := a.Migrations()
	if len(migs) != 1 || migs[0].From != adt.KindHashSet || migs[0].To != adt.KindFlatHashSet {
		t.Fatalf("after find-heavy phase: migrations = %+v, want hash_set -> flat_hash_set", migs)
	}
	if migs[0].EndOp == 0 {
		t.Fatalf("flat migration still in flight: %+v", migs[0])
	}
	// Phase change: the workload becomes iteration over the whole set.
	for i := 0; i < 1600; i++ {
		a.Iterate(64)
	}
	a.FlushWindow()
	migs = a.Migrations()
	if len(migs) != 2 || migs[1].From != adt.KindFlatHashSet || migs[1].To != adt.KindVector {
		t.Fatalf("after scan-heavy phase: migrations = %+v, want flat_hash_set -> vector", migs)
	}
	if a.Len() != n {
		t.Fatalf("len = %d, want %d", a.Len(), n)
	}
}

// TestAdaptiveCrossFamilyAgreesWithStatic: vector -> hash_set is the
// order-oblivious jump. With duplicate-free keys (the paper's precondition
// for the replacement) membership, length, and the order-independent full
// checksum must match the static original mid-migration.
func TestAdaptiveCrossFamilyAgreesWithStatic(t *testing.T) {
	a := newAdaptive(adt.KindHashSet, adt.KindVector, false)
	ref := adt.New(adt.KindVector, nil, 8)
	rng := rand.New(rand.NewSource(5))
	next := uint64(1)
	live := []uint64{}
	migrated := false
	for step := 0; step < 3000; step++ {
		op := rng.Intn(6)
		var got, want bool
		switch op {
		case 0, 1:
			a.Insert(next)
			ref.Insert(next)
			live = append(live, next)
			next++
		case 2:
			key := next + uint64(rng.Intn(50)) // probably absent
			if len(live) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(live))
				key = live[i]
				live = append(live[:i], live[i+1:]...)
			}
			got, want = a.Erase(key), ref.Erase(key)
		case 3:
			key := next + uint64(rng.Intn(50))
			if len(live) > 0 && rng.Intn(2) == 0 {
				key = live[rng.Intn(len(live))]
			}
			got, want = a.Find(key), ref.Find(key)
		default:
			if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
				t.Fatalf("step %d: checksum %d vs %d", step, g, w)
			}
		}
		if got != want {
			t.Fatalf("step %d op %d: %v vs %v", step, op, got, want)
		}
		if a.Len() != ref.Len() {
			t.Fatalf("step %d: len %d vs %d", step, a.Len(), ref.Len())
		}
		migrated = migrated || a.Migrating()
	}
	if !migrated || a.Kind() != adt.KindHashSet {
		t.Fatalf("migration did not run mid-stream (kind %v)", a.Kind())
	}
}

// TestAdaptiveRespectsOrderAwareness: an order-aware container must refuse
// the order-oblivious vector -> hash_set row even when the advice insists.
func TestAdaptiveRespectsOrderAwareness(t *testing.T) {
	a := newAdaptive(adt.KindHashSet, adt.KindVector, true)
	for i := uint64(0); i < 600; i++ {
		a.Insert(i)
	}
	if len(a.Migrations()) != 0 || a.Kind() != adt.KindVector {
		t.Fatalf("order-aware container migrated: %+v", a.Migrations())
	}
	if _, _, illegal := a.IgnoredEvents(); illegal == 0 {
		t.Fatal("illegal replacement was never counted")
	}
}

// TestAdaptiveCooldownAbsorbsFlapping: advice that keeps flipping between
// vector and list (legal rows both ways) must not thrash the backend — the
// cooldown holds migrations apart.
func TestAdaptiveCooldownAbsorbsFlapping(t *testing.T) {
	m := machine.New(machine.Core2())
	flip := 0
	flapping := func(p *profile.Profile, arch string) (core.Suggestion, error) {
		flip++
		to := adt.KindList
		if flip%2 == 0 {
			to = adt.KindVector
		}
		return core.Suggestion{Original: p.Kind, Suggested: to, Confidence: 1, Replace: to != p.Kind}, nil
	}
	a := New(m, Config{
		Kind:        adt.KindVector,
		ElemSize:    8,
		Context:     "test/flap",
		Window:      16,
		Detector:    drift.Config{Window: 1, Hysteresis: 1},
		Suggest:     flapping,
		BatchSize:   4,
		CooldownOps: 4096,
	})
	for i := uint64(0); i < 4000; i++ {
		a.Insert(i)
	}
	if n := len(a.Migrations()); n > 2 {
		t.Fatalf("flapping advice caused %d migrations", n)
	}
	if _, cooldown, _ := a.IgnoredEvents(); cooldown == 0 {
		t.Fatal("cooldown never suppressed an event")
	}
}

// TestAdaptiveDetectorSettlesAfterSwap: the detector's view of the
// instance must show the migrated kind as both actual and advised — the
// mid-stream Kind change is the migration it asked for, not fresh drift.
func TestAdaptiveDetectorSettlesAfterSwap(t *testing.T) {
	m := machine.New(machine.Core2())
	a := New(m, Config{
		Kind:     phases.Original,
		ElemSize: 8,
		Context:  phases.Context,
		Window:   64,
		Detector: drift.Config{Window: 2, Hysteresis: 2},
	})
	phases.Drive(a, phases.Config{})
	a.FlushWindow()
	st, ok := a.Detector().Status(phases.Context + "#0")
	if !ok {
		t.Fatal("instance missing from detector")
	}
	if st.Kind != adt.KindHashSet || st.Current != adt.KindHashSet {
		t.Fatalf("detector unsettled after swap: %+v", st)
	}
	if st.Events != 1 || st.Streak != 0 {
		t.Fatalf("detector state machine: %+v", st)
	}
}

// FuzzAdaptiveMigration feeds byte-driven operation streams with a forced
// mid-stream phase flip and cross-checks the adaptive container against a
// static backend on every observation. Keys are duplicate-free so the
// cross-family comparison is exact.
func FuzzAdaptiveMigration(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 0, 1, 2, 3}, int64(1))
	f.Add([]byte{5, 4, 3, 2, 1, 0, 5, 4, 3, 2, 1, 0, 5, 4}, int64(2))
	f.Add([]byte{0, 0, 0, 0, 3, 3, 3, 3, 5, 5, 0, 0, 2, 2, 4, 4}, int64(3))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		targets := []adt.Kind{adt.KindHashSet, adt.KindSet, adt.KindAVLSet, adt.KindSortedVec}
		to := targets[uint64(seed)%uint64(len(targets))]
		a := newAdaptive(to, adt.KindVector, false)
		ref := adt.New(adt.KindVector, nil, 8)
		rng := rand.New(rand.NewSource(seed))
		next := uint64(1)
		var live []uint64
		for i, b := range ops {
			// Stretch each byte into several operations so short fuzz
			// inputs still cross window boundaries and migrate.
			for r := 0; r < 16; r++ {
				var got, want bool
				switch int(b+byte(r)) % 5 {
				case 0, 1:
					a.Insert(next)
					ref.Insert(next)
					live = append(live, next)
					next++
				case 2:
					key := next + uint64(rng.Intn(30))
					if len(live) > 0 && rng.Intn(2) == 0 {
						j := rng.Intn(len(live))
						key = live[j]
						live = append(live[:j], live[j+1:]...)
					}
					got, want = a.Erase(key), ref.Erase(key)
				case 3:
					key := next + uint64(rng.Intn(30))
					if len(live) > 0 && rng.Intn(2) == 0 {
						key = live[rng.Intn(len(live))]
					}
					got, want = a.Find(key), ref.Find(key)
				default:
					if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
						t.Fatalf("byte %d rep %d: checksum %d vs %d", i, r, g, w)
					}
				}
				if got != want {
					t.Fatalf("byte %d rep %d: %v vs %v", i, r, got, want)
				}
				if a.Len() != ref.Len() {
					t.Fatalf("byte %d rep %d: len %d vs %d", i, r, a.Len(), ref.Len())
				}
			}
		}
		if g, w := a.Iterate(-1), ref.Iterate(-1); g != w {
			t.Fatalf("final checksum %d vs %d", g, w)
		}
	})
}
