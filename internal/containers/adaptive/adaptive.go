// Package adaptive closes the profile → advice → replacement loop in
// process: a self-tuning container that hosts one of the static backends,
// profiles itself through snapshot windows, feeds the windows to a drift
// detector, and — when the detector confirms that the advised kind moved —
// hot-migrates its contents to the new backend while staying fully usable.
//
// The migration is amortized and incremental: both backends are live during
// the move, reads check the new backend then the old, and every interface
// operation moves a bounded batch of elements, so no single call absorbs an
// O(n) rebuild. Replacements respect the Table-1 matrix (including the
// order-obliviousness restriction) and a cooldown keeps flapping advice
// from thrashing the backend.
//
// Windowed profiling is the loop's clock, and two integration details keep
// it honest across a swap: window deltas are computed against a merged
// (monotone) statistics view while two backends are live, and when the
// swap finalizes the window baselines are re-anchored to the fresh backend
// (profile.Container.ReanchorWindow) so the next delta cannot underflow.
// The drift detector sees the timeline's Kind change mid-stream and treats
// it as the migration it asked for, not a new divergence.
package adaptive

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/machine"
	"repro/internal/opstats"
	"repro/internal/profile"
	"repro/internal/serve/flight"
)

// Config tunes an adaptive container. Kind, ElemSize, and Context are
// required; everything else has working defaults.
type Config struct {
	// Kind is the initial backend — what the programmer originally wrote.
	Kind adt.Kind
	// ElemSize is the simulated element size in bytes.
	ElemSize uint64
	// Context is the construction-site label profiling reports under.
	Context string
	// Instance is the construction ordinal at Context (0 for the first).
	Instance int
	// OrderAware marks the workload as dependent on iteration order,
	// restricting migrations to order-preserving replacement rows.
	OrderAware bool
	// Window is how many interface operations each profiling window covers
	// (default 64).
	Window int
	// Detector tunes the embedded drift detector (blend window, hysteresis,
	// gates). Its OnEvent and Events fields are honored in addition to the
	// container's own handling.
	Detector drift.Config
	// Suggest advises on each window blend; nil uses drift.Rules, the
	// model-free advisor.
	Suggest core.Suggester
	// Arch names the architecture the suggester evaluates for (default
	// "Core2").
	Arch string
	// BatchSize is how many elements each interface operation moves while a
	// migration is in flight (default 8).
	BatchSize int
	// CooldownOps is how many interface operations must pass after a
	// migration completes before the next may begin (default 4×Window).
	CooldownOps uint64
	// Sink, when non-nil, also receives every profiling window (an
	// exporter, a ring) alongside the internal drift detector.
	Sink profile.WindowSink
	// Journal, when non-nil, receives one flight.Record per migration
	// decision — applied, completed, and every skip with its reason — in
	// the same record shape the serving tier journals advise verdicts, so
	// one /debug/decisions-style view covers the whole
	// profile → advice → replacement loop.
	Journal *flight.Ring
}

func (c Config) withDefaults() Config {
	if c.Window < 1 {
		c.Window = 64
	}
	if c.Suggest == nil {
		c.Suggest = drift.Rules
	}
	if c.Arch == "" {
		c.Arch = "Core2"
	}
	if c.BatchSize < 1 {
		c.BatchSize = 8
	}
	if c.CooldownOps < 1 {
		c.CooldownOps = 4 * uint64(c.Window)
	}
	return c
}

// Migration records one completed (or in-flight) backend replacement.
type Migration struct {
	From       adt.Kind `json:"from"`
	To         adt.Kind `json:"to"`
	StartOp    uint64   `json:"start_op"` // interface ops when the drift confirmed
	EndOp      uint64   `json:"end_op"`   // ops when the swap finalized (0 while in flight)
	WindowSeq  int      `json:"window_seq"`
	Confidence float64  `json:"confidence"`
	Moved      int      `json:"moved"` // elements the migration transferred
}

// Container is the self-tuning adt.Container. It is not safe for
// concurrent use, matching every other container in the repository.
type Container struct {
	cfg  Config
	mig  *migrator
	prof *profile.Container
	det  *drift.Detector
	sink *drift.DetectorSink

	ops        uint64 // completed interface operations
	lastMigEnd uint64 // ops when the last migration finalized
	migrations []Migration

	// Event accounting: advice the container heard but did not act on.
	ignoredBusy     int // events during an in-flight migration
	ignoredCooldown int // events inside the post-migration cooldown
	ignoredIllegal  int // events outside the replacement matrix
}

// New builds an adaptive container on m.
func New(m *machine.Machine, cfg Config) *Container {
	cfg = cfg.withDefaults()
	a := &Container{cfg: cfg}

	userOnEvent := cfg.Detector.OnEvent
	dcfg := cfg.Detector
	// The container acts on events, so divergence is measured from the
	// backend actually running: advice that disagrees from the first
	// evaluation must fire too, not just later changes.
	dcfg.BaselineActual = true
	dcfg.OnEvent = func(ev drift.Event) {
		a.onDrift(ev)
		if userOnEvent != nil {
			userOnEvent(ev)
		}
	}
	a.det = drift.New(cfg.Suggest, dcfg)
	a.sink = a.det.Sink(cfg.Arch)

	base := m.Counters()
	a.mig = &migrator{
		model:    m,
		elemSize: cfg.ElemSize,
		cur:      adt.New(cfg.Kind, m, cfg.ElemSize),
		batch:    cfg.BatchSize,
	}
	a.prof = profile.WrapContainer(a.mig, m, cfg.Context, cfg.OrderAware)
	a.prof.AttributeConstruction(base)
	a.prof.EnableWindows(cfg.Window, cfg.Instance, profile.MultiWindowSink(a.sink, cfg.Sink))
	return a
}

// onDrift runs synchronously inside the detector when a window blend
// confirms new advice. It opens a migration only when the container is
// idle, out of cooldown, and the replacement row exists.
func (a *Container) onDrift(ev drift.Event) {
	// The journaled "from" is the backend running when the advice landed;
	// captured before begin so the record never depends on migrator
	// internals mid-transition.
	from := a.mig.Kind()
	switch {
	case a.mig.migrating():
		a.ignoredBusy++
		a.journal("busy", from, &ev, 0)
	case ev.To == from:
		// Advice caught up with a swap we already made; nothing to do.
		a.journal("caught-up", from, &ev, 0)
	case a.ops-a.lastMigEnd < a.cfg.CooldownOps && len(a.migrations) > 0:
		a.ignoredCooldown++
		a.journal("cooldown", from, &ev, 0)
	case !adt.CanReplace(from, ev.To, a.cfg.OrderAware) || !a.mig.canMigrate():
		a.ignoredIllegal++
		verdict := adt.ReplaceVerdict(from, ev.To, a.cfg.OrderAware)
		if verdict == adt.ReplaceOK {
			verdict = "source-undrainable" // legal row, but the backend cannot hand over
		}
		a.journal(verdict, from, &ev, 0)
	default:
		a.mig.begin(ev.To)
		a.migrations = append(a.migrations, Migration{
			From:       from,
			To:         ev.To,
			StartOp:    a.ops,
			WindowSeq:  ev.Seq,
			Confidence: ev.Confidence,
		})
		a.journal("applied", from, &ev, 0)
	}
}

// journal appends one migration decision to the configured flight ring.
// Nil ring (the default) costs one branch.
func (a *Container) journal(verdict string, from adt.Kind, ev *drift.Event, moved int) {
	if a.cfg.Journal == nil {
		return
	}
	rec := flight.Record{
		Source:   "migration",
		Verdict:  verdict,
		Context:  a.cfg.Context,
		Instance: fmt.Sprintf("%s#%d", a.cfg.Context, a.cfg.Instance),
		Kind:     from.String(),
		Moved:    moved,
	}
	if ev != nil {
		rec.Suggested = ev.To.String()
		rec.Confidence = ev.Confidence
		rec.WindowSeq = ev.Seq
		rec.Votes = ev.Votes
	}
	a.cfg.Journal.Append(rec)
}

// finishOp runs after every interface operation: it advances the op clock
// and settles a migration whose source just drained.
func (a *Container) finishOp() {
	a.ops++
	a.settle()
}

// settle performs the swap once the in-flight migration has drained its
// source: flush the partial window (computed against the merged stats),
// retire the source, re-anchor the window baselines on the fresh backend.
func (a *Container) settle() {
	if !a.mig.done {
		return
	}
	a.prof.FlushWindow()
	moved := a.mig.finalize()
	a.prof.ReanchorWindow()
	a.lastMigEnd = a.ops
	last := &a.migrations[len(a.migrations)-1]
	last.EndOp = a.ops
	last.Moved = moved
	a.journal("completed", last.From, &drift.Event{
		To: last.To, Confidence: last.Confidence, Seq: last.WindowSeq,
	}, moved)
}

// Kind reports the current backend's kind — the observable that changes
// when the container adapts.
func (a *Container) Kind() adt.Kind { return a.mig.Kind() }

// Insert implements adt.Container.
func (a *Container) Insert(key uint64) { a.prof.Insert(key); a.finishOp() }

// InsertAt implements adt.Container.
func (a *Container) InsertAt(pos int, key uint64) { a.prof.InsertAt(pos, key); a.finishOp() }

// PushFront implements adt.Container.
func (a *Container) PushFront(key uint64) { a.prof.PushFront(key); a.finishOp() }

// Erase implements adt.Container.
func (a *Container) Erase(key uint64) bool {
	ok := a.prof.Erase(key)
	a.finishOp()
	return ok
}

// EraseFront implements adt.Container.
func (a *Container) EraseFront() bool {
	ok := a.prof.EraseFront()
	a.finishOp()
	return ok
}

// Find implements adt.Container.
func (a *Container) Find(key uint64) bool {
	ok := a.prof.Find(key)
	a.finishOp()
	return ok
}

// Iterate implements adt.Container.
func (a *Container) Iterate(n int) uint64 {
	sum := a.prof.Iterate(n)
	a.finishOp()
	return sum
}

// Len implements adt.Container.
func (a *Container) Len() int { return a.prof.Len() }

// Clear implements adt.Container.
func (a *Container) Clear() { a.prof.Clear(); a.finishOp() }

// Stats implements adt.Container. While a migration is in flight this is
// the monotone merge of both live backends.
func (a *Container) Stats() *opstats.Stats { return a.prof.Stats() }

// Migrating reports whether a migration is in flight.
func (a *Container) Migrating() bool { return a.mig.migrating() }

// Migrations returns the replacement log, oldest first. An in-flight
// migration appears with EndOp zero.
func (a *Container) Migrations() []Migration {
	out := make([]Migration, len(a.migrations))
	copy(out, a.migrations)
	return out
}

// IgnoredEvents reports drift events the container heard but did not act
// on: confirmed while a migration was already in flight, inside the
// cooldown, or outside the replacement matrix.
func (a *Container) IgnoredEvents() (busy, cooldown, illegal int) {
	return a.ignoredBusy, a.ignoredCooldown, a.ignoredIllegal
}

// DriftSkipped reports how many windows the suggester failed to advise on
// (no model for the backend's kind) — zero when the advisor covers every
// kind the container passes through.
func (a *Container) DriftSkipped() uint64 { return a.sink.Skipped() }

// Detector exposes the embedded drift detector for status introspection.
func (a *Container) Detector() *drift.Detector { return a.det }

// Snapshot returns the lifetime profile of the container, like
// profile.Container.Snapshot.
func (a *Container) Snapshot() profile.Profile { return a.prof.Snapshot() }

// FlushWindow closes the current partial profiling window, for end-of-run
// reporting. An event confirmed by that flush can open a migration no
// further operation will ever pump, so any in-flight migration is driven to
// completion here — amortization is moot once the run is over.
func (a *Container) FlushWindow() {
	a.prof.FlushWindow()
	for a.mig.migrating() {
		a.mig.step()
		a.settle()
	}
}

// Ops returns the number of interface operations performed so far.
func (a *Container) Ops() uint64 { return a.ops }
