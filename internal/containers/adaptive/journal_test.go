package adaptive

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/drift"
	"repro/internal/machine"
	"repro/internal/serve/flight"
	"repro/internal/workloads/phases"
)

// TestMigrationJournal drives the canonical two-phase workload with a flight
// recorder attached and checks the migration loop leaves a full paper trail:
// one "applied" record when the drift event triggers the swap and one
// "completed" record when the background drain finalizes it, both naming the
// instance and the from -> to pair.
func TestMigrationJournal(t *testing.T) {
	ring := flight.NewRing(64, nil)
	m := machine.New(machine.Core2())
	a := New(m, Config{
		Kind:     phases.Original,
		ElemSize: 8,
		Context:  phases.Context,
		Instance: 3,
		Window:   64,
		Detector: drift.Config{Window: 2, Hysteresis: 2},
		Journal:  ring,
	})
	phases.Drive(a, phases.Config{})
	a.FlushWindow()

	if len(a.Migrations()) != 1 {
		t.Fatalf("migrations = %+v, want exactly one", a.Migrations())
	}
	recs := ring.Snapshot()
	var applied, completed *flight.Record
	for i := range recs {
		if recs[i].Source != "migration" {
			t.Fatalf("unexpected record source: %+v", recs[i])
		}
		switch recs[i].Verdict {
		case "applied":
			applied = &recs[i]
		case "completed":
			completed = &recs[i]
		}
	}
	if applied == nil || completed == nil {
		t.Fatalf("journal missing applied/completed records: %+v", recs)
	}
	wantInstance := phases.Context + "#3"
	for _, rec := range []*flight.Record{applied, completed} {
		if rec.Instance != wantInstance || rec.Context != phases.Context {
			t.Fatalf("record identity: %+v", rec)
		}
		if rec.Kind != adt.KindVector.String() || rec.Suggested != adt.KindHashSet.String() {
			t.Fatalf("record decision: %+v", rec)
		}
	}
	if applied.Seq >= completed.Seq {
		t.Fatalf("applied (%d) must precede completed (%d)", applied.Seq, completed.Seq)
	}
	if applied.Votes < 2 || applied.Confidence <= 0 {
		t.Fatalf("applied record lost the trigger provenance: %+v", applied)
	}
	if completed.Moved <= 0 {
		t.Fatalf("completed record moved %d elements", completed.Moved)
	}
}

// TestMigrationJournalSkips: decisions the container declines are journaled
// too — here the cooldown after a completed swap absorbs an immediate
// flap-back and leaves a "cooldown" record saying so.
func TestMigrationJournalSkips(t *testing.T) {
	ring := flight.NewRing(64, nil)
	m := machine.New(machine.Core2())
	sw := &switchAfter{n: 1, then: adt.KindHashSet}
	a := New(m, Config{
		Kind:        adt.KindVector,
		ElemSize:    8,
		Context:     "test/journal-skip",
		Window:      4,
		Detector:    drift.Config{Window: 1, Hysteresis: 1},
		Suggest:     sw.suggest,
		BatchSize:   4,
		CooldownOps: 1 << 30, // swallow every follow-up decision
		Journal:     ring,
	})
	for i := 0; i < 512; i++ {
		a.Insert(uint64(i))
		a.Find(uint64(i))
	}
	// After the first swap the suggester keeps advising hash_set while the
	// detector sees the vector baseline again; the cooldown rejects any
	// further migration and must say so in the journal.
	sw.then = adt.KindVector
	for i := 512; i < 1024; i++ {
		a.Insert(uint64(i))
		a.Find(uint64(i))
	}
	a.FlushWindow()

	counts := map[string]int{}
	for _, rec := range ring.Snapshot() {
		counts[rec.Verdict]++
	}
	if counts["applied"] == 0 {
		t.Fatalf("no applied record: %v", counts)
	}
	if counts["cooldown"] == 0 {
		t.Fatalf("cooldown skip was not journaled: %v", counts)
	}
}
