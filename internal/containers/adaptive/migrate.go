package adaptive

import (
	"repro/internal/adt"
	"repro/internal/mem"
	"repro/internal/opstats"
)

// layout says how the two live backends split the logical contents while a
// migration is in flight.
type layout int

const (
	// layoutKeyed: the destination is associative; elements live in exactly
	// one backend and are addressed by key, so arrival order is free.
	layoutKeyed layout = iota
	// layoutPrefix: sequence-to-sequence with the destination holding the
	// logical front. The source drains from its front (an O(1) pop for
	// list/deque) and drained elements append to the destination — the
	// layout used when the destination is a vector, whose appends are O(1)
	// but prepends shift.
	layoutPrefix
	// layoutSuffix: sequence-to-sequence with the destination holding the
	// logical tail. The source drains from its back (O(1) for every
	// sequence, including vector) and drained elements prepend to the
	// destination — the layout for destinations with O(1) prepends.
	layoutSuffix
)

// migrator is an adt.Container hosting one active backend plus, while a
// migration is in flight, the destination backend it is incrementally
// draining into. Every interface operation routes to the backend(s) that
// own the affected elements, then moves a bounded batch — so migration cost
// is amortized across the operations that follow the decision, and the
// container answers every query correctly mid-move.
type migrator struct {
	model    mem.Model
	elemSize uint64

	cur adt.Container // active backend; the source while migrating
	dst adt.Container // nil when no migration is in flight
	lay layout

	batch  int  // elements moved per interface operation
	moved  int  // elements moved so far in the current migration
	done   bool // source fully drained; host must finalize
	merged opstats.Stats
}

// Kind reports the active backend's kind: the source until the host
// finalizes the swap, the destination after.
func (g *migrator) Kind() adt.Kind { return g.cur.Kind() }

func (g *migrator) migrating() bool { return g.dst != nil }

// canMigrate reports whether the active backend can hand its elements over.
// Every built-in backend implements adt.Drainer; a custom backend that does
// not simply never migrates away.
func (g *migrator) canMigrate() bool {
	_, ok := g.cur.(adt.Drainer)
	return ok
}

// begin opens a migration to kind. The caller has already checked
// legality (adt.CanReplace) and that no migration is in flight.
func (g *migrator) begin(to adt.Kind) {
	g.dst = adt.New(to, g.model, g.elemSize)
	switch {
	case !to.IsAssociative():
		if to == adt.KindVector {
			g.lay = layoutPrefix
		} else {
			g.lay = layoutSuffix
		}
	default:
		g.lay = layoutKeyed
	}
	g.moved = 0
	g.done = g.cur.Len() == 0
}

// step moves up to one batch of elements from the source to the
// destination, flagging completion when the source runs dry.
func (g *migrator) step() {
	if g.dst == nil || g.done {
		return
	}
	d := g.cur.(adt.Drainer)
	for i := 0; i < g.batch; i++ {
		var k uint64
		var ok bool
		switch g.lay {
		case layoutPrefix:
			if k, ok = d.DrainFront(); ok {
				g.dst.Insert(k)
			}
		case layoutSuffix:
			if k, ok = d.DrainBack(); ok {
				g.dst.PushFront(k)
			}
		default:
			if k, ok = d.DrainBack(); ok {
				g.dst.Insert(k)
			}
		}
		if !ok {
			break
		}
		g.moved++
	}
	if g.cur.Len() == 0 {
		g.done = true
	}
}

// finalize retires the drained source and promotes the destination to the
// active backend, returning how many elements the migration moved. The
// host must flush its profiling window before calling this and re-anchor it
// after: the merged statistics leave with the source.
func (g *migrator) finalize() int {
	g.cur = g.dst
	g.dst = nil
	g.done = false
	return g.moved
}

// isSortedKind reports kinds whose EraseFront removes the minimum — the
// associative kinds minus the hash tables (chained and flat), whose victim
// is implementation-defined.
func isSortedKind(k adt.Kind) bool {
	return k.IsAssociative() && k != adt.KindHashSet && k != adt.KindHashMap &&
		k != adt.KindFlatHashSet && k != adt.KindFlatHashMap
}

func (g *migrator) Insert(key uint64) {
	switch {
	case g.dst == nil:
		g.cur.Insert(key)
	case g.lay == layoutPrefix:
		g.cur.Insert(key) // the logical tail is the source's end
	case g.lay == layoutSuffix:
		g.dst.Insert(key) // the logical tail is the destination's end
	default:
		// Keyed semantics: a key already present anywhere must not gain a
		// second copy.
		if !g.cur.Find(key) {
			g.dst.Insert(key)
		}
	}
	g.step()
}

func (g *migrator) InsertAt(pos int, key uint64) {
	switch {
	case g.dst == nil:
		g.cur.InsertAt(pos, key)
	case g.lay == layoutPrefix:
		if dl := g.dst.Len(); pos < dl {
			g.dst.InsertAt(pos, key)
		} else {
			g.cur.InsertAt(pos-dl, key)
		}
	case g.lay == layoutSuffix:
		if sl := g.cur.Len(); pos <= sl {
			g.cur.InsertAt(pos, key)
		} else {
			g.dst.InsertAt(pos-sl, key)
		}
	default:
		if !g.cur.Find(key) {
			g.dst.Insert(key) // associative: position is ignored
		}
	}
	g.step()
}

func (g *migrator) PushFront(key uint64) {
	switch {
	case g.dst == nil:
		g.cur.PushFront(key)
	case g.lay == layoutPrefix:
		g.dst.PushFront(key)
	case g.lay == layoutSuffix:
		g.cur.PushFront(key)
	default:
		if !g.cur.Find(key) {
			g.dst.Insert(key)
		}
	}
	g.step()
}

func (g *migrator) Erase(key uint64) bool {
	var ok bool
	switch {
	case g.dst == nil:
		ok = g.cur.Erase(key)
	case g.lay == layoutPrefix:
		// First occurrence in logical order: the destination holds the
		// prefix.
		ok = g.dst.Erase(key) || g.cur.Erase(key)
	case g.lay == layoutSuffix:
		ok = g.cur.Erase(key) || g.dst.Erase(key)
	default:
		// One copy lives in exactly one backend; new-then-old.
		ok = g.dst.Erase(key) || g.cur.Erase(key)
	}
	g.step()
	return ok
}

func (g *migrator) EraseFront() bool {
	var ok bool
	switch {
	case g.dst == nil:
		ok = g.cur.EraseFront()
	case g.lay == layoutPrefix:
		if g.dst.Len() > 0 {
			ok = g.dst.EraseFront()
		} else {
			ok = g.cur.EraseFront()
		}
	case g.lay == layoutSuffix:
		if g.cur.Len() > 0 {
			ok = g.cur.EraseFront()
		} else {
			ok = g.dst.EraseFront()
		}
	default:
		ok = g.eraseFrontKeyed()
	}
	g.step()
	return ok
}

// eraseFrontKeyed removes what a static container of the destination's kind
// would: the global minimum when both backends iterate in sorted order
// (Iterate(1) reads each side's minimum), otherwise the destination's own
// victim — hash tables make EraseFront implementation-defined anyway.
func (g *migrator) eraseFrontKeyed() bool {
	if isSortedKind(g.cur.Kind()) && isSortedKind(g.dst.Kind()) && g.cur.Len() > 0 && g.dst.Len() > 0 {
		cm, dm := g.cur.Iterate(1), g.dst.Iterate(1)
		if cm <= dm {
			return g.cur.Erase(cm)
		}
		return g.dst.Erase(dm)
	}
	if g.dst.Len() > 0 {
		return g.dst.EraseFront()
	}
	return g.cur.EraseFront()
}

func (g *migrator) Find(key uint64) bool {
	var ok bool
	if g.dst == nil {
		ok = g.cur.Find(key)
	} else {
		ok = g.dst.Find(key) || g.cur.Find(key) // new-then-old
	}
	g.step()
	return ok
}

func (g *migrator) Iterate(n int) uint64 {
	var sum uint64
	switch {
	case g.dst == nil:
		sum = g.cur.Iterate(n)
	case g.lay == layoutPrefix, g.lay == layoutKeyed:
		// Logical order dst ++ cur. For the keyed layout a partial visit is
		// implementation-defined (the latitude hash kinds already have);
		// full iteration sums both sides exactly.
		if n < 0 {
			sum = g.dst.Iterate(-1) + g.cur.Iterate(-1)
		} else if dl := g.dst.Len(); n <= dl {
			sum = g.dst.Iterate(n)
		} else {
			sum = g.dst.Iterate(-1) + g.cur.Iterate(n-dl)
		}
	default: // layoutSuffix: logical order cur ++ dst
		if n < 0 {
			sum = g.cur.Iterate(-1) + g.dst.Iterate(-1)
		} else if sl := g.cur.Len(); n <= sl {
			sum = g.cur.Iterate(n)
		} else {
			sum = g.cur.Iterate(-1) + g.dst.Iterate(n-sl)
		}
	}
	g.step()
	return sum
}

func (g *migrator) Len() int {
	if g.dst == nil {
		return g.cur.Len()
	}
	return g.cur.Len() + g.dst.Len()
}

func (g *migrator) Clear() {
	g.cur.Clear()
	if g.dst != nil {
		g.dst.Clear()
		g.done = true // nothing left to move; host finalizes the swap
	}
}

// Stats returns the active backend's statistics, or — while both backends
// are live — their monotone merge, so windowed delta profiling never sees a
// counter step backwards mid-migration.
func (g *migrator) Stats() *opstats.Stats {
	if g.dst == nil {
		return g.cur.Stats()
	}
	g.merged = *g.cur.Stats()
	g.merged.Add(*g.dst.Stats())
	return &g.merged
}
