package hashtable

import "testing"

// FuzzTableOps drives the hash table with an arbitrary byte-encoded
// operation stream against a map model and checks the chain invariants.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 250, 251})
	f.Add([]byte{0, 0, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		h := New[uint8, int](nil, 8, func(k uint8) uint64 { return HashUint64(uint64(k)) })
		ref := map[uint8]int{}
		for i := 0; i+1 < len(ops); i += 2 {
			key := ops[i+1]
			switch ops[i] % 3 {
			case 0:
				_, existed := ref[key]
				if h.Insert(key, i) != !existed {
					t.Fatalf("Insert(%d) return mismatch", key)
				}
				ref[key] = i
			case 1:
				_, existed := ref[key]
				if h.Erase(key) != existed {
					t.Fatalf("Erase(%d) return mismatch", key)
				}
				delete(ref, key)
			case 2:
				v, ok := h.Find(key)
				want, existed := ref[key]
				if ok != existed || (ok && v != want) {
					t.Fatalf("Find(%d) = %d,%v want %d,%v", key, v, ok, want, existed)
				}
			}
		}
		if h.Len() != len(ref) {
			t.Fatalf("Len = %d, ref = %d", h.Len(), len(ref))
		}
		if bad := h.CheckInvariants(); bad != "" {
			t.Fatal(bad)
		}
	})
}
