package hashtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/opstats"
)

func newU64(t *testing.T, m mem.Model) *Table[uint64, uint64] {
	t.Helper()
	return New[uint64, uint64](m, 16, HashUint64)
}

func TestInsertFindErase(t *testing.T) {
	h := newU64(t, nil)
	if !h.Insert(42, 1) {
		t.Fatal("first insert returned false")
	}
	if h.Insert(42, 2) {
		t.Fatal("duplicate insert returned true")
	}
	if v, ok := h.Find(42); !ok || v != 2 {
		t.Fatalf("Find = %d,%v", v, ok)
	}
	if _, ok := h.Find(43); ok {
		t.Fatal("found missing key")
	}
	if !h.Erase(42) || h.Erase(42) {
		t.Fatal("erase semantics wrong")
	}
}

func TestRehashPreservesContents(t *testing.T) {
	h := newU64(t, nil)
	n := uint64(10000)
	for i := uint64(0); i < n; i++ {
		h.Insert(i, i*3)
	}
	if h.Stats().Rehashes == 0 {
		t.Fatal("no rehash for 10000 inserts into 16 buckets")
	}
	if h.Buckets() < int(n) {
		t.Fatalf("buckets = %d, want >= %d after growth", h.Buckets(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := h.Find(i); !ok || v != i*3 {
			t.Fatalf("lost key %d after rehash", i)
		}
	}
	if bad := h.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestLoadFactorBounded(t *testing.T) {
	h := newU64(t, nil)
	for i := uint64(0); i < 5000; i++ {
		h.Insert(i, i)
		if float64(h.Len()) > float64(h.Buckets())*1.01 {
			t.Fatalf("load factor %f exceeds bound", float64(h.Len())/float64(h.Buckets()))
		}
	}
}

func TestStringKeys(t *testing.T) {
	h := New[string, int](nil, 24, HashString)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, w := range words {
		h.Insert(w, i)
	}
	for i, w := range words {
		if v, ok := h.Find(w); !ok || v != i {
			t.Fatalf("Find(%q) = %d,%v", w, v, ok)
		}
	}
	if h.Contains("zeta") {
		t.Fatal("contains missing key")
	}
}

func TestDifferentialAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := newU64(t, nil)
	ref := map[uint64]uint64{}
	for step := 0; step < 20000; step++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(3) {
		case 0:
			v := uint64(rng.Intn(1 << 30))
			_, existed := ref[k]
			if h.Insert(k, v) != !existed {
				t.Fatalf("step %d: insert return mismatch", step)
			}
			ref[k] = v
		case 1:
			_, existed := ref[k]
			if h.Erase(k) != existed {
				t.Fatalf("step %d: erase return mismatch", step)
			}
			delete(ref, k)
		default:
			want, existed := ref[k]
			got, ok := h.Find(k)
			if ok != existed || (ok && got != want) {
				t.Fatalf("step %d: Find(%d) = %d,%v want %d,%v", step, k, got, ok, want, existed)
			}
		}
		if h.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, h.Len(), len(ref))
		}
	}
	if bad := h.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestQuickInsertEraseRoundTrip(t *testing.T) {
	f := func(keys []uint16) bool {
		h := New[uint16, int](nil, 8, func(k uint16) uint64 { return HashUint64(uint64(k)) })
		uniq := map[uint16]bool{}
		for _, k := range keys {
			h.Insert(k, int(k))
			uniq[k] = true
		}
		if h.Len() != len(uniq) {
			return false
		}
		for k := range uniq {
			if !h.Contains(k) {
				return false
			}
			if !h.Erase(k) {
				return false
			}
		}
		return h.Len() == 0 && h.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIterateVisitsEverything(t *testing.T) {
	h := newU64(t, nil)
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, i)
	}
	seen := map[uint64]bool{}
	n := h.Iterate(-1, func(k, v uint64) {
		if v != k {
			t.Fatalf("value mismatch for %d", k)
		}
		seen[k] = true
	})
	if n != 100 || len(seen) != 100 {
		t.Fatalf("iterate visited %d unique %d", n, len(seen))
	}
	if n := h.Iterate(7, nil); n != 7 {
		t.Fatalf("partial iterate visited %d", n)
	}
}

func TestFindCostIsConstantish(t *testing.T) {
	h := newU64(t, nil)
	for i := uint64(0); i < 1<<14; i++ {
		h.Insert(i, i)
	}
	st := h.Stats()
	st.Reset()
	for i := uint64(0); i < 1000; i++ {
		h.Find(i * 16)
	}
	avg := float64(st.Cost[opstats.OpFind]) / 1000
	if avg > 4 { // bucket read + ~load-factor chain nodes
		t.Fatalf("average find cost %.2f too high for a hash table", avg)
	}
}

func TestClearAndMemory(t *testing.T) {
	cm := mem.NewCounting()
	h := New[uint64, uint64](cm, 16, HashUint64)
	for i := uint64(0); i < 1000; i++ {
		h.Insert(i, i)
	}
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	// Only the fresh initial bucket array may remain live.
	if cm.Live != 16*8 {
		t.Fatalf("live bytes after Clear = %d, want %d", cm.Live, 16*8)
	}
}

func TestNilHashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with nil hash did not panic")
		}
	}()
	New[int, int](nil, 8, nil)
}

func TestHashUint64Avalanche(t *testing.T) {
	// Neighbouring keys must not map to neighbouring hashes for the table
	// to spread; check a weak avalanche property.
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if HashUint64(i)&0xF == HashUint64(i+1)&0xF {
			same++
		}
	}
	if same > 200 { // expectation ~62
		t.Fatalf("low bits collide for %d/1000 neighbours", same)
	}
}
