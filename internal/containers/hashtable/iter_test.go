package hashtable

import "testing"

func TestIterVisitsEverythingOnce(t *testing.T) {
	h := New[uint64, uint64](nil, 16, HashUint64)
	const n = 300
	for i := uint64(0); i < n; i++ {
		h.Insert(i, i*2)
	}
	seen := map[uint64]uint64{}
	it := h.Begin()
	for {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		if _, dup := seen[k]; dup {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = v
	}
	if len(seen) != n {
		t.Fatalf("visited %d of %d", len(seen), n)
	}
	for k, v := range seen {
		if v != k*2 {
			t.Fatalf("value for %d = %d", k, v)
		}
	}
}

func TestIterEmptyTable(t *testing.T) {
	h := New[uint64, uint64](nil, 16, HashUint64)
	it := h.Begin()
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty table yielded an entry")
	}
}

func TestIterMatchesBucketOrder(t *testing.T) {
	h := New[uint64, uint64](nil, 16, HashUint64)
	for i := uint64(0); i < 50; i++ {
		h.Insert(i, i)
	}
	want := h.Keys()
	it := h.Begin()
	for i := 0; i < len(want); i++ {
		k, _, ok := it.Next()
		if !ok || k != want[i] {
			t.Fatalf("position %d: got %d want %d", i, k, want[i])
		}
	}
}
