package hashtable

// Iter is an iterator over a table in bucket order. Invalidated by any
// mutation (a rehash relinks every node).
type Iter[K comparable, V any] struct {
	t      *Table[K, V]
	bucket int
	cur    *node[K, V]
}

// Begin returns an iterator at the first entry in bucket order.
func (t *Table[K, V]) Begin() Iter[K, V] {
	it := Iter[K, V]{t: t, bucket: -1}
	it.advanceBucket()
	return it
}

// advanceBucket moves to the head of the next non-empty bucket.
func (it *Iter[K, V]) advanceBucket() {
	it.cur = nil
	for it.bucket++; it.bucket < len(it.t.buckets); it.bucket++ {
		it.t.readBucket(it.bucket)
		if head := it.t.buckets[it.bucket]; head != nil {
			it.cur = head
			return
		}
	}
}

// Next returns the current entry and advances; ok is false past the end.
// Skipping empty buckets costs a bucket-array read each, the overhead that
// makes hash-table iteration slower than its O(1) lookups suggest.
func (it *Iter[K, V]) Next() (k K, v V, ok bool) {
	if it.cur == nil {
		return k, v, false
	}
	it.t.model.Read(it.cur.addr, it.t.nodeBytes)
	k, v = it.cur.key, it.cur.val
	if it.cur.next != nil {
		it.cur = it.cur.next
	} else {
		it.advanceBucket()
	}
	return k, v, true
}
