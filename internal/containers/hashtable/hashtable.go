// Package hashtable implements a separate-chaining hash table with unique
// keys, the analog of the TR1/libstdc++ hash_set / hash_map (unordered_set /
// unordered_map). Lookup costs one bucket-array read plus a short chain
// walk; inserts occasionally trigger a whole-table rehash whose "load factor
// exceeded" branch is a misprediction source analogous to vector's resize
// (Section 5.1). Iteration order is the hash order, so a hash table is only
// a legal replacement in order-oblivious usage (Table 1).
package hashtable

import (
	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside hash-table code.
const (
	siteRehash  mem.BranchSite = 0x600 // load factor exceeded?
	siteChainEq mem.BranchSite = 0x601 // key equality along a chain
)

const (
	ptrBytes       = 8
	nodeOverhead   = 16 // next pointer + cached hash
	initialBuckets = 16
	maxLoadFactor  = 1.0

	// hashWorkUnits is the ALU cost of hashing one key: a 64-bit
	// mix/finalize sequence plus the bucket index computation. The 2011-era
	// TR1 hash_map this models indexed buckets with a modulo by a prime,
	// i.e. an integer division of a few dozen ALU ops — the fixed per-call
	// overhead that lets trees win at small sizes (Chord's small input).
	hashWorkUnits = 40
)

type node[K comparable, V any] struct {
	next *node[K, V]
	hash uint64
	addr mem.Addr
	key  K
	val  V
}

// Table is a separate-chaining hash table mapping K to V. Construct with New.
type Table[K comparable, V any] struct {
	buckets    []*node[K, V]
	bucketAddr mem.Addr
	size       int
	model      mem.Model
	hash       func(K) uint64
	elemSize   uint64
	nodeBytes  uint64
	stats      opstats.Stats
}

// New returns an empty table bound to the given memory model using the given
// hash function. A nil model defaults to mem.Nop. New panics on a nil hash
// function; use HashUint64 or HashString for common key types.
func New[K comparable, V any](model mem.Model, elemSize uint64, hash func(K) uint64) *Table[K, V] {
	if hash == nil {
		panic("hashtable: nil hash function")
	}
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	t := &Table[K, V]{
		model:     model,
		hash:      hash,
		elemSize:  elemSize,
		nodeBytes: elemSize + nodeOverhead,
	}
	t.buckets = make([]*node[K, V], initialBuckets)
	t.bucketAddr = model.Alloc(initialBuckets*ptrBytes, 16)
	return t
}

// HashUint64 is a Fibonacci/avalanche mixer for integer keys.
func HashUint64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// HashString is FNV-1a over the key's bytes.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Stats exposes the container's accumulated software features.
func (t *Table[K, V]) Stats() *opstats.Stats {
	t.stats.ElemSize = t.elemSize
	return &t.stats
}

// Len returns the number of keys.
func (t *Table[K, V]) Len() int { return t.size }

// Buckets returns the current bucket count.
func (t *Table[K, V]) Buckets() int { return len(t.buckets) }

func (t *Table[K, V]) bucketIdx(h uint64) int { return int(h & uint64(len(t.buckets)-1)) }

func (t *Table[K, V]) readBucket(i int) {
	t.model.Read(t.bucketAddr+mem.Addr(i*ptrBytes), ptrBytes)
}

// findNode walks the chain for key, returning the node and chain reads done.
func (t *Table[K, V]) findNode(key K, h uint64) (*node[K, V], uint64) {
	i := t.bucketIdx(h)
	t.readBucket(i)
	touched := uint64(1) // bucket-array read counts as one touch
	for n := t.buckets[i]; n != nil; n = n.next {
		touched++
		t.model.Read(n.addr, t.nodeBytes)
		hit := n.hash == h && n.key == key
		t.model.Branch(siteChainEq, hit)
		if hit {
			return n, touched
		}
	}
	return nil, touched
}

// Find returns the value stored under key.
func (t *Table[K, V]) Find(key K) (V, bool) {
	t.model.Work(hashWorkUnits)
	n, touched := t.findNode(key, t.hash(key))
	t.stats.Observe(opstats.OpFind, touched)
	if n == nil {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Contains reports whether key is present.
func (t *Table[K, V]) Contains(key K) bool {
	_, ok := t.Find(key)
	return ok
}

// Insert adds key→val; it returns false (and overwrites the value) when the
// key was already present.
func (t *Table[K, V]) Insert(key K, val V) bool {
	t.model.Work(hashWorkUnits)
	h := t.hash(key)
	n, touched := t.findNode(key, h)
	if n != nil {
		t.model.Write(n.addr, t.nodeBytes)
		n.val = val
		t.stats.Observe(opstats.OpInsert, touched)
		return false
	}
	needRehash := float64(t.size+1) > maxLoadFactor*float64(len(t.buckets))
	t.model.Branch(siteRehash, needRehash)
	if needRehash {
		t.rehash()
	}
	i := t.bucketIdx(h)
	z := &node[K, V]{next: t.buckets[i], hash: h, key: key, val: val}
	z.addr = t.model.Alloc(t.nodeBytes, 8)
	t.model.Write(z.addr, t.nodeBytes)
	t.model.Write(t.bucketAddr+mem.Addr(i*ptrBytes), ptrBytes)
	t.buckets[i] = z
	t.size++
	t.stats.Observe(opstats.OpInsert, touched+1)
	t.stats.NoteLen(t.size)
	return true
}

// rehash doubles the bucket array and re-links every node, reading each node
// and writing its new bucket slot — the whole-table cost spike the branch
// predictor cannot anticipate.
func (t *Table[K, V]) rehash() {
	old := t.buckets
	oldBytes := uint64(len(old)) * ptrBytes
	newCount := len(old) * 2
	newBytes := uint64(newCount) * ptrBytes
	newAddr := t.model.Alloc(newBytes, 16)
	t.model.Write(newAddr, newBytes)
	nb := make([]*node[K, V], newCount)
	for _, head := range old {
		for n := head; n != nil; {
			next := n.next
			t.model.Read(n.addr, t.nodeBytes)
			i := int(n.hash & uint64(newCount-1))
			n.next = nb[i]
			nb[i] = n
			t.model.Write(n.addr, ptrBytes)
			n = next
		}
	}
	t.model.Free(t.bucketAddr, oldBytes)
	t.buckets = nb
	t.bucketAddr = newAddr
	t.stats.Rehashes++
	t.stats.Resizes++ // rehash is the hash table's "resize" for feature purposes
}

// Erase removes key and reports whether it was present.
func (t *Table[K, V]) Erase(key K) bool {
	t.model.Work(hashWorkUnits)
	h := t.hash(key)
	i := t.bucketIdx(h)
	t.readBucket(i)
	touched := uint64(1)
	var prev *node[K, V]
	for n := t.buckets[i]; n != nil; n = n.next {
		touched++
		t.model.Read(n.addr, t.nodeBytes)
		hit := n.hash == h && n.key == key
		t.model.Branch(siteChainEq, hit)
		if hit {
			if prev == nil {
				t.model.Write(t.bucketAddr+mem.Addr(i*ptrBytes), ptrBytes)
				t.buckets[i] = n.next
			} else {
				t.model.Write(prev.addr, ptrBytes)
				prev.next = n.next
			}
			t.model.Free(n.addr, t.nodeBytes)
			t.size--
			t.stats.Observe(opstats.OpErase, touched)
			return true
		}
		prev = n
	}
	t.stats.Observe(opstats.OpErase, touched)
	return false
}

// Iterate visits up to n entries in bucket order, calling fn for each, and
// returns the number visited. n < 0 visits all entries. The order is
// unrelated to insertion order.
func (t *Table[K, V]) Iterate(n int, fn func(K, V)) int {
	if n < 0 || n > t.size {
		n = t.size
	}
	visited := 0
	for i := 0; i < len(t.buckets) && visited < n; i++ {
		t.readBucket(i)
		for nd := t.buckets[i]; nd != nil && visited < n; nd = nd.next {
			t.model.Read(nd.addr, t.nodeBytes)
			if fn != nil {
				fn(nd.key, nd.val)
			}
			visited++
		}
	}
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}

// First returns the key of the first entry in bucket order; ok is false
// when the table is empty. It models reading the begin() iterator and does
// not count as an interface invocation.
func (t *Table[K, V]) First() (k K, ok bool) {
	for i, head := range t.buckets {
		if head != nil {
			t.readBucket(i)
			t.model.Read(head.addr, t.nodeBytes)
			return head.key, true
		}
	}
	return k, false
}

// Clear removes all entries, freeing every node, and shrinks the bucket
// array back to its initial size.
func (t *Table[K, V]) Clear() {
	for i, head := range t.buckets {
		for n := head; n != nil; {
			next := n.next
			t.model.Free(n.addr, t.nodeBytes)
			n = next
		}
		t.buckets[i] = nil
	}
	t.model.Free(t.bucketAddr, uint64(len(t.buckets))*ptrBytes)
	t.buckets = make([]*node[K, V], initialBuckets)
	t.bucketAddr = t.model.Alloc(initialBuckets*ptrBytes, 16)
	t.size = 0
	t.stats.Observe(opstats.OpClear, 1)
}

// Keys returns all keys in iteration (bucket) order. Intended for tests.
func (t *Table[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	for _, head := range t.buckets {
		for n := head; n != nil; n = n.next {
			out = append(out, n.key)
		}
	}
	return out
}

// CheckInvariants verifies chain placement and size bookkeeping, returning a
// descriptive violation or "" when the table is valid.
func (t *Table[K, V]) CheckInvariants() string {
	count := 0
	for i, head := range t.buckets {
		for n := head; n != nil; n = n.next {
			count++
			if t.hash(n.key) != n.hash {
				return "stale cached hash"
			}
			if t.bucketIdx(n.hash) != i {
				return "node in wrong bucket"
			}
		}
	}
	if count != t.size {
		return "size mismatch"
	}
	return ""
}
