// Package splaytree implements a top-down splay tree with unique keys. The
// paper's introduction cites splay trees as a case where identical
// asymptotics hide very different real-world behaviour: every access moves
// the touched key to the root, so skewed access distributions get
// near-list-head latency while the worst case stays amortized O(log n).
// Brainy ships it as an extension alternative beyond the STL set.
package splaytree

import (
	"cmp"

	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside splay-tree code.
const (
	siteCmpLess mem.BranchSite = 0x700
	siteCmpEq   mem.BranchSite = 0x701
)

const nodeOverhead = 24 // 2 pointers + padding in the simulated layout

type node[K cmp.Ordered, V any] struct {
	left, right *node[K, V]
	addr        mem.Addr
	key         K
	val         V
}

// Tree is a splay tree mapping K to V with unique keys. Construct with New.
type Tree[K cmp.Ordered, V any] struct {
	root      *node[K, V]
	size      int
	model     mem.Model
	elemSize  uint64
	nodeBytes uint64
	stats     opstats.Stats
}

// New returns an empty splay tree bound to the given memory model. A nil
// model defaults to mem.Nop.
func New[K cmp.Ordered, V any](model mem.Model, elemSize uint64) *Tree[K, V] {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	return &Tree[K, V]{model: model, elemSize: elemSize, nodeBytes: elemSize + nodeOverhead}
}

// Stats exposes the container's accumulated software features.
func (t *Tree[K, V]) Stats() *opstats.Stats {
	t.stats.ElemSize = t.elemSize
	return &t.stats
}

// Len returns the number of keys.
func (t *Tree[K, V]) Len() int { return t.size }

func (t *Tree[K, V]) touch(n *node[K, V]) { t.model.Read(n.addr, t.nodeBytes) }

// splay performs a top-down splay of key, returning the new root and the
// number of nodes touched. After splaying, the root is either the key's
// node or the last node on the search path.
func (t *Tree[K, V]) splay(root *node[K, V], key K) (*node[K, V], uint64) {
	if root == nil {
		return nil, 0
	}
	var header node[K, V]
	left, right := &header, &header
	touched := uint64(0)
	n := root
	for {
		touched++
		t.touch(n)
		eq := key == n.key
		t.model.Branch(siteCmpEq, eq)
		if eq {
			break
		}
		less := key < n.key
		t.model.Branch(siteCmpLess, less)
		if less {
			if n.left == nil {
				break
			}
			if key < n.left.key {
				// Zig-zig: rotate right.
				touched++
				t.touch(n.left)
				x := n.left
				n.left = x.right
				x.right = n
				t.model.Write(n.addr, t.nodeBytes)
				t.model.Write(x.addr, t.nodeBytes)
				t.stats.Rotations++
				n = x
				if n.left == nil {
					break
				}
			}
			// Link right.
			right.left = n
			if right != &header {
				t.model.Write(right.addr, t.nodeBytes)
			}
			right = n
			n = n.left
		} else {
			if n.right == nil {
				break
			}
			if key > n.right.key {
				// Zig-zig: rotate left.
				touched++
				t.touch(n.right)
				x := n.right
				n.right = x.left
				x.left = n
				t.model.Write(n.addr, t.nodeBytes)
				t.model.Write(x.addr, t.nodeBytes)
				t.stats.Rotations++
				n = x
				if n.right == nil {
					break
				}
			}
			// Link left.
			left.right = n
			if left != &header {
				t.model.Write(left.addr, t.nodeBytes)
			}
			left = n
			n = n.right
		}
	}
	// Assemble.
	left.right = n.left
	right.left = n.right
	n.left = header.right
	n.right = header.left
	t.model.Write(n.addr, t.nodeBytes)
	return n, touched
}

// Find returns the value stored under key, splaying it to the root.
func (t *Tree[K, V]) Find(key K) (V, bool) {
	var touched uint64
	t.root, touched = t.splay(t.root, key)
	t.stats.Observe(opstats.OpFind, touched)
	if t.root != nil && t.root.key == key {
		return t.root.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Find(key)
	return ok
}

// Insert adds key→val; it returns false (and overwrites the value) when the
// key was already present.
func (t *Tree[K, V]) Insert(key K, val V) bool {
	if t.root == nil {
		z := &node[K, V]{key: key, val: val}
		z.addr = t.model.Alloc(t.nodeBytes, 8)
		t.model.Write(z.addr, t.nodeBytes)
		t.root = z
		t.size = 1
		t.stats.Observe(opstats.OpInsert, 1)
		t.stats.NoteLen(1)
		return true
	}
	var touched uint64
	t.root, touched = t.splay(t.root, key)
	if t.root.key == key {
		t.root.val = val
		t.model.Write(t.root.addr, t.nodeBytes)
		t.stats.Observe(opstats.OpInsert, touched)
		return false
	}
	z := &node[K, V]{key: key, val: val}
	z.addr = t.model.Alloc(t.nodeBytes, 8)
	if key < t.root.key {
		z.left = t.root.left
		z.right = t.root
		t.root.left = nil
	} else {
		z.right = t.root.right
		z.left = t.root
		t.root.right = nil
	}
	t.model.Write(t.root.addr, t.nodeBytes)
	t.model.Write(z.addr, t.nodeBytes)
	t.root = z
	t.size++
	t.stats.Observe(opstats.OpInsert, touched+1)
	t.stats.NoteLen(t.size)
	return true
}

// Erase removes key and reports whether it was present.
func (t *Tree[K, V]) Erase(key K) bool {
	if t.root == nil {
		t.stats.Observe(opstats.OpErase, 0)
		return false
	}
	var touched uint64
	t.root, touched = t.splay(t.root, key)
	if t.root.key != key {
		t.stats.Observe(opstats.OpErase, touched)
		return false
	}
	old := t.root
	if old.left == nil {
		t.root = old.right
	} else {
		// Splay the predecessor (max of left subtree) to the top of the
		// left subtree; it has no right child, attach the right subtree.
		newRoot, extra := t.splay(old.left, key)
		touched += extra
		newRoot.right = old.right
		t.model.Write(newRoot.addr, t.nodeBytes)
		t.root = newRoot
	}
	t.model.Free(old.addr, t.nodeBytes)
	t.size--
	t.stats.Observe(opstats.OpErase, touched+1)
	return true
}

// Iterate visits up to n keys in sorted order, calling fn for each, and
// returns the number visited. n < 0 visits all keys. Iteration does not
// splay.
func (t *Tree[K, V]) Iterate(n int, fn func(K, V)) int {
	if n < 0 || n > t.size {
		n = t.size
	}
	visited := 0
	var walk func(nd *node[K, V]) bool
	walk = func(nd *node[K, V]) bool {
		if nd == nil {
			return true
		}
		if !walk(nd.left) {
			return false
		}
		if visited >= n {
			return false
		}
		t.touch(nd)
		if fn != nil {
			fn(nd.key, nd.val)
		}
		visited++
		return walk(nd.right)
	}
	walk(t.root)
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}

// Min returns the smallest key without splaying; ok is false when empty.
// It models reading the begin() iterator and does not count as an
// interface invocation.
func (t *Tree[K, V]) Min() (k K, ok bool) {
	n := t.root
	if n == nil {
		return k, false
	}
	for n.left != nil {
		t.touch(n)
		n = n.left
	}
	t.touch(n)
	return n.key, true
}

// Clear removes all keys, freeing every node.
func (t *Tree[K, V]) Clear() {
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == nil {
			return
		}
		walk(n.left)
		walk(n.right)
		t.model.Free(n.addr, t.nodeBytes)
	}
	walk(t.root)
	t.root = nil
	t.size = 0
	t.stats.Observe(opstats.OpClear, 1)
}

// Keys returns all keys in sorted order. Intended for tests.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.key)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// CheckInvariants verifies BST order and size bookkeeping, returning a
// descriptive violation or "" when the tree is valid.
func (t *Tree[K, V]) CheckInvariants() string {
	keys := t.Keys()
	for i := 1; i < len(keys); i++ {
		if !(keys[i-1] < keys[i]) {
			return "keys not strictly increasing"
		}
	}
	if len(keys) != t.size {
		return "size mismatch"
	}
	return ""
}
