package splaytree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/opstats"
)

func TestInsertFindErase(t *testing.T) {
	tr := New[int, string](nil, 16)
	if !tr.Insert(10, "x") {
		t.Fatal("first insert returned false")
	}
	if tr.Insert(10, "y") {
		t.Fatal("duplicate insert returned true")
	}
	if v, ok := tr.Find(10); !ok || v != "y" {
		t.Fatalf("Find = %q,%v", v, ok)
	}
	if _, ok := tr.Find(11); ok {
		t.Fatal("found missing key")
	}
	if !tr.Erase(10) || tr.Erase(10) {
		t.Fatal("erase semantics wrong")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSplayMovesAccessedKeyToRoot(t *testing.T) {
	tr := New[int, int](nil, 16)
	for i := 0; i < 1000; i++ {
		tr.Insert(i, i)
	}
	tr.Find(500)
	if tr.root == nil || tr.root.key != 500 {
		t.Fatalf("root after Find(500) = %v", tr.root.key)
	}
	// A repeated access touches only the root.
	st := tr.Stats()
	st.Reset()
	tr.Find(500)
	if st.Cost[opstats.OpFind] != 1 {
		t.Fatalf("repeated find cost = %d, want 1", st.Cost[opstats.OpFind])
	}
}

func TestSkewedAccessCheaperThanUniform(t *testing.T) {
	build := func() *Tree[int, int] {
		tr := New[int, int](nil, 16)
		rng := rand.New(rand.NewSource(3))
		for _, k := range rng.Perm(4096) {
			tr.Insert(k, k)
		}
		return tr
	}
	skew := build()
	skew.Stats().Reset()
	for i := 0; i < 4000; i++ {
		skew.Find(i % 4) // hot set of 4 keys
	}
	skewCost := skew.Stats().Cost[opstats.OpFind]

	uni := build()
	uni.Stats().Reset()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4000; i++ {
		uni.Find(rng.Intn(4096))
	}
	uniCost := uni.Stats().Cost[opstats.OpFind]
	if skewCost*3 > uniCost {
		t.Fatalf("skewed access not cheaper: skew=%d uniform=%d", skewCost, uniCost)
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := New[int, int](nil, 16)
	present := map[int]bool{}
	for step := 0; step < 15000; step++ {
		k := rng.Intn(1000)
		switch rng.Intn(3) {
		case 0, 1:
			added := tr.Insert(k, k)
			if added == present[k] {
				t.Fatalf("step %d: Insert(%d) added=%v present=%v", step, k, added, present[k])
			}
			present[k] = true
		default:
			removed := tr.Erase(k)
			if removed != present[k] {
				t.Fatalf("step %d: Erase(%d) removed=%v present=%v", step, k, removed, present[k])
			}
			delete(present, k)
		}
		if step%1000 == 0 {
			if bad := tr.CheckInvariants(); bad != "" {
				t.Fatalf("step %d: %s", step, bad)
			}
		}
	}
	if bad := tr.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
	if tr.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(present))
	}
}

func TestQuickSortedUnique(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New[int16, struct{}](nil, 8)
		uniq := map[int16]bool{}
		for _, k := range keys {
			tr.Insert(k, struct{}{})
			uniq[k] = true
		}
		got := tr.Keys()
		if len(got) != len(uniq) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) &&
			tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIterateSortedWithoutSplaying(t *testing.T) {
	tr := New[int, int](nil, 16)
	for _, k := range []int{3, 1, 4, 1, 5, 9, 2, 6} {
		tr.Insert(k, k)
	}
	rootBefore := tr.root.key
	var got []int
	tr.Iterate(-1, func(k, _ int) { got = append(got, k) })
	want := []int{1, 2, 3, 4, 5, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("iterate got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterate got %v, want %v", got, want)
		}
	}
	if tr.root.key != rootBefore {
		t.Fatal("Iterate splayed the tree")
	}
}

func TestEraseRootWithLeftSubtree(t *testing.T) {
	tr := New[int, int](nil, 16)
	for _, k := range []int{5, 2, 8, 1, 3} {
		tr.Insert(k, k)
	}
	tr.Find(5) // splay 5 to root
	if !tr.Erase(5) {
		t.Fatal("erase root failed")
	}
	for _, k := range []int{2, 8, 1, 3} {
		if !tr.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	if bad := tr.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestMemoryLifecycle(t *testing.T) {
	cm := mem.NewCounting()
	tr := New[uint64, uint64](cm, 16)
	for i := uint64(0); i < 300; i++ {
		tr.Insert(i, i)
	}
	tr.Clear()
	if cm.Live != 0 {
		t.Fatalf("leaked %d simulated bytes", cm.Live)
	}
}
