package splaytree

import "cmp"

// Iter is an in-order iterator over a splay tree. Iteration does not splay
// (read-only traversal), and the path is kept on an explicit stack.
// Invalidated by any mutation.
type Iter[K cmp.Ordered, V any] struct {
	t     *Tree[K, V]
	stack []*node[K, V]
}

// Begin returns an iterator at the smallest key.
func (t *Tree[K, V]) Begin() Iter[K, V] {
	it := Iter[K, V]{t: t}
	for n := t.root; n != nil; n = n.left {
		it.stack = append(it.stack, n)
	}
	return it
}

// Next returns the current entry and advances in key order; ok is false
// past the end.
func (it *Iter[K, V]) Next() (k K, v V, ok bool) {
	if len(it.stack) == 0 {
		return k, v, false
	}
	n := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	it.t.touch(n)
	k, v = n.key, n.val
	for c := n.right; c != nil; c = c.left {
		it.t.touch(c)
		it.stack = append(it.stack, c)
	}
	return k, v, true
}
