package splaytree

import "repro/internal/opstats"

// Max returns the largest key without splaying; ok is false when empty.
func (t *Tree[K, V]) Max() (k K, ok bool) {
	n := t.root
	if n == nil {
		return k, false
	}
	for n.right != nil {
		t.touch(n)
		n = n.right
	}
	t.touch(n)
	return n.key, true
}

// Floor returns the greatest key <= key; ok is false when no such key
// exists. Floor splays the search key's neighbourhood to the root, so
// repeated nearby range queries stay cheap — the splay tree's specialty.
func (t *Tree[K, V]) Floor(key K) (k K, v V, ok bool) {
	if t.root == nil {
		t.stats.Observe(opstats.OpFind, 0)
		return k, v, false
	}
	var touched uint64
	t.root, touched = t.splay(t.root, key)
	t.stats.Observe(opstats.OpFind, touched)
	if t.root.key <= key {
		return t.root.key, t.root.val, true
	}
	// Root is the successor; the floor is the max of its left subtree.
	n := t.root.left
	if n == nil {
		return k, v, false
	}
	for n.right != nil {
		t.touch(n)
		n = n.right
	}
	t.touch(n)
	return n.key, n.val, true
}

// Ceil returns the smallest key >= key; ok is false when no such key exists.
func (t *Tree[K, V]) Ceil(key K) (k K, v V, ok bool) {
	if t.root == nil {
		t.stats.Observe(opstats.OpFind, 0)
		return k, v, false
	}
	var touched uint64
	t.root, touched = t.splay(t.root, key)
	t.stats.Observe(opstats.OpFind, touched)
	if t.root.key >= key {
		return t.root.key, t.root.val, true
	}
	n := t.root.right
	if n == nil {
		return k, v, false
	}
	for n.left != nil {
		t.touch(n)
		n = n.left
	}
	t.touch(n)
	return n.key, n.val, true
}

// Range visits every key in [lo, hi] in sorted order without splaying,
// calling fn for each; it returns the number visited.
func (t *Tree[K, V]) Range(lo, hi K, fn func(K, V)) int {
	if hi < lo {
		return 0
	}
	visited := 0
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == nil {
			return
		}
		t.touch(n)
		if lo < n.key {
			walk(n.left)
		}
		if lo <= n.key && n.key <= hi {
			if fn != nil {
				fn(n.key, n.val)
			}
			visited++
		}
		if n.key < hi {
			walk(n.right)
		}
	}
	walk(t.root)
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}
