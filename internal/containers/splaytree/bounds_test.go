package splaytree

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxFloorCeil(t *testing.T) {
	tr := New[int, string](nil, 16)
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	if _, _, ok := tr.Floor(1); ok {
		t.Fatal("Floor on empty")
	}
	if _, _, ok := tr.Ceil(1); ok {
		t.Fatal("Ceil on empty")
	}
	for _, k := range []int{10, 20, 30} {
		tr.Insert(k, "x")
	}
	if k, ok := tr.Max(); !ok || k != 30 {
		t.Fatalf("Max = %d", k)
	}
	if k, _, ok := tr.Floor(25); !ok || k != 20 {
		t.Fatalf("Floor(25) = %d,%v", k, ok)
	}
	if k, _, ok := tr.Ceil(25); !ok || k != 30 {
		t.Fatalf("Ceil(25) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Floor(9); ok {
		t.Fatal("Floor below min")
	}
	if _, _, ok := tr.Ceil(31); ok {
		t.Fatal("Ceil above max")
	}
	if bad := tr.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestFloorSplaysNeighbourhood(t *testing.T) {
	tr := New[int, int](nil, 16)
	for i := 0; i < 1000; i += 2 {
		tr.Insert(i, i)
	}
	// Each splay halves the search path; a few repetitions flatten the
	// query's neighbourhood.
	for i := 0; i < 5; i++ {
		tr.Floor(501)
	}
	st := tr.Stats()
	st.Reset()
	tr.Floor(501)
	if cost := st.Cost[2]; cost > 8 { // opstats.OpFind == 2
		t.Fatalf("repeated floor cost = %d", cost)
	}
}

func TestQuickFloorAgainstSort(t *testing.T) {
	f := func(keys []int16, q int16) bool {
		tr := New[int16, struct{}](nil, 8)
		uniq := map[int16]bool{}
		for _, k := range keys {
			tr.Insert(k, struct{}{})
			uniq[k] = true
		}
		sorted := make([]int16, 0, len(uniq))
		for k := range uniq {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var want int16
		ok := false
		for _, k := range sorted {
			if k <= q {
				want, ok = k, true
			}
		}
		gotK, _, gotOK := tr.Floor(q)
		if gotOK != ok || (ok && gotK != want) {
			return false
		}
		return tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSorted(t *testing.T) {
	tr := New[int, int](nil, 16)
	for _, k := range []int{9, 1, 7, 3, 5} {
		tr.Insert(k, k)
	}
	var got []int
	if n := tr.Range(3, 7, func(k, _ int) { got = append(got, k) }); n != 3 {
		t.Fatalf("visited %d: %v", n, got)
	}
	for i, w := range []int{3, 5, 7} {
		if got[i] != w {
			t.Fatalf("got %v", got)
		}
	}
}
