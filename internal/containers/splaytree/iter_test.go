package splaytree

import (
	"math/rand"
	"testing"
)

func TestIterSortedOrderWithoutSplaying(t *testing.T) {
	tr := New[int, int](nil, 16)
	rng := rand.New(rand.NewSource(6))
	for _, k := range rng.Perm(300) {
		tr.Insert(k, k)
	}
	rootBefore := tr.root.key
	it := tr.Begin()
	for i := 0; i < 300; i++ {
		k, _, ok := it.Next()
		if !ok || k != i {
			t.Fatalf("step %d: %d,%v", i, k, ok)
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Fatal("iterator ran past the end")
	}
	if tr.root.key != rootBefore {
		t.Fatal("iteration splayed the tree")
	}
}

func TestIterEmpty(t *testing.T) {
	tr := New[int, int](nil, 16)
	it := tr.Begin()
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty tree yielded an entry")
	}
}
