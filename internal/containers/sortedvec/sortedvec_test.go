package sortedvec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/containers/rbtree"
	"repro/internal/machine"
	"repro/internal/mem"
)

func TestInsertKeepsSortedUnique(t *testing.T) {
	s := New[int](nil, 8)
	for _, k := range []int{5, 1, 9, 1, 5, 3} {
		s.Insert(k)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	want := []int{1, 3, 5, 9}
	got := s.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v", got)
		}
	}
	if bad := s.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestInsertReturnsFalseOnDuplicate(t *testing.T) {
	s := New[int](nil, 8)
	if !s.Insert(7) || s.Insert(7) {
		t.Fatal("duplicate handling wrong")
	}
}

func TestContainsEraseRoundTrip(t *testing.T) {
	s := New[int](nil, 8)
	for i := 0; i < 100; i += 3 {
		s.Insert(i)
	}
	if !s.Contains(33) || s.Contains(34) {
		t.Fatal("Contains wrong")
	}
	if !s.Erase(33) || s.Erase(33) {
		t.Fatal("Erase semantics wrong")
	}
	if s.Contains(33) {
		t.Fatal("erased key still present")
	}
}

func TestBounds(t *testing.T) {
	s := New[int](nil, 8)
	for _, k := range []int{10, 20, 30} {
		s.Insert(k)
	}
	if k, ok := s.Min(); !ok || k != 10 {
		t.Fatalf("Min = %d", k)
	}
	if k, ok := s.Max(); !ok || k != 30 {
		t.Fatalf("Max = %d", k)
	}
	if k, ok := s.Floor(25); !ok || k != 20 {
		t.Fatalf("Floor(25) = %d", k)
	}
	if k, ok := s.Ceil(25); !ok || k != 30 {
		t.Fatalf("Ceil(25) = %d", k)
	}
	if k, ok := s.Floor(20); !ok || k != 20 {
		t.Fatalf("Floor(20) = %d", k)
	}
	if _, ok := s.Floor(5); ok {
		t.Fatal("Floor below min")
	}
	if _, ok := s.Ceil(35); ok {
		t.Fatal("Ceil above max")
	}
	empty := New[int](nil, 8)
	if _, ok := empty.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, ok := empty.Max(); ok {
		t.Fatal("Max on empty")
	}
}

func TestIterateStreams(t *testing.T) {
	s := New[int](nil, 8)
	for i := 9; i >= 0; i-- {
		s.Insert(i)
	}
	var got []int
	if n := s.Iterate(-1, func(k int) { got = append(got, k) }); n != 10 {
		t.Fatalf("visited %d", n)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("order %v", got)
		}
	}
	if n := s.Iterate(3, nil); n != 3 {
		t.Fatalf("partial visited %d", n)
	}
}

func TestQuickMatchesMapModel(t *testing.T) {
	f := func(ops []int16) bool {
		s := New[int16](nil, 8)
		ref := map[int16]bool{}
		for i, k := range ops {
			switch i % 3 {
			case 0, 1:
				if s.Insert(k) == ref[k] {
					return false
				}
				ref[k] = true
			case 2:
				if s.Erase(k) != ref[k] {
					return false
				}
				delete(ref, k)
			}
		}
		return s.Len() == len(ref) && s.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySearchCostLogarithmic(t *testing.T) {
	s := New[uint64](nil, 8)
	for i := uint64(0); i < 1<<14; i++ {
		s.Insert(i)
	}
	st := s.Stats()
	st.Reset()
	for i := uint64(0); i < 1000; i++ {
		s.Contains(i * 16)
	}
	avg := float64(st.Cost[2]) / 1000 // opstats.OpFind
	if avg < 10 || avg > 16 {         // log2(16384) = 14
		t.Fatalf("average probes %.1f not ~14", avg)
	}
}

// TestBeatsRBTreeOnLookups verifies the flat-set premise on the simulated
// machine: for a lookup-heavy workload the sorted vector's contiguous
// binary search beats the red-black tree's pointer chasing.
func TestBeatsRBTreeOnLookups(t *testing.T) {
	const n = 4096
	runFlat := func() float64 {
		m := machine.New(machine.Core2())
		s := New[uint64](m, 8)
		for i := uint64(0); i < n; i++ {
			s.Insert(i)
		}
		start := m.Cycles()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 5000; i++ {
			s.Contains(uint64(rng.Intn(n)))
		}
		return m.Cycles() - start
	}
	// Compare against the red-black tree on the same machine config.
	runTree := func() float64 {
		m := machine.New(machine.Core2())
		tr := rbtree.New[uint64, struct{}](m, 8)
		for i := uint64(0); i < n; i++ {
			tr.Insert(i, struct{}{})
		}
		start := m.Cycles()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 5000; i++ {
			tr.Find(uint64(rng.Intn(n)))
		}
		return m.Cycles() - start
	}
	if flat, tree := runFlat(), runTree(); flat >= tree {
		t.Fatalf("flat set (%.0f) not cheaper than rb tree (%.0f) on lookups", flat, tree)
	}
}

func TestMemoryLifecycle(t *testing.T) {
	cm := mem.NewCounting()
	s := New[uint64](cm, 8)
	for i := uint64(0); i < 200; i++ {
		s.Insert(i)
	}
	s.Clear()
	if cm.Live != 0 {
		t.Fatalf("leaked %d bytes", cm.Live)
	}
}
