package sortedvec

import (
	"math/rand"
	"testing"

	"repro/internal/containers/rbtree"
	"repro/internal/machine"
)

// BenchmarkLookupVsRBTree reports the simulated lookup cost of the flat
// sorted set against the red-black tree — the "flat beats tree" effect.
func BenchmarkLookupVsRBTree(b *testing.B) {
	const n = 4096
	var flatCycles, treeCycles float64
	for i := 0; i < b.N; i++ {
		m1 := machine.New(machine.Core2())
		fs := New[uint64](m1, 8)
		m2 := machine.New(machine.Core2())
		rb := rbtree.New[uint64, struct{}](m2, 8)
		for k := uint64(0); k < n; k++ {
			fs.Insert(k)
			rb.Insert(k, struct{}{})
		}
		s1, s2 := m1.Cycles(), m2.Cycles()
		rng := rand.New(rand.NewSource(1))
		for q := 0; q < 2000; q++ {
			k := uint64(rng.Intn(n))
			fs.Contains(k)
			rb.Contains(k)
		}
		flatCycles = (m1.Cycles() - s1) / 2000
		treeCycles = (m2.Cycles() - s2) / 2000
	}
	b.ReportMetric(flatCycles, "flat-cyc/find")
	b.ReportMetric(treeCycles, "rbtree-cyc/find")
}
