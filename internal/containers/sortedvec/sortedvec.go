// Package sortedvec implements a sorted dynamic array with binary search —
// the "flat set" that libraries like Boost added precisely because of the
// effect this repository's paper quantifies: O(log n) lookups over
// contiguous memory often beat every pointer-based tree on real
// microarchitectures, despite the O(n) insertion the asymptotic view
// fixates on. It extends the paper's Table 1 with one more alternative and
// is exercised by the ablation benchmarks.
package sortedvec

import (
	"cmp"
	"sort"

	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside sorted-vector code.
const (
	siteGrow   mem.BranchSite = 0x800 // capacity check on insert
	siteBisect mem.BranchSite = 0x801 // binary-search comparison
)

// Set is a sorted growable array of unique keys. Construct with New.
type Set[K cmp.Ordered] struct {
	elems    []K
	model    mem.Model
	base     mem.Addr
	capBytes uint64
	elemSize uint64
	stats    opstats.Stats
}

// New returns an empty sorted vector bound to the given memory model. A nil
// model defaults to mem.Nop.
func New[K cmp.Ordered](model mem.Model, elemSize uint64) *Set[K] {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	return &Set[K]{model: model, elemSize: elemSize}
}

// Stats exposes the container's accumulated software features.
func (s *Set[K]) Stats() *opstats.Stats {
	s.stats.ElemSize = s.elemSize
	return &s.stats
}

// Len returns the number of keys.
func (s *Set[K]) Len() int { return len(s.elems) }

func (s *Set[K]) addrOf(i int) mem.Addr {
	return s.base + mem.Addr(uint64(i)*s.elemSize)
}

// bisect performs a binary search for key, touching one element and
// executing one data-dependent branch per probe. It returns the insertion
// position and whether the key is present.
func (s *Set[K]) bisect(key K) (pos int, found bool, probes uint64) {
	lo, hi := 0, len(s.elems)
	for lo < hi {
		mid := (lo + hi) / 2
		probes++
		s.model.Read(s.addrOf(mid), s.elemSize)
		less := s.elems[mid] < key
		s.model.Branch(siteBisect, less)
		if less {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found = lo < len(s.elems) && s.elems[lo] == key
	return lo, found, probes
}

func (s *Set[K]) grow(need int) {
	mustGrow := len(s.elems)+need > cap(s.elems)
	s.model.Branch(siteGrow, mustGrow)
	if !mustGrow {
		return
	}
	newCap := cap(s.elems) * 2
	if newCap < len(s.elems)+need {
		newCap = len(s.elems) + need
	}
	if newCap < 4 {
		newCap = 4
	}
	newBytes := uint64(newCap) * s.elemSize
	newBase := s.model.Alloc(newBytes, 16)
	if len(s.elems) > 0 {
		s.model.Read(s.base, uint64(len(s.elems))*s.elemSize)
		s.model.Write(newBase, uint64(len(s.elems))*s.elemSize)
	}
	if s.capBytes > 0 {
		s.model.Free(s.base, s.capBytes)
	}
	ne := make([]K, len(s.elems), newCap)
	copy(ne, s.elems)
	s.elems = ne
	s.base = newBase
	s.capBytes = newBytes
	s.stats.Resizes++
}

// Insert adds key, keeping the array sorted; it returns false when the key
// was already present. Cost: a binary search plus a tail shift.
func (s *Set[K]) Insert(key K) bool {
	pos, found, probes := s.bisect(key)
	if found {
		s.stats.Observe(opstats.OpInsert, probes)
		return false
	}
	s.grow(1)
	moved := len(s.elems) - pos
	if moved > 0 {
		s.model.Read(s.addrOf(pos), uint64(moved)*s.elemSize)
		s.model.Write(s.addrOf(pos+1), uint64(moved)*s.elemSize)
	}
	s.model.Write(s.addrOf(pos), s.elemSize)
	var zero K
	s.elems = append(s.elems, zero)
	copy(s.elems[pos+1:], s.elems[pos:])
	s.elems[pos] = key
	s.stats.Observe(opstats.OpInsert, probes+uint64(moved)+1)
	s.stats.NoteLen(len(s.elems))
	return true
}

// Contains reports whether key is present.
func (s *Set[K]) Contains(key K) bool {
	_, found, probes := s.bisect(key)
	s.stats.Observe(opstats.OpFind, probes)
	return found
}

// Erase removes key and reports whether it was present. Cost: a binary
// search plus a tail shift.
func (s *Set[K]) Erase(key K) bool {
	pos, found, probes := s.bisect(key)
	if !found {
		s.stats.Observe(opstats.OpErase, probes)
		return false
	}
	moved := len(s.elems) - pos - 1
	if moved > 0 {
		s.model.Read(s.addrOf(pos+1), uint64(moved)*s.elemSize)
		s.model.Write(s.addrOf(pos), uint64(moved)*s.elemSize)
	}
	copy(s.elems[pos:], s.elems[pos+1:])
	s.elems = s.elems[:len(s.elems)-1]
	s.stats.Observe(opstats.OpErase, probes+uint64(moved))
	return true
}

// Min returns the smallest key; ok is false when empty.
func (s *Set[K]) Min() (k K, ok bool) {
	if len(s.elems) == 0 {
		return k, false
	}
	s.model.Read(s.addrOf(0), s.elemSize)
	return s.elems[0], true
}

// Max returns the largest key; ok is false when empty.
func (s *Set[K]) Max() (k K, ok bool) {
	if len(s.elems) == 0 {
		return k, false
	}
	s.model.Read(s.addrOf(len(s.elems)-1), s.elemSize)
	return s.elems[len(s.elems)-1], true
}

// Floor returns the greatest key <= key; ok is false when no such key
// exists.
func (s *Set[K]) Floor(key K) (k K, ok bool) {
	pos, found, probes := s.bisect(key)
	s.stats.Observe(opstats.OpFind, probes)
	if found {
		return key, true
	}
	if pos == 0 {
		return k, false
	}
	s.model.Read(s.addrOf(pos-1), s.elemSize)
	return s.elems[pos-1], true
}

// Ceil returns the smallest key >= key; ok is false when no such key
// exists.
func (s *Set[K]) Ceil(key K) (k K, ok bool) {
	pos, found, probes := s.bisect(key)
	s.stats.Observe(opstats.OpFind, probes)
	if found {
		return key, true
	}
	if pos >= len(s.elems) {
		return k, false
	}
	s.model.Read(s.addrOf(pos), s.elemSize)
	return s.elems[pos], true
}

// Iterate visits up to n keys in sorted order via one streaming read,
// calling fn for each; n < 0 visits all keys.
func (s *Set[K]) Iterate(n int, fn func(K)) int {
	if n < 0 || n > len(s.elems) {
		n = len(s.elems)
	}
	if n > 0 {
		s.model.Read(s.base, uint64(n)*s.elemSize)
	}
	for i := 0; i < n; i++ {
		if fn != nil {
			fn(s.elems[i])
		}
	}
	s.stats.Observe(opstats.OpIterate, uint64(n))
	return n
}

// Clear removes all keys, releasing the backing block.
func (s *Set[K]) Clear() {
	if s.capBytes > 0 {
		s.model.Free(s.base, s.capBytes)
	}
	s.elems = nil
	s.base = 0
	s.capBytes = 0
	s.stats.Observe(opstats.OpClear, 1)
}

// Keys returns all keys in sorted order. Intended for tests.
func (s *Set[K]) Keys() []K {
	out := make([]K, len(s.elems))
	copy(out, s.elems)
	return out
}

// CheckInvariants verifies sortedness and uniqueness, returning a
// descriptive violation or "" when valid.
func (s *Set[K]) CheckInvariants() string {
	if !sort.SliceIsSorted(s.elems, func(i, j int) bool { return s.elems[i] < s.elems[j] }) {
		return "keys not sorted"
	}
	for i := 1; i < len(s.elems); i++ {
		if s.elems[i-1] == s.elems[i] {
			return "duplicate keys"
		}
	}
	return ""
}
