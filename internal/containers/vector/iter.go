package vector

// Iter is a forward iterator over a vector. Invalidated by any mutation,
// like its C++ counterpart.
type Iter[T any] struct {
	v   *Vector[T]
	pos int
}

// Begin returns an iterator at the first element.
func (v *Vector[T]) Begin() Iter[T] { return Iter[T]{v: v} }

// Next returns the current element and advances; ok is false past the end.
// Each advance reads one element (iterator stepping is element-at-a-time,
// unlike the streaming bulk Iterate).
func (it *Iter[T]) Next() (x T, ok bool) {
	if it.v == nil || it.pos >= len(it.v.elems) {
		return x, false
	}
	it.v.model.Read(it.v.addrOf(it.pos), it.v.elemSize)
	x = it.v.elems[it.pos]
	it.pos++
	return x, true
}
