package vector

import "testing"

func TestIterVisitsAllInOrder(t *testing.T) {
	v := New[int](nil, 8)
	for i := 0; i < 20; i++ {
		v.PushBack(i * 2)
	}
	it := v.Begin()
	for i := 0; i < 20; i++ {
		x, ok := it.Next()
		if !ok || x != i*2 {
			t.Fatalf("step %d: %d,%v", i, x, ok)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator ran past the end")
	}
}

func TestIterEmpty(t *testing.T) {
	v := New[int](nil, 8)
	it := v.Begin()
	if _, ok := it.Next(); ok {
		t.Fatal("empty vector yielded an element")
	}
	var zero Iter[int]
	if _, ok := zero.Next(); ok {
		t.Fatal("zero iterator yielded an element")
	}
}
