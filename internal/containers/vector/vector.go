// Package vector implements a dynamically sized contiguous array, the
// analog of std::vector. Elements live in one simulated memory block;
// growing doubles capacity and copies every element, and insertion or
// removal in the middle shifts the tail, exactly the costs the paper's
// model has to weigh against the container's superior locality on
// iteration and linear search.
package vector

import (
	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside vector code (see mem.BranchSite).
const (
	siteGrow    mem.BranchSite = 0x100 // "capacity full?" check in push_back/insert
	siteFindCmp mem.BranchSite = 0x101 // the comparison loop in find
	siteBounds  mem.BranchSite = 0x102 // bounds check on positional access
)

// Vector is a growable contiguous sequence of T.
// The zero value is not usable; construct with New.
type Vector[T any] struct {
	elems    []T
	model    mem.Model
	base     mem.Addr
	capBytes uint64
	elemSize uint64
	stats    opstats.Stats
}

// New returns an empty vector bound to the given memory model. elemSize is
// the simulated size of T in bytes; it drives cache behaviour. A nil model
// defaults to mem.Nop.
func New[T any](model mem.Model, elemSize uint64) *Vector[T] {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	return &Vector[T]{model: model, elemSize: elemSize}
}

// Stats exposes the container's accumulated software features.
func (v *Vector[T]) Stats() *opstats.Stats {
	v.stats.ElemSize = v.elemSize
	return &v.stats
}

// Len returns the number of elements.
func (v *Vector[T]) Len() int { return len(v.elems) }

// Cap returns the current capacity.
func (v *Vector[T]) Cap() int { return cap(v.elems) }

func (v *Vector[T]) addrOf(i int) mem.Addr {
	return v.base + mem.Addr(uint64(i)*v.elemSize)
}

// grow ensures room for one more element, doubling the backing block and
// copying all elements when full. Reports the capacity-check branch: the
// rarely taken "must grow" path is the mispredict source the paper
// highlights (Figure 6).
func (v *Vector[T]) grow(need int) {
	mustGrow := len(v.elems)+need > cap(v.elems)
	v.model.Branch(siteGrow, mustGrow)
	if !mustGrow {
		return
	}
	newCap := cap(v.elems) * 2
	if newCap < len(v.elems)+need {
		newCap = len(v.elems) + need
	}
	if newCap < 4 {
		newCap = 4
	}
	newBytes := uint64(newCap) * v.elemSize
	newBase := v.model.Alloc(newBytes, 16)
	// Copy every live element: read old block, write new block.
	if len(v.elems) > 0 {
		v.model.Read(v.base, uint64(len(v.elems))*v.elemSize)
		v.model.Write(newBase, uint64(len(v.elems))*v.elemSize)
	}
	if v.capBytes > 0 {
		v.model.Free(v.base, v.capBytes)
	}
	ne := make([]T, len(v.elems), newCap)
	copy(ne, v.elems)
	v.elems = ne
	v.base = newBase
	v.capBytes = newBytes
	v.stats.Resizes++
	v.stats.Cost[opstats.OpInsert] += uint64(len(v.elems)) // copied elements count as insert cost
}

// Reserve pre-allocates capacity for at least n elements.
func (v *Vector[T]) Reserve(n int) {
	if n > cap(v.elems) {
		v.grow(n - len(v.elems))
	}
}

// PushBack appends x.
func (v *Vector[T]) PushBack(x T) {
	v.grow(1)
	v.model.Write(v.addrOf(len(v.elems)), v.elemSize)
	v.elems = append(v.elems, x)
	v.stats.Observe(opstats.OpPushBack, 1)
	v.stats.NoteLen(len(v.elems))
}

// PopBack removes and returns the last element; ok is false when empty.
func (v *Vector[T]) PopBack() (x T, ok bool) {
	if len(v.elems) == 0 {
		return x, false
	}
	x = v.elems[len(v.elems)-1]
	v.model.Read(v.addrOf(len(v.elems)-1), v.elemSize)
	v.elems = v.elems[:len(v.elems)-1]
	v.stats.Observe(opstats.OpPopBack, 1)
	return x, true
}

// At returns the i-th element. It panics when i is out of range, matching
// slice semantics.
func (v *Vector[T]) At(i int) T {
	v.model.Branch(siteBounds, false)
	v.model.Read(v.addrOf(i), v.elemSize)
	v.stats.Observe(opstats.OpAt, 1)
	return v.elems[i]
}

// Set overwrites the i-th element.
func (v *Vector[T]) Set(i int, x T) {
	v.model.Branch(siteBounds, false)
	v.model.Write(v.addrOf(i), v.elemSize)
	v.stats.Observe(opstats.OpAt, 1)
	v.elems[i] = x
}

// Insert places x before position i, shifting the tail right. The cost is
// the number of shifted elements.
func (v *Vector[T]) Insert(i int, x T) {
	if i < 0 {
		i = 0
	}
	if i > len(v.elems) {
		i = len(v.elems)
	}
	v.grow(1)
	moved := len(v.elems) - i
	if moved > 0 {
		v.model.Read(v.addrOf(i), uint64(moved)*v.elemSize)
		v.model.Write(v.addrOf(i+1), uint64(moved)*v.elemSize)
	}
	v.model.Write(v.addrOf(i), v.elemSize)
	v.elems = append(v.elems, x)
	copy(v.elems[i+1:], v.elems[i:])
	v.elems[i] = x
	v.stats.Observe(opstats.OpInsert, uint64(moved)+1)
	v.stats.NoteLen(len(v.elems))
}

// Erase removes the element at position i, shifting the tail left, and
// returns false when i is out of range.
func (v *Vector[T]) Erase(i int) bool {
	if i < 0 || i >= len(v.elems) {
		return false
	}
	moved := len(v.elems) - i - 1
	if moved > 0 {
		v.model.Read(v.addrOf(i+1), uint64(moved)*v.elemSize)
		v.model.Write(v.addrOf(i), uint64(moved)*v.elemSize)
	}
	copy(v.elems[i:], v.elems[i+1:])
	v.elems = v.elems[:len(v.elems)-1]
	v.stats.Observe(opstats.OpErase, uint64(moved)+1)
	return true
}

// scan models a linear pass over the first n elements: the memory system
// sees one streaming read of the scanned range (contiguous data is fetched
// line by line with prefetch-friendly access), while the comparison loop
// still executes one data-dependent branch per element. This asymmetry —
// cheap streaming for vector, a dependent load per node for list and trees
// — is the locality advantage the paper's motivating example describes.
func (v *Vector[T]) scan(n int, hit bool) {
	if n > 0 {
		v.model.Read(v.base, uint64(n)*v.elemSize)
	}
	for i := 0; i < n-1; i++ {
		v.model.Branch(siteFindCmp, false)
	}
	if n > 0 {
		v.model.Branch(siteFindCmp, hit)
	}
}

// Find performs a linear search and returns the index of the first element
// satisfying eq, or -1. The find cost is the number of elements examined.
func (v *Vector[T]) Find(eq func(T) bool) int {
	found := -1
	for i := range v.elems {
		if eq(v.elems[i]) {
			found = i
			break
		}
	}
	touched := uint64(len(v.elems))
	if found >= 0 {
		touched = uint64(found + 1)
	}
	v.scan(int(touched), found >= 0)
	v.stats.Observe(opstats.OpFind, touched)
	return found
}

// FindErase removes the first element satisfying eq and reports whether one
// was found. It is a single erase interface call whose cost covers both the
// scan to the element and the tail shift, matching how an application's
// erase-by-value is accounted.
func (v *Vector[T]) FindErase(eq func(T) bool) bool {
	found := -1
	for i := range v.elems {
		if eq(v.elems[i]) {
			found = i
			break
		}
	}
	touched := uint64(len(v.elems))
	if found >= 0 {
		touched = uint64(found + 1)
	}
	v.scan(int(touched), found >= 0)
	if found < 0 {
		v.stats.Observe(opstats.OpErase, touched)
		return false
	}
	moved := len(v.elems) - found - 1
	if moved > 0 {
		v.model.Read(v.addrOf(found+1), uint64(moved)*v.elemSize)
		v.model.Write(v.addrOf(found), uint64(moved)*v.elemSize)
	}
	copy(v.elems[found:], v.elems[found+1:])
	v.elems = v.elems[:len(v.elems)-1]
	v.stats.Observe(opstats.OpErase, touched+uint64(moved))
	return true
}

// Iterate visits up to n elements from the front, calling fn for each, and
// returns the number visited. n < 0 visits all elements.
func (v *Vector[T]) Iterate(n int, fn func(T)) int {
	if n < 0 || n > len(v.elems) {
		n = len(v.elems)
	}
	if n > 0 {
		v.model.Read(v.base, uint64(n)*v.elemSize) // streaming read of the prefix
	}
	for i := 0; i < n; i++ {
		if fn != nil {
			fn(v.elems[i])
		}
	}
	v.stats.Observe(opstats.OpIterate, uint64(n))
	return n
}

// Clear removes all elements, releasing the backing block.
func (v *Vector[T]) Clear() {
	if v.capBytes > 0 {
		v.model.Free(v.base, v.capBytes)
	}
	v.elems = nil
	v.base = 0
	v.capBytes = 0
	v.stats.Observe(opstats.OpClear, 1)
}

// Values returns a copy of the contents in order. Intended for tests.
func (v *Vector[T]) Values() []T {
	out := make([]T, len(v.elems))
	copy(out, v.elems)
	return out
}
