package vector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/opstats"
)

func TestPushBackAndValues(t *testing.T) {
	v := New[int](nil, 8)
	for i := 0; i < 100; i++ {
		v.PushBack(i)
	}
	if v.Len() != 100 {
		t.Fatalf("Len = %d, want 100", v.Len())
	}
	got := v.Values()
	for i, x := range got {
		if x != i {
			t.Fatalf("Values[%d] = %d, want %d", i, x, i)
		}
	}
}

func TestInsertShiftsTail(t *testing.T) {
	v := New[int](nil, 8)
	for i := 0; i < 5; i++ {
		v.PushBack(i) // 0 1 2 3 4
	}
	v.Insert(2, 99) // 0 1 99 2 3 4
	want := []int{0, 1, 99, 2, 3, 4}
	for i, w := range want {
		if v.At(i) != w {
			t.Fatalf("At(%d) = %d, want %d", i, v.At(i), w)
		}
	}
}

func TestInsertAtBounds(t *testing.T) {
	v := New[int](nil, 8)
	v.Insert(5, 1)  // clamped to 0 on empty
	v.Insert(-3, 0) // clamped to front
	v.Insert(99, 2) // clamped to back
	want := []int{0, 1, 2}
	got := v.Values()
	if len(got) != len(want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestEraseShiftsTail(t *testing.T) {
	v := New[int](nil, 8)
	for i := 0; i < 5; i++ {
		v.PushBack(i)
	}
	if !v.Erase(1) {
		t.Fatal("Erase(1) = false, want true")
	}
	want := []int{0, 2, 3, 4}
	got := v.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after erase Values = %v, want %v", got, want)
		}
	}
	if v.Erase(10) {
		t.Fatal("Erase(10) out of range = true, want false")
	}
	if v.Erase(-1) {
		t.Fatal("Erase(-1) = true, want false")
	}
}

func TestPopBack(t *testing.T) {
	v := New[int](nil, 8)
	if _, ok := v.PopBack(); ok {
		t.Fatal("PopBack on empty = ok")
	}
	v.PushBack(7)
	x, ok := v.PopBack()
	if !ok || x != 7 {
		t.Fatalf("PopBack = %d,%v want 7,true", x, ok)
	}
	if v.Len() != 0 {
		t.Fatalf("Len = %d after pop, want 0", v.Len())
	}
}

func TestFindCostCountsTouchedElements(t *testing.T) {
	v := New[int](nil, 8)
	for i := 0; i < 10; i++ {
		v.PushBack(i)
	}
	if idx := v.Find(func(x int) bool { return x == 6 }); idx != 6 {
		t.Fatalf("Find = %d, want 6", idx)
	}
	st := v.Stats()
	if st.Count[opstats.OpFind] != 1 {
		t.Fatalf("find count = %d, want 1", st.Count[opstats.OpFind])
	}
	if st.Cost[opstats.OpFind] != 7 { // elements 0..6 touched
		t.Fatalf("find cost = %d, want 7", st.Cost[opstats.OpFind])
	}
	if idx := v.Find(func(x int) bool { return x == 999 }); idx != -1 {
		t.Fatalf("Find missing = %d, want -1", idx)
	}
	if st.Cost[opstats.OpFind] != 7+10 {
		t.Fatalf("find cost after miss = %d, want 17", st.Cost[opstats.OpFind])
	}
}

func TestResizeCountsAndStats(t *testing.T) {
	v := New[int](nil, 8)
	for i := 0; i < 100; i++ {
		v.PushBack(i)
	}
	st := v.Stats()
	if st.Resizes == 0 {
		t.Fatal("expected at least one resize")
	}
	if st.MaxLen != 100 {
		t.Fatalf("MaxLen = %d, want 100", st.MaxLen)
	}
	if st.Count[opstats.OpPushBack] != 100 {
		t.Fatalf("push_back count = %d, want 100", st.Count[opstats.OpPushBack])
	}
}

func TestReserveAvoidsResizes(t *testing.T) {
	v := New[int](nil, 8)
	v.Reserve(1000)
	base := v.Stats().Resizes
	for i := 0; i < 1000; i++ {
		v.PushBack(i)
	}
	if v.Stats().Resizes != base {
		t.Fatalf("resizes grew after Reserve: %d -> %d", base, v.Stats().Resizes)
	}
}

func TestMemoryEventsReported(t *testing.T) {
	cm := mem.NewCounting()
	v := New[uint64](cm, 8)
	for i := 0; i < 64; i++ {
		v.PushBack(uint64(i))
	}
	if cm.Writes == 0 || cm.Allocs == 0 {
		t.Fatalf("no memory events: %+v", cm)
	}
	if cm.Branches() == 0 {
		t.Fatal("no branch events from capacity checks")
	}
	v.Clear()
	if cm.Live != 0 {
		t.Fatalf("leaked %d simulated bytes after Clear", cm.Live)
	}
}

func TestIteratePartial(t *testing.T) {
	v := New[int](nil, 8)
	for i := 0; i < 10; i++ {
		v.PushBack(i)
	}
	sum := 0
	if n := v.Iterate(3, func(x int) { sum += x }); n != 3 {
		t.Fatalf("Iterate(3) visited %d", n)
	}
	if sum != 0+1+2 {
		t.Fatalf("sum = %d, want 3", sum)
	}
	if n := v.Iterate(-1, nil); n != 10 {
		t.Fatalf("Iterate(-1) visited %d, want 10", n)
	}
}

// TestDifferentialAgainstSlice drives the vector and a plain slice with the
// same random operation stream and checks they agree at every step.
func TestDifferentialAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	v := New[int](nil, 8)
	var ref []int
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(5); {
		case op == 0 || len(ref) == 0:
			x := rng.Intn(1000)
			v.PushBack(x)
			ref = append(ref, x)
		case op == 1:
			i := rng.Intn(len(ref) + 1)
			x := rng.Intn(1000)
			v.Insert(i, x)
			ref = append(ref, 0)
			copy(ref[i+1:], ref[i:])
			ref[i] = x
		case op == 2:
			i := rng.Intn(len(ref))
			v.Erase(i)
			ref = append(ref[:i], ref[i+1:]...)
		case op == 3:
			i := rng.Intn(len(ref))
			if got := v.At(i); got != ref[i] {
				t.Fatalf("step %d: At(%d) = %d, want %d", step, i, got, ref[i])
			}
		default:
			x := rng.Intn(1000)
			want := -1
			for i, r := range ref {
				if r == x {
					want = i
					break
				}
			}
			if got := v.Find(func(e int) bool { return e == x }); got != want {
				t.Fatalf("step %d: Find(%d) = %d, want %d", step, x, got, want)
			}
		}
		if v.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, v.Len(), len(ref))
		}
	}
}

// TestQuickContentsMatch is a property test: for any op sequence encoded as
// bytes, the vector matches a slice model.
func TestQuickContentsMatch(t *testing.T) {
	f := func(ops []byte) bool {
		v := New[int](nil, 8)
		var ref []int
		for i, b := range ops {
			switch b % 3 {
			case 0:
				v.PushBack(i)
				ref = append(ref, i)
			case 1:
				pos := 0
				if len(ref) > 0 {
					pos = int(b) % len(ref)
				}
				v.Insert(pos, i)
				ref = append(ref, 0)
				copy(ref[pos+1:], ref[pos:])
				ref[pos] = i
			case 2:
				if len(ref) > 0 {
					pos := int(b) % len(ref)
					v.Erase(pos)
					ref = append(ref[:pos], ref[pos+1:]...)
				}
			}
		}
		got := v.Values()
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestElemSizeDefaults(t *testing.T) {
	v := New[int](nil, 0)
	v.PushBack(1)
	if v.Stats().ElemSize != 8 {
		t.Fatalf("default elem size = %d, want 8", v.Stats().ElemSize)
	}
}
