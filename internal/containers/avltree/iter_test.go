package avltree

import (
	"math/rand"
	"testing"
)

func TestIterSortedOrder(t *testing.T) {
	tr := New[int, int](nil, 16)
	rng := rand.New(rand.NewSource(5))
	for _, k := range rng.Perm(300) {
		tr.Insert(k, -k)
	}
	it := tr.Begin()
	for i := 0; i < 300; i++ {
		k, v, ok := it.Next()
		if !ok || k != i || v != -i {
			t.Fatalf("step %d: %d,%d,%v", i, k, v, ok)
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Fatal("iterator ran past the end")
	}
}

func TestIterEmpty(t *testing.T) {
	tr := New[int, int](nil, 16)
	it := tr.Begin()
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty tree yielded an entry")
	}
}
