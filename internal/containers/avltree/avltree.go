// Package avltree implements an AVL tree with unique keys, the avl_set /
// avl_map alternative of the paper's replacement matrix (Table 1). AVL
// trees are more rigidly balanced than red-black trees: lookups touch
// fewer nodes (shallower trees) at the price of more rotations on
// mutation, which is why RelipmoC's find/iterate-heavy basic-block sets
// prefer avl_set over set in Section 6.4.
package avltree

import (
	"cmp"

	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside AVL tree code.
const (
	siteCmpLess   mem.BranchSite = 0x500
	siteCmpEq     mem.BranchSite = 0x501
	siteRebalance mem.BranchSite = 0x502
)

const nodeOverhead = 24 // 2 pointers + packed height: no parent pointer, unlike the red-black node

type node[K cmp.Ordered, V any] struct {
	left, right *node[K, V]
	height      int
	addr        mem.Addr
	key         K
	val         V
}

// Tree is an AVL tree mapping K to V with unique keys. Construct with New.
type Tree[K cmp.Ordered, V any] struct {
	root      *node[K, V]
	size      int
	model     mem.Model
	elemSize  uint64
	nodeBytes uint64
	stats     opstats.Stats
}

// New returns an empty tree bound to the given memory model. A nil model
// defaults to mem.Nop.
func New[K cmp.Ordered, V any](model mem.Model, elemSize uint64) *Tree[K, V] {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	return &Tree[K, V]{model: model, elemSize: elemSize, nodeBytes: elemSize + nodeOverhead}
}

// Stats exposes the container's accumulated software features.
func (t *Tree[K, V]) Stats() *opstats.Stats {
	t.stats.ElemSize = t.elemSize
	return &t.stats
}

// Len returns the number of keys.
func (t *Tree[K, V]) Len() int { return t.size }

func height[K cmp.Ordered, V any](n *node[K, V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (t *Tree[K, V]) touch(n *node[K, V]) { t.model.Read(n.addr, t.nodeBytes) }

func (t *Tree[K, V]) update(n *node[K, V]) {
	h := height(n.left)
	if r := height(n.right); r > h {
		h = r
	}
	n.height = h + 1
	t.model.Write(n.addr, t.nodeBytes)
}

func balance[K cmp.Ordered, V any](n *node[K, V]) int {
	return height(n.left) - height(n.right)
}

func (t *Tree[K, V]) rotateRight(y *node[K, V]) *node[K, V] {
	x := y.left
	t.touch(x)
	y.left = x.right
	x.right = y
	t.update(y)
	t.update(x)
	t.stats.Rotations++
	return x
}

func (t *Tree[K, V]) rotateLeft(x *node[K, V]) *node[K, V] {
	y := x.right
	t.touch(y)
	x.right = y.left
	y.left = x
	t.update(x)
	t.update(y)
	t.stats.Rotations++
	return y
}

// rebalance restores the AVL property at n after a mutation below it.
func (t *Tree[K, V]) rebalance(n *node[K, V]) *node[K, V] {
	t.update(n)
	b := balance(n)
	unbalanced := b > 1 || b < -1
	t.model.Branch(siteRebalance, unbalanced)
	if !unbalanced {
		return n
	}
	if b > 1 {
		if balance(n.left) < 0 {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	}
	if balance(n.right) > 0 {
		n.right = t.rotateRight(n.right)
	}
	return t.rotateLeft(n)
}

// Find returns the value stored under key.
func (t *Tree[K, V]) Find(key K) (V, bool) {
	touched := uint64(0)
	n := t.root
	for n != nil {
		touched++
		t.touch(n)
		eq := key == n.key
		t.model.Branch(siteCmpEq, eq)
		if eq {
			t.stats.Observe(opstats.OpFind, touched)
			return n.val, true
		}
		less := key < n.key
		t.model.Branch(siteCmpLess, less)
		if less {
			n = n.left
		} else {
			n = n.right
		}
	}
	t.stats.Observe(opstats.OpFind, touched)
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Find(key)
	return ok
}

// Insert adds key→val; it returns false (and overwrites the value) when the
// key was already present.
func (t *Tree[K, V]) Insert(key K, val V) bool {
	var touched uint64
	var added bool
	t.root, added = t.insert(t.root, key, val, &touched)
	if added {
		t.size++
		t.stats.NoteLen(t.size)
	}
	t.stats.Observe(opstats.OpInsert, touched+1)
	return added
}

func (t *Tree[K, V]) insert(n *node[K, V], key K, val V, touched *uint64) (*node[K, V], bool) {
	if n == nil {
		z := &node[K, V]{key: key, val: val, height: 1}
		z.addr = t.model.Alloc(t.nodeBytes, 8)
		t.model.Write(z.addr, t.nodeBytes)
		return z, true
	}
	*touched++
	t.touch(n)
	eq := key == n.key
	t.model.Branch(siteCmpEq, eq)
	if eq {
		n.val = val
		t.model.Write(n.addr, t.nodeBytes)
		return n, false
	}
	less := key < n.key
	t.model.Branch(siteCmpLess, less)
	var added bool
	if less {
		n.left, added = t.insert(n.left, key, val, touched)
	} else {
		n.right, added = t.insert(n.right, key, val, touched)
	}
	if !added {
		return n, false
	}
	return t.rebalance(n), true
}

// Erase removes key and reports whether it was present.
func (t *Tree[K, V]) Erase(key K) bool {
	var touched uint64
	var removed bool
	t.root, removed = t.erase(t.root, key, &touched)
	if removed {
		t.size--
	}
	t.stats.Observe(opstats.OpErase, touched+1)
	return removed
}

func (t *Tree[K, V]) erase(n *node[K, V], key K, touched *uint64) (*node[K, V], bool) {
	if n == nil {
		return nil, false
	}
	*touched++
	t.touch(n)
	eq := key == n.key
	t.model.Branch(siteCmpEq, eq)
	if !eq {
		less := key < n.key
		t.model.Branch(siteCmpLess, less)
		var removed bool
		if less {
			n.left, removed = t.erase(n.left, key, touched)
		} else {
			n.right, removed = t.erase(n.right, key, touched)
		}
		if !removed {
			return n, false
		}
		return t.rebalance(n), true
	}
	// Found: splice out.
	switch {
	case n.left == nil:
		t.model.Free(n.addr, t.nodeBytes)
		return n.right, true
	case n.right == nil:
		t.model.Free(n.addr, t.nodeBytes)
		return n.left, true
	default:
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			*touched++
			t.touch(succ)
			succ = succ.left
		}
		n.key, n.val = succ.key, succ.val
		t.model.Write(n.addr, t.nodeBytes)
		var removed bool
		n.right, removed = t.erase(n.right, succ.key, touched)
		_ = removed // successor is always present
		return t.rebalance(n), true
	}
}

// Iterate visits up to n keys in sorted order, calling fn for each, and
// returns the number visited. n < 0 visits all keys.
func (t *Tree[K, V]) Iterate(n int, fn func(K, V)) int {
	if n < 0 || n > t.size {
		n = t.size
	}
	visited := 0
	var walk func(nd *node[K, V]) bool
	walk = func(nd *node[K, V]) bool {
		if nd == nil {
			return true
		}
		if !walk(nd.left) {
			return false
		}
		if visited >= n {
			return false
		}
		t.touch(nd)
		if fn != nil {
			fn(nd.key, nd.val)
		}
		visited++
		return walk(nd.right)
	}
	walk(t.root)
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}

// Min returns the smallest key; ok is false when empty.
func (t *Tree[K, V]) Min() (k K, ok bool) {
	n := t.root
	if n == nil {
		return k, false
	}
	for n.left != nil {
		t.touch(n)
		n = n.left
	}
	t.touch(n)
	return n.key, true
}

// Clear removes all keys, freeing every node.
func (t *Tree[K, V]) Clear() {
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == nil {
			return
		}
		walk(n.left)
		walk(n.right)
		t.model.Free(n.addr, t.nodeBytes)
	}
	walk(t.root)
	t.root = nil
	t.size = 0
	t.stats.Observe(opstats.OpClear, 1)
}

// Keys returns all keys in sorted order. Intended for tests.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.key)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// CheckInvariants verifies AVL balance, height bookkeeping, and BST order,
// returning a descriptive violation or "" when the tree is valid.
func (t *Tree[K, V]) CheckInvariants() string {
	bad := ""
	var check func(n *node[K, V]) int
	check = func(n *node[K, V]) int {
		if n == nil || bad != "" {
			return 0
		}
		if n.left != nil && !(n.left.key < n.key) {
			bad = "left child key not smaller"
			return 0
		}
		if n.right != nil && !(n.key < n.right.key) {
			bad = "right child key not larger"
			return 0
		}
		lh := check(n.left)
		rh := check(n.right)
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.height != h {
			bad = "stale height"
			return h
		}
		if lh-rh > 1 || rh-lh > 1 {
			bad = "AVL balance violated"
		}
		return h
	}
	check(t.root)
	if bad == "" && len(t.Keys()) != t.size {
		bad = "size mismatch"
	}
	return bad
}
