package avltree

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxFloorCeil(t *testing.T) {
	tr := New[int, string](nil, 16)
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor on empty")
	}
	for _, k := range []int{10, 20, 30} {
		tr.Insert(k, "x")
	}
	if k, ok := tr.Max(); !ok || k != 30 {
		t.Fatalf("Max = %d", k)
	}
	if k, _, ok := tr.Floor(25); !ok || k != 20 {
		t.Fatalf("Floor(25) = %d,%v", k, ok)
	}
	if k, _, ok := tr.Ceil(25); !ok || k != 30 {
		t.Fatalf("Ceil(25) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor below min")
	}
	if _, _, ok := tr.Ceil(35); ok {
		t.Fatal("Ceil above max")
	}
	if k, _, ok := tr.Floor(20); !ok || k != 20 {
		t.Fatal("Floor(exact) wrong")
	}
}

func TestRange(t *testing.T) {
	tr := New[int, int](nil, 16)
	for i := 0; i < 100; i += 2 {
		tr.Insert(i, i)
	}
	var got []int
	n := tr.Range(10, 20, func(k, _ int) { got = append(got, k) })
	want := []int{10, 12, 14, 16, 18, 20}
	if n != len(want) {
		t.Fatalf("visited %d: %v", n, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if tr.Range(21, 10, nil) != 0 {
		t.Fatal("inverted range")
	}
}

func TestQuickBoundsAgainstSort(t *testing.T) {
	f := func(keys []int16, lo, hi int16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New[int16, struct{}](nil, 8)
		uniq := map[int16]bool{}
		for _, k := range keys {
			tr.Insert(k, struct{}{})
			uniq[k] = true
		}
		want := 0
		for k := range uniq {
			if lo <= k && k <= hi {
				want++
			}
		}
		var got []int16
		n := tr.Range(lo, hi, func(k int16, _ struct{}) { got = append(got, k) })
		if n != want || len(got) != want {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
