package avltree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/opstats"
)

func TestInsertFindErase(t *testing.T) {
	tr := New[int, string](nil, 16)
	if !tr.Insert(1, "a") {
		t.Fatal("first insert returned false")
	}
	if tr.Insert(1, "b") {
		t.Fatal("duplicate insert returned true")
	}
	if v, ok := tr.Find(1); !ok || v != "b" {
		t.Fatalf("Find = %q,%v", v, ok)
	}
	if !tr.Erase(1) || tr.Erase(1) {
		t.Fatal("erase semantics wrong")
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New[int, int](nil, 16)
	present := map[int]bool{}
	for step := 0; step < 20000; step++ {
		k := rng.Intn(1500)
		if rng.Intn(3) != 0 {
			added := tr.Insert(k, k)
			if added == present[k] {
				t.Fatalf("step %d: Insert(%d) added=%v present=%v", step, k, added, present[k])
			}
			present[k] = true
		} else {
			removed := tr.Erase(k)
			if removed != present[k] {
				t.Fatalf("step %d: Erase(%d) removed=%v present=%v", step, k, removed, present[k])
			}
			delete(present, k)
		}
		if step%500 == 0 {
			if bad := tr.CheckInvariants(); bad != "" {
				t.Fatalf("step %d: %s", step, bad)
			}
		}
	}
	if bad := tr.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestQuickSortedUnique(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New[int16, struct{}](nil, 8)
		uniq := map[int16]bool{}
		for _, k := range keys {
			tr.Insert(k, struct{}{})
			uniq[k] = true
		}
		got := tr.Keys()
		if len(got) != len(uniq) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		return tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAVLShallowerThanRBOnSequentialInsert(t *testing.T) {
	// AVL's tighter balance should give an average find path no longer than
	// ~1.44*log2(n); verify the measured cost is sane and small.
	tr := New[int, int](nil, 16)
	n := 1 << 13
	for i := 0; i < n; i++ {
		tr.Insert(i, i)
	}
	st := tr.Stats()
	st.Reset()
	for i := 0; i < 1000; i++ {
		tr.Find(i * 8)
	}
	avg := float64(st.Cost[opstats.OpFind]) / 1000
	if avg < 5 || avg > 20 { // 1.44*13 ≈ 18.7
		t.Fatalf("average find cost %.1f outside AVL range", avg)
	}
}

func TestEraseWithTwoChildren(t *testing.T) {
	tr := New[int, int](nil, 16)
	for _, k := range []int{50, 25, 75, 10, 30, 60, 90, 27, 35} {
		tr.Insert(k, k)
	}
	if !tr.Erase(25) { // node with two children; successor is 27
		t.Fatal("erase failed")
	}
	if tr.Contains(25) {
		t.Fatal("25 still present")
	}
	if !tr.Contains(27) || !tr.Contains(30) || !tr.Contains(35) {
		t.Fatal("successor handling lost keys")
	}
	if bad := tr.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestIterateSorted(t *testing.T) {
	tr := New[int, int](nil, 16)
	for _, k := range []int{4, 1, 3, 2, 0} {
		tr.Insert(k, k*k)
	}
	var ks, vs []int
	tr.Iterate(-1, func(k, v int) { ks = append(ks, k); vs = append(vs, v) })
	for i := 0; i < 5; i++ {
		if ks[i] != i || vs[i] != i*i {
			t.Fatalf("iterate got %v / %v", ks, vs)
		}
	}
	if n := tr.Iterate(2, nil); n != 2 {
		t.Fatalf("partial iterate visited %d", n)
	}
}

func TestMinClearAndMemory(t *testing.T) {
	cm := mem.NewCounting()
	tr := New[uint64, uint64](cm, 16)
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	for i := uint64(100); i > 0; i-- {
		tr.Insert(i, i)
	}
	if k, ok := tr.Min(); !ok || k != 1 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
	tr.Clear()
	if cm.Live != 0 {
		t.Fatalf("leaked %d simulated bytes", cm.Live)
	}
}

func TestRotationsRecorded(t *testing.T) {
	tr := New[int, int](nil, 16)
	for i := 0; i < 100; i++ { // sequential inserts force rotations
		tr.Insert(i, i)
	}
	if tr.Stats().Rotations == 0 {
		t.Fatal("no rotations recorded on sequential insert")
	}
	if tr.Stats().Count[opstats.OpInsert] != 100 {
		t.Fatalf("insert count = %d", tr.Stats().Count[opstats.OpInsert])
	}
}
