package flathash

import (
	"sort"
	"testing"

	"repro/internal/containers/hashtable"
)

// FuzzFlatHash drives the flat robin-hood table and the chained hash table
// through the same operation sequence and requires identical answers:
// membership, length, and (order-insensitively) the full key set.
func FuzzFlatHash(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1, 3, 1})
	f.Add([]byte{0, 10, 0, 20, 0, 30, 2, 20, 0, 25, 2, 10, 2, 30, 2, 25})
	f.Fuzz(func(t *testing.T, data []byte) {
		flat := New(nil, 8)
		ref := hashtable.New[uint64, struct{}](nil, 8, hashtable.HashUint64)
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 4
			key := uint64(data[i+1] % 96)
			switch op {
			case 0:
				flat.Insert(key)
				ref.Insert(key, struct{}{})
			case 1:
				if got, want := flat.Contains(key), ref.Contains(key); got != want {
					t.Fatalf("op %d: Contains(%d) = %v, hashtable says %v", i/2, key, got, want)
				}
			case 2:
				if got, want := flat.Erase(key), ref.Erase(key); got != want {
					t.Fatalf("op %d: Erase(%d) = %v, hashtable says %v", i/2, key, got, want)
				}
			case 3:
				if got, want := flat.Len(), ref.Len(); got != want {
					t.Fatalf("op %d: Len = %d, hashtable says %d", i/2, got, want)
				}
			}
		}
		if msg := flat.CheckInvariants(); msg != "" {
			t.Fatalf("invariant violated: %s", msg)
		}
		got, want := flat.Keys(), ref.Keys()
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("key count %d vs hashtable %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("key sets diverge at %d: %d vs %d", i, got[i], want[i])
			}
		}
	})
}
