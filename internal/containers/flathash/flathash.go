// Package flathash implements an open-addressing robin-hood hash set over
// one flat arena region laid out as [control bytes... | keys... |
// payloads...]: a swiss-table-style split where probing streams 1-byte
// controls from a single cache line before touching any key. Each control
// byte stores the slot's probe distance plus one (zero means empty), the
// robin-hood invariant keeps probe sequences short and ordered by distance
// — lookups stop as soon as they meet a slot closer to its home than they
// are — and deletion is tombstone-free: the cluster behind the victim
// shifts back one slot, so the table never degrades with churn. Growth
// doubles the region and reinserts, the table's analog of a rehash.
//
// Elements are uint64 keys; when the simulated element size exceeds 8
// bytes the remainder is modeled as a payload region packed behind the
// keys, touched only when an element is produced or stored, never while
// probing.
package flathash

import (
	"repro/internal/mem"
	"repro/internal/opstats"
)

// Branch sites inside flat-hash code.
const (
	siteProbe mem.BranchSite = 0x800 // slot occupied?
	siteEq    mem.BranchSite = 0x801 // key equality at matching distance
	siteSteal mem.BranchSite = 0x802 // resident closer to home than probe?
	siteGrow  mem.BranchSite = 0x803 // load factor exceeded?
	siteShift mem.BranchSite = 0x804 // backward shift continues?
)

const (
	keyBytes   = 8
	initialCap = 16

	// Grow when size+1 > capacity * 4/5: robin hood stays fast at loads a
	// chained table would have rehashed away from.
	loadNum, loadDen = 4, 5

	// hashWorkUnits is the ALU cost of hashing one key: the same 64-bit
	// mixer as the chained table, but the slot index is a mask instead of
	// the TR1-era modulo-by-prime division — most of the chained table's
	// fixed 40-unit overhead was that divide.
	hashWorkUnits = 12

	// maxCtrl caps the storable probe distance; a shift or displacement
	// that would push a control byte past it forces a grow instead.
	maxCtrl = 254

	arenaChunk = 1 << 16
)

// Table is a flat robin-hood hash set of uint64 keys. Construct with New.
type Table struct {
	model    mem.Model
	arena    *mem.Arena
	elemSize uint64
	payload  uint64 // element bytes beyond the 8-byte key

	ctrl []uint8 // probe distance + 1; 0 = empty
	keys []uint64
	mask uint64
	base mem.Addr
	size int

	stats opstats.Stats
}

// New returns an empty table bound to the given memory model with the given
// simulated element size in bytes. A nil model defaults to mem.Nop.
func New(model mem.Model, elemSize uint64) *Table {
	if model == nil {
		model = mem.Nop{}
	}
	if elemSize == 0 {
		elemSize = 8
	}
	payload := uint64(0)
	if elemSize > keyBytes {
		payload = elemSize - keyBytes
	}
	t := &Table{
		model:    model,
		arena:    mem.NewArena(model, arenaChunk),
		elemSize: elemSize,
		payload:  payload,
	}
	t.allocRegion(initialCap)
	return t
}

// hash is the same Fibonacci/avalanche mixer the chained table uses.
func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Stats exposes the container's accumulated software features.
func (t *Table) Stats() *opstats.Stats {
	t.stats.ElemSize = t.elemSize
	return &t.stats
}

// Len returns the number of keys.
func (t *Table) Len() int { return t.size }

// Cap returns the current slot count.
func (t *Table) Cap() int { return len(t.ctrl) }

// ArenaBytes reports the simulated bytes the table's arena has reserved.
func (t *Table) ArenaBytes() uint64 { return t.arena.Bytes() }

func (t *Table) regionBytes(capacity uint64) uint64 {
	return capacity * (1 + keyBytes + t.payload)
}

func (t *Table) ctrlAddr(i uint64) mem.Addr { return t.base + mem.Addr(i) }
func (t *Table) keyAddr(i uint64) mem.Addr {
	return t.base + mem.Addr(uint64(len(t.ctrl))+i*keyBytes)
}
func (t *Table) payAddr(i uint64) mem.Addr {
	return t.base + mem.Addr(uint64(len(t.ctrl))*(1+keyBytes)+i*t.payload)
}

// runSpans invokes fn over the one or two contiguous address spans covering
// count slots starting at slot i in one SoA region (split where the run
// wraps the table edge). addr maps a slot index to its address and width is
// the region's bytes per slot.
func (t *Table) runSpans(i, count, width uint64, addr func(uint64) mem.Addr, fn func(mem.Addr, uint64)) {
	capacity := t.mask + 1
	first := count
	if i+count > capacity {
		first = capacity - i
	}
	fn(addr(i), first*width)
	if rest := count - first; rest > 0 {
		fn(addr(0), rest*width)
	}
}

func (t *Table) spanRead(a mem.Addr, n uint64)  { t.model.Read(a, n) }
func (t *Table) spanWrite(a mem.Addr, n uint64) { t.model.Write(a, n) }

func (t *Table) allocRegion(capacity uint64) {
	t.base = t.arena.Alloc(t.regionBytes(capacity), 64)
	t.ctrl = make([]uint8, capacity)
	t.keys = make([]uint64, capacity)
	t.mask = capacity - 1
	// Zeroing the control region is one streaming span write.
	t.model.Write(t.ctrlAddr(0), capacity)
}

// lookup probes for key, returning the slot where it lives (or where
// probing stopped), whether it was found, and slots touched.
func (t *Table) lookup(key uint64) (uint64, bool, uint64) {
	i := hash(key) & t.mask
	d := uint64(0)
	touched := uint64(0)
	for {
		t.model.Read(t.ctrlAddr(i), 1)
		touched++
		c := uint64(t.ctrl[i])
		occupied := c != 0
		t.model.Branch(siteProbe, occupied)
		if !occupied {
			return i, false, touched
		}
		if c-1 == d {
			// Same distance at the same slot means the same home bucket:
			// only here can the resident equal our key.
			t.model.Read(t.keyAddr(i), keyBytes)
			eq := t.keys[i] == key
			t.model.Branch(siteEq, eq)
			if eq {
				return i, true, touched
			}
		} else {
			// A resident closer to its home than we are to ours proves the
			// key absent — the robin-hood early exit.
			richer := c-1 < d
			t.model.Branch(siteSteal, richer)
			if richer {
				return i, false, touched
			}
		}
		i = (i + 1) & t.mask
		d++
	}
}

// Contains reports whether key is present.
func (t *Table) Contains(key uint64) bool {
	t.model.Work(hashWorkUnits)
	i, found, touched := t.lookup(key)
	if found && t.payload > 0 {
		t.model.Read(t.payAddr(i), t.payload)
	}
	t.stats.Observe(opstats.OpFind, touched)
	return found
}

// Insert adds key; it returns false (overwriting the payload) when the key
// was already present.
func (t *Table) Insert(key uint64) bool {
	t.model.Work(hashWorkUnits)
	needGrow := uint64(t.size+1)*loadDen > uint64(len(t.ctrl))*loadNum
	t.model.Branch(siteGrow, needGrow)
	if needGrow {
		t.grow()
	}
	var touched uint64
	for {
		done, fresh := t.tryInsert(key, &touched)
		if done {
			t.stats.Observe(opstats.OpInsert, touched)
			if fresh {
				t.size++
				t.stats.NoteLen(t.size)
			}
			return fresh
		}
		t.grow() // a control byte would overflow; vanishingly rare
	}
}

// tryInsert probes for key's slot and inserts with a forward shift of the
// displaced run. It reports done=false when a control byte would overflow
// maxCtrl, in which case the caller grows and retries.
func (t *Table) tryInsert(key uint64, touched *uint64) (done, fresh bool) {
	i := hash(key) & t.mask
	d := uint64(0)
	for {
		t.model.Read(t.ctrlAddr(i), 1)
		*touched++
		c := uint64(t.ctrl[i])
		occupied := c != 0
		t.model.Branch(siteProbe, occupied)
		if !occupied {
			if d >= maxCtrl {
				return false, false
			}
			t.ctrl[i] = uint8(d + 1)
			t.keys[i] = key
			t.model.Write(t.ctrlAddr(i), 1)
			t.model.Write(t.keyAddr(i), keyBytes)
			if t.payload > 0 {
				t.model.Write(t.payAddr(i), t.payload)
			}
			return true, true
		}
		if c-1 == d {
			t.model.Read(t.keyAddr(i), keyBytes)
			eq := t.keys[i] == key
			t.model.Branch(siteEq, eq)
			if eq {
				if t.payload > 0 {
					t.model.Write(t.payAddr(i), t.payload)
				}
				return true, false
			}
		} else {
			steal := c-1 < d
			t.model.Branch(siteSteal, steal)
			if steal {
				if !t.shiftInsert(i, d, key, touched) {
					return false, false
				}
				return true, true
			}
		}
		i = (i + 1) & t.mask
		d++
		if d >= maxCtrl {
			return false, false
		}
	}
}

// shiftInsert claims slot i for key (at distance d) by shifting the
// contiguous run [i, first-empty) one slot forward — every moved resident's
// distance grows by one, which preserves the robin-hood ordering. Reports
// false when any moved control byte would overflow.
func (t *Table) shiftInsert(i, d, key uint64, touched *uint64) bool {
	if d >= maxCtrl {
		return false
	}
	// Find the end of the run.
	end := i
	run := uint64(0)
	for {
		t.model.Read(t.ctrlAddr(end), 1)
		*touched++
		occupied := t.ctrl[end] != 0
		t.model.Branch(siteProbe, occupied)
		if !occupied {
			break
		}
		if t.ctrl[end] >= maxCtrl {
			return false
		}
		end = (end + 1) & t.mask
		run++
		if run > t.mask {
			return false // table pathologically full; caller grows
		}
	}
	// Move [i, end) to [i+1, end], walking backwards on the Go side. The
	// simulated traffic is memmove-shaped: each SoA region shifts one slot
	// right as a span copy, so the cost is lines covered by the run, not a
	// per-slot transfer. The ctrl bytes were already read by the scan above,
	// leaving only their rewrite.
	for j := end; j != i; {
		prev := (j - 1) & t.mask
		t.ctrl[j] = t.ctrl[prev] + 1
		t.keys[j] = t.keys[prev]
		j = prev
	}
	if run > 0 {
		dst := (i + 1) & t.mask
		t.runSpans(dst, run, 1, t.ctrlAddr, t.spanWrite)
		t.runSpans(i, run, keyBytes, t.keyAddr, t.spanRead)
		t.runSpans(dst, run, keyBytes, t.keyAddr, t.spanWrite)
		if t.payload > 0 {
			t.runSpans(i, run, t.payload, t.payAddr, t.spanRead)
			t.runSpans(dst, run, t.payload, t.payAddr, t.spanWrite)
		}
	}
	t.ctrl[i] = uint8(d + 1)
	t.keys[i] = key
	t.model.Write(t.ctrlAddr(i), 1)
	t.model.Write(t.keyAddr(i), keyBytes)
	if t.payload > 0 {
		t.model.Write(t.payAddr(i), t.payload)
	}
	return true
}

// Erase removes key and reports whether it was present. The run behind the
// victim shifts back one slot — no tombstones, so lookups never scan dead
// space.
func (t *Table) Erase(key uint64) bool {
	t.model.Work(hashWorkUnits)
	i, found, touched := t.lookup(key)
	if !found {
		t.stats.Observe(opstats.OpErase, touched)
		return false
	}
	j := i
	moved := uint64(0)
	for {
		nxt := (j + 1) & t.mask
		t.model.Read(t.ctrlAddr(nxt), 1)
		c := uint64(t.ctrl[nxt])
		shift := c > 1 // occupied and displaced from its home
		t.model.Branch(siteShift, shift)
		if !shift {
			break
		}
		touched++
		t.ctrl[j] = uint8(c - 1)
		t.keys[j] = t.keys[nxt]
		j = nxt
		moved++
	}
	// The displaced run slides back one slot as span copies per SoA region
	// (the decision walk above already read each ctrl byte).
	if moved > 0 {
		src := (i + 1) & t.mask
		t.runSpans(i, moved, 1, t.ctrlAddr, t.spanWrite)
		t.runSpans(src, moved, keyBytes, t.keyAddr, t.spanRead)
		t.runSpans(i, moved, keyBytes, t.keyAddr, t.spanWrite)
		if t.payload > 0 {
			t.runSpans(src, moved, t.payload, t.payAddr, t.spanRead)
			t.runSpans(i, moved, t.payload, t.payAddr, t.spanWrite)
		}
	}
	t.ctrl[j] = 0
	t.model.Write(t.ctrlAddr(j), 1)
	t.size--
	t.stats.Observe(opstats.OpErase, touched)
	return true
}

// grow doubles the region and reinserts every key — the flat table's
// rehash, with the old and new regions both arena-resident during the move.
func (t *Table) grow() {
	oldCtrl, oldKeys := t.ctrl, t.keys
	oldBase := t.base
	oldCap := uint64(len(oldCtrl))
	oldPayBase := t.base + mem.Addr(oldCap*(1+keyBytes))
	t.allocRegion(oldCap * 2)
	// The reinsertion scan streams the old control region once.
	t.model.Read(mem.Addr(oldBase), oldCap)
	var scratch uint64
	for idx, c := range oldCtrl {
		if c == 0 {
			continue
		}
		key := oldKeys[idx]
		t.model.Read(oldBase+mem.Addr(oldCap+uint64(idx)*keyBytes), keyBytes)
		if t.payload > 0 {
			t.model.Read(oldPayBase+mem.Addr(uint64(idx)*t.payload), t.payload)
		}
		if done, _ := t.tryInsert(key, &scratch); !done {
			// Unreachable at half load with an avalanche mixer.
			panic("flathash: control overflow while growing")
		}
	}
	t.arena.Free(oldBase, t.regionBytes(oldCap))
	t.stats.Rehashes++
	t.stats.Resizes++
}

// Iterate visits up to n keys in slot order, calling fn for each, and
// returns the number visited. n < 0 visits all keys. The order is unrelated
// to insertion order, like the chained table's bucket order.
func (t *Table) Iterate(n int, fn func(uint64)) int {
	if n < 0 || n > t.size {
		n = t.size
	}
	visited := 0
	for i := uint64(0); i < uint64(len(t.ctrl)) && visited < n; i++ {
		t.model.Read(t.ctrlAddr(i), 1)
		if t.ctrl[i] == 0 {
			continue
		}
		t.model.Read(t.keyAddr(i), keyBytes)
		if t.payload > 0 {
			t.model.Read(t.payAddr(i), t.payload)
		}
		if fn != nil {
			fn(t.keys[i])
		}
		visited++
	}
	t.stats.Observe(opstats.OpIterate, uint64(visited))
	return visited
}

// First returns the key of the first occupied slot; ok is false when the
// table is empty. It models reading the begin() iterator and does not count
// as an interface invocation.
func (t *Table) First() (uint64, bool) {
	for i := uint64(0); i < uint64(len(t.ctrl)); i++ {
		t.model.Read(t.ctrlAddr(i), 1)
		if t.ctrl[i] != 0 {
			t.model.Read(t.keyAddr(i), keyBytes)
			return t.keys[i], true
		}
	}
	return 0, false
}

// Clear removes all keys and releases the arena; the table is reusable
// afterwards.
func (t *Table) Clear() {
	t.arena.Release()
	t.allocRegion(initialCap)
	t.size = 0
	t.stats.Observe(opstats.OpClear, 1)
}

// Keys returns all keys in iteration (slot) order. Intended for tests.
func (t *Table) Keys() []uint64 {
	out := make([]uint64, 0, t.size)
	for i, c := range t.ctrl {
		if c != 0 {
			out = append(out, t.keys[i])
		}
	}
	return out
}

// CheckInvariants verifies control-byte bookkeeping — stored distances
// match each key's home slot, runs are gapless, and size is right —
// returning a descriptive violation or "" when the table is valid.
func (t *Table) CheckInvariants() string {
	count := 0
	for i, c := range t.ctrl {
		if c == 0 {
			continue
		}
		count++
		d := uint64(c - 1)
		home := hash(t.keys[i]) & t.mask
		if (uint64(i)-home)&t.mask != d {
			return "stored distance disagrees with key's home slot"
		}
		if d > 0 {
			prev := t.ctrl[(uint64(i)-1)&t.mask]
			if prev == 0 {
				return "displaced slot behind an empty slot"
			}
			if uint64(prev-1) < d-1 {
				return "robin-hood ordering violated"
			}
		}
	}
	if count != t.size {
		return "size mismatch"
	}
	return ""
}
