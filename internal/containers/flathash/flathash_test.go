package flathash

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/mem"
)

func checkAgainstSet(t *testing.T, tb *Table, want map[uint64]bool) {
	t.Helper()
	if tb.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(want))
	}
	got := tb.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() returned %d keys, want %d", len(got), len(want))
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("Keys() contains unexpected %d", k)
		}
	}
	if msg := tb.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestInsertFindEraseSmall(t *testing.T) {
	tb := New(nil, 8)
	if tb.Contains(1) {
		t.Fatal("empty table contains 1")
	}
	if !tb.Insert(5) || !tb.Insert(3) || !tb.Insert(9) {
		t.Fatal("fresh inserts reported duplicate")
	}
	if tb.Insert(5) {
		t.Fatal("duplicate insert reported fresh")
	}
	checkAgainstSet(t, tb, map[uint64]bool{3: true, 5: true, 9: true})
	if !tb.Contains(3) || !tb.Contains(5) || !tb.Contains(9) || tb.Contains(4) {
		t.Fatal("membership wrong")
	}
	if !tb.Erase(5) || tb.Erase(5) {
		t.Fatal("erase wrong")
	}
	checkAgainstSet(t, tb, map[uint64]bool{3: true, 9: true})
}

func TestGrowthAndLoadFactor(t *testing.T) {
	tb := New(nil, 8)
	const n = 10000
	for i := 0; i < n; i++ {
		tb.Insert(uint64(i) * 2654435761)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d", tb.Len())
	}
	if tb.Stats().Rehashes == 0 {
		t.Fatal("no rehash recorded over 10000 inserts")
	}
	// Load factor must never exceed the configured ceiling.
	if uint64(tb.Len())*loadDen > uint64(tb.Cap())*loadDen {
		t.Fatalf("over-full: %d keys in %d slots", tb.Len(), tb.Cap())
	}
	if uint64(tb.Len())*loadDen > uint64(tb.Cap())*loadNum+loadDen {
		t.Fatalf("load factor above ceiling: %d/%d", tb.Len(), tb.Cap())
	}
	if msg := tb.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	for i := 0; i < n; i++ {
		if !tb.Contains(uint64(i) * 2654435761) {
			t.Fatalf("lost key %d after growth", i)
		}
	}
}

func TestBackwardShiftDeletion(t *testing.T) {
	// Erase in every order; backward shift must keep probe chains gapless so
	// later lookups still find everything.
	for _, order := range []string{"ascending", "descending", "shuffled"} {
		t.Run(order, func(t *testing.T) {
			tb := New(nil, 8)
			const n = 3000
			for i := 0; i < n; i++ {
				tb.Insert(uint64(i))
			}
			victims := make([]int, n)
			for i := range victims {
				victims[i] = i
			}
			switch order {
			case "descending":
				sort.Sort(sort.Reverse(sort.IntSlice(victims)))
			case "shuffled":
				rand.New(rand.NewSource(7)).Shuffle(n, func(i, j int) {
					victims[i], victims[j] = victims[j], victims[i]
				})
			}
			for i, v := range victims {
				if !tb.Erase(uint64(v)) {
					t.Fatalf("erase %d failed", v)
				}
				if i%251 == 0 {
					if msg := tb.CheckInvariants(); msg != "" {
						t.Fatalf("after %d erases: %s", i+1, msg)
					}
				}
			}
			if tb.Len() != 0 {
				t.Fatalf("table not empty: %d", tb.Len())
			}
			if msg := tb.CheckInvariants(); msg != "" {
				t.Fatalf("empty-table invariant: %s", msg)
			}
			tb.Insert(42)
			if !tb.Contains(42) || tb.Len() != 1 {
				t.Fatal("table unusable after drain")
			}
		})
	}
}

func TestIterateAndFirst(t *testing.T) {
	tb := New(nil, 8)
	if _, ok := tb.First(); ok {
		t.Fatal("First on empty table reported a key")
	}
	var want uint64
	for i := 0; i < 500; i++ {
		tb.Insert(uint64(i) * 3)
		want += uint64(i) * 3
	}
	var sum uint64
	if got := tb.Iterate(-1, func(k uint64) { sum += k }); got != 500 {
		t.Fatalf("Iterate(-1) visited %d", got)
	}
	if sum != want {
		t.Fatalf("iterate sum %d, want %d", sum, want)
	}
	if got := tb.Iterate(30, nil); got != 30 {
		t.Fatalf("Iterate(30) visited %d", got)
	}
	// First returns the same key a full iteration would yield first.
	var head uint64
	tb.Iterate(1, func(k uint64) { head = k })
	if k, ok := tb.First(); !ok || k != head {
		t.Fatalf("First = %d,%v; iteration head %d", k, ok, head)
	}
}

func TestClearAndReuse(t *testing.T) {
	m := mem.NewCounting()
	tb := New(m, 8)
	for i := 0; i < 2000; i++ {
		tb.Insert(uint64(i))
	}
	if tb.ArenaBytes() == 0 {
		t.Fatal("arena reserved nothing")
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatalf("Clear left len=%d", tb.Len())
	}
	tb.Insert(7)
	if !tb.Contains(7) {
		t.Fatal("table unusable after Clear")
	}
}

func TestArenaAmortization(t *testing.T) {
	m := mem.NewCounting()
	tb := New(m, 8)
	for i := 0; i < 50000; i++ {
		tb.Insert(uint64(i))
	}
	// Growth doubles the region each time: ~13 region allocations for 50k
	// keys, plus chunk reservations — far below per-element allocation.
	if m.Allocs > 100 {
		t.Fatalf("model saw %d allocations; flat layout broken", m.Allocs)
	}
}

func TestPayloadChurn(t *testing.T) {
	tb := New(mem.NewCounting(), 64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		tb.Insert(uint64(rng.Intn(2000)))
		if rng.Intn(3) == 0 {
			tb.Erase(uint64(rng.Intn(2000)))
		}
	}
	if msg := tb.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestDifferentialRandomOps(t *testing.T) {
	tb := New(nil, 8)
	ref := map[uint64]bool{}
	rng := rand.New(rand.NewSource(42))
	const space = 700
	for i := 0; i < 60000; i++ {
		k := uint64(rng.Intn(space))
		switch rng.Intn(4) {
		case 0, 1:
			got := tb.Insert(k)
			want := !ref[k]
			if got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			ref[k] = true
		case 2:
			got := tb.Erase(k)
			if got != ref[k] {
				t.Fatalf("op %d: Erase(%d) = %v, want %v", i, k, got, ref[k])
			}
			delete(ref, k)
		case 3:
			if got := tb.Contains(k); got != ref[k] {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, ref[k])
			}
		}
		if i%4999 == 0 {
			checkAgainstSet(t, tb, ref)
		}
	}
	checkAgainstSet(t, tb, ref)
}
