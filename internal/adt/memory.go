package adt

// EstimatedBytes returns the steady-state simulated memory footprint of a
// container of the given kind holding n elements of elemSize bytes. The
// formulas mirror the per-node overheads the implementations actually
// allocate, so Brainy's reports can quantify the memory side of a
// replacement — the bloat dimension Chameleon tracks and the paper folds
// into its generator (Section 7: "extra memory consumption" is why
// hash_set loses on Xalancbmk's train input).
func EstimatedBytes(kind Kind, n int, elemSize uint64) uint64 {
	if n <= 0 {
		return 0
	}
	un := uint64(n)
	switch kind {
	case KindVector:
		// Geometric growth leaves capacity at the next power of two.
		capacity := uint64(4)
		for capacity < un {
			capacity *= 2
		}
		return capacity * elemSize
	case KindDeque:
		const chunkBytes = 512
		perChunk := chunkBytes / elemSize
		if perChunk < 1 {
			perChunk = 1
		}
		chunks := (un + perChunk - 1) / perChunk
		return chunks*perChunk*elemSize + chunks*8 // chunk payloads + map
	case KindList:
		return un * (elemSize + 16) // two pointers per node
	case KindSet, KindMap:
		return un * (elemSize + 32) // left/right/parent + color
	case KindAVLSet, KindAVLMap:
		return un * (elemSize + 24) // left/right + height
	case KindSplaySet:
		return un * (elemSize + 24)
	case KindHashSet, KindHashMap:
		// Nodes plus the bucket array at its post-growth size.
		buckets := uint64(16)
		for buckets < un {
			buckets *= 2
		}
		return un*(elemSize+16) + buckets*8
	case KindBTreeSet, KindBTreeMap:
		// Nodes of up to 15 keys at ~2/3 occupancy; each node carries its
		// full key/value array, child pointers, and a header.
		const maxKeys = 15
		nodeBytes := maxKeys*elemSize + (maxKeys+1)*8 + 16
		nodes := (un + 9) / 10 // ceil(n / (15 * 2/3))
		if nodes < 1 {
			nodes = 1
		}
		return nodes * nodeBytes
	case KindSortedVec:
		// Same geometric growth as vector: contiguous keys, no per-node
		// overhead.
		capacity := uint64(4)
		for capacity < un {
			capacity *= 2
		}
		return capacity * elemSize
	case KindFlatBTreeSet, KindFlatBTreeMap:
		// Leaves of up to 23 keys at ~3/4 occupancy in 64 KiB arena chunks;
		// internal nodes add a few percent, folded into the 5% slack.
		const maxKeys = 23
		payload := uint64(0)
		if elemSize > 8 {
			payload = elemSize - 8
		}
		leafBytes := uint64(16) + maxKeys*8 + maxKeys*payload
		leaves := (un + 17) / 18 // ceil(n / (23 * 3/4))
		if leaves < 1 {
			leaves = 1
		}
		return leaves * leafBytes * 21 / 20
	case KindFlatHashSet, KindFlatHashMap:
		// One flat region: a control byte and the element per slot, at the
		// post-growth power-of-two capacity (load ceiling 4/5).
		capacity := uint64(16)
		for capacity*4 < un*5 {
			capacity *= 2
		}
		return capacity * (1 + elemSize)
	default:
		return un * elemSize
	}
}
