// Package adt presents every container behind one abstract data type, the
// role the C++ template parameter plays in the paper's application
// generator (Section 4.2): a synthetic application is written once against
// the ADT and instantiated with each interchangeable implementation, so the
// only difference between the variants is the data structure.
//
// The package also encodes the replacement matrix of Table 1, including the
// order-obliviousness restriction: associative containers iterate in sorted
// (or hash) order, so they may only replace a sequence when the application
// never relies on insertion order.
package adt

import (
	"fmt"

	"repro/internal/containers/avltree"
	"repro/internal/containers/btree"
	"repro/internal/containers/deque"
	"repro/internal/containers/flatbtree"
	"repro/internal/containers/flathash"
	"repro/internal/containers/hashtable"
	"repro/internal/containers/list"
	"repro/internal/containers/rbtree"
	"repro/internal/containers/sortedvec"
	"repro/internal/containers/splaytree"
	"repro/internal/containers/vector"
	"repro/internal/mem"
	"repro/internal/opstats"
)

// Kind identifies a container implementation.
type Kind int

// The implementations of the paper's Table 1, plus the splay-tree,
// B-tree, and sorted-vector extensions. Map kinds reuse the set
// implementations with a key+value payload. New kinds append before
// NumKinds so the integer values of existing kinds — serialized inside
// trained model registries — never move.
const (
	KindVector Kind = iota
	KindList
	KindDeque
	KindSet     // red-black tree
	KindAVLSet  // AVL tree
	KindHashSet // chained hash table
	KindSplaySet
	KindMap // red-black tree, key+value payload
	KindAVLMap
	KindHashMap
	KindBTreeSet     // cache-conscious B-tree
	KindSortedVec    // sorted dynamic array, binary search
	KindBTreeMap     // B-tree, key+value payload
	KindFlatBTreeSet // arena-backed SoA B+-tree
	KindFlatHashSet  // open-addressing robin-hood flat hash table
	KindFlatBTreeMap // flat B+-tree, key+value payload
	KindFlatHashMap  // flat hash table, key+value payload
	NumKinds
)

var kindNames = [NumKinds]string{
	"vector", "list", "deque",
	"set", "avl_set", "hash_set", "splay_set",
	"map", "avl_map", "hash_map",
	"btree_set", "sorted_vec", "btree_map",
	"flat_btree_set", "flat_hash_set", "flat_btree_map", "flat_hash_map",
}

// String returns the STL-style name of the kind.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind returns the Kind named s.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("adt: unknown container kind %q", s)
}

// IsSequence reports whether the kind preserves insertion order.
func (k Kind) IsSequence() bool {
	return k == KindVector || k == KindList || k == KindDeque
}

// IsAssociative reports whether the kind stores unique keys.
func (k Kind) IsAssociative() bool { return k >= KindSet && k < NumKinds }

// IsMapKind reports whether the kind carries a key+value payload.
func (k Kind) IsMapKind() bool {
	return k == KindMap || k == KindAVLMap || k == KindHashMap || k == KindBTreeMap ||
		k == KindFlatBTreeMap || k == KindFlatHashMap
}

// IsFlat reports whether the kind stores elements in contiguous arena-backed
// regions rather than per-node heap cells — the cache-conscious backends the
// drift rules prefer on miss-heavy profiles.
func (k Kind) IsFlat() bool {
	return k == KindFlatBTreeSet || k == KindFlatHashSet ||
		k == KindFlatBTreeMap || k == KindFlatHashMap
}

// Container is the abstract data type the synthetic applications and the
// real workloads drive. Keys are uint64; the simulated element size is set
// at construction and may exceed 8 bytes to model large records.
//
// Semantics across families:
//   - Insert appends for sequences and does a keyed insert for associative
//     containers.
//   - InsertAt inserts before a position for sequences; associative
//     containers ignore the position.
//   - PushFront prepends for sequences (an O(n) shift for vector); for
//     associative containers it degenerates to Insert.
//   - Erase removes the first element equal to key (search + unlink for
//     sequences, keyed removal for associative containers).
//   - EraseFront removes the first element (the smallest key for trees, an
//     arbitrary one for hash tables).
//   - Find reports membership; Iterate visits up to n elements in the
//     container's natural order.
type Container interface {
	Kind() Kind
	Insert(key uint64)
	InsertAt(pos int, key uint64)
	PushFront(key uint64)
	Erase(key uint64) bool
	EraseFront() bool
	Find(key uint64) bool
	Iterate(n int) uint64
	Len() int
	Clear()
	Stats() *opstats.Stats
}

// New constructs a container of the given kind bound to model, with the
// given simulated element size in bytes.
func New(kind Kind, model mem.Model, elemSize uint64) Container {
	switch kind {
	case KindVector:
		return &vectorADT{kind: kind, v: vector.New[uint64](model, elemSize)}
	case KindList:
		return &listADT{kind: kind, l: list.New[uint64](model, elemSize)}
	case KindDeque:
		return &dequeADT{kind: kind, d: deque.New[uint64](model, elemSize)}
	case KindSet, KindMap:
		return &rbADT{kind: kind, t: rbtree.New[uint64, struct{}](model, elemSize)}
	case KindAVLSet, KindAVLMap:
		return &avlADT{kind: kind, t: avltree.New[uint64, struct{}](model, elemSize)}
	case KindHashSet, KindHashMap:
		return &hashADT{kind: kind, t: hashtable.New[uint64, struct{}](model, elemSize, hashtable.HashUint64)}
	case KindSplaySet:
		return &splayADT{kind: kind, t: splaytree.New[uint64, struct{}](model, elemSize)}
	case KindBTreeSet, KindBTreeMap:
		return &btreeADT{kind: kind, t: btree.New[uint64, struct{}](model, elemSize)}
	case KindSortedVec:
		return &sortedvecADT{kind: kind, s: sortedvec.New[uint64](model, elemSize)}
	case KindFlatBTreeSet, KindFlatBTreeMap:
		return &flatbtreeADT{kind: kind, t: flatbtree.New(model, elemSize)}
	case KindFlatHashSet, KindFlatHashMap:
		return &flathashADT{kind: kind, t: flathash.New(model, elemSize)}
	default:
		panic(fmt.Sprintf("adt: invalid kind %d", kind))
	}
}

// Replacement describes one row of Table 1.
type Replacement struct {
	From, To       Kind
	Benefit        string
	OrderOblivious bool // legal only when the app never relies on insertion order
}

// Replacements is the full replacement matrix of Table 1, extended with the
// splay-tree, B-tree, and sorted-vector alternatives. B-tree and sorted
// vector iterate in sorted order like set, so replacing set with either
// preserves iteration order; replacing a sequence with them is
// order-oblivious like the other associative targets.
var Replacements = []Replacement{
	{KindVector, KindList, "fast insertion", false},
	{KindVector, KindDeque, "fast insertion", false},
	{KindVector, KindSet, "fast search", true},
	{KindVector, KindAVLSet, "fast search", true},
	{KindVector, KindHashSet, "fast insertion & search", true},
	{KindVector, KindSortedVec, "fast search, contiguous", true},
	{KindVector, KindFlatBTreeSet, "fast search, flat layout", true},
	{KindVector, KindFlatHashSet, "fast insertion & search, flat layout", true},

	{KindList, KindVector, "fast iteration", false},
	{KindList, KindDeque, "fast iteration", false},
	{KindList, KindSet, "fast search", true},
	{KindList, KindAVLSet, "fast search", true},
	{KindList, KindHashSet, "fast search", true},
	{KindList, KindSortedVec, "fast search, contiguous", true},
	{KindList, KindFlatBTreeSet, "fast search, flat layout", true},
	{KindList, KindFlatHashSet, "fast search, flat layout", true},

	{KindSet, KindAVLSet, "fast search", false},
	{KindSet, KindSplaySet, "fast skewed search", false},
	{KindSet, KindBTreeSet, "fast search, cache-conscious", false},
	{KindSet, KindSortedVec, "fast search & iteration, contiguous", false},
	{KindSet, KindFlatBTreeSet, "fast search at large sizes, flat layout", false},
	{KindSet, KindVector, "fast iteration", true},
	{KindSet, KindList, "fast insertion & deletion", true},
	{KindSet, KindHashSet, "fast insertion & search", true},
	{KindSet, KindFlatHashSet, "fast insertion & search, flat layout", true},

	{KindHashSet, KindFlatHashSet, "fast search at large sizes, flat layout", false},
	{KindBTreeSet, KindFlatBTreeSet, "fast search at large sizes, flat layout", false},

	// Exits from the flat kinds, so a phase change can migrate back out.
	{KindFlatBTreeSet, KindSet, "fast small-size updates", false},
	{KindFlatBTreeSet, KindBTreeSet, "fast small-size updates", false},
	{KindFlatBTreeSet, KindFlatHashSet, "fast insertion & search", true},
	{KindFlatBTreeSet, KindVector, "fast iteration", true},
	{KindFlatHashSet, KindHashSet, "fast small-size updates", false},
	{KindFlatHashSet, KindFlatBTreeSet, "sorted iteration, flat layout", false},
	{KindFlatHashSet, KindVector, "fast iteration", true},

	{KindMap, KindAVLMap, "fast search", false},
	{KindMap, KindHashMap, "fast insertion & search", false},
	{KindMap, KindBTreeMap, "fast search, cache-conscious", false},
	{KindMap, KindFlatBTreeMap, "fast search at large sizes, flat layout", false},
	{KindMap, KindFlatHashMap, "fast insertion & search, flat layout", false},
	{KindHashMap, KindFlatHashMap, "fast search at large sizes, flat layout", false},
	{KindBTreeMap, KindFlatBTreeMap, "fast search at large sizes, flat layout", false},
	{KindFlatBTreeMap, KindMap, "fast small-size updates", false},
	{KindFlatBTreeMap, KindFlatHashMap, "fast insertion & search", false},
	{KindFlatHashMap, KindHashMap, "fast small-size updates", false},
}

// Candidates returns the legal replacement kinds for from (excluding from
// itself). When orderAware is true, order-oblivious replacements are
// filtered out, matching Table 1's limitation column.
func Candidates(from Kind, orderAware bool) []Kind {
	var out []Kind
	for _, r := range Replacements {
		if r.From != from {
			continue
		}
		if orderAware && r.OrderOblivious {
			continue
		}
		out = append(out, r.To)
	}
	return out
}

// CandidatesWithOriginal returns Candidates plus the original kind itself,
// the choice set the oracle and the models rank.
func CandidatesWithOriginal(from Kind, orderAware bool) []Kind {
	return append([]Kind{from}, Candidates(from, orderAware)...)
}

// CanReplace reports whether the replacement matrix has a row from -> to
// that is legal for the given order-awareness — the check the adaptive
// container runs before hot-migrating a backend.
func CanReplace(from, to Kind, orderAware bool) bool {
	return ReplaceVerdict(from, to, orderAware) == ReplaceOK
}

// Legality verdicts for one replacement, as reported by ReplaceVerdict.
const (
	ReplaceOK              = "ok"               // a legal replacement row exists
	ReplaceNoRule          = "no-rule"          // Table 1 has no row from->to at all
	ReplaceOrderRestricted = "order-restricted" // rows exist but all are order-oblivious
)

// ReplaceVerdict explains CanReplace: it names *why* a replacement is legal
// or not, so decision journals can record the legality verdict instead of a
// bare boolean. CanReplace(from, to, orderAware) is exactly
// ReplaceVerdict(...) == ReplaceOK.
func ReplaceVerdict(from, to Kind, orderAware bool) string {
	found := false
	for _, r := range Replacements {
		if r.From != from || r.To != to {
			continue
		}
		found = true
		if orderAware && r.OrderOblivious {
			continue
		}
		return ReplaceOK
	}
	if found {
		return ReplaceOrderRestricted
	}
	return ReplaceNoRule
}

// ModelTargets lists the original kinds that get their own trained model.
// Order-oblivious vector and list usage get dedicated models (Section 5),
// expressed here as separate targets.
type ModelTarget struct {
	Kind       Kind
	OrderAware bool
}

// Targets enumerates the per-container ANN models Brainy trains: one per
// original data structure, with the order-oblivious sequence variants
// counted separately, mirroring Figure 3 and Table 3.
func Targets() []ModelTarget {
	return []ModelTarget{
		{KindVector, true},
		{KindVector, false},
		{KindList, true},
		{KindList, false},
		{KindSet, true},
		{KindSet, false},
		{KindMap, false},
	}
}

// --- vector ---

type vectorADT struct {
	kind Kind
	v    *vector.Vector[uint64]
}

func (a *vectorADT) Kind() Kind        { return a.kind }
func (a *vectorADT) Insert(key uint64) { a.v.PushBack(key) }
func (a *vectorADT) InsertAt(pos int, key uint64) {
	a.v.Insert(pos, key)
}
func (a *vectorADT) PushFront(key uint64) { a.v.Insert(0, key) }
func (a *vectorADT) Erase(key uint64) bool {
	return a.v.FindErase(func(x uint64) bool { return x == key })
}
func (a *vectorADT) EraseFront() bool {
	if a.v.Len() == 0 {
		a.v.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.v.Erase(0)
}
func (a *vectorADT) Find(key uint64) bool {
	return a.v.Find(func(x uint64) bool { return x == key }) >= 0
}
func (a *vectorADT) Iterate(n int) uint64 {
	var sum uint64
	a.v.Iterate(n, func(x uint64) { sum += x })
	return sum
}
func (a *vectorADT) Len() int              { return a.v.Len() }
func (a *vectorADT) Clear()                { a.v.Clear() }
func (a *vectorADT) Stats() *opstats.Stats { return a.v.Stats() }

// --- list ---

type listADT struct {
	kind Kind
	l    *list.List[uint64]
}

func (a *listADT) Kind() Kind                   { return a.kind }
func (a *listADT) Insert(key uint64)            { a.l.PushBack(key) }
func (a *listADT) InsertAt(pos int, key uint64) { a.l.Insert(pos, key) }
func (a *listADT) PushFront(key uint64)         { a.l.PushFront(key) }
func (a *listADT) Erase(key uint64) bool {
	return a.l.FindErase(func(x uint64) bool { return x == key })
}
func (a *listADT) EraseFront() bool {
	_, ok := a.l.PopFront()
	if !ok {
		a.l.Stats().Observe(opstats.OpPopFront, 0) // interface call on empty container
	}
	return ok
}
func (a *listADT) Find(key uint64) bool {
	return a.l.Find(func(x uint64) bool { return x == key }) >= 0
}
func (a *listADT) Iterate(n int) uint64 {
	var sum uint64
	a.l.Iterate(n, func(x uint64) { sum += x })
	return sum
}
func (a *listADT) Len() int              { return a.l.Len() }
func (a *listADT) Clear()                { a.l.Clear() }
func (a *listADT) Stats() *opstats.Stats { return a.l.Stats() }

// --- deque ---

type dequeADT struct {
	kind Kind
	d    *deque.Deque[uint64]
}

func (a *dequeADT) Kind() Kind                   { return a.kind }
func (a *dequeADT) Insert(key uint64)            { a.d.PushBack(key) }
func (a *dequeADT) InsertAt(pos int, key uint64) { a.d.Insert(pos, key) }
func (a *dequeADT) PushFront(key uint64)         { a.d.PushFront(key) }
func (a *dequeADT) Erase(key uint64) bool {
	return a.d.FindErase(func(x uint64) bool { return x == key })
}
func (a *dequeADT) EraseFront() bool {
	_, ok := a.d.PopFront()
	if !ok {
		a.d.Stats().Observe(opstats.OpPopFront, 0) // interface call on empty container
	}
	return ok
}
func (a *dequeADT) Find(key uint64) bool {
	return a.d.Find(func(x uint64) bool { return x == key }) >= 0
}
func (a *dequeADT) Iterate(n int) uint64 {
	var sum uint64
	a.d.Iterate(n, func(x uint64) { sum += x })
	return sum
}
func (a *dequeADT) Len() int              { return a.d.Len() }
func (a *dequeADT) Clear()                { a.d.Clear() }
func (a *dequeADT) Stats() *opstats.Stats { return a.d.Stats() }

// --- red-black tree ---

type rbADT struct {
	kind Kind
	t    *rbtree.Tree[uint64, struct{}]
}

func (a *rbADT) Kind() Kind                 { return a.kind }
func (a *rbADT) Insert(key uint64)          { a.t.Insert(key, struct{}{}) }
func (a *rbADT) InsertAt(_ int, key uint64) { a.t.Insert(key, struct{}{}) }
func (a *rbADT) PushFront(key uint64)       { a.t.Insert(key, struct{}{}) }
func (a *rbADT) Erase(key uint64) bool      { return a.t.Erase(key) }
func (a *rbADT) EraseFront() bool {
	k, ok := a.t.Min()
	if !ok {
		a.t.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.t.Erase(k)
}
func (a *rbADT) Find(key uint64) bool { return a.t.Contains(key) }
func (a *rbADT) Iterate(n int) uint64 {
	var sum uint64
	a.t.Iterate(n, func(k uint64, _ struct{}) { sum += k })
	return sum
}
func (a *rbADT) Len() int              { return a.t.Len() }
func (a *rbADT) Clear()                { a.t.Clear() }
func (a *rbADT) Stats() *opstats.Stats { return a.t.Stats() }

// --- AVL tree ---

type avlADT struct {
	kind Kind
	t    *avltree.Tree[uint64, struct{}]
}

func (a *avlADT) Kind() Kind                 { return a.kind }
func (a *avlADT) Insert(key uint64)          { a.t.Insert(key, struct{}{}) }
func (a *avlADT) InsertAt(_ int, key uint64) { a.t.Insert(key, struct{}{}) }
func (a *avlADT) PushFront(key uint64)       { a.t.Insert(key, struct{}{}) }
func (a *avlADT) Erase(key uint64) bool      { return a.t.Erase(key) }
func (a *avlADT) EraseFront() bool {
	k, ok := a.t.Min()
	if !ok {
		a.t.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.t.Erase(k)
}
func (a *avlADT) Find(key uint64) bool { return a.t.Contains(key) }
func (a *avlADT) Iterate(n int) uint64 {
	var sum uint64
	a.t.Iterate(n, func(k uint64, _ struct{}) { sum += k })
	return sum
}
func (a *avlADT) Len() int              { return a.t.Len() }
func (a *avlADT) Clear()                { a.t.Clear() }
func (a *avlADT) Stats() *opstats.Stats { return a.t.Stats() }

// --- hash table ---

type hashADT struct {
	kind Kind
	t    *hashtable.Table[uint64, struct{}]
}

func (a *hashADT) Kind() Kind                 { return a.kind }
func (a *hashADT) Insert(key uint64)          { a.t.Insert(key, struct{}{}) }
func (a *hashADT) InsertAt(_ int, key uint64) { a.t.Insert(key, struct{}{}) }
func (a *hashADT) PushFront(key uint64)       { a.t.Insert(key, struct{}{}) }
func (a *hashADT) Erase(key uint64) bool      { return a.t.Erase(key) }
func (a *hashADT) EraseFront() bool {
	first, ok := a.t.First()
	if !ok {
		a.t.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.t.Erase(first)
}
func (a *hashADT) Find(key uint64) bool { return a.t.Contains(key) }
func (a *hashADT) Iterate(n int) uint64 {
	var sum uint64
	a.t.Iterate(n, func(k uint64, _ struct{}) { sum += k })
	return sum
}
func (a *hashADT) Len() int              { return a.t.Len() }
func (a *hashADT) Clear()                { a.t.Clear() }
func (a *hashADT) Stats() *opstats.Stats { return a.t.Stats() }

// --- splay tree ---

type splayADT struct {
	kind Kind
	t    *splaytree.Tree[uint64, struct{}]
}

func (a *splayADT) Kind() Kind                 { return a.kind }
func (a *splayADT) Insert(key uint64)          { a.t.Insert(key, struct{}{}) }
func (a *splayADT) InsertAt(_ int, key uint64) { a.t.Insert(key, struct{}{}) }
func (a *splayADT) PushFront(key uint64)       { a.t.Insert(key, struct{}{}) }
func (a *splayADT) Erase(key uint64) bool      { return a.t.Erase(key) }
func (a *splayADT) EraseFront() bool {
	first, ok := a.t.Min()
	if !ok {
		a.t.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.t.Erase(first)
}
func (a *splayADT) Find(key uint64) bool { return a.t.Contains(key) }
func (a *splayADT) Iterate(n int) uint64 {
	var sum uint64
	a.t.Iterate(n, func(k uint64, _ struct{}) { sum += k })
	return sum
}
func (a *splayADT) Len() int              { return a.t.Len() }
func (a *splayADT) Clear()                { a.t.Clear() }
func (a *splayADT) Stats() *opstats.Stats { return a.t.Stats() }

// --- B-tree ---

type btreeADT struct {
	kind Kind
	t    *btree.Tree[uint64, struct{}]
}

func (a *btreeADT) Kind() Kind                 { return a.kind }
func (a *btreeADT) Insert(key uint64)          { a.t.Insert(key, struct{}{}) }
func (a *btreeADT) InsertAt(_ int, key uint64) { a.t.Insert(key, struct{}{}) }
func (a *btreeADT) PushFront(key uint64)       { a.t.Insert(key, struct{}{}) }
func (a *btreeADT) Erase(key uint64) bool      { return a.t.Erase(key) }
func (a *btreeADT) EraseFront() bool {
	k, ok := a.t.Min()
	if !ok {
		a.t.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.t.Erase(k)
}
func (a *btreeADT) Find(key uint64) bool { return a.t.Contains(key) }
func (a *btreeADT) Iterate(n int) uint64 {
	var sum uint64
	a.t.Iterate(n, func(k uint64, _ struct{}) { sum += k })
	return sum
}
func (a *btreeADT) Len() int              { return a.t.Len() }
func (a *btreeADT) Clear()                { a.t.Clear() }
func (a *btreeADT) Stats() *opstats.Stats { return a.t.Stats() }

// --- sorted vector ---

type sortedvecADT struct {
	kind Kind
	s    *sortedvec.Set[uint64]
}

func (a *sortedvecADT) Kind() Kind                 { return a.kind }
func (a *sortedvecADT) Insert(key uint64)          { a.s.Insert(key) }
func (a *sortedvecADT) InsertAt(_ int, key uint64) { a.s.Insert(key) }
func (a *sortedvecADT) PushFront(key uint64)       { a.s.Insert(key) }
func (a *sortedvecADT) Erase(key uint64) bool      { return a.s.Erase(key) }
func (a *sortedvecADT) EraseFront() bool {
	k, ok := a.s.Min()
	if !ok {
		a.s.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.s.Erase(k)
}
func (a *sortedvecADT) Find(key uint64) bool { return a.s.Contains(key) }
func (a *sortedvecADT) Iterate(n int) uint64 {
	var sum uint64
	a.s.Iterate(n, func(k uint64) { sum += k })
	return sum
}
func (a *sortedvecADT) Len() int              { return a.s.Len() }
func (a *sortedvecADT) Clear()                { a.s.Clear() }
func (a *sortedvecADT) Stats() *opstats.Stats { return a.s.Stats() }

// --- flat B+-tree ---

type flatbtreeADT struct {
	kind Kind
	t    *flatbtree.Tree
}

func (a *flatbtreeADT) Kind() Kind                 { return a.kind }
func (a *flatbtreeADT) Insert(key uint64)          { a.t.Insert(key) }
func (a *flatbtreeADT) InsertAt(_ int, key uint64) { a.t.Insert(key) }
func (a *flatbtreeADT) PushFront(key uint64)       { a.t.Insert(key) }
func (a *flatbtreeADT) Erase(key uint64) bool      { return a.t.Erase(key) }
func (a *flatbtreeADT) EraseFront() bool {
	k, ok := a.t.Min()
	if !ok {
		a.t.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.t.Erase(k)
}
func (a *flatbtreeADT) Find(key uint64) bool { return a.t.Contains(key) }
func (a *flatbtreeADT) Iterate(n int) uint64 {
	var sum uint64
	a.t.Iterate(n, func(k uint64) { sum += k })
	return sum
}
func (a *flatbtreeADT) Len() int              { return a.t.Len() }
func (a *flatbtreeADT) Clear()                { a.t.Clear() }
func (a *flatbtreeADT) Stats() *opstats.Stats { return a.t.Stats() }

// --- flat hash table ---

type flathashADT struct {
	kind Kind
	t    *flathash.Table
}

func (a *flathashADT) Kind() Kind                 { return a.kind }
func (a *flathashADT) Insert(key uint64)          { a.t.Insert(key) }
func (a *flathashADT) InsertAt(_ int, key uint64) { a.t.Insert(key) }
func (a *flathashADT) PushFront(key uint64)       { a.t.Insert(key) }
func (a *flathashADT) Erase(key uint64) bool      { return a.t.Erase(key) }
func (a *flathashADT) EraseFront() bool {
	first, ok := a.t.First()
	if !ok {
		a.t.Stats().Observe(opstats.OpErase, 0) // interface call on empty container
		return false
	}
	return a.t.Erase(first)
}
func (a *flathashADT) Find(key uint64) bool { return a.t.Contains(key) }
func (a *flathashADT) Iterate(n int) uint64 {
	var sum uint64
	a.t.Iterate(n, func(k uint64) { sum += k })
	return sum
}
func (a *flathashADT) Len() int              { return a.t.Len() }
func (a *flathashADT) Clear()                { a.t.Clear() }
func (a *flathashADT) Stats() *opstats.Stats { return a.t.Stats() }
