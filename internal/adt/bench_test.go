package adt

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// benchKinds are the implementations compared in the micro-benchmarks.
var benchKinds = []Kind{KindVector, KindList, KindDeque, KindSet, KindAVLSet, KindHashSet, KindSplaySet}

// BenchmarkInsert measures keyed/appending insertion of 1k elements per
// iteration, per container kind, on the simulated Core2.
func BenchmarkInsert(b *testing.B) {
	for _, k := range benchKinds {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := machine.New(machine.Core2())
				c := New(k, m, 8)
				for j := uint64(0); j < 1000; j++ {
					c.Insert(j * 2654435761 % 100000)
				}
			}
		})
	}
}

// BenchmarkFind measures 1k membership queries against a 10k-element
// container per iteration.
func BenchmarkFind(b *testing.B) {
	for _, k := range benchKinds {
		b.Run(k.String(), func(b *testing.B) {
			m := machine.New(machine.Core2())
			c := New(k, m, 8)
			rng := rand.New(rand.NewSource(1))
			for j := 0; j < 10000; j++ {
				c.Insert(uint64(rng.Intn(1 << 30)))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				probe := rand.New(rand.NewSource(2))
				for j := 0; j < 1000; j++ {
					c.Find(uint64(probe.Intn(1 << 30)))
				}
			}
		})
	}
}

// BenchmarkIterate measures a full traversal of a 10k-element container.
func BenchmarkIterate(b *testing.B) {
	for _, k := range benchKinds {
		b.Run(k.String(), func(b *testing.B) {
			m := machine.New(machine.Core2())
			c := New(k, m, 8)
			for j := uint64(0); j < 10000; j++ {
				c.Insert(j)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Iterate(-1)
			}
		})
	}
}

// BenchmarkSimulatedCyclesPerOp reports, as a custom metric, the simulated
// cycle cost per find at several container sizes — the crossover data
// behind the paper's motivating "set beats hash below ~200 elements on
// modern machines" style observations.
func BenchmarkSimulatedCyclesPerOp(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		for _, k := range []Kind{KindVector, KindSet, KindHashSet} {
			b.Run(fmt.Sprintf("%s/n=%d", k, size), func(b *testing.B) {
				var cycles float64
				for i := 0; i < b.N; i++ {
					m := machine.New(machine.Core2())
					c := New(k, m, 8)
					for j := uint64(0); j < uint64(size); j++ {
						c.Insert(j * 7919 % (uint64(size) * 8))
					}
					start := m.Cycles()
					probe := rand.New(rand.NewSource(3))
					const probes = 500
					for j := 0; j < probes; j++ {
						c.Find(uint64(probe.Intn(size * 8)))
					}
					cycles = (m.Cycles() - start) / probes
				}
				b.ReportMetric(cycles, "sim-cycles/find")
			})
		}
	}
}
