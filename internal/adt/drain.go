package adt

// Drainer is the optional migration primitive: remove one element and hand
// its key back, so an adaptive host can move contents between two live
// backends without enumerating through the Container interface (Iterate
// only exposes checksums). DrainFront and DrainBack take the corresponding
// end of a sequence — the caller picks the end that keeps the move O(1) on
// its pair of backends. Associative backends have no meaningful ends for a
// keyed destination, so both methods take the cheapest victim: the minimum
// for trees, the maximum for the sorted vector (no shift), an arbitrary
// element for hash tables.
//
// Every built-in backend implements Drainer. Like any other interface call,
// draining records operations in the backend's Stats — migration traffic is
// real container work and is attributed as such.
type Drainer interface {
	DrainFront() (uint64, bool)
	DrainBack() (uint64, bool)
}

func (a *vectorADT) DrainFront() (uint64, bool) {
	if a.v.Len() == 0 {
		return 0, false
	}
	k := a.v.At(0)
	a.v.Erase(0)
	return k, true
}
func (a *vectorADT) DrainBack() (uint64, bool) { return a.v.PopBack() }

func (a *listADT) DrainFront() (uint64, bool) { return a.l.PopFront() }
func (a *listADT) DrainBack() (uint64, bool)  { return a.l.PopBack() }

func (a *dequeADT) DrainFront() (uint64, bool) { return a.d.PopFront() }
func (a *dequeADT) DrainBack() (uint64, bool)  { return a.d.PopBack() }

func (a *rbADT) DrainFront() (uint64, bool) {
	k, ok := a.t.Min()
	if ok {
		a.t.Erase(k)
	}
	return k, ok
}
func (a *rbADT) DrainBack() (uint64, bool) { return a.DrainFront() }

func (a *avlADT) DrainFront() (uint64, bool) {
	k, ok := a.t.Min()
	if ok {
		a.t.Erase(k)
	}
	return k, ok
}
func (a *avlADT) DrainBack() (uint64, bool) { return a.DrainFront() }

func (a *hashADT) DrainFront() (uint64, bool) {
	k, ok := a.t.First()
	if ok {
		a.t.Erase(k)
	}
	return k, ok
}
func (a *hashADT) DrainBack() (uint64, bool) { return a.DrainFront() }

func (a *splayADT) DrainFront() (uint64, bool) {
	k, ok := a.t.Min()
	if ok {
		a.t.Erase(k)
	}
	return k, ok
}
func (a *splayADT) DrainBack() (uint64, bool) { return a.DrainFront() }

func (a *btreeADT) DrainFront() (uint64, bool) {
	k, ok := a.t.Min()
	if ok {
		a.t.Erase(k)
	}
	return k, ok
}
func (a *btreeADT) DrainBack() (uint64, bool) { return a.DrainFront() }

func (a *sortedvecADT) DrainFront() (uint64, bool) {
	k, ok := a.s.Max() // max pops without shifting the array
	if ok {
		a.s.Erase(k)
	}
	return k, ok
}
func (a *sortedvecADT) DrainBack() (uint64, bool) { return a.DrainFront() }

func (a *flatbtreeADT) DrainFront() (uint64, bool) {
	k, ok := a.t.Max() // max deletes from the rightmost leaf without a shift
	if ok {
		a.t.Erase(k)
	}
	return k, ok
}
func (a *flatbtreeADT) DrainBack() (uint64, bool) { return a.DrainFront() }

func (a *flathashADT) DrainFront() (uint64, bool) {
	k, ok := a.t.First()
	if ok {
		a.t.Erase(k)
	}
	return k, ok
}
func (a *flathashADT) DrainBack() (uint64, bool) { return a.DrainFront() }
