package adt

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/opstats"
)

func allKinds() []Kind {
	ks := make([]Kind, 0, int(NumKinds))
	for k := Kind(0); k < NumKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range allKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v err %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted bogus name")
	}
}

func TestFamilyPredicates(t *testing.T) {
	seq := map[Kind]bool{KindVector: true, KindList: true, KindDeque: true}
	for _, k := range allKinds() {
		if k.IsSequence() != seq[k] {
			t.Fatalf("%v IsSequence = %v", k, k.IsSequence())
		}
		if k.IsAssociative() == seq[k] {
			t.Fatalf("%v IsAssociative = %v", k, k.IsAssociative())
		}
	}
	if !KindHashMap.IsMapKind() || KindHashSet.IsMapKind() {
		t.Fatal("IsMapKind wrong")
	}
}

func TestBasicSemanticsEveryKind(t *testing.T) {
	for _, k := range allKinds() {
		c := New(k, nil, 8)
		if c.Kind() != k {
			t.Fatalf("%v: Kind() = %v", k, c.Kind())
		}
		for i := uint64(1); i <= 50; i++ {
			c.Insert(i)
		}
		if c.Len() != 50 {
			t.Fatalf("%v: Len = %d, want 50", k, c.Len())
		}
		if !c.Find(25) {
			t.Fatalf("%v: Find(25) failed", k)
		}
		if c.Find(999) {
			t.Fatalf("%v: Find(999) succeeded", k)
		}
		if !c.Erase(25) {
			t.Fatalf("%v: Erase(25) failed", k)
		}
		if c.Find(25) {
			t.Fatalf("%v: Find(25) after erase", k)
		}
		if c.Erase(25) {
			t.Fatalf("%v: double erase succeeded", k)
		}
		if !c.EraseFront() {
			t.Fatalf("%v: EraseFront failed", k)
		}
		if c.Len() != 48 {
			t.Fatalf("%v: Len = %d, want 48", k, c.Len())
		}
		sum := c.Iterate(-1)
		if sum == 0 {
			t.Fatalf("%v: Iterate produced no checksum", k)
		}
		c.Clear()
		if c.Len() != 0 {
			t.Fatalf("%v: Clear left elements", k)
		}
		if c.EraseFront() {
			t.Fatalf("%v: EraseFront on empty succeeded", k)
		}
	}
}

func TestSequenceOrderPreserved(t *testing.T) {
	for _, k := range []Kind{KindVector, KindList, KindDeque} {
		c := New(k, nil, 8)
		c.Insert(2)
		c.PushFront(1)
		c.Insert(3)
		c.InsertAt(1, 9) // 1 9 2 3
		// Iterate(1) must visit the true front element.
		if got := c.Iterate(1); got != 1 {
			t.Fatalf("%v: front = %d, want 1", k, got)
		}
		if got := c.Iterate(-1); got != 1+9+2+3 {
			t.Fatalf("%v: checksum = %d", k, got)
		}
	}
}

func TestAssociativeEraseFrontRemovesMin(t *testing.T) {
	for _, k := range []Kind{KindSet, KindAVLSet, KindMap, KindAVLMap, KindBTreeSet, KindSortedVec, KindBTreeMap, KindFlatBTreeSet, KindFlatBTreeMap} {
		c := New(k, nil, 8)
		for _, x := range []uint64{50, 10, 30} {
			c.Insert(x)
		}
		c.EraseFront()
		if c.Find(10) {
			t.Fatalf("%v: min not removed", k)
		}
		if !c.Find(30) || !c.Find(50) {
			t.Fatalf("%v: wrong element removed", k)
		}
	}
}

func TestDuplicateInsertAssociativeVsSequence(t *testing.T) {
	s := New(KindSet, nil, 8)
	s.Insert(5)
	s.Insert(5)
	if s.Len() != 1 {
		t.Fatalf("set length with duplicate = %d", s.Len())
	}
	v := New(KindVector, nil, 8)
	v.Insert(5)
	v.Insert(5)
	if v.Len() != 2 {
		t.Fatalf("vector length with duplicate = %d", v.Len())
	}
}

func TestCandidatesRespectOrderAwareness(t *testing.T) {
	aware := Candidates(KindVector, true)
	if len(aware) != 2 { // list, deque
		t.Fatalf("order-aware vector candidates = %v", aware)
	}
	for _, k := range aware {
		if k.IsAssociative() {
			t.Fatalf("order-aware vector may not become %v", k)
		}
	}
	obliv := Candidates(KindVector, false)
	if len(obliv) != 8 {
		t.Fatalf("order-oblivious vector candidates = %v", obliv)
	}
	setCands := Candidates(KindSet, true)
	want := map[Kind]bool{KindAVLSet: true, KindSplaySet: true, KindBTreeSet: true, KindSortedVec: true, KindFlatBTreeSet: true}
	if len(setCands) != 5 {
		t.Fatalf("order-aware set candidates = %v", setCands)
	}
	for _, k := range setCands {
		if !want[k] {
			t.Fatalf("unexpected order-aware set candidate %v", k)
		}
	}
	mapCands := Candidates(KindMap, false)
	if len(mapCands) != 5 {
		t.Fatalf("map candidates = %v", mapCands)
	}
}

func TestCanReplaceMatchesMatrix(t *testing.T) {
	if !CanReplace(KindVector, KindHashSet, false) {
		t.Fatal("vector -> hash_set must be legal when order-oblivious")
	}
	if CanReplace(KindVector, KindHashSet, true) {
		t.Fatal("vector -> hash_set must be illegal when order-aware")
	}
	if !CanReplace(KindSet, KindBTreeSet, true) {
		t.Fatal("set -> btree_set preserves sorted iteration order")
	}
	if CanReplace(KindHashSet, KindVector, false) {
		t.Fatal("no hash_set -> vector row exists")
	}
	if !CanReplace(KindHashSet, KindFlatHashSet, true) {
		t.Fatal("hash_set -> flat_hash_set preserves hash-order obliviousness")
	}
	if !CanReplace(KindFlatHashSet, KindHashSet, true) {
		t.Fatal("flat_hash_set must be able to migrate back out")
	}
	if CanReplace(KindFlatBTreeSet, KindVector, true) {
		t.Fatal("flat_btree_set -> vector must be order-oblivious only")
	}
}

func TestCandidatesWithOriginalPrependsSelf(t *testing.T) {
	c := CandidatesWithOriginal(KindList, false)
	if c[0] != KindList || len(c) != 9 {
		t.Fatalf("candidates = %v", c)
	}
}

func TestTargetsCoverPaperModels(t *testing.T) {
	ts := Targets()
	if len(ts) != 7 {
		t.Fatalf("targets = %v", ts)
	}
	seen := map[string]bool{}
	for _, mt := range ts {
		seen[mt.Kind.String()+orderSuffix(mt.OrderAware)] = true
	}
	for _, want := range []string{"vector:aware", "vector:oblivious", "list:aware", "list:oblivious", "set:aware", "set:oblivious", "map:oblivious"} {
		if !seen[want] {
			t.Fatalf("missing model target %s (have %v)", want, seen)
		}
	}
}

func orderSuffix(aware bool) string {
	if aware {
		return ":aware"
	}
	return ":oblivious"
}

// TestSameOpsDifferentCosts checks the core premise: identical ADT-level
// behaviour produces different simulated cycle counts per implementation,
// and the ordering is sane for a find-heavy workload (hash < tree < linear
// scan at size 10k).
func TestSameOpsDifferentCosts(t *testing.T) {
	run := func(k Kind) float64 {
		m := machine.New(machine.Core2())
		c := New(k, m, 8)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 10000; i++ {
			c.Insert(uint64(rng.Intn(1 << 40)))
		}
		rng2 := rand.New(rand.NewSource(12))
		for i := 0; i < 2000; i++ {
			c.Find(uint64(rng2.Intn(1 << 40)))
		}
		return m.Cycles()
	}
	vec, set, hash := run(KindVector), run(KindSet), run(KindHashSet)
	if !(hash < set && set < vec) {
		t.Fatalf("find-heavy ordering wrong: hash=%.0f set=%.0f vector=%.0f", hash, set, vec)
	}
}

// TestIterationFavorsVector checks the complementary premise: pure
// iteration favours the contiguous container over pointer chasing.
func TestIterationFavorsVector(t *testing.T) {
	run := func(k Kind) float64 {
		m := machine.New(machine.Core2())
		c := New(k, m, 8)
		for i := uint64(0); i < 20000; i++ {
			c.Insert(i)
		}
		start := m.Cycles()
		for r := 0; r < 10; r++ {
			c.Iterate(-1)
		}
		return m.Cycles() - start
	}
	if vec, lst := run(KindVector), run(KindList); vec >= lst {
		t.Fatalf("iteration: vector=%.0f not cheaper than list=%.0f", vec, lst)
	}
}

func TestStatsFlowThroughADT(t *testing.T) {
	c := New(KindVector, nil, 8)
	for i := uint64(0); i < 10; i++ {
		c.Insert(i)
	}
	c.Find(5)
	st := c.Stats()
	if st.Count[opstats.OpPushBack] != 10 || st.Count[opstats.OpFind] != 1 {
		t.Fatalf("stats: %+v", st.Count)
	}
}

func TestInvalidKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(NumKinds) did not panic")
		}
	}()
	New(NumKinds, nil, 8)
}
