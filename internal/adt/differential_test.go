package adt

import (
	"math/rand"
	"testing"
)

// TestSequencesAgreeUnderRandomOps drives vector, list, and deque with one
// random operation stream and checks observable state (length, membership,
// order checksum, return values) stays identical — the property that makes
// them interchangeable in Table 1's order-aware rows.
func TestSequencesAgreeUnderRandomOps(t *testing.T) {
	kinds := []Kind{KindVector, KindList, KindDeque}
	cs := make([]Container, len(kinds))
	for i, k := range kinds {
		cs[i] = New(k, nil, 8)
	}
	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 8000; step++ {
		op := rng.Intn(7)
		key := uint64(rng.Intn(200))
		pos := rng.Intn(cs[0].Len() + 1)
		var first bool
		for i, c := range cs {
			var got bool
			switch op {
			case 0:
				c.Insert(key)
			case 1:
				c.PushFront(key)
			case 2:
				c.InsertAt(pos, key)
			case 3:
				got = c.Erase(key)
			case 4:
				got = c.EraseFront()
			case 5:
				got = c.Find(key)
			default:
				c.Iterate(rng.Intn(64))
			}
			if i == 0 {
				first = got
			} else if got != first {
				t.Fatalf("step %d op %d: %v returned %v, %v returned %v",
					step, op, kinds[0], first, kinds[i], got)
			}
		}
		l := cs[0].Len()
		sum := cs[0].Iterate(-1)
		for i := 1; i < len(cs); i++ {
			if cs[i].Len() != l {
				t.Fatalf("step %d: %v len %d vs %v len %d", step, kinds[0], l, kinds[i], cs[i].Len())
			}
			if s := cs[i].Iterate(-1); s != sum {
				t.Fatalf("step %d: order checksum diverged: %v=%d %v=%d", step, kinds[0], sum, kinds[i], s)
			}
		}
	}
}

// TestAssociativesAgreeUnderRandomOps drives every associative kind with a
// keyed operation stream (no EraseFront, whose victim is
// implementation-defined for hash tables) and checks membership semantics
// agree.
func TestAssociativesAgreeUnderRandomOps(t *testing.T) {
	kinds := []Kind{KindSet, KindAVLSet, KindHashSet, KindSplaySet, KindMap, KindAVLMap, KindHashMap, KindBTreeSet, KindSortedVec, KindBTreeMap, KindFlatBTreeSet, KindFlatHashSet, KindFlatBTreeMap, KindFlatHashMap}
	cs := make([]Container, len(kinds))
	for i, k := range kinds {
		cs[i] = New(k, nil, 8)
	}
	ref := map[uint64]bool{}
	rng := rand.New(rand.NewSource(88))
	for step := 0; step < 8000; step++ {
		op := rng.Intn(4)
		key := uint64(rng.Intn(300))
		for i, c := range cs {
			switch op {
			case 0, 1:
				c.Insert(key)
			case 2:
				if got, want := c.Erase(key), ref[key]; got != want {
					t.Fatalf("step %d: %v Erase(%d) = %v, want %v", step, kinds[i], key, got, want)
				}
			default:
				if got, want := c.Find(key), ref[key]; got != want {
					t.Fatalf("step %d: %v Find(%d) = %v, want %v", step, kinds[i], key, got, want)
				}
			}
		}
		switch op {
		case 0, 1:
			ref[key] = true
		case 2:
			delete(ref, key)
		}
		if cs[0].Len() != len(ref) {
			t.Fatalf("step %d: len %d vs ref %d", step, cs[0].Len(), len(ref))
		}
		for i := 1; i < len(cs); i++ {
			if cs[i].Len() != cs[0].Len() {
				t.Fatalf("step %d: %v len %d vs %v len %d", step, kinds[0], cs[0].Len(), kinds[i], cs[i].Len())
			}
		}
	}
	// Sorted kinds must agree on full iteration checksums (hash kinds
	// visit the same elements in a different order, so checksum matches
	// there too — it is order-independent addition).
	sum := cs[0].Iterate(-1)
	for i := 1; i < len(cs); i++ {
		if s := cs[i].Iterate(-1); s != sum {
			t.Fatalf("final checksum: %v=%d %v=%d", kinds[0], sum, kinds[i], s)
		}
	}
}

// TestTreeEraseFrontAgree: tree-based associative kinds share min-removal
// semantics for EraseFront.
func TestTreeEraseFrontAgree(t *testing.T) {
	kinds := []Kind{KindSet, KindAVLSet, KindSplaySet, KindMap, KindAVLMap, KindBTreeSet, KindSortedVec, KindBTreeMap, KindFlatBTreeSet, KindFlatBTreeMap}
	cs := make([]Container, len(kinds))
	for i, k := range kinds {
		cs[i] = New(k, nil, 8)
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 3000; step++ {
		if rng.Intn(2) == 0 {
			key := uint64(rng.Intn(500))
			for _, c := range cs {
				c.Insert(key)
			}
		} else {
			first := cs[0].EraseFront()
			for i := 1; i < len(cs); i++ {
				if cs[i].EraseFront() != first {
					t.Fatalf("step %d: EraseFront disagreement at %v", step, kinds[i])
				}
			}
		}
		sum := cs[0].Iterate(-1)
		for i := 1; i < len(cs); i++ {
			if s := cs[i].Iterate(-1); s != sum {
				t.Fatalf("step %d: contents diverged (%v)", step, kinds[i])
			}
		}
	}
}
