package adt

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestEveryContainerPackageReachable asserts that every package under
// internal/containers is wired into adt.New through some Kind — the guard
// that caught btree and sortedvec shipping as dead code. Packages that host
// containers rather than implement backends are allowlisted.
func TestEveryContainerPackageReachable(t *testing.T) {
	hosts := map[string]bool{
		"adaptive": true, // wraps an inner adt.Container; not a backend
	}

	// Collect the package path of every backend an adapter can reach by
	// walking the concrete types New returns for each kind.
	reached := map[string]bool{}
	for _, k := range allKinds() {
		rt := reflect.TypeOf(New(k, nil, 8))
		for rt.Kind() == reflect.Ptr {
			rt = rt.Elem()
		}
		if rt.Kind() != reflect.Struct {
			continue
		}
		for i := 0; i < rt.NumField(); i++ {
			ft := rt.Field(i).Type
			for ft.Kind() == reflect.Ptr {
				ft = ft.Elem()
			}
			if pkg := ft.PkgPath(); strings.Contains(pkg, "/containers/") {
				reached[pkg[strings.LastIndex(pkg, "/")+1:]] = true
			}
		}
	}

	entries, err := os.ReadDir("../containers")
	if err != nil {
		t.Fatalf("reading containers dir: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() || hosts[e.Name()] {
			continue
		}
		if !reached[e.Name()] {
			t.Errorf("internal/containers/%s is not reachable from adt.New — dead code", e.Name())
		}
	}
	if len(reached) == 0 {
		t.Fatal("reflection walk found no backend packages; test is broken")
	}
}
