package adt

import (
	"testing"

	"repro/internal/mem"
)

func TestEstimatedBytesZeroAndNegative(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if EstimatedBytes(k, 0, 8) != 0 || EstimatedBytes(k, -3, 8) != 0 {
			t.Fatalf("%v: nonzero estimate for empty container", k)
		}
	}
}

func TestEstimatedBytesOrdering(t *testing.T) {
	// For the same contents, per-node overhead orders the footprints:
	// vector (just slack) < avl (24B/node) < set (32B/node); hash adds a
	// bucket array on top of its 16B nodes.
	const n, es = 1000, 8
	vec := EstimatedBytes(KindVector, n, es)
	avl := EstimatedBytes(KindAVLSet, n, es)
	set := EstimatedBytes(KindSet, n, es)
	if !(vec < avl && avl < set) {
		t.Fatalf("ordering: vector=%d avl=%d set=%d", vec, avl, set)
	}
	hash := EstimatedBytes(KindHashSet, n, es)
	list := EstimatedBytes(KindList, n, es)
	if hash <= list {
		t.Fatalf("hash (%d) should exceed list (%d): bucket array", hash, list)
	}
}

// TestEstimatedBytesTracksSimulatedAllocations cross-checks the static
// formula against the bytes a real container actually allocates in the
// counting memory model (within slack for growth garbage).
func TestEstimatedBytesTracksSimulatedAllocations(t *testing.T) {
	const n, es = 500, 16
	for _, k := range []Kind{KindVector, KindList, KindSet, KindAVLSet, KindHashSet, KindSplaySet} {
		cm := mem.NewCounting()
		c := New(k, cm, es)
		for i := uint64(0); i < n; i++ {
			c.Insert(i)
		}
		est := EstimatedBytes(k, c.Len(), es)
		live := uint64(cm.Live)
		lo, hi := live/2, live*2
		if est < lo || est > hi {
			t.Errorf("%v: estimate %d outside [%d, %d] of live %d", k, est, lo, hi, live)
		}
	}
}

func TestEstimatedBytesDequeChunks(t *testing.T) {
	// 512-byte chunks of 64 elements at 8B: 100 elements need 2 chunks.
	got := EstimatedBytes(KindDeque, 100, 8)
	want := uint64(2*64*8 + 2*8)
	if got != want {
		t.Fatalf("deque estimate = %d, want %d", got, want)
	}
	// Oversized elements: one element per chunk.
	if EstimatedBytes(KindDeque, 3, 1024) != 3*1024+3*8 {
		t.Fatalf("oversized deque estimate wrong")
	}
}

func TestEstimatedBytesVectorPow2(t *testing.T) {
	if EstimatedBytes(KindVector, 5, 8) != 8*8 {
		t.Fatal("vector capacity must round to the next power of two")
	}
	if EstimatedBytes(KindVector, 4, 8) != 4*8 {
		t.Fatal("exact power of two must not over-allocate")
	}
}
