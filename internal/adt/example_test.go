package adt_test

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/machine"
)

// Example shows the abstract-data-type view: the same operations against
// two implementations, with the simulated machine revealing their very
// different costs.
func Example() {
	for _, kind := range []adt.Kind{adt.KindVector, adt.KindHashSet} {
		m := machine.New(machine.Core2())
		c := adt.New(kind, m, 8)
		for i := uint64(0); i < 1000; i++ {
			c.Insert(i * 7)
		}
		before := m.Cycles()
		for i := uint64(0); i < 100; i++ {
			c.Find(i * 131)
		}
		perFind := (m.Cycles() - before) / 100
		fmt.Printf("%s: 100 lookups in a 1000-element container, ~%s cycles each\n",
			kind, bucket(perFind))
	}
	// Output:
	// vector: 100 lookups in a 1000-element container, ~hundreds of cycles each
	// hash_set: 100 lookups in a 1000-element container, ~tens of cycles each
}

func bucket(cycles float64) string {
	switch {
	case cycles < 100:
		return "tens of"
	case cycles < 1000:
		return "hundreds of"
	default:
		return "thousands of"
	}
}

func ExampleCandidates() {
	// Table 1: what may replace an order-aware vector vs an
	// order-oblivious one.
	fmt.Println("order-aware: ", adt.Candidates(adt.KindVector, true))
	fmt.Println("order-oblivious:", adt.Candidates(adt.KindVector, false))
	// Output:
	// order-aware:  [list deque]
	// order-oblivious: [list deque set avl_set hash_set sorted_vec flat_btree_set flat_hash_set]
}
