// Package linreg implements ordinary least squares via the normal
// equations, the regression substrate Perflint uses to turn asymptotic
// operation counts into execution-time coefficients (Section 6.2).
package linreg

import (
	"errors"
	"fmt"
	"math"
)

// Fit solves min_w ||Xw - y||^2 with a small ridge term for numerical
// stability, returning one coefficient per column of X. Rows of X are
// observations. An intercept column must be added by the caller if wanted.
func Fit(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("linreg: no observations")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("linreg: %d rows but %d targets", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return nil, errors.New("linreg: zero-dimensional observations")
	}
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("linreg: row %d has %d columns, want %d", i, len(row), d)
		}
	}
	// Normal equations: (X'X + λI) w = X'y.
	const ridge = 1e-8
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	for _, row := range x {
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += ridge * (1 + xtx[i][i])
	}
	for r, row := range x {
		for i := 0; i < d; i++ {
			xty[i] += row[i] * y[r]
		}
	}
	w, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// solve performs Gaussian elimination with partial pivoting on a (square) b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, errors.New("linreg: singular system")
		}
		m[col], m[pivot] = m[pivot], m[col]
		v[col], v[pivot] = v[pivot], v[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	out := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := v[i]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * out[j]
		}
		out[i] = s / m[i][i]
	}
	return out, nil
}

// Predict returns the dot product of coefficients and features.
func Predict(w, x []float64) float64 {
	var s float64
	for i := range w {
		s += w[i] * x[i]
	}
	return s
}

// R2 computes the coefficient of determination of predictions w over (x, y).
func R2(w []float64, x [][]float64, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - Predict(w, x[i])
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
