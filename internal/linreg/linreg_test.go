package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRecoversExactCoefficients(t *testing.T) {
	// y = 3x0 - 2x1 + 5 (intercept as a constant column).
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b, 1})
		y = append(y, 3*a-2*b+5)
	}
	w, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 5}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-4 {
			t.Fatalf("w = %v, want %v", w, want)
		}
	}
	if r2 := R2(w, x, y); r2 < 0.999999 {
		t.Fatalf("R2 = %f on noiseless data", r2)
	}
}

func TestNoisyFitApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a := rng.Float64() * 100
		x = append(x, []float64{a, 1})
		y = append(y, 7*a+2+rng.NormFloat64()*5)
	}
	w, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-7) > 0.1 {
		t.Fatalf("slope = %f, want ~7", w[0])
	}
	if r2 := R2(w, x, y); r2 < 0.95 {
		t.Fatalf("R2 = %f", r2)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("row/target mismatch accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}); err == nil {
		t.Fatal("zero-dimensional rows accepted")
	}
}

func TestCollinearColumnsStillSolvable(t *testing.T) {
	// Duplicate columns make X'X singular; the ridge term must rescue it.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := rng.Float64()
		x = append(x, []float64{a, a, 1})
		y = append(y, 4*a+1)
	}
	w, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// The two collinear coefficients must sum to ~4.
	if math.Abs(w[0]+w[1]-4) > 1e-2 {
		t.Fatalf("collinear sum = %f, want 4", w[0]+w[1])
	}
}

func TestPredictDot(t *testing.T) {
	if got := Predict([]float64{2, 3}, []float64{4, 5}); got != 23 {
		t.Fatalf("Predict = %f", got)
	}
}

func TestR2ConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {1}, {1}}
	y := []float64{2, 2, 2}
	w, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := R2(w, x, y); r2 != 1 {
		t.Fatalf("R2 on constant fit = %f", r2)
	}
	if R2(w, nil, nil) != 0 {
		t.Fatal("R2 on empty should be 0")
	}
}

func TestQuickFitResidualOrthogonality(t *testing.T) {
	// OLS property: residuals are orthogonal to every regressor column.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 40, 3
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = make([]float64, d)
			for j := range x[i] {
				x[i][j] = rng.NormFloat64()
			}
			y[i] = rng.NormFloat64()
		}
		w, err := Fit(x, y)
		if err != nil {
			return true // degenerate draw; skip
		}
		for j := 0; j < d; j++ {
			var dot float64
			for i := range x {
				dot += x[i][j] * (y[i] - Predict(w, x[i]))
			}
			if math.Abs(dot) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
