// Package appgen is the application generator of Section 4.2: it creates
// synthetic applications that exercise one data structure through a
// function-dispatch loop whose every behaviour — operation mix, operand
// values, element size, search skew — is drawn from a seeded random number
// generator. Regenerating an application from its seed reproduces the exact
// operation stream, which is how the two-phase training framework replays
// Phase-I winners under instrumentation in Phase-II without storing any
// traces (Algorithm 1/2).
package appgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/profile"
)

// Op enumerates the interface functions a synthetic application may invoke,
// the dispatch alphabet of the function-dispatch loop.
type Op int

// Generator operations. Positional and front insertions only appear in
// order-aware sequence applications; the rest are family-neutral.
const (
	OpInsert Op = iota // append / keyed insert
	OpInsertAt
	OpPushFront
	OpErase
	OpEraseFront
	OpFind
	OpIterate
	NumOps
)

var opNames = [NumOps]string{
	"insert", "insert_at", "push_front", "erase", "erase_front", "find", "iterate",
}

// String returns the operation's name.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Config mirrors Table 2: the knobs of the generator's configuration file.
// Every per-application behaviour is then drawn from the seed.
type Config struct {
	TotalInterfCalls int      // constant across generated applications
	DataElemSizes    []uint64 // element-size choices, e.g. {4, 8, 64, 256}
	MaxInsertVal     uint64
	MaxRemoveVal     uint64
	MaxSearchVal     uint64
	MaxIterCount     int
	MaxPrepopulate   int // upper bound on initial population before the loop
}

// DefaultConfig returns the configuration used throughout the evaluation,
// matching the specification example of Table 2.
func DefaultConfig() Config {
	return Config{
		TotalInterfCalls: 1000,
		DataElemSizes:    []uint64{4, 8, 16, 64, 256},
		MaxInsertVal:     65536,
		MaxRemoveVal:     65536,
		MaxSearchVal:     65536,
		MaxIterCount:     65536,
		MaxPrepopulate:   4096,
	}
}

// WriteConfig serializes the configuration as JSON — the "configuration
// file distributed with the data structure library" of the paper's
// install-time vision.
func WriteConfig(w io.Writer, cfg Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

// ReadConfig parses a configuration written by WriteConfig and validates it.
func ReadConfig(r io.Reader) (Config, error) {
	var cfg Config
	if err := json.NewDecoder(r).Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("appgen: decoding config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.TotalInterfCalls <= 0 {
		return fmt.Errorf("appgen: TotalInterfCalls must be positive, got %d", c.TotalInterfCalls)
	}
	if len(c.DataElemSizes) == 0 {
		return fmt.Errorf("appgen: DataElemSizes must not be empty")
	}
	if c.MaxInsertVal == 0 || c.MaxSearchVal == 0 {
		return fmt.Errorf("appgen: value ranges must be positive")
	}
	return nil
}

// App is one synthetic application: a seeded specification of a behaviour
// against the abstract data type. The same App can be instantiated with any
// candidate container kind; the operation stream is identical because it is
// derived only from the seed.
type App struct {
	Seed        int64
	Target      adt.ModelTarget // original data structure + order-awareness
	Calls       int
	ElemSize    uint64
	Prepopulate int
	SearchSkew  float64 // 0 = uniform operand draw, 1 = heavily skewed to low values
	Weights     [NumOps]float64
}

// validOps returns the dispatch alphabet for a target family.
func validOps(t adt.ModelTarget) []Op {
	if t.Kind.IsSequence() && t.OrderAware {
		return []Op{OpInsert, OpInsertAt, OpPushFront, OpErase, OpEraseFront, OpFind, OpIterate}
	}
	return []Op{OpInsert, OpErase, OpEraseFront, OpFind, OpIterate}
}

// Generate derives an application from (config, target, seed). Each
// application activates a random *subset* of the interface functions — from
// single-operation specialists up to the full vocabulary — and draws
// exponential (Dirichlet-like) weights for the active ones. Subset sampling
// is what covers the corners of the design space (Section 4.1): without it,
// profiles like "almost pure iteration" would be vanishingly rare in
// training and the model could not classify real applications that live
// there.
func Generate(cfg Config, target adt.ModelTarget, seed int64) App {
	rng := rand.New(rand.NewSource(seed))
	app := App{
		Seed:        seed,
		Target:      target,
		Calls:       cfg.TotalInterfCalls,
		ElemSize:    cfg.DataElemSizes[rng.Intn(len(cfg.DataElemSizes))],
		Prepopulate: 0,
		SearchSkew:  rng.Float64(),
	}
	if cfg.MaxPrepopulate > 0 {
		app.Prepopulate = rng.Intn(cfg.MaxPrepopulate + 1)
	}
	ops := validOps(target)
	var others []Op
	for _, op := range ops {
		if op != OpInsert {
			others = append(others, op)
		}
	}
	// Choose how many non-insert interface functions this app uses.
	k := rng.Intn(len(others) + 1)
	rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	for _, op := range others[:k] {
		app.Weights[op] = rng.ExpFloat64()
	}
	// Insert is always available so the structure can grow, but may be a
	// trace amount so that specialist apps stay specialists.
	app.Weights[OpInsert] = rng.ExpFloat64()
	if rng.Float64() < 0.5 {
		app.Weights[OpInsert] *= 0.05
	}
	if app.Weights[OpInsert] < 0.01 {
		app.Weights[OpInsert] = 0.01
	}
	return app
}

// Result is one instantiation's outcome.
type Result struct {
	Kind    adt.Kind
	Cycles  float64
	Profile profile.Profile
}

// skewedVal draws a value in [0, max) biased toward small values as skew
// approaches 1. Skewed search operands are what make find costs — how many
// elements a search touches — input-dependent, the effect behind Table 4.
func skewedVal(rng *rand.Rand, max uint64, skew float64) uint64 {
	if max == 0 {
		return 0
	}
	u := rng.Float64()
	exp := 1 + 9*skew
	return uint64(float64(max) * math.Pow(u, exp))
}

// Replay drives the application's deterministic operation stream into any
// container — an instrumented one, a plain one, or a Perflint advisor. The
// operand stream depends only on app.Seed, so every container sees the
// same behaviour (Section 4.2's "exactly same behaviour, only a different
// data structure").
func Replay(app *App, cfg Config, ctr adt.Container) {
	rng := rand.New(rand.NewSource(app.Seed + 1)) // dispatch stream

	for i := 0; i < app.Prepopulate; i++ {
		ctr.Insert(skewedVal(rng, cfg.MaxInsertVal, 0))
	}

	// Build the cumulative weight table once.
	var cum [NumOps]float64
	total := 0.0
	for op := Op(0); op < NumOps; op++ {
		total += app.Weights[op]
		cum[op] = total
	}

	for i := 0; i < app.Calls; i++ {
		r := rng.Float64() * total
		op := OpInsert
		for op < NumOps-1 && r > cum[op] {
			op++
		}
		switch op {
		case OpInsert:
			ctr.Insert(skewedVal(rng, cfg.MaxInsertVal, 0))
		case OpInsertAt:
			pos := 0
			if n := ctr.Len(); n > 0 {
				pos = rng.Intn(n + 1)
			}
			ctr.InsertAt(pos, skewedVal(rng, cfg.MaxInsertVal, 0))
		case OpPushFront:
			ctr.PushFront(skewedVal(rng, cfg.MaxInsertVal, 0))
		case OpErase:
			ctr.Erase(skewedVal(rng, cfg.MaxRemoveVal, app.SearchSkew))
		case OpEraseFront:
			ctr.EraseFront()
		case OpFind:
			ctr.Find(skewedVal(rng, cfg.MaxSearchVal, app.SearchSkew))
		case OpIterate:
			n := rng.Intn(cfg.MaxIterCount + 1)
			if l := ctr.Len(); n > l {
				n = l
			}
			ctr.Iterate(n)
		}
	}
}

// Run instantiates the application with the given container kind on mach
// and executes the function-dispatch loop under instrumentation, returning
// the cycle count and the container's profile.
func (app *App) Run(cfg Config, kind adt.Kind, mach *machine.Machine) Result {
	ctr := profile.NewContainer(kind, mach, app.ElemSize,
		fmt.Sprintf("appgen/seed=%d", app.Seed), app.Target.OrderAware)
	Replay(app, cfg, ctr)
	p := ctr.Snapshot()
	return Result{Kind: kind, Cycles: p.Cycles, Profile: p}
}

// RunAll instantiates the application with every candidate kind (the
// original first), each on a fresh machine of the given configuration, and
// returns the per-kind results in candidate order.
func (app *App) RunAll(cfg Config, arch machine.Config) []Result {
	kinds := adt.CandidatesWithOriginal(app.Target.Kind, app.Target.OrderAware)
	out := make([]Result, 0, len(kinds))
	for _, k := range kinds {
		m := machine.New(arch)
		out = append(out, app.Run(cfg, k, m))
	}
	return out
}

// Best returns the index of the fastest result and whether it beats every
// other candidate by at least margin (the paper's 5% threshold). When the
// margin is not met the application is discarded from training.
func Best(results []Result, margin float64) (int, bool) {
	if len(results) == 0 {
		return -1, false
	}
	best := 0
	for i := 1; i < len(results); i++ {
		if results[i].Cycles < results[best].Cycles {
			best = i
		}
	}
	decisive := true
	for i := range results {
		if i == best {
			continue
		}
		if results[best].Cycles*(1+margin) > results[i].Cycles {
			decisive = false
			break
		}
	}
	return best, decisive
}
