package appgen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
)

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.TotalInterfCalls = 200
	cfg.MaxPrepopulate = 256
	cfg.MaxIterCount = 512
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.TotalInterfCalls = 0
	if bad.Validate() == nil {
		t.Fatal("zero calls accepted")
	}
	bad = cfg
	bad.DataElemSizes = nil
	if bad.Validate() == nil {
		t.Fatal("empty elem sizes accepted")
	}
	bad = cfg
	bad.MaxInsertVal = 0
	if bad.Validate() == nil {
		t.Fatal("zero insert range accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallCfg()
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
	a := Generate(cfg, tgt, 123)
	b := Generate(cfg, tgt, 123)
	if a != b {
		t.Fatalf("same seed produced different apps:\n%+v\n%+v", a, b)
	}
	c := Generate(cfg, tgt, 124)
	if a == c {
		t.Fatal("different seeds produced identical apps")
	}
}

func TestGenerateRespectsOrderAwareness(t *testing.T) {
	cfg := smallCfg()
	found := false
	for seed := int64(0); seed < 50; seed++ {
		app := Generate(cfg, adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}, seed)
		if app.Weights[OpInsertAt] != 0 || app.Weights[OpPushFront] != 0 {
			t.Fatalf("seed %d: order-oblivious app uses positional ops: %+v", seed, app.Weights)
		}
		aware := Generate(cfg, adt.ModelTarget{Kind: adt.KindVector, OrderAware: true}, seed)
		if aware.Weights[OpInsertAt] > 0 || aware.Weights[OpPushFront] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no order-aware app ever used positional ops across 50 seeds")
	}
}

func TestInsertWeightFloor(t *testing.T) {
	cfg := smallCfg()
	for seed := int64(0); seed < 100; seed++ {
		app := Generate(cfg, adt.ModelTarget{Kind: adt.KindSet, OrderAware: false}, seed)
		if app.Weights[OpInsert] < 0.01 {
			t.Fatalf("seed %d: insert weight %f below floor", seed, app.Weights[OpInsert])
		}
	}
}

func TestSpecialistAppsExist(t *testing.T) {
	// Subset sampling must produce single-operation specialists: apps whose
	// only meaningful traffic is iteration, and apps that only insert.
	cfg := smallCfg()
	tgt := adt.ModelTarget{Kind: adt.KindList, OrderAware: true}
	iterOnly, insertOnly := false, false
	for seed := int64(0); seed < 300; seed++ {
		app := Generate(cfg, tgt, seed)
		active := 0
		for op := Op(0); op < NumOps; op++ {
			if op != OpInsert && app.Weights[op] > 0 {
				active++
			}
		}
		if active == 1 && app.Weights[OpIterate] > 0 && app.Weights[OpInsert] < app.Weights[OpIterate]/10 {
			iterOnly = true
		}
		if active == 0 {
			insertOnly = true
		}
	}
	if !iterOnly {
		t.Error("no iterate-specialist app in 300 seeds")
	}
	if !insertOnly {
		t.Error("no insert-only app in 300 seeds")
	}
}

func TestRunDeterministicReplay(t *testing.T) {
	cfg := smallCfg()
	app := Generate(cfg, adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}, 7)
	r1 := app.Run(cfg, adt.KindVector, machine.New(machine.Core2()))
	r2 := app.Run(cfg, adt.KindVector, machine.New(machine.Core2()))
	if r1.Cycles != r2.Cycles {
		t.Fatalf("replay diverged: %f vs %f", r1.Cycles, r2.Cycles)
	}
	if r1.Profile.Stats != r2.Profile.Stats {
		t.Fatal("replayed stats diverged")
	}
}

func TestSameStreamAcrossKinds(t *testing.T) {
	// Different kinds must see the same interface-call stream: total calls
	// equal across instantiations of one app.
	cfg := smallCfg()
	app := Generate(cfg, adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}, 21)
	results := app.RunAll(cfg, machine.Core2())
	if want := 1 + len(adt.Candidates(adt.KindVector, false)); len(results) != want {
		t.Fatalf("got %d results, want %d (vector + its order-oblivious candidates)", len(results), want)
	}
	want := results[0].Profile.Stats.TotalCalls()
	for _, r := range results[1:] {
		if got := r.Profile.Stats.TotalCalls(); got != want {
			t.Fatalf("%v saw %d calls, original saw %d", r.Kind, got, want)
		}
	}
	if results[0].Kind != adt.KindVector {
		t.Fatalf("original not first: %v", results[0].Kind)
	}
}

func TestBestMarginRule(t *testing.T) {
	rs := []Result{{Kind: 0, Cycles: 100}, {Kind: 1, Cycles: 104}, {Kind: 2, Cycles: 200}}
	best, decisive := Best(rs, 0.05)
	if best != 0 {
		t.Fatalf("best = %d", best)
	}
	if decisive {
		t.Fatal("104 is within 5% of 100; must be indecisive")
	}
	rs[1].Cycles = 106
	if _, decisive = Best(rs, 0.05); !decisive {
		t.Fatal("106 vs 100 must be decisive at 5%")
	}
	if _, d := Best(nil, 0.05); d {
		t.Fatal("empty results decisive")
	}
}

func TestBehaviorDiversity(t *testing.T) {
	// Across many seeds, different data structures must win — otherwise the
	// training set can never cover the design space.
	cfg := smallCfg()
	winners := map[adt.Kind]int{}
	for seed := int64(0); seed < 40; seed++ {
		app := Generate(cfg, adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}, seed)
		rs := app.RunAll(cfg, machine.Core2())
		best, _ := Best(rs, 0)
		winners[rs[best].Kind]++
	}
	if len(winners) < 2 {
		t.Fatalf("only one winner kind across 40 apps: %v", winners)
	}
}

func TestSkewedValStaysInRangeAndSkews(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sumUniform, sumSkewed float64
	const n = 5000
	for i := 0; i < n; i++ {
		u := skewedVal(rng, 1000, 0)
		s := skewedVal(rng, 1000, 1)
		if u >= 1000 || s >= 1000 {
			t.Fatalf("value out of range: %d / %d", u, s)
		}
		sumUniform += float64(u)
		sumSkewed += float64(s)
	}
	if sumSkewed >= sumUniform/2 {
		t.Fatalf("skew ineffective: skewed mean %f vs uniform mean %f", sumSkewed/n, sumUniform/n)
	}
	if skewedVal(rng, 0, 0.5) != 0 {
		t.Fatal("zero range must yield zero")
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpIterate.String() != "iterate" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("out-of-range op name empty")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalInterfCalls = 777
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalInterfCalls != 777 || len(got.DataElemSizes) != len(cfg.DataElemSizes) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestReadConfigRejectsInvalid(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadConfig(strings.NewReader(`{"TotalInterfCalls":0}`)); err == nil {
		t.Fatal("invalid config accepted")
	}
}
