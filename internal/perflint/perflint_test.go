package perflint

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
)

func TestSupportedCandidates(t *testing.T) {
	if got := SupportedCandidates(adt.KindSet); got != nil {
		t.Fatalf("set should have no supported replacements, got %v", got)
	}
	v := SupportedCandidates(adt.KindVector)
	hasHash := false
	hasSet := false
	for _, k := range v {
		if k == adt.KindHashSet {
			hasHash = true
		}
		if k == adt.KindSet {
			hasSet = true
		}
	}
	if hasHash {
		t.Fatal("perflint must not support vector-to-hash_set (paper, Section 6.2)")
	}
	if !hasSet {
		t.Fatal("perflint supports vector-to-set")
	}
	m := SupportedCandidates(adt.KindMap)
	if len(m) != 2 {
		t.Fatalf("map candidates = %v", m)
	}
}

func TestAdvisorChargesAndDelegates(t *testing.T) {
	inner := adt.New(adt.KindVector, nil, 8)
	a := NewAdvisor(inner, nil)
	for i := uint64(0); i < 100; i++ {
		a.Insert(i)
	}
	if a.Len() != 100 {
		t.Fatalf("delegation broken: Len = %d", a.Len())
	}
	for i := 0; i < 50; i++ {
		a.Find(uint64(i))
	}
	costsVec := a.AccumulatedCosts(adt.KindVector)
	costsSet := a.AccumulatedCosts(adt.KindSet)
	// 50 finds among ~100 elements: vector pays 3/4*100 each, set pays log2(100).
	if costsVec[OpFind] < costsSet[OpFind]*5 {
		t.Fatalf("vector find cost %f not ≫ set find cost %f", costsVec[OpFind], costsSet[OpFind])
	}
}

func TestAdvisorPicksSetForFindHeavy(t *testing.T) {
	inner := adt.New(adt.KindVector, nil, 8)
	a := NewAdvisor(inner, nil)
	for i := uint64(0); i < 500; i++ {
		a.Insert(i)
	}
	for i := 0; i < 5000; i++ {
		a.Find(uint64(i % 500))
	}
	got, ok := a.Advise()
	if !ok || got != adt.KindSet {
		t.Fatalf("Advise = %v,%v; want set for find-heavy vector", got, ok)
	}
}

func TestAdvisorKeepsVectorForIterateHeavy(t *testing.T) {
	inner := adt.New(adt.KindVector, nil, 8)
	a := NewAdvisor(inner, nil)
	for i := uint64(0); i < 100; i++ {
		a.Insert(i)
	}
	for i := 0; i < 1000; i++ {
		a.Iterate(-1)
	}
	got, ok := a.Advise()
	if !ok {
		t.Fatal("no advice")
	}
	// With unit coefficients, iteration costs are identical across kinds,
	// and inserts cost 1 for vector vs log n for set, so a sequence must win.
	if got.IsAssociative() {
		t.Fatalf("Advise = %v for iterate-heavy workload", got)
	}
}

func TestAdvisorUnsupportedOriginal(t *testing.T) {
	inner := adt.New(adt.KindSet, nil, 8)
	a := NewAdvisor(inner, nil)
	a.Insert(1)
	if _, ok := a.Advise(); ok {
		t.Fatal("set original should yield no advice")
	}
}

func TestFitCoefficientsRecoversLinearCosts(t *testing.T) {
	// Synthetic calibration: cycles = 2*find + 10*insert + 100.
	rng := rand.New(rand.NewSource(1))
	runs := map[adt.Kind][]CalibrationRun{}
	for i := 0; i < 60; i++ {
		costs := make([]float64, NumOps)
		costs[OpFind] = float64(rng.Intn(1000))
		costs[OpInsert] = float64(rng.Intn(1000))
		cycles := 2*costs[OpFind] + 10*costs[OpInsert] + 100
		runs[adt.KindVector] = append(runs[adt.KindVector], CalibrationRun{Costs: costs, Cycles: cycles})
	}
	coef, err := FitCoefficients(runs)
	if err != nil {
		t.Fatal(err)
	}
	w := coef[adt.KindVector]
	if w[OpFind] < 1.9 || w[OpFind] > 2.1 {
		t.Fatalf("find coefficient = %f, want ~2", w[OpFind])
	}
	if w[OpInsert] < 9.5 || w[OpInsert] > 10.5 {
		t.Fatalf("insert coefficient = %f, want ~10", w[OpInsert])
	}
}

func TestFitCoefficientsNeedsEnoughRuns(t *testing.T) {
	runs := map[adt.Kind][]CalibrationRun{
		adt.KindVector: {{Costs: make([]float64, NumOps), Cycles: 1}},
	}
	if _, err := FitCoefficients(runs); err == nil {
		t.Fatal("too few runs accepted")
	}
}

func TestPredictedCostUsesCoefficients(t *testing.T) {
	inner := adt.New(adt.KindVector, nil, 8)
	coef := Coefficients{
		adt.KindVector: append(make([]float64, NumOps), 1000), // only intercept
	}
	a := NewAdvisor(inner, coef)
	a.Insert(1)
	if got := a.PredictedCost(adt.KindVector); got != 1000 {
		t.Fatalf("predicted = %f, want intercept 1000", got)
	}
}

func TestAsymptoticShapes(t *testing.T) {
	if asymptoticCost(adt.KindVector, OpFind, 1000, 0) <= asymptoticCost(adt.KindSet, OpFind, 1000, 0) {
		t.Fatal("vector find not dearer than set find at n=1000")
	}
	if asymptoticCost(adt.KindHashSet, OpFind, 1<<20, 0) != 1 {
		t.Fatal("hash find not O(1)")
	}
	if asymptoticCost(adt.KindVector, OpIterate, 10, 7) != 7 {
		t.Fatal("iterate cost must be the visit count")
	}
	if asymptoticCost(adt.KindList, OpPushFront, 1000, 0) != 1 {
		t.Fatal("list push_front not O(1)")
	}
	if asymptoticCost(adt.KindVector, OpPushFront, 1000, 0) != 1000 {
		t.Fatal("vector push_front not O(n)")
	}
}

func TestOpString(t *testing.T) {
	if OpFind.String() != "find" || OpEraseFront.String() != "erase_front" {
		t.Fatal("op names wrong")
	}
}
