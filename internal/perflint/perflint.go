// Package perflint re-implements the hand-constructed baseline advisor the
// paper compares against (Liu & Rus, CGO'09). Perflint instruments the
// original container and, on every interface invocation, charges each
// candidate implementation its textbook asymptotic cost at the current
// container size (e.g. a find among N elements costs 3/4·N for vector and
// log₂N for set). The per-operation costs are weighted by coefficients fit
// with linear regression against measured execution times and accumulated;
// at the end the cheapest candidate is reported.
//
// Faithful to the paper, Perflint needs one model per (original,
// alternative) pair, uses no hardware features, and only supports a subset
// of replacements: vector/list to vector, list, deque, or set — not to
// hash or AVL variants, and nothing for set or map originals.
package perflint

import (
	"fmt"
	"math"

	"repro/internal/adt"
	"repro/internal/linreg"
)

// Op is the interface-function vocabulary Perflint charges costs for.
type Op int

// Advisor-level operations (the ADT call surface).
const (
	OpInsert Op = iota
	OpInsertAt
	OpPushFront
	OpErase
	OpEraseFront
	OpFind
	OpIterate
	NumOps
)

var opNames = [NumOps]string{
	"insert", "insert_at", "push_front", "erase", "erase_front", "find", "iterate",
}

// String returns the operation name.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// SupportedCandidates lists the alternatives Perflint has hand models for,
// given the original kind. Map originals are advised through the set model
// (the paper's footnote 5); hash and AVL alternatives are unsupported.
func SupportedCandidates(from adt.Kind) []adt.Kind {
	switch from {
	case adt.KindVector, adt.KindList, adt.KindDeque:
		return []adt.Kind{adt.KindVector, adt.KindList, adt.KindDeque, adt.KindSet}
	case adt.KindMap:
		// Footnote 5: a set suggestion is read as "replace with map".
		return []adt.Kind{adt.KindMap, adt.KindSet}
	default:
		return nil // no replacement supported for set originals (Section 6.4)
	}
}

// asymptoticCost is the hand model: the cost of op on a container of kind k
// currently holding n elements. iterN is the iteration length for OpIterate.
func asymptoticCost(k adt.Kind, op Op, n int, iterN int) float64 {
	fn := float64(n)
	logN := 1.0
	if n > 1 {
		logN = math.Log2(fn)
	}
	switch k {
	case adt.KindVector:
		switch op {
		case OpInsert:
			return 1 // amortized push_back
		case OpInsertAt:
			return fn / 2 // shift half the tail on average
		case OpPushFront:
			return fn
		case OpErase:
			return 3*fn/4 + fn/4 // average linear search + tail shift
		case OpEraseFront:
			return fn
		case OpFind:
			return 3 * fn / 4 // the paper's 3/4·N average-case linear search
		case OpIterate:
			return float64(iterN)
		}
	case adt.KindList, adt.KindDeque:
		switch op {
		case OpInsert, OpPushFront, OpEraseFront:
			return 1
		case OpInsertAt:
			return fn / 4 // walk from the nearer end
		case OpErase:
			return 3 * fn / 4
		case OpFind:
			return 3 * fn / 4
		case OpIterate:
			return float64(iterN)
		}
	case adt.KindSet, adt.KindMap, adt.KindAVLSet, adt.KindAVLMap, adt.KindSplaySet:
		switch op {
		case OpInsert, OpInsertAt, OpPushFront, OpErase, OpEraseFront, OpFind:
			return logN // binary search: average == worst (footnote 4)
		case OpIterate:
			return float64(iterN)
		}
	case adt.KindHashSet, adt.KindHashMap:
		switch op {
		case OpIterate:
			return float64(iterN)
		default:
			return 1
		}
	}
	return 1
}

// Coefficients maps a candidate kind to per-op regression weights (plus an
// intercept in the final slot).
type Coefficients map[adt.Kind][]float64

// Advisor wraps an adt.Container and accumulates, for every supported
// candidate, the asymptotic cost of each interface invocation at the
// current size. It implements adt.Container so it can be dropped in
// wherever the original container is used.
type Advisor struct {
	adt.Container
	from   adt.Kind
	coef   Coefficients
	accum  map[adt.Kind][]float64 // per-candidate per-op accumulated cost
	advice []adt.Kind
}

// NewAdvisor wraps inner (the application's original container) with
// Perflint instrumentation. coef may be nil, in which case unit
// coefficients are used.
func NewAdvisor(inner adt.Container, coef Coefficients) *Advisor {
	a := &Advisor{
		Container: inner,
		from:      inner.Kind(),
		coef:      coef,
		accum:     map[adt.Kind][]float64{},
		advice:    SupportedCandidates(inner.Kind()),
	}
	for _, k := range a.advice {
		a.accum[k] = make([]float64, NumOps)
	}
	return a
}

func (a *Advisor) charge(op Op, iterN int) {
	n := a.Container.Len()
	for _, k := range a.advice {
		a.accum[k][op] += asymptoticCost(k, op, n, iterN)
	}
}

// Insert charges and delegates.
func (a *Advisor) Insert(key uint64) { a.charge(OpInsert, 0); a.Container.Insert(key) }

// InsertAt charges and delegates.
func (a *Advisor) InsertAt(pos int, key uint64) {
	a.charge(OpInsertAt, 0)
	a.Container.InsertAt(pos, key)
}

// PushFront charges and delegates.
func (a *Advisor) PushFront(key uint64) { a.charge(OpPushFront, 0); a.Container.PushFront(key) }

// Erase charges and delegates.
func (a *Advisor) Erase(key uint64) bool { a.charge(OpErase, 0); return a.Container.Erase(key) }

// EraseFront charges and delegates.
func (a *Advisor) EraseFront() bool { a.charge(OpEraseFront, 0); return a.Container.EraseFront() }

// Find charges and delegates.
func (a *Advisor) Find(key uint64) bool { a.charge(OpFind, 0); return a.Container.Find(key) }

// Iterate charges and delegates.
func (a *Advisor) Iterate(n int) uint64 {
	visit := n
	if l := a.Container.Len(); visit < 0 || visit > l {
		visit = l
	}
	a.charge(OpIterate, visit)
	return a.Container.Iterate(n)
}

// PredictedCost returns the regression-weighted accumulated cost for one
// candidate kind.
func (a *Advisor) PredictedCost(k adt.Kind) float64 {
	costs, ok := a.accum[k]
	if !ok {
		return math.Inf(1)
	}
	w := a.coef[k]
	if w == nil {
		// Unit coefficients: plain asymptotic total.
		var s float64
		for _, c := range costs {
			s += c
		}
		return s
	}
	s := 0.0
	for i, c := range costs {
		s += w[i] * c
	}
	if len(w) > int(NumOps) {
		s += w[NumOps] // intercept
	}
	return s
}

// Advise returns Perflint's suggested container: the supported candidate
// with the lowest predicted cost. ok is false when the original kind has
// no supported replacements.
func (a *Advisor) Advise() (adt.Kind, bool) {
	if len(a.advice) == 0 {
		return a.from, false
	}
	best := a.advice[0]
	bestCost := a.PredictedCost(best)
	for _, k := range a.advice[1:] {
		if c := a.PredictedCost(k); c < bestCost {
			best, bestCost = k, c
		}
	}
	return best, true
}

// CalibrationRun is one observation for coefficient fitting: the per-op
// asymptotic costs a candidate accumulated and the cycles the candidate
// actually took on the same behaviour.
type CalibrationRun struct {
	Costs  []float64 // length NumOps
	Cycles float64
}

// FitCoefficients regresses measured cycles on asymptotic per-op costs for
// each candidate kind, returning the coefficient table the advisor uses.
// This is the paper's "coefficient value determined by linear regression
// analysis for execution time".
func FitCoefficients(runs map[adt.Kind][]CalibrationRun) (Coefficients, error) {
	out := Coefficients{}
	for kind, rs := range runs {
		if len(rs) < int(NumOps)+2 {
			return nil, fmt.Errorf("perflint: %d calibration runs for %v, need at least %d", len(rs), kind, NumOps+2)
		}
		x := make([][]float64, len(rs))
		y := make([]float64, len(rs))
		for i, r := range rs {
			row := make([]float64, NumOps+1)
			copy(row, r.Costs)
			row[NumOps] = 1 // intercept
			x[i] = row
			y[i] = r.Cycles
		}
		w, err := linreg.Fit(x, y)
		if err != nil {
			return nil, fmt.Errorf("perflint: fitting %v: %w", kind, err)
		}
		out[kind] = w
	}
	return out, nil
}

// AccumulatedCosts exposes the advisor's per-candidate cost table, used by
// the calibration harness.
func (a *Advisor) AccumulatedCosts(k adt.Kind) []float64 {
	c := a.accum[k]
	out := make([]float64, len(c))
	copy(out, c)
	return out
}
