package ann

import "testing"

// BenchmarkTrainEpochs measures back-propagation throughput on a
// Brainy-sized problem: 27 features, 6 classes, 300 examples.
func BenchmarkTrainEpochs(b *testing.B) {
	examples := twoBlobs(300, 1)
	// Widen to a Brainy-like input dimension.
	for i := range examples {
		x := make([]float64, 27)
		copy(x, examples[i].X)
		examples[i].X = x
	}
	cfg := DefaultConfig()
	cfg.Epochs = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := New(27, 6, cfg)
		if _, err := n.Train(examples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures inference latency.
func BenchmarkPredict(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Epochs = 20
	n := New(2, 2, cfg)
	if _, err := n.Train(twoBlobs(200, 2)); err != nil {
		b.Fatal(err)
	}
	x := []float64{1.5, -0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Predict(x)
	}
}
