package ann

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// twoBlobs builds a linearly separable 2-class problem.
func twoBlobs(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		label := i % 2
		cx := 2.0
		if label == 1 {
			cx = -2.0
		}
		out = append(out, Example{
			X:     []float64{cx + rng.NormFloat64()*0.5, rng.NormFloat64()},
			Label: label,
		})
	}
	return out
}

// xorSet builds the classic non-linearly-separable XOR problem, the case
// the paper cites ANNs for (non-linear feature interactions).
func xorSet(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		label := a ^ b
		out = append(out, Example{
			X:     []float64{float64(a) + rng.NormFloat64()*0.1, float64(b) + rng.NormFloat64()*0.1},
			Label: label,
		})
	}
	return out
}

func TestLearnsLinearlySeparable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 60
	n := New(2, 2, cfg)
	train := twoBlobs(400, 1)
	if _, err := n.Train(train); err != nil {
		t.Fatal(err)
	}
	test := twoBlobs(200, 2)
	if acc := n.Accuracy(test); acc < 0.95 {
		t.Fatalf("accuracy %f on separable blobs", acc)
	}
}

func TestLearnsXOR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	cfg.Epochs = 300
	n := New(2, 2, cfg)
	if _, err := n.Train(xorSet(400, 3)); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xorSet(200, 4)); acc < 0.95 {
		t.Fatalf("accuracy %f on XOR (non-linear)", acc)
	}
}

func TestMultiClass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gen := func(n int) []Example {
		out := make([]Example, 0, n)
		centers := [][2]float64{{3, 0}, {-3, 0}, {0, 3}, {0, -3}}
		for i := 0; i < n; i++ {
			c := i % 4
			out = append(out, Example{
				X:     []float64{centers[c][0] + rng.NormFloat64()*0.4, centers[c][1] + rng.NormFloat64()*0.4},
				Label: c,
			})
		}
		return out
	}
	cfg := DefaultConfig()
	cfg.Epochs = 100
	n := New(2, 4, cfg)
	if _, err := n.Train(gen(800)); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(gen(400)); acc < 0.95 {
		t.Fatalf("4-class accuracy %f", acc)
	}
}

func TestLossDecreases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	cfg.Epochs = 1
	n1 := New(2, 2, cfg)
	l1, err := n1.Train(xorSet(300, 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 150
	n2 := New(2, 2, cfg)
	l150, err := n2.Train(xorSet(300, 6))
	if err != nil {
		t.Fatal(err)
	}
	if l150 >= l1 {
		t.Fatalf("loss did not decrease: %f -> %f", l1, l150)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	n := New(3, 5, DefaultConfig())
	p := n.Probabilities([]float64{0.1, -0.2, 0.3})
	var sum float64
	for _, q := range p {
		if q < 0 || q > 1 {
			t.Fatalf("probability %f out of range", q)
		}
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %f", sum)
	}
}

func TestNormalizationHandlesConstantFeature(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 30
	n := New(3, 2, cfg)
	exs := twoBlobs(200, 7)
	for i := range exs {
		exs[i].X = append(exs[i].X, 42.0) // constant third feature
	}
	if _, err := n.Train(exs); err != nil {
		t.Fatal(err)
	}
	test := twoBlobs(100, 8)
	for i := range test {
		test[i].X = append(test[i].X, 42.0)
	}
	if acc := n.Accuracy(test); acc < 0.9 {
		t.Fatalf("accuracy %f with constant feature", acc)
	}
}

func TestMaskDisablesFeature(t *testing.T) {
	// Class depends only on feature 0; masking it should drop accuracy to
	// chance, masking the irrelevant feature should not.
	cfg := DefaultConfig()
	cfg.Epochs = 60
	train := twoBlobs(400, 9)
	test := twoBlobs(200, 10)

	masked := New(2, 2, cfg)
	masked.SetMask([]float64{0, 1})
	if _, err := masked.Train(train); err != nil {
		t.Fatal(err)
	}
	if acc := masked.Accuracy(test); acc > 0.7 {
		t.Fatalf("masking the informative feature left accuracy %f", acc)
	}

	keep := New(2, 2, cfg)
	keep.SetMask([]float64{1, 0})
	if _, err := keep.Train(train); err != nil {
		t.Fatal(err)
	}
	if acc := keep.Accuracy(test); acc < 0.9 {
		t.Fatalf("masking the irrelevant feature broke accuracy: %f", acc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 40
	n := New(2, 2, cfg)
	if _, err := n.Train(twoBlobs(300, 11)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	test := twoBlobs(100, 12)
	for _, e := range test {
		if n.Predict(e.X) != m.Predict(e.X) {
			t.Fatal("loaded network predicts differently")
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"In":0,"Hidden":0,"Out":0}`))); err == nil {
		t.Fatal("zero shape accepted")
	}
}

// savedNetwork trains a small valid network and returns its JSON bytes.
func savedNetwork(t *testing.T) []byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Epochs = 10
	cfg.Hidden = 4
	n := New(2, 2, cfg)
	if _, err := n.Train(twoBlobs(60, 21)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corruptJSON decodes, mutates, and re-encodes a serialized network.
func corruptJSON(t *testing.T, data []byte, mutate func(map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLoadRejectsMalformedShapes feeds Load artifacts whose declared shape
// disagrees with the actual matrices — the corruptions that previously
// passed Load and panicked with an index error inside the first Predict.
func TestLoadRejectsMalformedShapes(t *testing.T) {
	valid := savedNetwork(t)
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(map[string]any)
	}{
		{"truncated W1", func(m map[string]any) {
			w1 := m["W1"].([]any)
			m["W1"] = w1[:len(w1)-1]
		}},
		{"narrow W1 row", func(m map[string]any) {
			w1 := m["W1"].([]any)
			row := w1[0].([]any)
			w1[0] = row[:len(row)-1]
		}},
		{"truncated W2", func(m map[string]any) {
			w2 := m["W2"].([]any)
			m["W2"] = w2[:len(w2)-1]
		}},
		{"wide W2 row", func(m map[string]any) {
			w2 := m["W2"].([]any)
			row := w2[0].([]any)
			w2[0] = append(row, 0.5)
		}},
		{"missing Mean entry", func(m map[string]any) {
			mean := m["Mean"].([]any)
			m["Mean"] = mean[:len(mean)-1]
		}},
		{"missing Std entry", func(m map[string]any) {
			std := m["Std"].([]any)
			m["Std"] = std[:len(std)-1]
		}},
		{"wrong-length Mask", func(m map[string]any) {
			m["Mask"] = []any{1.0}
		}},
		{"negative hidden", func(m map[string]any) {
			m["Hidden"] = -3
		}},
		{"lying hidden width", func(m map[string]any) {
			// Shape fields claim a wider net than the matrices hold.
			m["Hidden"] = 16
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := corruptJSON(t, valid, tc.mutate)
			if _, err := Load(bytes.NewReader(data)); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	// Truncated byte streams (a partially written artifact) must also fail.
	if _, err := Load(bytes.NewReader(valid[:len(valid)/2])); err == nil {
		t.Fatal("truncated artifact accepted")
	}
}

// TestTrainAfterLoad exercises the once-panicking path: Train on a network
// that came from Load (nil rng and momentum buffers before the fix).
func TestTrainAfterLoad(t *testing.T) {
	n, err := Load(bytes.NewReader(savedNetwork(t)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(twoBlobs(60, 22)); err != nil {
		t.Fatalf("training a loaded network: %v", err)
	}
}

func TestTrainUninitializedNetwork(t *testing.T) {
	n := &Network{In: 2, Hidden: 2, Out: 2}
	if _, err := n.Train(twoBlobs(10, 23)); err == nil {
		t.Fatal("zero-value network accepted training")
	}
}

func TestTrainValidation(t *testing.T) {
	n := New(2, 2, DefaultConfig())
	if _, err := n.Train(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := n.Train([]Example{{X: []float64{1}, Label: 0}}); err == nil {
		t.Fatal("wrong feature count accepted")
	}
	if _, err := n.Train([]Example{{X: []float64{1, 2}, Label: 7}}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 20
	a := New(2, 2, cfg)
	b := New(2, 2, cfg)
	exs := twoBlobs(200, 13)
	la, _ := a.Train(exs)
	lb, _ := b.Train(exs)
	if la != lb {
		t.Fatalf("same seed, different losses: %f vs %f", la, lb)
	}
}

// TestProbabilitiesBatchBitIdentical is the batched-evaluation contract:
// for trained and untrained networks alike, across shapes and masks, the
// matrix pass returns distributions bit-for-bit equal to one-at-a-time
// evaluation. The sharded server leans on this to answer exactly what the
// sequential CLI answers.
func TestProbabilitiesBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := []struct{ in, out int }{{2, 2}, {7, 3}, {27, 6}}
	for _, shape := range shapes {
		cfg := DefaultConfig()
		cfg.Epochs = 5
		n := New(shape.in, shape.out, cfg)
		// Train on random data so Mean/Std are non-trivial.
		exs := make([]Example, 50)
		for i := range exs {
			x := make([]float64, shape.in)
			for j := range x {
				x[j] = rng.NormFloat64() * float64(j+1)
			}
			exs[i] = Example{X: x, Label: i % shape.out}
		}
		if _, err := n.Train(exs); err != nil {
			t.Fatal(err)
		}
		for _, withMask := range []bool{false, true} {
			if withMask {
				mask := make([]float64, shape.in)
				for j := range mask {
					mask[j] = float64(j % 2)
				}
				n.SetMask(mask)
			} else {
				n.SetMask(nil)
			}
			for _, batchSize := range []int{1, 2, 3, 17, 64} {
				xs := make([][]float64, batchSize)
				for b := range xs {
					x := make([]float64, shape.in)
					for j := range x {
						x[j] = rng.NormFloat64() * 10
					}
					xs[b] = x
				}
				got := n.ProbabilitiesBatch(xs)
				if len(got) != batchSize {
					t.Fatalf("batch returned %d rows, want %d", len(got), batchSize)
				}
				for b, x := range xs {
					want := n.Probabilities(x)
					for o := range want {
						if got[b][o] != want[o] { // exact: bit-identical, not approximately equal
							t.Fatalf("shape %dx%d mask=%v batch=%d input %d class %d: batch %v != single %v",
								shape.in, shape.out, withMask, batchSize, b, o, got[b][o], want[o])
						}
					}
				}
			}
		}
	}
	if got := New(3, 2, DefaultConfig()).ProbabilitiesBatch(nil); got != nil {
		t.Fatalf("empty batch = %v, want nil", got)
	}
}
