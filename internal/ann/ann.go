// Package ann implements the artificial neural network of Section 5: a
// fully connected feed-forward classifier with one hidden layer, trained by
// back-propagation (Rumelhart et al.) with stochastic gradient descent and
// momentum. Each of Brainy's original data structures gets its own network
// whose output classes are the legal replacement candidates; the network
// learns "given how the original container behaved, which implementation
// would have been fastest".
package ann

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Config controls network shape and training hyperparameters.
type Config struct {
	Hidden       int     // hidden-layer width
	LearningRate float64 // SGD step size
	Momentum     float64 // classical momentum coefficient
	Epochs       int     // passes over the training set
	Seed         int64   // weight-init and shuffle seed
	L2           float64 // weight decay
}

// DefaultConfig returns hyperparameters that train all six of Brainy's
// models reliably at the evaluation's data-set sizes.
func DefaultConfig() Config {
	return Config{
		Hidden:       24,
		LearningRate: 0.05,
		Momentum:     0.9,
		Epochs:       200,
		Seed:         1,
		L2:           1e-4,
	}
}

// Example is one training pair: the feature vector of the original
// container's run, labelled with the index of the best candidate.
type Example struct {
	X     []float64
	Label int
}

// Network is a trained (or trainable) classifier. Construct with New or
// Load. The zero value is not usable.
type Network struct {
	In, Hidden, Out int

	// Weights: W1[h][i] input->hidden (+bias at index In), W2[o][h]
	// hidden->output (+bias at index Hidden).
	W1 [][]float64
	W2 [][]float64

	// Feature normalization (z-score), learned from the training set.
	Mean, Std []float64

	// Mask disables features (used by GA feature selection and the
	// no-hardware-features ablation); nil means all features active.
	Mask []float64

	cfg Config
	rng *rand.Rand

	// momentum buffers
	vW1, vW2 [][]float64
}

// New builds an untrained network with the given input and output sizes.
func New(in, out int, cfg Config) *Network {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("ann: invalid shape in=%d out=%d", in, out))
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 16
	}
	n := &Network{
		In: in, Hidden: cfg.Hidden, Out: out,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	n.W1 = randMatrix(n.rng, cfg.Hidden, in+1, math.Sqrt(2/float64(in)))
	n.W2 = randMatrix(n.rng, out, cfg.Hidden+1, math.Sqrt(2/float64(cfg.Hidden)))
	n.vW1 = zeroMatrix(cfg.Hidden, in+1)
	n.vW2 = zeroMatrix(out, cfg.Hidden+1)
	n.Mean = make([]float64, in)
	n.Std = ones(in)
	return n
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64() * scale
		}
	}
	return m
}

func zeroMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// SetMask installs a per-feature multiplier (0 disables a feature, 1 keeps
// it; fractional weights from the GA are honoured). A nil mask re-enables
// everything.
func (n *Network) SetMask(mask []float64) {
	if mask != nil && len(mask) != n.In {
		panic(fmt.Sprintf("ann: mask length %d != inputs %d", len(mask), n.In))
	}
	n.Mask = mask
}

// fitNormalization computes per-feature mean and standard deviation.
func (n *Network) fitNormalization(examples []Example) {
	for j := 0; j < n.In; j++ {
		var sum float64
		for _, e := range examples {
			sum += e.X[j]
		}
		mean := sum / float64(len(examples))
		var varsum float64
		for _, e := range examples {
			d := e.X[j] - mean
			varsum += d * d
		}
		std := math.Sqrt(varsum / float64(len(examples)))
		if std < 1e-9 {
			std = 1
		}
		n.Mean[j], n.Std[j] = mean, std
	}
}

func (n *Network) normalize(x []float64) []float64 {
	z := make([]float64, n.In)
	for j := 0; j < n.In; j++ {
		z[j] = (x[j] - n.Mean[j]) / n.Std[j]
		if n.Mask != nil {
			z[j] *= n.Mask[j]
		}
	}
	return z
}

// forward runs the network on a normalized input, returning hidden
// activations and output probabilities.
func (n *Network) forward(z []float64) (hidden, probs []float64) {
	hidden = make([]float64, n.Hidden)
	for h := 0; h < n.Hidden; h++ {
		sum := n.W1[h][n.In] // bias
		for j := 0; j < n.In; j++ {
			sum += n.W1[h][j] * z[j]
		}
		hidden[h] = math.Tanh(sum)
	}
	logits := make([]float64, n.Out)
	maxLogit := math.Inf(-1)
	for o := 0; o < n.Out; o++ {
		sum := n.W2[o][n.Hidden] // bias
		for h := 0; h < n.Hidden; h++ {
			sum += n.W2[o][h] * hidden[h]
		}
		logits[o] = sum
		if sum > maxLogit {
			maxLogit = sum
		}
	}
	probs = make([]float64, n.Out)
	var total float64
	for o := range logits {
		probs[o] = math.Exp(logits[o] - maxLogit)
		total += probs[o]
	}
	for o := range probs {
		probs[o] /= total
	}
	return hidden, probs
}

// Train fits the network on the examples with SGD + momentum, minimizing
// cross-entropy. It returns the final average training loss.
func (n *Network) Train(examples []Example) (float64, error) {
	if n.rng == nil || n.vW1 == nil || n.vW2 == nil || n.cfg.Epochs <= 0 {
		return 0, errors.New("ann: network not initialized for training; construct it with New or Load")
	}
	if len(examples) == 0 {
		return 0, errors.New("ann: empty training set")
	}
	for _, e := range examples {
		if len(e.X) != n.In {
			return 0, fmt.Errorf("ann: example has %d features, want %d", len(e.X), n.In)
		}
		if e.Label < 0 || e.Label >= n.Out {
			return 0, fmt.Errorf("ann: label %d out of range [0,%d)", e.Label, n.Out)
		}
	}
	n.fitNormalization(examples)
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	var loss float64
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		n.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		loss = 0
		lr := n.cfg.LearningRate / (1 + 0.01*float64(epoch)) // mild decay
		for _, i := range idx {
			e := examples[i]
			z := n.normalize(e.X)
			hidden, probs := n.forward(z)
			loss += -math.Log(math.Max(probs[e.Label], 1e-12))

			// Output deltas (softmax + cross-entropy): p - y.
			dOut := make([]float64, n.Out)
			copy(dOut, probs)
			dOut[e.Label] -= 1

			// Hidden deltas through tanh'.
			dHid := make([]float64, n.Hidden)
			for h := 0; h < n.Hidden; h++ {
				var s float64
				for o := 0; o < n.Out; o++ {
					s += n.W2[o][h] * dOut[o]
				}
				dHid[h] = s * (1 - hidden[h]*hidden[h])
			}

			// Update W2.
			for o := 0; o < n.Out; o++ {
				g := dOut[o]
				for h := 0; h < n.Hidden; h++ {
					grad := g*hidden[h] + n.cfg.L2*n.W2[o][h]
					n.vW2[o][h] = n.cfg.Momentum*n.vW2[o][h] - lr*grad
					n.W2[o][h] += n.vW2[o][h]
				}
				n.vW2[o][n.Hidden] = n.cfg.Momentum*n.vW2[o][n.Hidden] - lr*g
				n.W2[o][n.Hidden] += n.vW2[o][n.Hidden]
			}
			// Update W1.
			for h := 0; h < n.Hidden; h++ {
				g := dHid[h]
				for j := 0; j < n.In; j++ {
					grad := g*z[j] + n.cfg.L2*n.W1[h][j]
					n.vW1[h][j] = n.cfg.Momentum*n.vW1[h][j] - lr*grad
					n.W1[h][j] += n.vW1[h][j]
				}
				n.vW1[h][n.In] = n.cfg.Momentum*n.vW1[h][n.In] - lr*g
				n.W1[h][n.In] += n.vW1[h][n.In]
			}
		}
		loss /= float64(len(examples))
	}
	return loss, nil
}

// Predict returns the most probable class for x.
func (n *Network) Predict(x []float64) int {
	probs := n.Probabilities(x)
	best := 0
	for o := 1; o < len(probs); o++ {
		if probs[o] > probs[best] {
			best = o
		}
	}
	return best
}

// Probabilities returns the class distribution for x.
func (n *Network) Probabilities(x []float64) []float64 {
	if len(x) != n.In {
		panic(fmt.Sprintf("ann: input has %d features, want %d", len(x), n.In))
	}
	_, probs := n.forward(n.normalize(x))
	return probs
}

// ProbabilitiesBatch runs the network over a batch of inputs in one matrix
// pass: weight rows stream through the cache once per layer instead of once
// per input, and the whole batch shares four flat buffer allocations where
// the one-at-a-time path allocates per call. Every per-input summation runs
// in exactly the order forward uses (bias first, then ascending indices),
// so the returned distributions are bit-identical to calling Probabilities
// on each input — the batched server must answer exactly what the
// sequential CLI answers.
func (n *Network) ProbabilitiesBatch(xs [][]float64) [][]float64 {
	for _, x := range xs {
		if len(x) != n.In {
			panic(fmt.Sprintf("ann: input has %d features, want %d", len(x), n.In))
		}
	}
	if len(xs) == 0 {
		return nil
	}
	B := len(xs)

	// Normalize the whole batch into one flat buffer.
	zs := make([]float64, B*n.In)
	for b, x := range xs {
		z := zs[b*n.In : (b+1)*n.In]
		for j := 0; j < n.In; j++ {
			z[j] = (x[j] - n.Mean[j]) / n.Std[j]
			if n.Mask != nil {
				z[j] *= n.Mask[j]
			}
		}
	}

	// Input -> hidden: each weight row is loaded once and applied to every
	// input in the batch.
	hid := make([]float64, B*n.Hidden)
	for h := 0; h < n.Hidden; h++ {
		row := n.W1[h]
		bias := row[n.In]
		for b := 0; b < B; b++ {
			z := zs[b*n.In : (b+1)*n.In]
			sum := bias
			for j := 0; j < n.In; j++ {
				sum += row[j] * z[j]
			}
			hid[b*n.Hidden+h] = math.Tanh(sum)
		}
	}

	// Hidden -> output logits, same row-major pass.
	logits := make([]float64, B*n.Out)
	for o := 0; o < n.Out; o++ {
		row := n.W2[o]
		bias := row[n.Hidden]
		for b := 0; b < B; b++ {
			hv := hid[b*n.Hidden : (b+1)*n.Hidden]
			sum := bias
			for h := 0; h < n.Hidden; h++ {
				sum += row[h] * hv[h]
			}
			logits[b*n.Out+o] = sum
		}
	}

	// Softmax per input, sharing one flat output allocation.
	flat := make([]float64, B*n.Out)
	out := make([][]float64, B)
	for b := 0; b < B; b++ {
		lg := logits[b*n.Out : (b+1)*n.Out]
		probs := flat[b*n.Out : (b+1)*n.Out : (b+1)*n.Out]
		maxLogit := math.Inf(-1)
		for o := 0; o < n.Out; o++ {
			if lg[o] > maxLogit {
				maxLogit = lg[o]
			}
		}
		var total float64
		for o := range lg {
			probs[o] = math.Exp(lg[o] - maxLogit)
			total += probs[o]
		}
		for o := range probs {
			probs[o] /= total
		}
		out[b] = probs
	}
	return out
}

// Accuracy returns the fraction of examples the network labels correctly.
func (n *Network) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, e := range examples {
		if n.Predict(e.X) == e.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// serialized is the on-disk form of a network.
type serialized struct {
	In, Hidden, Out int
	W1, W2          [][]float64
	Mean, Std       []float64
	Mask            []float64
}

// Save writes the network as JSON.
func (n *Network) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(serialized{
		In: n.In, Hidden: n.Hidden, Out: n.Out,
		W1: n.W1, W2: n.W2, Mean: n.Mean, Std: n.Std, Mask: n.Mask,
	})
}

// validate checks that a deserialized network is internally consistent, so
// that a truncated or hand-edited artifact fails at load time with a
// descriptive error instead of panicking at the first Predict.
func (s *serialized) validate() error {
	if s.In <= 0 || s.Hidden <= 0 || s.Out <= 0 {
		return fmt.Errorf("ann: corrupt network shape in=%d hidden=%d out=%d", s.In, s.Hidden, s.Out)
	}
	if len(s.W1) != s.Hidden {
		return fmt.Errorf("ann: W1 has %d rows, want Hidden=%d", len(s.W1), s.Hidden)
	}
	for i, row := range s.W1 {
		if len(row) != s.In+1 {
			return fmt.Errorf("ann: W1 row %d has %d columns, want In+1=%d", i, len(row), s.In+1)
		}
	}
	if len(s.W2) != s.Out {
		return fmt.Errorf("ann: W2 has %d rows, want Out=%d", len(s.W2), s.Out)
	}
	for i, row := range s.W2 {
		if len(row) != s.Hidden+1 {
			return fmt.Errorf("ann: W2 row %d has %d columns, want Hidden+1=%d", i, len(row), s.Hidden+1)
		}
	}
	if len(s.Mean) != s.In {
		return fmt.Errorf("ann: Mean has %d entries, want In=%d", len(s.Mean), s.In)
	}
	if len(s.Std) != s.In {
		return fmt.Errorf("ann: Std has %d entries, want In=%d", len(s.Std), s.In)
	}
	if s.Mask != nil && len(s.Mask) != s.In {
		return fmt.Errorf("ann: Mask has %d entries, want In=%d", len(s.Mask), s.In)
	}
	return nil
}

// Load reads a network previously written by Save, validating every matrix
// shape. Loaded networks can predict immediately and can also continue
// training: the RNG, momentum buffers, and hyperparameters are
// reinitialized from DefaultConfig.
func Load(r io.Reader) (*Network, error) {
	var s serialized
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ann: decoding network: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	cfg.Hidden = s.Hidden
	return &Network{
		In: s.In, Hidden: s.Hidden, Out: s.Out,
		W1: s.W1, W2: s.W2, Mean: s.Mean, Std: s.Std, Mask: s.Mask,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		vW1: zeroMatrix(s.Hidden, s.In+1),
		vW2: zeroMatrix(s.Out, s.Hidden+1),
	}, nil
}
