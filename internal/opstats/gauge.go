package opstats

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Gauge is a value that can go up and down — in-flight requests, pool
// occupancy, queue depth. It is lock-free over the raw float64 bit pattern,
// like FloatCounter, and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates d (negative d decreases the gauge).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Expose writes the gauge in text exposition format. labels is either empty
// or a rendered label list.
func (g *Gauge) Expose(w io.Writer, name, labels string) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %g\n", name, labels, g.Value())
}
