package opstats

// This file holds the service metric primitives. The same package that
// defines the software features Brainy profiles also provides the counters
// and histograms that brainy-serve exposes on /metrics, so the repository
// needs no external metrics dependency. All types are safe for concurrent
// use and expose themselves in the Prometheus text exposition format.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Expose writes the counter in text exposition format. labels is either
// empty or a rendered label list like `path="/v1/advise",code="200"`.
func (c *Counter) Expose(w io.Writer, name, labels string) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
}

// FloatCounter is a monotonically increasing float64 counter for quantities
// that accumulate fractionally, such as simulated machine cycles. It is
// lock-free: Add retries a compare-and-swap on the raw bit pattern.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v, which must be non-negative to keep the counter
// monotone.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Expose writes the counter in text exposition format.
func (c *FloatCounter) Expose(w io.Writer, name, labels string) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %g\n", name, labels, c.Value())
}

// CounterVec is a family of counters sharing one metric name, keyed by a
// rendered label list. Children are created on first use and never removed.
type CounterVec struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// NewCounterVec returns an empty counter family.
func NewCounterVec() *CounterVec {
	return &CounterVec{m: make(map[string]*Counter)}
}

// With returns the counter for the given rendered label list (for example
// `arch="Core2"`), creating it if needed.
func (v *CounterVec) With(labels string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[labels]
	if !ok {
		c = &Counter{}
		v.m[labels] = c
	}
	return c
}

// Value returns the count for a label list, zero if absent.
func (v *CounterVec) Value(labels string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.m[labels]; ok {
		return c.Value()
	}
	return 0
}

// Total sums every child counter.
func (v *CounterVec) Total() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var t uint64
	for _, c := range v.m {
		t += c.Value()
	}
	return t
}

// Each calls fn for every child in label-sorted order with the child's
// rendered label list and current value — the structured counterpart of
// Expose, used by samplers that want typed readings instead of text.
func (v *CounterVec) Each(fn func(labels string, value uint64)) {
	v.mu.Lock()
	labels := make([]string, 0, len(v.m))
	for l := range v.m {
		labels = append(labels, l)
	}
	children := make(map[string]*Counter, len(v.m))
	for l, c := range v.m {
		children[l] = c
	}
	v.mu.Unlock()
	sort.Strings(labels)
	for _, l := range labels {
		fn(l, children[l].Value())
	}
}

// Expose writes every child in label-sorted order for stable output.
func (v *CounterVec) Expose(w io.Writer, name string) {
	v.mu.Lock()
	labels := make([]string, 0, len(v.m))
	for l := range v.m {
		labels = append(labels, l)
	}
	children := make(map[string]*Counter, len(v.m))
	for l, c := range v.m {
		children[l] = c
	}
	v.mu.Unlock()
	sort.Strings(labels)
	for _, l := range labels {
		children[l].Expose(w, name, l)
	}
}

// Histogram observes float64 samples into cumulative buckets, the shape
// /metrics consumers expect for latencies. Bounds are upper limits in
// ascending order; samples above the last bound land in the implicit +Inf
// bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow
	sum    float64
	count  uint64
	min    float64 // smallest observed sample; valid only when count > 0
	max    float64 // largest observed sample; valid only when count > 0

	// Exemplars: the request ID and value of the most recent ObserveExemplar
	// per bucket, so a latency bucket on /metrics links back to a concrete
	// request. Allocated lazily on the first ObserveExemplar — a histogram
	// observed only through Observe carries no exemplar state at all.
	exemplarIDs  []string
	exemplarVals []float64
}

// DefBuckets is a latency bucket layout (seconds) that resolves both
// cache-hit microsecond responses and multi-second analyze calls.
var DefBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// NewHistogram builds a histogram with the given ascending upper bounds.
// With no bounds it uses DefBuckets.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("opstats: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample, tracking the running extremes alongside the
// bucket counts so consumers can see the exact spread of a distribution
// (bucket bounds only bracket it).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.mu.Unlock()
}

// ObserveExemplar records one sample like Observe and additionally retains
// id as the bucket's exemplar: the identifier of the most recent request
// that landed in that bucket. An empty id observes without touching the
// exemplar state.
func (h *Histogram) ObserveExemplar(v float64, id string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	if id != "" {
		if h.exemplarIDs == nil {
			h.exemplarIDs = make([]string, len(h.counts))
			h.exemplarVals = make([]float64, len(h.counts))
		}
		h.exemplarIDs[i] = id
		h.exemplarVals[i] = v
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending
	Counts []uint64  // per-bucket (non-cumulative); last entry is +Inf
	Sum    float64
	Count  uint64
	Min    float64 // smallest observed sample; 0 when Count == 0
	Max    float64 // largest observed sample; 0 when Count == 0

	// Per-bucket exemplars (parallel to Counts); nil unless ObserveExemplar
	// has run. An empty ID means that bucket has no exemplar yet.
	ExemplarIDs  []string
	ExemplarVals []float64
}

// Snapshot copies the histogram state under the lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
		Min:    h.min,
		Max:    h.max,
	}
	if h.exemplarIDs != nil {
		s.ExemplarIDs = append([]string(nil), h.exemplarIDs...)
		s.ExemplarVals = append([]float64(nil), h.exemplarVals...)
	}
	return s
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Expose writes the histogram as cumulative _bucket lines plus _sum and
// _count, the text exposition histogram convention. Once the histogram has
// samples it also emits _min and _max gauges adjacent to the histogram's
// own metadata — the exact extremes of the distribution, which bucket
// bounds only bracket. They are omitted while empty so an unexercised
// histogram never exposes a misleading zero.
// Buckets that carry an exemplar append it OpenMetrics-style
// (`# {request_id="..."} value`) so scrapes can link a bucket to the most
// recent request that landed in it; histograms never fed through
// ObserveExemplar render exactly as before.
func (h *Histogram) Expose(w io.Writer, name string) {
	s := h.Snapshot()
	exemplar := func(i int) string {
		if s.ExemplarIDs == nil || s.ExemplarIDs[i] == "" {
			return ""
		}
		return fmt.Sprintf(" # {request_id=%q} %g", s.ExemplarIDs[i], s.ExemplarVals[i])
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", name, formatBound(b), cum, exemplar(i))
	}
	cum += s.Counts[len(s.Counts)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", name, cum, exemplar(len(s.Counts)-1))
	fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	if s.Count > 0 {
		fmt.Fprintf(w, "%s_min %g\n", name, s.Min)
		fmt.Fprintf(w, "%s_max %g\n", name, s.Max)
	}
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// BucketExemplar is one parsed exemplar from an exposition page: which
// bucket it annotates, the request that produced it, and the exact sample.
type BucketExemplar struct {
	LE        string  `json:"bucket_le"`
	RequestID string  `json:"request_id"`
	Value     float64 `json:"value"`
}

// ParseExemplars extracts the exemplars of one histogram from an exposition
// page rendered by Expose — the scrape-side mirror of the `# {...}` suffix.
// Results follow bucket order (ascending le). Buckets without an exemplar
// are omitted.
func ParseExemplars(page, name string) []BucketExemplar {
	var out []BucketExemplar
	prefix := name + "_bucket{le=\""
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		leEnd := strings.IndexByte(rest, '"')
		if leEnd < 0 {
			continue
		}
		le := rest[:leEnd]
		var ex BucketExemplar
		var cum uint64
		if n, _ := fmt.Sscanf(rest[leEnd:], "\"} %d # {request_id=%q} %g", &cum, &ex.RequestID, &ex.Value); n != 3 {
			continue
		}
		ex.LE = le
		out = append(out, ex)
	}
	return out
}
