package opstats

import (
	"strings"
	"sync"
	"testing"
)

func TestGaugeSetAddIncDec(t *testing.T) {
	var g Gauge
	g.Set(4)
	g.Add(2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 6.5 {
		t.Fatalf("value = %v, want 6.5", got)
	}
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("value = %v, want -1.25", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("balanced inc/dec left value %v", got)
	}
}

func TestGaugeExpose(t *testing.T) {
	var g Gauge
	g.Set(3)
	var b strings.Builder
	g.Expose(&b, "inflight", "")
	if b.String() != "inflight 3\n" {
		t.Fatalf("exposed %q", b.String())
	}
	b.Reset()
	g.Expose(&b, "inflight", `zone="a"`)
	if b.String() != "inflight{zone=\"a\"} 3\n" {
		t.Fatalf("exposed %q", b.String())
	}
}
