package opstats

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	c.Add(42)
	if c.Value() != 8042 {
		t.Fatalf("counter = %d after Add", c.Value())
	}
}

func TestCounterExpose(t *testing.T) {
	var c Counter
	c.Add(3)
	var sb strings.Builder
	c.Expose(&sb, "reqs_total", `path="/x"`)
	if got := sb.String(); got != "reqs_total{path=\"/x\"} 3\n" {
		t.Fatalf("exposition = %q", got)
	}
	sb.Reset()
	c.Expose(&sb, "reqs_total", "")
	if got := sb.String(); got != "reqs_total 3\n" {
		t.Fatalf("unlabeled exposition = %q", got)
	}
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec()
	v.With(`arch="Core2"`).Inc()
	v.With(`arch="Core2"`).Inc()
	v.With(`arch="Atom"`).Inc()
	if v.Value(`arch="Core2"`) != 2 || v.Value(`arch="Atom"`) != 1 {
		t.Fatalf("values: Core2=%d Atom=%d", v.Value(`arch="Core2"`), v.Value(`arch="Atom"`))
	}
	if v.Value(`arch="P4"`) != 0 {
		t.Fatal("absent label nonzero")
	}
	if v.Total() != 3 {
		t.Fatalf("total = %d", v.Total())
	}
	var sb strings.Builder
	v.Expose(&sb, "infer_total")
	want := "infer_total{arch=\"Atom\"} 1\ninfer_total{arch=\"Core2\"} 2\n"
	if sb.String() != want {
		t.Fatalf("exposition = %q, want %q", sb.String(), want)
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	v := NewCounterVec()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := `w="` + string(rune('a'+w%2)) + `"`
			for i := 0; i < 500; i++ {
				v.With(label).Inc()
			}
		}(w)
	}
	wg.Wait()
	if v.Total() != 4000 {
		t.Fatalf("total = %d", v.Total())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	for _, s := range []float64{0.005, 0.01, 0.05, 0.5, 2, 3} {
		h.Observe(s)
	}
	snap := h.Snapshot()
	// 0.005 and 0.01 (inclusive upper bound) land in le=0.01; 0.05 in
	// le=0.1; 0.5 in le=1; 2 and 3 overflow.
	wantCounts := []uint64{2, 1, 1, 2}
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 6 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Sum < 5.56 || snap.Sum > 5.57 {
		t.Fatalf("sum = %f", snap.Sum)
	}
}

func TestHistogramExposeCumulative(t *testing.T) {
	h := NewHistogram(0.01, 0.1)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)
	var sb strings.Builder
	h.Expose(&sb, "lat_seconds")
	want := strings.Join([]string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_sum 7.055`,
		`lat_seconds_count 3`,
		`lat_seconds_min 0.005`,
		`lat_seconds_max 7`,
	}, "\n") + "\n"
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestHistogramMinMax covers the Observe-time extreme tracking: empty
// histograms expose no _min/_max lines, a single sample pins both extremes,
// and later samples only widen them.
func TestHistogramMinMax(t *testing.T) {
	h := NewHistogram(1, 10)
	var sb strings.Builder
	h.Expose(&sb, "w")
	if strings.Contains(sb.String(), "w_min") || strings.Contains(sb.String(), "w_max") {
		t.Fatalf("empty histogram exposed extremes:\n%s", sb.String())
	}
	h.Observe(4)
	if s := h.Snapshot(); s.Min != 4 || s.Max != 4 {
		t.Fatalf("single sample: min=%g max=%g, want 4/4", s.Min, s.Max)
	}
	h.Observe(9)
	h.Observe(0.5)
	h.Observe(2)
	if s := h.Snapshot(); s.Min != 0.5 || s.Max != 9 {
		t.Fatalf("min=%g max=%g, want 0.5/9", s.Min, s.Max)
	}
}

func TestHistogramMinMaxConcurrent(t *testing.T) {
	h := NewHistogram(100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 500; i++ {
				h.Observe(float64(i + w))
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Min != 1 || s.Max != 507 {
		t.Fatalf("min=%g max=%g, want 1/507", s.Min, s.Max)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.0002)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	snap := h.Snapshot()
	if len(snap.Bounds) != len(DefBuckets) || len(snap.Counts) != len(DefBuckets)+1 {
		t.Fatalf("default shape: %d bounds, %d counts", len(snap.Bounds), len(snap.Counts))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds accepted")
		}
	}()
	NewHistogram(1, 1)
}
