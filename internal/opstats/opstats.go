// Package opstats defines the software-feature vocabulary shared by every
// container: which interface functions ran, how often, and at what cost.
// These are the "software features" of the paper (Section 5.1): find_cost is
// the number of elements touched until a search finishes, insert_cost/
// erase_cost the number of elements moved or traversed around the mutation
// point, resizes the number of capacity growths or rehashes, and so on.
package opstats

import "fmt"

// Op enumerates the container interface functions that Brainy instruments.
type Op int

// Interface functions, mirroring the paper's STL vocabulary.
const (
	OpInsert  Op = iota // keyed or positional insertion
	OpErase             // keyed or positional removal
	OpFind              // search for a value/key
	OpIterate           // ++/-- element visits
	OpPushBack
	OpPushFront
	OpPopBack
	OpPopFront
	OpAt // random positional access
	OpClear
	NumOps
)

var opNames = [NumOps]string{
	"insert", "erase", "find", "iterate",
	"push_back", "push_front", "pop_back", "pop_front",
	"at", "clear",
}

// String returns the STL-style name of the operation.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Stats accumulates per-operation counts and costs for one container
// instance. The zero value is ready to use.
type Stats struct {
	Count [NumOps]uint64 // invocations per interface function
	Cost  [NumOps]uint64 // total elements touched/moved per function

	Resizes   uint64 // vector capacity growths / deque map growths
	Rehashes  uint64 // hash-table rehashes
	Rotations uint64 // tree rebalancing rotations (RB recolor+rotate, AVL, splay)

	MaxLen   uint64 // high-water mark of container length
	ElemSize uint64 // configured element size in bytes
}

// Observe records one invocation of op with the given cost.
func (s *Stats) Observe(op Op, cost uint64) {
	s.Count[op]++
	s.Cost[op] += cost
}

// NoteLen updates the length high-water mark.
func (s *Stats) NoteLen(n int) {
	if uint64(n) > s.MaxLen {
		s.MaxLen = uint64(n)
	}
}

// TotalCalls returns the total number of interface invocations.
func (s *Stats) TotalCalls() uint64 {
	var t uint64
	for _, c := range s.Count {
		t += c
	}
	return t
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	for i := 0; i < int(NumOps); i++ {
		s.Count[i] += o.Count[i]
		s.Cost[i] += o.Cost[i]
	}
	s.Resizes += o.Resizes
	s.Rehashes += o.Rehashes
	s.Rotations += o.Rotations
	if o.MaxLen > s.MaxLen {
		s.MaxLen = o.MaxLen
	}
	if s.ElemSize == 0 {
		s.ElemSize = o.ElemSize
	}
}

// Sub returns the delta s - o for the accumulating fields, the software
// dual of machine.Counters.Sub: Count, Cost, and the structural event
// counters subtract, while MaxLen and ElemSize — state, not flow — carry
// s's current values. Windowed profiling uses it to turn two cumulative
// snapshots into one per-window record that is still a valid model input.
func (s Stats) Sub(o Stats) Stats {
	d := s
	for i := 0; i < int(NumOps); i++ {
		d.Count[i] -= o.Count[i]
		d.Cost[i] -= o.Cost[i]
	}
	d.Resizes -= o.Resizes
	d.Rehashes -= o.Rehashes
	d.Rotations -= o.Rotations
	return d
}

// Reset zeroes all counters but keeps ElemSize.
func (s *Stats) Reset() {
	es := s.ElemSize
	*s = Stats{ElemSize: es}
}
