package opstats

// Quantile estimation and snapshot arithmetic for histograms. One
// implementation serves every consumer — the in-process time-series store
// derives windowed p99s from retained snapshots, loadgen derives server-side
// latency quantiles from /metrics deltas, and the dashboards render trends —
// so the numbers agree everywhere to within bucket resolution.

import (
	"fmt"
	"strconv"
	"strings"
)

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the cumulative bucket that
// holds the target rank, the same estimate Prometheus' histogram_quantile
// computes. Samples in the +Inf overflow bucket are clamped to the highest
// finite bound — the histogram cannot resolve beyond it. An empty snapshot
// returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, b := range s.Bounds {
		n := float64(s.Counts[i])
		if cum+n >= rank && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(b-lower)
		}
		cum += n
	}
	// Target rank lives in the +Inf bucket: clamp to the histogram's
	// resolution limit.
	return s.Bounds[len(s.Bounds)-1]
}

// FractionLE estimates the fraction of observed samples at or below x by
// interpolating inside the bucket that contains x — the CDF counterpart of
// Quantile, used by latency objectives ("what share of requests beat the
// threshold"). An empty snapshot returns 1 (no samples, none over budget).
func (s HistogramSnapshot) FractionLE(x float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 1
	}
	var cum float64
	for i, b := range s.Bounds {
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		n := float64(s.Counts[i])
		if x < b {
			if x <= lower {
				return cum / float64(s.Count)
			}
			return (cum + n*(x-lower)/(b-lower)) / float64(s.Count)
		}
		cum += n
	}
	// x is at or beyond the last finite bound; everything in the +Inf
	// bucket counts as above it only when x is below +Inf, which it always
	// is — overflow samples are by definition > the last bound.
	return cum / float64(s.Count)
}

// Sub returns the snapshot of everything observed after prev: per-bucket
// count deltas plus sum/count deltas. Min/Max and exemplars are dropped —
// they describe lifetimes, not intervals. Snapshots with different bucket
// layouts cannot be differenced; Sub returns s unchanged so a registry
// reconfiguration degrades to a cumulative reading instead of nonsense.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Bounds) != len(s.Bounds) {
		return s
	}
	for i, b := range prev.Bounds {
		if s.Bounds[i] != b {
			return s
		}
	}
	d := HistogramSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]uint64, len(s.Counts)),
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		if s.Counts[i] >= prev.Counts[i] {
			d.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
	}
	if s.Count >= prev.Count {
		d.Count = s.Count - prev.Count
	}
	return d
}

// ParseHistogram reconstructs one histogram's snapshot from an exposition
// page rendered by Histogram.Expose — the scrape-side mirror, so clients
// (loadgen) can difference two scrapes and run Quantile on the delta.
// Returns a zero snapshot and false when the page carries no such histogram.
func ParseHistogram(page, name string) (HistogramSnapshot, bool) {
	var s HistogramSnapshot
	var cums []uint64
	bucketPrefix := name + "_bucket{le=\""
	found := false
	for _, line := range strings.Split(page, "\n") {
		switch {
		case strings.HasPrefix(line, bucketPrefix):
			rest := line[len(bucketPrefix):]
			leEnd := strings.IndexByte(rest, '"')
			if leEnd < 0 {
				continue
			}
			le := rest[:leEnd]
			var cum uint64
			if n, _ := fmt.Sscanf(rest[leEnd:], "\"} %d", &cum); n != 1 {
				continue
			}
			if le == "+Inf" {
				cums = append(cums, cum)
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			s.Bounds = append(s.Bounds, b)
			cums = append(cums, cum)
		case strings.HasPrefix(line, name+"_sum "):
			fmt.Sscanf(line[len(name)+5:], "%g", &s.Sum)
			found = true
		case strings.HasPrefix(line, name+"_count "):
			fmt.Sscanf(line[len(name)+7:], "%d", &s.Count)
			found = true
		case strings.HasPrefix(line, name+"_min "):
			fmt.Sscanf(line[len(name)+5:], "%g", &s.Min)
		case strings.HasPrefix(line, name+"_max "):
			fmt.Sscanf(line[len(name)+5:], "%g", &s.Max)
		}
	}
	if !found || len(cums) != len(s.Bounds)+1 {
		return HistogramSnapshot{}, false
	}
	s.Counts = make([]uint64, len(cums))
	var prev uint64
	for i, c := range cums {
		if c >= prev {
			s.Counts[i] = c - prev
		}
		prev = c
	}
	return s, true
}
