package opstats

import (
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQuantileInterpolation(t *testing.T) {
	// 100 samples uniform in [0,1): bucket layout {0.25, 0.5, 1.0} with 25,
	// 25, 50 samples. The q-quantile should interpolate linearly inside the
	// covering bucket.
	s := HistogramSnapshot{
		Bounds: []float64{0.25, 0.5, 1.0},
		Counts: []uint64{25, 25, 50, 0},
		Count:  100,
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 0.25}, // exactly the first bucket's upper bound
		{0.5, 0.5},   // exactly the second bucket's upper bound
		{0.125, 0.125},
		{0.75, 0.75},
		{0.99, 0.99},
		{1.0, 1.0},
	} {
		if got := s.Quantile(tc.q); !almost(got, tc.want) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileInfClampsToHighestFiniteBound(t *testing.T) {
	s := HistogramSnapshot{
		Bounds: []float64{0.001, 0.01},
		Counts: []uint64{1, 0, 9}, // 9 of 10 samples overflowed
		Count:  10,
	}
	if got := s.Quantile(0.99); got != 0.01 {
		t.Fatalf("Quantile(0.99) with +Inf mass = %g, want clamp to 0.01", got)
	}
	if got := s.Quantile(0.05); !almost(got, 0.0005) {
		t.Fatalf("Quantile(0.05) = %g, want 0.0005 (interpolated in first bucket)", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot Quantile = %g, want 0", got)
	}
	s := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 4, 0}, Count: 4}
	// Out-of-range q clamps.
	if got := s.Quantile(-1); !almost(got, 1) {
		t.Fatalf("Quantile(-1) = %g, want 1 (rank 0 lands at second bucket's lower bound)", got)
	}
	if got := s.Quantile(2); !almost(got, 2) {
		t.Fatalf("Quantile(2) = %g, want 2", got)
	}
	// Skips empty buckets: all mass in the second bucket.
	if got := s.Quantile(0.5); !almost(got, 1.5) {
		t.Fatalf("Quantile(0.5) = %g, want 1.5", got)
	}
}

func TestQuantileAgainstLiveHistogram(t *testing.T) {
	h := NewHistogram(0.001, 0.005, 0.01, 0.05, 0.1)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 0.0001) // uniform in [0, 0.1)
	}
	s := h.Snapshot()
	p99 := s.Quantile(0.99)
	// True p99 of the sample set is 0.099; bucket resolution is 0.05..0.1.
	if p99 < 0.05 || p99 > 0.1 {
		t.Fatalf("p99 = %g, want within covering bucket [0.05, 0.1]", p99)
	}
	if math.Abs(p99-0.099) > 0.005 {
		t.Fatalf("p99 = %g, want ~0.099 by interpolation", p99)
	}
}

func TestFractionLE(t *testing.T) {
	s := HistogramSnapshot{
		Bounds: []float64{0.25, 0.5, 1.0},
		Counts: []uint64{25, 25, 50, 0},
		Count:  100,
	}
	for _, tc := range []struct{ x, want float64 }{
		{0.25, 0.25},
		{0.5, 0.5},
		{1.0, 1.0},
		{0.75, 0.75},
		{0.125, 0.125},
		{0, 0},
	} {
		if got := s.FractionLE(tc.x); !almost(got, tc.want) {
			t.Errorf("FractionLE(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	var empty HistogramSnapshot
	if got := empty.FractionLE(1); got != 1 {
		t.Fatalf("empty FractionLE = %g, want 1", got)
	}
	overflow := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{1, 3}, Count: 4}
	if got := overflow.FractionLE(1); !almost(got, 0.25) {
		t.Fatalf("FractionLE at last bound = %g, want 0.25 (overflow mass excluded)", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(0.5)
	h.Observe(1.5)
	before := h.Snapshot()
	h.Observe(1.5)
	h.Observe(5)
	after := h.Snapshot()
	d := after.Sub(before)
	if d.Count != 2 || !almost(d.Sum, 6.5) {
		t.Fatalf("delta count/sum = %d/%g, want 2/6.5", d.Count, d.Sum)
	}
	want := []uint64{0, 1, 1}
	for i, c := range d.Counts {
		if c != want[i] {
			t.Fatalf("delta counts = %v, want %v", d.Counts, want)
		}
	}
	// Mismatched layouts degrade to the cumulative reading.
	other := HistogramSnapshot{Bounds: []float64{3}, Counts: []uint64{1, 0}, Count: 1}
	if got := after.Sub(other); got.Count != after.Count {
		t.Fatalf("layout-mismatched Sub returned %v, want s unchanged", got)
	}
}

func TestParseHistogramRoundTrip(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.002, 0.05, 0.5} {
		h.Observe(v)
	}
	var sb strings.Builder
	h.Expose(&sb, "test_latency_seconds")
	got, ok := ParseHistogram(sb.String(), "test_latency_seconds")
	if !ok {
		t.Fatalf("ParseHistogram failed on:\n%s", sb.String())
	}
	want := h.Snapshot()
	if got.Count != want.Count || !almost(got.Sum, want.Sum) {
		t.Fatalf("count/sum = %d/%g, want %d/%g", got.Count, got.Sum, want.Count, want.Sum)
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("counts = %v, want %v", got.Counts, want.Counts)
		}
	}
	for i := range want.Bounds {
		if got.Bounds[i] != want.Bounds[i] {
			t.Fatalf("bounds = %v, want %v", got.Bounds, want.Bounds)
		}
	}
	if got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("min/max = %g/%g, want %g/%g", got.Min, got.Max, want.Min, want.Max)
	}
	if _, ok := ParseHistogram(sb.String(), "absent_metric"); ok {
		t.Fatal("ParseHistogram found a histogram that is not on the page")
	}
}

func TestCounterVecEach(t *testing.T) {
	v := NewCounterVec()
	v.With(`path="/b"`).Add(2)
	v.With(`path="/a"`).Inc()
	var gotLabels []string
	var gotVals []uint64
	v.Each(func(l string, n uint64) {
		gotLabels = append(gotLabels, l)
		gotVals = append(gotVals, n)
	})
	if len(gotLabels) != 2 || gotLabels[0] != `path="/a"` || gotLabels[1] != `path="/b"` {
		t.Fatalf("labels = %v, want sorted [/a /b]", gotLabels)
	}
	if gotVals[0] != 1 || gotVals[1] != 2 {
		t.Fatalf("values = %v, want [1 2]", gotVals)
	}
}
