package opstats

import (
	"strings"
	"testing"
)

func TestObserveAndTotals(t *testing.T) {
	var s Stats
	s.Observe(OpFind, 10)
	s.Observe(OpFind, 5)
	s.Observe(OpInsert, 1)
	if s.Count[OpFind] != 2 || s.Cost[OpFind] != 15 {
		t.Fatalf("find: %d/%d", s.Count[OpFind], s.Cost[OpFind])
	}
	if s.TotalCalls() != 3 {
		t.Fatalf("total = %d", s.TotalCalls())
	}
}

func TestNoteLenHighWater(t *testing.T) {
	var s Stats
	s.NoteLen(5)
	s.NoteLen(3)
	s.NoteLen(9)
	if s.MaxLen != 9 {
		t.Fatalf("MaxLen = %d", s.MaxLen)
	}
}

func TestAddMerges(t *testing.T) {
	var a, b Stats
	a.Observe(OpErase, 2)
	a.Resizes = 1
	a.MaxLen = 10
	b.Observe(OpErase, 3)
	b.Rehashes = 2
	b.MaxLen = 20
	b.ElemSize = 8
	a.Add(b)
	if a.Count[OpErase] != 2 || a.Cost[OpErase] != 5 {
		t.Fatalf("merged erase %d/%d", a.Count[OpErase], a.Cost[OpErase])
	}
	if a.Resizes != 1 || a.Rehashes != 2 || a.MaxLen != 20 || a.ElemSize != 8 {
		t.Fatalf("merged: %+v", a)
	}
}

func TestResetKeepsElemSize(t *testing.T) {
	var s Stats
	s.ElemSize = 64
	s.Observe(OpAt, 1)
	s.Reset()
	if s.ElemSize != 64 {
		t.Fatal("Reset dropped ElemSize")
	}
	if s.TotalCalls() != 0 {
		t.Fatal("Reset kept counts")
	}
}

func TestOpNames(t *testing.T) {
	want := map[Op]string{
		OpInsert:    "insert",
		OpErase:     "erase",
		OpFind:      "find",
		OpIterate:   "iterate",
		OpPushBack:  "push_back",
		OpPushFront: "push_front",
		OpAt:        "at",
	}
	for op, name := range want {
		if op.String() != name {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), name)
		}
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatal("out-of-range op name")
	}
}
