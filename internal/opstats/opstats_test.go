package opstats

import (
	"strings"
	"testing"
)

func TestObserveAndTotals(t *testing.T) {
	var s Stats
	s.Observe(OpFind, 10)
	s.Observe(OpFind, 5)
	s.Observe(OpInsert, 1)
	if s.Count[OpFind] != 2 || s.Cost[OpFind] != 15 {
		t.Fatalf("find: %d/%d", s.Count[OpFind], s.Cost[OpFind])
	}
	if s.TotalCalls() != 3 {
		t.Fatalf("total = %d", s.TotalCalls())
	}
}

func TestNoteLenHighWater(t *testing.T) {
	var s Stats
	s.NoteLen(5)
	s.NoteLen(3)
	s.NoteLen(9)
	if s.MaxLen != 9 {
		t.Fatalf("MaxLen = %d", s.MaxLen)
	}
}

func TestAddMerges(t *testing.T) {
	var a, b Stats
	a.Observe(OpErase, 2)
	a.Resizes = 1
	a.MaxLen = 10
	b.Observe(OpErase, 3)
	b.Rehashes = 2
	b.MaxLen = 20
	b.ElemSize = 8
	a.Add(b)
	if a.Count[OpErase] != 2 || a.Cost[OpErase] != 5 {
		t.Fatalf("merged erase %d/%d", a.Count[OpErase], a.Cost[OpErase])
	}
	if a.Resizes != 1 || a.Rehashes != 2 || a.MaxLen != 20 || a.ElemSize != 8 {
		t.Fatalf("merged: %+v", a)
	}
}

func TestResetKeepsElemSize(t *testing.T) {
	var s Stats
	s.ElemSize = 64
	s.Observe(OpAt, 1)
	s.Reset()
	if s.ElemSize != 64 {
		t.Fatal("Reset dropped ElemSize")
	}
	if s.TotalCalls() != 0 {
		t.Fatal("Reset kept counts")
	}
}

func TestOpNames(t *testing.T) {
	want := map[Op]string{
		OpInsert:    "insert",
		OpErase:     "erase",
		OpFind:      "find",
		OpIterate:   "iterate",
		OpPushBack:  "push_back",
		OpPushFront: "push_front",
		OpAt:        "at",
	}
	for op, name := range want {
		if op.String() != name {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), name)
		}
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatal("out-of-range op name")
	}
}

// TestSubDelta: Sub inverts Add for the flow fields and carries the state
// fields (MaxLen, ElemSize) forward from the newer snapshot, so a windowed
// delta is itself a usable Stats.
func TestSubDelta(t *testing.T) {
	var before Stats
	before.ElemSize = 16
	before.Observe(OpInsert, 3)
	before.Observe(OpFind, 5)
	before.Resizes = 2
	before.NoteLen(10)

	after := before
	after.Observe(OpInsert, 4)
	after.Observe(OpIterate, 7)
	after.Rotations = 3
	after.Resizes = 5
	after.NoteLen(40)

	d := after.Sub(before)
	if d.Count[OpInsert] != 1 || d.Cost[OpInsert] != 4 {
		t.Fatalf("insert delta = %d/%d", d.Count[OpInsert], d.Cost[OpInsert])
	}
	if d.Count[OpFind] != 0 || d.Count[OpIterate] != 1 {
		t.Fatalf("find/iterate deltas = %d/%d", d.Count[OpFind], d.Count[OpIterate])
	}
	if d.Resizes != 3 || d.Rotations != 3 {
		t.Fatalf("structural deltas: resizes=%d rotations=%d", d.Resizes, d.Rotations)
	}
	if d.MaxLen != 40 || d.ElemSize != 16 {
		t.Fatalf("state fields: maxlen=%d elemsize=%d, want 40/16", d.MaxLen, d.ElemSize)
	}
	if got := d.TotalCalls(); got != 2 {
		t.Fatalf("delta total calls = %d", got)
	}
}
