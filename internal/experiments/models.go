package experiments

import (
	"context"
	"fmt"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/featsel"
	"repro/internal/profile"
	"repro/internal/training"
)

// --- Figure 9: model validation accuracy ---

// Fig9Row is one (model, architecture) accuracy cell.
type Fig9Row struct {
	Target   adt.ModelTarget
	Arch     string
	Accuracy float64
	Chance   float64 // 1 / #candidates, the random baseline
}

// Fig9Result is the whole figure.
type Fig9Result struct{ Rows []Fig9Row }

// Figure9 trains every model on both architectures and validates each on
// fresh, never-seen applications labelled by the oracle — the protocol of
// Section 6.1. The paper reports 80-90% on Core2 and 70-80% on Atom with
// 1000 validation apps per model.
func Figure9(sc Scale) (Fig9Result, error) {
	ctx := context.Background()
	var out Fig9Result
	for _, arch := range Archs() {
		opt := sc.trainingOptions(arch)
		for _, tgt := range adt.Targets() {
			labels, err := training.Phase1(ctx, tgt, opt)
			if err != nil {
				return Fig9Result{}, fmt.Errorf("experiments: figure 9 %v/%s: %w", tgt.Kind, arch.Name, err)
			}
			ds, err := training.Phase2(ctx, tgt, labels, opt)
			if err != nil {
				return Fig9Result{}, fmt.Errorf("experiments: figure 9 %v/%s: %w", tgt.Kind, arch.Name, err)
			}
			m, err := training.TrainModel(ds, arch.Name, sc.annConfig())
			if err != nil {
				return Fig9Result{}, fmt.Errorf("experiments: figure 9 %v/%s: %w", tgt.Kind, arch.Name, err)
			}
			acc, err := training.Validate(ctx, m, opt, sc.ValidationApps, 777000)
			if err != nil {
				return Fig9Result{}, fmt.Errorf("experiments: figure 9 %v/%s: %w", tgt.Kind, arch.Name, err)
			}
			out.Rows = append(out.Rows, Fig9Row{
				Target:   tgt,
				Arch:     arch.Name,
				Accuracy: acc,
				Chance:   1 / float64(len(ds.Candidates)),
			})
		}
	}
	return out, nil
}

// Render formats Figure 9.
func (r Fig9Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		mode := "order-aware"
		if !row.Target.OrderAware {
			mode = "order-oblivious"
		}
		rows = append(rows, []string{
			row.Target.Kind.String(), mode, row.Arch,
			fmt.Sprintf("%.0f%%", 100*row.Accuracy),
			fmt.Sprintf("%.0f%%", 100*row.Chance),
			bar(row.Accuracy, 1, 20),
		})
	}
	return "Figure 9: data structure selection model accuracy on unseen applications\n" +
		table([]string{"model", "usage", "arch", "accuracy", "chance", "accuracy bar"}, rows)
}

// --- Table 3: GA-selected features per model ---

// Tab3Row is one model's top features.
type Tab3Row struct {
	Target adt.ModelTarget
	Top    []string // highest-weight feature names, best first
	Score  float64  // validation accuracy of the best chromosome
}

// Tab3Result is the whole table.
type Tab3Result struct{ Rows []Tab3Row }

// Table3 runs the evolutionary feature selection of Section 5.1 for each
// model on Core2: chromosomes are real-valued feature weights, fitness is
// the hold-out accuracy of an ANN trained with the chromosome as its
// feature mask.
func Table3(sc Scale) (Tab3Result, error) {
	arch := Archs()[0]
	opt := sc.trainingOptions(arch)
	gaCfg := featsel.DefaultConfig()
	gaCfg.Generations = sc.GAGenerations
	gaCfg.Population = sc.GAPopulation

	ctx := context.Background()
	var out Tab3Result
	for _, tgt := range adt.Targets() {
		labels, err := training.Phase1(ctx, tgt, opt)
		if err != nil {
			return Tab3Result{}, fmt.Errorf("experiments: table 3 %v: %w", tgt.Kind, err)
		}
		ds, err := training.Phase2(ctx, tgt, labels, opt)
		if err != nil {
			return Tab3Result{}, fmt.Errorf("experiments: table 3 %v: %w", tgt.Kind, err)
		}
		if len(ds.Examples) < 10 {
			return Tab3Result{}, fmt.Errorf("experiments: table 3: only %d examples for %v", len(ds.Examples), tgt.Kind)
		}
		// Hold out the tail for fitness evaluation.
		split := len(ds.Examples) * 3 / 4
		train, hold := ds.Examples[:split], ds.Examples[split:]
		fitCfg := sc.annConfig()
		fitCfg.Epochs = sc.GAFitnessEpochs
		fitness := func(weights []float64) float64 {
			net := ann.New(profile.NumFeatures, len(ds.Candidates), fitCfg)
			net.SetMask(weights)
			if _, err := net.Train(train); err != nil {
				return 0
			}
			return net.Accuracy(hold)
		}
		res := featsel.Run(profile.NumFeatures, fitness, gaCfg)
		// A feature that never varies in the training set cannot influence
		// the classifier, so its evolved weight is arbitrary; exclude such
		// features from the ranking before taking the top five.
		weights := append([]float64(nil), res.Best...)
		for j := 0; j < profile.NumFeatures; j++ {
			first := ds.Examples[0].X[j]
			constant := true
			for _, e := range ds.Examples[1:] {
				if e.X[j] != first {
					constant = false
					break
				}
			}
			if constant {
				weights[j] = 0
			}
		}
		out.Rows = append(out.Rows, Tab3Row{
			Target: tgt,
			Top:    featsel.TopK(weights, profile.FeatureNames, 5),
			Score:  res.Score,
		})
	}
	return out, nil
}

// Render formats Table 3.
func (r Tab3Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		mode := "order-aware"
		if !row.Target.OrderAware {
			mode = "order-oblivious"
		}
		for i, f := range row.Top {
			name, acc := "", ""
			if i == 0 {
				name = row.Target.Kind.String() + " (" + mode + ")"
				acc = fmt.Sprintf("%.0f%%", 100*row.Score)
			}
			rows = append(rows, []string{name, fmt.Sprint(i + 1), f, acc})
		}
	}
	return "Table 3: top-5 GA-selected features per model (Core2)\n" +
		table([]string{"model", "rank", "feature", "holdout acc"}, rows)
}
