package experiments

import (
	"context"
	"fmt"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/training"
)

// AblationRow is one configuration's validation accuracy.
type AblationRow struct {
	Config   string
	Accuracy float64
}

// AblationResult is one ablation study.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Render formats an ablation.
func (r AblationResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Config, fmt.Sprintf("%.1f%%", 100*row.Accuracy)})
	}
	return "Ablation: " + r.Name + "\n" + table([]string{"configuration", "accuracy"}, rows)
}

// ablationTarget is the model every ablation studies: order-oblivious
// vector on Core2, the paper's six-candidate flagship model.
func ablationTarget() adt.ModelTarget {
	return adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
}

// ablationData runs Phase-I/II once so all ablations share the dataset.
func ablationData(sc Scale) (training.Dataset, training.Options, error) {
	ctx := context.Background()
	opt := sc.trainingOptions(machine.Core2())
	tgt := ablationTarget()
	labels, err := training.Phase1(ctx, tgt, opt)
	if err != nil {
		return training.Dataset{}, opt, err
	}
	ds, err := training.Phase2(ctx, tgt, labels, opt)
	return ds, opt, err
}

func validateNet(net *ann.Network, ds training.Dataset, opt training.Options, n int) (float64, error) {
	m := &training.Model{Target: ds.Target, Arch: opt.Arch.Name, Candidates: ds.Candidates, Net: net}
	return training.Validate(context.Background(), m, opt, n, 555001)
}

// AblationHardwareFeatures contrasts the full feature vector with one whose
// hardware-counter features are masked off — the paper's central claim that
// architectural events carry signal software features lack.
func AblationHardwareFeatures(sc Scale) (AblationResult, error) {
	ds, opt, err := ablationData(sc)
	if err != nil {
		return AblationResult{}, err
	}
	if len(ds.Examples) == 0 {
		return AblationResult{}, fmt.Errorf("experiments: ablation got no training data")
	}
	res := AblationResult{Name: "hardware features on/off (vector model, Core2)"}

	full := ann.New(profile.NumFeatures, len(ds.Candidates), sc.annConfig())
	if _, err := full.Train(ds.Examples); err != nil {
		return AblationResult{}, err
	}
	acc, err := validateNet(full, ds, opt, sc.ValidationApps)
	if err != nil {
		return AblationResult{}, err
	}
	res.Rows = append(res.Rows, AblationRow{"software + hardware features", acc})

	mask := make([]float64, profile.NumFeatures)
	for i := range mask {
		mask[i] = 1
	}
	for i := profile.HardwareFeatureIndex(); i < profile.NumFeatures; i++ {
		mask[i] = 0
	}
	soft := ann.New(profile.NumFeatures, len(ds.Candidates), sc.annConfig())
	soft.SetMask(mask)
	if _, err := soft.Train(ds.Examples); err != nil {
		return AblationResult{}, err
	}
	acc, err = validateNet(soft, ds, opt, sc.ValidationApps)
	if err != nil {
		return AblationResult{}, err
	}
	res.Rows = append(res.Rows, AblationRow{"software features only", acc})
	return res, nil
}

// AblationThreshold contrasts Phase-I labelling with and without the 5%
// decisiveness margin (footnote 2): without it, near-ties inject label
// noise.
func AblationThreshold(sc Scale) (AblationResult, error) {
	ctx := context.Background()
	res := AblationResult{Name: "Phase-I best-DS margin (vector model, Core2)"}
	for _, margin := range []float64{0.05, 0.0} {
		opt := sc.trainingOptions(machine.Core2())
		opt.Margin = margin
		tgt := ablationTarget()
		labels, err := training.Phase1(ctx, tgt, opt)
		if err != nil {
			return AblationResult{}, err
		}
		ds, err := training.Phase2(ctx, tgt, labels, opt)
		if err != nil {
			return AblationResult{}, err
		}
		m, err := training.TrainModel(ds, opt.Arch.Name, sc.annConfig())
		if err != nil {
			return AblationResult{}, err
		}
		acc, err := training.Validate(ctx, m, opt, sc.ValidationApps, 555001)
		if err != nil {
			return AblationResult{}, err
		}
		res.Rows = append(res.Rows, AblationRow{
			fmt.Sprintf("margin %.0f%% (%d labelled apps)", margin*100, len(ds.Examples)),
			acc,
		})
	}
	return res, nil
}

// AblationHiddenWidth sweeps the hidden-layer width.
func AblationHiddenWidth(sc Scale, widths []int) (AblationResult, error) {
	if len(widths) == 0 {
		widths = []int{4, 12, 24, 48}
	}
	ds, opt, err := ablationData(sc)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "ANN hidden-layer width (vector model, Core2)"}
	for _, w := range widths {
		cfg := sc.annConfig()
		cfg.Hidden = w
		net := ann.New(profile.NumFeatures, len(ds.Candidates), cfg)
		if _, err := net.Train(ds.Examples); err != nil {
			return AblationResult{}, err
		}
		acc, err := validateNet(net, ds, opt, sc.ValidationApps)
		if err != nil {
			return AblationResult{}, err
		}
		res.Rows = append(res.Rows, AblationRow{fmt.Sprintf("hidden = %d", w), acc})
	}
	return res, nil
}

// AblationTrainingSize sweeps the number of labelled training applications,
// the over-fitting discussion of Section 4.1: too few examples and the
// model latches onto noise.
func AblationTrainingSize(sc Scale, sizes []int) (AblationResult, error) {
	if len(sizes) == 0 {
		sizes = []int{25, 75, sc.TrainApps}
	}
	ds, opt, err := ablationData(sc)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "training-set size (vector model, Core2)"}
	for _, n := range sizes {
		if n > len(ds.Examples) {
			n = len(ds.Examples)
		}
		net := ann.New(profile.NumFeatures, len(ds.Candidates), sc.annConfig())
		if _, err := net.Train(ds.Examples[:n]); err != nil {
			return AblationResult{}, err
		}
		acc, err := validateNet(net, ds, opt, sc.ValidationApps)
		if err != nil {
			return AblationResult{}, err
		}
		res.Rows = append(res.Rows, AblationRow{fmt.Sprintf("%d training apps", n), acc})
	}
	return res, nil
}

// AblationCrossArch quantifies why per-architecture models matter (the
// consequence of Figure 1): a model trained on Core2 is validated once
// against the Core2 oracle (native) and once against the Atom oracle
// (transferred). The paper's 43% best-DS disagreement between the two
// machines bounds how well a transferred model can possibly do.
func AblationCrossArch(sc Scale) (AblationResult, error) {
	ctx := context.Background()
	tgt := ablationTarget()
	coreOpt := sc.trainingOptions(machine.Core2())
	labels, err := training.Phase1(ctx, tgt, coreOpt)
	if err != nil {
		return AblationResult{}, err
	}
	ds, err := training.Phase2(ctx, tgt, labels, coreOpt)
	if err != nil {
		return AblationResult{}, err
	}
	m, err := training.TrainModel(ds, "Core2", sc.annConfig())
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "cross-architecture model transfer (vector model)"}
	coreAcc, err := training.Validate(ctx, m, coreOpt, sc.ValidationApps, 555001)
	if err != nil {
		return AblationResult{}, err
	}
	res.Rows = append(res.Rows, AblationRow{"trained on Core2, validated on Core2", coreAcc})
	// Same model, but the ground truth comes from Atom's oracle: profiles
	// are collected on Atom too, since that is where the app would run.
	atomOpt := sc.trainingOptions(machine.Atom())
	atomAcc, err := training.Validate(ctx, m, atomOpt, sc.ValidationApps, 555001)
	if err != nil {
		return AblationResult{}, err
	}
	res.Rows = append(res.Rows, AblationRow{"trained on Core2, validated on Atom", atomAcc})
	return res, nil
}
