package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/adt"
	"repro/internal/appgen"
	"repro/internal/codesurvey"
	"repro/internal/machine"
	"repro/internal/opstats"
)

// --- Figure 1: best-DS agreement between Core2 and Atom ---

// Fig1Row is one bar: applications whose best data structure on Core2 is
// BestOnCore2, split by whether Atom agrees.
type Fig1Row struct {
	BestOnCore2 adt.Kind
	Total       int
	Agree       int
	Disagree    int
}

// Fig1Result is the whole figure.
type Fig1Result struct {
	Rows               []Fig1Row
	OverallDisagreePct float64
}

// Figure1 generates random applications across every model target, finds
// the best data structure on each architecture with the oracle, and buckets
// the applications by their Core2 winner. The paper's headline: on average
// 43% of applications change their optimal data structure between the two
// microarchitectures.
func Figure1(sc Scale) Fig1Result {
	// Figure 1 uses paper-sized applications (1000 interface calls over
	// containers up to a few thousand elements) regardless of the training
	// scale: the architecture disagreement grows with working-set size, and
	// undersized apps underestimate it.
	cfg := appgen.DefaultConfig()
	cfg.MaxPrepopulate = 4096
	cfg.MaxIterCount = 4096
	buckets := map[adt.Kind]*Fig1Row{}
	total, disagree := 0, 0
	core2, atom := machine.Core2(), machine.Atom()

	seed := int64(50000)
	for _, tgt := range adt.Targets() {
		collected := 0
		for s := int64(0); collected < sc.Fig1PerBucket && s < int64(sc.MaxSeeds); s++ {
			app := appgen.Generate(cfg, tgt, seed+s)
			bestC2 := oracleOf(&app, cfg, core2)
			bestAtom := oracleOf(&app, cfg, atom)
			row := buckets[bestC2]
			if row == nil {
				row = &Fig1Row{BestOnCore2: bestC2}
				buckets[bestC2] = row
			}
			row.Total++
			if bestC2 == bestAtom {
				row.Agree++
			} else {
				row.Disagree++
				disagree++
			}
			total++
			collected++
		}
		seed += int64(sc.MaxSeeds)
	}
	res := Fig1Result{}
	for _, row := range buckets {
		res.Rows = append(res.Rows, *row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].BestOnCore2 < res.Rows[j].BestOnCore2 })
	if total > 0 {
		res.OverallDisagreePct = 100 * float64(disagree) / float64(total)
	}
	return res
}

// Render formats Figure 1.
func (r Fig1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.BestOnCore2.String(),
			fmt.Sprint(row.Total),
			fmt.Sprint(row.Agree),
			fmt.Sprint(row.Disagree),
			fmt.Sprintf("%.0f%%", 100*float64(row.Disagree)/float64(max(row.Total, 1))),
			bar(float64(row.Disagree), float64(max(row.Total, 1)), 20),
		})
	}
	return "Figure 1: best data structure agreement, Core2 vs Atom\n" +
		table([]string{"best on Core2", "apps", "agree", "disagree", "disagree%", "disagree bar"}, rows) +
		fmt.Sprintf("overall disagreement: %.1f%% (paper: 43%% average)\n", r.OverallDisagreePct)
}

// --- Figure 2: container occurrences in the code corpus ---

// Fig2Result is the survey ranking.
type Fig2Result struct {
	Counts []codesurvey.Count
}

// Figure2 scans the embedded corpus, standing in for Google Code Search.
func Figure2() Fig2Result {
	return Fig2Result{Counts: codesurvey.Survey()}
}

// Render formats Figure 2.
func (r Fig2Result) Render() string {
	rows := make([][]string, 0, len(r.Counts))
	for _, c := range r.Counts {
		rows = append(rows, []string{c.Container, fmt.Sprint(c.Refs)})
	}
	return "Figure 2: container occurrences in the embedded corpus\n" +
		table([]string{"container", "static refs"}, rows)
}

// --- Table 1: replacement matrix ---

// Table1 renders the replacement matrix encoded in internal/adt.
func Table1() string {
	rows := make([][]string, 0, len(adt.Replacements))
	for _, r := range adt.Replacements {
		lim := "none"
		if r.OrderOblivious {
			lim = "order-oblivious"
		}
		rows = append(rows, []string{r.From.String(), r.To.String(), r.Benefit, lim})
	}
	return "Table 1: data structure replacements considered\n" +
		table([]string{"DS", "alternate DS", "benefit", "limitation"}, rows)
}

// --- Table 2: generator configuration ---

// Table2 renders the application generator's configuration knobs.
func Table2() string {
	cfg := appgen.DefaultConfig()
	rows := [][]string{
		{"TotalInterfCalls", fmt.Sprint(cfg.TotalInterfCalls), "total interface invocations per application"},
		{"DataElemSize", fmt.Sprint(cfg.DataElemSizes), "element-size choices (bytes)"},
		{"MaxInsertVal", fmt.Sprint(cfg.MaxInsertVal), "insert a random number below this on insert"},
		{"MaxRemoveVal", fmt.Sprint(cfg.MaxRemoveVal), "remove a random number below this on erase"},
		{"MaxSearchVal", fmt.Sprint(cfg.MaxSearchVal), "search a random number below this on find"},
		{"MaxIterCount", fmt.Sprint(cfg.MaxIterCount), "iterate a random count below this on ++/--"},
		{"MaxPrepopulate", fmt.Sprint(cfg.MaxPrepopulate), "initial population drawn per application"},
	}
	return "Table 2: randomly decided data structure behaviours\n" +
		table([]string{"knob", "value", "description"}, rows)
}

// --- Figure 6: branch misprediction vs vector resizing ---

// Fig6Point is one application's (resize ratio, branch miss rate) sample.
type Fig6Point struct {
	ResizeRatio float64 // resizes / total interface calls (%)
	BrMissRate  float64
}

// Fig6Series is one panel of the figure.
type Fig6Series struct {
	OrderAware  bool
	Points      []Fig6Point
	Correlation float64 // Pearson r
}

// Fig6Result holds both panels.
type Fig6Result struct{ Series []Fig6Series }

// Figure6 profiles random vector applications and correlates the vector's
// resize ratio with the measured conditional-branch misprediction rate —
// the observation that made br_miss a selected feature (Table 3).
func Figure6(sc Scale) Fig6Result {
	cfg := appgen.DefaultConfig()
	cfg.TotalInterfCalls = sc.Calls
	cfg.MaxPrepopulate = 4 * sc.Calls
	cfg.MaxIterCount = 4 * sc.Calls
	var out Fig6Result
	for _, aware := range []bool{true, false} {
		tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: aware}
		series := Fig6Series{OrderAware: aware}
		for s := 0; s < sc.Fig6Apps; s++ {
			app := appgen.Generate(cfg, tgt, int64(90000+s))
			m := machine.New(machine.Core2())
			res := app.Run(cfg, adt.KindVector, m)
			st := res.Profile.Stats
			calls := float64(st.TotalCalls())
			if calls == 0 {
				continue
			}
			series.Points = append(series.Points, Fig6Point{
				ResizeRatio: 100 * float64(st.Resizes) / calls,
				BrMissRate:  res.Profile.HW.BranchMissRate(),
			})
		}
		series.Correlation = pearson(series.Points)
		out.Series = append(out.Series, series)
	}
	return out
}

func pearson(pts []Fig6Point) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for _, p := range pts {
		mx += p.ResizeRatio
		my += p.BrMissRate
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for _, p := range pts {
		dx, dy := p.ResizeRatio-mx, p.BrMissRate-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Render formats Figure 6 as summary statistics (the paper shows scatter
// plots; the correlation is the quantitative content).
func (r Fig6Result) Render() string {
	rows := make([][]string, 0, 2)
	for _, s := range r.Series {
		mode := "order-aware"
		if !s.OrderAware {
			mode = "order-oblivious"
		}
		rows = append(rows, []string{mode, fmt.Sprint(len(s.Points)), fmt.Sprintf("%.3f", s.Correlation)})
	}
	return "Figure 6: correlation of branch misprediction rate with vector resize ratio\n" +
		table([]string{"vector usage", "apps", "Pearson r"}, rows)
}

// --- Figure 7: target system configurations ---

// Figure7 renders the two machine configurations.
func Figure7() string {
	rows := make([][]string, 0, 2)
	for _, cfg := range Archs() {
		rows = append(rows, []string{
			cfg.Name,
			fmt.Sprintf("%dKB/%d-way", cfg.L1Size>>10, cfg.L1Ways),
			fmt.Sprintf("%dKB/%d-way", cfg.L2Size>>10, cfg.L2Ways),
			fmt.Sprintf("%.0f", cfg.MemCycles),
			fmt.Sprintf("%.0f", cfg.MispredictCycles),
			fmt.Sprintf("%.1f", cfg.BaseOpCycles),
		})
	}
	return "Figure 7: simulated target system configurations\n" +
		table([]string{"arch", "L1D", "L2", "mem cyc", "mispredict cyc", "base op cyc"}, rows)
}

// opFindCost is a tiny helper used by case studies; exported op indices
// would otherwise leak opstats into callers.
func opFindCost(st opstats.Stats) (invocations, touched uint64) {
	return st.Count[opstats.OpFind] + st.Count[opstats.OpErase],
		st.Cost[opstats.OpFind] + st.Cost[opstats.OpErase]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
