package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/perflint"
	"repro/internal/profile"
	"repro/internal/workloads/chord"
	"repro/internal/workloads/raytrace"
	"repro/internal/workloads/relipmoc"
	"repro/internal/workloads/xalan"
)

// Scheme names a selection strategy of Figures 11 and 13.
type Scheme string

// The four compared schemes.
const (
	SchemeBaseline Scheme = "Baseline"
	SchemePerflint Scheme = "Perflint"
	SchemeBrainy   Scheme = "Brainy"
	SchemeOracle   Scheme = "Oracle"
)

// CaseResult is one (application, input, architecture) cell of a case
// study: measured cycles per candidate and each scheme's selection.
type CaseResult struct {
	App               string
	Input             string
	Arch              string
	Kinds             []adt.Kind
	Cycles            map[adt.Kind]float64
	Selected          map[Scheme]adt.Kind
	PerflintSupported bool
}

// Norm returns the execution time of kind normalized to the baseline.
func (c CaseResult) Norm(kind adt.Kind) float64 {
	base := c.Cycles[c.Kinds[0]]
	if base == 0 {
		return 0
	}
	return c.Cycles[kind] / base
}

// ImprovementPct returns the speedup of the scheme's selection over the
// baseline, as a percentage of baseline time.
func (c CaseResult) ImprovementPct(s Scheme) float64 {
	sel, ok := c.Selected[s]
	if !ok {
		return 0
	}
	base := c.Cycles[c.Kinds[0]]
	if base == 0 {
		return 0
	}
	return 100 * (base - c.Cycles[sel]) / base
}

// valueCarrying maps set-family suggestions to their map-family names for
// workloads whose elements are keyed records (Chord's pending messages),
// following the paper's footnote 5 in reverse.
func valueCarrying(k adt.Kind) adt.Kind {
	switch k {
	case adt.KindSet:
		return adt.KindMap
	case adt.KindAVLSet:
		return adt.KindAVLMap
	case adt.KindHashSet:
		return adt.KindHashMap
	default:
		return k
	}
}

// caseSpec abstracts one evaluation application for the scheme harness.
type caseSpec struct {
	app        string
	inputs     []string
	original   adt.Kind
	orderAware bool
	kinds      []adt.Kind
	mapNames   bool // render set-family kinds as map-family
	// runAll measures every candidate on (input, arch).
	runAll func(input string, arch machine.Config) (map[adt.Kind]float64, error)
	// runKind measures one specific container kind on (input, arch); it is
	// used to honestly price scheme suggestions outside the figure's
	// candidate set.
	runKind func(input string, arch machine.Config, k adt.Kind) (float64, error)
	// profileOriginal runs the original container instrumented on arch.
	profileOriginal func(input string, arch machine.Config) (profile.Profile, error)
	// drivePerflint replays the op stream through a Perflint advisor.
	drivePerflint func(input string, adv *perflint.Advisor) error
}

func xalanSpec() caseSpec {
	return caseSpec{
		app:      "Xalancbmk",
		inputs:   []string{"test", "train", "reference"},
		original: xalan.Original(),
		kinds:    xalan.CandidateKinds(),
		runAll: func(input string, arch machine.Config) (map[adt.Kind]float64, error) {
			in, err := xalan.InputByName(input)
			if err != nil {
				return nil, err
			}
			out := map[adt.Kind]float64{}
			for _, r := range xalan.RunAll(in, arch) {
				out[r.Kind] = r.Cycles
			}
			return out, nil
		},
		runKind: func(input string, arch machine.Config, k adt.Kind) (float64, error) {
			in, err := xalan.InputByName(input)
			if err != nil {
				return 0, err
			}
			return xalan.Run(k, in, arch).Cycles, nil
		},
		profileOriginal: func(input string, arch machine.Config) (profile.Profile, error) {
			in, err := xalan.InputByName(input)
			if err != nil {
				return profile.Profile{}, err
			}
			return xalan.Run(xalan.Original(), in, arch).Profile, nil
		},
		drivePerflint: func(input string, adv *perflint.Advisor) error {
			in, err := xalan.InputByName(input)
			if err != nil {
				return err
			}
			xalan.Drive(adv, in)
			return nil
		},
	}
}

func chordSpec() caseSpec {
	return caseSpec{
		app:      "Chord simulator",
		inputs:   []string{"small", "medium", "large"},
		original: chord.Original(),
		kinds:    chord.CandidateKinds(),
		mapNames: true,
		runAll: func(input string, arch machine.Config) (map[adt.Kind]float64, error) {
			in, err := chord.InputByName(input)
			if err != nil {
				return nil, err
			}
			out := map[adt.Kind]float64{}
			for _, r := range chord.RunAll(in, arch) {
				out[r.Kind] = r.Cycles
			}
			return out, nil
		},
		runKind: func(input string, arch machine.Config, k adt.Kind) (float64, error) {
			in, err := chord.InputByName(input)
			if err != nil {
				return 0, err
			}
			return chord.Run(k, in, arch).Cycles, nil
		},
		profileOriginal: func(input string, arch machine.Config) (profile.Profile, error) {
			in, err := chord.InputByName(input)
			if err != nil {
				return profile.Profile{}, err
			}
			return chord.Run(chord.Original(), in, arch).Profile, nil
		},
		drivePerflint: func(input string, adv *perflint.Advisor) error {
			in, err := chord.InputByName(input)
			if err != nil {
				return err
			}
			chord.Drive(adv, in)
			return nil
		},
	}
}

func relipmocSpec() caseSpec {
	return caseSpec{
		app:      "RelipmoC",
		inputs:   []string{"default"},
		original: relipmoc.Original(),
		kinds:    relipmoc.CandidateKinds(),
		runAll: func(input string, arch machine.Config) (map[adt.Kind]float64, error) {
			in := relipmoc.Inputs()[1]
			out := map[adt.Kind]float64{}
			for _, r := range relipmoc.RunAll(in, arch) {
				out[r.Kind] = r.Cycles
			}
			return out, nil
		},
		runKind: func(input string, arch machine.Config, k adt.Kind) (float64, error) {
			return relipmoc.Run(k, relipmoc.Inputs()[1], arch).Cycles, nil
		},
		profileOriginal: func(input string, arch machine.Config) (profile.Profile, error) {
			return relipmoc.Run(relipmoc.Original(), relipmoc.Inputs()[1], arch).Profile, nil
		},
		drivePerflint: func(input string, adv *perflint.Advisor) error {
			relipmoc.Drive(adv, relipmoc.Inputs()[1])
			return nil
		},
	}
}

func raytraceSpec() caseSpec {
	return caseSpec{
		app:        "Raytrace",
		inputs:     []string{"default"},
		original:   raytrace.Original(),
		orderAware: true,
		kinds:      raytrace.CandidateKinds(),
		runAll: func(input string, arch machine.Config) (map[adt.Kind]float64, error) {
			in, err := raytrace.InputByName("default")
			if err != nil {
				return nil, err
			}
			out := map[adt.Kind]float64{}
			for _, r := range raytrace.RunAll(in, arch) {
				out[r.Kind] = r.Cycles
			}
			return out, nil
		},
		runKind: func(input string, arch machine.Config, k adt.Kind) (float64, error) {
			in, err := raytrace.InputByName("default")
			if err != nil {
				return 0, err
			}
			return raytrace.Run(k, in, arch).Cycles, nil
		},
		profileOriginal: func(input string, arch machine.Config) (profile.Profile, error) {
			in, err := raytrace.InputByName("default")
			if err != nil {
				return profile.Profile{}, err
			}
			return raytrace.Run(raytrace.Original(), in, arch).Profile, nil
		},
		drivePerflint: func(input string, adv *perflint.Advisor) error {
			in, err := raytrace.InputByName("default")
			if err != nil {
				return err
			}
			// Every group shares one advisor so costs accumulate app-wide.
			raytrace.Drive(in, func(int) adt.Container { return adv })
			return nil
		},
	}
}

// runCase evaluates every scheme for one spec on one (input, arch).
func runCase(spec caseSpec, input string, arch machine.Config, brainy *core.Brainy) (CaseResult, error) {
	cycles, err := spec.runAll(input, arch)
	if err != nil {
		return CaseResult{}, err
	}
	res := CaseResult{
		App:      spec.app,
		Input:    input,
		Arch:     arch.Name,
		Kinds:    spec.kinds,
		Cycles:   cycles,
		Selected: map[Scheme]adt.Kind{SchemeBaseline: spec.original},
	}

	// Oracle: empirically fastest candidate.
	best := spec.kinds[0]
	for _, k := range spec.kinds[1:] {
		if cycles[k] < cycles[best] {
			best = k
		}
	}
	res.Selected[SchemeOracle] = best

	// Perflint: replay through the hand-constructed advisor. The advisor's
	// cost model needs no machine, so it runs on the no-op memory model.
	adv := perflint.NewAdvisor(adt.New(spec.original, mem.Nop{}, 8), nil)
	if err := spec.drivePerflint(input, adv); err != nil {
		return CaseResult{}, err
	}
	if suggestion, ok := adv.Advise(); ok {
		if spec.mapNames {
			suggestion = valueCarrying(suggestion)
		}
		res.Selected[SchemePerflint] = suggestion
		res.PerflintSupported = true
	}

	// Brainy: profile the original, consult the trained model.
	if brainy != nil {
		prof, err := spec.profileOriginal(input, arch)
		if err != nil {
			return CaseResult{}, err
		}
		s, err := brainy.Suggest(&prof, arch.Name)
		if err != nil {
			return CaseResult{}, fmt.Errorf("experiments: %s/%s: %w", spec.app, arch.Name, err)
		}
		suggestion := s.Suggested
		if spec.mapNames {
			suggestion = valueCarrying(suggestion)
		}
		res.Selected[SchemeBrainy] = suggestion
	}

	// Any scheme may suggest a kind outside the figure's candidate set
	// (e.g. deque for a vector original); price those selections honestly.
	for _, sel := range res.Selected {
		if _, measured := res.Cycles[sel]; !measured {
			cyc, err := spec.runKind(input, arch, sel)
			if err != nil {
				return CaseResult{}, err
			}
			res.Cycles[sel] = cyc
		}
	}
	return res, nil
}

// CaseStudy runs one named application across its inputs and both
// architectures. Valid names: xalan, chord, relipmoc, raytrace.
func CaseStudy(name string, brainy *core.Brainy) ([]CaseResult, error) {
	var spec caseSpec
	switch name {
	case "xalan":
		spec = xalanSpec()
	case "chord":
		spec = chordSpec()
	case "relipmoc":
		spec = relipmocSpec()
	case "raytrace":
		spec = raytraceSpec()
	default:
		return nil, fmt.Errorf("experiments: unknown case study %q", name)
	}
	var out []CaseResult
	for _, arch := range Archs() {
		for _, input := range spec.inputs {
			cr, err := runCase(spec, input, arch, brainy)
			if err != nil {
				return nil, err
			}
			out = append(out, cr)
		}
	}
	return out, nil
}

// RenderCases formats Figures 10-13: normalized times plus the scheme table.
func RenderCases(results []CaseResult) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: normalized execution times (baseline = 1.00)\n", results[0].App)
	kinds := results[0].Kinds
	header := []string{"arch", "input"}
	for _, k := range kinds {
		header = append(header, k.String())
	}
	var rows [][]string
	for _, r := range results {
		row := []string{r.Arch, r.Input}
		for _, k := range kinds {
			row = append(row, fmt.Sprintf("%.2f", r.Norm(k)))
		}
		rows = append(rows, row)
	}
	sb.WriteString(table(header, rows))

	sb.WriteString("\nselection schemes\n")
	rows = rows[:0]
	for _, r := range results {
		pf := "unsupported"
		if r.PerflintSupported {
			pf = r.Selected[SchemePerflint].String()
		}
		brainyCell := "-"
		if k, ok := r.Selected[SchemeBrainy]; ok {
			brainyCell = k.String()
		}
		rows = append(rows, []string{
			r.Arch, r.Input,
			r.Selected[SchemeBaseline].String(),
			pf,
			brainyCell,
			r.Selected[SchemeOracle].String(),
		})
	}
	sb.WriteString(table([]string{"arch", "input", "baseline", "perflint", "brainy", "oracle"}, rows))
	return sb.String()
}

// --- Table 4: find invocations and touched elements per Xalancbmk input ---

// Tab4Row is one input's counts, measured on the original vector.
type Tab4Row struct {
	Input       string
	Invocations uint64
	Touched     uint64
}

// Table4 measures the original busy-list vector across inputs on Core2.
func Table4() []Tab4Row {
	var out []Tab4Row
	for _, in := range xalan.Inputs() {
		r := xalan.Run(xalan.Original(), in, machine.Core2())
		out = append(out, Tab4Row{Input: in.Name, Invocations: r.FindInvocations, Touched: r.TouchedElements})
	}
	return out
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []Tab4Row) string {
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{r.Input, fmt.Sprint(r.Invocations), fmt.Sprint(r.Touched)})
	}
	return "Table 4: find/erase invocations and touched elements (vector busy list, Core2)\n" +
		table([]string{"input", "invocations", "touched elements"}, cells)
}

// --- Figure 8: performance improvement summary ---

// Fig8Row is one (application, architecture) improvement cell.
type Fig8Row struct {
	App            string
	Arch           string
	Input          string // input where Brainy's best improvement occurred
	ImprovementPct float64
}

// Fig8Result is the whole figure plus the per-arch averages.
type Fig8Result struct {
	Rows []Fig8Row
	Avg  map[string]float64
}

// Figure8 computes, per application and architecture, the best improvement
// Brainy's suggestion achieves over the baseline across the inputs —
// matching the paper's "only the best performance result appears".
func Figure8(brainy *core.Brainy) (Fig8Result, error) {
	res := Fig8Result{Avg: map[string]float64{}}
	apps := []string{"xalan", "chord", "relipmoc", "raytrace"}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, app := range apps {
		cases, err := CaseStudy(app, brainy)
		if err != nil {
			return Fig8Result{}, err
		}
		bestByArch := map[string]Fig8Row{}
		for _, c := range cases {
			imp := c.ImprovementPct(SchemeBrainy)
			cur, ok := bestByArch[c.Arch]
			if !ok || imp > cur.ImprovementPct {
				bestByArch[c.Arch] = Fig8Row{App: c.App, Arch: c.Arch, Input: c.Input, ImprovementPct: imp}
			}
		}
		for _, arch := range Archs() {
			row := bestByArch[arch.Name]
			res.Rows = append(res.Rows, row)
			sums[arch.Name] += row.ImprovementPct
			counts[arch.Name]++
		}
	}
	for arch, s := range sums {
		res.Avg[arch] = s / float64(counts[arch])
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		if res.Rows[i].App != res.Rows[j].App {
			return res.Rows[i].App < res.Rows[j].App
		}
		return res.Rows[i].Arch < res.Rows[j].Arch
	})
	return res, nil
}

// Render formats Figure 8.
func (r Fig8Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.App, row.Arch, row.Input, fmt.Sprintf("%.1f%%", row.ImprovementPct)})
	}
	out := "Figure 8: performance improvement from Brainy's selections\n" +
		table([]string{"application", "arch", "best input", "improvement"}, rows)
	for _, arch := range Archs() {
		out += fmt.Sprintf("average on %s: %.1f%%\n", arch.Name, r.Avg[arch.Name])
	}
	return out
}
