package experiments

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/appgen"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/perflint"
)

// CalibratePerflint fits Perflint's per-operation cost coefficients by
// linear regression against measured execution times, the calibration the
// paper describes ("each cost is multiplied with a coefficient value,
// determined by linear regression analysis for execution time"). For every
// candidate kind it runs apps synthetic applications twice: once through a
// Perflint advisor to accumulate the asymptotic per-op costs, and once for
// real on the machine to measure cycles.
func CalibratePerflint(sc Scale, arch machine.Config, apps int) (perflint.Coefficients, error) {
	if apps <= 0 {
		apps = 80
	}
	cfg := appgen.DefaultConfig()
	cfg.TotalInterfCalls = sc.Calls
	cfg.MaxPrepopulate = 2 * sc.Calls
	cfg.MaxIterCount = 2 * sc.Calls

	runs := map[adt.Kind][]perflint.CalibrationRun{}
	kinds := []adt.Kind{adt.KindVector, adt.KindList, adt.KindDeque, adt.KindSet}
	tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: true}
	for s := 0; s < apps; s++ {
		app := appgen.Generate(cfg, tgt, int64(330000+s))
		for _, kind := range kinds {
			// Pass 1: accumulate asymptotic costs by replaying the stream
			// through an advisor wrapped around this kind.
			adv := perflint.NewAdvisor(adt.New(kind, mem.Nop{}, app.ElemSize), nil)
			appgen.Replay(&app, cfg, adv)
			costs := adv.AccumulatedCosts(kind)

			// Pass 2: measure the same behaviour on the machine.
			m := machine.New(arch)
			res := app.Run(cfg, kind, m)

			runs[kind] = append(runs[kind], perflint.CalibrationRun{Costs: costs, Cycles: res.Cycles})
		}
	}
	coef, err := perflint.FitCoefficients(runs)
	if err != nil {
		return nil, fmt.Errorf("experiments: perflint calibration: %w", err)
	}
	return coef, nil
}
