// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a pure function from a Scale (how much
// compute to spend) to a typed result with a text renderer; cmd/experiments
// exposes them on the command line and the repository's root benchmarks run
// them at reduced scale.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/appgen"
	"repro/internal/machine"
	"repro/internal/training"
)

// Scale bounds the compute an experiment spends. Paper-scale training used
// thousands of applications per model; Small keeps every experiment under a
// few seconds for tests and benchmarks.
type Scale struct {
	Name            string
	TrainApps       int // Phase-I labelled applications per model target
	MaxSeeds        int // Phase-I generation bound
	Calls           int // interface calls per synthetic application
	ValidationApps  int // fresh applications per model for Figure 9
	Fig1PerBucket   int // applications per Figure 1 bar
	Fig6Apps        int // scatter points per Figure 6 series
	ANNEpochs       int
	GAGenerations   int
	GAPopulation    int
	GAFitnessEpochs int // ANN epochs inside the GA fitness evaluation
}

// SmallScale is the test/bench budget (seconds per experiment).
func SmallScale() Scale {
	return Scale{
		Name:            "small",
		TrainApps:       150,
		MaxSeeds:        1500,
		Calls:           250,
		ValidationApps:  80,
		Fig1PerBucket:   60,
		Fig6Apps:        120,
		ANNEpochs:       150,
		GAGenerations:   4,
		GAPopulation:    8,
		GAFitnessEpochs: 25,
	}
}

// FullScale approximates the paper's budget (minutes to hours).
func FullScale() Scale {
	return Scale{
		Name:            "full",
		TrainApps:       1000,
		MaxSeeds:        20000,
		Calls:           1000,
		ValidationApps:  1000,
		Fig1PerBucket:   1000,
		Fig6Apps:        1000,
		ANNEpochs:       300,
		GAGenerations:   10,
		GAPopulation:    16,
		GAFitnessEpochs: 60,
	}
}

// trainingOptions derives the training configuration for one architecture.
func (sc Scale) trainingOptions(arch machine.Config) training.Options {
	opt := training.DefaultOptions(arch)
	opt.AppCfg.TotalInterfCalls = sc.Calls
	opt.AppCfg.MaxPrepopulate = 4 * sc.Calls
	opt.AppCfg.MaxIterCount = 4 * sc.Calls
	opt.PerTargetApps = sc.TrainApps
	opt.MaxSeeds = sc.MaxSeeds
	return opt
}

func (sc Scale) annConfig() ann.Config {
	cfg := ann.DefaultConfig()
	cfg.Epochs = sc.ANNEpochs
	return cfg
}

// Archs returns the two evaluated microarchitectures.
func Archs() []machine.Config {
	return []machine.Config{machine.Core2(), machine.Atom()}
}

// TrainModels runs the full two-phase framework for every model target on
// both architectures. It is the expensive shared step behind Figures 8-13;
// callers should reuse the result across experiments.
func TrainModels(sc Scale) (*training.ModelSet, error) {
	opts := make([]training.Options, 0, len(Archs()))
	for _, arch := range Archs() {
		opts = append(opts, sc.trainingOptions(arch))
	}
	set, err := training.TrainArchs(context.Background(), opts, sc.annConfig(), adt.Targets(), training.PipelineConfig{})
	if err != nil {
		return nil, fmt.Errorf("experiments: training: %w", err)
	}
	return set, nil
}

// table renders rows of columns with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

// bar renders a proportional ASCII bar of width w for value in [0, max].
func bar(value, max float64, w int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(w))
	if n > w {
		n = w
	}
	return strings.Repeat("#", n) + strings.Repeat(".", w-n)
}

// oracleOf returns the empirically fastest kind for an app on an arch.
func oracleOf(app *appgen.App, cfg appgen.Config, arch machine.Config) adt.Kind {
	return training.Oracle(app, cfg, arch)
}
