package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/adt"
)

func TestPearson(t *testing.T) {
	mk := func(xs, ys []float64) []Fig6Point {
		pts := make([]Fig6Point, len(xs))
		for i := range xs {
			pts[i] = Fig6Point{ResizeRatio: xs[i], BrMissRate: ys[i]}
		}
		return pts
	}
	// Perfect positive correlation.
	if r := pearson(mk([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %f, want 1", r)
	}
	// Perfect negative.
	if r := pearson(mk([]float64{1, 2, 3}, []float64{3, 2, 1})); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %f, want -1", r)
	}
	// Constant series: undefined -> 0.
	if r := pearson(mk([]float64{1, 1, 1}, []float64{1, 2, 3})); r != 0 {
		t.Fatalf("constant x: r = %f", r)
	}
	// Too few points.
	if r := pearson(mk([]float64{1}, []float64{1})); r != 0 {
		t.Fatalf("single point: r = %f", r)
	}
}

func TestTableRenderer(t *testing.T) {
	out := table([]string{"a", "long-header"}, [][]string{{"x", "1"}, {"yyyy", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("no separator row:\n%s", out)
	}
	// Columns align: header and rows share the first column width.
	if !strings.Contains(lines[0], "a    ") {
		t.Fatalf("first column not padded:\n%s", out)
	}
}

func TestScalesSane(t *testing.T) {
	for _, sc := range []Scale{SmallScale(), FullScale()} {
		if sc.TrainApps <= 0 || sc.Calls <= 0 || sc.ValidationApps <= 0 {
			t.Fatalf("degenerate scale %+v", sc)
		}
		if sc.MaxSeeds < sc.TrainApps {
			t.Fatalf("%s: MaxSeeds < TrainApps", sc.Name)
		}
	}
	if FullScale().TrainApps <= SmallScale().TrainApps {
		t.Fatal("full scale not larger than small")
	}
}

func TestCaseResultMath(t *testing.T) {
	c := CaseResult{
		Kinds: []adt.Kind{adt.KindVector, adt.KindHashSet},
		Cycles: map[adt.Kind]float64{
			adt.KindVector:  200,
			adt.KindHashSet: 50,
		},
		Selected: map[Scheme]adt.Kind{
			SchemeBaseline: adt.KindVector,
			SchemeBrainy:   adt.KindHashSet,
		},
	}
	if got := c.Norm(adt.KindHashSet); got != 0.25 {
		t.Fatalf("Norm = %f", got)
	}
	if got := c.ImprovementPct(SchemeBrainy); got != 75 {
		t.Fatalf("Improvement = %f", got)
	}
	if got := c.ImprovementPct(SchemeBaseline); got != 0 {
		t.Fatalf("baseline improvement = %f", got)
	}
	if got := c.ImprovementPct(SchemeOracle); got != 0 {
		t.Fatalf("missing scheme improvement = %f", got)
	}
}

func TestValueCarrying(t *testing.T) {
	if valueCarrying(adt.KindSet) != adt.KindMap ||
		valueCarrying(adt.KindHashSet) != adt.KindHashMap ||
		valueCarrying(adt.KindAVLSet) != adt.KindAVLMap ||
		valueCarrying(adt.KindVector) != adt.KindVector {
		t.Fatal("valueCarrying mapping wrong")
	}
}
