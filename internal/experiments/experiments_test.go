package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perflint"
	"repro/internal/training"
)

// tinyScale keeps individual experiment tests fast. TrainApps stays at 150:
// below that the list-aware models are not reliable enough for the
// raytrace assertion in TestBrainyEndToEnd. Fig1PerBucket is the package's
// single biggest cost (each Figure-1 app is oracled across every candidate
// on both architectures at paper-sized working sets), so it stays just large
// enough for a stable disagreement signal.
func tinyScale() Scale {
	sc := SmallScale()
	sc.TrainApps = 150
	sc.MaxSeeds = 1500
	sc.Calls = 200
	sc.ValidationApps = 40
	sc.Fig1PerBucket = 12
	sc.Fig6Apps = 60
	sc.ANNEpochs = 150
	return sc
}

// sharedModels trains one small model set for all tests in this package.
var (
	modelsOnce sync.Once
	modelsSet  *training.ModelSet
	modelsErr  error
)

func sharedBrainy(t *testing.T) *core.Brainy {
	t.Helper()
	modelsOnce.Do(func() {
		modelsSet, modelsErr = TrainModels(tinyScale())
	})
	if modelsErr != nil {
		t.Fatal(modelsErr)
	}
	return core.New(modelsSet)
}

func TestStaticArtifactsRender(t *testing.T) {
	if s := Table1(); !strings.Contains(s, "hash_set") || !strings.Contains(s, "order-oblivious") {
		t.Fatalf("Table1 incomplete:\n%s", s)
	}
	if s := Table2(); !strings.Contains(s, "TotalInterfCalls") {
		t.Fatalf("Table2 incomplete:\n%s", s)
	}
	if s := Figure7(); !strings.Contains(s, "Core2") || !strings.Contains(s, "Atom") {
		t.Fatalf("Figure7 incomplete:\n%s", s)
	}
	f2 := Figure2()
	if len(f2.Counts) == 0 || f2.Counts[0].Container != "vector" {
		t.Fatalf("Figure2 ranking wrong: %+v", f2.Counts)
	}
	if !strings.Contains(f2.Render(), "vector") {
		t.Fatal("Figure2 render incomplete")
	}
}

func TestFigure1Disagreement(t *testing.T) {
	res := Figure1(tinyScale())
	if len(res.Rows) < 2 {
		t.Fatalf("Figure1 produced %d buckets", len(res.Rows))
	}
	if res.OverallDisagreePct <= 0 || res.OverallDisagreePct >= 100 {
		t.Fatalf("disagreement = %.1f%%, want a nontrivial fraction", res.OverallDisagreePct)
	}
	total := 0
	for _, row := range res.Rows {
		if row.Agree+row.Disagree != row.Total {
			t.Fatalf("bucket %v inconsistent: %+v", row.BestOnCore2, row)
		}
		total += row.Total
	}
	if total == 0 {
		t.Fatal("no applications classified")
	}
	if !strings.Contains(res.Render(), "disagree") {
		t.Fatal("render incomplete")
	}
}

func TestFigure6ResizeMispredictCorrelation(t *testing.T) {
	res := Figure6(tinyScale())
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) < 20 {
			t.Fatalf("series has only %d points", len(s.Points))
		}
		// The paper's Figure 6: more resizing correlates with more branch
		// mispredictions.
		if s.Correlation <= 0.1 {
			t.Fatalf("orderAware=%v: correlation %.3f not positive", s.OrderAware, s.Correlation)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Tab4Row{}
	for _, r := range rows {
		byName[r.Input] = r
	}
	// Reference must dwarf test in both invocations and touched elements,
	// and train must touch far fewer elements per find than reference.
	if byName["reference"].Invocations <= byName["test"].Invocations {
		t.Fatal("reference should issue more finds than test")
	}
	trainPer := float64(byName["train"].Touched) / float64(byName["train"].Invocations)
	refPer := float64(byName["reference"].Touched) / float64(byName["reference"].Invocations)
	if refPer <= trainPer {
		t.Fatalf("touched/find: reference %.1f <= train %.1f", refPer, trainPer)
	}
	if !strings.Contains(RenderTable4(rows), "reference") {
		t.Fatal("render incomplete")
	}
}

func TestPerflintColumnsMatchPaper(t *testing.T) {
	// The Perflint baseline needs no trained models, so its column is exact:
	// set for every Xalancbmk input (wrong on train), map for every Chord
	// input, unsupported for RelipmoC, vector for Raytrace.
	cases, err := CaseStudy("xalan", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if !c.PerflintSupported || c.Selected[SchemePerflint] != adt.KindSet {
			t.Fatalf("xalan %s/%s: perflint = %v", c.Arch, c.Input, c.Selected[SchemePerflint])
		}
	}
	cases, err = CaseStudy("chord", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.Selected[SchemePerflint] != adt.KindMap {
			t.Fatalf("chord %s/%s: perflint = %v", c.Arch, c.Input, c.Selected[SchemePerflint])
		}
	}
	cases, err = CaseStudy("relipmoc", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.PerflintSupported {
			t.Fatalf("relipmoc %s: perflint should be unsupported", c.Arch)
		}
	}
	cases, err = CaseStudy("raytrace", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.Selected[SchemePerflint] != adt.KindVector {
			t.Fatalf("raytrace %s: perflint = %v", c.Arch, c.Selected[SchemePerflint])
		}
	}
}

func TestOracleColumnsMatchPaperShape(t *testing.T) {
	cases, err := CaseStudy("xalan", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]adt.Kind{"test": adt.KindHashSet, "train": adt.KindVector, "reference": adt.KindHashSet}
	for _, c := range cases {
		if c.Selected[SchemeOracle] != want[c.Input] {
			t.Fatalf("xalan %s/%s oracle = %v, want %v", c.Arch, c.Input, c.Selected[SchemeOracle], want[c.Input])
		}
	}
	cases, err = CaseStudy("raytrace", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.Selected[SchemeOracle] != adt.KindVector {
			t.Fatalf("raytrace oracle = %v", c.Selected[SchemeOracle])
		}
	}
}

func TestCaseStudyUnknownApp(t *testing.T) {
	if _, err := CaseStudy("doom", nil); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestBrainyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	brainy := sharedBrainy(t)
	// Raytrace and RelipmoC have unambiguous winners; a trained Brainy must
	// get them right even at tiny scale.
	cases, err := CaseStudy("raytrace", brainy)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.Selected[SchemeBrainy] != adt.KindVector {
			t.Errorf("raytrace %s: brainy = %v, want vector", c.Arch, c.Selected[SchemeBrainy])
		}
		if c.ImprovementPct(SchemeBrainy) <= 0 {
			t.Errorf("raytrace %s: no improvement from brainy's pick", c.Arch)
		}
	}
	cases, err = CaseStudy("relipmoc", brainy)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if got := c.Selected[SchemeBrainy]; got != adt.KindAVLSet && got != adt.KindSet &&
			got != adt.KindBTreeSet && got != adt.KindFlatBTreeSet {
			t.Errorf("relipmoc %s: brainy = %v, want an order-preserving tree", c.Arch, got)
		}
	}
	// Every suggestion must be priced.
	for _, app := range []string{"xalan", "chord"} {
		cases, err = CaseStudy(app, brainy)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			for scheme, sel := range c.Selected {
				if _, ok := c.Cycles[sel]; !ok {
					t.Errorf("%s %s/%s: %s selection %v not measured", app, c.Arch, c.Input, scheme, sel)
				}
			}
		}
	}
}

func TestFigure8Bounded(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	brainy := sharedBrainy(t)
	res, err := Figure8(brainy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 4 apps x 2 archs
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ImprovementPct > 100 || row.ImprovementPct < -100 {
			t.Fatalf("improvement %.1f%% out of bounds: %+v", row.ImprovementPct, row)
		}
	}
	if !strings.Contains(res.Render(), "average") {
		t.Fatal("render incomplete")
	}
}

func TestAblationHardwareFeatures(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	res, err := AblationHardwareFeatures(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Accuracy <= 0 || row.Accuracy > 1 {
			t.Fatalf("accuracy %f out of range", row.Accuracy)
		}
	}
}

func TestModelSetPersistRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	brainy := sharedBrainy(t)
	var sb strings.Builder
	if err := brainy.Models().Save(&sb); err != nil {
		t.Fatal(err)
	}
	loaded, err := training.LoadModelSet(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != brainy.Models().Len() {
		t.Fatalf("round trip lost models: %d vs %d", loaded.Len(), brainy.Models().Len())
	}
}

func TestCalibratePerflint(t *testing.T) {
	coef, err := CalibratePerflint(tinyScale(), machine.Core2(), 30)
	if err != nil {
		t.Fatal(err)
	}
	// One coefficient vector per calibrated candidate kind.
	for _, k := range []adt.Kind{adt.KindVector, adt.KindList, adt.KindDeque, adt.KindSet} {
		w, ok := coef[k]
		if !ok {
			t.Fatalf("missing coefficients for %v", k)
		}
		if len(w) == 0 {
			t.Fatalf("%v: empty coefficients", k)
		}
	}
	// A find on a sizeable vector must predict dearer than on a set when
	// the fitted coefficients are applied to the asymptotic costs: check
	// via an advisor loaded with the calibrated table.
	inner := adt.New(adt.KindVector, nil, 8)
	adv := perflint.NewAdvisor(inner, coef)
	for i := uint64(0); i < 400; i++ {
		adv.Insert(i)
	}
	for i := 0; i < 4000; i++ {
		adv.Find(uint64(i % 400))
	}
	if got, ok := adv.Advise(); !ok || got != adt.KindSet {
		t.Fatalf("calibrated perflint advice = %v,%v; want set for find-heavy vector", got, ok)
	}
}

func TestAblationCrossArchTransferLoses(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	sc := tinyScale()
	sc.ValidationApps = 150
	res, err := AblationCrossArch(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	native, transferred := res.Rows[0].Accuracy, res.Rows[1].Accuracy
	for _, acc := range []float64{native, transferred} {
		if acc <= 0.3 || acc > 1 {
			t.Fatalf("accuracy out of plausible range: native %.2f transferred %.2f", native, transferred)
		}
	}
	// Transfer should not *beat* the native model by more than sampling
	// noise; a large positive gap would mean per-arch training is useless,
	// contradicting Figure 1.
	if transferred > native+0.07 {
		t.Fatalf("transferred model (%.2f) clearly beats native (%.2f)", transferred, native)
	}
}
