package codesurvey

// corpus is the embedded stand-in for the Google Code Search index the
// paper queried for Figure 2 (the service was retired in 2012). The files
// are snippets in the style of the open-source C++ the survey covered —
// application code, parsers, caches, geometry, networking — whose container
// usage follows the idioms that produced the paper's ordering: vector
// everywhere, map for keyed state, list for queues and LRU chains, set for
// membership, deque/multimap/hash variants in the tail.
var corpus = map[string]string{
	"render/mesh.cc": `
#include <vector>
struct Mesh {
  std::vector<Vertex> vertices;
  std::vector<Face> faces;
  std::vector<float> weights;
  void addVertex(const Vertex& v) { vertices.push_back(v); }
};
std::vector<Mesh> loadScene(const std::string& path);
`,
	"render/texture_cache.cc": `
#include <map>
#include <vector>
class TextureCache {
  std::map<std::string, Texture*> byName_;
  std::vector<Texture*> lru_;
public:
  Texture* lookup(const std::string& name) {
    std::map<std::string, Texture*>::iterator it = byName_.find(name);
    return it == byName_.end() ? 0 : it->second;
  }
};
`,
	"net/connection_pool.cc": `
#include <list>
#include <map>
class ConnectionPool {
  std::list<Connection*> idle_;
  std::map<int, Connection*> byFd_;
  void release(Connection* c) { idle_.push_back(c); }
  Connection* acquire() {
    if (idle_.empty()) return 0;
    Connection* c = idle_.front();
    idle_.pop_front();
    return c;
  }
};
`,
	"net/router.cc": `
#include <vector>
#include <map>
std::vector<Route> routes;
std::map<Prefix, NextHop> table;
void addRoute(const Route& r) { routes.push_back(r); }
`,
	"parser/tokenizer.cc": `
#include <vector>
#include <set>
std::vector<Token> tokenize(const std::string& input);
static std::set<std::string> keywords;
bool isKeyword(const std::string& w) { return keywords.count(w) != 0; }
std::vector<std::string> splitLines(const std::string& text);
`,
	"parser/symbol_table.cc": `
#include <map>
#include <vector>
class SymbolTable {
  std::map<std::string, Symbol> symbols_;
  std::vector<Scope> scopes_;
  Symbol* lookup(const std::string& name);
};
`,
	"db/index.cc": `
#include <map>
#include <vector>
#include <set>
std::map<Key, RowId> primary;
std::multimap<Key, RowId> secondary;
std::set<RowId> dirty;
std::vector<Page*> pages;
`,
	"db/query_planner.cc": `
#include <vector>
#include <list>
std::vector<PlanNode*> plan;
std::list<PlanNode*> worklist;
void optimize(std::vector<PlanNode*>& nodes);
`,
	"game/entities.cc": `
#include <vector>
std::vector<Entity*> entities;
std::vector<Particle> particles;
void update(float dt) {
  for (std::vector<Entity*>::iterator it = entities.begin(); it != entities.end(); ++it)
    (*it)->tick(dt);
}
`,
	"game/event_queue.cc": `
#include <deque>
#include <vector>
std::deque<Event> pending;
void post(const Event& e) { pending.push_back(e); }
Event next() { Event e = pending.front(); pending.pop_front(); return e; }
std::vector<Listener*> listeners;
`,
	"compiler/cfg.cc": `
#include <set>
#include <map>
#include <vector>
std::set<BasicBlock*> visited;
std::map<BasicBlock*, int> order;
std::vector<BasicBlock*> postorder;
void dfs(BasicBlock* b) {
  if (!visited.insert(b).second) return;
  postorder.push_back(b);
}
`,
	"compiler/liveness.cc": `
#include <set>
#include <vector>
std::vector<std::set<Reg> > liveIn;
std::vector<std::set<Reg> > liveOut;
`,
	"text/word_count.cc": `
#include <map>
#include <vector>
#include <ext/hash_map>
std::map<std::string, int> counts;
__gnu_cxx::hash_map<std::string, int> fastCounts;
std::vector<std::string> topWords(int k);
`,
	"text/spell.cc": `
#include <set>
#include <vector>
#include <ext/hash_set>
std::set<std::string> dictionary;
__gnu_cxx::hash_set<std::string> fastDict;
std::vector<std::string> suggestions(const std::string& w);
`,
	"sim/scheduler.cc": `
#include <list>
#include <vector>
#include <map>
std::list<Task*> runQueue;
std::vector<Cpu> cpus;
std::map<Tid, Task*> byTid;
void enqueue(Task* t) { runQueue.push_back(t); }
`,
	"sim/timeline.cc": `
#include <multimap>
#include <vector>
std::multimap<Time, Event> timeline;
std::vector<Event> history;
`,
	"gui/widgets.cc": `
#include <vector>
#include <list>
std::vector<Widget*> children;
std::list<Widget*> focusChain;
void layout(std::vector<Widget*>& ws);
`,
	"util/lru_cache.cc": `
#include <list>
#include <map>
class LRUCache {
  std::list<Entry> chain_;
  std::map<Key, std::list<Entry>::iterator> index_;
  void touch(std::list<Entry>::iterator it) { chain_.splice(chain_.begin(), chain_, it); }
};
`,
	"audio/mixer.cc": `
#include <list>
#include <vector>
std::list<Voice*> activeVoices;
std::vector<float> mixBuffer;
void mix(std::vector<float>& out);
`,
	"util/string_pool.cc": `
#include <vector>
#include <set>
class StringPool {
  std::vector<char*> blocks_;
  std::set<const char*, StrLess> interned_;
};
`,
}
