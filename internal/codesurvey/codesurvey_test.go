package codesurvey

import "testing"

func TestCountRefsWordBoundary(t *testing.T) {
	src := "std::vector<int> v; bitvector<8> b; vector<vector<int> > vv;"
	if got := CountRefs(src, "vector"); got != 3 {
		t.Fatalf("vector refs = %d, want 3 (bitvector must not match)", got)
	}
}

func TestCountRefsMapVsMultimap(t *testing.T) {
	src := "std::map<K,V> m; std::multimap<K,V> mm; hash_map<K,V> hm;"
	if got := CountRefs(src, "map"); got != 1 {
		t.Fatalf("map refs = %d, want 1", got)
	}
	if got := CountRefs(src, "multimap"); got != 1 {
		t.Fatalf("multimap refs = %d", got)
	}
	if got := CountRefs(src, "hash_map"); got != 1 {
		t.Fatalf("hash_map refs = %d", got)
	}
}

func TestCountRefsEmpty(t *testing.T) {
	if CountRefs("", "vector") != 0 || CountRefs("vector", "vector") != 0 {
		t.Fatal("phantom matches")
	}
}

func TestSurveyOrderingMatchesFigure2(t *testing.T) {
	counts := Survey()
	byName := map[string]int{}
	for _, c := range counts {
		byName[c.Container] = c.Refs
	}
	// Figure 2's shape: vector dominates, then map, then list/set, with
	// deque and the hash variants in the tail.
	if !(byName["vector"] > byName["map"]) {
		t.Fatalf("vector (%d) must outnumber map (%d)", byName["vector"], byName["map"])
	}
	if !(byName["map"] > byName["list"]) {
		t.Fatalf("map (%d) must outnumber list (%d)", byName["map"], byName["list"])
	}
	if !(byName["list"] >= byName["set"]) {
		t.Fatalf("list (%d) must be >= set (%d)", byName["list"], byName["set"])
	}
	if !(byName["set"] > byName["deque"]) {
		t.Fatalf("set (%d) must outnumber deque (%d)", byName["set"], byName["deque"])
	}
	for _, c := range []string{"vector", "map", "list", "set", "deque"} {
		if byName[c] == 0 {
			t.Fatalf("%s has zero refs; corpus unrepresentative", c)
		}
	}
	// The ranking slice itself must be sorted.
	for i := 1; i < len(counts); i++ {
		if counts[i].Refs > counts[i-1].Refs {
			t.Fatal("Survey output not sorted")
		}
	}
}

func TestTopFourAreTargets(t *testing.T) {
	// The survey motivated targeting vector, list, set, and map (Section 3).
	counts := Survey()
	top := map[string]bool{}
	for _, c := range counts[:4] {
		top[c.Container] = true
	}
	for _, want := range []string{"vector", "map", "list", "set"} {
		if !top[want] {
			t.Fatalf("top-4 %v missing %s", counts[:4], want)
		}
	}
}

func TestCorpusNonTrivial(t *testing.T) {
	if CorpusFiles() < 10 {
		t.Fatalf("corpus has only %d files", CorpusFiles())
	}
}
