package codesurvey_test

import (
	"fmt"

	"repro/internal/codesurvey"
)

func ExampleCountRefs() {
	src := "std::vector<int> xs; std::vector<Point> ps; bitvector<8> bv;"
	fmt.Println(codesurvey.CountRefs(src, "vector"))
	// Output:
	// 2
}

func ExampleScan() {
	files := map[string]string{
		"a.cc": "std::map<K,V> m; std::vector<int> v1; std::vector<int> v2;",
		"b.cc": "std::vector<T> v3;",
	}
	for _, c := range codesurvey.Scan(files)[:2] {
		fmt.Println(c.Container, c.Refs)
	}
	// Output:
	// vector 3
	// map 1
}
