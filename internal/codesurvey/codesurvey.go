// Package codesurvey reproduces Figure 2: the count of static references to
// each STL container type across an indexed body of open-source C++ code.
// The paper queried Google Code Search (retired in 2012); this package
// scans an embedded corpus of representative C++ with the same counting
// rule — one hit per `container<` occurrence — and exposes the scanner so
// it can be pointed at any other corpus.
package codesurvey

import (
	"sort"
	"strings"
)

// Containers are the surveyed type names, in the paper's vocabulary.
var Containers = []string{
	"vector", "map", "list", "set", "deque", "multimap", "hash_map", "hash_set",
}

// Count is one row of the survey.
type Count struct {
	Container string
	Refs      int
}

// isIdentByte reports whether b can be part of a C++ identifier.
func isIdentByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// CountRefs counts static references to container in source: occurrences of
// "container<" not embedded in a longer identifier, e.g. `vector<` matches
// `std::vector<int>` but not `bitvector<`. The multimap/map and
// hash_set/set style prefixes are disambiguated the same way.
func CountRefs(source, container string) int {
	needle := container + "<"
	count := 0
	for idx := 0; ; {
		i := strings.Index(source[idx:], needle)
		if i < 0 {
			break
		}
		pos := idx + i
		if pos == 0 || !isIdentByte(source[pos-1]) {
			count++
		}
		idx = pos + len(needle)
	}
	return count
}

// Scan surveys a corpus mapping file name to source text.
func Scan(files map[string]string) []Count {
	out := make([]Count, 0, len(Containers))
	for _, c := range Containers {
		total := 0
		for _, src := range files {
			total += CountRefs(src, c)
		}
		out = append(out, Count{Container: c, Refs: total})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Refs > out[j].Refs })
	return out
}

// Survey runs Scan over the embedded corpus, yielding the Figure 2 ranking.
func Survey() []Count {
	return Scan(corpus)
}

// CorpusFiles returns the number of files in the embedded corpus.
func CorpusFiles() int { return len(corpus) }
