package telemetry

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// idBase is a per-process random base mixed into every generated ID so
// traces from separate runs do not collide when files are concatenated.
// Span/trace identity within a process is a simple atomic sequence, which
// keeps ID generation off the allocator and makes test output predictable.
var idBase = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var idSeq atomic.Uint64

func nextID() uint64 { return idBase ^ idSeq.Add(1) }

// ID is a trace or span identifier, rendered as 16 hex digits on the wire.
type ID uint64

// NewID mints a process-unique identifier from the same sequence spans use.
// Callers outside the tracer (request-ID middleware, batch tags) share it so
// one run's identifiers never collide.
func NewID() ID { return ID(nextID()) }

// MarshalJSON renders the ID in fixed-width hex.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", id.String())), nil
}

// UnmarshalJSON parses the hex form written by MarshalJSON.
func (id *ID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return fmt.Errorf("telemetry: bad id %q: %w", s, err)
	}
	*id = ID(v)
	return nil
}

// String renders the ID in fixed-width hex.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Attr is one span attribute. Values are whatever the instrumentation
// attached (numbers, strings, booleans); exporters serialize them as JSON.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanData is the exported record of one finished span.
type SpanData struct {
	TraceID  ID     `json:"trace_id"`
	SpanID   ID     `json:"span_id"`
	ParentID ID     `json:"parent_id,omitempty"` // zero for root spans
	Name     string `json:"name"`
	Start    int64  `json:"start_unix_nano"`
	End      int64  `json:"end_unix_nano"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Duration returns the span's wall-clock extent.
func (d SpanData) Duration() time.Duration { return time.Duration(d.End - d.Start) }

// Attr returns the value of the named attribute, or nil.
func (d SpanData) Attr(key string) any {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// Exporter receives finished spans. Implementations must be safe for
// concurrent use; spans from different goroutines finish concurrently.
type Exporter interface {
	ExportSpan(SpanData)
}

// Tracer creates spans and hands finished ones to its exporter. A nil
// *Tracer is the disabled tracer: Start returns the context unchanged and a
// no-op span, with no allocations — instrumentation can stay in place
// unconditionally on hot paths.
type Tracer struct {
	exp Exporter
}

// NewTracer builds a tracer around an exporter. A nil exporter yields a
// disabled tracer.
func NewTracer(exp Exporter) *Tracer {
	if exp == nil {
		return nil
	}
	return &Tracer{exp: exp}
}

// Enabled reports whether spans are recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.exp != nil }

// noopSpan is the shared span returned by every disabled Start; all its
// methods are no-ops.
var noopSpan = &Span{}

// Span is one timed operation. Spans are owned by the goroutine that
// started them: SetAttr/End must not race with each other. A span created
// by a disabled tracer (or the nil *Span) ignores all calls.
type Span struct {
	tracer *Tracer
	ended  bool
	data   SpanData
}

// spanKey carries the current span through a context.
type spanKey struct{}

// ContextWithSpan returns ctx with sp installed as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Start begins a root span (or a child, if ctx already carries a span from
// this tracer). On a disabled tracer it returns ctx unchanged and the
// shared no-op span, allocating nothing.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, noopSpan
	}
	var parent, trace ID
	if cur := SpanFromContext(ctx); cur != nil && cur.tracer != nil {
		parent = cur.data.SpanID
		trace = cur.data.TraceID
	} else {
		trace = ID(nextID())
	}
	sp := &Span{
		tracer: t,
		data: SpanData{
			TraceID:  trace,
			SpanID:   ID(nextID()),
			ParentID: parent,
			Name:     name,
			Start:    time.Now().UnixNano(),
		},
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartSpan begins a child of the span carried by ctx, using that span's
// tracer. Without a recording span in ctx it is a no-op: the context is
// returned unchanged along with the shared no-op span, and nothing
// allocates — this is the form instrumented library code calls.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	cur := SpanFromContext(ctx)
	if cur == nil || cur.tracer == nil {
		return ctx, noopSpan
	}
	return cur.tracer.Start(ctx, name)
}

// Recording reports whether the span will be exported. Guard expensive
// attribute computation with it.
func (s *Span) Recording() bool { return s != nil && s.tracer != nil }

// SetAttr attaches a key/value attribute. Prefer the typed setters on paths
// where boxing the value would allocate even when tracing is off.
func (s *Span) SetAttr(key string, value any) {
	if !s.Recording() {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// SetInt attaches an integer attribute without boxing on the disabled path.
func (s *Span) SetInt(key string, value int64) {
	if !s.Recording() {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// SetUint attaches an unsigned integer attribute without boxing on the
// disabled path.
func (s *Span) SetUint(key string, value uint64) {
	if !s.Recording() {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// SetFloat attaches a float attribute without boxing on the disabled path.
func (s *Span) SetFloat(key string, value float64) {
	if !s.Recording() {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// SetStr attaches a string attribute without boxing on the disabled path.
func (s *Span) SetStr(key, value string) {
	if !s.Recording() {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// End finishes the span and exports it. End is idempotent; only the first
// call exports.
func (s *Span) End() {
	if !s.Recording() || s.ended {
		return
	}
	s.ended = true
	s.data.End = time.Now().UnixNano()
	s.tracer.exp.ExportSpan(s.data)
}

// MemoryExporter collects spans in memory, for tests and in-process
// inspection.
type MemoryExporter struct {
	mu    sync.Mutex
	spans []SpanData
}

// ExportSpan implements Exporter.
func (e *MemoryExporter) ExportSpan(d SpanData) {
	e.mu.Lock()
	e.spans = append(e.spans, d)
	e.mu.Unlock()
}

// Spans returns a copy of everything exported so far.
func (e *MemoryExporter) Spans() []SpanData {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]SpanData(nil), e.spans...)
}

// JSONLinesExporter writes one JSON object per finished span, the
// repository's trace-file convention (cf. profile.WriteTrace). Writes are
// buffered; call Close (or Flush) before reading the file.
type JSONLinesExporter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLinesExporter wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLinesExporter(w io.Writer) *JSONLinesExporter {
	e := &JSONLinesExporter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		e.c = c
	}
	return e
}

// ExportSpan implements Exporter. The first write error sticks and is
// reported by Close.
func (e *JSONLinesExporter) ExportSpan(d SpanData) {
	b, err := json.Marshal(d)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	if err != nil {
		e.err = err
		return
	}
	b = append(b, '\n')
	if _, err := e.bw.Write(b); err != nil {
		e.err = err
	}
}

// Flush drains the buffer to the underlying writer.
func (e *JSONLinesExporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	return e.bw.Flush()
}

// Close flushes and closes the underlying writer (when it is closable),
// returning the first error the exporter hit.
func (e *JSONLinesExporter) Close() error {
	ferr := e.Flush()
	if e.c != nil {
		if cerr := e.c.Close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}

// ReadSpans parses a JSON-lines trace written by JSONLinesExporter.
func ReadSpans(r io.Reader) ([]SpanData, error) {
	dec := json.NewDecoder(r)
	var out []SpanData
	for {
		var d SpanData
		if err := dec.Decode(&d); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("telemetry: decoding span %d: %w", len(out), err)
		}
		out = append(out, d)
	}
}
