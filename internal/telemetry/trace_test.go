package telemetry

import (
	"bytes"
	"context"
	"testing"
)

func TestTracerParentingAndExport(t *testing.T) {
	exp := &MemoryExporter{}
	tr := NewTracer(exp)

	ctx, root := tr.Start(context.Background(), "root")
	root.SetStr("kind", "test")
	cctx, child := tr.Start(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.SetInt("n", 7)
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent: must not double-export

	spans := exp.Spans()
	if len(spans) != 3 {
		t.Fatalf("exported %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grandchild"]
	if r.ParentID != 0 {
		t.Fatalf("root has parent %v", r.ParentID)
	}
	if c.ParentID != r.SpanID || g.ParentID != c.SpanID {
		t.Fatalf("broken parent chain: root=%v child.parent=%v child=%v grand.parent=%v",
			r.SpanID, c.ParentID, c.SpanID, g.ParentID)
	}
	for _, s := range []SpanData{c, g} {
		if s.TraceID != r.TraceID {
			t.Fatalf("span %s has trace %v, want %v", s.Name, s.TraceID, r.TraceID)
		}
	}
	// Children are exported before parents (they end first), and nest.
	for _, s := range []SpanData{r, c, g} {
		if s.End < s.Start {
			t.Fatalf("span %s ends before it starts", s.Name)
		}
	}
	if c.Start < r.Start || c.End > r.End || g.Start < c.Start || g.End > c.End {
		t.Fatal("child intervals do not nest within their parents")
	}
	if got := g.Attr("n"); got != int64(7) {
		t.Fatalf("grandchild attr n = %v (%T)", got, got)
	}
	if r.Attr("kind") != "test" {
		t.Fatalf("root attr kind = %v", r.Attr("kind"))
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	exp := NewJSONLinesExporter(&buf)
	tr := NewTracer(exp)
	ctx, root := tr.Start(context.Background(), "a")
	root.SetFloat("x", 1.5)
	_, child := tr.Start(ctx, "b")
	child.End()
	root.End()
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("round-tripped %d spans, want 2", len(spans))
	}
	if spans[0].Name != "b" || spans[1].Name != "a" {
		t.Fatalf("unexpected order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].ParentID != spans[1].SpanID || spans[0].TraceID != spans[1].TraceID {
		t.Fatal("ids did not survive the JSON round trip")
	}
	if spans[1].Attr("x") != 1.5 {
		t.Fatalf("attr x = %v", spans[1].Attr("x"))
	}
}

// TestDisabledTracerAllocatesNothing is the contract that lets span calls
// stay in place unconditionally on hot paths: with no tracer (nil, or no
// span in the context), starting spans and setting typed attributes must
// not allocate.
func TestDisabledTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		c, sp := tr.Start(ctx, "x")
		sp.SetUint("events", 123456789)
		sp.SetInt("n", -42)
		sp.SetFloat("cycles", 3.5e9)
		sp.SetStr("arch", "Core2")
		sp.End()
		_, sp2 := StartSpan(c, "y")
		sp2.End()
	}); n != 0 {
		t.Fatalf("disabled tracer allocated %v times per op", n)
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %s after %d draws", id, i)
		}
		seen[id] = true
	}
	if len(NewID().String()) != 16 {
		t.Fatalf("id %s is not 16 hex digits", NewID())
	}
}
