package telemetry

import (
	"fmt"
	"io"
	"regexp"
	"strings"
	"testing"
)

// TestRegistryGoldenExposition locks the full exposition page for one
// exercised registry: sorted one-pass rendering, HELP/TYPE metadata for
// every metric, histogram +Inf/_sum/_count lines, and HELP escaping.
func TestRegistryGoldenExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	fc := r.FloatCounter("test_cycles_total", "Simulated cycles.")
	v := r.CounterVec("test_requests_total", "Requests by path.")
	g := r.Gauge("test_inflight", "In-flight requests.")
	h := r.Histogram("test_latency_seconds", `Latency with \ and
newline.`, 0.1, 1)

	c.Add(3)
	fc.Add(2.5)
	v.With(`path="/a"`).Inc()
	v.With(`path="<other>"`).Add(2)
	g.Set(4)
	g.Dec()
	h.Observe(0.05) // first bucket
	h.Observe(0.5)  // second bucket
	h.Observe(30)   // +Inf overflow

	const want = `# HELP test_cycles_total Simulated cycles.
# TYPE test_cycles_total counter
test_cycles_total 2.5
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 3
# HELP test_latency_seconds Latency with \\ and\nnewline.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 30.55
test_latency_seconds_count 3
test_latency_seconds_min 0.05
test_latency_seconds_max 30
# HELP test_ops_total Operations.
# TYPE test_ops_total counter
test_ops_total 3
# HELP test_requests_total Requests by path.
# TYPE test_requests_total counter
test_requests_total{path="/a"} 1
test_requests_total{path="<other>"} 2
`
	var b1, b2 strings.Builder
	r.Expose(&b1)
	if b1.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b1.String(), want)
	}
	// Byte-stable across renders of the same state.
	r.Expose(&b2)
	if b1.String() != b2.String() {
		t.Fatalf("exposition not byte-stable:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

// Line grammars of the text exposition format, enough to catch malformed
// output: every line must be a HELP line, a TYPE line, or a sample.
var (
	helpLine   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[-+0-9].*)$`)
)

// ValidateExposition parses one exposition page line by line, additionally
// checking that each metric's TYPE immediately follows its HELP and that
// histograms end with the +Inf bucket, _sum, and _count.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpLine.MatchString(line) {
				t.Fatalf("malformed HELP line %d: %q", i, line)
			}
			name := strings.Fields(line)[2]
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Fatalf("HELP for %s not followed by its TYPE at line %d", name, i)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !typeLine.MatchString(line) {
				t.Fatalf("malformed TYPE line %d: %q", i, line)
			}
			if strings.HasSuffix(line, " histogram") {
				name := strings.Fields(line)[2]
				rest := strings.Join(lines[i+1:], "\n")
				for _, want := range []string{name + `_bucket{le="+Inf"}`, name + "_sum ", name + "_count "} {
					if !strings.Contains(rest, want) {
						t.Fatalf("histogram %s missing %q", name, want)
					}
				}
			}
		default:
			if !sampleLine.MatchString(line) {
				t.Fatalf("malformed sample line %d: %q", i, line)
			}
		}
	}
}

func TestRegistryExpositionIsWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Inc()
	r.Gauge("b", "B.").Set(-1.5)
	r.Histogram("c_seconds", "C.").Observe(10)
	v := r.CounterVec("d_total", "D with \"quotes\".")
	v.With(`path="/x",code="200"`).Inc()
	var b strings.Builder
	r.Expose(&b)
	validateExposition(t, b.String())
}

func TestRegistryRegisterOnce(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	mustPanic(t, "duplicate name", func() { r.Gauge("dup_total", "second") })
	mustPanic(t, "invalid name", func() { r.Counter("bad name", "oops") })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestRegistrySamples covers the structured sibling of Expose: typed,
// name-sorted samples with labelled families expanded per child, histograms
// carrying full snapshots, and opaque MustRegister collectors skipped.
func TestRegistrySamples(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", "")
	c.Add(3)
	g := r.Gauge("aa_gauge", "")
	g.Set(1.5)
	r.GaugeFunc("fn_gauge", "", func() float64 { return 2.5 })
	fc := r.FloatCounter("float_total", "")
	fc.Add(0.25)
	v := r.CounterVec("req_total", "")
	v.With(`path="/b"`).Add(2)
	v.With(`path="/a"`).Inc()
	h := r.Histogram("lat_seconds", "", 1, 2)
	h.Observe(0.5)
	h.Observe(3)
	r.MustRegister("custom_info", "", TypeGauge, func(w io.Writer) { fmt.Fprint(w, "custom_info 1\n") })

	got := r.Samples()
	wantNames := []string{
		"aa_gauge", "float_total", "fn_gauge", "lat_seconds",
		`req_total{path="/a"}`, `req_total{path="/b"}`, "zz_total",
	}
	if len(got) != len(wantNames) {
		t.Fatalf("got %d samples, want %d: %+v", len(got), len(wantNames), got)
	}
	byName := map[string]Sample{}
	for i, s := range got {
		if s.Name != wantNames[i] {
			t.Fatalf("sample %d = %q, want %q (sorted, custom skipped)", i, s.Name, wantNames[i])
		}
		byName[s.Name] = s
	}
	if s := byName["zz_total"]; s.Type != TypeCounter || s.Value != 3 {
		t.Fatalf("counter sample = %+v", s)
	}
	if s := byName["aa_gauge"]; s.Type != TypeGauge || s.Value != 1.5 {
		t.Fatalf("gauge sample = %+v", s)
	}
	if s := byName["fn_gauge"]; s.Value != 2.5 {
		t.Fatalf("gauge-func sample = %+v", s)
	}
	if s := byName["float_total"]; s.Type != TypeCounter || s.Value != 0.25 {
		t.Fatalf("float counter sample = %+v", s)
	}
	if s := byName[`req_total{path="/b"}`]; s.Value != 2 {
		t.Fatalf("vec child sample = %+v", s)
	}
	hs := byName["lat_seconds"]
	if hs.Type != TypeHistogram || hs.Hist == nil || hs.Hist.Count != 2 || hs.Value != 2 {
		t.Fatalf("histogram sample = %+v", hs)
	}
	if q := hs.Hist.Quantile(0.25); q != 0.5 {
		t.Fatalf("histogram snapshot quantile = %g, want 0.5", q)
	}
}
