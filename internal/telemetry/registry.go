// Package telemetry is the repository's observability backbone: a central
// metric registry that renders the whole Prometheus text exposition in one
// sorted pass, and a lightweight span tracer with pluggable exporters.
// Brainy's premise is measurement — instrumented interface functions feeding
// a profile to a model — and this package applies the same discipline to the
// pipeline itself: the training run, the simulator, and the HTTP advisor all
// register their counters here and bracket their long stages with spans,
// with ~zero cost when tracing is disabled.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/opstats"
)

// MetricType is the TYPE metadata of a registered metric, matching the
// Prometheus exposition vocabulary.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// validName is the Prometheus metric-name grammar.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// metric is one registry entry: identity, metadata, how to render its
// sample lines (HELP/TYPE are the registry's job), and how to read its
// current value(s) as typed samples for in-process consumers.
type metric struct {
	name   string
	help   string
	typ    MetricType
	expose func(io.Writer)
	sample func(append []Sample) []Sample
}

// Sample is one typed metric reading, the structured counterpart of a text
// exposition line. Labelled families contribute one Sample per child with
// the rendered label list folded into the name (`requests{path="/x"}`), so a
// sample name is a stable series identity. Histograms carry their full
// snapshot so consumers can difference windows and interpolate quantiles
// instead of settling for a scalar.
type Sample struct {
	Name  string
	Type  MetricType
	Value float64                    // counter/gauge value; histogram sample count
	Hist  *opstats.HistogramSnapshot // non-nil only for histograms
}

// Registry is a register-once collection of named metrics. Registration
// panics on an invalid or duplicate name — metric identity is program
// structure, so a collision is a bug, not a runtime condition. All methods
// are safe for concurrent use; the primitives themselves come from
// internal/opstats and are individually concurrency-safe.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register installs one entry, enforcing the register-once contract. sample
// may be nil for opaque custom collectors, which Samples then skips.
func (r *Registry) register(name, help string, typ MetricType, expose func(io.Writer), sample func([]Sample) []Sample) {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	r.metrics[name] = metric{name: name, help: help, typ: typ, expose: expose, sample: sample}
}

// MustRegister installs a custom collector under a name. expose writes only
// the sample lines; the registry emits HELP and TYPE. Custom collectors are
// text-only: Samples skips them because the registry cannot read typed
// values out of an opaque writer.
func (r *Registry) MustRegister(name, help string, typ MetricType, expose func(io.Writer)) {
	r.register(name, help, typ, expose, nil)
}

// Counter registers and returns a monotonic counter.
func (r *Registry) Counter(name, help string) *opstats.Counter {
	c := &opstats.Counter{}
	r.register(name, help, TypeCounter,
		func(w io.Writer) { c.Expose(w, name, "") },
		func(out []Sample) []Sample {
			return append(out, Sample{Name: name, Type: TypeCounter, Value: float64(c.Value())})
		})
	return c
}

// FloatCounter registers and returns a monotonic float64 counter.
func (r *Registry) FloatCounter(name, help string) *opstats.FloatCounter {
	c := &opstats.FloatCounter{}
	r.register(name, help, TypeCounter,
		func(w io.Writer) { c.Expose(w, name, "") },
		func(out []Sample) []Sample {
			return append(out, Sample{Name: name, Type: TypeCounter, Value: c.Value()})
		})
	return c
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string) *opstats.CounterVec {
	v := opstats.NewCounterVec()
	r.register(name, help, TypeCounter,
		func(w io.Writer) { v.Expose(w, name) },
		func(out []Sample) []Sample {
			v.Each(func(labels string, value uint64) {
				out = append(out, Sample{
					Name:  name + "{" + labels + "}",
					Type:  TypeCounter,
					Value: float64(value),
				})
			})
			return out
		})
	return v
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *opstats.Gauge {
	g := &opstats.Gauge{}
	r.register(name, help, TypeGauge,
		func(w io.Writer) { g.Expose(w, name, "") },
		func(out []Sample) []Sample {
			return append(out, Sample{Name: name, Type: TypeGauge, Value: g.Value()})
		})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — for quantities some other subsystem already tracks (a process-wide
// allocator gauge, a pool depth) where a stored gauge would just be a stale
// copy needing its own update discipline.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge,
		func(w io.Writer) {
			fmt.Fprintf(w, "%s %g\n", name, fn())
		},
		func(out []Sample) []Sample {
			return append(out, Sample{Name: name, Type: TypeGauge, Value: fn()})
		})
}

// Histogram registers and returns a histogram with the given ascending
// bucket bounds (opstats.DefBuckets when none are given).
func (r *Registry) Histogram(name, help string, bounds ...float64) *opstats.Histogram {
	h := opstats.NewHistogram(bounds...)
	r.register(name, help, TypeHistogram,
		func(w io.Writer) { h.Expose(w, name) },
		func(out []Sample) []Sample {
			s := h.Snapshot()
			return append(out, Sample{Name: name, Type: TypeHistogram, Value: float64(s.Count), Hist: &s})
		})
	return h
}

// Samples reads every registered metric's current value as typed samples,
// sorted by name — the structured sibling of Expose, consumed by the
// in-process time-series sampler. Custom MustRegister collectors are
// skipped; labelled families expand to one sample per child.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	entries := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		if m.sample != nil {
			entries = append(entries, m)
		}
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var out []Sample
	for _, m := range entries {
		out = m.sample(out)
	}
	return out
}

// escapeHelp applies the exposition-format HELP escaping: backslash and
// newline are the only characters that need it.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Expose renders every registered metric in one pass, sorted by name, each
// preceded by its HELP and TYPE lines. The output is byte-stable for a
// fixed metric state.
func (r *Registry) Expose(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	entries := make([]metric, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		entries = append(entries, r.metrics[n])
	}
	r.mu.Unlock()
	for _, m := range entries {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.expose(w)
	}
}

// ServeHTTP makes the registry a GET /metrics handler in the text
// exposition format.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.Expose(w)
}
