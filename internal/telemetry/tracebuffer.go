package telemetry

import (
	"sync"
	"time"
)

// Limits on the tail-sampler's in-progress state: how many distinct traces
// may buffer concurrently before new traces are dropped, and how many spans
// one trace may accumulate before further spans are discarded. Both bound
// memory against instrumentation bugs (roots that never End, span loops)
// rather than normal traffic — a request trace here is a handful of spans.
const (
	maxPendingTraces = 256
	maxSpansPerTrace = 64
)

// Trace is one retained trace: the root span, every buffered span of the
// trace (in the order they finished), and why the tail-sampler kept it.
type Trace struct {
	TraceID ID         `json:"trace_id"`
	Root    SpanData   `json:"root"`
	Spans   []SpanData `json:"spans"`
	Reason  string     `json:"reason"` // "slow" | "error"
}

// TraceBuffer is a tail-sampling span exporter: it buffers the spans of each
// in-flight trace and, when the trace's root span ends, keeps the whole
// trace in a bounded ring only if the root exceeded the slow threshold or
// any span carries an "error" attribute. Everything else is discarded — the
// buffer holds the interesting 0.1%, not an audit log. All methods are safe
// for concurrent use and on a nil *TraceBuffer (no-ops, zero allocations),
// the repository's disabled-observability contract.
type TraceBuffer struct {
	slow time.Duration
	size int

	mu       sync.Mutex
	pending  map[ID][]SpanData
	retained []Trace
	next     int
	full     bool
	total    uint64 // traces ever retained, including overwritten ones
	dropped  uint64 // spans dropped by the pending-state bounds
}

// NewTraceBuffer builds a tail sampler that retains up to size traces whose
// root span ran at least slow (slow <= 0 retains only errored traces).
func NewTraceBuffer(slow time.Duration, size int) *TraceBuffer {
	if size < 1 {
		size = 1
	}
	return &TraceBuffer{
		slow:    slow,
		size:    size,
		pending: make(map[ID][]SpanData, maxPendingTraces),
	}
}

// Slow reports the configured root-duration threshold.
func (b *TraceBuffer) Slow() time.Duration {
	if b == nil {
		return 0
	}
	return b.slow
}

// ExportSpan implements Exporter. Non-root spans buffer under their trace;
// a root span (ParentID zero) completes the trace and decides its fate.
func (b *TraceBuffer) ExportSpan(d SpanData) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	spans, known := b.pending[d.TraceID]
	if d.ParentID != 0 {
		switch {
		case known && len(spans) >= maxSpansPerTrace:
			b.dropped++
		case !known && len(b.pending) >= maxPendingTraces:
			b.dropped++
		default:
			b.pending[d.TraceID] = append(spans, d)
		}
		return
	}
	// Root ended: the trace is complete.
	delete(b.pending, d.TraceID)
	reason := ""
	if b.slow > 0 && d.Duration() >= b.slow {
		reason = "slow"
	} else if spanHasError(d) {
		reason = "error"
	} else {
		for _, s := range spans {
			if spanHasError(s) {
				reason = "error"
				break
			}
		}
	}
	if reason == "" {
		return
	}
	tr := Trace{
		TraceID: d.TraceID,
		Root:    d,
		Spans:   append(spans, d),
		Reason:  reason,
	}
	if len(b.retained) < b.size {
		b.retained = append(b.retained, tr)
	} else {
		b.retained[b.next] = tr
		b.next = (b.next + 1) % b.size
		b.full = true
	}
	b.total++
}

// spanHasError reports whether the span carries an "error" attribute that
// is not explicitly false.
func spanHasError(d SpanData) bool {
	v := d.Attr("error")
	if v == nil {
		return false
	}
	if f, ok := v.(bool); ok {
		return f
	}
	return true
}

// Snapshot copies the retained traces, oldest first.
func (b *TraceBuffer) Snapshot() []Trace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Trace, 0, len(b.retained))
	if b.full {
		out = append(out, b.retained[b.next:]...)
		out = append(out, b.retained[:b.next]...)
	} else {
		out = append(out, b.retained...)
	}
	return out
}

// Stats reports the buffer's occupancy: in-flight traces still buffering,
// retained traces, traces ever retained (including overwritten), and spans
// dropped by the pending-state bounds.
func (b *TraceBuffer) Stats() (pending, retained int, total, dropped uint64) {
	if b == nil {
		return 0, 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending), len(b.retained), b.total, b.dropped
}

// Cap reports the retained-ring bound (0 on a nil buffer).
func (b *TraceBuffer) Cap() int {
	if b == nil {
		return 0
	}
	return b.size
}

// fanout forwards every span to a list of exporters.
type fanout struct {
	exps []Exporter
}

func (f fanout) ExportSpan(d SpanData) {
	for _, e := range f.exps {
		e.ExportSpan(d)
	}
}

// Fanout composes exporters: each finished span goes to every non-nil
// exporter in order. With zero usable exporters it returns nil, so
// NewTracer(Fanout()) is the disabled tracer; with exactly one it returns
// that exporter unwrapped.
func Fanout(exps ...Exporter) Exporter {
	kept := make([]Exporter, 0, len(exps))
	for _, e := range exps {
		if e != nil {
			kept = append(kept, e)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return fanout{exps: kept}
}
