package telemetry

import (
	"testing"
	"time"
)

// mkTrace exports a two-span trace (child then root) whose root runs for
// rootDur, tagging the child with attrs.
func mkTrace(b *TraceBuffer, trace ID, rootDur time.Duration, childAttrs ...Attr) {
	base := int64(1_000_000_000)
	b.ExportSpan(SpanData{
		TraceID: trace, SpanID: trace + 1, ParentID: trace + 2,
		Name: "child", Start: base, End: base + int64(time.Millisecond), Attrs: childAttrs,
	})
	b.ExportSpan(SpanData{
		TraceID: trace, SpanID: trace + 2,
		Name: "root", Start: base, End: base + int64(rootDur),
	})
}

func TestTraceBufferTailSampling(t *testing.T) {
	b := NewTraceBuffer(10*time.Millisecond, 8)

	mkTrace(b, 100, time.Millisecond)                                    // fast, clean: discarded
	mkTrace(b, 200, 50*time.Millisecond)                                 // slow: retained
	mkTrace(b, 300, time.Millisecond, Attr{Key: "error", Value: "boom"}) // errored child: retained
	mkTrace(b, 400, time.Millisecond, Attr{Key: "error", Value: false})  // error=false: discarded

	got := b.Snapshot()
	if len(got) != 2 {
		t.Fatalf("retained %d traces, want 2: %+v", len(got), got)
	}
	if got[0].TraceID != 200 || got[0].Reason != "slow" {
		t.Fatalf("first retained = %v/%s, want 200/slow", got[0].TraceID, got[0].Reason)
	}
	if got[1].TraceID != 300 || got[1].Reason != "error" {
		t.Fatalf("second retained = %v/%s, want 300/error", got[1].TraceID, got[1].Reason)
	}
	if len(got[0].Spans) != 2 || got[0].Spans[1].Name != "root" {
		t.Fatalf("retained trace spans = %+v, want [child root]", got[0].Spans)
	}
	if pending, retained, total, dropped := b.Stats(); pending != 0 || retained != 2 || total != 2 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 0/2/2/0", pending, retained, total, dropped)
	}
}

func TestTraceBufferRingOverwrites(t *testing.T) {
	b := NewTraceBuffer(time.Nanosecond, 2)
	for i := ID(1); i <= 3; i++ {
		mkTrace(b, i*100, time.Second)
	}
	got := b.Snapshot()
	if len(got) != 2 || got[0].TraceID != 200 || got[1].TraceID != 300 {
		t.Fatalf("ring = %+v, want traces 200,300 oldest-first", got)
	}
	if _, _, total, _ := b.Stats(); total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
}

func TestTraceBufferPendingBounds(t *testing.T) {
	b := NewTraceBuffer(time.Hour, 4)
	// One trace exceeding the per-trace span cap.
	for i := 0; i < maxSpansPerTrace+5; i++ {
		b.ExportSpan(SpanData{TraceID: 7, SpanID: ID(100 + i), ParentID: 1, Name: "leaf"})
	}
	if pending, _, _, dropped := b.Stats(); pending != 1 || dropped != 5 {
		t.Fatalf("pending/dropped = %d/%d, want 1/5", pending, dropped)
	}
	// Too many distinct in-flight traces: new ones are dropped.
	for i := 0; i < maxPendingTraces+3; i++ {
		b.ExportSpan(SpanData{TraceID: ID(1000 + i), SpanID: ID(5000 + i), ParentID: 1})
	}
	if pending, _, _, dropped := b.Stats(); pending != maxPendingTraces || dropped != 5+4 {
		// 7 was already pending, so 1000..1000+254 fill the map and 4 drop.
		t.Fatalf("pending/dropped = %d/%d, want %d/9", pending, dropped, maxPendingTraces)
	}
}

func TestTraceBufferSlowDisabledKeepsErrorsOnly(t *testing.T) {
	b := NewTraceBuffer(0, 4)
	mkTrace(b, 100, time.Hour) // slow but threshold disabled
	mkTrace(b, 200, time.Nanosecond, Attr{Key: "error", Value: true})
	got := b.Snapshot()
	if len(got) != 1 || got[0].TraceID != 200 || got[0].Reason != "error" {
		t.Fatalf("retained = %+v, want only the errored trace", got)
	}
}

// TestNilTraceBufferZeroAlloc pins the disabled contract: a nil buffer's
// methods are allocation-free no-ops, like a nil Tracer or flight.Ring.
func TestNilTraceBufferZeroAlloc(t *testing.T) {
	var b *TraceBuffer
	d := SpanData{TraceID: 1, SpanID: 2, Name: "x"}
	if allocs := testing.AllocsPerRun(200, func() {
		b.ExportSpan(d)
		if b.Snapshot() != nil {
			t.Fatal("nil Snapshot not nil")
		}
		b.Stats()
		b.Cap()
		b.Slow()
	}); allocs != 0 {
		t.Fatalf("nil TraceBuffer allocated %.1f/op, want 0", allocs)
	}
}

func TestFanout(t *testing.T) {
	if Fanout() != nil || Fanout(nil) != nil {
		t.Fatal("empty Fanout must be nil (disabled tracer)")
	}
	a, b := &MemoryExporter{}, &MemoryExporter{}
	if got := Fanout(a); got != Exporter(a) {
		t.Fatal("single-exporter Fanout should unwrap")
	}
	f := Fanout(a, nil, b)
	f.ExportSpan(SpanData{TraceID: 9})
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("fanout delivered %d/%d, want 1/1", len(a.Spans()), len(b.Spans()))
	}
	tr := NewTracer(Fanout(nil, nil))
	if tr.Enabled() {
		t.Fatal("tracer over empty fanout should be disabled")
	}
}
