package slo

import (
	"testing"
	"time"

	"repro/internal/opstats"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tsdb"
)

// harness drives a DB with synthetic scrapes one second apart and evaluates
// after each, mimicking the sampler's OnSample cadence.
type harness struct {
	db  *tsdb.DB
	ev  *Evaluator
	t   time.Time
	ok  float64
	bad float64
}

func newHarness(objs []Objective, cfg Config) *harness {
	db := tsdb.NewDB(32, 64)
	return &harness{db: db, ev: New(db, objs, cfg), t: time.Unix(1000, 0)}
}

// step adds dOK good and dBad bad events, scrapes, and evaluates.
func (h *harness) step(dOK, dBad float64) Health {
	h.ok += dOK
	h.bad += dBad
	h.t = h.t.Add(time.Second)
	h.db.Record(h.t.UnixNano(), []telemetry.Sample{
		{Name: `req{code="200"}`, Type: telemetry.TypeCounter, Value: h.ok},
		{Name: `req{code="500"}`, Type: telemetry.TypeCounter, Value: h.bad},
	})
	return h.ev.Evaluate(h.t)
}

func availObjective() []Objective {
	return []Objective{{
		Name:        "availability",
		Kind:        Availability,
		Target:      0.9, // 10% error budget
		TotalPrefix: "req",
		BadPrefix:   "req",
		BadContains: `code="500"`,
	}}
}

func TestAvailabilityFlipsWithHysteresisAndRecovers(t *testing.T) {
	cfg := Config{FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second, Hysteresis: 2}
	h := newHarness(availObjective(), cfg)

	// Healthy traffic: never leaves ok.
	for i := 0; i < 5; i++ {
		if got := h.step(100, 0); got.State != StateOK {
			t.Fatalf("healthy step %d: state %s, want ok", i, got.State)
		}
	}
	// 100% errors: burn = 10x budget in both windows, but the first
	// agreeing evaluation must only arm the streak.
	got := h.step(0, 100)
	if got.State != StateOK {
		t.Fatalf("first bad eval flipped immediately: %s", got.State)
	}
	if o := got.Objectives[0]; o.Streak != 1 || o.Pending == StateOK {
		t.Fatalf("first bad eval: pending/streak = %s/%d, want armed", o.Pending, o.Streak)
	}
	got = h.step(0, 100)
	if got.State == StateOK {
		t.Fatalf("second agreeing eval did not flip: %+v", got.Objectives[0])
	}
	o := got.Objectives[0]
	if o.Reason == "" || o.FastBurn < 1 {
		t.Fatalf("flipped objective missing reason/burn: %+v", o)
	}
	// Back to clean traffic: windows drain, then hysteresis, then ok.
	var recovered bool
	for i := 0; i < 10; i++ {
		if got = h.step(100, 0); got.State == StateOK {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("never recovered: %+v", got.Objectives[0])
	}
}

func TestCriticalVsDegraded(t *testing.T) {
	cfg := Config{FastWindow: 2 * time.Second, SlowWindow: 2 * time.Second,
		DegradedBurn: 1, CriticalBurn: 8, Hysteresis: 1}
	h := newHarness(availObjective(), cfg)
	h.step(100, 0)
	// 20% errors: burn 2x the 10% budget → degraded, under critical.
	got := h.step(80, 20)
	if got.State != StateDegraded {
		t.Fatalf("state %s, want degraded (burn ~2)", got.State)
	}
	// 100% errors: burn 10x ≥ 8 → critical once both windows agree.
	h.step(0, 100)
	got = h.step(0, 100)
	if got.State != StateCritical {
		t.Fatalf("state %s, want critical: %+v", got.State, got.Objectives[0])
	}
	if got.Objectives[0].Reason == "" {
		t.Fatal("critical objective carries no reason")
	}
}

func TestBothWindowsMustAgree(t *testing.T) {
	// Slow window much longer than the burst: a one-second error spike
	// saturates the fast window but dilutes in the slow one → no verdict.
	cfg := Config{FastWindow: time.Second, SlowWindow: 30 * time.Second,
		DegradedBurn: 5, Hysteresis: 1}
	h := newHarness(availObjective(), cfg)
	for i := 0; i < 20; i++ {
		h.step(100, 0)
	}
	got := h.step(0, 100) // 100% errors this second; ~4.8% over 30s
	o := got.Objectives[0]
	if o.FastBurn < 5 {
		t.Fatalf("fast burn = %g, want saturated", o.FastBurn)
	}
	if o.SlowBurn >= 5 {
		t.Fatalf("slow burn = %g, want diluted below threshold", o.SlowBurn)
	}
	if got.State != StateOK {
		t.Fatalf("one-window spike produced verdict %s, want ok", got.State)
	}
}

func TestLatencyObjective(t *testing.T) {
	db := tsdb.NewDB(8, 32)
	ev := New(db, []Objective{{
		Name:      "advise-p99",
		Kind:      Latency,
		Target:    0.9,
		Series:    "lat",
		Threshold: 0.01,
	}}, Config{FastWindow: 2 * time.Second, SlowWindow: 2 * time.Second, Hysteresis: 1})

	now := time.Unix(1000, 0)
	rec := func(fast, slow uint64) {
		now = now.Add(time.Second)
		h := opstats.HistogramSnapshot{
			Bounds: []float64{0.01, 0.1},
			Counts: []uint64{fast, slow, 0},
			Count:  fast + slow,
		}
		db.Record(now.UnixNano(), []telemetry.Sample{
			{Name: "lat", Type: telemetry.TypeHistogram, Value: float64(h.Count), Hist: &h},
		})
	}
	rec(100, 0)
	if got := ev.Evaluate(now); got.State != StateOK {
		t.Fatalf("fast traffic: %s, want ok", got.State)
	}
	rec(100, 100) // 100 new slow observations: 100% of the window's delta
	got := ev.Evaluate(now)
	if got.State != StateDegraded {
		t.Fatalf("slow burst: %s, want degraded (%+v)", got.State, got.Objectives[0])
	}
	// Idle windows burn nothing: recovery without traffic.
	rec(200, 100)
	ev.Evaluate(now)
	rec(200, 100)
	rec(200, 100)
	if got := ev.Evaluate(now); got.State != StateOK {
		t.Fatalf("idle recovery: %s, want ok (%+v)", got.State, got.Objectives[0])
	}
}

func TestSaturationObjective(t *testing.T) {
	db := tsdb.NewDB(8, 32)
	ev := New(db, []Objective{{
		Name:        "queue",
		Kind:        Saturation,
		Target:      0.5, // at most half the readings may be saturated
		GaugePrefix: "depth",
		Max:         8,
	}}, Config{FastWindow: 3 * time.Second, SlowWindow: 3 * time.Second, Hysteresis: 1})
	now := time.Unix(1000, 0)
	rec := func(v float64) {
		now = now.Add(time.Second)
		db.Record(now.UnixNano(), []telemetry.Sample{{Name: "depth", Type: telemetry.TypeGauge, Value: v}})
	}
	rec(1)
	rec(2)
	if got := ev.Evaluate(now); got.State != StateOK {
		t.Fatalf("shallow queue: %s, want ok", got.State)
	}
	rec(9)
	rec(10)
	rec(12)
	if got := ev.Evaluate(now); got.State == StateOK {
		t.Fatalf("saturated queue still ok: %+v", got.Objectives[0])
	}
}

func TestEvaluatorNilAndEmpty(t *testing.T) {
	var ev *Evaluator
	if got := ev.Evaluate(time.Unix(5, 0)); got.State != StateOK {
		t.Fatalf("nil evaluator state = %s", got.State)
	}
	if got := ev.Health(); got.State != StateOK {
		t.Fatalf("nil evaluator health = %s", got.State)
	}
	// No objectives: trivially ok, and Health returns the last evaluation.
	live := New(tsdb.NewDB(2, 2), nil, Config{})
	if got := live.Health(); got.State != StateOK {
		t.Fatalf("pre-evaluation health = %s", got.State)
	}
	live.Evaluate(time.Unix(5, 0))
	if got := live.Health(); got.Evaluations != 1 {
		t.Fatalf("health evaluations = %d, want 1", got.Evaluations)
	}
}
