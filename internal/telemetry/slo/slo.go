// Package slo evaluates declarative service-level objectives against the
// in-process time-series store. Each objective defines a good/total signal —
// availability from counter deltas, latency from a histogram threshold,
// saturation from gauge readings — and is judged by multi-window error-budget
// burn rate: how many times faster than "allowed" the budget is burning over
// a fast and a slow window. Both windows must agree before a verdict is even
// proposed (the fast window confirms the problem is still happening, the
// slow window that it is not a blip), and a proposed verdict must then
// repeat for a hysteresis streak before the reported state flips.
//
// That two-stage gate is deliberately the same shape as drift.Detector: the
// advisor already refuses to re-plan a container off one divergent window,
// and the serving tier deserves the same discipline before declaring itself
// degraded — flapping health is worse than late health, for load balancers
// and operators alike.
package slo

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry/tsdb"
)

// Kind selects how an objective reads its good/total signal from the store.
type Kind string

const (
	// Availability counts bad vs. total events from counter deltas.
	Availability Kind = "availability"
	// Latency treats histogram observations over a threshold as bad.
	Latency Kind = "latency"
	// Saturation treats gauge readings at or above a limit as bad.
	Saturation Kind = "saturation"
)

// State is a health verdict, ordered ok < degraded < critical.
type State string

const (
	StateOK       State = "ok"
	StateDegraded State = "degraded"
	StateCritical State = "critical"
)

// rank orders states by severity.
func rank(s State) int {
	switch s {
	case StateCritical:
		return 2
	case StateDegraded:
		return 1
	default:
		return 0
	}
}

// Objective is one declarative SLO. Target is the required good fraction
// (e.g. 0.999); the remainder is the error budget the burn rate is measured
// against. Series selection uses the sampler's series names — a metric name,
// optionally with rendered labels — matched by prefix plus an optional
// contains filter, so one selector can sum a labelled family's children.
type Objective struct {
	Name   string  `json:"name"`
	Kind   Kind    `json:"kind"`
	Target float64 `json:"target"`

	// Availability: total and bad event counters.
	TotalPrefix   string `json:"total_prefix,omitempty"`
	TotalContains string `json:"total_contains,omitempty"`
	BadPrefix     string `json:"bad_prefix,omitempty"`
	BadContains   string `json:"bad_contains,omitempty"`

	// Latency: histogram series; observations above Threshold (seconds)
	// are bad.
	Series    string  `json:"series,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`

	// Saturation: gauge series; readings at or above Max are bad.
	GaugePrefix   string  `json:"gauge_prefix,omitempty"`
	GaugeContains string  `json:"gauge_contains,omitempty"`
	Max           float64 `json:"max,omitempty"`
}

// Config paces the evaluator.
type Config struct {
	// FastWindow (default 1m) confirms a problem is still happening;
	// SlowWindow (default 5m) confirms it is not a blip. Both must burn
	// over a threshold for a verdict.
	FastWindow time.Duration
	SlowWindow time.Duration
	// DegradedBurn (default 1: burning the budget exactly as fast as
	// allowed) and CriticalBurn (default 10) are the burn-rate thresholds.
	DegradedBurn float64
	CriticalBurn float64
	// Hysteresis (default 2) is how many consecutive evaluations must
	// propose the same new state before the reported state flips — the
	// drift.Detector streak, applied to the server's own health.
	Hysteresis int
}

func (c Config) withDefaults() Config {
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 5 * time.Minute
	}
	if c.DegradedBurn <= 0 {
		c.DegradedBurn = 1
	}
	if c.CriticalBurn <= 0 {
		c.CriticalBurn = 10
	}
	if c.Hysteresis < 1 {
		c.Hysteresis = 2
	}
	return c
}

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Name     string  `json:"name"`
	Kind     Kind    `json:"kind"`
	State    State   `json:"state"`
	Target   float64 `json:"target"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	FastBad  float64 `json:"fast_bad"`
	FastGood float64 `json:"fast_good"`
	// Reason is non-empty whenever the state is not ok: which burn
	// thresholds tripped, with the measured rates.
	Reason string `json:"reason,omitempty"`
	// Pending/Streak expose the hysteresis state machine mid-flip.
	Pending State `json:"pending,omitempty"`
	Streak  int   `json:"streak,omitempty"`
}

// Health is one full evaluation.
type Health struct {
	State       State             `json:"state"`
	Objectives  []ObjectiveStatus `json:"objectives"`
	Evaluations uint64            `json:"evaluations"`
	FastWindow  float64           `json:"fast_window_seconds"`
	SlowWindow  float64           `json:"slow_window_seconds"`
}

// objState is the per-objective hysteresis state, the drift.Detector
// pending/streak pair.
type objState struct {
	reported State
	pending  State
	streak   int
}

// Evaluator judges a set of objectives against one store. Evaluate is
// driven by the sampler's OnSample hook so verdict cadence equals scrape
// cadence; readers take the last computed Health. A nil *Evaluator reports
// an empty ok Health and evaluates nothing.
type Evaluator struct {
	db   *tsdb.DB
	cfg  Config
	objs []Objective

	mu     sync.Mutex
	states []objState
	last   Health
	evals  uint64
}

// New builds an evaluator over db. Objectives are evaluated in the given
// order on every call to Evaluate.
func New(db *tsdb.DB, objs []Objective, cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	states := make([]objState, len(objs))
	for i := range states {
		states[i] = objState{reported: StateOK}
	}
	return &Evaluator{db: db, cfg: cfg, objs: objs, states: states,
		last: Health{State: StateOK, FastWindow: cfg.FastWindow.Seconds(), SlowWindow: cfg.SlowWindow.Seconds()}}
}

// badTotal reads one objective's (bad, total) event counts over a window
// ending at now.
func (e *Evaluator) badTotal(o *Objective, window time.Duration, now int64) (bad, total float64) {
	w := window.Nanoseconds()
	switch o.Kind {
	case Availability:
		total, _ = e.db.CounterDelta(o.TotalPrefix, o.TotalContains, w, now)
		bad, _ = e.db.CounterDelta(o.BadPrefix, o.BadContains, w, now)
	case Latency:
		d, ok := e.db.HistogramDelta(o.Series, w, now)
		if ok && d.Count > 0 {
			total = float64(d.Count)
			bad = total * (1 - d.FractionLE(o.Threshold))
		}
	case Saturation:
		over, tot := e.db.GaugeOver(o.GaugePrefix, o.GaugeContains, o.Max, w, now)
		bad, total = float64(over), float64(tot)
	}
	return bad, total
}

// burn converts (bad, total) into an error-budget burn rate: the error rate
// divided by the rate the Target allows. An empty window burns nothing —
// silence is recovery, which keeps the ok verdict reachable after traffic
// stops.
func burn(bad, total, target float64) float64 {
	if total <= 0 {
		return 0
	}
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-9 // a 100% target has no budget; any error saturates
	}
	return (bad / total) / budget
}

// Evaluate runs every objective at time now, advances the hysteresis state
// machines, and returns (and retains) the resulting Health.
func (e *Evaluator) Evaluate(now time.Time) Health {
	if e == nil {
		return Health{State: StateOK}
	}
	ts := now.UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	h := Health{
		State:       StateOK,
		Objectives:  make([]ObjectiveStatus, 0, len(e.objs)),
		Evaluations: e.evals,
		FastWindow:  e.cfg.FastWindow.Seconds(),
		SlowWindow:  e.cfg.SlowWindow.Seconds(),
	}
	for i := range e.objs {
		o := &e.objs[i]
		fastBad, fastTotal := e.badTotal(o, e.cfg.FastWindow, ts)
		slowBad, slowTotal := e.badTotal(o, e.cfg.SlowWindow, ts)
		fastBurn := burn(fastBad, fastTotal, o.Target)
		slowBurn := burn(slowBad, slowTotal, o.Target)

		// Raw verdict: both windows must agree before anything is even
		// proposed to the hysteresis gate.
		raw := StateOK
		switch {
		case fastBurn >= e.cfg.CriticalBurn && slowBurn >= e.cfg.CriticalBurn:
			raw = StateCritical
		case fastBurn >= e.cfg.DegradedBurn && slowBurn >= e.cfg.DegradedBurn:
			raw = StateDegraded
		}

		st := &e.states[i]
		if raw == st.reported {
			st.pending, st.streak = StateOK, 0
		} else if raw == st.pending && st.streak > 0 {
			st.streak++
			if st.streak >= e.cfg.Hysteresis {
				st.reported = raw
				st.pending, st.streak = StateOK, 0
			}
		} else {
			st.pending, st.streak = raw, 1
			if e.cfg.Hysteresis == 1 {
				st.reported = raw
				st.pending, st.streak = StateOK, 0
			}
		}

		os := ObjectiveStatus{
			Name:     o.Name,
			Kind:     o.Kind,
			State:    st.reported,
			Target:   o.Target,
			FastBurn: fastBurn,
			SlowBurn: slowBurn,
			FastBad:  fastBad,
			FastGood: fastTotal - fastBad,
		}
		if st.streak > 0 {
			os.Pending, os.Streak = st.pending, st.streak
		}
		if st.reported != StateOK {
			threshold := e.cfg.DegradedBurn
			if st.reported == StateCritical {
				threshold = e.cfg.CriticalBurn
			}
			os.Reason = fmt.Sprintf("%s: burn fast=%.2f slow=%.2f >= %.2f (target %g)",
				o.Name, fastBurn, slowBurn, threshold, o.Target)
		}
		if rank(st.reported) > rank(h.State) {
			h.State = st.reported
		}
		h.Objectives = append(h.Objectives, os)
	}
	e.last = h
	return h
}

// Health returns the most recent evaluation (an empty ok Health before the
// first Evaluate or on a nil evaluator).
func (e *Evaluator) Health() Health {
	if e == nil {
		return Health{State: StateOK}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}
