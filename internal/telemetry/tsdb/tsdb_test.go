package tsdb

import (
	"context"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock hands out strictly advancing times one second apart.
type fakeClock struct {
	t time.Time
}

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) tick(d time.Duration) { c.t = c.t.Add(d) }

func TestSamplerScrapesCountersAndDerivesRates(t *testing.T) {
	reg := telemetry.NewRegistry()
	ops := reg.Counter("ops_total", "")
	clk := newClock()
	s := New(reg, Config{Now: clk.now, NoGauges: true})

	for i := 0; i < 5; i++ {
		ops.Add(10) // 10 ops per scrape interval (1s apart)
		clk.tick(time.Second)
		s.Scrape()
	}
	raw := s.DB().Query("ops_total", 0)
	if len(raw) != 5 || raw[0].V != 10 || raw[4].V != 50 {
		t.Fatalf("raw points = %+v, want 5 cumulative readings 10..50", raw)
	}
	rates := s.DB().Query("ops_total:rate", 0)
	if len(rates) != 4 {
		t.Fatalf("rate points = %+v, want 4", rates)
	}
	for _, p := range rates {
		if p.V < 9.99 || p.V > 10.01 {
			t.Fatalf("rate = %g, want ~10/s", p.V)
		}
	}
	// `from` filters: only points at or after the 4th scrape.
	if got := s.DB().Query("ops_total", raw[3].T); len(got) != 2 {
		t.Fatalf("from-filtered query = %+v, want 2 points", got)
	}
}

func TestSamplerHistogramQuantilesFromDeltas(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat_seconds", "", 0.01, 0.1, 1)
	clk := newClock()
	s := New(reg, Config{Now: clk.now, NoGauges: true})

	clk.tick(time.Second)
	s.Scrape() // empty baseline
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in (0.01, 0.1]
	}
	clk.tick(time.Second)
	s.Scrape()
	clk.tick(time.Second)
	s.Scrape() // no new observations: interval skipped in derived series

	p99 := s.DB().Query("lat_seconds:p99", 0)
	if len(p99) != 1 {
		t.Fatalf("p99 points = %+v, want exactly 1 (empty intervals skipped)", p99)
	}
	if p99[0].V <= 0.01 || p99[0].V > 0.1 {
		t.Fatalf("p99 = %g, want inside covering bucket (0.01, 0.1]", p99[0].V)
	}
	// Raw histogram query reads the cumulative count.
	raw := s.DB().Query("lat_seconds", 0)
	if len(raw) != 3 || raw[2].V != 100 {
		t.Fatalf("raw histogram points = %+v, want counts 0,100,100", raw)
	}
	if got := s.DB().Query("lat_seconds:p42", 0); got != nil {
		t.Fatalf("unknown quantile suffix returned %+v", got)
	}
}

func TestDBPointRingOverwrites(t *testing.T) {
	db := NewDB(4, 3)
	for i := int64(1); i <= 5; i++ {
		db.Record(i, []telemetry.Sample{{Name: "g", Type: telemetry.TypeGauge, Value: float64(i)}})
	}
	pts := db.Query("g", 0)
	if len(pts) != 3 || pts[0].T != 3 || pts[2].T != 5 {
		t.Fatalf("ring points = %+v, want times 3..5 oldest-first", pts)
	}
}

func TestDBSeriesCap(t *testing.T) {
	db := NewDB(2, 8)
	db.Record(1, []telemetry.Sample{
		{Name: "a", Type: telemetry.TypeGauge, Value: 1},
		{Name: "b", Type: telemetry.TypeGauge, Value: 2},
		{Name: "c", Type: telemetry.TypeGauge, Value: 3},
	})
	nseries, npoints, dropped := db.Stats()
	if nseries != 2 || npoints != 2 || dropped != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2 series, 2 points, 1 dropped", nseries, npoints, dropped)
	}
	if db.Query("c", 0) != nil {
		t.Fatal("capped-out series should not exist")
	}
	list := db.List()
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Fatalf("list = %+v, want [a b]", list)
	}
}

func TestCounterDeltaWindows(t *testing.T) {
	db := NewDB(8, 16)
	rec := func(t int64, ok, bad float64) {
		db.Record(t*1e9, []telemetry.Sample{
			{Name: `req{code="200"}`, Type: telemetry.TypeCounter, Value: ok},
			{Name: `req{code="500"}`, Type: telemetry.TypeCounter, Value: bad},
		})
	}
	rec(1, 10, 0)
	rec(2, 20, 1)
	rec(3, 30, 3)
	now := int64(3 * 1e9)

	// Window covering the last 2s: baseline is the t=1 reading.
	if d, ok := db.CounterDelta("req", "", 2*1e9, now); !ok || d != 23 {
		t.Fatalf("total delta = %g/%v, want 23", d, ok)
	}
	if d, ok := db.CounterDelta("req", `code="500"`, 2*1e9, now); !ok || d != 3 {
		t.Fatalf("bad delta = %g/%v, want 3", d, ok)
	}
	// Window longer than the series' life: counters count from zero.
	if d, _ := db.CounterDelta("req", `code="200"`, 100*1e9, now); d != 30 {
		t.Fatalf("young-series delta = %g, want full value 30", d)
	}
	if _, ok := db.CounterDelta("absent", "", 1e9, now); ok {
		t.Fatal("absent prefix should not match")
	}
}

func TestCounterDeltaAfterEviction(t *testing.T) {
	// Ring bound 3: by t=5 the t<=2 readings are gone, so a 100s window
	// must fall back to the oldest retained reading, not zero.
	db := NewDB(2, 3)
	for i := int64(1); i <= 5; i++ {
		db.Record(i*1e9, []telemetry.Sample{{Name: "c", Type: telemetry.TypeCounter, Value: float64(10 * i)}})
	}
	d, ok := db.CounterDelta("c", "", 100*1e9, 5*1e9)
	if !ok || d != 20 { // 50 - 30 (oldest retained), not 50 - 0
		t.Fatalf("post-eviction delta = %g/%v, want 20", d, ok)
	}
}

func TestHistogramDeltaAndGaugeOver(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", "", 0.01, 0.1)
	depth := reg.Gauge("queue_depth", "")
	clk := newClock()
	s := New(reg, Config{Now: clk.now, NoGauges: true})

	h.Observe(0.005)
	depth.Set(1)
	clk.tick(time.Second)
	s.Scrape()
	h.Observe(0.05)
	h.Observe(0.05)
	depth.Set(9)
	clk.tick(time.Second)
	s.Scrape()
	now := clk.now().UnixNano()

	d, ok := s.DB().HistogramDelta("lat", int64(time.Second), now)
	if !ok || d.Count != 2 {
		t.Fatalf("windowed delta count = %d/%v, want 2", d.Count, ok)
	}
	if f := d.FractionLE(0.01); f != 0 {
		t.Fatalf("windowed FractionLE(0.01) = %g, want 0 (only slow obs in window)", f)
	}
	full, ok := s.DB().HistogramDelta("lat", int64(time.Hour), now)
	if !ok || full.Count != 3 {
		t.Fatalf("lifetime delta count = %d/%v, want 3", full.Count, ok)
	}
	over, total := s.DB().GaugeOver("queue_depth", "", 8, int64(2*time.Second), now)
	if total != 2 || over != 1 {
		t.Fatalf("gauge over = %d/%d, want 1 of 2", over, total)
	}
}

func TestSamplerGaugesAndRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("x_total", "").Inc()
	var onSampleCalls int
	s := New(reg, Config{
		Interval: time.Millisecond,
		OnSample: func(time.Time) { onSampleCalls++ },
	})
	s.Scrape()
	if nseries, _, _ := s.DB().Stats(); nseries != 3 {
		// x_total plus the two self-describing tsdb gauges.
		t.Fatalf("series = %d, want 3 (counter + 2 tsdb gauges)", nseries)
	}
	if onSampleCalls != 1 {
		t.Fatalf("OnSample ran %d times, want 1", onSampleCalls)
	}
	if pts := s.DB().Query("brainy_tsdb_series", 0); len(pts) != 1 {
		t.Fatalf("tsdb gauge not self-sampled: %+v", pts)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, npoints, _ := s.DB().Stats(); npoints >= 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Run produced no scrapes")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}

// TestNilSamplerZeroAlloc pins the disabled contract: a nil sampler and nil
// DB are allocation-free no-ops on every path the serving tier calls.
func TestNilSamplerZeroAlloc(t *testing.T) {
	var s *Sampler
	var db *DB
	if allocs := testing.AllocsPerRun(200, func() {
		s.Scrape()
		s.Run(context.Background())
		if s.DB() != nil {
			t.Fatal("nil sampler DB not nil")
		}
		s.Interval()
		db.Record(1, nil)
		if db.Query("x", 0) != nil || db.List() != nil {
			t.Fatal("nil DB returned data")
		}
		db.Stats()
		db.CounterDelta("x", "", 1, 2)
		db.HistogramDelta("x", 1, 2)
		db.GaugeOver("x", "", 1, 1, 2)
	}); allocs != 0 {
		t.Fatalf("disabled sampler allocated %.1f/op, want 0", allocs)
	}
}
