package tsdb

import "strings"

// sparkLevels are the eight block glyphs a sparkline quantizes into.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a unicode sparkline, scaled to the slice's own
// min/max. A flat series renders at mid-height rather than as all-max: the
// interesting signal is variation, and a row of full blocks reads as a
// spike that never happened. Empty input renders "".
func Spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	if hi == lo {
		for range vals {
			b.WriteRune(sparkLevels[3])
		}
		return b.String()
	}
	scale := float64(len(sparkLevels)-1) / (hi - lo)
	for _, v := range vals {
		b.WriteRune(sparkLevels[int((v-lo)*scale+0.5)])
	}
	return b.String()
}

// SparkPoints renders a point series' values as a sparkline.
func SparkPoints(pts []Point) string {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.V
	}
	return Spark(vals)
}
