// Package tsdb is a tiny in-process time-series store: bounded per-series
// rings of (unix_nanos, value) points scraped from a telemetry.Registry by a
// Sampler. It gives the advisor the time dimension its own thesis demands —
// /metrics is a cumulative snapshot, but verdicts about the serving system
// (SLO burn rates, p99 trends, drift of the advisor itself) need windows.
//
// Counters are stored raw and differentiated on read; histograms retain
// their full bucket snapshots so any window's p50/p90/p99 comes from
// cumulative-bucket interpolation over a snapshot delta, the same
// opstats.HistogramSnapshot.Quantile every other consumer uses. Series and
// point counts are hard-capped: the store is a crash-cart of recent history,
// not a database.
package tsdb

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/opstats"
	"repro/internal/telemetry"
)

// Point is one scalar reading.
type Point struct {
	T int64   `json:"t"` // unix nanos
	V float64 `json:"v"`
}

// SeriesInfo describes one retained series for catalog listings.
type SeriesInfo struct {
	Name   string               `json:"name"`
	Type   telemetry.MetricType `json:"type"`
	Points int                  `json:"points"`
}

// series is one bounded ring of points. Scalar series fill vals; histogram
// series fill hists (Point queries then read the cumulative sample count).
type series struct {
	typ   telemetry.MetricType
	times []int64
	vals  []float64
	hists []opstats.HistogramSnapshot
	next  int
	full  bool
}

// cap here is the ring bound (len(times) once full).
func (s *series) push(bound int, t int64, v float64, h *opstats.HistogramSnapshot) {
	if len(s.times) < bound {
		s.times = append(s.times, t)
		s.vals = append(s.vals, v)
		if s.typ == telemetry.TypeHistogram {
			s.hists = append(s.hists, *h)
		}
		return
	}
	s.times[s.next] = t
	s.vals[s.next] = v
	if s.typ == telemetry.TypeHistogram {
		s.hists[s.next] = *h
	}
	s.next = (s.next + 1) % bound
	s.full = true
}

// ordered returns the retained point indices oldest-first.
func (s *series) ordered() []int {
	n := len(s.times)
	idx := make([]int, 0, n)
	if s.full {
		for i := s.next; i < n; i++ {
			idx = append(idx, i)
		}
		for i := 0; i < s.next; i++ {
			idx = append(idx, i)
		}
	} else {
		for i := 0; i < n; i++ {
			idx = append(idx, i)
		}
	}
	return idx
}

// DB holds the retained series. All methods are safe for concurrent use and
// on a nil *DB (queries return nothing), so a disabled store is a nil
// pointer.
type DB struct {
	maxSeries int
	maxPoints int

	mu            sync.Mutex
	series        map[string]*series
	droppedSeries uint64
}

// NewDB builds a store bounded at maxSeries rings of maxPoints points each.
func NewDB(maxSeries, maxPoints int) *DB {
	if maxSeries < 1 {
		maxSeries = 1
	}
	if maxPoints < 2 {
		maxPoints = 2 // rates and deltas need two points
	}
	return &DB{
		maxSeries: maxSeries,
		maxPoints: maxPoints,
		series:    make(map[string]*series),
	}
}

// Record appends one scrape's samples at time t (unix nanos). Samples for
// series beyond the hard cap are dropped and counted, never partially
// admitted: a series either exists with full history or not at all.
func (db *DB) Record(t int64, samples []telemetry.Sample) {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for i := range samples {
		sm := &samples[i]
		sr, ok := db.series[sm.Name]
		if !ok {
			if len(db.series) >= db.maxSeries {
				db.droppedSeries++
				continue
			}
			sr = &series{typ: sm.Type}
			db.series[sm.Name] = sr
		}
		sr.push(db.maxPoints, t, sm.Value, sm.Hist)
	}
}

// Stats reports the store occupancy: series count, total retained points,
// and series dropped by the cap.
func (db *DB) Stats() (nseries, npoints int, dropped uint64) {
	if db == nil {
		return 0, 0, 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range db.series {
		npoints += len(s.times)
	}
	return len(db.series), npoints, db.droppedSeries
}

// List returns the catalog of retained series, name-sorted.
func (db *DB) List() []SeriesInfo {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	out := make([]SeriesInfo, 0, len(db.series))
	for name, s := range db.series {
		out = append(out, SeriesInfo{Name: name, Type: s.typ, Points: len(s.times)})
	}
	db.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// quantileSuffixes maps derived-series suffixes to quantiles.
var quantileSuffixes = map[string]float64{"p50": 0.50, "p90": 0.90, "p99": 0.99}

// Query returns the points of one series at or after `from` (unix nanos),
// oldest first. Beyond raw series names it serves derived series:
//
//	name:rate           per-second increase of a counter between scrapes
//	name:p50|:p90|:p99  windowed quantile of a histogram, interpolated from
//	                    the bucket delta between consecutive snapshots
//	                    (scrape intervals with no observations are skipped)
//
// Raw histogram names yield their cumulative sample count. Unknown names
// return nil.
func (db *DB) Query(name string, from int64) []Point {
	if db == nil {
		return nil
	}
	base, derive := name, ""
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		base, derive = name[:i], name[i+1:]
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[base]
	if !ok {
		return nil
	}
	idx := s.ordered()
	switch {
	case derive == "":
		var out []Point
		for _, i := range idx {
			if s.times[i] >= from {
				out = append(out, Point{T: s.times[i], V: s.vals[i]})
			}
		}
		return out
	case derive == "rate" && s.typ == telemetry.TypeCounter:
		var out []Point
		for k := 1; k < len(idx); k++ {
			i, j := idx[k-1], idx[k]
			if s.times[j] < from {
				continue
			}
			dt := float64(s.times[j]-s.times[i]) / 1e9
			if dt <= 0 {
				continue
			}
			dv := s.vals[j] - s.vals[i]
			if dv < 0 {
				dv = 0 // counter reset
			}
			out = append(out, Point{T: s.times[j], V: dv / dt})
		}
		return out
	default:
		q, ok := quantileSuffixes[derive]
		if !ok || s.typ != telemetry.TypeHistogram {
			return nil
		}
		var out []Point
		for k := 1; k < len(idx); k++ {
			i, j := idx[k-1], idx[k]
			if s.times[j] < from {
				continue
			}
			d := s.hists[j].Sub(s.hists[i])
			if d.Count == 0 {
				continue
			}
			out = append(out, Point{T: s.times[j], V: d.Quantile(q)})
		}
		return out
	}
}

// baseline returns the index (into the ring storage) of the reading to
// difference against for a window ending now and starting at `start`: the
// latest point at or before start, else — when history was evicted — the
// oldest retained point, else -1 meaning "the series is younger than the
// window; counters started from zero".
func (s *series) baseline(idx []int, start int64) int {
	best := -1
	for _, i := range idx {
		if s.times[i] <= start {
			best = i
		} else {
			break
		}
	}
	if best < 0 && s.full && len(idx) > 0 {
		return idx[0]
	}
	return best
}

// CounterDelta sums, over every counter series whose name matches prefix
// (and, when non-empty, contains `contains`), the increase across the
// window [now-window, now]. Series younger than the window contribute their
// full value: counters start at zero with the process. The bool reports
// whether any series matched with at least one point.
func (db *DB) CounterDelta(prefix, contains string, window, now int64) (float64, bool) {
	if db == nil {
		return 0, false
	}
	start := now - window
	db.mu.Lock()
	defer db.mu.Unlock()
	var sum float64
	matched := false
	for name, s := range db.series {
		if s.typ != telemetry.TypeCounter || !strings.HasPrefix(name, prefix) {
			continue
		}
		if contains != "" && !strings.Contains(name, contains) {
			continue
		}
		idx := s.ordered()
		if len(idx) == 0 {
			continue
		}
		matched = true
		last := s.vals[idx[len(idx)-1]]
		var base float64
		if b := s.baseline(idx, start); b >= 0 {
			base = s.vals[b]
		}
		if d := last - base; d > 0 {
			sum += d
		}
	}
	return sum, matched
}

// HistogramDelta returns the bucket-resolved distribution of everything a
// histogram observed inside the window [now-window, now]. When the series
// is younger than the window the delta is the cumulative snapshot.
func (db *DB) HistogramDelta(name string, window, now int64) (opstats.HistogramSnapshot, bool) {
	if db == nil {
		return opstats.HistogramSnapshot{}, false
	}
	start := now - window
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[name]
	if !ok || s.typ != telemetry.TypeHistogram {
		return opstats.HistogramSnapshot{}, false
	}
	idx := s.ordered()
	if len(idx) == 0 {
		return opstats.HistogramSnapshot{}, false
	}
	last := s.hists[idx[len(idx)-1]]
	if b := s.baseline(idx, start); b >= 0 {
		return last.Sub(s.hists[b]), true
	}
	return last, true
}

// GaugeOver counts, among a gauge series' readings inside the window
// [now-window, now], how many sit at or above threshold. Matching uses the
// same prefix/contains selector as CounterDelta so sharded gauges
// (`brainy_shard_queue_depth`-style families) aggregate across children.
func (db *DB) GaugeOver(prefix, contains string, threshold float64, window, now int64) (over, total int) {
	if db == nil {
		return 0, 0
	}
	start := now - window
	db.mu.Lock()
	defer db.mu.Unlock()
	for name, s := range db.series {
		if s.typ != telemetry.TypeGauge || !strings.HasPrefix(name, prefix) {
			continue
		}
		if contains != "" && !strings.Contains(name, contains) {
			continue
		}
		for _, i := range s.ordered() {
			if s.times[i] < start || s.times[i] > now {
				continue
			}
			total++
			if s.vals[i] >= threshold {
				over++
			}
		}
	}
	return over, total
}
