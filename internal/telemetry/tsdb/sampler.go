package tsdb

import (
	"context"
	"time"

	"repro/internal/telemetry"
)

// Config bounds and paces a Sampler.
type Config struct {
	// Interval between scrapes (default 1s).
	Interval time.Duration
	// MaxSeries is the hard series cap (default 512). Samples for series
	// beyond it are dropped and counted.
	MaxSeries int
	// MaxPoints bounds each series' ring (default 360 — six minutes of
	// history at the default interval).
	MaxPoints int
	// Now is the clock (default time.Now); tests inject one.
	Now func() time.Time
	// OnSample, when set, runs after every scrape with the scrape time —
	// the hook SLO evaluation hangs off so verdict cadence equals sample
	// cadence.
	OnSample func(now time.Time)
	// NoGauges suppresses registering brainy_tsdb_series and
	// brainy_tsdb_points on the scraped registry (they read the store's
	// occupancy at exposition time). Tests that build several samplers
	// over one registry set it to dodge the register-once panic.
	NoGauges bool
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 512
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = 360
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Sampler scrapes a telemetry.Registry into a DB at a fixed cadence. A nil
// *Sampler is the disabled sampler: every method is an allocation-free
// no-op, matching the repository's nil-disabled observability contract.
type Sampler struct {
	reg      *telemetry.Registry
	db       *DB
	interval time.Duration
	now      func() time.Time
	onSample func(time.Time)
}

// New builds a sampler over reg and its backing store, and (unless
// cfg.NoGauges) registers the store's occupancy gauges on reg so the store
// reports on itself through the pipeline it feeds.
func New(reg *telemetry.Registry, cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	db := NewDB(cfg.MaxSeries, cfg.MaxPoints)
	s := &Sampler{
		reg:      reg,
		db:       db,
		interval: cfg.Interval,
		now:      cfg.Now,
		onSample: cfg.OnSample,
	}
	if !cfg.NoGauges {
		reg.GaugeFunc("brainy_tsdb_series", "Time series retained by the in-process store.",
			func() float64 { n, _, _ := db.Stats(); return float64(n) })
		reg.GaugeFunc("brainy_tsdb_points", "Points retained across all in-process time series.",
			func() float64 { _, n, _ := db.Stats(); return float64(n) })
	}
	return s
}

// DB returns the backing store (nil on a nil sampler).
func (s *Sampler) DB() *DB {
	if s == nil {
		return nil
	}
	return s.db
}

// Interval reports the scrape cadence (0 on a nil sampler).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Scrape takes one sample of every registry metric at the configured
// clock's current time and invokes the OnSample hook.
func (s *Sampler) Scrape() {
	if s == nil {
		return
	}
	now := s.now()
	s.db.Record(now.UnixNano(), s.reg.Samples())
	if s.onSample != nil {
		s.onSample(now)
	}
}

// Run scrapes every interval until ctx is done. The first scrape happens
// one interval in, not immediately: a t=0 point would make every
// first-window rate look like a spike.
func (s *Sampler) Run(ctx context.Context) {
	if s == nil {
		return
	}
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.Scrape()
		}
	}
}
