package featsel

import (
	"math"
	"testing"
)

// TestFindsInformativeFeatures: fitness rewards weight on features 0 and 2
// and penalizes weight elsewhere; the GA must discover that.
func TestFindsInformativeFeatures(t *testing.T) {
	fit := func(w []float64) float64 {
		return w[0] + w[2] - 0.5*(w[1]+w[3]+w[4])
	}
	cfg := DefaultConfig()
	cfg.Generations = 30
	res := Run(5, fit, cfg)
	if res.Best[0] < 0.8 || res.Best[2] < 0.8 {
		t.Fatalf("informative features underweighted: %v", res.Best)
	}
	if res.Best[1] > 0.3 || res.Best[3] > 0.3 {
		t.Fatalf("noise features overweighted: %v", res.Best)
	}
	top := TopK(res.Best, []string{"a", "b", "c", "d", "e"}, 2)
	if !(top[0] == "a" || top[0] == "c") || !(top[1] == "a" || top[1] == "c") {
		t.Fatalf("TopK = %v", top)
	}
}

func TestHistoryMonotoneWithElitism(t *testing.T) {
	fit := func(w []float64) float64 {
		var s float64
		for _, x := range w {
			s -= math.Abs(x - 0.5)
		}
		return s
	}
	cfg := DefaultConfig()
	cfg.Generations = 15
	res := Run(8, fit, cfg)
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1]-1e-12 {
			t.Fatalf("best fitness regressed at gen %d: %v", i, res.History)
		}
	}
	if res.Score != res.History[len(res.History)-1] {
		t.Fatal("final score does not match history")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	fit := func(w []float64) float64 { return w[0] }
	cfg := DefaultConfig()
	a := Run(3, fit, cfg)
	b := Run(3, fit, cfg)
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("same seed, different chromosomes")
		}
	}
}

func TestGenesStayInRange(t *testing.T) {
	fit := func(w []float64) float64 { return w[0] - w[1] }
	cfg := DefaultConfig()
	cfg.Generations = 20
	cfg.MutateRate = 0.9
	cfg.MutateSigma = 2.0
	res := Run(4, fit, cfg)
	for i, g := range res.Best {
		if g < 0 || g > 1 {
			t.Fatalf("gene %d = %f out of [0,1]", i, g)
		}
	}
}

func TestRankSorted(t *testing.T) {
	r := Rank([]float64{0.1, 0.9, 0.5}, []string{"x", "y", "z"})
	if r[0].Name != "y" || r[1].Name != "z" || r[2].Name != "x" {
		t.Fatalf("rank = %v", r)
	}
}

func TestRankPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths accepted")
		}
	}()
	Rank([]float64{1}, []string{"a", "b"})
}

func TestTopKClamped(t *testing.T) {
	top := TopK([]float64{0.3, 0.7}, []string{"a", "b"}, 10)
	if len(top) != 2 || top[0] != "b" {
		t.Fatalf("TopK = %v", top)
	}
}

func TestDegenerateConfigs(t *testing.T) {
	fit := func(w []float64) float64 { return w[0] }
	cfg := Config{Population: 1, Generations: 2, Elite: 5, Tournament: 0, Seed: 1}
	res := Run(2, fit, cfg) // must not panic; config gets clamped
	if len(res.Best) != 2 {
		t.Fatalf("best = %v", res.Best)
	}
}
