// Package featsel implements the evolutionary feature selection of
// Section 5.1: a genetic algorithm whose chromosomes are real-valued
// per-feature weights (not binary strings), so the result both selects and
// ranks features. Selection is by tournament, crossover blends parents, and
// Gaussian mutation keeps the search out of local optima. Table 3's top-5
// feature lists are the sorted weights of the best chromosome.
package featsel

import (
	"fmt"
	"math/rand"
	"sort"
)

// Config controls the evolutionary search.
type Config struct {
	Population  int
	Generations int
	Elite       int     // chromosomes copied unchanged each generation
	Tournament  int     // tournament size for parent selection
	MutateRate  float64 // per-gene mutation probability
	MutateSigma float64 // Gaussian mutation step
	Seed        int64
}

// DefaultConfig returns a small but effective search budget.
func DefaultConfig() Config {
	return Config{
		Population:  16,
		Generations: 10,
		Elite:       2,
		Tournament:  3,
		MutateRate:  0.15,
		MutateSigma: 0.25,
		Seed:        1,
	}
}

// Fitness evaluates a chromosome (a per-feature weight vector in [0,1]);
// higher is better. For Brainy this is the validation accuracy of an ANN
// trained with the chromosome installed as the feature mask.
type Fitness func(weights []float64) float64

// Result is the outcome of a run.
type Result struct {
	Best    []float64 // best chromosome found
	Score   float64   // its fitness
	History []float64 // best fitness per generation
}

// Run evolves chromosomes of the given length against fit.
func Run(numFeatures int, fit Fitness, cfg Config) Result {
	if numFeatures <= 0 {
		panic("featsel: numFeatures must be positive")
	}
	if cfg.Population < 2 {
		cfg.Population = 2
	}
	if cfg.Tournament < 1 {
		cfg.Tournament = 2
	}
	if cfg.Elite >= cfg.Population {
		cfg.Elite = cfg.Population - 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type indiv struct {
		genes []float64
		score float64
	}
	newIndiv := func() indiv {
		g := make([]float64, numFeatures)
		for i := range g {
			g[i] = rng.Float64()
		}
		return indiv{genes: g}
	}
	pop := make([]indiv, cfg.Population)
	for i := range pop {
		pop[i] = newIndiv()
		pop[i].score = fit(pop[i].genes)
	}
	sortPop := func() {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].score > pop[j].score })
	}
	sortPop()

	tournament := func() indiv {
		best := pop[rng.Intn(len(pop))]
		for i := 1; i < cfg.Tournament; i++ {
			c := pop[rng.Intn(len(pop))]
			if c.score > best.score {
				best = c
			}
		}
		return best
	}
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}

	var history []float64
	for gen := 0; gen < cfg.Generations; gen++ {
		next := make([]indiv, 0, cfg.Population)
		for i := 0; i < cfg.Elite; i++ {
			next = append(next, pop[i])
		}
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := make([]float64, numFeatures)
			mix := rng.Float64()
			for g := range child {
				// Blend crossover.
				child[g] = clamp(mix*a.genes[g] + (1-mix)*b.genes[g])
				// Gaussian mutation.
				if rng.Float64() < cfg.MutateRate {
					child[g] = clamp(child[g] + rng.NormFloat64()*cfg.MutateSigma)
				}
			}
			next = append(next, indiv{genes: child, score: fit(child)})
		}
		pop = next
		sortPop()
		history = append(history, pop[0].score)
	}
	return Result{Best: pop[0].genes, Score: pop[0].score, History: history}
}

// Ranked pairs a feature name with its evolved weight.
type Ranked struct {
	Name   string
	Weight float64
}

// Rank sorts features by descending weight. names must parallel weights.
func Rank(weights []float64, names []string) []Ranked {
	if len(weights) != len(names) {
		panic(fmt.Sprintf("featsel: %d weights but %d names", len(weights), len(names)))
	}
	out := make([]Ranked, len(weights))
	for i := range weights {
		out[i] = Ranked{Name: names[i], Weight: weights[i]}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out
}

// TopK returns the k highest-weighted feature names, the Table 3 view.
func TopK(weights []float64, names []string, k int) []string {
	r := Rank(weights, names)
	if k > len(r) {
		k = len(r)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = r[i].Name
	}
	return out
}
