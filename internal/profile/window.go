package profile

// This file gives the profiler a time axis. The paper's analysis (and this
// repository's Snapshot path) reduces a whole run to one feature vector per
// container instance, so an instance whose workload shifts mid-run — a
// build phase followed by a query phase — gets a single blended label.
// Snapshot windows fix that: every N interface invocations the container
// emits the *delta* of its software features and hardware counters since
// the previous window, producing a per-instance feature timeline that
// downstream consumers (the drift detector, the advisor's ingestion
// endpoint, brainy-top) can watch move.
//
// Windowing is off by default and follows the nil-disabled pattern of
// telemetry.Tracer: a container without a window state pays one nil check
// per operation and allocates nothing.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/machine"
	"repro/internal/opstats"
)

// WindowRecord is one snapshot window: the software-feature and
// hardware-counter delta of one container instance over a span of
// interface operations. The embedded Profile holds the delta, so a window
// is itself a valid model input (its Vector() describes just that span of
// the run) and a window stream decodes through the ordinary DecodeRecords
// path; the window_* fields carry the position of the delta on the
// instance's timeline.
type WindowRecord struct {
	Profile
	// Instance is the construction ordinal of this container at its
	// context, distinguishing timelines when one site allocates many
	// containers.
	Instance int `json:"instance"`
	// Seq numbers the instance's windows from zero in emission order.
	Seq int `json:"window_seq"`
	// StartOp and EndOp delimit the window in cumulative interface
	// invocations of the instance: the window covers (StartOp, EndOp].
	StartOp uint64 `json:"window_start_op"`
	EndOp   uint64 `json:"window_end_op"`
	// Len is the container's length when the window closed.
	Len int `json:"window_len"`
}

// Ops returns the number of interface invocations the window covers.
func (w *WindowRecord) Ops() uint64 { return w.EndOp - w.StartOp }

// InstanceKey identifies the timeline the window belongs to:
// "context#instance".
func (w *WindowRecord) InstanceKey() string {
	return w.Context + "#" + strconv.Itoa(w.Instance)
}

// WindowSink receives finished windows. Implementations must copy the
// record if they retain it — the pointer is only valid for the call — and
// must be safe for concurrent use when containers on different machines
// share one sink.
type WindowSink interface {
	EmitWindow(*WindowRecord)
}

// windowState is the per-container window clock: how often to emit, the
// cumulative snapshots the next delta subtracts from, and where finished
// windows go.
type windowState struct {
	every     uint64 // interface invocations per window
	sinceLast uint64 // invocations since the last window closed
	ops       uint64 // cumulative invocations
	seq       int
	startOp   uint64 // cumulative invocation count at window open
	lastStats opstats.Stats
	lastHW    machine.Counters
	instance  int
	sink      WindowSink
}

// EnableWindows turns on snapshot windows for the container: every `every`
// interface invocations a WindowRecord is emitted to sink. instance is the
// construction ordinal at the container's context (0 for the first).
// Operations performed before the call — including construction cost —
// land in the first window. Panics on every < 1 or a nil sink; use a nil
// *windowState (the default) to keep windowing off.
func (c *Container) EnableWindows(every, instance int, sink WindowSink) {
	if every < 1 {
		panic(fmt.Sprintf("profile: window size %d < 1", every))
	}
	if sink == nil {
		panic("profile: EnableWindows with nil sink")
	}
	c.win = &windowState{
		every:    uint64(every),
		instance: instance,
		sink:     sink,
	}
}

// tickWindow advances the window clock by one interface invocation and
// closes the window at the boundary. Between boundaries it touches only
// two integers, so an enabled container still allocates nothing except
// when a window actually closes.
func (c *Container) tickWindow() {
	w := c.win
	w.ops++
	w.sinceLast++
	if w.sinceLast < w.every {
		return
	}
	c.closeWindow()
}

// FlushWindow closes the current partial window, emitting whatever
// operations have accumulated since the last boundary. End-of-run code
// calls it so the tail of a timeline is not silently dropped; it is a
// no-op when windowing is off or no operation has happened since the last
// boundary.
func (c *Container) FlushWindow() {
	if c.win == nil || c.win.sinceLast == 0 {
		return
	}
	c.closeWindow()
}

// ReanchorWindow resets the window delta baselines to the inner container's
// current statistics. The adaptive container calls it after hot-swapping
// its backend: the retired backend's cumulative statistics leave with it,
// so without re-anchoring the next closeWindow would subtract the old
// (larger) baseline from the fresh backend's near-zero counters and
// underflow. A no-op when windowing is off; the op axis (seq, startOp) is
// preserved so the timeline stays continuous across the swap.
func (c *Container) ReanchorWindow() {
	if c.win == nil {
		return
	}
	c.win.lastStats = *c.inner.Stats()
	c.win.lastHW = c.hw
}

// closeWindow materializes the delta since the previous boundary and hands
// it to the sink.
func (c *Container) closeWindow() {
	w := c.win
	cur := *c.inner.Stats()
	rec := WindowRecord{
		Profile: Profile{
			Context:    c.context,
			Kind:       c.inner.Kind(),
			OrderAware: c.orderAware,
			Stats:      cur.Sub(w.lastStats),
			HW:         c.hw.Sub(w.lastHW),
			LineBytes:  c.mach.Config().L1Line,
		},
		Instance: w.instance,
		Seq:      w.seq,
		StartOp:  w.startOp,
		EndOp:    w.ops,
		Len:      c.inner.Len(),
	}
	rec.Cycles = rec.HW.Cycles
	w.lastStats = cur
	w.lastHW = c.hw
	w.seq++
	w.startOp = w.ops
	w.sinceLast = 0
	w.sink.EmitWindow(&rec)
}

// WindowRing is a bounded, concurrency-safe ring buffer of the most recent
// windows — the in-process retention tier. A full ring overwrites its
// oldest record, so memory stays capped no matter how long the run.
type WindowRing struct {
	mu    sync.Mutex
	buf   []WindowRecord
	next  int
	total uint64
}

// NewWindowRing builds a ring holding at most capacity windows.
func NewWindowRing(capacity int) *WindowRing {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: window ring capacity %d < 1", capacity))
	}
	return &WindowRing{buf: make([]WindowRecord, 0, capacity)}
}

// EmitWindow implements WindowSink.
func (r *WindowRing) EmitWindow(w *WindowRecord) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, *w)
	} else {
		r.buf[r.next] = *w
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Records returns the retained windows, oldest first.
func (r *WindowRing) Records() []WindowRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WindowRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many windows were emitted over the ring's lifetime,
// including ones already overwritten.
func (r *WindowRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// SnapshotExporter streams windows as JSON lines, the repository's
// trace-file convention — the durable tier next to WindowRing's in-process
// one. Writes are buffered; call Flush (or Close) before reading the file.
// The first write error sticks and is reported by Close, mirroring
// telemetry.JSONLinesExporter.
type SnapshotExporter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewSnapshotExporter wraps w. If w is also an io.Closer, Close closes it.
func NewSnapshotExporter(w io.Writer) *SnapshotExporter {
	e := &SnapshotExporter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		e.c = c
	}
	return e
}

// EmitWindow implements WindowSink.
func (e *SnapshotExporter) EmitWindow(w *WindowRecord) {
	b, err := json.Marshal(w)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	if err != nil {
		e.err = err
		return
	}
	b = append(b, '\n')
	if _, err := e.bw.Write(b); err != nil {
		e.err = err
	}
}

// Flush drains the buffer to the underlying writer.
func (e *SnapshotExporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	return e.bw.Flush()
}

// Close flushes and closes the underlying writer (when it is closable),
// returning the first error the exporter hit.
func (e *SnapshotExporter) Close() error {
	ferr := e.Flush()
	if e.c != nil {
		if cerr := e.c.Close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}

// multiSink fans one window out to several sinks in order.
type multiSink []WindowSink

// EmitWindow implements WindowSink.
func (m multiSink) EmitWindow(w *WindowRecord) {
	for _, s := range m {
		s.EmitWindow(w)
	}
}

// MultiWindowSink combines sinks: each window goes to every sink, in
// argument order. Nil sinks are skipped; with zero or one live sink no
// wrapper is allocated.
func MultiWindowSink(sinks ...WindowSink) WindowSink {
	live := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// WriteWindows serializes windows as JSON lines, the batch dual of
// SnapshotExporter for callers that already hold a slice (a ring drain, a
// test fixture).
func WriteWindows(w io.Writer, windows []WindowRecord) error {
	enc := json.NewEncoder(w)
	for i := range windows {
		if err := enc.Encode(&windows[i]); err != nil {
			return fmt.Errorf("profile: encoding window record %d: %w", i, err)
		}
	}
	return nil
}

// DecodeWindows streams window records from r, calling fn once per record.
// It accepts the same two wire forms as DecodeRecords (JSON lines or one
// JSON array) and has the same callback-error contract. Records are not
// reordered: interleaved instances and out-of-order sequence numbers are
// the caller's concern, which keeps the decoder usable on live streams.
func DecodeWindows(r io.Reader, fn func(*WindowRecord) error) error {
	return decodeStream(r, "window", fn)
}

// ReadWindows parses a complete window stream into a slice.
func ReadWindows(r io.Reader) ([]WindowRecord, error) {
	var out []WindowRecord
	err := DecodeWindows(r, func(w *WindowRecord) error {
		out = append(out, *w)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
