// Package profile turns raw container statistics and machine counters into
// the feature vectors Brainy's models consume, and implements the profiling
// wrapper that stands in for the paper's modified libstdc++: a container
// whose interface functions record software features while the simulated
// machine records hardware features, tagged with the calling context of the
// container's construction site.
package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/opstats"
)

// FeatureNames lists, in order, every feature the models see. The first
// block are software features from instrumentation; the block after
// "l1_miss_rate" are hardware features from the (simulated) performance
// counters. Keep in sync with Vector().
var FeatureNames = []string{
	// Software: interface invocation mix (fractions of total calls).
	"insert", "erase", "find", "iterate",
	"push_back", "push_front", "pop_back", "pop_front", "at",
	// Software: per-op costs (average elements touched per invocation).
	"insert_cost", "erase_cost", "find_cost", "iterate_cost",
	// Software: structural events.
	"resizing", "rehashes", "rotations",
	"max_len", "elem_size", "data_size/cache_block_size",
	// Hardware: performance counters.
	"l1_miss_rate", "l2_miss_rate", "tlb_miss_rate", "br_miss_rate",
	"cycles_per_call", "reads_per_call", "writes_per_call", "allocs_per_call",
}

// NumFeatures is the dimensionality of the model input.
var NumFeatures = len(FeatureNames)

// Profile is one container's complete measurement: what the application did
// with it (software features), what the machine observed (hardware
// features), and where it was constructed (calling context).
type Profile struct {
	Context    string           `json:"context"` // construction site, e.g. "xalan/StringCache.busyList"
	Kind       adt.Kind         `json:"kind"`
	OrderAware bool             `json:"order_aware"`
	Stats      opstats.Stats    `json:"stats"`
	HW         machine.Counters `json:"hw"`
	LineBytes  int              `json:"line_bytes"` // cache line size of the profiled machine
	Cycles     float64          `json:"cycles"`     // container-attributed simulated cycles
}

// Vector flattens the profile into the canonical feature vector. Count
// features are normalized to fractions of total interface calls; cost
// features are per-invocation averages; size features are log-compressed so
// that magnitudes spanning decades stay learnable.
func (p *Profile) Vector() []float64 {
	s := &p.Stats
	total := float64(s.TotalCalls())
	if total == 0 {
		total = 1
	}
	frac := func(op opstats.Op) float64 { return float64(s.Count[op]) / total }
	avgCost := func(op opstats.Op) float64 {
		if s.Count[op] == 0 {
			return 0
		}
		return float64(s.Cost[op]) / float64(s.Count[op])
	}
	line := float64(p.LineBytes)
	if line == 0 {
		line = 64
	}
	v := []float64{
		frac(opstats.OpInsert), frac(opstats.OpErase), frac(opstats.OpFind), frac(opstats.OpIterate),
		frac(opstats.OpPushBack), frac(opstats.OpPushFront), frac(opstats.OpPopBack), frac(opstats.OpPopFront), frac(opstats.OpAt),

		math.Log1p(avgCost(opstats.OpInsert)), math.Log1p(avgCost(opstats.OpErase)),
		math.Log1p(avgCost(opstats.OpFind)), math.Log1p(avgCost(opstats.OpIterate)),

		float64(s.Resizes) / total, float64(s.Rehashes) / total, float64(s.Rotations) / total,
		math.Log1p(float64(s.MaxLen)), math.Log1p(float64(s.ElemSize)), float64(s.ElemSize) / line,

		p.HW.L1MissRate(), p.HW.L2MissRate(), p.HW.TLBMissRate(), p.HW.BranchMissRate(),
		math.Log1p(p.Cycles / total),
		math.Log1p(float64(p.HW.Reads) / total), math.Log1p(float64(p.HW.Writes) / total),
		math.Log1p(float64(p.HW.Allocs) / total),
	}
	if len(v) != NumFeatures {
		panic(fmt.Sprintf("profile: feature vector has %d entries, want %d", len(v), NumFeatures))
	}
	return v
}

// HardwareFeatureIndex returns the index of the first hardware feature;
// features at and after this index come from performance counters. The
// no-hardware-features ablation masks them.
func HardwareFeatureIndex() int {
	for i, n := range FeatureNames {
		if n == "l1_miss_rate" {
			return i
		}
	}
	panic("profile: l1_miss_rate not in FeatureNames")
}

// Container wraps an adt.Container built on a machine and attributes
// hardware events per interface invocation: every call reads the machine's
// counters before and after, exactly like the paper's instrumented STL
// functions bracketing each operation with performance-counter reads. This
// keeps attribution correct even when several profiled containers
// interleave on one machine.
type Container struct {
	inner      adt.Container
	mach       *machine.Machine
	context    string
	orderAware bool
	hw         machine.Counters // accumulated per-op deltas

	// win, when non-nil, emits snapshot windows every win.every interface
	// invocations. Nil is the disabled state and keeps the per-operation
	// hot path allocation-free (same contract as the nil telemetry.Tracer).
	win *windowState
}

// NewContainer builds a profiled container of the given kind on m.
// The context string identifies the construction site, the role the
// paper's calling-context tracking plays.
func NewContainer(kind adt.Kind, m *machine.Machine, elemSize uint64, context string, orderAware bool) *Container {
	base := m.Counters()
	c := WrapContainer(nil, m, context, orderAware)
	c.inner = adt.New(kind, m, elemSize)
	// Construction cost (initial allocations) belongs to the container.
	c.AttributeConstruction(base)
	return c
}

// WrapContainer builds the profiling wrapper around an existing container
// running on m — the hook for hosts whose inner container is not a plain
// adt.New backend (the adaptive container wraps its migrating inner this
// way). Unlike NewContainer it attributes no construction cost; callers
// that built inner on m should bracket the construction with
// AttributeConstruction.
func WrapContainer(inner adt.Container, m *machine.Machine, context string, orderAware bool) *Container {
	return &Container{
		inner:      inner,
		mach:       m,
		context:    context,
		orderAware: orderAware,
	}
}

// AttributeConstruction charges the machine-counter delta since base to the
// container, the same attribution NewContainer performs for the initial
// allocations of its backend.
func (c *Container) AttributeConstruction(base machine.Counters) {
	c.hw = c.hw.Add(c.mach.Counters().Sub(base))
}

// window brackets one interface invocation with counter reads. When
// windowing is enabled the invocation also advances the window clock; the
// disabled path adds exactly one nil check.
func (c *Container) window(op func()) {
	before := c.mach.Counters()
	op()
	c.hw = c.hw.Add(c.mach.Counters().Sub(before))
	if c.win != nil {
		c.tickWindow()
	}
}

// Kind implements adt.Container.
func (c *Container) Kind() adt.Kind { return c.inner.Kind() }

// Insert implements adt.Container.
func (c *Container) Insert(key uint64) { c.window(func() { c.inner.Insert(key) }) }

// InsertAt implements adt.Container.
func (c *Container) InsertAt(pos int, key uint64) {
	c.window(func() { c.inner.InsertAt(pos, key) })
}

// PushFront implements adt.Container.
func (c *Container) PushFront(key uint64) { c.window(func() { c.inner.PushFront(key) }) }

// Erase implements adt.Container.
func (c *Container) Erase(key uint64) (ok bool) {
	c.window(func() { ok = c.inner.Erase(key) })
	return ok
}

// EraseFront implements adt.Container.
func (c *Container) EraseFront() (ok bool) {
	c.window(func() { ok = c.inner.EraseFront() })
	return ok
}

// Find implements adt.Container.
func (c *Container) Find(key uint64) (ok bool) {
	c.window(func() { ok = c.inner.Find(key) })
	return ok
}

// Iterate implements adt.Container.
func (c *Container) Iterate(n int) (sum uint64) {
	c.window(func() { sum = c.inner.Iterate(n) })
	return sum
}

// Len implements adt.Container.
func (c *Container) Len() int { return c.inner.Len() }

// Clear implements adt.Container.
func (c *Container) Clear() { c.window(func() { c.inner.Clear() }) }

// Stats implements adt.Container.
func (c *Container) Stats() *opstats.Stats { return c.inner.Stats() }

// Context returns the construction-site label.
func (c *Container) Context() string { return c.context }

// Snapshot produces the profile of every interface invocation so far.
func (c *Container) Snapshot() Profile {
	return Profile{
		Context:    c.context,
		Kind:       c.inner.Kind(),
		OrderAware: c.orderAware,
		Stats:      *c.inner.Stats(),
		HW:         c.hw,
		LineBytes:  c.mach.Config().L1Line,
		Cycles:     c.hw.Cycles,
	}
}

// WriteTrace serializes profiles as JSON lines, the repository's trace-file
// format (one line per container instance).
func WriteTrace(w io.Writer, profiles []Profile) error {
	enc := json.NewEncoder(w)
	for i := range profiles {
		if err := enc.Encode(&profiles[i]); err != nil {
			return fmt.Errorf("profile: encoding trace record %d: %w", i, err)
		}
	}
	return nil
}

// ReadTrace parses a trace written by WriteTrace (or a JSON array of
// profiles) into a slice.
func ReadTrace(r io.Reader) ([]Profile, error) {
	var out []Profile
	err := DecodeRecords(r, func(p *Profile) error {
		out = append(out, *p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeRecords streams profile records from r without materializing the
// whole trace, calling fn once per record. It accepts both of the
// repository's wire forms: the JSON-lines trace format of WriteTrace and a
// single JSON array of profiles (what HTTP clients naturally send). A
// non-nil error from fn aborts the stream and is returned unwrapped, so
// callers can stop early with sentinel errors.
//
// Windowed snapshot streams (profile.SnapshotExporter output) decode on
// this same path: a WindowRecord line is a Profile line with extra window_*
// fields, which DecodeRecords ignores — an end-of-run analysis can replay a
// window stream as if each window were an independent profile. Use
// DecodeWindows to keep the window metadata.
func DecodeRecords(r io.Reader, fn func(*Profile) error) error {
	return decodeStream(r, "trace", fn)
}

// decodeStream is the shared wire-format reader behind DecodeRecords and
// DecodeWindows: JSON lines or a single JSON array of T, streamed record by
// record. Callback errors abort the stream and return unwrapped.
func decodeStream[T any](r io.Reader, what string, fn func(*T) error) error {
	br := bufio.NewReader(r)
	isArray, err := startsWithArray(br)
	if err != nil {
		if err == io.EOF { // empty input: zero records
			return nil
		}
		return fmt.Errorf("profile: reading %s: %w", what, err)
	}
	dec := json.NewDecoder(br)
	n := 0
	decodeOne := func() error {
		var v T
		if err := dec.Decode(&v); err != nil {
			return fmt.Errorf("profile: decoding %s record %d: %w", what, n, err)
		}
		n++
		return fn(&v)
	}
	if isArray {
		if _, err := dec.Token(); err != nil { // consume '['
			return fmt.Errorf("profile: reading %s array: %w", what, err)
		}
		for dec.More() {
			if err := decodeOne(); err != nil {
				return err
			}
		}
		if _, err := dec.Token(); err != nil { // consume ']'
			return fmt.Errorf("profile: reading %s array end: %w", what, err)
		}
		return nil
	}
	for {
		var v T
		if err := dec.Decode(&v); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("profile: decoding %s record %d: %w", what, n, err)
		}
		n++
		if err := fn(&v); err != nil {
			return err
		}
	}
}

// startsWithArray peeks past leading whitespace to see whether the stream
// is a JSON array.
func startsWithArray(br *bufio.Reader) (bool, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return false, err
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			if err := br.UnreadByte(); err != nil {
				return false, err
			}
			return b == '[', nil
		}
	}
}
