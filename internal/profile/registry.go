package profile

import (
	"fmt"
	"sort"

	"repro/internal/adt"
	"repro/internal/machine"
)

// Registry tracks every instrumented container an application constructs,
// keyed by calling context — the paper's context-sensitive trace
// collection. Construction sites that allocate many containers (one per
// request, one per group, ...) share a context, and their profiles merge
// into one record so the report speaks about source locations, not
// individual heap objects.
type Registry struct {
	mach       *machine.Machine
	containers map[string][]*Container
	order      []string // first-construction order of contexts

	// Windowing, when enabled, applies to every container constructed
	// afterwards; each instance gets its per-context construction ordinal
	// so timelines stay distinguishable.
	winEvery int
	winSink  WindowSink
}

// NewRegistry builds a registry for one machine.
func NewRegistry(m *machine.Machine) *Registry {
	return &Registry{mach: m, containers: map[string][]*Container{}}
}

// NewContainer constructs and registers an instrumented container at the
// given calling context.
func (r *Registry) NewContainer(kind adt.Kind, elemSize uint64, context string, orderAware bool) *Container {
	c := NewContainer(kind, r.mach, elemSize, context, orderAware)
	if _, seen := r.containers[context]; !seen {
		r.order = append(r.order, context)
	}
	if r.winEvery > 0 {
		c.EnableWindows(r.winEvery, len(r.containers[context]), r.winSink)
	}
	r.containers[context] = append(r.containers[context], c)
	return c
}

// EnableWindows turns on snapshot windows for every container the registry
// constructs from now on: each instance emits a WindowRecord to sink every
// `every` interface invocations. Call before constructing containers;
// already-registered instances are unaffected.
func (r *Registry) EnableWindows(every int, sink WindowSink) {
	if every < 1 {
		panic(fmt.Sprintf("profile: window size %d < 1", every))
	}
	if sink == nil {
		panic("profile: EnableWindows with nil sink")
	}
	r.winEvery = every
	r.winSink = sink
}

// FlushWindows closes every container's partial window, in construction
// order, so end-of-run timelines include their tails.
func (r *Registry) FlushWindows() {
	for _, ctx := range r.order {
		for _, c := range r.containers[ctx] {
			c.FlushWindow()
		}
	}
}

// Contexts returns the construction sites in first-construction order.
func (r *Registry) Contexts() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Snapshot merges every container registered at one context into a single
// profile: software features add up, and cycles accumulate across
// instances. It returns an error for unknown contexts.
func (r *Registry) Snapshot(context string) (Profile, error) {
	cs := r.containers[context]
	if len(cs) == 0 {
		return Profile{}, fmt.Errorf("profile: no containers registered at %q", context)
	}
	merged := cs[0].Snapshot()
	for _, c := range cs[1:] {
		p := c.Snapshot()
		merged.Stats.Add(p.Stats)
		merged.Cycles += p.Cycles
		merged.HW.Cycles += p.HW.Cycles
		merged.HW.Reads += p.HW.Reads
		merged.HW.Writes += p.HW.Writes
		merged.HW.L1Accesses += p.HW.L1Accesses
		merged.HW.L1Misses += p.HW.L1Misses
		merged.HW.L2Accesses += p.HW.L2Accesses
		merged.HW.L2Misses += p.HW.L2Misses
		merged.HW.Branches += p.HW.Branches
		merged.HW.Mispredicts += p.HW.Mispredicts
		merged.HW.Allocs += p.HW.Allocs
		merged.HW.Frees += p.HW.Frees
		merged.HW.BytesAlloced += p.HW.BytesAlloced
	}
	return merged, nil
}

// Snapshots returns one merged profile per context, sorted by descending
// attributed cycles — ready to feed to Brainy's Analyze.
func (r *Registry) Snapshots() []Profile {
	out := make([]Profile, 0, len(r.order))
	for _, ctx := range r.order {
		p, err := r.Snapshot(ctx)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}

// Instances reports how many containers were constructed at a context.
func (r *Registry) Instances(context string) int { return len(r.containers[context]) }
