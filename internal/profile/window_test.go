package profile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/opstats"
)

// collectSink accumulates every window for inspection.
type collectSink struct{ recs []WindowRecord }

func (s *collectSink) EmitWindow(w *WindowRecord) { s.recs = append(s.recs, *w) }

// TestWindowDeltasSumToSnapshot is the conservation law of windowing: the
// per-window deltas (plus the flushed tail) add back up to the cumulative
// end-of-run profile, for both software and hardware features.
func TestWindowDeltasSumToSnapshot(t *testing.T) {
	m := machine.New(machine.Core2())
	c := NewContainer(adt.KindVector, m, 8, "win/sum", false)
	sink := &collectSink{}
	c.EnableWindows(16, 0, sink)

	for i := uint64(0); i < 50; i++ {
		c.Insert(i)
	}
	for i := uint64(0); i < 21; i++ {
		c.Find(i * 3)
	}
	c.FlushWindow()

	if len(sink.recs) != 5 { // 71 ops / 16 = 4 full windows + tail of 7
		t.Fatalf("got %d windows, want 5", len(sink.recs))
	}
	var stats opstats.Stats
	var hw machine.Counters
	var ops uint64
	for i, w := range sink.recs {
		if w.Seq != i {
			t.Fatalf("window %d has seq %d", i, w.Seq)
		}
		if w.Context != "win/sum" || w.Kind != adt.KindVector || w.Instance != 0 {
			t.Fatalf("window identity: %+v", w)
		}
		stats.Add(w.Stats)
		hw = hw.Add(w.HW)
		ops += w.Ops()
	}
	snap := c.Snapshot()
	if stats.Count != snap.Stats.Count || stats.Cost != snap.Stats.Cost {
		t.Fatalf("window stats do not sum to snapshot:\n%+v\nvs\n%+v", stats, snap.Stats)
	}
	// Construction-cost counters land in the first window, so hardware
	// deltas must also add up exactly.
	if hw != snap.HW {
		t.Fatalf("window HW does not sum to snapshot:\n%+v\nvs\n%+v", hw, snap.HW)
	}
	if ops != 71 {
		t.Fatalf("windows cover %d ops, want 71", ops)
	}
	last := sink.recs[len(sink.recs)-1]
	if last.StartOp != 64 || last.EndOp != 71 || last.Ops() != 7 {
		t.Fatalf("tail window bounds: [%d, %d]", last.StartOp, last.EndOp)
	}
	if last.Len != c.Len() {
		t.Fatalf("tail window len = %d, container len = %d", last.Len, c.Len())
	}
}

// TestWindowDeltaIsPhaseLocal: a phase shift shows up in the window where
// it happens — the delta's feature mix reflects only that span of the run,
// not the blended whole.
func TestWindowDeltaIsPhaseLocal(t *testing.T) {
	m := machine.New(machine.Core2())
	c := NewContainer(adt.KindVector, m, 8, "win/phase", false)
	sink := &collectSink{}
	c.EnableWindows(32, 0, sink)

	for i := uint64(0); i < 32; i++ { // phase 1: pure inserts
		c.Insert(i)
	}
	for i := uint64(0); i < 32; i++ { // phase 2: pure lookups
		c.Find(i)
	}
	if len(sink.recs) != 2 {
		t.Fatalf("got %d windows", len(sink.recs))
	}
	w0, w1 := sink.recs[0], sink.recs[1]
	if w0.Stats.Count[opstats.OpPushBack] != 32 || w0.Stats.Count[opstats.OpFind] != 0 {
		t.Fatalf("window 0 mix: %v", w0.Stats.Count)
	}
	if w1.Stats.Count[opstats.OpPushBack] != 0 || w1.Stats.Count[opstats.OpFind] != 32 {
		t.Fatalf("window 1 mix: %v", w1.Stats.Count)
	}
	// The delta is a valid model input: its vector is finite and the find
	// fraction flips between windows.
	v0, v1 := w0.Vector(), w1.Vector()
	if v0[2] != 0 || v1[2] != 1 { // FeatureNames[2] == "find"
		t.Fatalf("find fractions: %g then %g, want 0 then 1", v0[2], v1[2])
	}
}

func TestFlushWindowNoOpWhenIdle(t *testing.T) {
	m := machine.New(machine.Core2())
	c := NewContainer(adt.KindVector, m, 8, "win/idle", false)
	sink := &collectSink{}
	c.EnableWindows(4, 0, sink)
	c.FlushWindow() // nothing happened: nothing to emit
	if len(sink.recs) != 0 {
		t.Fatalf("idle flush emitted %d windows", len(sink.recs))
	}
	for i := uint64(0); i < 4; i++ {
		c.Insert(i)
	}
	c.FlushWindow() // boundary just closed: still nothing pending
	if len(sink.recs) != 1 {
		t.Fatalf("flush after exact boundary emitted %d windows", len(sink.recs))
	}
	// Disabled container: FlushWindow is a no-op, not a panic.
	d := NewContainer(adt.KindVector, m, 8, "win/off", false)
	d.Insert(1)
	d.FlushWindow()
}

// TestWindowingDisabledZeroAlloc is the acceptance contract alongside the
// tracer's: with windowing off (the default), the profiled-operation hot
// path must not allocate, so instrumented containers can stay in place on
// production-shaped runs.
func TestWindowingDisabledZeroAlloc(t *testing.T) {
	m := machine.New(machine.Core2())
	c := NewContainer(adt.KindVector, m, 8, "win/hot", false)
	for i := uint64(0); i < 256; i++ {
		c.Insert(i)
	}
	k := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Find(k)
		c.Iterate(8)
		k++
	}); n != 0 {
		t.Fatalf("profiled ops with windowing disabled allocated %v times per op", n)
	}
}

// TestWindowingEnabledSteadyStateAlloc: even when windowing is on, the
// operations between boundaries allocate nothing — cost concentrates at
// window close.
func TestWindowingEnabledSteadyStateAlloc(t *testing.T) {
	m := machine.New(machine.Core2())
	c := NewContainer(adt.KindVector, m, 8, "win/steady", false)
	ring := NewWindowRing(8)
	// A window far larger than the probe so no boundary lands inside it.
	c.EnableWindows(1<<30, 0, ring)
	for i := uint64(0); i < 256; i++ {
		c.Insert(i)
	}
	k := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Find(k)
		k++
	}); n != 0 {
		t.Fatalf("between-boundary ops allocated %v times per op", n)
	}
}

func TestWindowRingOverwritesOldest(t *testing.T) {
	ring := NewWindowRing(3)
	for i := 0; i < 5; i++ {
		ring.EmitWindow(&WindowRecord{Seq: i})
	}
	recs := ring.Records()
	if len(recs) != 3 || ring.Total() != 5 {
		t.Fatalf("len=%d total=%d", len(recs), ring.Total())
	}
	for i, want := range []int{2, 3, 4} {
		if recs[i].Seq != want {
			t.Fatalf("ring order: %v", recs)
		}
	}
}

// TestSnapshotExporterRoundTrip: exporter output re-reads identically via
// DecodeWindows, and the very same bytes replay through DecodeRecords with
// each window as a plain Profile delta.
func TestSnapshotExporterRoundTrip(t *testing.T) {
	m := machine.New(machine.Core2())
	reg := NewRegistry(m)
	var buf bytes.Buffer
	exp := NewSnapshotExporter(&buf)
	ring := NewWindowRing(64)
	reg.EnableWindows(8, MultiWindowSink(exp, nil, ring))

	a := reg.NewContainer(adt.KindVector, 8, "rt/a", false)
	b := reg.NewContainer(adt.KindList, 8, "rt/a", true) // same context, instance 1
	for i := uint64(0); i < 20; i++ {
		a.Insert(i)
		b.Insert(i)
	}
	reg.FlushWindows()
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadWindows(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := ring.Records()
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("round trip: %d windows, ring has %d", len(got), len(want))
	}
	// The exporter saw the same emission order as the ring; spot-check the
	// instance ordinals survived.
	seen := map[string]bool{}
	for i := range got {
		if got[i].Stats != want[i].Stats || got[i].Seq != want[i].Seq || got[i].Instance != want[i].Instance {
			t.Fatalf("window %d diverges after round trip", i)
		}
		seen[got[i].InstanceKey()] = true
	}
	if !seen["rt/a#0"] || !seen["rt/a#1"] {
		t.Fatalf("instance keys: %v", seen)
	}

	// Replay through the profile decoder: every window is a Profile.
	var profiles int
	err = DecodeRecords(bytes.NewReader(buf.Bytes()), func(p *Profile) error {
		if p.Context != "rt/a" {
			t.Fatalf("replayed context %q", p.Context)
		}
		profiles++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if profiles != len(want) {
		t.Fatalf("DecodeRecords replayed %d of %d windows", profiles, len(want))
	}
}

func TestRegistryWindowsOnlyNewContainers(t *testing.T) {
	m := machine.New(machine.Core2())
	reg := NewRegistry(m)
	before := reg.NewContainer(adt.KindVector, 8, "reg/before", false)
	sink := &collectSink{}
	reg.EnableWindows(4, sink)
	after := reg.NewContainer(adt.KindVector, 8, "reg/after", false)
	for i := uint64(0); i < 8; i++ {
		before.Insert(i)
		after.Insert(i)
	}
	if len(sink.recs) != 2 {
		t.Fatalf("got %d windows", len(sink.recs))
	}
	for _, w := range sink.recs {
		if w.Context != "reg/after" {
			t.Fatalf("pre-enable container emitted a window: %+v", w)
		}
	}
}

func TestEnableWindowsValidation(t *testing.T) {
	m := machine.New(machine.Core2())
	c := NewContainer(adt.KindVector, m, 8, "v", false)
	for _, f := range []func(){
		func() { c.EnableWindows(0, 0, &collectSink{}) },
		func() { c.EnableWindows(4, 0, nil) },
		func() { NewRegistry(m).EnableWindows(0, &collectSink{}) },
		func() { NewWindowRing(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid windowing config accepted")
				}
			}()
			f()
		}()
	}
}

func TestMultiWindowSinkCollapse(t *testing.T) {
	if MultiWindowSink() != nil || MultiWindowSink(nil, nil) != nil {
		t.Fatal("empty multi-sink not nil")
	}
	s := &collectSink{}
	if got := MultiWindowSink(nil, s); got != WindowSink(s) {
		t.Fatal("single live sink not unwrapped")
	}
}

// TestDecodeWindowsMixedAndBroken covers the ingestion-facing decoder on
// realistic streams: interleaved instances, out-of-order sequence numbers
// (delivered as-is, not reordered and not an error), and a truncated tail
// line that must surface as an error, never a panic.
func TestDecodeWindowsMixedAndBroken(t *testing.T) {
	mk := func(ctx string, inst, seq int) WindowRecord {
		return WindowRecord{
			Profile:  Profile{Context: ctx, Kind: adt.KindVector},
			Instance: inst,
			Seq:      seq,
			StartOp:  uint64(seq) * 8,
			EndOp:    uint64(seq)*8 + 8,
		}
	}
	stream := []WindowRecord{
		mk("a", 0, 0), mk("b", 0, 0), mk("a", 1, 0),
		mk("b", 0, 1), mk("a", 0, 2), mk("a", 0, 1), // out of order
	}
	var buf bytes.Buffer
	if err := WriteWindows(&buf, stream); err != nil {
		t.Fatal(err)
	}

	var got []WindowRecord
	if err := DecodeWindows(bytes.NewReader(buf.Bytes()), func(w *WindowRecord) error {
		got = append(got, *w)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stream) {
		t.Fatalf("decoded %d of %d", len(got), len(stream))
	}
	for i := range got {
		if got[i].InstanceKey() != stream[i].InstanceKey() || got[i].Seq != stream[i].Seq {
			t.Fatalf("record %d reordered: %+v", i, got[i])
		}
	}

	// Truncated tail: all complete lines decode, then an error (not EOF
	// swallowed, not a panic).
	full := buf.String()
	cut := full[:len(full)-20]
	n := 0
	err := DecodeWindows(strings.NewReader(cut), func(*WindowRecord) error { n++; return nil })
	if err == nil {
		t.Fatal("truncated tail line accepted")
	}
	if n != len(stream)-1 {
		t.Fatalf("decoded %d complete records before the truncation, want %d", n, len(stream)-1)
	}

	// Array form works for windows too.
	recs := strings.Split(strings.TrimSpace(full), "\n")
	arr := "[" + strings.Join(recs, ",") + "]"
	n = 0
	if err := DecodeWindows(strings.NewReader(arr), func(*WindowRecord) error { n++; return nil }); err != nil || n != len(stream) {
		t.Fatalf("array form: err=%v n=%d", err, n)
	}
}
