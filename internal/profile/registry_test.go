package profile

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/opstats"
)

func TestRegistryMergesPerContext(t *testing.T) {
	m := machine.New(machine.Core2())
	reg := NewRegistry(m)
	// Three containers at one site (e.g. one per request), one elsewhere.
	for i := 0; i < 3; i++ {
		c := reg.NewContainer(adt.KindList, 8, "server/handler.queue", true)
		for j := uint64(0); j < 10; j++ {
			c.Insert(j)
		}
	}
	other := reg.NewContainer(adt.KindSet, 8, "server/router.table", false)
	other.Insert(1)

	if reg.Instances("server/handler.queue") != 3 {
		t.Fatalf("instances = %d", reg.Instances("server/handler.queue"))
	}
	p, err := reg.Snapshot("server/handler.queue")
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Count[opstats.OpPushBack] != 30 {
		t.Fatalf("merged push_back count = %d, want 30", p.Stats.Count[opstats.OpPushBack])
	}
	if p.Kind != adt.KindList || !p.OrderAware {
		t.Fatalf("merged metadata wrong: %+v", p)
	}
	if _, err := reg.Snapshot("nope"); err == nil {
		t.Fatal("unknown context accepted")
	}
}

func TestRegistrySnapshotsSortedByCycles(t *testing.T) {
	m := machine.New(machine.Core2())
	reg := NewRegistry(m)
	small := reg.NewContainer(adt.KindVector, 8, "small", false)
	big := reg.NewContainer(adt.KindVector, 8, "big", false)
	for i := uint64(0); i < 10; i++ {
		small.Insert(i)
	}
	for i := uint64(0); i < 5000; i++ {
		big.Insert(i)
		big.Find(i / 2)
	}
	ps := reg.Snapshots()
	if len(ps) != 2 {
		t.Fatalf("profiles = %d", len(ps))
	}
	if ps[0].Context != "big" {
		t.Fatalf("not sorted by cycles: %s first", ps[0].Context)
	}
	if got := reg.Contexts(); len(got) != 2 || got[0] != "small" {
		t.Fatalf("contexts = %v (want first-construction order)", got)
	}
}
