package profile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/opstats"
)

func TestVectorLengthMatchesNames(t *testing.T) {
	var p Profile
	v := p.Vector()
	if len(v) != NumFeatures || NumFeatures != len(FeatureNames) {
		t.Fatalf("lengths: vector %d, NumFeatures %d, names %d", len(v), NumFeatures, len(FeatureNames))
	}
}

func TestHardwareFeatureIndex(t *testing.T) {
	i := HardwareFeatureIndex()
	if FeatureNames[i] != "l1_miss_rate" {
		t.Fatalf("index %d points at %s", i, FeatureNames[i])
	}
	// Everything after the index must be a hardware counter feature.
	for _, n := range FeatureNames[i:] {
		if !strings.Contains(n, "miss") && !strings.Contains(n, "per_call") {
			t.Fatalf("unexpected hardware feature name %q", n)
		}
	}
}

func TestFeatureFractionsNormalized(t *testing.T) {
	var p Profile
	p.Stats.Observe(opstats.OpFind, 30) // 1 call, cost 30
	p.Stats.Observe(opstats.OpFind, 10)
	p.Stats.Observe(opstats.OpInsert, 1)
	p.Stats.Observe(opstats.OpInsert, 1)
	v := p.Vector()
	// find fraction = 2/4, insert fraction = 2/4.
	idxFind, idxInsert := 2, 0
	if v[idxFind] != 0.5 || v[idxInsert] != 0.5 {
		t.Fatalf("fractions: find=%f insert=%f", v[idxFind], v[idxInsert])
	}
}

func TestProfiledContainerWindowsCounters(t *testing.T) {
	m := machine.New(machine.Core2())
	// Unrelated traffic before construction must not leak into the profile.
	noise := adt.New(adt.KindList, m, 8)
	for i := uint64(0); i < 100; i++ {
		noise.Insert(i)
	}
	c := NewContainer(adt.KindVector, m, 8, "test/site", false)
	for i := uint64(0); i < 50; i++ {
		c.Insert(i)
	}
	p := c.Snapshot()
	if p.Context != "test/site" {
		t.Fatalf("context = %q", p.Context)
	}
	if p.Kind != adt.KindVector {
		t.Fatalf("kind = %v", p.Kind)
	}
	if p.Stats.Count[opstats.OpPushBack] != 50 {
		t.Fatalf("stats polluted: %v", p.Stats.Count)
	}
	if p.HW.Cycles <= 0 {
		t.Fatal("no attributed cycles")
	}
	total := m.Counters()
	if p.HW.Cycles >= total.Cycles {
		t.Fatal("windowing failed: profile cycles include pre-construction noise")
	}
}

func TestSnapshotDelta(t *testing.T) {
	m := machine.New(machine.Atom())
	c := NewContainer(adt.KindSet, m, 16, "s", false)
	for i := uint64(0); i < 200; i++ {
		c.Insert(i)
	}
	p1 := c.Snapshot()
	for i := uint64(0); i < 200; i++ {
		c.Find(i)
	}
	p2 := c.Snapshot()
	if p2.HW.Cycles <= p1.HW.Cycles {
		t.Fatal("cycles did not grow")
	}
	if p2.LineBytes != machine.Atom().L1Line {
		t.Fatalf("line bytes = %d", p2.LineBytes)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	m := machine.New(machine.Core2())
	var profiles []Profile
	for _, k := range []adt.Kind{adt.KindVector, adt.KindSet, adt.KindHashMap} {
		c := NewContainer(k, m, 8, "ctx/"+k.String(), k.IsSequence())
		for i := uint64(0); i < 30; i++ {
			c.Insert(i)
		}
		profiles = append(profiles, c.Snapshot())
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(profiles) {
		t.Fatalf("round trip count %d", len(got))
	}
	for i := range got {
		if got[i].Context != profiles[i].Context || got[i].Kind != profiles[i].Kind {
			t.Fatalf("record %d diverges", i)
		}
		if got[i].Stats != profiles[i].Stats {
			t.Fatalf("record %d stats diverge", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestVectorFiniteValues(t *testing.T) {
	m := machine.New(machine.Core2())
	c := NewContainer(adt.KindHashSet, m, 8, "x", false)
	for i := uint64(0); i < 1000; i++ {
		c.Insert(i)
		c.Find(i / 2)
	}
	p := c.Snapshot()
	for i, v := range p.Vector() {
		if v != v || v > 1e12 || v < -1e12 { // NaN or absurd
			t.Fatalf("feature %s = %v", FeatureNames[i], v)
		}
	}
}

func TestEmptyProfileVectorIsZeroSafe(t *testing.T) {
	var p Profile
	for i, v := range p.Vector() {
		if v != 0 {
			t.Fatalf("empty profile feature %s = %f", FeatureNames[i], v)
		}
	}
}
