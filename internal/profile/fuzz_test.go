package profile

import (
	"strings"
	"testing"
)

// FuzzDecodeRecords hammers the shared stream decoder with arbitrary bytes:
// whatever the input, it must return (records or an error), never panic or
// loop. The seeds cover both wire forms, a windowed snapshot line replayed
// as a profile, and a truncated tail.
func FuzzDecodeRecords(f *testing.F) {
	f.Add("")
	f.Add("   \n\t")
	f.Add(`{"context":"a","kind":1}` + "\n" + `{"context":"b","kind":2}` + "\n")
	f.Add(`[{"context":"a"},{"context":"b"}]`)
	// A SnapshotExporter window line: extra window_* fields are ignored.
	f.Add(`{"context":"rt/a","kind":1,"instance":1,"window_seq":3,"window_start_op":24,"window_end_op":32,"window_len":20}` + "\n")
	// Truncated tail line: must error, not panic.
	f.Add(`{"context":"a","kind":1}` + "\n" + `{"context":"b","ki`)
	f.Add(`[{"context":"a"}`)
	f.Add(`{"stats":{"count":[1,2,3]},"hw":{"cycles":1e308}}`)
	f.Fuzz(func(t *testing.T, in string) {
		n := 0
		err := DecodeRecords(strings.NewReader(in), func(p *Profile) error {
			n++
			if n > 1<<16 {
				t.Skip("input decodes to an unreasonable record count")
			}
			return nil
		})
		if err != nil && n == 0 && strings.Trim(in, " \t\r\n") == "" {
			t.Fatalf("blank input must decode to zero records, got %v", err)
		}
		// Windows ride the same decoder; it must agree on panic-freedom.
		_ = DecodeWindows(strings.NewReader(in), func(*WindowRecord) error { return nil })
	})
}
