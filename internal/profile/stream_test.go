package profile

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
)

func sampleProfiles(t *testing.T, n int) []Profile {
	t.Helper()
	m := machine.New(machine.Core2())
	var out []Profile
	for i := 0; i < n; i++ {
		c := NewContainer(adt.KindVector, m, 8, "ctx/"+string(rune('a'+i)), false)
		for k := uint64(0); k < 20; k++ {
			c.Insert(k)
		}
		out = append(out, c.Snapshot())
	}
	return out
}

func TestDecodeRecordsJSONLines(t *testing.T) {
	profiles := sampleProfiles(t, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	var got []Profile
	err := DecodeRecords(&buf, func(p *Profile) error {
		got = append(got, *p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Context != profiles[1].Context {
		t.Fatalf("decoded %d records: %+v", len(got), got)
	}
}

func TestDecodeRecordsJSONArray(t *testing.T) {
	profiles := sampleProfiles(t, 3)
	var lines bytes.Buffer
	if err := WriteTrace(&lines, profiles); err != nil {
		t.Fatal(err)
	}
	// Build "  [rec,rec,rec]" with leading whitespace to exercise peeking.
	recs := strings.Split(strings.TrimSpace(lines.String()), "\n")
	array := "  \n\t[" + strings.Join(recs, ",") + "]"
	var got []Profile
	err := DecodeRecords(strings.NewReader(array), func(p *Profile) error {
		got = append(got, *p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d records from array", len(got))
	}
	for i := range got {
		if got[i].Stats != profiles[i].Stats {
			t.Fatalf("record %d diverges", i)
		}
	}
}

func TestDecodeRecordsEmptyInput(t *testing.T) {
	for _, in := range []string{"", "   \n\t ", "[]", " [ ] "} {
		n := 0
		err := DecodeRecords(strings.NewReader(in), func(*Profile) error { n++; return nil })
		if err != nil || n != 0 {
			t.Fatalf("input %q: err=%v records=%d", in, err, n)
		}
	}
}

func TestDecodeRecordsCallbackError(t *testing.T) {
	profiles := sampleProfiles(t, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	n := 0
	err := DecodeRecords(&buf, func(*Profile) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 2 {
		t.Fatalf("err=%v n=%d, want sentinel after 2", err, n)
	}
}

func TestDecodeRecordsGarbage(t *testing.T) {
	for _, in := range []string{"not json", "[not json]", "{\"context\": 5}", "[{},"} {
		err := DecodeRecords(strings.NewReader(in), func(*Profile) error { return nil })
		if err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadTraceAcceptsArrayForm(t *testing.T) {
	profiles := sampleProfiles(t, 2)
	var lines bytes.Buffer
	if err := WriteTrace(&lines, profiles); err != nil {
		t.Fatal(err)
	}
	recs := strings.Split(strings.TrimSpace(lines.String()), "\n")
	got, err := ReadTrace(strings.NewReader("[" + strings.Join(recs, ",") + "]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
}
