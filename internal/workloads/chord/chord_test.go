package chord

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
)

func TestRingSuccessorSorted(t *testing.T) {
	r := NewRing(128, 1)
	for i := 1; i < len(r.ids); i++ {
		if r.ids[i-1] >= r.ids[i] {
			t.Fatal("ring IDs not strictly sorted")
		}
	}
	// successor of an existing ID is itself.
	for _, id := range r.ids[:10] {
		if got := r.successor(id); got != id {
			t.Fatalf("successor(%d) = %d", id, got)
		}
	}
	// successor past the largest ID wraps to the smallest.
	if got := r.successor(r.ids[len(r.ids)-1] + 1); got != r.ids[0] {
		t.Fatalf("wrap successor = %d, want %d", got, r.ids[0])
	}
}

func TestLookupFindsTrueOwner(t *testing.T) {
	r := NewRing(256, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		key := uint64(rng.Uint32())
		start := rng.Intn(r.NumNodes())
		owner, hops := r.Lookup(start, key)
		if want := r.successor(key); owner != want {
			t.Fatalf("Lookup(%d) owner %d, want successor %d", key, owner, want)
		}
		if hops <= 0 || hops > 2*ringBits {
			t.Fatalf("hops = %d", hops)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r := NewRing(1024, 4)
	rng := rand.New(rand.NewSource(5))
	total := 0
	const probes = 500
	for i := 0; i < probes; i++ {
		_, hops := r.Lookup(rng.Intn(r.NumNodes()), uint64(rng.Uint32()))
		total += hops
	}
	avg := float64(total) / probes
	// Chord routes in ~log2(n)/2 ≈ 5 hops for n=1024; allow generous slack.
	if avg > 12 {
		t.Fatalf("average hops %.1f too high for finger routing", avg)
	}
	if avg < 1.5 {
		t.Fatalf("average hops %.1f suspiciously low", avg)
	}
}

func TestSimulationDrainsPending(t *testing.T) {
	in, err := InputByName("small")
	if err != nil {
		t.Fatal(err)
	}
	r := Run(adt.KindMap, in, machine.Core2())
	if r.LookupFailures != 0 {
		t.Fatalf("%d lookup failures", r.LookupFailures)
	}
	if r.Profile.Stats.MaxLen == 0 || r.MaxPending == 0 {
		t.Fatal("pending list never populated")
	}
	// Every query was inserted and erased exactly once.
	ins := r.Profile.Stats.Count[0] // OpInsert
	if ins != uint64(in.Queries) {
		t.Fatalf("inserts = %d, want %d", ins, in.Queries)
	}
}

func TestBestKindVariesAcrossInputs(t *testing.T) {
	// Figure 13's core finding: the optimal container changes with the
	// input, and on the large input the two architectures disagree.
	winners := map[string]map[string]adt.Kind{}
	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		winners[arch.Name] = map[string]adt.Kind{}
		for _, in := range Inputs() {
			rs := RunAll(in, arch)
			best := 0
			for i := range rs {
				if rs[i].Cycles < rs[best].Cycles {
					best = i
				}
			}
			winners[arch.Name][in.Name] = rs[best].Kind
		}
	}
	for _, arch := range []string{"Core2", "Atom"} {
		kinds := map[adt.Kind]bool{}
		for _, k := range winners[arch] {
			kinds[k] = true
		}
		if len(kinds) < 2 {
			t.Fatalf("%s: best kind constant across inputs: %v", arch, winners[arch])
		}
	}
	if winners["Core2"]["large"] == winners["Atom"]["large"] {
		t.Fatalf("large input: architectures agree on %v, want disagreement", winners["Core2"]["large"])
	}
	if winners["Core2"]["medium"] != adt.KindHashMap || winners["Atom"]["medium"] != adt.KindHashMap {
		t.Fatalf("medium input: want hash_map on both archs, got %v", winners)
	}
}

func TestDeterministicRuns(t *testing.T) {
	in, err := InputByName("medium")
	if err != nil {
		t.Fatal(err)
	}
	a := Run(adt.KindHashMap, in, machine.Atom())
	b := Run(adt.KindHashMap, in, machine.Atom())
	if a.Cycles != b.Cycles || a.MaxPending != b.MaxPending {
		t.Fatal("replay diverged")
	}
}

func TestInputByName(t *testing.T) {
	if _, err := InputByName("large"); err != nil {
		t.Fatal(err)
	}
	if _, err := InputByName("huge"); err == nil {
		t.Fatal("unknown input accepted")
	}
}

func TestBetween(t *testing.T) {
	if !between(10, 20, 15) || between(10, 20, 25) || between(10, 20, 10) || !between(10, 20, 20) {
		t.Fatal("between on non-wrapping interval wrong")
	}
	if !between(20, 10, 25) || !between(20, 10, 5) || between(20, 10, 15) {
		t.Fatal("between on wrapping interval wrong")
	}
}
