package chord

import (
	"testing"

	"repro/internal/machine"
)

// BenchmarkLookup measures pure finger-table routing throughput.
func BenchmarkLookup(b *testing.B) {
	r := NewRing(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(i%r.NumNodes(), uint64(i)*2654435761)
	}
}

// BenchmarkRunPerKind measures one small-input simulation per pending-list
// kind, reporting simulated cycles — the Figure 12 cell values.
func BenchmarkRunPerKind(b *testing.B) {
	in, err := InputByName("small")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range CandidateKinds() {
		b.Run(k.String(), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cycles = Run(k, in, machine.Atom()).Cycles
			}
			b.ReportMetric(cycles, "sim-cycles")
		})
	}
}
