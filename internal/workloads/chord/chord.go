// Package chord implements a simulator for the Chord distributed lookup
// protocol (Section 6.3) — a real DHT substrate, not a stub. Nodes sit on a
// 2^m identifier ring with finger tables; lookups route greedily through
// fingers in O(log n) hops. The simulation sends query messages and tracks
// them in a pending list keyed by message ID; when a response arrives the
// simulator finds the pending message by ID (std::find_if on a vector in
// the original code) and drops it. That pending list is the container under
// study: its best implementation flips between vector, map, and hash_map
// with the input's in-flight population.
package chord

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/profile"
)

const ringBits = 32 // identifier space 2^32

// Ring is a Chord overlay: sorted node identifiers plus per-node finger
// tables.
type Ring struct {
	ids     []uint64   // sorted node IDs
	fingers [][]uint64 // fingers[n][k] = successor(ids[n] + 2^k)
}

// NewRing builds an overlay of n nodes with deterministic random IDs.
func NewRing(n int, seed int64) *Ring {
	rng := rand.New(rand.NewSource(seed))
	idset := map[uint64]bool{}
	for len(idset) < n {
		idset[uint64(rng.Uint32())] = true
	}
	r := &Ring{ids: make([]uint64, 0, n)}
	for id := range idset {
		r.ids = append(r.ids, id)
	}
	sort.Slice(r.ids, func(i, j int) bool { return r.ids[i] < r.ids[j] })
	r.fingers = make([][]uint64, n)
	for i, id := range r.ids {
		f := make([]uint64, ringBits)
		for k := 0; k < ringBits; k++ {
			f[k] = r.successor(id + (1 << uint(k)))
		}
		r.fingers[i] = f
	}
	return r
}

// successor returns the first node ID clockwise from key.
func (r *Ring) successor(key uint64) uint64 {
	key &= 1<<ringBits - 1
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= key })
	if i == len(r.ids) {
		return r.ids[0]
	}
	return r.ids[i]
}

// nodeIndex maps an ID back to its ring position.
func (r *Ring) nodeIndex(id uint64) int {
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	if i < len(r.ids) && r.ids[i] == id {
		return i
	}
	return -1
}

// between reports whether x ∈ (a, b] on the ring.
func between(a, b, x uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// Lookup routes key from the node at start, returning the owner and the
// hop count — the real Chord greedy finger routing.
func (r *Ring) Lookup(start int, key uint64) (owner uint64, hops int) {
	key &= 1<<ringBits - 1
	cur := start
	for {
		curID := r.ids[cur]
		succ := r.fingers[cur][0]
		if between(curID, succ, key) {
			return succ, hops + 1
		}
		// Closest preceding finger.
		next := -1
		for k := ringBits - 1; k >= 0; k-- {
			f := r.fingers[cur][k]
			if f != curID && between(curID, key-1, f) {
				next = r.nodeIndex(f)
				break
			}
		}
		if next == -1 || next == cur {
			return succ, hops + 1
		}
		cur = next
		hops++
		if hops > 2*ringBits { // routing safety net
			return r.successor(key), hops
		}
	}
}

// NumNodes returns the overlay size.
func (r *Ring) NumNodes() int { return len(r.ids) }

// Input is one workload class of Figure 12/13. The pending-list population
// scales with QueryRate versus the response latency, which is what moves
// the best container across vector, hash_map, and map.
type Input struct {
	Name         string
	Nodes        int
	Queries      int
	QueryRate    int     // new queries injected per tick
	LatencyHops  int     // extra ticks per routing hop before the response returns
	MsgBytes     uint64  // simulated pending-message record size
	TimeoutEvery int     // ticks between timeout sweeps over the pending list (0 = never)
	ComputeShare float64 // non-container cycles per query (routing work)
	Seed         int64
}

// Inputs returns the three workload classes, scaled from the paper's
// small/medium/large.
func Inputs() []Input {
	return []Input{
		{Name: "small", Nodes: 64, Queries: 4000, QueryRate: 1, LatencyHops: 2, MsgBytes: 48, TimeoutEvery: 2, ComputeShare: 700, Seed: 101},
		{Name: "medium", Nodes: 256, Queries: 12000, QueryRate: 24, LatencyHops: 6, MsgBytes: 48, TimeoutEvery: 8, ComputeShare: 700, Seed: 102},
		{Name: "large", Nodes: 1024, Queries: 30000, QueryRate: 4, LatencyHops: 1, MsgBytes: 48, TimeoutEvery: 3, ComputeShare: 700, Seed: 103},
	}
}

// InputByName looks up a workload class.
func InputByName(name string) (Input, error) {
	for _, in := range Inputs() {
		if in.Name == name {
			return in, nil
		}
	}
	return Input{}, fmt.Errorf("chord: unknown input %q", name)
}

// Original is the container the simulator ships with.
func Original() adt.Kind { return adt.KindVector }

// CandidateKinds are the implementations of Figure 12: vector, map (tree),
// and hash_map, keyed by the message ID field.
func CandidateKinds() []adt.Kind {
	return []adt.Kind{adt.KindVector, adt.KindMap, adt.KindHashMap}
}

// Result is one run's measurement.
type Result struct {
	Kind            adt.Kind
	Input           string
	Cycles          float64
	ContainerCycles float64
	LookupFailures  int
	MaxPending      int
	Profile         profile.Profile
}

// DriveResult carries the simulation outcomes that are independent of the
// container's cost.
type DriveResult struct {
	LookupFailures int
	MaxPending     int
}

// Drive executes the simulation's operation stream against any pending-list
// container.
func Drive(pending adt.Container, in Input) DriveResult {
	ring := NewRing(in.Nodes, in.Seed)
	rng := rand.New(rand.NewSource(in.Seed + 1))

	type response struct {
		tick  int
		msgID uint64
	}
	var inflight []response
	failures := 0
	maxPending := 0
	nextMsg := uint64(1)
	sent := 0
	tick := 0
	for sent < in.Queries || len(inflight) > 0 {
		// Inject new queries.
		for q := 0; q < in.QueryRate && sent < in.Queries; q++ {
			key := uint64(rng.Uint32())
			start := rng.Intn(ring.NumNodes())
			owner, hops := ring.Lookup(start, key)
			if ring.nodeIndex(owner) < 0 {
				failures++
			}
			id := nextMsg
			nextMsg++
			pending.Insert(id)
			inflight = append(inflight, response{tick: tick + 1 + hops*in.LatencyHops, msgID: id})
			sent++
		}
		if l := pending.Len(); l > maxPending {
			maxPending = l
		}
		// Periodic timeout sweep: walk the whole pending list looking for
		// overdue queries to retry, as the simulator's retry logic does.
		if in.TimeoutEvery > 0 && tick%in.TimeoutEvery == 0 {
			pending.Iterate(-1)
		}
		// Deliver due responses: find the pending message by ID and drop it.
		keep := inflight[:0]
		for _, resp := range inflight {
			if resp.tick <= tick {
				if !pending.Erase(resp.msgID) {
					failures++
				}
			} else {
				keep = append(keep, resp)
			}
		}
		inflight = keep
		tick++
	}
	return DriveResult{LookupFailures: failures, MaxPending: maxPending}
}

// Run executes the simulation with the given pending-list implementation.
func Run(kind adt.Kind, in Input, arch machine.Config) Result {
	m := machine.New(arch)
	pending := profile.NewContainer(kind, m, in.MsgBytes,
		"chord/simulator.pendingList", false)
	dr := Drive(pending, in)
	p := pending.Snapshot()
	return Result{
		Kind:            kind,
		Input:           in.Name,
		Cycles:          p.Cycles + in.ComputeShare*float64(in.Queries),
		ContainerCycles: p.Cycles,
		LookupFailures:  dr.LookupFailures,
		MaxPending:      dr.MaxPending,
		Profile:         p,
	}
}

// RunAll measures every candidate on the input.
func RunAll(in Input, arch machine.Config) []Result {
	out := make([]Result, 0, len(CandidateKinds()))
	for _, k := range CandidateKinds() {
		out = append(out, Run(k, in, arch))
	}
	return out
}
