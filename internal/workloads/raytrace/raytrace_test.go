package raytrace

import (
	"math"
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
)

func TestSphereIntersection(t *testing.T) {
	s := Sphere{Center: Vec3{0, 0, 10}, Radius: 1}
	// Ray straight at the center hits at t = 9.
	if tHit, ok := s.Intersect(Vec3{0, 0, 0}, Vec3{0, 0, 1}); !ok || math.Abs(tHit-9) > 1e-9 {
		t.Fatalf("center hit t=%f ok=%v", tHit, ok)
	}
	// Ray pointing away misses.
	if _, ok := s.Intersect(Vec3{0, 0, 0}, Vec3{0, 0, -1}); ok {
		t.Fatal("ray pointing away hit")
	}
	// Grazing ray at radius boundary.
	if _, ok := s.Intersect(Vec3{2, 0, 0}, Vec3{0, 0, 1}); ok {
		t.Fatal("ray outside radius hit")
	}
	// Origin inside the sphere: exit intersection has positive t.
	if tHit, ok := s.Intersect(Vec3{0, 0, 10}, Vec3{0, 0, 1}); !ok || tHit <= 0 {
		t.Fatalf("inside-origin hit t=%f ok=%v", tHit, ok)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Dot(b) != 32 {
		t.Fatalf("dot = %f", a.Dot(b))
	}
	d := b.Sub(a)
	if d != (Vec3{3, 3, 3}) {
		t.Fatalf("sub = %v", d)
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-12 {
		t.Fatal("norm wrong")
	}
	if (Vec3{1, 0, 0}).Scale(3) != (Vec3{3, 0, 0}) {
		t.Fatal("scale wrong")
	}
}

func TestRenderConsistentAcrossContainers(t *testing.T) {
	in := Inputs()[0]
	base := Run(adt.KindList, in, machine.Core2())
	if base.Hits == 0 {
		t.Fatal("render produced no hits; scene degenerate")
	}
	for _, k := range []adt.Kind{adt.KindVector, adt.KindDeque} {
		r := Run(k, in, machine.Core2())
		if r.Hits != base.Hits || math.Abs(r.Checksum-base.Checksum) > 1e-6 {
			t.Fatalf("%v image differs: hits %d vs %d", k, r.Hits, base.Hits)
		}
	}
}

func TestVectorBeatsListOnBothArchs(t *testing.T) {
	// Section 6.5: replacing the group list with vector wins everywhere.
	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		rs := RunAll(Inputs()[1], arch)
		var list, vec float64
		for _, r := range rs {
			switch r.Kind {
			case adt.KindList:
				list = r.Cycles
			case adt.KindVector:
				vec = r.Cycles
			}
		}
		if vec >= list {
			t.Fatalf("%s: vector (%.3e) not faster than list (%.3e)", arch.Name, vec, list)
		}
	}
}

func TestIterationDominatesProfile(t *testing.T) {
	r := Run(adt.KindList, Inputs()[0], machine.Core2())
	st := r.Profile.Stats
	var iterIdx = 3 // opstats.OpIterate
	if st.Count[iterIdx] == 0 {
		t.Fatal("no iteration recorded")
	}
	if st.Cost[iterIdx] < st.TotalCalls() {
		t.Fatal("iteration cost implausibly low")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(adt.KindVector, Inputs()[0], machine.Atom())
	b := Run(adt.KindVector, Inputs()[0], machine.Atom())
	if a.Cycles != b.Cycles || a.Checksum != b.Checksum {
		t.Fatal("replay diverged")
	}
}

func TestInputByName(t *testing.T) {
	if _, err := InputByName("default"); err != nil {
		t.Fatal(err)
	}
	if _, err := InputByName("imax"); err == nil {
		t.Fatal("unknown input accepted")
	}
}
