// Package raytrace reproduces the container-relevant kernel of the ray
// tracer of Section 6.5: spheres are partitioned into groups, each group
// stores its spheres in a container (std::list in the original), and the
// render loop intersects every ray first with the group's bounding sphere
// and then, on a hit, iterates the group's container to test each member
// sphere. The per-ray iteration dominates, so the contiguous vector beats
// the pointer-chasing list — the replacement Brainy suggests.
package raytrace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/profile"
)

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Scale returns a scaled by s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Norm returns the Euclidean length.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Sphere is one scene object.
type Sphere struct {
	Center Vec3
	Radius float64
}

// Intersect returns the nearest positive ray parameter t for origin o and
// direction d, or ok=false on a miss.
func (s Sphere) Intersect(o, d Vec3) (t float64, ok bool) {
	oc := o.Sub(s.Center)
	b := oc.Dot(d)
	c := oc.Dot(oc) - s.Radius*s.Radius
	disc := b*b - c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	if t = -b - sq; t > 1e-9 {
		return t, true
	}
	if t = -b + sq; t > 1e-9 {
		return t, true
	}
	return 0, false
}

// group is one sphere cluster: a bounding sphere plus the member container.
type group struct {
	bound   Sphere
	members adt.Container // sphere IDs, the container under study
	spheres []Sphere      // ID -> geometry (parallel store)
}

// Input is one render configuration.
type Input struct {
	Name         string
	Width        int
	Height       int
	Groups       int
	PerGroup     int
	SphereBytes  uint64
	ComputeShare float64 // shading cycles per primary ray
	Seed         int64
}

// Inputs returns the workload classes.
func Inputs() []Input {
	return []Input{
		{Name: "small", Width: 48, Height: 36, Groups: 6, PerGroup: 24, SphereBytes: 48, ComputeShare: 40, Seed: 31},
		{Name: "default", Width: 128, Height: 96, Groups: 10, PerGroup: 48, SphereBytes: 48, ComputeShare: 40, Seed: 32},
	}
}

// InputByName looks up a workload class.
func InputByName(name string) (Input, error) {
	for _, in := range Inputs() {
		if in.Name == name {
			return in, nil
		}
	}
	return Input{}, fmt.Errorf("raytrace: unknown input %q", name)
}

// Original is the container the ray tracer ships with.
func Original() adt.Kind { return adt.KindList }

// CandidateKinds are the order-aware sequence alternatives of Table 1.
func CandidateKinds() []adt.Kind {
	return []adt.Kind{adt.KindList, adt.KindVector, adt.KindDeque}
}

// Result is one run's measurement.
type Result struct {
	Kind            adt.Kind
	Input           string
	Cycles          float64
	ContainerCycles float64
	Hits            int     // primary-ray hits, a render checksum
	Checksum        float64 // accumulated hit distances
	Profile         profile.Profile
}

// Drive builds the scene with one container per group (obtained from
// newContainer) and renders it, returning hits and checksum.
func Drive(in Input, newContainer func(group int) adt.Container) (hits int, checksum float64) {
	rng := rand.New(rand.NewSource(in.Seed))

	// Build the scene: clustered spheres per group.
	groups := make([]*group, in.Groups)
	for g := range groups {
		center := Vec3{rng.Float64()*20 - 10, rng.Float64()*20 - 10, 20 + rng.Float64()*20}
		gr := &group{
			members: newContainer(g),
		}
		maxR := 0.0
		for s := 0; s < in.PerGroup; s++ {
			sp := Sphere{
				Center: Vec3{
					center.X + rng.NormFloat64()*2,
					center.Y + rng.NormFloat64()*2,
					center.Z + rng.NormFloat64()*2,
				},
				Radius: 0.3 + rng.Float64()*0.8,
			}
			gr.spheres = append(gr.spheres, sp)
			gr.members.Insert(uint64(s))
			if d := sp.Center.Sub(center).Norm() + sp.Radius; d > maxR {
				maxR = d
			}
		}
		gr.bound = Sphere{Center: center, Radius: maxR}
		groups[g] = gr
	}

	// Render: one primary ray per pixel.
	origin := Vec3{0, 0, 0}
	for y := 0; y < in.Height; y++ {
		for x := 0; x < in.Width; x++ {
			d := Vec3{
				(float64(x)/float64(in.Width) - 0.5) * 1.6,
				(float64(y)/float64(in.Height) - 0.5) * 1.2,
				1,
			}
			d = d.Scale(1 / d.Norm())
			nearest := math.Inf(1)
			for _, gr := range groups {
				if _, ok := gr.bound.Intersect(origin, d); !ok {
					continue
				}
				// Group hit: traverse the member container, testing each
				// sphere. The container traversal is the instrumented cost;
				// the geometry test is app compute.
				gr.members.Iterate(-1)
				for _, sp := range gr.spheres {
					if t, ok := sp.Intersect(origin, d); ok && t < nearest {
						nearest = t
					}
				}
			}
			if !math.IsInf(nearest, 1) {
				hits++
				checksum += nearest
			}
		}
	}
	return hits, checksum
}

// Run renders the scene with the given group-member container kind.
func Run(kind adt.Kind, in Input, arch machine.Config) Result {
	m := machine.New(arch)
	var profiled []*profile.Container
	hits, checksum := Drive(in, func(g int) adt.Container {
		c := profile.NewContainer(kind, m, in.SphereBytes,
			fmt.Sprintf("raytrace/group[%d].scenes", g), true)
		profiled = append(profiled, c)
		return c
	})
	// Aggregate the per-group profiles.
	var total profile.Profile
	for i, c := range profiled {
		p := c.Snapshot()
		if i == 0 {
			total = p
			total.Context = "raytrace/group[*].scenes"
		} else {
			total.Stats.Add(p.Stats)
			total.Cycles += p.Cycles
			total.HW.Cycles += p.HW.Cycles
		}
	}
	rays := float64(in.Width * in.Height)
	return Result{
		Kind:            kind,
		Input:           in.Name,
		Cycles:          total.Cycles + in.ComputeShare*rays,
		ContainerCycles: total.Cycles,
		Hits:            hits,
		Checksum:        checksum,
		Profile:         total,
	}
}

// RunAll measures every candidate on the input.
func RunAll(in Input, arch machine.Config) []Result {
	out := make([]Result, 0, len(CandidateKinds()))
	for _, k := range CandidateKinds() {
		out = append(out, Run(k, in, arch))
	}
	return out
}
