// Package relipmoc reproduces the container-relevant core of RelipmoC, the
// i386-assembly-to-C decompiler of Section 6.4. It is a genuine (toy-ISA)
// decompiler pipeline: a synthetic assembly program is scanned for basic
// block leaders, a control-flow graph is built, dominators are computed by
// iterative dataflow, natural loops are recovered from back edges, and a
// structuring pass walks the blocks to nest the recovered constructs. The
// set of basic-block addresses is the container under study: the analyses
// perform many membership checks (find) on short lists and many sorted
// iterations on long ones, the mix that favours avl_set over the red-black
// set in the paper.
package relipmoc

import (
	"math/rand"
	"sort"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/profile"
)

// Opcode is a toy i386-flavoured instruction class.
type Opcode int

// Instruction classes: straight-line, conditional/unconditional control
// flow, and returns.
const (
	OpMov Opcode = iota
	OpAlu
	OpCmp
	OpJmp  // unconditional jump
	OpJcc  // conditional jump (falls through too)
	OpCall // call; control continues after
	OpRet
)

// Insn is one decoded instruction.
type Insn struct {
	Addr   uint64
	Op     Opcode
	Target uint64 // jump/call destination, when applicable
}

// GenerateProgram synthesizes a plausible instruction stream: mostly
// straight-line code with forward/backward branches (loops) and a few
// returns, deterministically from the seed.
func GenerateProgram(n int, seed int64) []Insn {
	rng := rand.New(rand.NewSource(seed))
	prog := make([]Insn, n)
	for i := 0; i < n; i++ {
		addr := uint64(i)
		r := rng.Float64()
		switch {
		case r < 0.70:
			ops := []Opcode{OpMov, OpAlu, OpCmp}
			prog[i] = Insn{Addr: addr, Op: ops[rng.Intn(len(ops))]}
		case r < 0.78: // backward conditional: a loop latch
			lo := 0
			if i > 40 {
				lo = i - 40
			}
			tgt := lo
			if i > lo {
				tgt = lo + rng.Intn(i-lo)
			}
			prog[i] = Insn{Addr: addr, Op: OpJcc, Target: uint64(tgt)}
		case r < 0.90: // forward conditional: an if
			hi := i + 1 + rng.Intn(30)
			if hi >= n {
				hi = n - 1
			}
			prog[i] = Insn{Addr: addr, Op: OpJcc, Target: uint64(hi)}
		case r < 0.95: // unconditional jump forward
			hi := i + 1 + rng.Intn(20)
			if hi >= n {
				hi = n - 1
			}
			prog[i] = Insn{Addr: addr, Op: OpJmp, Target: uint64(hi)}
		case r < 0.98:
			prog[i] = Insn{Addr: addr, Op: OpCall, Target: uint64(rng.Intn(n))}
		default:
			prog[i] = Insn{Addr: addr, Op: OpRet}
		}
	}
	return prog
}

// Block is one recovered basic block.
type Block struct {
	Start, End uint64 // [Start, End) instruction addresses
	Succs      []int  // successor block indices
}

// Analysis is the decompiler's output for one program.
type Analysis struct {
	Blocks     []Block
	Loops      int // natural loops recovered
	MaxNesting int
	IfCount    int
}

// Input is one workload size.
type Input struct {
	Name         string
	Instructions int
	Passes       int // analysis passes over the block set
	ComputeShare float64
	Seed         int64
}

// Inputs returns the workload classes; the paper reports one configuration,
// kept here alongside a small smoke size.
func Inputs() []Input {
	return []Input{
		{Name: "small", Instructions: 2000, Passes: 6, ComputeShare: 500, Seed: 7},
		{Name: "default", Instructions: 12000, Passes: 12, ComputeShare: 500, Seed: 8},
	}
}

// Original is the container RelipmoC ships with: an STL set of blocks.
func Original() adt.Kind { return adt.KindSet }

// CandidateKinds are the tree alternatives (the block set is iterated in
// address order, so only order-preserving trees are legal).
func CandidateKinds() []adt.Kind {
	return []adt.Kind{adt.KindSet, adt.KindAVLSet, adt.KindSplaySet}
}

// Result is one run's measurement.
type Result struct {
	Kind            adt.Kind
	Input           string
	Cycles          float64
	ContainerCycles float64
	Analysis        Analysis
	Profile         profile.Profile
}

// Drive runs the full decompiler pipeline with the given leader-set
// container and returns the analysis result.
func Drive(leaders adt.Container, in Input) Analysis {
	prog := GenerateProgram(in.Instructions, in.Seed)

	// Pass 1: identify leaders — first instruction, every branch target,
	// and every fall-through after a control transfer.
	leaders.Insert(prog[0].Addr)
	for i, ins := range prog {
		switch ins.Op {
		case OpJmp, OpJcc:
			leaders.Insert(ins.Target)
			if i+1 < len(prog) {
				leaders.Insert(prog[i+1].Addr)
			}
		case OpRet:
			if i+1 < len(prog) {
				leaders.Insert(prog[i+1].Addr)
			}
		}
	}

	// Pass 2: carve basic blocks. Each instruction asks the leader set "does
	// a block start here?" — the membership-test hot path.
	var starts []uint64
	for _, ins := range prog[1:] {
		if leaders.Find(ins.Addr) {
			starts = append(starts, ins.Addr)
		}
	}
	starts = append([]uint64{prog[0].Addr}, starts...)
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	blockIdx := map[uint64]int{}
	blocks := make([]Block, len(starts))
	for i, s := range starts {
		end := uint64(len(prog))
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		blocks[i] = Block{Start: s, End: end}
		blockIdx[s] = i
	}

	// Pass 3: CFG edges from each block's terminator.
	for i := range blocks {
		last := prog[blocks[i].End-1]
		addSucc := func(addr uint64) {
			// Successor lookup consults the leader set again.
			if leaders.Find(addr) || addr == prog[0].Addr {
				if j, ok := blockIdx[addr]; ok {
					blocks[i].Succs = append(blocks[i].Succs, j)
				}
			}
		}
		switch last.Op {
		case OpJmp:
			addSucc(last.Target)
		case OpJcc:
			addSucc(last.Target)
			if blocks[i].End < uint64(len(prog)) {
				addSucc(blocks[i].End)
			}
		case OpRet:
			// no successors
		default:
			if blocks[i].End < uint64(len(prog)) {
				addSucc(blocks[i].End)
			}
		}
	}

	// Pass 4: dominators by iterative dataflow (Cooper-style bitsets).
	dom := dominators(blocks)

	// Pass 5: natural loops from back edges, plus nesting depth.
	loops := 0
	depth := make([]int, len(blocks))
	for i, b := range blocks {
		for _, s := range b.Succs {
			if dominates(dom, s, i) { // edge i->s with s dom i: back edge
				loops++
				for j := s; j <= i && j < len(blocks); j++ {
					depth[j]++
				}
			}
		}
	}
	maxNest := 0
	ifCount := 0
	for i, b := range blocks {
		if depth[i] > maxNest {
			maxNest = depth[i]
		}
		if len(b.Succs) == 2 {
			ifCount++
		}
	}

	// Pass 6: structuring sweeps — each analysis pass iterates the sorted
	// block set and re-checks membership of construct heads, the "find and
	// iteration on short and long lists of basic blocks".
	rng := rand.New(rand.NewSource(in.Seed + 99))
	for pass := 0; pass < in.Passes; pass++ {
		leaders.Iterate(-1)
		for q := 0; q < len(blocks); q++ {
			leaders.Find(starts[rng.Intn(len(starts))])
		}
	}

	return Analysis{Blocks: blocks, Loops: loops, MaxNesting: maxNest, IfCount: ifCount}
}

// Run decompiles the input program with the given leader-set implementation.
func Run(kind adt.Kind, in Input, arch machine.Config) Result {
	m := machine.New(arch)
	leaders := profile.NewContainer(kind, m, 16, "relipmoc/BasicBlockSet", true)
	an := Drive(leaders, in)
	p := leaders.Snapshot()
	return Result{
		Kind:            kind,
		Input:           in.Name,
		Cycles:          p.Cycles + in.ComputeShare*float64(len(an.Blocks)*in.Passes),
		ContainerCycles: p.Cycles,
		Analysis:        an,
		Profile:         p,
	}
}

// dominators computes the dominator sets with the classic iterative
// algorithm over bitsets.
func dominators(blocks []Block) [][]uint64 {
	n := len(blocks)
	words := (n + 63) / 64
	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << uint(i%64)
	}
	dom := make([][]uint64, n)
	for i := range dom {
		dom[i] = append([]uint64(nil), full...)
	}
	// Entry dominates only itself.
	for w := range dom[0] {
		dom[0][w] = 0
	}
	dom[0][0] = 1

	preds := make([][]int, n)
	for i, b := range blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], i)
		}
	}
	changed := true
	tmp := make([]uint64, words)
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			copy(tmp, full)
			if len(preds[i]) == 0 {
				// Unreachable: dominated by everything; leave as full.
				continue
			}
			for _, p := range preds[i] {
				for w := range tmp {
					tmp[w] &= dom[p][w]
				}
			}
			tmp[i/64] |= 1 << uint(i%64)
			for w := range tmp {
				if tmp[w] != dom[i][w] {
					changed = true
					copy(dom[i], tmp)
					break
				}
			}
		}
	}
	return dom
}

// dominates reports whether block a dominates block b.
func dominates(dom [][]uint64, a, b int) bool {
	return dom[b][a/64]&(1<<uint(a%64)) != 0
}

// RunAll measures every candidate on the input.
func RunAll(in Input, arch machine.Config) []Result {
	out := make([]Result, 0, len(CandidateKinds()))
	for _, k := range CandidateKinds() {
		out = append(out, Run(k, in, arch))
	}
	return out
}
