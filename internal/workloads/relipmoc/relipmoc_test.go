package relipmoc

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
)

func TestGenerateProgramDeterministic(t *testing.T) {
	a := GenerateProgram(500, 1)
	b := GenerateProgram(500, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	c := GenerateProgram(500, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, identical programs")
	}
}

func TestGenerateProgramTargetsInRange(t *testing.T) {
	prog := GenerateProgram(1000, 3)
	for _, ins := range prog {
		switch ins.Op {
		case OpJmp, OpJcc, OpCall:
			if ins.Target >= 1000 {
				t.Fatalf("target %d out of range", ins.Target)
			}
		}
	}
}

func TestBlocksPartitionProgram(t *testing.T) {
	in := Inputs()[0]
	r := Run(adt.KindSet, in, machine.Core2())
	blocks := r.Analysis.Blocks
	if len(blocks) < 2 {
		t.Fatal("too few blocks")
	}
	// Blocks must tile [0, n) without gaps or overlaps.
	if blocks[0].Start != 0 {
		t.Fatalf("first block starts at %d", blocks[0].Start)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Start != blocks[i-1].End {
			t.Fatalf("gap/overlap between blocks %d and %d", i-1, i)
		}
		if blocks[i].End <= blocks[i].Start {
			t.Fatalf("empty block %d", i)
		}
	}
	if blocks[len(blocks)-1].End != uint64(in.Instructions) {
		t.Fatalf("last block ends at %d, want %d", blocks[len(blocks)-1].End, in.Instructions)
	}
}

func TestCFGSuccessorsValid(t *testing.T) {
	r := Run(adt.KindSet, Inputs()[0], machine.Core2())
	n := len(r.Analysis.Blocks)
	for i, b := range r.Analysis.Blocks {
		if len(b.Succs) > 2 {
			t.Fatalf("block %d has %d successors", i, len(b.Succs))
		}
		for _, s := range b.Succs {
			if s < 0 || s >= n {
				t.Fatalf("block %d successor %d out of range", i, s)
			}
		}
	}
}

func TestAnalysisIdenticalAcrossContainers(t *testing.T) {
	// The decompiler's output must not depend on the container
	// implementation — only the cost does.
	in := Inputs()[0]
	base := Run(adt.KindSet, in, machine.Core2())
	for _, k := range []adt.Kind{adt.KindAVLSet, adt.KindSplaySet} {
		r := Run(k, in, machine.Core2())
		if len(r.Analysis.Blocks) != len(base.Analysis.Blocks) ||
			r.Analysis.Loops != base.Analysis.Loops ||
			r.Analysis.MaxNesting != base.Analysis.MaxNesting ||
			r.Analysis.IfCount != base.Analysis.IfCount {
			t.Fatalf("%v analysis diverges from set: %+v vs %+v", k, r.Analysis, base.Analysis)
		}
	}
}

func TestRecoversLoops(t *testing.T) {
	r := Run(adt.KindSet, Inputs()[1], machine.Core2())
	if r.Analysis.Loops == 0 {
		t.Fatal("backward branches present but no loops recovered")
	}
	if r.Analysis.MaxNesting == 0 {
		t.Fatal("no nesting recovered")
	}
	if r.Analysis.IfCount == 0 {
		t.Fatal("no two-way blocks found")
	}
}

func TestAVLBeatsSetOnBothArchs(t *testing.T) {
	// Section 6.4: Brainy suggests replacing set with avl_set and the
	// replacement wins on both microarchitectures.
	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		rs := RunAll(Inputs()[1], arch)
		var set, avl float64
		for _, r := range rs {
			switch r.Kind {
			case adt.KindSet:
				set = r.ContainerCycles
			case adt.KindAVLSet:
				avl = r.ContainerCycles
			}
		}
		if avl >= set {
			t.Fatalf("%s: avl_set (%.3e) not faster than set (%.3e)", arch.Name, avl, set)
		}
	}
}

func TestDominatorsEntryAndSelf(t *testing.T) {
	// Tiny hand CFG: 0->1->2, 1->3, 2->3.
	blocks := []Block{
		{Succs: []int{1}},
		{Succs: []int{2, 3}},
		{Succs: []int{3}},
		{},
	}
	dom := dominators(blocks)
	for i := range blocks {
		if !dominates(dom, i, i) {
			t.Fatalf("block %d does not dominate itself", i)
		}
		if !dominates(dom, 0, i) {
			t.Fatalf("entry does not dominate block %d", i)
		}
	}
	if dominates(dom, 2, 3) {
		t.Fatal("2 must not dominate 3 (path 0->1->3 avoids it)")
	}
	if !dominates(dom, 1, 3) {
		t.Fatal("1 must dominate 3")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(adt.KindAVLSet, Inputs()[0], machine.Atom())
	b := Run(adt.KindAVLSet, Inputs()[0], machine.Atom())
	if a.Cycles != b.Cycles {
		t.Fatal("replay diverged")
	}
}
