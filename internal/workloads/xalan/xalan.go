// Package xalan reproduces the container-relevant kernel of Xalancbmk
// (Section 6.2): the two-level string cache of XalanDOMStringCache. The
// cache keeps a busy list and an available list; releasing a string looks
// it up in the busy list (std::find on a vector in the original code) and
// moves it to the available list. The busy list is the container under
// study: its best implementation flips between vector and hash_set purely
// with the input's search pattern, which controls how many elements each
// find touches (Table 4) and how often the head of the list is erased.
package xalan

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/opstats"
	"repro/internal/profile"
)

// Input is one workload class. The three instances mirror the SPEC inputs
// test/train/reference, scaled to simulator size while preserving the
// paper's qualitative structure: train releases mostly recently-visible
// head strings (shallow finds, frequent erase-at-front), test is small but
// random-pattern, reference is large and random-pattern.
type Input struct {
	Name         string
	Releases     int     // number of release operations (find-heavy path)
	WorkingSet   int     // strings alive in the busy list at steady state
	HeadBias     float64 // 0 = uniform victim choice, 1 = always the oldest string
	EraseFront   float64 // probability a release erases the head outright
	StringBytes  uint64  // simulated string payload size
	ComputeShare float64 // non-container app cycles per release (XSLT work)
}

// Inputs returns the three workload classes.
func Inputs() []Input {
	return []Input{
		{Name: "test", Releases: 4000, WorkingSet: 60, HeadBias: 0.0, EraseFront: 0.02, StringBytes: 32, ComputeShare: 260},
		{Name: "train", Releases: 30000, WorkingSet: 10, HeadBias: 0.97, EraseFront: 0.30, StringBytes: 32, ComputeShare: 260},
		{Name: "reference", Releases: 60000, WorkingSet: 900, HeadBias: 0.0, EraseFront: 0.01, StringBytes: 32, ComputeShare: 260},
	}
}

// InputByName looks up a workload class.
func InputByName(name string) (Input, error) {
	for _, in := range Inputs() {
		if in.Name == name {
			return in, nil
		}
	}
	return Input{}, fmt.Errorf("xalan: unknown input %q", name)
}

// Original is the container Xalancbmk ships with.
func Original() adt.Kind { return adt.KindVector }

// CandidateKinds are the implementations evaluated in Figure 10: the
// original vector, the tree set, and the hash set. The busy list is used
// order-obliviously (membership only), so all are legal.
func CandidateKinds() []adt.Kind {
	return []adt.Kind{adt.KindVector, adt.KindSet, adt.KindHashSet}
}

// Result is one run's measurement.
type Result struct {
	Kind            adt.Kind
	Input           string
	Cycles          float64 // container + attributed app compute
	ContainerCycles float64
	FindInvocations uint64
	TouchedElements uint64
	Profile         profile.Profile
}

// stringCache is the two-level cache: busy strings live in the container
// under study, released strings go to the available free list.
type stringCache struct {
	busy      adt.Container
	available []uint64
	order     []uint64 // insertion order of live strings (oldest first)
	nextID    uint64
}

func (c *stringCache) acquire() uint64 {
	var id uint64
	if n := len(c.available); n > 0 {
		id = c.available[n-1]
		c.available = c.available[:n-1]
	} else {
		c.nextID++
		id = c.nextID
	}
	c.busy.Insert(id)
	c.order = append(c.order, id)
	return id
}

// release looks the string up in the busy list and moves it to the
// available list — XalanDOMStringCache::release.
func (c *stringCache) release(id uint64, orderIdx int) {
	if c.busy.Erase(id) {
		c.available = append(c.available, id)
		c.order = append(c.order[:orderIdx], c.order[orderIdx+1:]...)
	}
}

// Drive executes the workload's operation stream against any busy-list
// container: a plain one, a profiled one, or a Perflint advisor.
func Drive(busy adt.Container, in Input) {
	rng := rand.New(rand.NewSource(int64(len(in.Name)) + int64(in.Releases)))
	cache := &stringCache{busy: busy}
	// Warm the cache to the steady-state working set.
	for i := 0; i < in.WorkingSet; i++ {
		cache.acquire()
	}
	for r := 0; r < in.Releases; r++ {
		// The transformation allocates a fresh string...
		cache.acquire()
		// ...and releases one chosen by the input's search pattern.
		var idx int
		switch {
		case rng.Float64() < in.EraseFront:
			idx = 0 // release the oldest: head erase, vector's worst/best case
		case rng.Float64() < in.HeadBias:
			// Strongly head-biased: one of the few oldest strings.
			idx = rng.Intn(min(4, len(cache.order)))
		default:
			// Uniform over the working set: deep scans for a vector.
			idx = int(math.Floor(rng.Float64() * float64(len(cache.order))))
		}
		if idx >= len(cache.order) {
			idx = len(cache.order) - 1
		}
		cache.release(cache.order[idx], idx)
	}
}

// Run executes the workload with the given busy-list implementation on a
// fresh machine of the given architecture.
func Run(kind adt.Kind, in Input, arch machine.Config) Result {
	m := machine.New(arch)
	busy := profile.NewContainer(kind, m, in.StringBytes,
		"xalan/XalanDOMStringCache.m_busyList", false)
	Drive(busy, in)
	p := busy.Snapshot()
	st := p.Stats
	touched := st.Cost[opstats.OpFind] + st.Cost[opstats.OpErase]
	return Result{
		Kind:            kind,
		Input:           in.Name,
		Cycles:          p.Cycles + in.ComputeShare*float64(in.Releases),
		ContainerCycles: p.Cycles,
		FindInvocations: st.Count[opstats.OpFind] + st.Count[opstats.OpErase],
		TouchedElements: touched,
		Profile:         p,
	}
}

// RunAll measures every candidate on the input.
func RunAll(in Input, arch machine.Config) []Result {
	out := make([]Result, 0, len(CandidateKinds()))
	for _, k := range CandidateKinds() {
		out = append(out, Run(k, in, arch))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
