package xalan

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
)

// BenchmarkRunPerKind measures one test-input run per busy-list kind,
// reporting the simulated cycles as a metric — the Figure 10 cell values.
func BenchmarkRunPerKind(b *testing.B) {
	in, err := InputByName("test")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range CandidateKinds() {
		b.Run(k.String(), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cycles = Run(k, in, machine.Core2()).Cycles
			}
			b.ReportMetric(cycles, "sim-cycles")
		})
	}
}

// BenchmarkDrive measures the raw workload loop without profiling overhead.
func BenchmarkDrive(b *testing.B) {
	in, err := InputByName("test")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		Drive(adt.New(adt.KindHashSet, nil, in.StringBytes), in)
	}
}
