package xalan

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
)

func TestInputsWellFormed(t *testing.T) {
	ins := Inputs()
	if len(ins) != 3 {
		t.Fatalf("want test/train/reference, got %d inputs", len(ins))
	}
	names := map[string]bool{}
	for _, in := range ins {
		names[in.Name] = true
		if in.Releases <= 0 || in.WorkingSet <= 0 {
			t.Fatalf("degenerate input %+v", in)
		}
	}
	for _, want := range []string{"test", "train", "reference"} {
		if !names[want] {
			t.Fatalf("missing input %q", want)
		}
	}
	if _, err := InputByName("train"); err != nil {
		t.Fatal(err)
	}
	if _, err := InputByName("nope"); err == nil {
		t.Fatal("unknown input accepted")
	}
}

func TestOracleMatchesPaperPerInput(t *testing.T) {
	// Figure 11's Oracle row: hash_set for test and reference, vector for
	// train, identically on both microarchitectures.
	want := map[string]adt.Kind{
		"test":      adt.KindHashSet,
		"train":     adt.KindVector,
		"reference": adt.KindHashSet,
	}
	for _, arch := range []machine.Config{machine.Core2(), machine.Atom()} {
		for _, in := range Inputs() {
			rs := RunAll(in, arch)
			best := 0
			for i := range rs {
				if rs[i].Cycles < rs[best].Cycles {
					best = i
				}
			}
			if rs[best].Kind != want[in.Name] {
				t.Errorf("%s/%s: best = %v, want %v", arch.Name, in.Name, rs[best].Kind, want[in.Name])
			}
		}
	}
}

func TestTable4TouchedElementsGrowWithInput(t *testing.T) {
	// Table 4: the total number of touched data elements per find explodes
	// from train (shallow hits) to reference (deep scans).
	arch := machine.Core2()
	train := Run(adt.KindVector, mustInput(t, "train"), arch)
	ref := Run(adt.KindVector, mustInput(t, "reference"), arch)
	trainPerFind := float64(train.TouchedElements) / float64(train.FindInvocations)
	refPerFind := float64(ref.TouchedElements) / float64(ref.FindInvocations)
	if refPerFind < 10*trainPerFind {
		t.Fatalf("touched/find: train %.1f vs reference %.1f — reference must be far deeper", trainPerFind, refPerFind)
	}
}

func TestDeterministicRuns(t *testing.T) {
	in := mustInput(t, "test")
	a := Run(adt.KindSet, in, machine.Core2())
	b := Run(adt.KindSet, in, machine.Core2())
	if a.Cycles != b.Cycles || a.TouchedElements != b.TouchedElements {
		t.Fatal("same input, different measurements")
	}
}

func TestCacheNeverLosesStrings(t *testing.T) {
	in := mustInput(t, "test")
	r := Run(adt.KindHashSet, in, machine.Core2())
	// Every release must have found its string: erase count == successes.
	if r.FindInvocations == 0 {
		t.Fatal("no find/erase activity")
	}
	if r.Profile.Stats.MaxLen == 0 {
		t.Fatal("busy list never grew")
	}
}

func TestProfileIsOrderOblivious(t *testing.T) {
	r := Run(adt.KindVector, mustInput(t, "test"), machine.Core2())
	if r.Profile.OrderAware {
		t.Fatal("busy list must be profiled as order-oblivious (membership only)")
	}
	if r.Profile.Kind != adt.KindVector {
		t.Fatalf("profile kind %v", r.Profile.Kind)
	}
}

func mustInput(t *testing.T, name string) Input {
	t.Helper()
	in, err := InputByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return in
}
