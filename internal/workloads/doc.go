// Package workloads groups the re-implementations of the paper's four
// evaluation applications (Section 6). Each subpackage builds the
// container-relevant kernel of the original program as a real Go system —
// not a trace replay — parameterized by input classes whose container-usage
// patterns match the paper's descriptions:
//
//   - xalan: Xalancbmk's two-level string cache, whose busy-list search
//     pattern flips the best container between vector and hash_set across
//     the test/train/reference inputs (Figures 10-11, Table 4).
//   - chord: a Chord DHT lookup simulator with finger-table routing, whose
//     pending-message list's optimum moves across inputs and splits the two
//     microarchitectures on the large input (Figures 12-13).
//   - relipmoc: a toy-ISA decompiler (basic blocks, CFG, dominators,
//     natural loops) whose basic-block set prefers avl_set (Section 6.4).
//   - raytrace: a sphere-group ray tracer whose per-ray group iteration
//     prefers vector over the original list (Section 6.5).
//
// Every subpackage exposes the same surface: Inputs/InputByName, Original,
// CandidateKinds, Run/RunAll for measurements, and a Drive function that
// replays the workload's exact operation stream into any adt.Container —
// the hook the experiment harness uses to evaluate the Baseline, Perflint,
// Brainy, and Oracle selection schemes over identical behaviour.
package workloads
