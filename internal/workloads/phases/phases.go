// Package phases is a synthetic two-phase workload built to *provably*
// change phase mid-run: a build phase that appends a working set into its
// container (append/scan dominant — vector territory), then a query phase
// that searches the same container over and over (find dominant — hash
// territory). A whole-run profile blends the two into mush; a windowed
// timeline shows the operation mix flip at the boundary, which makes this
// the reference workload for the drift detector, the phasedemo example,
// and the CI observability smoke.
//
// Everything is deterministic — fixed key schedule, no randomness, no
// clocks — so tests and CI can assert exact drift behaviour.
package phases

import "repro/internal/adt"

// Original is the container the synthetic application ships with.
const Original = adt.KindVector

// Context is the construction-site label the demo registers under.
const Context = "phasedemo/working-set"

// Config sizes the two phases. The zero value gets usable defaults.
type Config struct {
	// Keys is the working-set size built during phase one (default 256).
	Keys int
	// Scans is how many short iterations the build phase interleaves
	// (default Keys/8) — enough to look scan-ish, not enough to dominate.
	Scans int
	// Finds is how many membership queries the query phase issues
	// (default 4×Keys), each hitting a key known to be present.
	Finds int
}

func (c Config) withDefaults() Config {
	if c.Keys < 1 {
		c.Keys = 256
	}
	if c.Scans < 1 {
		c.Scans = c.Keys / 8
		if c.Scans < 1 {
			c.Scans = 1
		}
	}
	if c.Finds < 1 {
		c.Finds = 4 * c.Keys
	}
	return c
}

// Ops returns the total interface invocations Drive will issue, so callers
// can size snapshot windows to land boundaries inside each phase.
func (c Config) Ops() int {
	c = c.withDefaults()
	return c.Keys + c.Scans + c.Finds
}

// Drive replays the workload into any container: phase one appends the
// working set with interleaved short scans, phase two queries membership.
// The key schedule is a fixed permutation, so two Drives over identical
// containers produce identical operation streams.
func Drive(c adt.Container, cfg Config) {
	cfg = cfg.withDefaults()

	// Phase one: build. Keys arrive in a multiplicative shuffle so the
	// container sees unordered insertion, with a short scan every few
	// appends (a consumer walking the most recent entries).
	scanEvery := cfg.Keys / cfg.Scans
	if scanEvery < 1 {
		scanEvery = 1
	}
	scans := 0
	for i := 0; i < cfg.Keys; i++ {
		c.Insert(key(i, cfg.Keys))
		if (i+1)%scanEvery == 0 && scans < cfg.Scans {
			c.Iterate(8)
			scans++
		}
	}
	for ; scans < cfg.Scans; scans++ {
		c.Iterate(8)
	}

	// Phase two: query. Every lookup hits — the point is the access
	// pattern, not the miss rate — and walks the key space in a stride
	// coprime to its size so consecutive finds touch scattered elements.
	for i := 0; i < cfg.Finds; i++ {
		c.Find(key(i*7, cfg.Keys))
	}
}

// key maps a schedule index to a working-set key: a fixed multiplicative
// hash keeps the sequence unordered without any random state.
func key(i, n int) uint64 {
	return uint64(i%n) * 2654435761 % (uint64(n) * 16)
}
