package phases

import (
	"reflect"
	"testing"

	"repro/internal/adt"
	"repro/internal/containers/adaptive"
	"repro/internal/drift"
	"repro/internal/machine"
	"repro/internal/profile"
)

// runWindowed drives the workload on a windowed, profiled vector and
// returns the drift events plus the emitted windows — the exact pipeline
// examples/phasedemo wires up.
func runWindowed(t *testing.T, window int) ([]drift.Event, []profile.WindowRecord) {
	t.Helper()
	arch := machine.Core2()
	m := machine.New(arch)
	det := drift.New(drift.Rules, drift.Config{Window: 2, Hysteresis: 2})
	ring := profile.NewWindowRing(1024)

	reg := profile.NewRegistry(m)
	reg.EnableWindows(window, profile.MultiWindowSink(ring, det.Sink(arch.Name)))
	c := reg.NewContainer(Original, 8, Context, false)
	Drive(c, Config{})
	reg.FlushWindows()
	return det.Events(), ring.Records()
}

// TestDriveProvablyChangesPhase is the acceptance check: the demo workload
// run with windowing produces at least one drift event, deterministically —
// two runs yield byte-identical event lists, and the drift goes where the
// construction says it must (vector advice in the build phase, hash_set in
// the query phase).
func TestDriveProvablyChangesPhase(t *testing.T) {
	evs, windows := runWindowed(t, 64)
	if len(evs) == 0 {
		t.Fatal("phase workload produced no drift events")
	}
	first := evs[0]
	if first.From != adt.KindVector || first.To != adt.KindHashSet {
		t.Fatalf("drift %v -> %v, want vector -> hash_set", first.From, first.To)
	}
	if first.InstanceKey != Context+"#0" {
		t.Fatalf("drift on %q", first.InstanceKey)
	}

	// The phases are visible in the raw timeline too: the first window is
	// insert-dominant with zero finds, the last is all finds.
	if len(windows) < 3 {
		t.Fatalf("only %d windows emitted", len(windows))
	}
	head, tail := windows[0], windows[len(windows)-2] // -2: last full window
	if headFinds := head.Vector()[2]; headFinds != 0 {
		t.Fatalf("build-phase window has find fraction %g", headFinds)
	}
	if tailFinds := tail.Vector()[2]; tailFinds != 1 {
		t.Fatalf("query-phase window has find fraction %g, want 1", tailFinds)
	}

	// Determinism: the exact event sequence repeats.
	evs2, _ := runWindowed(t, 64)
	if !reflect.DeepEqual(evs, evs2) {
		t.Fatalf("drift events differ across identical runs:\n%v\nvs\n%v", evs, evs2)
	}
}

// TestDriveDeterministicStream: the operation stream itself is fixed — two
// drives produce identical cumulative statistics.
func TestDriveDeterministicStream(t *testing.T) {
	run := func() profile.Profile {
		m := machine.New(machine.Core2())
		c := profile.NewContainer(Original, m, 8, Context, false)
		Drive(c, Config{Keys: 128})
		return c.Snapshot()
	}
	a, b := run(), run()
	if a.Stats != b.Stats || a.HW != b.HW {
		t.Fatal("two identical drives diverged")
	}
	if got := a.Stats.TotalCalls(); got != uint64(Config{Keys: 128}.Ops()) {
		t.Fatalf("drive issued %d ops, Ops() promised %d", got, Config{Keys: 128}.Ops())
	}
}

// TestQueriesAlwaysHit: phase two only searches keys phase one inserted,
// so the find-cost signal reflects successful searches.
func TestQueriesAlwaysHit(t *testing.T) {
	m := machine.New(machine.Core2())
	c := adt.New(Original, m, 8)
	cfg := Config{Keys: 64}.withDefaults()
	for i := 0; i < cfg.Keys; i++ {
		c.Insert(key(i, cfg.Keys))
	}
	for i := 0; i < cfg.Finds; i++ {
		if !c.Find(key(i*7, cfg.Keys)) {
			t.Fatalf("query %d missed", i)
		}
	}
}

// TestDriveAdaptiveMigratesExactlyOnce is the closed-loop counterpart of
// TestDriveProvablyChangesPhase: run the same workload through the adaptive
// container and the drift event does not just print — the backend hot-swaps
// vector -> hash_set exactly once, deterministically.
func TestDriveAdaptiveMigratesExactlyOnce(t *testing.T) {
	run := func() []adaptive.Migration {
		m := machine.New(machine.Core2())
		a := adaptive.New(m, adaptive.Config{
			Kind:     Original,
			ElemSize: 8,
			Context:  Context,
			Window:   64,
			Detector: drift.Config{Window: 2, Hysteresis: 2},
		})
		Drive(a, Config{})
		a.FlushWindow()
		if a.Kind() != adt.KindHashSet {
			t.Fatalf("final kind %v, want hash_set", a.Kind())
		}
		if a.DriftSkipped() != 0 {
			t.Fatalf("advisor skipped %d windows", a.DriftSkipped())
		}
		return a.Migrations()
	}
	migs := run()
	if len(migs) != 1 {
		t.Fatalf("migrations = %+v, want exactly one", migs)
	}
	if migs[0].From != adt.KindVector || migs[0].To != adt.KindHashSet {
		t.Fatalf("migrated %v -> %v, want vector -> hash_set", migs[0].From, migs[0].To)
	}
	if migs[0].EndOp <= migs[0].StartOp || migs[0].Moved == 0 {
		t.Fatalf("migration never finalized: %+v", migs[0])
	}
	if again := run(); !reflect.DeepEqual(migs, again) {
		t.Fatalf("migration log differs across identical runs:\n%+v\nvs\n%+v", migs, again)
	}
}
