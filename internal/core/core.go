// Package core is Brainy itself: the data-structure selection tool of the
// paper. Given profiles of how an application's containers behaved on a
// specific microarchitecture — collected through the instrumented library in
// internal/profile — Brainy consults the per-container ANN models trained by
// internal/training and reports, per construction site, which alternative
// implementation would have been fastest, prioritized by how much of the
// application's time each container accounts for (Section 3's usage model).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/adt"
	"repro/internal/profile"
	"repro/internal/training"
)

// Brainy is the selector: a set of trained models plus the report logic.
type Brainy struct {
	models  *training.ModelSet
	explain bool
}

// New builds a selector around a trained model registry.
func New(models *training.ModelSet) *Brainy {
	if models == nil {
		models = training.NewModelSet()
	}
	return &Brainy{models: models}
}

// Models exposes the underlying registry.
func (b *Brainy) Models() *training.ModelSet { return b.models }

// SetExplain toggles decision provenance: when on, every Suggestion carries
// an Explanation with the full per-kind class distribution the verdict was
// picked from. Off (the default) keeps suggestions lean — the CLI report
// does not need the losing probabilities.
func (b *Brainy) SetExplain(on bool) { b.explain = on }

// KindProb is one entry of a class distribution: a candidate kind and the
// model probability assigned to it.
type KindProb struct {
	Kind adt.Kind `json:"kind"`
	Prob float64  `json:"prob"`
}

// Explanation is the provenance of one Suggestion: the model's full class
// distribution, sorted by descending probability (the suggested kind first).
type Explanation struct {
	Probs []KindProb `json:"probs"`
}

// Suggestion is Brainy's verdict for one container instance.
type Suggestion struct {
	Context    string   `json:"context"`    // construction site
	Original   adt.Kind `json:"original"`   // what the application uses today
	Suggested  adt.Kind `json:"suggested"`  // what Brainy would use instead
	Confidence float64  `json:"confidence"` // model probability of the suggested class
	CyclesPct  float64  `json:"cycles_pct"` // share of profiled cycles this container accounts for
	Replace    bool     `json:"replace"`    // Suggested != Original

	// Memory estimates at the container's observed high-water size: the
	// bloat dimension of a replacement. A positive MemDeltaPct means the
	// suggested implementation uses more memory.
	MemOriginal  uint64  `json:"mem_original"`
	MemSuggested uint64  `json:"mem_suggested"`
	MemDeltaPct  float64 `json:"mem_delta_pct"`

	// Explanation carries the full class distribution behind the verdict.
	// Nil unless the Brainy that produced the suggestion has SetExplain on.
	Explanation *Explanation `json:"explanation,omitempty"`
}

// String formats the suggestion as one report line.
func (s Suggestion) String() string {
	verdict := "keep"
	if s.Replace {
		verdict = "replace with " + s.Suggested.String()
	}
	mem := ""
	if s.Replace && s.MemOriginal > 0 {
		mem = fmt.Sprintf(", memory %+.0f%%", s.MemDeltaPct)
	}
	return fmt.Sprintf("%-40s %-9s -> %-28s (%.0f%% of cycles, confidence %.2f%s)",
		s.Context, s.Original, verdict, s.CyclesPct*100, s.Confidence, mem)
}

// Suggest runs the model for one profile on the named architecture.
func (b *Brainy) Suggest(p *profile.Profile, arch string) (Suggestion, error) {
	m, ok := b.models.Get(p.Kind, p.OrderAware, arch)
	if !ok {
		return Suggestion{}, fmt.Errorf("core: no model for %v (orderAware=%v) on %s", p.Kind, p.OrderAware, arch)
	}
	return suggestionFrom(p, m, m.Net.Probabilities(p.Vector()), b.explain), nil
}

// SuggestBatch runs the models for many profiles in as few network passes
// as possible: profiles sharing a model target are evaluated in one
// ProbabilitiesBatch matrix pass, amortizing per-call overhead. Results are
// positional — sugs[i] and errs[i] describe ps[i] — and bit-identical to
// calling Suggest on each profile, which is what lets the batched server
// answer exactly what the sequential CLI answers. A profile whose (kind,
// orderAware) has no model on arch gets a per-profile error, matching
// Suggest's.
func (b *Brainy) SuggestBatch(ps []*profile.Profile, arch string) (sugs []Suggestion, errs []error) {
	sugs = make([]Suggestion, len(ps))
	errs = make([]error, len(ps))
	type target struct {
		kind       adt.Kind
		orderAware bool
	}
	groups := make(map[target][]int)
	var order []target // deterministic evaluation order: first appearance
	for i, p := range ps {
		tg := target{p.Kind, p.OrderAware}
		if _, ok := groups[tg]; !ok {
			order = append(order, tg)
		}
		groups[tg] = append(groups[tg], i)
	}
	for _, tg := range order {
		idxs := groups[tg]
		m, ok := b.models.Get(tg.kind, tg.orderAware, arch)
		if !ok {
			err := fmt.Errorf("core: no model for %v (orderAware=%v) on %s", tg.kind, tg.orderAware, arch)
			for _, i := range idxs {
				errs[i] = err
			}
			continue
		}
		xs := make([][]float64, len(idxs))
		for j, i := range idxs {
			xs[j] = ps[i].Vector()
		}
		probsList := m.Net.ProbabilitiesBatch(xs)
		for j, i := range idxs {
			sugs[i] = suggestionFrom(ps[i], m, probsList[j], b.explain)
		}
	}
	return sugs, errs
}

// suggestionFrom assembles the verdict for one profile from its model's
// class distribution — the single shared tail of Suggest and SuggestBatch,
// so the two paths cannot drift apart.
func suggestionFrom(p *profile.Profile, m *training.Model, probs []float64, explain bool) Suggestion {
	best := 0
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[best] {
			best = i
		}
	}
	kind := m.Candidates[best]
	s := Suggestion{
		Context:    p.Context,
		Original:   p.Kind,
		Suggested:  kind,
		Confidence: probs[best],
		Replace:    kind != p.Kind,
	}
	n := int(p.Stats.MaxLen)
	s.MemOriginal = adt.EstimatedBytes(p.Kind, n, p.Stats.ElemSize)
	s.MemSuggested = adt.EstimatedBytes(kind, n, p.Stats.ElemSize)
	if s.MemOriginal > 0 {
		s.MemDeltaPct = 100 * (float64(s.MemSuggested) - float64(s.MemOriginal)) / float64(s.MemOriginal)
	}
	if explain {
		ex := &Explanation{Probs: make([]KindProb, len(probs))}
		for i, pr := range probs {
			ex.Probs[i] = KindProb{Kind: m.Candidates[i], Prob: pr}
		}
		sort.SliceStable(ex.Probs, func(a, b int) bool { return ex.Probs[a].Prob > ex.Probs[b].Prob })
		s.Explanation = ex
	}
	return s
}

// Report is the prioritized analysis of a whole application run.
type Report struct {
	Arch        string
	Suggestions []Suggestion // sorted by descending cycle share
	Skipped     []string     // contexts without a trained model
}

// Analyze produces a report over all profiled containers of a run. The
// suggestions are sorted by each container's share of the total profiled
// cycles, so developers see the most profitable replacements first — the
// paper's post-processing that "takes relative execution time and calling
// context into consideration".
func (b *Brainy) Analyze(profiles []profile.Profile, arch string) Report {
	rep, _ := AnalyzeContext(context.Background(), b.Suggest, profiles, arch)
	return rep
}

// AnalyzeContext is Analyze with cancellation: it aborts between profiles
// when ctx is done, returning the context error. Long-lived callers
// (brainy-serve) use it to honor per-request deadlines.
func (b *Brainy) AnalyzeContext(ctx context.Context, profiles []profile.Profile, arch string) (Report, error) {
	return AnalyzeContext(ctx, b.Suggest, profiles, arch)
}

// Suggester produces the verdict for one profile. Brainy.Suggest is the
// canonical implementation; wrappers layer caching or instrumentation on
// top without re-implementing the report logic.
type Suggester func(p *profile.Profile, arch string) (Suggestion, error)

// AnalyzeContext runs the report pipeline over an arbitrary Suggester,
// checking ctx between inferences. On cancellation it returns the partial
// report alongside ctx's error.
func AnalyzeContext(ctx context.Context, suggest Suggester, profiles []profile.Profile, arch string) (Report, error) {
	rep := Report{Arch: arch}
	var total float64
	for i := range profiles {
		total += profiles[i].Cycles
	}
	if total == 0 {
		total = 1
	}
	for i := range profiles {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		p := &profiles[i]
		s, err := suggest(p, arch)
		if err != nil {
			rep.Skipped = append(rep.Skipped, p.Context)
			continue
		}
		s.CyclesPct = p.Cycles / total
		rep.Suggestions = append(rep.Suggestions, s)
	}
	sort.SliceStable(rep.Suggestions, func(i, j int) bool {
		return rep.Suggestions[i].CyclesPct > rep.Suggestions[j].CyclesPct
	})
	return rep, nil
}

// Render formats the report for a terminal.
func (r Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Brainy report (%s): %d container(s) profiled\n", r.Arch, len(r.Suggestions))
	for _, s := range r.Suggestions {
		sb.WriteString("  " + s.String() + "\n")
	}
	if len(r.Skipped) > 0 {
		fmt.Fprintf(&sb, "  (no model for %d container(s): %s)\n", len(r.Skipped), strings.Join(r.Skipped, ", "))
	}
	return sb.String()
}

// Replacements returns only the suggestions that recommend a change.
func (r Report) Replacements() []Suggestion {
	var out []Suggestion
	for _, s := range r.Suggestions {
		if s.Replace {
			out = append(out, s)
		}
	}
	return out
}
