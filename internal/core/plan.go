package core

import (
	"encoding/json"
	"io"
)

// PlanEntry is one machine-readable replacement instruction, the format a
// code refactoring tool (Section 3's optional consumer) would ingest.
type PlanEntry struct {
	Context     string  `json:"context"`
	From        string  `json:"from"`
	To          string  `json:"to"`
	Confidence  float64 `json:"confidence"`
	CyclesPct   float64 `json:"cycles_pct"`
	MemDeltaPct float64 `json:"mem_delta_pct"`
}

// Plan extracts the replacement instructions from a report.
func (r Report) Plan() []PlanEntry {
	var out []PlanEntry
	for _, s := range r.Replacements() {
		out = append(out, PlanEntry{
			Context:     s.Context,
			From:        s.Original.String(),
			To:          s.Suggested.String(),
			Confidence:  s.Confidence,
			CyclesPct:   s.CyclesPct,
			MemDeltaPct: s.MemDeltaPct,
		})
	}
	return out
}

// WritePlan serializes the replacement plan as JSON.
func (r Report) WritePlan(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Plan())
}
