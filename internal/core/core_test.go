package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/ann"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/training"
)

var (
	once   sync.Once
	models *training.ModelSet
	tErr   error
)

// testModels trains a single small vector model shared by the tests.
func testModels(t *testing.T) *training.ModelSet {
	t.Helper()
	once.Do(func() {
		opt := training.DefaultOptions(machine.Core2())
		opt.AppCfg.TotalInterfCalls = 200
		opt.AppCfg.MaxPrepopulate = 300
		opt.AppCfg.MaxIterCount = 600
		opt.PerTargetApps = 60
		opt.MaxSeeds = 600
		cfg := ann.DefaultConfig()
		cfg.Epochs = 100
		tgt := adt.ModelTarget{Kind: adt.KindVector, OrderAware: false}
		labels, err := training.Phase1(context.Background(), tgt, opt)
		if err != nil {
			tErr = err
			return
		}
		ds, err := training.Phase2(context.Background(), tgt, labels, opt)
		if err != nil {
			tErr = err
			return
		}
		var m *training.Model
		m, tErr = training.TrainModel(ds, "Core2", cfg)
		if tErr == nil {
			models = training.NewModelSet()
			models.Put(m)
		}
	})
	if tErr != nil {
		t.Fatal(tErr)
	}
	return models
}

// profileOf runs a quick workload against a vector and snapshots it.
func profileOf(context string, n int) profile.Profile {
	m := machine.New(machine.Core2())
	c := profile.NewContainer(adt.KindVector, m, 8, context, false)
	for i := uint64(0); i < uint64(n); i++ {
		c.Insert(i)
	}
	for i := 0; i < n; i++ {
		c.Find(uint64(i * 3))
	}
	return c.Snapshot()
}

func TestSuggestLegalCandidate(t *testing.T) {
	b := New(testModels(t))
	p := profileOf("app/main.cache", 500)
	s, err := b.Suggest(&p, "Core2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Context != "app/main.cache" || s.Original != adt.KindVector {
		t.Fatalf("suggestion metadata wrong: %+v", s)
	}
	legal := map[adt.Kind]bool{adt.KindVector: true}
	for _, k := range adt.Candidates(adt.KindVector, false) {
		legal[k] = true
	}
	if !legal[s.Suggested] {
		t.Fatalf("suggested illegal kind %v", s.Suggested)
	}
	if s.Confidence <= 0 || s.Confidence > 1 {
		t.Fatalf("confidence %f", s.Confidence)
	}
	if s.Replace != (s.Suggested != s.Original) {
		t.Fatal("Replace flag inconsistent")
	}
}

func TestSuggestMissingModel(t *testing.T) {
	b := New(testModels(t))
	p := profileOf("x", 10)
	if _, err := b.Suggest(&p, "Atom"); err == nil {
		t.Fatal("suggestion without an Atom model succeeded")
	}
	p.Kind = adt.KindMap
	if _, err := b.Suggest(&p, "Core2"); err == nil {
		t.Fatal("suggestion without a map model succeeded")
	}
}

func TestAnalyzeSortsByCycleShare(t *testing.T) {
	b := New(testModels(t))
	small := profileOf("small.container", 50)
	big := profileOf("big.container", 3000)
	rep := b.Analyze([]profile.Profile{small, big}, "Core2")
	if len(rep.Suggestions) != 2 {
		t.Fatalf("suggestions = %d (skipped: %v)", len(rep.Suggestions), rep.Skipped)
	}
	if rep.Suggestions[0].Context != "big.container" {
		t.Fatalf("report not prioritized by cycles: %+v", rep.Suggestions)
	}
	sum := rep.Suggestions[0].CyclesPct + rep.Suggestions[1].CyclesPct
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("cycle shares sum to %f", sum)
	}
}

func TestAnalyzeSkipsUnknownKinds(t *testing.T) {
	b := New(testModels(t))
	p := profileOf("known", 50)
	q := p
	q.Kind = adt.KindSplaySet
	q.Context = "unknown"
	rep := b.Analyze([]profile.Profile{p, q}, "Core2")
	if len(rep.Suggestions) != 1 || len(rep.Skipped) != 1 || rep.Skipped[0] != "unknown" {
		t.Fatalf("skip handling wrong: %+v", rep)
	}
	if !strings.Contains(rep.Render(), "no model for") {
		t.Fatal("render omits skipped containers")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	b := New(nil)
	rep := b.Analyze(nil, "Core2")
	if len(rep.Suggestions) != 0 {
		t.Fatal("suggestions from nothing")
	}
	if rep.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestReplacementsFilter(t *testing.T) {
	rep := Report{Suggestions: []Suggestion{
		{Context: "a", Replace: true},
		{Context: "b", Replace: false},
		{Context: "c", Replace: true},
	}}
	got := rep.Replacements()
	if len(got) != 2 || got[0].Context != "a" || got[1].Context != "c" {
		t.Fatalf("replacements = %+v", got)
	}
}

func TestSuggestionString(t *testing.T) {
	s := Suggestion{Context: "ctx", Original: adt.KindVector, Suggested: adt.KindHashSet, Replace: true, Confidence: 0.9, CyclesPct: 0.5}
	if out := s.String(); !strings.Contains(out, "replace with hash_set") || !strings.Contains(out, "ctx") {
		t.Fatalf("string = %q", out)
	}
	s.Replace = false
	if out := s.String(); !strings.Contains(out, "keep") {
		t.Fatalf("string = %q", out)
	}
}

// TestSuggestBatchMatchesSuggest is the batched-advisor contract: across a
// mixed batch (several distinct profiles, duplicates, and a kind with no
// trained model), SuggestBatch returns positionally bit-identical verdicts
// and errors to one-at-a-time Suggest.
func TestSuggestBatchMatchesSuggest(t *testing.T) {
	b := New(testModels(t))
	ps := []*profile.Profile{}
	for i := 0; i < 7; i++ {
		p := profileOf(fmt.Sprintf("batch/site%d", i), 50+i*40)
		ps = append(ps, &p)
	}
	dup := *ps[2] // a duplicate vector must get the identical verdict
	ps = append(ps, &dup)
	unknown := profileOf("batch/unknown", 30)
	unknown.Kind = adt.KindSet // no set model in the test registry
	ps = append(ps, &unknown)

	sugs, errs := b.SuggestBatch(ps, "Core2")
	if len(sugs) != len(ps) || len(errs) != len(ps) {
		t.Fatalf("batch returned %d/%d results for %d profiles", len(sugs), len(errs), len(ps))
	}
	for i, p := range ps {
		want, wantErr := b.Suggest(p, "Core2")
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("profile %d: batch err %v, single err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			if errs[i].Error() != wantErr.Error() {
				t.Fatalf("profile %d: error text diverged: %q vs %q", i, errs[i], wantErr)
			}
			continue
		}
		if sugs[i] != want { // struct equality: every field, bit-for-bit
			t.Fatalf("profile %d: batch verdict diverged:\n batch  %+v\n single %+v", i, sugs[i], want)
		}
	}

	// Empty batch is a no-op, not a panic.
	if s, e := b.SuggestBatch(nil, "Core2"); len(s) != 0 || len(e) != 0 {
		t.Fatalf("empty batch returned %d/%d", len(s), len(e))
	}
}
