package core

import (
	"bytes"
	"testing"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/profile"
)

// TestTracePipeline exercises the full tool flow of Figure 3: an
// application profiles several containers through a registry, the trace is
// serialized (the "trace files" of the paper), read back, and analyzed.
func TestTracePipeline(t *testing.T) {
	models := testModels(t) // vector/oblivious model on Core2

	// The "application": two construction sites, one of them hot.
	m := machine.New(machine.Core2())
	reg := profile.NewRegistry(m)
	hot := reg.NewContainer(adt.KindVector, 8, "app/cache.entries", false)
	cold := reg.NewContainer(adt.KindVector, 8, "app/config.flags", false)
	for i := uint64(0); i < 1500; i++ {
		hot.Insert(i)
	}
	for i := uint64(0); i < 6000; i++ {
		hot.Find(i % 3000)
	}
	for i := uint64(0); i < 8; i++ {
		cold.Insert(i)
	}

	// Serialize and reload the trace.
	var buf bytes.Buffer
	if err := profile.WriteTrace(&buf, reg.Snapshots()); err != nil {
		t.Fatal(err)
	}
	profiles, err := profile.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("trace records = %d", len(profiles))
	}

	// Analyze: the hot container must lead the report.
	rep := New(models).Analyze(profiles, "Core2")
	if len(rep.Suggestions) != 2 {
		t.Fatalf("suggestions = %d (skipped %v)", len(rep.Suggestions), rep.Skipped)
	}
	if rep.Suggestions[0].Context != "app/cache.entries" {
		t.Fatalf("hot container not first: %+v", rep.Suggestions[0])
	}
	if rep.Suggestions[0].CyclesPct < 0.9 {
		t.Fatalf("hot container share = %f", rep.Suggestions[0].CyclesPct)
	}

	// The plan must round-trip as JSON.
	var plan bytes.Buffer
	if err := rep.WritePlan(&plan); err != nil {
		t.Fatal(err)
	}
	if plan.Len() == 0 {
		t.Fatal("empty plan output")
	}
}
