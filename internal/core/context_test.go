package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/profile"
)

func TestAnalyzeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	profiles := []profile.Profile{profileOf("a", 10), profileOf("b", 10)}
	suggest := func(p *profile.Profile, arch string) (Suggestion, error) {
		t.Fatal("suggester ran under a cancelled context")
		return Suggestion{}, nil
	}
	_, err := AnalyzeContext(ctx, suggest, profiles, "Core2")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeContextPartialOnDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	profiles := []profile.Profile{profileOf("a", 10), profileOf("b", 10), profileOf("c", 10)}
	calls := 0
	suggest := func(p *profile.Profile, arch string) (Suggestion, error) {
		calls++
		if calls == 2 {
			cancel() // expires before the third profile
		}
		return Suggestion{Context: p.Context}, nil
	}
	rep, err := AnalyzeContext(ctx, suggest, profiles, "Core2")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 || len(rep.Suggestions) != 2 {
		t.Fatalf("calls = %d, partial suggestions = %d", calls, len(rep.Suggestions))
	}
}

func TestAnalyzeContextCustomSuggester(t *testing.T) {
	// A custom suggester feeds the same report pipeline: skipped contexts
	// and cycle-share sorting behave exactly like Brainy.Analyze.
	a, b := profileOf("hot", 10), profileOf("cold", 10)
	a.Cycles, b.Cycles = 900, 100
	suggest := func(p *profile.Profile, arch string) (Suggestion, error) {
		if p.Context == "cold" {
			return Suggestion{}, errors.New("no model")
		}
		return Suggestion{Context: p.Context, Replace: true}, nil
	}
	rep, err := AnalyzeContext(context.Background(), suggest, []profile.Profile{b, a}, "Atom")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arch != "Atom" || len(rep.Suggestions) != 1 || rep.Suggestions[0].Context != "hot" {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != "cold" {
		t.Fatalf("skipped = %v", rep.Skipped)
	}
	if pct := rep.Suggestions[0].CyclesPct; pct < 0.89 || pct > 0.91 {
		t.Fatalf("cycles pct = %f", pct)
	}
}
