package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/adt"
)

func TestPlanOnlyReplacements(t *testing.T) {
	rep := Report{Suggestions: []Suggestion{
		{Context: "a", Original: adt.KindVector, Suggested: adt.KindHashSet, Replace: true, Confidence: 0.8, CyclesPct: 0.6, MemDeltaPct: 12},
		{Context: "b", Original: adt.KindSet, Suggested: adt.KindSet, Replace: false},
	}}
	plan := rep.Plan()
	if len(plan) != 1 {
		t.Fatalf("plan entries = %d", len(plan))
	}
	e := plan[0]
	if e.Context != "a" || e.From != "vector" || e.To != "hash_set" || e.MemDeltaPct != 12 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestWritePlanJSON(t *testing.T) {
	rep := Report{Suggestions: []Suggestion{
		{Context: "x", Original: adt.KindList, Suggested: adt.KindVector, Replace: true, Confidence: 0.95},
	}}
	var buf bytes.Buffer
	if err := rep.WritePlan(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []PlanEntry
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].To != "vector" {
		t.Fatalf("decoded = %+v", decoded)
	}
}
