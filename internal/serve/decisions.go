package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/serve/flight"
)

// decisionsPath is where the decision journal mounts.
const decisionsPath = "/debug/decisions"

// DecisionsResponse is the ?format=json body of GET /debug/decisions: the
// merged flight-recorder journal, oldest first, after filtering.
type DecisionsResponse struct {
	SchemaVersion int             `json:"schema_version"`
	Enabled       bool            `json:"enabled"`
	Capacity      int             `json:"capacity"` // retained records across shards
	Total         uint64          `json:"total"`    // records ever journaled (including overwritten)
	Returned      int             `json:"returned"`
	Records       []flight.Record `json:"records"`
}

// decisionFilter is the parsed query of one /debug/decisions request.
type decisionFilter struct {
	context   string
	instance  string
	kind      string
	source    string
	requestID string
	shard     int // -1 = any
	limit     int // 0 = all; otherwise keep the newest N
}

func (f decisionFilter) match(rec *flight.Record) bool {
	if f.context != "" && rec.Context != f.context {
		return false
	}
	if f.instance != "" && rec.Instance != f.instance {
		return false
	}
	if f.kind != "" && rec.Kind != f.kind {
		return false
	}
	if f.source != "" && rec.Source != f.source {
		return false
	}
	if f.requestID != "" && rec.RequestID != f.requestID {
		return false
	}
	if f.shard >= 0 && rec.Shard != f.shard {
		return false
	}
	return true
}

// decisions merges every shard's journal, sorts by global sequence, and
// applies the filter.
func (s *Server) decisions(f decisionFilter) DecisionsResponse {
	resp := DecisionsResponse{SchemaVersion: 1, Records: []flight.Record{}}
	for _, sh := range s.shards {
		if sh.flight != nil {
			resp.Enabled = true
		}
		resp.Capacity += sh.flight.Cap()
		resp.Total += sh.flight.Total()
		for _, rec := range sh.flight.Snapshot() {
			if f.match(&rec) {
				resp.Records = append(resp.Records, rec)
			}
		}
	}
	sort.Slice(resp.Records, func(i, j int) bool { return resp.Records[i].Seq < resp.Records[j].Seq })
	if f.limit > 0 && len(resp.Records) > f.limit {
		resp.Records = resp.Records[len(resp.Records)-f.limit:]
	}
	resp.Returned = len(resp.Records)
	return resp
}

// handleDecisions serves the decision journal. ?format=text (default)
// renders a terminal table; ?format=json returns the full records.
// Filters: context, instance, kind, source, request_id, shard, limit.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	f := decisionFilter{
		context:   q.Get("context"),
		instance:  q.Get("instance"),
		kind:      q.Get("kind"),
		source:    q.Get("source"),
		requestID: q.Get("request_id"),
		shard:     -1,
	}
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "shard must be an integer")
			return
		}
		f.shard = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		f.limit = n
	}
	resp := s.decisions(f)
	switch q.Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, renderDecisionsText(resp))
	case "json":
		writeJSON(w, http.StatusOK, resp)
	default:
		writeError(w, http.StatusBadRequest, "format must be text or json")
	}
}

// renderDecisionsText renders the journal for terminals, oldest first. The
// output contains no wall-clock stamps, so a fixed record sequence renders
// byte-identically — the golden-test contract.
func renderDecisionsText(d DecisionsResponse) string {
	var b strings.Builder
	b.WriteString("brainy decision journal\n")
	fmt.Fprintf(&b, "journaled %d  retained %d/%d  shown %d\n\n", d.Total, len(d.Records), d.Capacity, d.Returned)
	if !d.Enabled {
		b.WriteString("flight recorder disabled: restart with a non-negative flight size\n")
		return b.String()
	}
	if len(d.Records) == 0 {
		b.WriteString("no decisions journaled yet (or none match the filter)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%6s %-9s %-12s %5s %-6s %-24s %-22s %5s %8s  %s\n",
		"SEQ", "SOURCE", "VERDICT", "SHARD", "PATH", "WHO", "DECISION", "CONF", "LAT", "DISTRIBUTION")
	for _, rec := range d.Records {
		who := rec.Context
		if rec.Instance != "" {
			who = rec.Instance
		}
		decision := rec.Kind
		if rec.Suggested != "" {
			decision = rec.Kind + " -> " + rec.Suggested
		}
		conf := "    -"
		if rec.Confidence > 0 {
			conf = fmt.Sprintf("%5.2f", rec.Confidence)
		}
		lat := "       -"
		if rec.LatencyNs > 0 {
			lat = fmt.Sprintf("%7.1fu", float64(rec.LatencyNs)/1e3)
		}
		var dist strings.Builder
		for i, kp := range rec.Probs {
			if i == 3 {
				dist.WriteString(" ...")
				break
			}
			if i > 0 {
				dist.WriteByte(' ')
			}
			fmt.Fprintf(&dist, "%s:%.2f", kp.Kind, kp.Prob)
		}
		fmt.Fprintf(&b, "%6d %-9s %-12s %5d %-6s %-24s %-22s %s %s  %s\n",
			rec.Seq, rec.Source, rec.Verdict, rec.Shard, rec.Path, who, decision, conf, lat, dist.String())
	}
	b.WriteString("\nfilters: ?context= ?instance= ?kind= ?source= ?request_id= ?shard= ?limit=  (&format=json for full records)\n")
	return b.String()
}
