package serve

import (
	"fmt"
	"net/http"

	"repro/internal/opstats"
)

// Metrics aggregates everything brainy-serve observes about itself, built
// from the opstats primitives so the server needs no metrics dependency.
// It doubles as the GET /metrics handler (text exposition format).
type Metrics struct {
	// Requests counts finished HTTP requests by path and status code
	// (label form `path="/v1/advise",code="200"`).
	Requests *opstats.CounterVec
	// Latency observes end-to-end request durations in seconds.
	Latency *opstats.Histogram
	// CacheHits / CacheMisses count inference-cache lookups.
	CacheHits   *opstats.Counter
	CacheMisses *opstats.Counter
	// Inferences counts ANN evaluations actually run (cache misses that
	// reached a model) by architecture (label form `arch="Core2"`).
	Inferences *opstats.CounterVec
	// ProfilesAnalyzed counts profile records accepted into analysis.
	ProfilesAnalyzed *opstats.Counter
}

// NewMetrics builds an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		Requests:         opstats.NewCounterVec(),
		Latency:          opstats.NewHistogram(),
		CacheHits:        &opstats.Counter{},
		CacheMisses:      &opstats.Counter{},
		Inferences:       opstats.NewCounterVec(),
		ProfilesAnalyzed: &opstats.Counter{},
	}
}

// ServeHTTP renders the exposition page.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintln(w, "# HELP brainy_requests_total Finished HTTP requests by path and status code.")
	fmt.Fprintln(w, "# TYPE brainy_requests_total counter")
	m.Requests.Expose(w, "brainy_requests_total")
	fmt.Fprintln(w, "# HELP brainy_request_duration_seconds End-to-end request latency.")
	fmt.Fprintln(w, "# TYPE brainy_request_duration_seconds histogram")
	m.Latency.Expose(w, "brainy_request_duration_seconds")
	fmt.Fprintln(w, "# HELP brainy_cache_hits_total Inference-cache hits.")
	fmt.Fprintln(w, "# TYPE brainy_cache_hits_total counter")
	m.CacheHits.Expose(w, "brainy_cache_hits_total", "")
	fmt.Fprintln(w, "# HELP brainy_cache_misses_total Inference-cache misses.")
	fmt.Fprintln(w, "# TYPE brainy_cache_misses_total counter")
	m.CacheMisses.Expose(w, "brainy_cache_misses_total", "")
	fmt.Fprintln(w, "# HELP brainy_inferences_total ANN evaluations run, by architecture.")
	fmt.Fprintln(w, "# TYPE brainy_inferences_total counter")
	m.Inferences.Expose(w, "brainy_inferences_total")
	fmt.Fprintln(w, "# HELP brainy_profiles_analyzed_total Profile records accepted into analysis.")
	fmt.Fprintln(w, "# TYPE brainy_profiles_analyzed_total counter")
	m.ProfilesAnalyzed.Expose(w, "brainy_profiles_analyzed_total", "")
}
