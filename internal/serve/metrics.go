package serve

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/mem"
	"repro/internal/opstats"
	"repro/internal/telemetry"
)

// Metrics aggregates everything brainy-serve observes about itself. Every
// metric is registered once in a telemetry.Registry with its HELP/TYPE
// metadata, and the GET /metrics page is a single sorted registry dump —
// no hand-maintained exposition code.
type Metrics struct {
	reg *telemetry.Registry
	// Requests counts finished HTTP requests by path and status code
	// (label form `path="/v1/advise",code="200"`). Unknown paths collapse
	// into path="<other>" so scanners cannot mint unbounded label sets.
	Requests *opstats.CounterVec
	// Latency observes end-to-end request durations in seconds.
	Latency *opstats.Histogram
	// AdviseLatency observes /v1/advise durations alone. The shared
	// request histogram mixes in health probes and metric scrapes, which
	// would let cheap endpoints mask an advise regression; the latency SLO
	// reads this series so its p99 is the advisory path's p99.
	AdviseLatency *opstats.Histogram
	// InFlight gauges requests currently being served.
	InFlight *opstats.Gauge
	// CacheHits / CacheMisses count inference-cache lookups.
	CacheHits   *opstats.Counter
	CacheMisses *opstats.Counter
	// Inferences counts ANN evaluations actually run (cache misses that
	// reached a model) by architecture (label form `arch="Core2"`).
	Inferences *opstats.CounterVec
	// ProfilesAnalyzed counts profile records accepted into analysis.
	ProfilesAnalyzed *opstats.Counter
	// ProfileWindows counts snapshot windows accepted on /v1/profiles.
	ProfileWindows *opstats.Counter
	// WindowOps observes the operation span of each ingested window; the
	// exposition's _min/_max lines show the exact spread of window sizes
	// clients stream.
	WindowOps *opstats.Histogram
	// DriftEvents counts confirmed phase-drift events across all timelines.
	DriftEvents *opstats.Counter
	// DriftSkipped counts windows the drift suggester could not evaluate
	// (typically no model for the window's kind/arch) — advisory coverage
	// silently lost unless it is watched.
	DriftSkipped *opstats.Counter
	// TimelineInstances gauges instance timelines currently retained.
	TimelineInstances *opstats.Gauge
	// TimelineEvictions counts timelines dropped by the instance LRU.
	TimelineEvictions *opstats.Counter
	// WindowsOutOfOrder counts ingested windows whose sequence number did
	// not advance their timeline (replays, reordered delivery).
	WindowsOutOfOrder *opstats.Counter
	// Shards gauges the configured shard count — a constant per process,
	// exposed so dashboards can normalize queue depth per shard.
	Shards *opstats.Gauge
	// ShardQueueDepth gauges inferences currently queued across all shard
	// batchers (submitted but not yet evaluated).
	ShardQueueDepth *opstats.Gauge
	// BatchSize observes how many queued inferences each ANN matrix pass
	// coalesced; the _min/_max lines bound the batching the workload
	// actually achieved.
	BatchSize *opstats.Histogram
}

// NewMetrics builds a metric set on a fresh registry.
func NewMetrics() *Metrics {
	reg := telemetry.NewRegistry()
	m := &Metrics{
		reg:              reg,
		Requests:         reg.CounterVec("brainy_requests_total", "Finished HTTP requests by path and status code."),
		Latency:          reg.Histogram("brainy_request_duration_seconds", "End-to-end request latency."),
		AdviseLatency:    reg.Histogram("brainy_advise_duration_seconds", "End-to-end /v1/advise latency (the advisory path alone)."),
		InFlight:         reg.Gauge("brainy_inflight_requests", "Requests currently being served."),
		CacheHits:        reg.Counter("brainy_cache_hits_total", "Inference-cache hits."),
		CacheMisses:      reg.Counter("brainy_cache_misses_total", "Inference-cache misses."),
		Inferences:       reg.CounterVec("brainy_inferences_total", "ANN evaluations run, by architecture."),
		ProfilesAnalyzed: reg.Counter("brainy_profiles_analyzed_total", "Profile records accepted into analysis."),
		ProfileWindows:   reg.Counter("brainy_profile_windows_total", "Snapshot windows accepted on /v1/profiles."),
		WindowOps: reg.Histogram("brainy_profile_window_ops", "Operations covered by each ingested snapshot window.",
			8, 16, 32, 64, 128, 256, 1024, 4096, 16384),
		DriftEvents:       reg.Counter("brainy_drift_events_total", "Confirmed phase-drift events across instance timelines."),
		DriftSkipped:      reg.Counter("brainy_drift_skipped_windows_total", "Ingested windows the drift suggester could not evaluate (advisory coverage lost)."),
		TimelineInstances: reg.Gauge("brainy_profile_instances", "Instance timelines currently retained."),
		TimelineEvictions: reg.Counter("brainy_timeline_evictions_total", "Instance timelines evicted by the LRU bound."),
		WindowsOutOfOrder: reg.Counter("brainy_profile_windows_out_of_order_total", "Ingested windows whose sequence number did not advance their timeline."),
		Shards:            reg.Gauge("brainy_shards", "Configured advisor shards (state partitions with one batching goroutine each)."),
		ShardQueueDepth:   reg.Gauge("brainy_shard_queue_depth", "Inferences queued on shard batchers, awaiting evaluation."),
		BatchSize: reg.Histogram("brainy_batch_size", "Queued inferences coalesced into each ANN matrix pass.",
			1, 2, 4, 8, 16, 32, 64, 128),
	}
	// Read at exposition time straight off the mem package's process-wide
	// gauge: every live flat-container arena (drift replays, adaptive
	// migrations, simulated candidates in flight) contributes its reserved
	// chunk bytes.
	reg.GaugeFunc("brainy_arena_bytes", "Simulated bytes currently reserved by live flat-container arenas.",
		func() float64 { return float64(mem.TotalArenaBytes()) })
	return m
}

// registerIdentity installs the process-identity metrics: a build-info
// gauge whose labels name the binary version, Go toolchain, and model
// registry fingerprint (value always 1, the Prometheus info-metric idiom),
// and an uptime gauge read off the wall clock at exposition time. Called
// once from New — identity is per-server, not per-metric-set.
func (m *Metrics) registerIdentity(fingerprint string, start time.Time) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	labels := fmt.Sprintf("version=%q,go_version=%q,registry_fingerprint=%q",
		version, runtime.Version(), fingerprint)
	m.reg.MustRegister("brainy_build_info",
		"Build and model-registry identity; the value is always 1.",
		telemetry.TypeGauge, func(w io.Writer) {
			fmt.Fprintf(w, "brainy_build_info{%s} 1\n", labels)
		})
	m.reg.GaugeFunc("brainy_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(start).Seconds() })
}

// Registry exposes the underlying registry, for embedders that want to
// register additional metrics on the same /metrics page.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// ServeHTTP renders the exposition page.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.reg.ServeHTTP(w, r)
}
