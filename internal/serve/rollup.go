package serve

import (
	"net/http"
	"sort"
	"sync"

	"repro/internal/adt"
	"repro/internal/machine"
	"repro/internal/profile"
)

// rollupState is one shard's incremental contribution to GET /v1/rollup:
// per-container-kind fleet aggregates maintained in lockstep with the
// shard's timeline store and advise path, then merged across shards at
// scrape time. Keeping the aggregation incremental means a scrape never
// walks the timelines — it locks each shard's rollup once, copies a few
// dozen numbers, and leaves.
type rollupState struct {
	mu    sync.Mutex
	kinds map[adt.Kind]*kindRollup
}

// kindRollup accumulates everything the fleet knows about one container
// kind, attributed by the kind an instance (or advise profile) currently
// declares.
type kindRollup struct {
	instances   int    // timelines currently retained with this kind
	windows     uint64 // snapshot windows ingested for this kind
	ops         uint64 // interface invocations those windows covered
	outOfOrder  uint64
	driftEvents uint64
	migrations  uint64 // observed backend changes away from this kind
	advise      uint64 // advise decisions for profiles of this kind
	advised     map[string]uint64
	hw          machine.Counters
	featSum     []float64 // running sum of window feature vectors
	featN       uint64
}

func newRollupState() *rollupState {
	return &rollupState{kinds: make(map[adt.Kind]*kindRollup)}
}

func (rs *rollupState) kind(k adt.Kind) *kindRollup {
	kr := rs.kinds[k]
	if kr == nil {
		kr = &kindRollup{advised: make(map[string]uint64)}
		rs.kinds[k] = kr
	}
	return kr
}

// countAdvise attributes one advise decision: profile p was answered with
// suggested. Called once per suggestion the server actually returns, so the
// fleet total reconciles exactly with client-side counts. The profile's
// feature vector joins the kind's running mean — the baseline brainy-explain
// diffs a single decision against — so advise-only fleets get a mean too.
func (rs *rollupState) countAdvise(p *profile.Profile, suggested adt.Kind) {
	vec := p.Vector()
	rs.mu.Lock()
	kr := rs.kind(p.Kind)
	kr.advise++
	kr.advised[suggested.String()]++
	if kr.featSum == nil {
		kr.featSum = make([]float64, len(vec))
	}
	for i, f := range vec {
		kr.featSum[i] += f
	}
	kr.featN++
	rs.mu.Unlock()
}

// ingestWindow folds one accepted /v1/profiles window into the aggregates,
// using the timeline store's outcome to keep instance counts and observed
// migrations exact: creations and kind changes move instances between
// kinds, evictions remove them, and a kind change is one migration charged
// to the kind the instance left.
func (rs *rollupState) ingestWindow(w *profile.WindowRecord, out addOutcome) {
	rs.mu.Lock()
	kr := rs.kind(w.Kind)
	kr.windows++
	kr.ops += w.Ops()
	kr.hw = kr.hw.Add(w.HW)
	vec := w.Vector()
	if kr.featSum == nil {
		kr.featSum = make([]float64, len(vec))
	}
	for i, f := range vec {
		kr.featSum[i] += f
	}
	kr.featN++
	if out.outOfOrder {
		kr.outOfOrder++
	}
	switch {
	case out.isNew:
		kr.instances++
	case out.kindChanged:
		prev := rs.kind(out.prevKind)
		prev.instances--
		prev.migrations++
		kr.instances++
	}
	if out.evicted {
		rs.kind(out.evictedKind).instances--
	}
	rs.mu.Unlock()
}

// countDrift attributes one confirmed drift event to the instance's kind at
// confirmation time.
func (rs *rollupState) countDrift(k adt.Kind) {
	rs.mu.Lock()
	rs.kind(k).driftEvents++
	rs.mu.Unlock()
}

// mergeInto folds this shard's aggregates into the scrape-time accumulator.
func (rs *rollupState) mergeInto(acc map[adt.Kind]*kindRollup) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for k, kr := range rs.kinds {
		a := acc[k]
		if a == nil {
			a = &kindRollup{advised: make(map[string]uint64)}
			acc[k] = a
		}
		a.instances += kr.instances
		a.windows += kr.windows
		a.ops += kr.ops
		a.outOfOrder += kr.outOfOrder
		a.driftEvents += kr.driftEvents
		a.migrations += kr.migrations
		a.advise += kr.advise
		for s, n := range kr.advised {
			a.advised[s] += n
		}
		a.hw = a.hw.Add(kr.hw)
		if kr.featSum != nil {
			if a.featSum == nil {
				a.featSum = make([]float64, len(kr.featSum))
			}
			for i, f := range kr.featSum {
				a.featSum[i] += f
			}
		}
		a.featN += kr.featN
	}
}

// HWTotals is the hardware-counter slice of one rollup row, summed across
// every ingested window of the kind.
type HWTotals struct {
	Cycles      float64 `json:"cycles"`
	Reads       uint64  `json:"reads"`
	Writes      uint64  `json:"writes"`
	L1Misses    uint64  `json:"l1_misses"`
	L2Misses    uint64  `json:"l2_misses"`
	Mispredicts uint64  `json:"branch_mispredicts"`
	TLBMisses   uint64  `json:"tlb_misses"`
	Allocs      uint64  `json:"allocs"`
}

// RollupKind is one per-kind row of the fleet rollup.
type RollupKind struct {
	Kind            string            `json:"kind"`
	Instances       int               `json:"instances"`
	Windows         uint64            `json:"windows"`
	Ops             uint64            `json:"ops"`
	OutOfOrder      uint64            `json:"out_of_order"`
	DriftEvents     uint64            `json:"drift_events"`
	Migrations      uint64            `json:"migrations"`
	AdviseDecisions uint64            `json:"advise_decisions"`
	Advised         map[string]uint64 `json:"advised,omitempty"` // suggested-kind histogram
	HW              HWTotals          `json:"hw"`
	FeatureMean     []float64         `json:"feature_mean,omitempty"` // aligned with Features
}

// RollupResponse is the body of GET /v1/rollup: fleet-wide aggregates per
// container kind, merged across shards at scrape time. Totals reconcile
// exactly with client-side accounting — every accepted window and every
// returned suggestion is counted exactly once.
type RollupResponse struct {
	SchemaVersion       int          `json:"schema_version"`
	RegistryFingerprint string       `json:"registry_fingerprint"`
	Shards              int          `json:"shards"`
	Instances           int          `json:"instances"`
	Windows             uint64       `json:"windows"`
	AdviseDecisions     uint64       `json:"advise_decisions"`
	DriftEvents         uint64       `json:"drift_events"`
	Migrations          uint64       `json:"migrations"`
	DecisionsJournaled  uint64       `json:"decisions_journaled"` // flight records ever appended
	DecisionsRetained   int          `json:"decisions_retained"`  // flight capacity across shards
	Features            []string     `json:"features"`            // names aligning every feature_mean
	Kinds               []RollupKind `json:"kinds"`
}

// rollup merges every shard's incremental aggregates into one response.
func (s *Server) rollup() RollupResponse {
	acc := make(map[adt.Kind]*kindRollup)
	var journaled uint64
	var retained int
	for _, sh := range s.shards {
		sh.rollup.mergeInto(acc)
		journaled += sh.flight.Total()
		retained += sh.flight.Cap()
	}
	resp := RollupResponse{
		SchemaVersion:       1,
		RegistryFingerprint: s.fingerprint,
		Shards:              len(s.shards),
		DecisionsJournaled:  journaled,
		DecisionsRetained:   retained,
		Features:            profile.FeatureNames,
		Kinds:               []RollupKind{},
	}
	kinds := make([]adt.Kind, 0, len(acc))
	for k := range acc {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].String() < kinds[j].String() })
	for _, k := range kinds {
		kr := acc[k]
		row := RollupKind{
			Kind:            k.String(),
			Instances:       kr.instances,
			Windows:         kr.windows,
			Ops:             kr.ops,
			OutOfOrder:      kr.outOfOrder,
			DriftEvents:     kr.driftEvents,
			Migrations:      kr.migrations,
			AdviseDecisions: kr.advise,
			HW: HWTotals{
				Cycles:      kr.hw.Cycles,
				Reads:       kr.hw.Reads,
				Writes:      kr.hw.Writes,
				L1Misses:    kr.hw.L1Misses,
				L2Misses:    kr.hw.L2Misses,
				Mispredicts: kr.hw.Mispredicts,
				TLBMisses:   kr.hw.TLBMisses,
				Allocs:      kr.hw.Allocs,
			},
		}
		if len(kr.advised) > 0 {
			row.Advised = make(map[string]uint64, len(kr.advised))
			for s, n := range kr.advised {
				row.Advised[s] = n
			}
		}
		if kr.featN > 0 {
			row.FeatureMean = make([]float64, len(kr.featSum))
			for i, f := range kr.featSum {
				row.FeatureMean[i] = f / float64(kr.featN)
			}
		}
		resp.Instances += kr.instances
		resp.Windows += kr.windows
		resp.AdviseDecisions += kr.advise
		resp.DriftEvents += kr.driftEvents
		resp.Migrations += kr.migrations
		resp.Kinds = append(resp.Kinds, row)
	}
	return resp
}

// handleRollup serves the fleet rollup.
func (s *Server) handleRollup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.rollup())
}
