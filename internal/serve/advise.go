package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/serve/shard"
	"repro/internal/telemetry"
)

// AdviseResponse is the body of a successful POST /v1/advise: the same
// report and machine-readable plan the brainy CLI produces for the trace.
type AdviseResponse struct {
	Arch        string            `json:"arch"`
	Profiles    int               `json:"profiles"`
	Suggestions []core.Suggestion `json:"suggestions"`
	Skipped     []string          `json:"skipped,omitempty"`
	Plan        []core.PlanEntry  `json:"plan"`
}

// errTooManyProfiles aborts the streaming decoder when a trace exceeds the
// configured record bound.
var errTooManyProfiles = errors.New("too many profile records")

// handleAdvise runs the full advisor pipeline for one request: stream-decode
// the trace (JSON lines or a JSON array), take an inference slot, analyze
// under the request deadline with the cache-wrapped suggester, and answer
// with the prioritized plan.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	arch := r.URL.Query().Get("arch")
	if arch == "" {
		arch = s.cfg.DefaultArch
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var profiles []profile.Profile
	err := profile.DecodeRecords(body, func(p *profile.Profile) error {
		if len(profiles) >= s.cfg.MaxProfiles {
			return errTooManyProfiles
		}
		profiles = append(profiles, *p)
		return nil
	})
	switch {
	case err == nil:
	case errors.Is(err, errTooManyProfiles):
		writeError(w, http.StatusBadRequest, fmt.Sprintf("trace exceeds %d records", s.cfg.MaxProfiles))
		return
	case isMaxBytesError(err):
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	default:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(profiles) == 0 {
		writeError(w, http.StatusBadRequest, "empty trace: send JSON-lines or a JSON array of profile records")
		return
	}

	// The advise span covers the analysis section (decode excluded), as a
	// child of the middleware's request span.
	ctx, span := telemetry.StartSpan(ctx, "advise")
	span.SetStr("arch", arch)
	span.SetInt("profiles", int64(len(profiles)))
	span.SetStr("request_id", RequestIDFromContext(ctx))
	report, err := s.analyze(ctx, profiles, arch, RequestIDFromContext(ctx))
	span.End()
	if err != nil {
		if errors.Is(err, shard.ErrClosed) {
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		writeTimeout(w, ctx, "analyzing trace")
		return
	}
	s.metrics.ProfilesAnalyzed.Add(uint64(len(profiles)))
	resp := AdviseResponse{
		Arch:        report.Arch,
		Profiles:    len(profiles),
		Suggestions: report.Suggestions,
		Skipped:     report.Skipped,
		Plan:        report.Plan(),
	}
	// Clients get arrays, never null.
	if resp.Suggestions == nil {
		resp.Suggestions = []core.Suggestion{}
	}
	if resp.Plan == nil {
		resp.Plan = []core.PlanEntry{}
	}
	// Suggestions carry their class distribution internally (the flight
	// recorder journals it); the response only includes it on request, so
	// the default wire format matches the CLI byte for byte.
	if ex := r.URL.Query().Get("explain"); ex != "1" && ex != "true" {
		for i := range resp.Suggestions {
			resp.Suggestions[i].Explanation = nil
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// analyze is the sharded, batched equivalent of core.AnalyzeContext: cache
// hits resolve inline against their shard's LRU, misses queue on their
// shard's batcher (coalescing with misses from concurrent requests), and
// the report is assembled only after every slot resolved. Because each
// shard deduplicates within a batch, reuses the shared cache, and evaluates
// through core.SuggestBatch — bit-identical to Suggest — the response
// matches what the sequential CLI computes for the same trace, suggestion
// order and all.
func (s *Server) analyze(ctx context.Context, profiles []profile.Profile, arch, reqID string) (core.Report, error) {
	rep := core.Report{Arch: arch}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	var total float64
	for i := range profiles {
		total += profiles[i].Cycles
	}
	if total == 0 {
		total = 1
	}

	sugs := make([]core.Suggestion, len(profiles))
	errs := make([]error, len(profiles))
	shs := make([]*advisorShard, len(profiles))
	var wg sync.WaitGroup
	var slots []*inferSlot
	for i := range profiles {
		p := &profiles[i]
		key := inferenceKey(p, arch)
		sh := s.shardForKey(key)
		shs[i] = sh
		if sug, ok := sh.cache.Get(key); ok {
			s.metrics.CacheHits.Inc()
			sug.Context = p.Context
			sugs[i] = sug
			sh.recordAdvise(p, arch, key, sug, nil, reqID, "cache", 0, 0, 0)
			continue
		}
		s.metrics.CacheMisses.Inc()
		slot := &inferSlot{p: p, arch: arch, key: key, idx: i, reqID: reqID, start: time.Now(), wg: &wg}
		wg.Add(1)
		if err := sh.batcher.Submit(ctx, slot); err != nil {
			wg.Done()
			return rep, err
		}
		slots = append(slots, slot)
	}
	if len(slots) > 0 {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
			// Abandon the request; the queued slots still resolve on
			// their shards (warming the cache) and are then collected.
			return rep, ctx.Err()
		}
		for _, sl := range slots {
			sugs[sl.idx] = sl.sug
			errs[sl.idx] = sl.err
		}
	}

	// Rollup attribution happens only here, after every slot resolved: a
	// request that errors out or is abandoned mid-flight contributes
	// nothing, so the fleet's advise_decisions total reconciles exactly
	// with the suggestions clients actually received.
	for i := range profiles {
		if errs[i] != nil {
			rep.Skipped = append(rep.Skipped, profiles[i].Context)
			continue
		}
		sug := sugs[i]
		sug.CyclesPct = profiles[i].Cycles / total
		rep.Suggestions = append(rep.Suggestions, sug)
		shs[i].rollup.countAdvise(&profiles[i], sug.Suggested)
	}
	sort.SliceStable(rep.Suggestions, func(i, j int) bool {
		return rep.Suggestions[i].CyclesPct > rep.Suggestions[j].CyclesPct
	})
	return rep, nil
}

// isMaxBytesError reports whether err came from http.MaxBytesReader.
func isMaxBytesError(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// writeTimeout maps a context failure to 408 (deadline) or the client-gone
// status (cancellation).
func writeTimeout(w http.ResponseWriter, ctx context.Context, during string) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		writeError(w, http.StatusRequestTimeout, "deadline exceeded "+during)
		return
	}
	// Client went away; 499 is the de-facto convention (nginx).
	writeError(w, 499, "request cancelled "+during)
}

// writeError answers with a JSON error envelope.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
