package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// AdviseResponse is the body of a successful POST /v1/advise: the same
// report and machine-readable plan the brainy CLI produces for the trace.
type AdviseResponse struct {
	Arch        string            `json:"arch"`
	Profiles    int               `json:"profiles"`
	Suggestions []core.Suggestion `json:"suggestions"`
	Skipped     []string          `json:"skipped,omitempty"`
	Plan        []core.PlanEntry  `json:"plan"`
}

// errTooManyProfiles aborts the streaming decoder when a trace exceeds the
// configured record bound.
var errTooManyProfiles = errors.New("too many profile records")

// handleAdvise runs the full advisor pipeline for one request: stream-decode
// the trace (JSON lines or a JSON array), take an inference slot, analyze
// under the request deadline with the cache-wrapped suggester, and answer
// with the prioritized plan.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	arch := r.URL.Query().Get("arch")
	if arch == "" {
		arch = s.cfg.DefaultArch
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var profiles []profile.Profile
	err := profile.DecodeRecords(body, func(p *profile.Profile) error {
		if len(profiles) >= s.cfg.MaxProfiles {
			return errTooManyProfiles
		}
		profiles = append(profiles, *p)
		return nil
	})
	switch {
	case err == nil:
	case errors.Is(err, errTooManyProfiles):
		writeError(w, http.StatusBadRequest, fmt.Sprintf("trace exceeds %d records", s.cfg.MaxProfiles))
		return
	case isMaxBytesError(err):
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	default:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(profiles) == 0 {
		writeError(w, http.StatusBadRequest, "empty trace: send JSON-lines or a JSON array of profile records")
		return
	}

	// Bound concurrent ANN evaluation sections: wait for a slot, but never
	// past the request deadline.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		writeTimeout(w, ctx, "waiting for an inference slot")
		return
	}

	// The advise span covers only the analysis section (queueing for a slot
	// excluded), as a child of the middleware's request span.
	ctx, span := telemetry.StartSpan(ctx, "advise")
	span.SetStr("arch", arch)
	span.SetInt("profiles", int64(len(profiles)))
	span.SetStr("request_id", RequestIDFromContext(ctx))
	report, err := core.AnalyzeContext(ctx, s.cachingSuggester(), profiles, arch)
	span.End()
	if err != nil {
		writeTimeout(w, ctx, "analyzing trace")
		return
	}
	s.metrics.ProfilesAnalyzed.Add(uint64(len(profiles)))
	resp := AdviseResponse{
		Arch:        report.Arch,
		Profiles:    len(profiles),
		Suggestions: report.Suggestions,
		Skipped:     report.Skipped,
		Plan:        report.Plan(),
	}
	// Clients get arrays, never null.
	if resp.Suggestions == nil {
		resp.Suggestions = []core.Suggestion{}
	}
	if resp.Plan == nil {
		resp.Plan = []core.PlanEntry{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// cachingSuggester wraps Brainy.Suggest with the bounded LRU: model-derived
// fields are cached under the canonical inference key, while per-request
// fields (Context, CyclesPct) are re-stamped on every hit.
func (s *Server) cachingSuggester() core.Suggester {
	return func(p *profile.Profile, arch string) (core.Suggestion, error) {
		key := inferenceKey(p, arch)
		if sug, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Inc()
			sug.Context = p.Context
			return sug, nil
		}
		s.metrics.CacheMisses.Inc()
		sug, err := s.brainy.Suggest(p, arch)
		if err != nil {
			return sug, err
		}
		s.metrics.Inferences.With(fmt.Sprintf("arch=%q", arch)).Inc()
		cached := sug
		cached.Context = "" // per-request fields stay out of the cache
		cached.CyclesPct = 0
		s.cache.Put(key, cached)
		return sug, nil
	}
}

// isMaxBytesError reports whether err came from http.MaxBytesReader.
func isMaxBytesError(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// writeTimeout maps a context failure to 408 (deadline) or the client-gone
// status (cancellation).
func writeTimeout(w http.ResponseWriter, ctx context.Context, during string) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		writeError(w, http.StatusRequestTimeout, "deadline exceeded "+during)
		return
	}
	// Client went away; 499 is the de-facto convention (nginx).
	writeError(w, 499, "request cancelled "+during)
}

// writeError answers with a JSON error envelope.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
