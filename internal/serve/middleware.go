package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/opstats"
	"repro/internal/telemetry"
)

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// requestIDHeader is the inbound/outbound correlation header. The server
// propagates a client-supplied value and mints one otherwise, so every log
// line and span of a request shares an identifier.
const requestIDHeader = "X-Request-ID"

// requestIDKey carries the request ID through the request context.
type requestIDKey struct{}

// RequestIDFromContext returns the request's correlation ID, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// requestID propagates or mints the correlation ID for one request.
func requestID(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return telemetry.NewID().String()
}

// otherPath is the single label unknown request paths collapse into, so a
// URL scanner cannot mint an unbounded brainy_requests_total label set.
const otherPath = "<other>"

// routeCounters caches the per-status-code counters of one route. The label
// string for a (route, code) pair is rendered once; after that the hot path
// is a read-locked map hit — no fmt.Sprintf per request.
type routeCounters struct {
	path string
	vec  *opstats.CounterVec

	mu     sync.RWMutex
	byCode map[int]*opstats.Counter
}

func newRouteCounters(path string, vec *opstats.CounterVec) *routeCounters {
	return &routeCounters{path: path, vec: vec, byCode: make(map[int]*opstats.Counter)}
}

// counter returns the route's counter for one status code, rendering and
// caching the label string on first use.
func (rc *routeCounters) counter(code int) *opstats.Counter {
	rc.mu.RLock()
	c := rc.byCode[code]
	rc.mu.RUnlock()
	if c != nil {
		return c
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if c := rc.byCode[code]; c != nil {
		return c
	}
	c = rc.vec.With(fmt.Sprintf("path=%q,code=\"%d\"", rc.path, code))
	rc.byCode[code] = c
	return c
}

// requestCounter resolves the counter for a finished request, mapping
// non-routed paths to the shared <other> bucket and every pprof page to
// one /debug/pprof/ label.
func (s *Server) requestCounter(path string, code int) *opstats.Counter {
	rc, ok := s.routes[path]
	if !ok {
		if s.cfg.EnablePprof && strings.HasPrefix(path, pprofPrefix) {
			rc = s.routes[pprofPrefix]
		} else {
			rc = s.otherRoute
		}
	}
	return rc.counter(code)
}

// observe wraps the route table with the request observability stack:
// correlation ID (propagated or minted, echoed in the response header), the
// in-flight gauge, per-route/per-code counters, the latency histogram, an
// optional request span, and one structured log line per request.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := requestID(r)
		w.Header().Set(requestIDHeader, id)
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		var span *telemetry.Span
		if s.tracer.Enabled() {
			ctx, span = s.tracer.Start(ctx, "request")
			span.SetStr("method", r.Method)
			span.SetStr("path", r.URL.Path)
			span.SetStr("request_id", id)
		}
		r = r.WithContext(ctx)

		s.metrics.InFlight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		s.metrics.InFlight.Dec()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.requestCounter(r.URL.Path, sw.status).Inc()
		// Advise requests stamp their correlation ID as the latency
		// histogram's bucket exemplar, so a p99 spike on /metrics links
		// straight to a journaled decision. Only the advise path: exemplars
		// from scrapes or ingest would evict the IDs worth investigating.
		if r.URL.Path == "/v1/advise" {
			s.metrics.Latency.ObserveExemplar(elapsed.Seconds(), id)
			s.metrics.AdviseLatency.Observe(elapsed.Seconds())
		} else {
			s.metrics.Latency.Observe(elapsed.Seconds())
		}
		if span != nil {
			span.SetInt("status", int64(sw.status))
			// A server-error response marks the whole trace: the tail
			// sampler retains errored traces regardless of duration.
			if sw.status >= 500 {
				span.SetAttr("error", true)
			}
			span.End()
		}
		// The request line is opt-out: at load-test rates every request
		// serializes on the slog handler's lock, so NoRequestLog exists
		// to keep logging off the contention profile.
		if !s.cfg.NoRequestLog {
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"bytes", sw.bytes,
				"duration", elapsed.String(),
				"remote", r.RemoteAddr,
				"request_id", id,
			)
		}
	})
}
