package serve

import (
	"fmt"
	"net/http"
	"time"
)

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// observe wraps the route table with request metrics and structured
// logging: every finished request increments the per-path/per-code counter,
// lands in the latency histogram, and emits one log line.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.metrics.Requests.With(fmt.Sprintf("path=%q,code=\"%d\"", r.URL.Path, sw.status)).Inc()
		s.metrics.Latency.Observe(elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration", elapsed.String(),
			"remote", r.RemoteAddr,
		)
	})
}
