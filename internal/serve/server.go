// Package serve puts the Brainy advisor behind a long-lived HTTP service:
// a trained model registry is loaded once and queried concurrently over
// POST /v1/advise, with liveness on GET /healthz and text-exposition
// metrics on GET /metrics. The paper's usage model ends at a one-shot CLI;
// this package is the production shape of the same pipeline — bounded
// concurrency around ANN evaluations, an LRU cache over repeated
// inferences, per-request deadlines, and graceful drain on shutdown.
package serve

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/telemetry"
	"repro/internal/training"
)

// Config tunes one server instance. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8377").
	Addr string
	// DefaultArch answers requests that omit ?arch= (default "Core2").
	DefaultArch string
	// MaxBodyBytes caps the advise request body; larger bodies get 413
	// (default 32 MiB).
	MaxBodyBytes int64
	// MaxProfiles caps the number of records in one advise request;
	// larger traces get 400 (default 10000).
	MaxProfiles int
	// RequestTimeout bounds one advise request end to end; on expiry the
	// client gets 408 (default 30s).
	RequestTimeout time.Duration
	// MaxConcurrent bounds simultaneous ANN evaluation sections; excess
	// requests wait their turn until their deadline (default 8).
	MaxConcurrent int
	// CacheSize bounds the inference LRU in entries; 0 uses the default
	// (4096), negative disables caching.
	CacheSize int
	// ShutdownGrace is how long Serve waits for in-flight requests to
	// drain after its context is cancelled (default 10s).
	ShutdownGrace time.Duration
	// Logger receives structured request and lifecycle logs
	// (default slog.Default()).
	Logger *slog.Logger
	// Tracer, when enabled, records a span per request and a child span
	// per advise analysis, both tagged with the request's correlation ID.
	// Nil disables tracing at zero cost.
	Tracer *telemetry.Tracer
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints are opt-in on production listeners.
	EnablePprof bool
	// MaxInstances bounds how many instance timelines /v1/profiles retains;
	// the least recently touched timeline is evicted at the bound
	// (default 256).
	MaxInstances int
	// TimelineWindows bounds the recent-window ring kept per instance
	// (default 32).
	TimelineWindows int
	// DriftRules switches drift evaluation to the deterministic
	// drift.Rules advisor instead of the loaded models — the right setting
	// for smoke environments without a trained model set.
	DriftRules bool
	// DriftWindow and DriftHysteresis tune the drift detector's sliding
	// blend and confirmation streak; zero uses the drift package defaults.
	DriftWindow     int
	DriftHysteresis int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8377"
	}
	if c.DefaultArch == "" {
		c.DefaultArch = "Core2"
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxProfiles == 0 {
		c.MaxProfiles = 10000
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 256
	}
	if c.TimelineWindows <= 0 {
		c.TimelineWindows = 32
	}
	return c
}

// Server is one advisor instance: a model registry, an inference cache, a
// concurrency bound, and the metrics describing them.
type Server struct {
	cfg     Config
	brainy  *core.Brainy
	cache   *lruCache
	sem     chan struct{} // bounds concurrent ANN evaluation sections
	metrics *Metrics
	log     *slog.Logger
	tracer  *telemetry.Tracer

	// timelines and drifts are the windowed-profiling state behind
	// /v1/profiles and /debug/brainy: bounded per-instance retention plus
	// the phase-drift state machines.
	timelines *timelineStore
	drifts    *drift.Detector

	// routes holds the precomputed request-counter cache for every path the
	// mux actually serves; anything else lands in otherRoute, keeping
	// brainy_requests_total cardinality bounded no matter what clients probe.
	routes     map[string]*routeCounters
	otherRoute *routeCounters
}

// New builds a server around a trained model registry.
func New(models *training.ModelSet, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	s := &Server{
		cfg:        cfg,
		brainy:     core.New(models),
		cache:      newLRUCache(cfg.CacheSize),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		metrics:    m,
		log:        cfg.Logger,
		tracer:     cfg.Tracer,
		routes:     make(map[string]*routeCounters),
		otherRoute: newRouteCounters(otherPath, m.Requests),
		timelines:  newTimelineStore(cfg.MaxInstances, cfg.TimelineWindows),
	}
	suggest := s.cachingSuggester()
	if cfg.DriftRules {
		suggest = drift.Rules
	}
	s.drifts = drift.New(suggest, drift.Config{
		Window:     cfg.DriftWindow,
		Hysteresis: cfg.DriftHysteresis,
		Events:     m.DriftEvents,
	})
	for _, path := range []string{"/v1/advise", "/v1/profiles", "/healthz", "/metrics", debugBrainyPath} {
		s.routes[path] = newRouteCounters(path, m.Requests)
	}
	if cfg.EnablePprof {
		s.routes[pprofPrefix] = newRouteCounters(pprofPrefix, m.Requests)
	}
	return s
}

// Metrics exposes the server's metric set (shared with the /metrics page),
// mainly for tests and embedding.
func (s *Server) Metrics() *Metrics { return s.metrics }

// pprofPrefix is where the opt-in profiling endpoints mount; every page
// under it shares one request-counter label.
const pprofPrefix = "/debug/pprof/"

// Handler returns the full route table wrapped in the observability
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", s.handleAdvise)
	mux.HandleFunc("/v1/profiles", s.handleProfiles)
	mux.HandleFunc(debugBrainyPath, s.handleDebugBrainy)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.metrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc(pprofPrefix, pprof.Index)
		mux.HandleFunc(pprofPrefix+"cmdline", pprof.Cmdline)
		mux.HandleFunc(pprofPrefix+"profile", pprof.Profile)
		mux.HandleFunc(pprofPrefix+"symbol", pprof.Symbol)
		mux.HandleFunc(pprofPrefix+"trace", pprof.Trace)
	}
	return s.observe(mux)
}

// Serve accepts connections on ln until ctx is cancelled, then drains
// in-flight requests for up to ShutdownGrace before returning. It returns
// nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(s.log.Handler(), slog.LevelWarn),
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.log.Info("shutting down", "grace", s.cfg.ShutdownGrace.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := hs.Shutdown(drainCtx)
		<-errc // Serve has returned http.ErrServerClosed
		if err != nil {
			s.log.Warn("shutdown incomplete", "error", err)
			return err
		}
		s.log.Info("drained")
		return nil
	}
}

// ListenAndServe binds cfg.Addr and runs Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.log.Info("listening", "addr", ln.Addr().String(), "models", s.brainy.Models().Len())
	return s.Serve(ctx, ln)
}

// handleHealthz reports liveness and registry size.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": s.brainy.Models().Len(),
	})
}
