// Package serve puts the Brainy advisor behind a long-lived HTTP service:
// a trained model registry is loaded once and queried concurrently over
// POST /v1/advise, with liveness on GET /healthz and text-exposition
// metrics on GET /metrics. The paper's usage model ends at a one-shot CLI;
// this package is the production shape of the same pipeline.
//
// Internally the server is a fleet of shards: every hot structure — the
// inference LRU, the instance timelines, the drift state machines — is
// split N ways by key hash, each slice owned by one advisorShard, so the
// advise and ingest hot paths never contend on a process-wide lock. Cache
// misses queue on their shard's batcher and are evaluated together in one
// ANN matrix pass, bit-identical to one-at-a-time evaluation. Requests get
// per-request deadlines; shutdown drains in-flight requests and flushes
// every shard's batch queue before returning.
package serve

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/serve/flight"
	"repro/internal/serve/shard"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slo"
	"repro/internal/telemetry/tsdb"
	"repro/internal/training"
)

// Config tunes one server instance. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8377").
	Addr string
	// DefaultArch answers requests that omit ?arch= (default "Core2").
	DefaultArch string
	// MaxBodyBytes caps the advise request body; larger bodies get 413
	// (default 32 MiB).
	MaxBodyBytes int64
	// MaxProfiles caps the number of records in one advise request;
	// larger traces get 400 (default 10000).
	MaxProfiles int
	// RequestTimeout bounds one advise request end to end; on expiry the
	// client gets 408 (default 30s).
	RequestTimeout time.Duration
	// MaxConcurrent is deprecated and ignored: evaluation concurrency is
	// now one batching goroutine per shard (see Shards), not a global
	// semaphore.
	MaxConcurrent int
	// Shards is how many ways the hot state (inference cache, timelines,
	// drift detectors, batch queues) is split. Each shard is owned by one
	// goroutine-backed batcher, so shards never contend with each other.
	// Default: GOMAXPROCS.
	Shards int
	// BatchSize caps how many queued inferences one shard coalesces into a
	// single ANN matrix pass (default 32).
	BatchSize int
	// BatchLinger is how long a lone queued inference waits for batch-mates
	// before flushing anyway; the latency cost of coalescing (default
	// 500µs, negative flushes immediately).
	BatchLinger time.Duration
	// NoRequestLog disables the per-request structured log line. The
	// lifecycle and drift logs remain. Under load-test rates the log
	// serializes every request on the slog handler's mutex, which is
	// exactly the kind of process-wide choke point sharding removes.
	NoRequestLog bool
	// CacheSize bounds the inference LRU in entries; 0 uses the default
	// (4096), negative disables caching.
	CacheSize int
	// ShutdownGrace is how long Serve waits for in-flight requests to
	// drain after its context is cancelled (default 10s).
	ShutdownGrace time.Duration
	// Logger receives structured request and lifecycle logs
	// (default slog.Default()).
	Logger *slog.Logger
	// Tracer, when enabled, records a span per request and a child span
	// per advise analysis, both tagged with the request's correlation ID.
	// Nil disables tracing at zero cost.
	Tracer *telemetry.Tracer
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints are opt-in on production listeners.
	EnablePprof bool
	// MaxInstances bounds how many instance timelines /v1/profiles retains;
	// the least recently touched timeline is evicted at the bound
	// (default 256).
	MaxInstances int
	// TimelineWindows bounds the recent-window ring kept per instance
	// (default 32).
	TimelineWindows int
	// DriftRules switches drift evaluation to the deterministic
	// drift.Rules advisor instead of the loaded models — the right setting
	// for smoke environments without a trained model set.
	DriftRules bool
	// DriftWindow and DriftHysteresis tune the drift detector's sliding
	// blend and confirmation streak; zero uses the drift package defaults.
	DriftWindow     int
	DriftHysteresis int
	// FlightSize bounds the decision flight recorder: each shard journals
	// its most recent advise decisions into a ring of this many records,
	// served on /debug/decisions. 0 uses the default (256 per shard),
	// negative disables recording entirely (the advise path then skips
	// journaling at the cost of a nil check).
	FlightSize int
	// SampleInterval paces the self-observation sampler, which scrapes
	// the metric registry into the in-process time-series store backing
	// /v1/timeseries and the /v1/health SLO verdicts. 0 uses the default
	// (1s); negative disables self-observation entirely (/v1/health then
	// reports liveness only and /v1/timeseries is empty).
	SampleInterval time.Duration
	// SamplePoints bounds each retained series' point ring (default 360 —
	// six minutes of history at the default interval).
	SamplePoints int
	// AdviseP99Max is the latency SLO threshold: /v1/advise responses
	// slower than this burn the advise-p99 error budget (default 250ms).
	AdviseP99Max time.Duration
	// SLOFastWindow and SLOSlowWindow are the burn-rate windows (defaults
	// 1m/5m); SLODegradedBurn and SLOCriticalBurn the thresholds (1/10);
	// SLOHysteresis the confirmation streak before a health verdict flips
	// (2). The small values exist for CI, which compresses the whole
	// degrade-and-recover cycle into seconds.
	SLOFastWindow   time.Duration
	SLOSlowWindow   time.Duration
	SLODegradedBurn float64
	SLOCriticalBurn float64
	SLOHysteresis   int
	// Traces, when set, is the tail-sampling trace buffer /debug/traces
	// serves. The caller composes it into Tracer's exporter (typically via
	// telemetry.Fanout) — the server only reads it.
	Traces *telemetry.TraceBuffer
	// DrainDelay is how long Serve keeps accepting (and failing readiness
	// on /v1/health) after its context is cancelled before closing the
	// listener — the window load balancers get to observe `draining` and
	// stop routing here (default 0: drain immediately).
	DrainDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8377"
	}
	if c.DefaultArch == "" {
		c.DefaultArch = "Core2"
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxProfiles == 0 {
		c.MaxProfiles = 10000
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.BatchLinger == 0 {
		c.BatchLinger = 500 * time.Microsecond
	}
	if c.BatchLinger < 0 {
		c.BatchLinger = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 256
	}
	if c.TimelineWindows <= 0 {
		c.TimelineWindows = 32
	}
	if c.FlightSize == 0 {
		c.FlightSize = 256
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = time.Second
	}
	if c.SamplePoints <= 0 {
		c.SamplePoints = 360
	}
	if c.AdviseP99Max <= 0 {
		c.AdviseP99Max = 250 * time.Millisecond
	}
	if c.SLOFastWindow <= 0 {
		c.SLOFastWindow = time.Minute
	}
	if c.SLOSlowWindow <= 0 {
		c.SLOSlowWindow = 5 * time.Minute
	}
	if c.SLODegradedBurn <= 0 {
		c.SLODegradedBurn = 1
	}
	if c.SLOCriticalBurn <= 0 {
		c.SLOCriticalBurn = 10
	}
	if c.SLOHysteresis <= 0 {
		c.SLOHysteresis = 2
	}
	return c
}

// Server is one advisor instance: a model registry, the shard fleet that
// owns all hot state, and the metrics describing them.
type Server struct {
	cfg     Config
	brainy  *core.Brainy
	metrics *Metrics
	log     *slog.Logger
	tracer  *telemetry.Tracer

	// shards owns everything a request touches per key: the inference
	// cache, the instance timelines, the drift state machines, and the
	// batch queue. A request key hashes to exactly one shard, so requests
	// for different keys never share a lock.
	shards []*advisorShard

	// touchSeq is a process-wide recency stamp: each /v1/profiles ingest
	// bumps it and stamps its timeline, so the dashboard can merge the
	// per-shard timeline lists into one global most-recently-active order.
	// An atomic counter is the only state shards share on the hot path.
	touchSeq atomic.Uint64

	// decSeq orders flight-recorder records across every shard's ring, so
	// merged /debug/decisions snapshots sort into one journal; batchSeq
	// names each shard batch evaluation so records from one ANN matrix
	// pass can be grouped after the fact.
	decSeq   atomic.Uint64
	batchSeq atomic.Uint64

	// start and fingerprint identify this process on /metrics
	// (brainy_build_info, brainy_uptime_seconds) and in every journaled
	// decision: a record is only interpretable against the model registry
	// that produced it.
	start       time.Time
	fingerprint string

	// sampler scrapes the metric registry into tsdb on a fixed cadence;
	// evaluator turns those windows into the /v1/health SLO verdict after
	// each scrape. Both are nil when self-observation is disabled.
	sampler   *tsdb.Sampler
	evaluator *slo.Evaluator

	// draining flips when Serve begins shutdown: /v1/health reports
	// `draining` (non-200, so load balancers stop routing here) while
	// /healthz keeps answering 200 — the process is still alive and
	// finishing accepted work. Readiness and liveness are different
	// questions and get different answers.
	draining atomic.Bool

	// stopSampler cancels the sampler goroutine; Close calls it.
	stopSampler context.CancelFunc

	closeOnce sync.Once

	// routes holds the precomputed request-counter cache for every path the
	// mux actually serves; anything else lands in otherRoute, keeping
	// brainy_requests_total cardinality bounded no matter what clients probe.
	routes     map[string]*routeCounters
	otherRoute *routeCounters
}

// New builds a server around a trained model registry. The returned server
// owns background batching goroutines (one per shard); Serve stops them on
// drain, and embedders that never call Serve should call Close.
func New(models *training.ModelSet, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	s := &Server{
		cfg:         cfg,
		brainy:      core.New(models),
		metrics:     m,
		log:         cfg.Logger,
		tracer:      cfg.Tracer,
		start:       time.Now(),
		fingerprint: models.Fingerprint(),
		routes:      make(map[string]*routeCounters),
		otherRoute:  newRouteCounters(otherPath, m.Requests),
	}
	// Every suggestion carries its class distribution so the flight
	// recorder can journal decision provenance; responses strip it unless
	// the client asked (?explain=1), keeping the wire format unchanged.
	s.brainy.SetExplain(true)
	m.registerIdentity(s.fingerprint, s.start)
	// Per-shard bounds divide the configured totals, rounding up so the
	// fleet never retains less than a single-shard server would. A negative
	// CacheSize still disables caching on every shard.
	perCache := cfg.CacheSize
	if perCache > 0 {
		perCache = ceilDiv(perCache, cfg.Shards)
	}
	perInstances := ceilDiv(cfg.MaxInstances, cfg.Shards)
	if perInstances < 1 {
		perInstances = 1
	}
	s.shards = make([]*advisorShard, cfg.Shards)
	for i := range s.shards {
		sh := &advisorShard{
			srv:       s,
			id:        i,
			cache:     newLRUCache(perCache),
			timelines: newTimelineStore(perInstances, cfg.TimelineWindows),
			rollup:    newRollupState(),
		}
		if cfg.FlightSize > 0 {
			sh.flight = flight.NewRing(cfg.FlightSize, &s.decSeq)
		}
		suggest := sh.cachingSuggester()
		if cfg.DriftRules {
			suggest = drift.Rules
		}
		sh.drifts = drift.New(suggest, drift.Config{
			Window:     cfg.DriftWindow,
			Hysteresis: cfg.DriftHysteresis,
			Events:     m.DriftEvents,
		})
		sh.batcher = shard.NewBatcher[*inferSlot](shard.BatcherConfig{
			MaxBatch: cfg.BatchSize,
			Linger:   cfg.BatchLinger,
			Queue:    4 * cfg.BatchSize,
			OnQueue:  func(d int) { m.ShardQueueDepth.Add(float64(d)) },
			OnFlush:  func(n int) { m.BatchSize.Observe(float64(n)) },
		}, sh.runBatch)
		s.shards[i] = sh
	}
	m.Shards.Set(float64(cfg.Shards))
	for _, path := range []string{"/v1/advise", "/v1/profiles", "/v1/rollup", "/v1/health", "/v1/timeseries", "/healthz", "/metrics", debugBrainyPath, decisionsPath, tracesPath} {
		s.routes[path] = newRouteCounters(path, m.Requests)
	}
	if cfg.EnablePprof {
		s.routes[pprofPrefix] = newRouteCounters(pprofPrefix, m.Requests)
	}
	// Self-observation: a sampler goroutine scrapes the registry into the
	// time-series store, and each scrape immediately re-evaluates the SLO
	// set so /v1/health is never staler than one sample interval.
	if cfg.SampleInterval > 0 {
		s.sampler = tsdb.New(m.Registry(), tsdb.Config{
			Interval:  cfg.SampleInterval,
			MaxPoints: cfg.SamplePoints,
			OnSample:  func(now time.Time) { s.evaluator.Evaluate(now) },
		})
		s.evaluator = slo.New(s.sampler.DB(), s.defaultObjectives(), slo.Config{
			FastWindow:   cfg.SLOFastWindow,
			SlowWindow:   cfg.SLOSlowWindow,
			DegradedBurn: cfg.SLODegradedBurn,
			CriticalBurn: cfg.SLOCriticalBurn,
			Hysteresis:   cfg.SLOHysteresis,
		})
		ctx, cancel := context.WithCancel(context.Background())
		s.stopSampler = cancel
		go s.sampler.Run(ctx)
	}
	return s
}

// Close stops every shard's batching goroutine after running whatever their
// queues already accepted. Serve calls it on exit; it is idempotent and
// only needed directly by embedders that use Handler without Serve.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.stopSampler != nil {
			s.stopSampler()
		}
		for _, sh := range s.shards {
			sh.batcher.Close()
		}
	})
}

// Metrics exposes the server's metric set (shared with the /metrics page),
// mainly for tests and embedding.
func (s *Server) Metrics() *Metrics { return s.metrics }

// pprofPrefix is where the opt-in profiling endpoints mount; every page
// under it shares one request-counter label.
const pprofPrefix = "/debug/pprof/"

// Handler returns the full route table wrapped in the observability
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", s.handleAdvise)
	mux.HandleFunc("/v1/profiles", s.handleProfiles)
	mux.HandleFunc("/v1/rollup", s.handleRollup)
	mux.HandleFunc(debugBrainyPath, s.handleDebugBrainy)
	mux.HandleFunc(decisionsPath, s.handleDecisions)
	mux.HandleFunc(tracesPath, s.handleTraces)
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/v1/timeseries", s.handleTimeseries)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.metrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc(pprofPrefix, pprof.Index)
		mux.HandleFunc(pprofPrefix+"cmdline", pprof.Cmdline)
		mux.HandleFunc(pprofPrefix+"profile", pprof.Profile)
		mux.HandleFunc(pprofPrefix+"symbol", pprof.Symbol)
		mux.HandleFunc(pprofPrefix+"trace", pprof.Trace)
	}
	return s.observe(mux)
}

// Serve accepts connections on ln until ctx is cancelled, then drains: the
// shard batchers flip to flush-immediately mode (queued inferences run
// without lingering for batch-mates), in-flight requests get up to
// ShutdownGrace to finish, and the batching goroutines stop only after
// running everything their queues accepted — an accepted request never
// loses its inference to shutdown. It returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(s.log.Handler(), slog.LevelWarn),
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
		// Fail readiness first: /v1/health starts answering `draining`
		// (503) while /healthz stays 200, so orchestrators stop routing
		// new traffic without killing a process that is still finishing
		// accepted work. DrainDelay is the observation window before the
		// listener actually closes.
		s.draining.Store(true)
		if s.cfg.DrainDelay > 0 {
			time.Sleep(s.cfg.DrainDelay)
		}
		s.log.Info("shutting down", "grace", s.cfg.ShutdownGrace.String())
		for _, sh := range s.shards {
			sh.batcher.Drain()
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := hs.Shutdown(drainCtx)
		<-errc // Serve has returned http.ErrServerClosed
		s.Close()
		if err != nil {
			s.log.Warn("shutdown incomplete", "error", err)
			return err
		}
		s.log.Info("drained")
		return nil
	}
}

// ListenAndServe binds cfg.Addr and runs Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.log.Info("listening", "addr", ln.Addr().String(), "models", s.brainy.Models().Len())
	return s.Serve(ctx, ln)
}

// handleHealthz reports liveness and registry size.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": s.brainy.Models().Len(),
	})
}
