package serve

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry/slo"
	"repro/internal/telemetry/tsdb"
)

// defaultObjectives is the SLO set every server self-evaluates. Each entry
// reads series the sampler already retains; nothing here adds hot-path cost.
func (s *Server) defaultObjectives() []slo.Objective {
	// The shard batchers bound their queues at 4× the batch size each;
	// readings at 80% of the fleet-wide capacity count as saturated.
	queueCap := float64(s.cfg.Shards * 4 * s.cfg.BatchSize)
	return []slo.Objective{
		{
			// Advise requests answered without a server error. 5xx alone is
			// "bad": 4xx means the client sent garbage, which is the client's
			// error budget, not ours.
			Name:        "advise-availability",
			Kind:        slo.Availability,
			Target:      0.999,
			TotalPrefix: `brainy_requests_total{path="/v1/advise"`,
			BadPrefix:   `brainy_requests_total{path="/v1/advise"`,
			BadContains: `code="5`,
		},
		{
			// Advise latency against the configured p99 threshold, read from
			// the advise-only histogram so health probes and metric scrapes
			// cannot mask a regression on the advisory path.
			Name:      "advise-p99",
			Kind:      slo.Latency,
			Target:    0.99,
			Series:    "brainy_advise_duration_seconds",
			Threshold: s.cfg.AdviseP99Max.Seconds(),
		},
		{
			// Queue-depth readings at 80%+ of fleet capacity mean lingering
			// is no longer a latency optimization but a backlog.
			Name:        "batch-queue-saturation",
			Kind:        slo.Saturation,
			Target:      0.9,
			GaugePrefix: "brainy_shard_queue_depth",
			Max:         0.8 * queueCap,
		},
		{
			// Windows the drift suggester could not evaluate are advisory
			// coverage silently lost; more than 10% of ingest skipping is a
			// deployment problem (missing models), not noise.
			Name:        "drift-skipped-ratio",
			Kind:        slo.Availability,
			Target:      0.9,
			TotalPrefix: "brainy_profile_windows_total",
			BadPrefix:   "brainy_drift_skipped_windows_total",
		},
	}
}

// HealthResponse is the GET /v1/health readiness document. Unlike /healthz
// (pure liveness: "the process can answer"), this is the load-balancer
// signal: SLO burn-rate verdicts, and `draining` once shutdown has begun
// while the process is still finishing accepted work.
type HealthResponse struct {
	Status   string     `json:"status"` // ok | degraded | critical | draining
	Draining bool       `json:"draining"`
	Enabled  bool       `json:"enabled"` // self-observation sampler running
	Models   int        `json:"models"`
	SLO      slo.Health `json:"slo"`
}

// handleHealth serves readiness. 200 for ok and degraded (degraded is a page,
// not a reason to shed traffic), 503 for critical and while draining.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	h := s.evaluator.Health() // nil-safe: disabled reports empty ok
	resp := HealthResponse{
		Status:  string(h.State),
		Enabled: s.sampler != nil,
		Models:  s.brainy.Models().Len(),
		SLO:     h,
	}
	code := http.StatusOK
	if h.State == slo.StateCritical {
		code = http.StatusServiceUnavailable
	}
	if s.draining.Load() {
		resp.Status = "draining"
		resp.Draining = true
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// TimeseriesResponse is the GET /v1/timeseries document: the catalog when no
// series was requested, the selected points otherwise.
type TimeseriesResponse struct {
	Enabled         bool                    `json:"enabled"`
	IntervalSeconds float64                 `json:"interval_seconds,omitempty"`
	Series          []tsdb.SeriesInfo       `json:"series,omitempty"`
	Points          map[string][]tsdb.Point `json:"points,omitempty"`
	DroppedSeries   uint64                  `json:"dropped_series,omitempty"`
}

// parseSince resolves the ?since= parameter to a unix-nanos lower bound:
// empty means everything retained, a Go duration ("30s") means a lookback
// from now, otherwise RFC3339 or integer unix seconds.
func parseSince(raw string, now time.Time) (int64, bool) {
	if raw == "" {
		return 0, true
	}
	if d, err := time.ParseDuration(raw); err == nil && d >= 0 {
		return now.Add(-d).UnixNano(), true
	}
	if t, err := time.Parse(time.RFC3339, raw); err == nil {
		return t.UnixNano(), true
	}
	if sec, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return sec * int64(time.Second), true
	}
	return 0, false
}

// handleTimeseries serves the sampler's retained history. Without ?series= it
// returns the catalog; with ?series=a,b it returns each requested series'
// points, including derived names (`name:rate`, `name:p50|p90|p99`).
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := TimeseriesResponse{Enabled: s.sampler != nil}
	if s.sampler == nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	db := s.sampler.DB()
	resp.IntervalSeconds = s.sampler.Interval().Seconds()
	_, _, resp.DroppedSeries = db.Stats()
	since, ok := parseSince(r.URL.Query().Get("since"), time.Now())
	if !ok {
		http.Error(w, "bad since: want duration, RFC3339, or unix seconds", http.StatusBadRequest)
		return
	}
	sels := r.URL.Query()["series"]
	if len(sels) == 0 {
		resp.Series = db.List()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Points = make(map[string][]tsdb.Point)
	for _, sel := range sels {
		for _, name := range splitSeriesList(sel) {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			resp.Points[name] = db.Query(name, since)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// splitSeriesList splits a comma-separated series list, ignoring commas
// inside label braces: `m{a="x",b="y"},m2` is two names, not three.
func splitSeriesList(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
